GO ?= go

.PHONY: ci vet build test fuzz bench

# ci is the gate: static checks, build, the full test suite under the
# race detector, and a short fuzz smoke so the sig fuzz targets are
# actually executed.
ci: vet build test fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzUnmarshalEnvelope -fuzztime=10s ./internal/sig

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
