GO ?= go

.PHONY: ci vet build test fuzz bench agree bench-smoke bench-mc

# ci is the gate: static checks, build, the full test suite under the
# race detector, the parallel-vs-sequential checker agreement test,
# a short fuzz smoke so the sig fuzz targets are actually executed,
# and a one-iteration benchmark smoke so the perf harness keeps
# compiling and the zero-alloc assertions run.
ci: vet build test agree fuzz bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# agree re-runs the twelve-model parallel determinism check under the
# race detector, the acceptance gate for the parallel explorer.
agree:
	$(GO) test -race -run='TestParallelAgreement' ./internal/mcmodel

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzUnmarshalEnvelope -fuzztime=10s ./internal/sig
	$(GO) test -run='^$$' -fuzz=FuzzEncoderEquivalence -fuzztime=10s ./internal/sig

bench-smoke:
	$(GO) test -run='^$$' -bench='Explore|Marshal' -benchtime=1x ./internal/mcmodel ./internal/sig

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# bench-mc records the before/after checker numbers: the twelve-model
# suite at workers 1 vs 4, written to BENCH_mc.json. Forcing 4 (rather
# than the GOMAXPROCS default) keeps the parallel leg and its
# totals-agreement check in the record even on small CI hosts.
bench-mc:
	$(GO) run ./cmd/pathcheck -bench BENCH_mc.json -workers 4
