GO ?= go

.PHONY: ci vet build test fuzz bench agree bench-smoke bench-mc bench-runtime bench-media storm-smoke media-smoke ts-smoke chaos-smoke bench-chaos alloc-gate store-smoke bench-store bench-diff profile-runtime cluster-smoke bench-cluster

# ci is the gate: static checks, build, the full test suite under the
# race detector, the parallel-vs-sequential checker agreement test,
# a short fuzz smoke so the sig and media fuzz targets are actually
# executed, a one-iteration benchmark smoke so the perf harness keeps
# compiling, the zero-alloc gates (non-race: the race detector defeats
# the accounting), a short call-storm so the live runtime survives
# load, a short in-memory media-storm so the media pipeline does, and
# a seeded chaos-storm so the fault-recovery story is re-proved on
# every run.
ci: vet build test agree fuzz bench-smoke alloc-gate storm-smoke media-smoke ts-smoke chaos-smoke store-smoke cluster-smoke
	-$(MAKE) bench-diff

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# agree re-runs the twelve-model parallel determinism check under the
# race detector, the acceptance gate for the parallel explorer.
agree:
	$(GO) test -race -run='TestParallelAgreement' ./internal/mcmodel

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzUnmarshalEnvelope -fuzztime=10s ./internal/sig
	$(GO) test -run='^$$' -fuzz=FuzzEncoderEquivalence -fuzztime=10s ./internal/sig
	$(GO) test -run='^$$' -fuzz=FuzzEnvelopeAliasing -fuzztime=10s ./internal/sig
	$(GO) test -run='^$$' -fuzz=FuzzPacket -fuzztime=10s ./internal/media
	$(GO) test -run='^$$' -fuzz=FuzzTSPacket -fuzztime=10s ./internal/ts
	$(GO) test -run='^$$' -fuzz=FuzzPES -fuzztime=10s ./internal/ts
	$(GO) test -run='^$$' -fuzz=FuzzSlotRetransmit -fuzztime=10s ./internal/slot
	$(GO) test -run='^$$' -fuzz=FuzzWALReplay -fuzztime=10s ./internal/store

bench-smoke:
	$(GO) test -run='^$$' -bench='Explore|Marshal' -benchtime=1x ./internal/mcmodel ./internal/sig
	$(GO) test -run='^$$' -bench='PacketMarshal|AgentDeliver|AgentEmitBatch' -benchtime=1x ./internal/media

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# alloc-gate asserts the zero-alloc claims: the signaling decode path
# (interned strings, pooled Meta frames) and the end-to-end
# decode->inbox->dispatch->release path, the steady-state event
# dispatch path (box) both standalone and through a cluster shard, the
# media fast path — packet marshal, transmit staging, and wire delivery
# — the MPEG-TS container layer (PES mux, PSI generation, demux
# validation) and the framed fast path end to end, the reliable
# layer's steady-state send (stamp, retain, ack bookkeeping), and the
# store's disabled path and cached registry lookup allocate nothing.
alloc-gate:
	$(GO) test -run='TestDecodeZeroAlloc|TestEncodeZeroAlloc' ./internal/sig
	$(GO) test -run='TestRunnerEventZeroAlloc|TestClusterEventZeroAlloc|TestRunnerEventEndToEndAllocs' ./internal/box
	$(GO) test -run='TestMediaZeroAlloc|TestTSFramingZeroAlloc' ./internal/media
	$(GO) test -run='TestTSZeroAlloc' ./internal/ts
	$(GO) test -run='TestRelSendSteadyStateZeroAlloc' ./internal/transport
	$(GO) test -run='TestStoreZeroAlloc' ./internal/store

# storm-smoke drives 500 concurrent call lifecycles for 5 seconds over
# the in-memory network: a shutdown-under-load and liveness check, not
# a measurement. The second leg reruns it on a 4-shard cluster over
# ring-port channels at GOMAXPROCS=4 with the give-up gate armed, so
# every CI run re-proves the sharded runtime under load.
storm-smoke:
	$(GO) run ./cmd/callstorm -paths 500 -servers 4 -mode link -net mem -hold 250ms -duration 5s
	GOMAXPROCS=4 $(GO) run ./cmd/callstorm -paths 500 -servers 4 -mode link -net ring -shards 4 -hold 250ms -duration 5s -gate -alloc-gate 8

# media-smoke blasts the in-memory media plane for ~2 seconds: a
# pipeline liveness check, not a measurement.
media-smoke:
	$(GO) run ./cmd/mediastorm -plane mem -agents 16 -duration 2s

# ts-smoke is the MPEG-TS integrity gate: 8 paced TS flows (well under
# capacity, so the wire is clean) for 2 seconds, exiting nonzero on any
# CRC error, continuity discontinuity, or framing drop. Saturated runs
# legitimately lose datagrams; this paced run must not.
ts-smoke:
	$(GO) run ./cmd/tsstorm -agents 8 -rate 50 -duration 2s -gate

# chaos-smoke is the seeded resilience gate: ~30 seconds of call
# lifecycles over a wire that drops 5% and duplicates 2% of envelopes
# with one mid-storm partition, while the Section V formulas are
# checked live. It exits nonzero on any bounded-time formula
# violation, a wedged path after drain, a give-up rate over budget, or
# a leaked goroutine. The second leg reruns the same profile with the
# population multiplexed onto 2 cluster shards, so the formulas are
# re-proved against the sharded runtime too.
chaos-smoke:
	$(GO) run ./cmd/chaosstorm -paths 24 -servers 3 -duration 20s -seed 1
	GOMAXPROCS=4 $(GO) run ./cmd/chaosstorm -paths 24 -servers 3 -shards 2 -duration 10s -seed 1

# store-smoke is the durable-state gate: a quick storestorm run so all
# three index backends re-prove the conformance/durability gates (every
# lookup hits, no acknowledged CDR lost across a crash, recovery lands
# on the durable count), then a short chaosstorm with a store crash at
# the storm midpoint so CDR-vs-lifecycle reconciliation is re-proved
# across a restart under live fault load.
store-smoke:
	$(GO) run ./cmd/storestorm -keys 500 -lookups 20000 -cdrs 5000
	$(GO) run ./cmd/chaosstorm -paths 8 -servers 3 -duration 5s -seed 1 -crash

# cluster-smoke is the multi-process resilience gate: call lifecycles
# across 2 supervised shard processes with a SIGKILL of the busiest
# shard mid-storm. clusterstorm exits nonzero unless the victim is
# restarted (and no shard exhausts its restart intensity), calls keep
# completing in the victim's new epoch, fleet-wide Section V checking
# stays clean, every client drains, cross-shard setups stay under the
# bound, fleet CDR reconciliation accounts for every acked CDR, and no
# child process or parent goroutine outlives the run. The race leg
# re-proves the router's dial-vs-readdress path under the detector —
# the exact interleaving a supervisor restart exercises.
cluster-smoke:
	$(GO) test -race -run='TestRouterAddrRace|TestRouterDialWaitsForAddress' ./internal/box
	$(GO) run ./cmd/clusterstorm -shards 2 -paths 8 -servers 4 -duration 6s -hold 200ms -giveup 6s -min-cps 1 -seed 1

# bench-cluster records the multi-process numbers — aggregate calls/s
# across the fleet vs the single-process baseline, restart recovery
# time, cross-shard setup latency — written to BENCH_cluster.json.
bench-cluster:
	$(GO) run ./cmd/clusterstorm -shards 3 -paths 24 -servers 6 -duration 12s -seed 1 -out BENCH_cluster.json

# bench-chaos records the recovery numbers — recovery-latency
# percentiles, retransmit/reconnect counts, give-up rate — under the
# standard fault profile, written to BENCH_chaos.json.
bench-chaos:
	$(GO) run ./cmd/chaosstorm -paths 24 -servers 3 -shards 2 -duration 30s -delayrate 0.05 -reorder 0.02 -seed 1 -crash -out BENCH_chaos.json

# bench-store records the store numbers: point-lookup and CDR-append
# rates per index backend (registry cache off, so the index itself is
# measured), WAL group-commit fsync counts, and crash-recovery replay
# time, written to BENCH_store.json. The cached production hot path is
# reported once as cached_lookup_ns.
bench-store:
	$(GO) run ./cmd/storestorm -keys 5000 -lookups 200000 -cdrs 50000 -out BENCH_store.json

# bench-media records the media-plane numbers: the in-memory carrier,
# the seed dial-per-packet UDP loop, the persistent-socket batched
# pipeline, and the framed legs — the same pipeline carrying 1316-byte
# opaque payloads vs. full MPEG-TS bursts — at equal agent count,
# written to BENCH_media.json. udp_speedup_vs_legacy is the pipeline
# ratio; ts_pps_ratio_vs_opaque is the container's cost (acceptance:
# ≥0.85, i.e. at most a 15% pps penalty).
bench-media:
	$(GO) run ./cmd/mediastorm -agents 8 -duration 3s -out BENCH_media.json

# bench-runtime records the live-runtime scaling curve: concurrent
# open/hold/flowLink/close lifecycles over in-process ring channels,
# swept at GOMAXPROCS (and shard count) 1, 2, 4, 8, written to
# BENCH_runtime.json. The calls_per_sec_speedup_vs_1 map is the
# tentpole ratio. The offered load (1200 paths at 1 s hold) is sized to
# sit just under one core's saturated capacity (~2100 calls/s) so every
# leg completes on a single-CPU host; when every leg sustains the
# offered rate, read the curve from ns_per_event and the setup latency
# quantiles instead of raw calls/s. On a host with >= 4 real cores,
# raise -paths to 10000 to measure the saturated speedup directly.
bench-runtime:
	$(GO) run ./cmd/callstorm -paths 1200 -servers 8 -mode link -net ring -hold 1s -stagger 15s -ramp 60s -duration 15s -sweep 1,2,4,8 -out BENCH_runtime.json

# bench-diff guards the committed runtime numbers: it re-reads the
# BENCH_runtime.json in the working tree against the one committed at
# HEAD and fails on a >10% per-event regression (ns_per_event or
# allocs_per_event, any GOMAXPROCS leg). Run it after bench-runtime to
# check a fresh measurement before committing it. In ci it is
# informational (leading '-'): a dirtied benchmark file fails loudly
# here but does not block unrelated work.
bench-diff:
	@git show HEAD:BENCH_runtime.json > .bench_runtime_head.json
	$(GO) run ./cmd/benchdiff -old .bench_runtime_head.json -new BENCH_runtime.json -max-regress 10
	@rm -f .bench_runtime_head.json

# profile-runtime captures CPU and allocation profiles of a callstorm
# leg sized like the bench-runtime single-shard leg, for
# `go tool pprof` spelunking: which call sites still allocate, where
# the event loop spends its time.
profile-runtime:
	$(GO) run ./cmd/callstorm -paths 1200 -servers 8 -mode link -net ring -hold 1s -duration 10s -cpuprofile callstorm.cpu.pprof -memprofile callstorm.allocs.pprof
	@echo "profiles written: callstorm.cpu.pprof callstorm.allocs.pprof"
	@echo "inspect with: go tool pprof -top -sample_index=alloc_objects callstorm.allocs.pprof"

# bench-mc records the before/after checker numbers: the twelve-model
# suite at workers 1 vs 4, written to BENCH_mc.json. Forcing 4 (rather
# than the GOMAXPROCS default) keeps the parallel leg and its
# totals-agreement check in the record even on small CI hosts.
bench-mc:
	$(GO) run ./cmd/pathcheck -bench BENCH_mc.json -workers 4
