GO ?= go

.PHONY: ci vet build test fuzz bench agree bench-smoke bench-mc bench-runtime storm-smoke alloc-gate

# ci is the gate: static checks, build, the full test suite under the
# race detector, the parallel-vs-sequential checker agreement test,
# a short fuzz smoke so the sig fuzz targets are actually executed,
# a one-iteration benchmark smoke so the perf harness keeps compiling,
# the runner zero-alloc gate (non-race: the race detector defeats pool
# reuse), and a short call-storm so the live runtime survives load.
ci: vet build test agree fuzz bench-smoke alloc-gate storm-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# agree re-runs the twelve-model parallel determinism check under the
# race detector, the acceptance gate for the parallel explorer.
agree:
	$(GO) test -race -run='TestParallelAgreement' ./internal/mcmodel

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzUnmarshalEnvelope -fuzztime=10s ./internal/sig
	$(GO) test -run='^$$' -fuzz=FuzzEncoderEquivalence -fuzztime=10s ./internal/sig

bench-smoke:
	$(GO) test -run='^$$' -bench='Explore|Marshal' -benchtime=1x ./internal/mcmodel ./internal/sig

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# alloc-gate asserts the tentpole claim of the runtime rework: the
# steady-state event dispatch path allocates nothing.
alloc-gate:
	$(GO) test -run='TestRunnerEventZeroAlloc' ./internal/box

# storm-smoke drives 500 concurrent call lifecycles for 5 seconds over
# the in-memory network: a shutdown-under-load and liveness check, not
# a measurement.
storm-smoke:
	$(GO) run ./cmd/callstorm -paths 500 -servers 4 -mode link -net mem -hold 250ms -duration 5s

# bench-runtime records the live-runtime scaling numbers: 10k
# concurrent open/hold/flowLink/close lifecycles over the in-memory
# network, written to BENCH_runtime.json.
bench-runtime:
	$(GO) run ./cmd/callstorm -paths 10000 -servers 8 -mode link -net mem -hold 1s -ramp 120s -duration 15s -out BENCH_runtime.json

# bench-mc records the before/after checker numbers: the twelve-model
# suite at workers 1 vs 4, written to BENCH_mc.json. Forcing 4 (rather
# than the GOMAXPROCS default) keeps the parallel leg and its
# totals-agreement check in the record even on small CI hosts.
bench-mc:
	$(GO) run ./cmd/pathcheck -bench BENCH_mc.json -workers 4
