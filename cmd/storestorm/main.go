// storestorm benchmarks the durable store's pluggable index backends
// under the two workloads the live runtime generates: OLTP-ish point
// lookups (every path setup consults the subscriber registry) and
// write-heavy CDR appends (every teardown cuts a record). Each backend
// runs the same storm — load the registry, hammer random lookups,
// append a CDR flood, then crash and time the WAL recovery — and the
// per-backend rows land in BENCH_store.json for the EXPERIMENTS
// comparison table.
//
// Lookups run with the registry cache disabled so the index backend
// itself is measured; the cached production hot path is reported once,
// separately, as cached_lookup_ns.
//
// The run is also a gate (-check): every lookup must hit, no
// acknowledged CDR append may be lost across the crash, and recovery
// must land on exactly the durable record count.
//
// Usage:
//
//	storestorm [-backends btree,log,scan] [-keys 5000] [-lookups 200000]
//	           [-cdrs 50000] [-fsync 2ms] [-seed 1] [-out BENCH_store.json]
//	           [-check]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ipmedia/internal/store"
	"ipmedia/internal/telemetry"
)

type backendResult struct {
	Backend string `json:"backend"`

	LoadMS   float64 `json:"load_ms"`
	LookupNS float64 `json:"lookup_ns"`
	LookupQP float64 `json:"lookups_per_sec"`
	AppendNS float64 `json:"append_ns"`
	AppendQP float64 `json:"appends_per_sec"`

	WALFsyncs   int64   `json:"wal_fsyncs"`
	WALBytes    int64   `json:"wal_bytes"`
	DurableCDRs uint64  `json:"durable_cdrs"`
	RecoveryMS  float64 `json:"recovery_ms"`
	Recovered   int     `json:"recovered_records"`
	TruncatedB  int64   `json:"truncated_tail_bytes"`
}

type result struct {
	Date string `json:"date"`

	Keys    int     `json:"keys"`
	Lookups int     `json:"lookups"`
	CDRs    int     `json:"cdrs"`
	FsyncMS float64 `json:"fsync_ms"`
	Seed    int64   `json:"seed"`

	CachedLookupNS float64 `json:"cached_lookup_ns"`

	Backends []backendResult `json:"backends"`
}

func main() {
	backends := flag.String("backends", strings.Join(store.Backends(), ","), "comma-separated index backends to storm")
	keys := flag.Int("keys", 5000, "subscriber profiles loaded into the registry")
	lookups := flag.Int("lookups", 200000, "random point lookups per backend")
	cdrs := flag.Int("cdrs", 50000, "CDR appends per backend")
	fsync := flag.Duration("fsync", 2*time.Millisecond, "WAL group-commit window")
	seed := flag.Int64("seed", 1, "workload seed")
	dir := flag.String("dir", "", "store root directory (empty: a temp dir, removed afterwards)")
	out := flag.String("out", "", "write the result JSON here (empty: stdout only)")
	check := flag.Bool("check", true, "exit nonzero when a durability gate fails")
	flag.Parse()

	reg := telemetry.Enable()

	root := *dir
	if root == "" {
		var err error
		root, err = os.MkdirTemp("", "storestorm-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "storestorm:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(root)
	}

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "storestorm: GATE FAILED: "+format+"\n", args...)
		os.Exit(1)
	}

	res := result{
		Date:    time.Now().Format("2006-01-02"),
		Keys:    *keys,
		Lookups: *lookups,
		CDRs:    *cdrs,
		FsyncMS: float64(*fsync) / float64(time.Millisecond),
		Seed:    *seed,
	}
	names := make([]string, *keys)
	for i := range names {
		names[i] = fmt.Sprintf("sub-%06d", i)
	}

	// The production hot path, once: cached lookups over the default
	// backend.
	{
		st, err := store.Open(filepath.Join(root, "cached"), store.Options{FsyncInterval: *fsync})
		if err != nil {
			fmt.Fprintln(os.Stderr, "storestorm:", err)
			os.Exit(1)
		}
		for _, n := range names {
			st.PutProfile(store.Profile{Name: n, Features: []string{"cf"}})
		}
		rng := rand.New(rand.NewSource(*seed))
		start := time.Now()
		for i := 0; i < *lookups; i++ {
			if _, ok := st.Lookup(names[rng.Intn(len(names))]); !ok {
				fail("cached lookup missed a loaded profile")
			}
		}
		res.CachedLookupNS = float64(time.Since(start)) / float64(*lookups)
		st.Close()
	}

	for _, kind := range strings.Split(*backends, ",") {
		kind = strings.TrimSpace(kind)
		if kind == "" {
			continue
		}
		br := backendResult{Backend: kind}
		bdir := filepath.Join(root, kind)
		snapBefore := reg.Snapshot()

		st, err := store.Open(bdir, store.Options{Backend: kind, NoCache: true, FsyncInterval: *fsync})
		if err != nil {
			fmt.Fprintln(os.Stderr, "storestorm:", err)
			os.Exit(1)
		}

		// Load the registry.
		start := time.Now()
		for _, n := range names {
			if err := st.PutProfile(store.Profile{Name: n, Features: []string{"cf", "prepaid"}}); err != nil {
				fmt.Fprintln(os.Stderr, "storestorm:", err)
				os.Exit(1)
			}
		}
		br.LoadMS = float64(time.Since(start)) / float64(time.Millisecond)

		// Workload 1: OLTP-ish random point lookups against the index.
		rng := rand.New(rand.NewSource(*seed))
		start = time.Now()
		for i := 0; i < *lookups; i++ {
			if _, ok := st.Lookup(names[rng.Intn(len(names))]); !ok && *check {
				fail("%s: lookup missed a loaded profile", kind)
			}
		}
		el := time.Since(start)
		br.LookupNS = float64(el) / float64(*lookups)
		br.LookupQP = float64(*lookups) / el.Seconds()

		// Workload 2: the CDR append flood, closed by one durability
		// barrier so the rate includes amortized group-commit cost.
		start = time.Now()
		for i := 0; i < *cdrs; i++ {
			if _, ok := st.AppendCDR(store.CDR{
				Local: "dev0", Peer: names[i%len(names)], Channel: "c",
				SetupNS: int64(i), TornNS: int64(i + 1),
			}); !ok {
				fail("%s: CDR append refused", kind)
			}
		}
		if err := st.Sync(); err != nil {
			fail("%s: sync: %v", kind, err)
		}
		el = time.Since(start)
		br.AppendNS = float64(el) / float64(*cdrs)
		br.AppendQP = float64(*cdrs) / el.Seconds()
		br.DurableCDRs = st.DurableCDRs()

		snapAfter := reg.Snapshot()
		br.WALFsyncs = int64(snapAfter.Counters[store.MetricWALFsyncs] - snapBefore.Counters[store.MetricWALFsyncs])
		br.WALBytes = int64(snapAfter.Counters[store.MetricWALBytes] - snapBefore.Counters[store.MetricWALBytes])

		// Crash and time the recovery replay.
		st.Crash()
		start = time.Now()
		st2, err := store.Open(bdir, store.Options{Backend: kind, NoCache: true, FsyncInterval: *fsync})
		if err != nil {
			fmt.Fprintln(os.Stderr, "storestorm:", err)
			os.Exit(1)
		}
		br.RecoveryMS = float64(time.Since(start)) / float64(time.Millisecond)
		rs := st2.Recovery()
		br.Recovered = rs.Records
		br.TruncatedB = rs.Truncated

		if *check {
			// No acknowledged append may be lost, and recovery must land
			// exactly on the durable count.
			if got := uint64(st2.CDRCount()); got != br.DurableCDRs {
				fail("%s: recovered %d CDRs, %d were acknowledged durable", kind, got, br.DurableCDRs)
			}
			if st2.Profiles() != *keys {
				fail("%s: recovered %d profiles, loaded %d", kind, st2.Profiles(), *keys)
			}
			rng := rand.New(rand.NewSource(*seed + 1))
			for i := 0; i < 1000; i++ {
				if _, ok := st2.Lookup(names[rng.Intn(len(names))]); !ok {
					fail("%s: post-recovery lookup missed", kind)
				}
			}
		}
		st2.Close()

		fmt.Fprintf(os.Stderr, "storestorm: %-5s lookups %.0f ns/op (%.0f/s)  appends %.0f ns/op (%.0f/s)  %d fsyncs for %d records  recovery %.1f ms (%d records)\n",
			kind, br.LookupNS, br.LookupQP, br.AppendNS, br.AppendQP, br.WALFsyncs, br.DurableCDRs, br.RecoveryMS, br.Recovered)
		res.Backends = append(res.Backends, br)
	}

	blob, _ := json.MarshalIndent(res, "", "  ")
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "storestorm:", err)
			os.Exit(1)
		}
	}
}
