// mediasim runs the paper's example services end to end on the
// in-process runtime and prints the media-flow snapshots.
//
// Usage:
//
//	mediasim -scenario prepaid [-naive]
//	mediasim -scenario ctd [-busy]
//	mediasim -metrics :9090 [-linger 30s] ...   # live telemetry endpoint
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"ipmedia"
	"ipmedia/internal/box"
	"ipmedia/internal/scenario"
	"ipmedia/internal/telemetry"
)

func main() {
	name := flag.String("scenario", "prepaid", "scenario: prepaid or ctd")
	naive := flag.Bool("naive", false, "prepaid: run the uncoordinated Figure 2 baseline")
	busy := flag.Bool("busy", false, "ctd: make the clicked telephone unavailable")
	trace := flag.Bool("trace", false, "prepaid: print the servers' wire trace")
	metrics := flag.String("metrics", "", "serve the telemetry exposition endpoint at this address (e.g. :9090)")
	linger := flag.Duration("linger", 0, "keep serving -metrics for this long after the scenario finishes")
	flag.Parse()

	var reg *telemetry.Registry
	if *metrics != "" {
		// Enable before the stack is built: instruments are resolved at
		// object construction.
		reg = telemetry.Enable()
		go func() {
			if err := http.ListenAndServe(*metrics, reg); err != nil {
				log.Fatalf("metrics endpoint: %v", err)
			}
		}()
		fmt.Printf("telemetry: serving http://%s/ (append ?trace=1 for the signal trace)\n", *metrics)
	}

	switch *name {
	case "prepaid":
		runPrepaid(*naive, *trace)
	case "ctd":
		runCTD(*busy)
	default:
		log.Fatalf("unknown scenario %q", *name)
	}

	if reg != nil {
		printMetricsSummary(reg)
		if *linger > 0 {
			fmt.Printf("telemetry: lingering %v at http://%s/\n", *linger, *metrics)
			time.Sleep(*linger)
		}
	}
}

// printMetricsSummary dumps the nonzero instruments so a run is
// inspectable even without scraping the endpoint.
func printMetricsSummary(reg *telemetry.Registry) {
	s := reg.Snapshot()
	fmt.Println("\ntelemetry snapshot:")
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for k, v := range s.Counters {
		if v != 0 {
			lines = append(lines, fmt.Sprintf("  counter %s %d", k, v))
		}
	}
	for k, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("  gauge %s %d hwm=%d", k, v.Value, v.HighWater))
	}
	for k, v := range s.Histograms {
		if v.Count != 0 {
			lines = append(lines, fmt.Sprintf("  hist %s count=%d avg=%v p50=%v p95=%v p99=%v",
				k, v.Count, v.Avg, v.P50, v.P95, v.P99))
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}

func runPrepaid(naive, trace bool) {
	p, err := scenario.NewPrepaid()
	if err != nil {
		log.Fatal(err)
	}
	defer p.Stop()
	var traceMu sync.Mutex
	if trace {
		tap := func(e box.WireEvent) {
			traceMu.Lock()
			fmt.Printf("  %s\n", e)
			traceMu.Unlock()
		}
		p.PBX.SetTrace(tap)
		p.PC.SetTrace(tap)
	}
	if err := p.Establish(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("snapshot 1:", p.Plane.Flows())
	var transcript []string
	if naive {
		p.GoNaive()
		transcript, err = p.RunNaive()
	} else {
		transcript, err = p.RunCorrect()
	}
	for _, line := range transcript {
		fmt.Println(line)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("final:", p.Plane.Flows())
	for _, e := range p.Errs() {
		fmt.Println("server error:", e)
	}
}

func runCTD(busy bool) {
	net := ipmedia.NewMemNetwork()
	plane := ipmedia.NewMediaPlane()
	p1, err := ipmedia.NewDevice(ipmedia.DeviceConfig{Name: "user1", Net: net, Plane: plane, MediaPort: 5004})
	if err != nil {
		log.Fatal(err)
	}
	defer p1.Stop()
	p2, err := ipmedia.NewDevice(ipmedia.DeviceConfig{Name: "user2", Net: net, Plane: plane, MediaPort: 5006, Unavailable: busy})
	if err != nil {
		log.Fatal(err)
	}
	defer p2.Stop()
	tone, err := ipmedia.NewToneGenerator("tone", net, plane)
	if err != nil {
		log.Fatal(err)
	}
	defer tone.Stop()

	ctd, done, err := ipmedia.NewClickToDial(net, ipmedia.ClickToDialConfig{
		User1Addr: "user1", User2Addr: "user2", ToneAddr: "tone",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ctd.Stop()

	await := func(what string, pred func() bool) {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if pred() {
				return
			}
			time.Sleep(time.Millisecond)
		}
		log.Fatalf("timeout: %s", what)
	}
	await("user1 ringing", func() bool { return len(p1.Ringing()) == 1 })
	p1.Answer(p1.Ringing()[0])
	await("tone", func() bool { return plane.HasFlow("tone", "user1") })
	fmt.Println("tone phase:", plane.Flows())
	if busy {
		p1.HangUp("in0")
	} else {
		await("user2 ringing", func() bool { return len(p2.Ringing()) == 1 })
		p2.Answer(p2.Ringing()[0])
		await("direct media", func() bool { return plane.HasFlow("user1", "user2") && plane.HasFlow("user2", "user1") })
		fmt.Println("connected:", plane.Flows())
		p2.HangUp("in0")
	}
	<-done
	fmt.Println("terminated; final flows:", plane.Flows())
}
