// chaosstorm is the fault-tolerance harness: callstorm's lifecycle
// load run over a deliberately hostile wire, with the Section V
// temporal formulas checked live while the faults land. The stack is
// RelNetwork(FaultNetwork(mem|tcp)): the fault layer drops,
// duplicates, delays, and reorders envelopes and severs links
// mid-storm; the reliable layer retransmits, suppresses duplicates,
// and re-dials, so the boxes above should see at most a blip. A
// pathmon.Tracker polls every signaling path and holds it to the
// bounded-time reading of its formula — recurrence paths must return
// to bothFlowing within the bound, stability paths must not flow past
// it — and records the recovery latency of every healed outage.
//
// The run is a gate, not just a report: it fails (exit 1) on any
// bounded-time formula violation, any path wedged after drain, a
// client give-up rate at or above the budget, clients that never
// drained, or leaked goroutines after shutdown. BENCH_chaos.json
// captures the fault profile, call outcomes, transport recovery
// counters, and the recovery-latency distribution.
//
// With -crash, the durable store rides the storm too: every client is
// bound to the subscriber registry (setup lookups) and the CDR log
// (teardown appends), and at the storm's midpoint — alongside the
// partition — the store takes a simulated power cut, recovers from its
// write-ahead log, and is swapped back in live. The Section V formulas
// keep being checked across the restart, and extra gates reconcile
// CDRs against the channel lifecycle: no acknowledged append may be
// lost, the final log must account for every append accepted after the
// swap, and a final reopen must replay to the same count.
//
// Usage:
//
//	chaosstorm [-paths 24] [-servers 3] [-duration 20s] [-net mem|tcp]
//	           [-drop 0.05] [-dup 0.02] [-delayrate 0] [-reorder 0]
//	           [-partition 150ms] [-seed 1] [-bound 5s] [-poll 25ms]
//	           [-giveup-budget 0.01] [-out BENCH_chaos.json] [-check]
//	           [-crash] [-store-dir DIR] [-store-backend btree]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/pathmon"
	"ipmedia/internal/prof"
	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
	"ipmedia/internal/store"
	"ipmedia/internal/telemetry"
	"ipmedia/internal/transport"
)

type stormStats struct {
	setups    atomic.Int64 // calls that reached flowing
	completed atomic.Int64 // full lifecycles (flowing + held + torn down)
	giveups   atomic.Int64 // calls abandoned by the client's give-up timer
	refused   atomic.Int64 // dials refused outright (partition window)
	idle      atomic.Int64 // clients parked after the stop flag
	stop      atomic.Bool
}

type result struct {
	Date string `json:"date"`

	Net         string  `json:"net"`
	Paths       int     `json:"paths"`
	Servers     int     `json:"servers"`
	Shards      int     `json:"shards"`
	DurationMS  int64   `json:"duration_ms"`
	Drop        float64 `json:"drop_rate"`
	Dup         float64 `json:"dup_rate"`
	DelayRate   float64 `json:"delay_rate"`
	Reorder     float64 `json:"reorder_rate"`
	PartitionMS int64   `json:"partition_ms"`
	Seed        int64   `json:"seed"`
	BoundMS     int64   `json:"bound_ms"`

	Setups      int64   `json:"setups"`
	Completed   int64   `json:"completed_calls"`
	CallGiveups int64   `json:"call_giveups"`
	DialRefused int64   `json:"dials_refused"`
	GiveupRate  float64 `json:"giveup_rate"`
	Drained     int64   `json:"clients_drained"`

	FaultsInjected   int64 `json:"faults_injected"`
	Reconnects       int64 `json:"reconnects"`
	Retransmits      int64 `json:"retransmits"`
	DupDropped       int64 `json:"dup_dropped"`
	TransportGiveups int64 `json:"transport_giveups"`
	BacklogDropped   int64 `json:"backlog_dropped"`

	LTLPolls      int      `json:"ltl_polls"`
	LTLViolations []string `json:"ltl_violations"`
	Wedged        []string `json:"wedged_paths"`

	RecoveryCount int64   `json:"recovery_count"`
	RecoveryP50MS float64 `json:"recovery_p50_ms"`
	RecoveryP95MS float64 `json:"recovery_p95_ms"`
	RecoveryMaxMS float64 `json:"recovery_max_ms"`

	GoroutinesBaseline int  `json:"goroutines_baseline"`
	GoroutinesFinal    int  `json:"goroutines_final"`
	Leaked             bool `json:"goroutines_leaked"`

	// Durable-store fields, populated when -crash (or -store-dir) binds
	// the store into the storm.
	StoreBackend     string  `json:"store_backend,omitempty"`
	StoreCrashed     bool    `json:"store_crashed,omitempty"`
	StoreLookups     int64   `json:"store_lookups,omitempty"`
	StoreLookupMiss  int64   `json:"store_lookup_miss"`
	CDRIssued        uint64  `json:"cdrs_issued,omitempty"`
	CDRAckedAtCrash  uint64  `json:"cdrs_acked_at_crash,omitempty"`
	CDRRecovered     int     `json:"cdrs_recovered,omitempty"`
	CDRMissedUnbound uint64  `json:"cdrs_missed_unbound"`
	CDRFinal         int     `json:"cdrs_final,omitempty"`
	CDRFinalReopen   int     `json:"cdrs_final_reopen,omitempty"`
	StoreRecoveryMS  float64 `json:"store_recovery_ms,omitempty"`
}

func main() {
	paths := flag.Int("paths", 24, "concurrent call lifecycles (paths)")
	servers := flag.Int("servers", 3, "holding device boxes")
	shards := flag.Int("shards", 0, "run boxes on a cluster of this many runtime shards (0: one goroutine per box)")
	netKind := flag.String("net", "mem", "base transport under the fault layer: mem or tcp")
	duration := flag.Duration("duration", 20*time.Second, "storm window before drain")
	hold := flag.Duration("hold", 300*time.Millisecond, "mean hold time per call")
	giveup := flag.Duration("giveup", 10*time.Second, "client abandons a call not flowing after this long")
	drop := flag.Float64("drop", 0.05, "envelope drop rate")
	dup := flag.Float64("dup", 0.02, "envelope duplication rate")
	delayRate := flag.Float64("delayrate", 0.0, "envelope delay rate")
	reorder := flag.Float64("reorder", 0.0, "envelope reorder rate")
	partition := flag.Duration("partition", 150*time.Millisecond, "mid-storm partition length (0: no sever)")
	seed := flag.Int64("seed", 1, "seed for faults, backoff jitter, and client schedules")
	bound := flag.Duration("bound", 5*time.Second, "bounded-time patience per temporal formula")
	poll := flag.Duration("poll", 25*time.Millisecond, "LTL tracker poll interval")
	giveupBudget := flag.Float64("giveup-budget", 0.01, "max tolerated client give-up rate")
	out := flag.String("out", "", "write the result JSON here (empty: stdout only)")
	check := flag.Bool("check", true, "exit nonzero when a resilience gate fails")
	crash := flag.Bool("crash", false, "bind the durable store and crash/recover it mid-storm")
	storeDir := flag.String("store-dir", "", "durable store directory (empty with -crash: a temp dir)")
	storeBackend := flag.String("store-backend", "btree", "index backend for the bound store")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the storm here")
	memprofile := flag.String("memprofile", "", "write an allocation profile of the storm here")
	flag.Parse()

	sess, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaosstorm:", err)
		os.Exit(1)
	}

	reg := telemetry.Enable()
	baseline := runtime.NumGoroutine()

	// The durable store rides along when asked for: client setups look
	// up the subscriber registry, teardowns cut CDRs.
	useStore := *crash || *storeDir != ""
	var storeReopen func() *store.Store
	var st *store.Store
	var binder *store.Binder
	if useStore {
		sdir := *storeDir
		if sdir == "" {
			var err error
			sdir, err = os.MkdirTemp("", "chaosstorm-store-*")
			if err != nil {
				fmt.Fprintln(os.Stderr, "chaosstorm:", err)
				os.Exit(1)
			}
			defer os.RemoveAll(sdir)
		}
		var err error
		st, err = store.Open(sdir, store.Options{Backend: *storeBackend})
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaosstorm:", err)
			os.Exit(1)
		}
		binder = store.NewBinder(st)
		// Every client gets a registry profile, so a lookup miss during
		// the storm means the store lost data, not that the cast grew.
		for i := 0; i < *paths; i++ {
			if err := st.PutProfile(store.Profile{
				Name: fmt.Sprintf("cli%d", i), Features: []string{"storm"},
			}); err != nil {
				fmt.Fprintln(os.Stderr, "chaosstorm:", err)
				os.Exit(1)
			}
		}
		storeReopen = func() *store.Store {
			s2, err := store.Open(sdir, store.Options{Backend: *storeBackend})
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaosstorm: GATE FAILED: store recovery: %v\n", err)
				os.Exit(1)
			}
			return s2
		}
	}

	var base transport.Network
	switch *netKind {
	case "mem":
		base = transport.NewMemNetwork()
	case "tcp":
		base = transport.TCPNetwork{}
	default:
		fmt.Fprintf(os.Stderr, "chaosstorm: unknown -net %q\n", *netKind)
		os.Exit(2)
	}
	fn := transport.NewFaultNetwork(base, transport.FaultProfile{
		Seed:         *seed,
		DropRate:     *drop,
		DupRate:      *dup,
		DelayRate:    *delayRate,
		ReorderRate:  *reorder,
		PartitionFor: *partition,
	})
	network := transport.NewRelNetwork(fn, transport.RelConfig{
		Seed:        *seed,
		GiveUpAfter: *giveup,
	})

	// With -shards the whole population shares a cluster's shard loops
	// and per-shard timer wheels; the chaos gates (formula violations,
	// drain, goroutine leaks) then certify the sharded runtime, not just
	// the one-goroutine-per-box layout.
	var cluster *box.Cluster
	newRunner := box.NewRunner
	if *shards > 0 {
		cluster = box.NewCluster(network, *shards)
		newRunner = func(b *box.Box, _ transport.Network) *box.Runner {
			return cluster.Runner(b)
		}
	}

	mon := pathmon.New()
	stats := &stormStats{}

	// Holding devices first, so every client dial lands on a listener.
	// Each device's hook maps every arriving setup to a monitor tunnel,
	// keyed on the stable client end so redials retarget rather than
	// accumulate.
	devAddrs := make([]string, *servers)
	devs := make([]*box.Runner, *servers)
	for i := 0; i < *servers; i++ {
		name := fmt.Sprintf("dev%d", i)
		addr := name
		if *netKind == "tcp" {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fmt.Fprintln(os.Stderr, "chaosstorm:", err)
				os.Exit(1)
			}
			addr = l.Addr().String()
			l.Close()
		}
		b := box.New(name, devProfile(name, 20000+i))
		devName := name
		b.Hook = func(ctx *box.Ctx, ev *box.Event) {
			if ev.Kind != box.EvEnvelope || !ev.Env.IsMeta() || ev.Env.Meta.Kind != sig.MetaSetup {
				return
			}
			from, ch := ev.Env.Meta.Get("from"), ev.Env.Meta.Get("chan")
			if from == "" || ch == "" {
				return
			}
			mon.RetargetTunnel(from, box.TunnelSlot(ch, 0), devName, box.TunnelSlot(ev.Channel, 0))
		}
		r := newRunner(b, network)
		if err := r.Listen(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "chaosstorm:", err)
			os.Exit(1)
		}
		mon.AddBox(r)
		devAddrs[i] = addr
		devs[i] = r
	}

	fmt.Fprintf(os.Stderr, "chaosstorm: %d paths vs %d devices over %s: drop=%.0f%% dup=%.0f%% delay=%.0f%% reorder=%.0f%% partition=%v seed=%d\n",
		*paths, *servers, *netKind, *drop*100, *dup*100, *delayRate*100, *reorder*100, *partition, *seed)

	rng := rand.New(rand.NewSource(*seed))
	clients := make([]*box.Runner, *paths)
	for i := range clients {
		name := fmt.Sprintf("cli%d", i)
		b := box.New(name, devProfile(name, 30000+i))
		r := newRunner(b, network)
		if binder != nil {
			// Bind before the program starts dialing, so every channel's
			// setup and teardown is accounted.
			r.SetLifecycle(binder)
		}
		r.SetProgram(clientProgram(stats, devAddrs[i%len(devAddrs)], *hold, *duration/4, *giveup, rng.Int63()))
		mon.AddBox(r)
		clients[i] = r
	}

	// Live formula checking for the length of the storm and the drain.
	tk := pathmon.NewTracker(mon, *bound)
	trackDone := make(chan struct{})
	trackStop := make(chan struct{})
	go func() {
		defer close(trackDone)
		tick := time.NewTicker(*poll)
		defer tick.Stop()
		for {
			select {
			case <-trackStop:
				return
			case <-tick.C:
				if _, err := tk.Poll(); err != nil {
					fmt.Fprintln(os.Stderr, "chaosstorm: tracker:", err)
				}
			}
		}
	}()

	// The storm window, with one partition dropped in the middle — and,
	// in crash mode, the store's power cut at the same moment: faults
	// above and below the boxes at once.
	half := *duration / 2
	time.Sleep(half)
	if *partition > 0 {
		fmt.Fprintf(os.Stderr, "chaosstorm: mid-storm sever: every link cut, dials refused for %v\n", *partition)
		fn.Sever()
	}
	var ackedAtCrash, issuedAtCrash uint64
	var cdrRecovered int
	var storeRecoveryMS float64
	if *crash {
		// Capture what the store acknowledged, cut its power, recover
		// from the WAL, and swap the recovered store in live. Teardowns
		// landing in the unbound window are counted by the binder.
		ackedAtCrash = st.DurableCDRs()
		issuedAtCrash = binder.Issued()
		binder.Swap(nil)
		st.Crash()
		start := time.Now()
		st2 := storeReopen()
		storeRecoveryMS = float64(time.Since(start)) / float64(time.Millisecond)
		cdrRecovered = st2.CDRCount()
		binder.Swap(st2)
		st = st2
		fmt.Fprintf(os.Stderr, "chaosstorm: store crash at midpoint: %d CDRs acked, %d recovered in %.1f ms, store re-bound\n",
			ackedAtCrash, cdrRecovered, storeRecoveryMS)
	}
	time.Sleep(*duration - half)

	// Drain: clients finish their current lifecycle and park; every
	// path must quiesce with its formula satisfied.
	stats.stop.Store(true)
	drainDeadline := time.Now().Add(*giveup + *bound + 5*time.Second)
	for stats.idle.Load() < int64(*paths) && time.Now().Before(drainDeadline) {
		time.Sleep(20 * time.Millisecond)
	}
	close(trackStop)
	<-trackDone
	wedged, err := tk.Drain()
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaosstorm: drain:", err)
	}

	// Shut everything down and check nothing leaked: no pump, redial,
	// shard loop, or delayed-send goroutine may outlive the storm.
	for _, r := range clients {
		r.Stop()
	}
	for _, r := range devs {
		r.Stop()
	}
	if cluster != nil {
		cluster.Stop() // shard loops and per-shard wheels
	}
	fn.Stop()

	// Stop flushed every live channel through the binder; settle the
	// log and reconcile CDRs against the lifecycle, across one more
	// restart.
	var cdrFinal, cdrReopen int
	if useStore {
		if err := st.Sync(); err != nil {
			fmt.Fprintln(os.Stderr, "chaosstorm: store sync:", err)
		}
		cdrFinal = st.CDRCount()
		st.Close()
		st = storeReopen()
		cdrReopen = st.CDRCount()
		st.Close()
	}
	leaked := true
	var finalG int
	for end := time.Now().Add(3 * time.Second); time.Now().Before(end); {
		finalG = runtime.NumGoroutine()
		if finalG <= baseline+2 { // the shared timer wheel, a little GC slack
			leaked = false
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if leaked {
		buf := make([]byte, 1<<20)
		fmt.Fprintf(os.Stderr, "chaosstorm: leaked goroutines:\n%s\n", buf[:runtime.Stack(buf, true)])
	}

	if err := sess.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "chaosstorm:", err)
	}

	stTrack := tk.Stats()
	snap := reg.Snapshot()
	counter := func(name string) int64 { return int64(snap.Counters[name]) }
	recoveries := append([]time.Duration(nil), stTrack.Recoveries...)
	sort.Slice(recoveries, func(i, j int) bool { return recoveries[i] < recoveries[j] })
	pctMS := func(q float64) float64 {
		if len(recoveries) == 0 {
			return 0
		}
		idx := int(q * float64(len(recoveries)-1))
		return float64(recoveries[idx]) / float64(time.Millisecond)
	}

	attempts := stats.setups.Load() + stats.giveups.Load()
	giveupRate := 0.0
	if attempts > 0 {
		giveupRate = float64(stats.giveups.Load()) / float64(attempts)
	}
	res := result{
		Date:        time.Now().Format("2006-01-02"),
		Net:         *netKind,
		Paths:       *paths,
		Servers:     *servers,
		Shards:      *shards,
		DurationMS:  duration.Milliseconds(),
		Drop:        *drop,
		Dup:         *dup,
		DelayRate:   *delayRate,
		Reorder:     *reorder,
		PartitionMS: partition.Milliseconds(),
		Seed:        *seed,
		BoundMS:     bound.Milliseconds(),

		Setups:      stats.setups.Load(),
		Completed:   stats.completed.Load(),
		CallGiveups: stats.giveups.Load(),
		DialRefused: stats.refused.Load(),
		GiveupRate:  giveupRate,
		Drained:     stats.idle.Load(),

		FaultsInjected:   counter(transport.MetricFaultsInjected),
		Reconnects:       counter(transport.MetricReconnects),
		Retransmits:      counter(slot.MetricRetransmits),
		DupDropped:       counter(slot.MetricDupDropped),
		TransportGiveups: counter(transport.MetricGiveups),
		BacklogDropped:   counter(transport.MetricBacklogDropped),

		LTLPolls:      stTrack.Polls,
		LTLViolations: nonNull(stTrack.Violations),
		Wedged:        nonNull(wedged),

		RecoveryCount: int64(len(recoveries)),
		RecoveryP50MS: pctMS(0.50),
		RecoveryP95MS: pctMS(0.95),
		RecoveryMaxMS: pctMS(1.0),

		GoroutinesBaseline: baseline,
		GoroutinesFinal:    finalG,
		Leaked:             leaked,
	}
	if useStore {
		res.StoreBackend = *storeBackend
		res.StoreCrashed = *crash
		res.StoreLookups = counter(store.MetricLookups)
		res.StoreLookupMiss = counter(store.MetricLookupMiss)
		res.CDRIssued = binder.Issued()
		res.CDRAckedAtCrash = ackedAtCrash
		res.CDRRecovered = cdrRecovered
		res.CDRMissedUnbound = binder.Missed()
		res.CDRFinal = cdrFinal
		res.CDRFinalReopen = cdrReopen
		res.StoreRecoveryMS = storeRecoveryMS
	}

	blob, _ := json.MarshalIndent(res, "", "  ")
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "chaosstorm:", err)
			os.Exit(1)
		}
	}

	if !*check {
		return
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "chaosstorm: GATE FAILED: "+format+"\n", args...)
		os.Exit(1)
	}
	// A verdict field serialized as null means the harness never produced
	// a verdict at all — downstream tooling must not read that as "zero
	// violations". The gate treats null as a failure in its own right.
	if bytes.Contains(blob, []byte(`"ltl_violations": null`)) ||
		bytes.Contains(blob, []byte(`"wedged_paths": null`)) {
		fail("result serialized null for a formula-verdict field")
	}
	if n := len(stTrack.Violations); n > 0 {
		fail("%d bounded-time formula violations, first: %s", n, stTrack.Violations[0])
	}
	if len(wedged) > 0 {
		fail("%d wedged paths after drain, first: %s", len(wedged), wedged[0])
	}
	if stats.idle.Load() < int64(*paths) {
		fail("only %d/%d clients drained", stats.idle.Load(), *paths)
	}
	if giveupRate >= *giveupBudget {
		fail("give-up rate %.2f%% >= budget %.2f%%", giveupRate*100, *giveupBudget*100)
	}
	if leaked {
		fail("goroutines leaked: baseline %d, final %d", baseline, finalG)
	}
	if useStore {
		// CDR-vs-lifecycle reconciliation across the restart(s).
		if *crash && uint64(cdrRecovered) < ackedAtCrash {
			fail("store crash lost acknowledged CDRs: %d acked, %d recovered", ackedAtCrash, cdrRecovered)
		}
		issuedAfter := res.CDRIssued - issuedAtCrash
		expect := uint64(cdrRecovered) + issuedAfter
		if !*crash {
			expect = res.CDRIssued
		}
		if uint64(cdrFinal) != expect {
			fail("CDR log does not reconcile with lifecycle: %d in log, %d expected (%d recovered + %d issued after swap)",
				cdrFinal, expect, cdrRecovered, issuedAfter)
		}
		if cdrReopen != cdrFinal {
			fail("final reopen replayed %d CDRs, log held %d", cdrReopen, cdrFinal)
		}
		if res.StoreLookupMiss > 0 {
			fail("%d registry lookups missed despite preloaded profiles", res.StoreLookupMiss)
		}
	}
	fmt.Fprintf(os.Stderr, "chaosstorm: all gates passed: %d lifecycles, %d reconnects, %d retransmits, %d recoveries, 0 violations\n",
		res.Completed, res.Reconnects, res.Retransmits, res.RecoveryCount)
}

func devProfile(name string, port int) *core.EndpointProfile {
	return core.NewEndpointProfile(name, "10.2.0.1", port,
		[]sig.Codec{sig.G711, sig.G726}, []sig.Codec{sig.G711, sig.G726})
}

// cyclesPerChannel is how many open/close goal cycles a client runs on
// one dialed channel before tearing it down and redialing. Goal cycles
// on a persistent channel keep the signaling path's identity stable, so
// the tracker observes real down→flowing transitions and measures
// their recovery latency; the periodic teardown/redial keeps the
// dial/greet/hello machinery in the storm too.
const cyclesPerChannel = 8

// clientProgram is one path's lifecycle under chaos: dial a channel
// toward addr, then cycle its slot goal — open until flowing, hold,
// close until quiesced — redialing the channel every few cycles, until
// the stop flag parks the client idle at the end of a cycle. First
// dials are staggered so the storm does not open every path in the
// same instant.
func clientProgram(stats *stormStats, addr string, hold, stagger, giveup time.Duration, seed int64) *box.Program {
	const ch = "c"
	s0 := box.TunnelSlot(ch, 0)
	rng := rand.New(rand.NewSource(seed))
	jitter := func() time.Duration {
		return hold/2 + time.Duration(rng.Int63n(int64(hold)))
	}
	delay := time.Duration(rng.Int63n(int64(stagger) + 1))
	cycles := 0
	closed := func(ctx *box.Ctx) bool {
		s := ctx.Box().Slot(s0)
		return s == nil || s.State() == slot.Closed
	}
	lost := func(ctx *box.Ctx) bool {
		// The transport gave the channel up (portLost synthesized a
		// teardown) or the dial itself was refused.
		return ctx.OnMeta(ch, sig.MetaUnavailable) || !ctx.Box().HasChannel(ch)
	}
	states := []*box.State{
		{
			Name:    "stagger",
			OnEnter: func(ctx *box.Ctx) { ctx.SetTimer("start", delay) },
			Trans: []box.Trans{
				{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("start") }, To: "dial"},
			},
		},
		{
			Name:    "dial",
			OnEnter: func(ctx *box.Ctx) { cycles = 0; ctx.Dial(ch, addr) },
			Trans: []box.Trans{
				// A refused dial (partition window) is not an abandoned
				// call: back off and retry instead of spinning.
				{When: func(ctx *box.Ctx) bool { return ctx.OnMeta(ch, sig.MetaUnavailable) }, To: "backoff",
					Do: func(ctx *box.Ctx) { stats.refused.Add(1) }},
				{When: func(ctx *box.Ctx) bool { return ctx.Box().HasChannel(ch) }, To: "open"},
			},
		},
		{
			Name: "backoff",
			OnEnter: func(ctx *box.Ctx) {
				ctx.Teardown(ch)
				ctx.SetTimer("retry", 50*time.Millisecond+time.Duration(rng.Int63n(int64(100*time.Millisecond))))
			},
			Trans: []box.Trans{
				{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("retry") && stats.stop.Load() }, To: "idle",
					Do: func(*box.Ctx) { stats.idle.Add(1) }},
				{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("retry") }, To: "dial"},
			},
		},
		{
			Name:    "open",
			Annots:  []box.Annot{box.OpenSlotAnn(s0, sig.Audio)},
			OnEnter: func(ctx *box.Ctx) { ctx.SetTimer("giveup", giveup) },
			Trans: []box.Trans{
				{When: func(ctx *box.Ctx) bool { return ctx.IsFlowing(s0) }, To: "hold",
					Do: func(ctx *box.Ctx) {
						ctx.CancelTimer("giveup")
						stats.setups.Add(1)
					}},
				{When: lost, To: "backoff",
					Do: func(ctx *box.Ctx) { ctx.CancelTimer("giveup") }},
				{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("giveup") }, To: "redial",
					Do: func(ctx *box.Ctx) { stats.giveups.Add(1) }},
			},
		},
		{
			Name:    "hold",
			Annots:  []box.Annot{box.OpenSlotAnn(s0, sig.Audio)},
			OnEnter: func(ctx *box.Ctx) { ctx.SetTimer("hold", jitter()) },
			Trans: []box.Trans{
				{When: lost, To: "backoff"},
				{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("hold") }, To: "close",
					Do: func(ctx *box.Ctx) { stats.completed.Add(1) }},
			},
		},
		{
			Name:    "close",
			Annots:  []box.Annot{box.CloseSlotAnn(s0)},
			OnEnter: func(ctx *box.Ctx) { cycles++; ctx.SetTimer("giveup", giveup) },
			Trans: []box.Trans{
				{When: func(ctx *box.Ctx) bool { return closed(ctx) && stats.stop.Load() }, To: "redial",
					Do: func(ctx *box.Ctx) { ctx.CancelTimer("giveup") }},
				{When: func(ctx *box.Ctx) bool { return closed(ctx) && cycles >= cyclesPerChannel }, To: "redial",
					Do: func(ctx *box.Ctx) { ctx.CancelTimer("giveup") }},
				{When: closed, To: "open",
					Do: func(ctx *box.Ctx) { ctx.CancelTimer("giveup") }},
				{When: lost, To: "backoff",
					Do: func(ctx *box.Ctx) { ctx.CancelTimer("giveup") }},
				{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("giveup") }, To: "redial",
					Do: func(ctx *box.Ctx) { stats.giveups.Add(1) }},
			},
		},
		{
			Name:    "redial",
			OnEnter: func(ctx *box.Ctx) { ctx.Teardown(ch) },
			Trans: []box.Trans{
				{When: func(*box.Ctx) bool { return stats.stop.Load() }, To: "idle",
					Do: func(*box.Ctx) { stats.idle.Add(1) }},
				{When: func(*box.Ctx) bool { return true }, To: "dial"},
			},
		},
		{Name: "idle"},
	}
	return &box.Program{Initial: "stagger", States: states}
}

// nonNull guards the verdict fields: a nil slice JSON-encodes as null,
// and null must never be mistaken for "none found".
func nonNull(s []string) []string {
	if s == nil {
		return []string{}
	}
	return s
}
