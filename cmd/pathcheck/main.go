// pathcheck runs the verification suite of paper Section VIII-A: the
// twelve signaling-path models — every end-goal combination, with and
// without a flowlink — checked for safety (no deadlocks; final states
// have every slot closed or flowing and all channels empty) and for
// their Section V temporal specification under weak fairness.
//
// Usage:
//
//	pathcheck [-budget N] [-flowlinks N] [-blowup]
//
// -budget sets the chaos budget of the nondeterministic initial phases
// (default: the per-model defaults). -flowlinks restricts to one row
// of the suite. -blowup prints the flowlink cost-comparison table that
// reproduces the paper's ×300 memory / ×1000 time observation.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"ipmedia/internal/mc"
	"ipmedia/internal/mcmodel"
)

func main() {
	budget := flag.Int("budget", 0, "chaos budget per goal object (0: per-model default)")
	flowlinks := flag.Int("flowlinks", -1, "check only paths with this many flowlinks (-1: both 0 and 1)")
	blowup := flag.Bool("blowup", false, "print the flowlink cost-comparison table")
	maxStates := flag.Int("maxstates", 30_000_000, "abort exploration beyond this many states")
	compact := flag.Bool("compact", false, "hash compaction: 64-bit state fingerprints (like Spin's compression)")
	flag.Parse()

	opts := mc.Options{MaxStates: *maxStates, HashCompaction: *compact}
	if *blowup {
		runBlowup(opts)
		return
	}

	fls := []int{0, 1}
	if *flowlinks >= 0 {
		fls = []int{*flowlinks}
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "MODEL\tSPEC\tSTATES\tTRANSITIONS\tTIME\tMEMORY\tSAFETY\tLIVENESS")
	failed := 0
	for _, fl := range fls {
		for _, cfg := range mcmodel.Configs(fl) {
			cfg.ChaosBudget = *budget
			v := mcmodel.Check(cfg, opts)
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%v\t%s\t%s\t%s\n",
				v.Config.Name(), v.Prop,
				v.Result.States, v.Result.Transitions, v.Result.Elapsed.Round(1e6),
				fmtBytes(v.Result.MemBytes),
				verdict(v.Safety), verdict(v.Liveness))
			if !v.OK() {
				failed++
			}
		}
	}
	w.Flush()
	if failed > 0 {
		fmt.Printf("\n%d model(s) FAILED\n", failed)
		os.Exit(1)
	}
	fmt.Println("\nall models verified: safety + temporal specification hold under weak fairness")
}

func runBlowup(opts mc.Options) {
	// Same chaos budget on both sides so the comparison isolates the
	// flowlink (paper: "varying only in that one has a flowlink and the
	// other does not").
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "PATH TYPE\tSTATES 0fl\tSTATES 1fl\tRATIO\tTIME 0fl\tTIME 1fl\tRATIO")
	var sumStates, sumTime float64
	rows := 0
	for _, combo := range mcmodel.Combos {
		base := mcmodel.Check(mcmodel.Config{Left: combo[0], Right: combo[1], Flowlinks: 0, ChaosBudget: 2}, opts)
		link := mcmodel.Check(mcmodel.Config{Left: combo[0], Right: combo[1], Flowlinks: 1, ChaosBudget: 2}, opts)
		sRatio := float64(link.Result.States) / float64(base.Result.States)
		tRatio := float64(link.Result.Elapsed) / float64(base.Result.Elapsed)
		fmt.Fprintf(w, "%s--%s\t%d\t%d\tx%.0f\t%v\t%v\tx%.0f\n",
			combo[0], combo[1],
			base.Result.States, link.Result.States, sRatio,
			base.Result.Elapsed.Round(1e6), link.Result.Elapsed.Round(1e6), tRatio)
		sumStates += sRatio
		sumTime += tRatio
		rows++
		if !base.OK() || !link.OK() {
			fmt.Fprintf(w, "\tVERIFICATION FAILED: %v %v %v %v\n", base.Safety, base.Liveness, link.Safety, link.Liveness)
		}
	}
	w.Flush()
	fmt.Printf("\naverage blow-up from one flowlink: states x%.0f, time x%.0f\n", sumStates/float64(rows), sumTime/float64(rows))
	fmt.Println("(paper, on its Spin models: memory x300, time x1000 on average)")
}

func verdict(err error) string {
	if err == nil {
		return "ok"
	}
	s := err.Error()
	if len(s) > 60 {
		s = s[:60] + "..."
	}
	return "FAIL: " + s
}

func fmtBytes(b uint64) string {
	switch {
	case b > 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b > 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%dKB", b/1024)
	}
}
