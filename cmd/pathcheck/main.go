// pathcheck runs the verification suite of paper Section VIII-A: the
// twelve signaling-path models — every end-goal combination, with and
// without a flowlink — checked for safety (no deadlocks; final states
// have every slot closed or flowing and all channels empty) and for
// their Section V temporal specification under weak fairness.
//
// Usage:
//
//	pathcheck [-budget N] [-flowlinks N] [-workers N] [-blowup] [-bench FILE]
//
// -budget sets the chaos budget of the nondeterministic initial phases
// (default: the per-model defaults). -flowlinks restricts to one row
// of the suite. -workers sets the exploration goroutine count (default
// GOMAXPROCS; 1 selects the sequential reference explorer). -blowup
// prints the flowlink cost-comparison table that reproduces the
// paper's ×300 memory / ×1000 time observation. -bench writes a JSON
// record of suite wall-clock at workers 1 vs N (see BENCH_mc.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"ipmedia/internal/mc"
	"ipmedia/internal/mcmodel"
)

func main() {
	budget := flag.Int("budget", 0, "chaos budget per goal object (0: per-model default)")
	flowlinks := flag.Int("flowlinks", -1, "check only paths with this many flowlinks (-1: both 0 and 1)")
	blowup := flag.Bool("blowup", false, "print the flowlink cost-comparison table")
	maxStates := flag.Int("maxstates", 30_000_000, "abort exploration beyond this many states")
	compact := flag.Bool("compact", false, "hash compaction: 64-bit state fingerprints (like Spin's compression)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "exploration goroutines (1: sequential reference)")
	bench := flag.String("bench", "", "write a workers-1-vs-N suite benchmark as JSON to this file")
	flag.Parse()

	opts := mc.Options{MaxStates: *maxStates, HashCompaction: *compact, Workers: *workers}
	if *bench != "" {
		runBench(opts, *bench)
		return
	}
	if *blowup {
		runBlowup(opts)
		return
	}

	fls := []int{0, 1}
	if *flowlinks >= 0 {
		fls = []int{*flowlinks}
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "MODEL\tSPEC\tSTATES\tTRANSITIONS\tTIME\tMEMORY\tSAFETY\tLIVENESS")
	failed := 0
	for _, fl := range fls {
		for _, cfg := range mcmodel.Configs(fl) {
			cfg.ChaosBudget = *budget
			v := mcmodel.Check(cfg, opts)
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%v\t%s\t%s\t%s\n",
				v.Config.Name(), v.Prop,
				v.Result.States, v.Result.Transitions, v.Result.Elapsed.Round(1e6),
				fmtBytes(v.Result.MemBytes),
				verdict(v.Safety), verdict(v.Liveness))
			if !v.OK() {
				failed++
			}
		}
	}
	w.Flush()
	if failed > 0 {
		fmt.Printf("\n%d model(s) FAILED\n", failed)
		os.Exit(1)
	}
	fmt.Println("\nall models verified: safety + temporal specification hold under weak fairness")
}

// benchRun is one suite pass at a fixed worker count.
type benchRun struct {
	Workers     int     `json:"workers"`
	States      int     `json:"states"`
	Transitions int     `json:"transitions"`
	WallMS      float64 `json:"wall_ms"`
	StatesPerS  float64 `json:"states_per_sec"`
}

// benchReport is the BENCH_mc.json schema.
type benchReport struct {
	Date       string     `json:"date"`
	GoMaxProcs int        `json:"gomaxprocs"`
	NumCPU     int        `json:"num_cpu"`
	Budget     string     `json:"budget"`
	Runs       []benchRun `json:"runs"`
	SpeedupNx1 float64    `json:"speedup_workersN_vs_1"`
	Note       string     `json:"note,omitempty"`
}

// runBench runs the twelve-model suite once sequentially and once at
// opts.Workers, and writes the comparison as JSON. Verdicts must pass
// and both runs must agree on totals, so this doubles as an end-to-end
// agreement check.
func runBench(opts mc.Options, path string) {
	runAt := func(workers int) benchRun {
		o := opts
		o.Workers = workers
		r := benchRun{Workers: workers}
		start := time.Now()
		for _, v := range mcmodel.Suite(o) {
			if !v.OK() {
				fmt.Fprintf(os.Stderr, "bench: %s FAILED: safety=%v liveness=%v\n", v.Config.Name(), v.Safety, v.Liveness)
				os.Exit(1)
			}
			r.States += v.Result.States
			r.Transitions += v.Result.Transitions
		}
		wall := time.Since(start)
		r.WallMS = float64(wall.Microseconds()) / 1000
		r.StatesPerS = float64(r.States) / wall.Seconds()
		return r
	}
	seq := runAt(1)
	rep := benchReport{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Budget:     "per-model defaults",
		Runs:       []benchRun{seq},
	}
	if n := opts.Workers; n > 1 {
		par := runAt(n)
		if par.States != seq.States || par.Transitions != seq.Transitions {
			fmt.Fprintf(os.Stderr, "bench: parallel totals (%d, %d) disagree with sequential (%d, %d)\n",
				par.States, par.Transitions, seq.States, seq.Transitions)
			os.Exit(1)
		}
		rep.Runs = append(rep.Runs, par)
		rep.SpeedupNx1 = seq.WallMS / par.WallMS
	} else {
		rep.SpeedupNx1 = 1
	}
	if runtime.NumCPU() == 1 {
		rep.Note = "single-CPU host: parallel mode cannot beat sequential wall-clock here; see EXPERIMENTS.md"
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: workers=1 %.0fms", path, seq.WallMS)
	if len(rep.Runs) > 1 {
		fmt.Printf(", workers=%d %.0fms (x%.2f)", rep.Runs[1].Workers, rep.Runs[1].WallMS, rep.SpeedupNx1)
	}
	fmt.Println()
}

func runBlowup(opts mc.Options) {
	// Same chaos budget on both sides so the comparison isolates the
	// flowlink (paper: "varying only in that one has a flowlink and the
	// other does not").
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "PATH TYPE\tSTATES 0fl\tSTATES 1fl\tRATIO\tTIME 0fl\tTIME 1fl\tRATIO")
	var sumStates, sumTime float64
	rows := 0
	for _, combo := range mcmodel.Combos {
		base := mcmodel.Check(mcmodel.Config{Left: combo[0], Right: combo[1], Flowlinks: 0, ChaosBudget: 2}, opts)
		link := mcmodel.Check(mcmodel.Config{Left: combo[0], Right: combo[1], Flowlinks: 1, ChaosBudget: 2}, opts)
		sRatio := float64(link.Result.States) / float64(base.Result.States)
		tRatio := float64(link.Result.Elapsed) / float64(base.Result.Elapsed)
		fmt.Fprintf(w, "%s--%s\t%d\t%d\tx%.0f\t%v\t%v\tx%.0f\n",
			combo[0], combo[1],
			base.Result.States, link.Result.States, sRatio,
			base.Result.Elapsed.Round(1e6), link.Result.Elapsed.Round(1e6), tRatio)
		sumStates += sRatio
		sumTime += tRatio
		rows++
		if !base.OK() || !link.OK() {
			fmt.Fprintf(w, "\tVERIFICATION FAILED: %v %v %v %v\n", base.Safety, base.Liveness, link.Safety, link.Liveness)
		}
	}
	w.Flush()
	fmt.Printf("\naverage blow-up from one flowlink: states x%.0f, time x%.0f\n", sumStates/float64(rows), sumTime/float64(rows))
	fmt.Println("(paper, on its Spin models: memory x300, time x1000 on average)")
}

func verdict(err error) string {
	if err == nil {
		return "ok"
	}
	s := err.Error()
	if len(s) > 60 {
		s = s[:60] + "..."
	}
	return "FAIL: " + s
}

func fmtBytes(b uint64) string {
	switch {
	case b > 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b > 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%dKB", b/1024)
	}
}
