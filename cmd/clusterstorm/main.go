// clusterstorm is the multi-process resilience harness: the chaos
// storm's call lifecycles run across a fleet of supervised shard
// processes, and the chaos is a real SIGKILL. One binary plays both
// roles: the parent supervises N shard processes (spawned from this
// same executable with -shard), kills one mid-storm, and audits the
// fleet afterwards; each child hosts the slice of the box population
// that jump-hashes onto it, with cross-shard channels riding the
// inter-shard carrier mux (RelNetwork over TCP) so a box cannot tell
// whether its peer is a goroutine away or a process away.
//
// Mid-storm the parent SIGKILLs a shard — no flush, no goodbye. The
// supervisor restarts it with backoff; peers' carriers are invalidated
// onto the new address; the restarted shard recovers its shard-local
// CDR store from its WAL; and the storm keeps going. The run gates on
// the full robustness story: the victim restarted (and nobody gave
// up), calls kept completing after the kill, fleet-wide Section V
// formula checking stayed clean (including the victim's last-reported
// count before it died), cross-shard setups stayed under the bound,
// every client drained, no acked CDR was lost (fleet reconciliation
// reopens every shard's store), no child process survived shutdown,
// and no goroutine leaked in the parent.
//
// Results land in BENCH_cluster.json beside the single-process
// baseline from BENCH_runtime.json.
//
// Usage:
//
//	clusterstorm [-shards 3] [-paths 24] [-servers 6] [-duration 12s]
//	             [-hold 300ms] [-giveup 8s] [-bound 5s] [-poll 25ms]
//	             [-hb 150ms] [-kill 1] [-seed 1] [-min-cps 2]
//	             [-giveup-budget 0.05] [-store-backend btree]
//	             [-store-dir DIR] [-out BENCH_cluster.json] [-check]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/pathmon"
	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
	"ipmedia/internal/store"
	"ipmedia/internal/telemetry"
	"ipmedia/internal/transport"
)

// Setup-latency histograms, split by whether the dialed box is owned
// by this shard or a peer process.
const (
	metricSetupLocal = "cluster.setup_local"
	metricSetupCross = "cluster.setup_cross"
)

type options struct {
	shard        int // -1: parent
	shards       int
	paths        int
	servers      int
	duration     time.Duration
	hold         time.Duration
	giveup       time.Duration
	bound        time.Duration
	poll         time.Duration
	hb           time.Duration
	kills        int
	seed         int64
	minCPS       float64
	giveupBudget float64
	storeBackend string
	storeDir     string
	ctlAddr      string
	out          string
	check        bool
}

func parseFlags() *options {
	o := &options{}
	flag.IntVar(&o.shard, "shard", -1, "run as shard process N (internal; spawned by the parent)")
	flag.IntVar(&o.shards, "shards", 3, "shard processes in the fleet")
	flag.IntVar(&o.paths, "paths", 24, "concurrent call lifecycles across the fleet")
	flag.IntVar(&o.servers, "servers", 6, "holding device boxes across the fleet")
	flag.DurationVar(&o.duration, "duration", 12*time.Second, "storm window before drain")
	flag.DurationVar(&o.hold, "hold", 300*time.Millisecond, "mean hold time per call")
	flag.DurationVar(&o.giveup, "giveup", 8*time.Second, "client abandons a call not flowing after this long")
	flag.DurationVar(&o.bound, "bound", 5*time.Second, "bounded-time patience per temporal formula")
	flag.DurationVar(&o.poll, "poll", 25*time.Millisecond, "LTL tracker poll interval")
	flag.DurationVar(&o.hb, "hb", 150*time.Millisecond, "shard heartbeat cadence")
	flag.IntVar(&o.kills, "kill", 1, "shards to SIGKILL mid-storm")
	flag.Int64Var(&o.seed, "seed", 1, "seed for placement-independent schedules and jitter")
	flag.Float64Var(&o.minCPS, "min-cps", 2, "minimum aggregate completed calls per second")
	flag.Float64Var(&o.giveupBudget, "giveup-budget", 0.05, "max tolerated client give-up rate")
	flag.StringVar(&o.storeBackend, "store-backend", "btree", "index backend for shard stores")
	flag.StringVar(&o.storeDir, "store-dir", "", "base directory for shard stores (empty: a temp dir)")
	flag.StringVar(&o.ctlAddr, "ctl", "", "supervisor control address (internal; child only)")
	flag.StringVar(&o.out, "out", "", "write the result JSON here (empty: stdout only)")
	flag.BoolVar(&o.check, "check", true, "exit nonzero when a resilience gate fails")
	flag.Parse()
	return o
}

func main() {
	o := parseFlags()
	if o.shard >= 0 {
		childMain(o)
		return
	}
	parentMain(o)
}

func devName(i int) string { return fmt.Sprintf("dev%d", i) }
func cliName(i int) string { return fmt.Sprintf("cli%d", i) }

func devProfile(name string, port int) *core.EndpointProfile {
	return core.NewEndpointProfile(name, "10.3.0.1", port,
		[]sig.Codec{sig.G711, sig.G726}, []sig.Codec{sig.G711, sig.G726})
}

// ---------------------------------------------------------------------
// Shard report: what a child ships back over ctl/report.

type shardReport struct {
	Shard     int   `json:"shard"`
	Boxes     int   `json:"boxes"`
	Setups    int64 `json:"setups"`
	Completed int64 `json:"completed_calls"`
	Giveups   int64 `json:"call_giveups"`
	Refused   int64 `json:"dials_refused"`
	Clients   int64 `json:"clients"`
	Idle      int64 `json:"clients_drained"`

	Pathmon pathmon.Report `json:"pathmon"`

	CDRIssued  uint64 `json:"cdrs_issued"`
	CDRDurable uint64 `json:"cdrs_durable"`
	CDRCount   int    `json:"cdrs_in_log"`
	LookupMiss int64  `json:"store_lookup_miss"`

	LocalSetups     uint64  `json:"local_setups"`
	LocalSetupP95MS float64 `json:"local_setup_p95_ms"`
	CrossSetups     uint64  `json:"cross_setups"`
	CrossSetupP50MS float64 `json:"cross_setup_p50_ms"`
	CrossSetupP95MS float64 `json:"cross_setup_p95_ms"`
}

// ---------------------------------------------------------------------
// Child: one shard process.

type stormStats struct {
	setups    atomic.Int64
	completed atomic.Int64
	giveups   atomic.Int64
	refused   atomic.Int64
	idle      atomic.Int64
	stop      atomic.Bool
}

func childMain(o *options) {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "[shard %d] "+format+"\n", append([]any{o.shard}, args...)...)
	}
	reg := telemetry.Enable()
	health := &telemetry.Health{}
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		logf("http listen: %v", err)
		os.Exit(1)
	}
	go http.Serve(httpLn, telemetry.Handler(reg, health))

	st, err := store.Open(o.storeDir, store.Options{Backend: o.storeBackend})
	if err != nil {
		logf("store open: %v", err)
		os.Exit(1)
	}
	if rec := st.Recovery(); rec.Records > 0 {
		logf("store recovered: %d records, %d CDRs", rec.Records, st.CDRCount())
	}
	binder := store.NewBinder(st)

	// Inter-shard carriers: reliable channels over real TCP, multiplexed.
	// The seed is salted with the pid: rel channel identities derive from
	// the seed, and a restarted shard re-dialing a surviving peer with
	// its predecessor's identity would be "rebound" onto the dead
	// epoch's port — mismatched seqnos, silent stall. Each process
	// epoch must dial with identities of its own.
	carrierNet := transport.NewRelNetwork(transport.TCPNetwork{}, transport.RelConfig{
		Seed: o.seed + int64(o.shard) + int64(os.Getpid())*2654435761,
	})
	mux := transport.NewMux(carrierNet)
	carrierAddr, err := mux.ListenCarrier("127.0.0.1:0")
	if err != nil {
		logf("carrier listen: %v", err)
		os.Exit(1)
	}
	router := box.NewRouter(o.shard, o.shards, transport.NewMemNetwork(), mux)

	mon := pathmon.New()
	stats := &stormStats{}
	hLocal, hCross := telemetry.H(metricSetupLocal), telemetry.H(metricSetupCross)

	// This process creates exactly the boxes the placement function
	// assigns to it; the rest of the population lives in peer processes
	// reachable through the router.
	var runners []*box.Runner
	boxes := 0
	for i := 0; i < o.servers; i++ {
		name := devName(i)
		if box.ShardOfName(name, o.shards) != o.shard {
			continue
		}
		b := box.New(name, devProfile(name, 20000+i))
		dn := name
		b.Hook = func(ctx *box.Ctx, ev *box.Event) {
			if ev.Kind != box.EvEnvelope || !ev.Env.IsMeta() || ev.Env.Meta.Kind != sig.MetaSetup {
				return
			}
			from, ch := ev.Env.Meta.Get("from"), ev.Env.Meta.Get("chan")
			if from == "" || ch == "" {
				return
			}
			// Only same-shard pairs are trackable here: a remote client's
			// slot state lives in another process, and a path with an
			// unobservable end cannot be held to its formula by this
			// tracker. Cross-shard behavior is gated at the call level.
			if box.ShardOfName(from, o.shards) != o.shard {
				return
			}
			mon.RetargetTunnel(from, box.TunnelSlot(ch, 0), dn, box.TunnelSlot(ev.Channel, 0))
		}
		r := box.NewRunner(b, router)
		if err := r.Listen(name, nil); err != nil {
			logf("listen %s: %v", name, err)
			os.Exit(1)
		}
		mon.AddBox(r)
		runners = append(runners, r)
		boxes++
	}
	rng := rand.New(rand.NewSource(o.seed*7919 + int64(o.shard)))
	var clientCount int64
	for i := 0; i < o.paths; i++ {
		name := cliName(i)
		if box.ShardOfName(name, o.shards) != o.shard {
			continue
		}
		if err := st.PutProfile(store.Profile{Name: name, Features: []string{"storm"}}); err != nil {
			logf("profile %s: %v", name, err)
			os.Exit(1)
		}
		dev := devName(i % o.servers)
		hist := hLocal
		if box.ShardOfName(dev, o.shards) != o.shard {
			hist = hCross
		}
		b := box.New(name, devProfile(name, 30000+i))
		r := box.NewRunner(b, router)
		r.SetLifecycle(binder)
		r.SetProgram(clientProgram(stats, dev, hist, o.hold, o.duration/4, o.giveup, rng.Int63()))
		mon.AddBox(r)
		runners = append(runners, r)
		boxes++
		clientCount++
	}
	logf("hosting %d boxes (%d clients), carrier %s", boxes, clientCount, carrierAddr)

	tk := pathmon.NewTracker(mon, o.bound)
	trackStop, trackDone := make(chan struct{}), make(chan struct{})
	go func() {
		defer close(trackDone)
		tick := time.NewTicker(o.poll)
		defer tick.Stop()
		for {
			select {
			case <-trackStop:
				return
			case <-tick.C:
				if _, err := tk.Poll(); err != nil {
					logf("tracker: %v", err)
				}
			}
		}
	}()

	stopCh := make(chan struct{})
	var stopOnce sync.Once
	var drainOnce sync.Once
	drain := func() {
		drainOnce.Do(func() {
			stats.stop.Store(true)
			deadline := time.Now().Add(o.giveup + o.bound + 5*time.Second)
			for stats.idle.Load() < clientCount && time.Now().Before(deadline) {
				time.Sleep(20 * time.Millisecond)
			}
			close(trackStop)
			<-trackDone
			if err := st.Sync(); err != nil {
				logf("store sync: %v", err)
			}
		})
	}

	hooks := box.ControlHooks{
		Vitals: func(m *sig.Meta) {
			stt := tk.Stats()
			m.Attrs = sig.NewAttrs(
				"completed", strconv.FormatInt(stats.completed.Load(), 10),
				"durable", strconv.FormatUint(st.DurableCDRs(), 10),
				"giveups", strconv.FormatInt(stats.giveups.Load(), 10),
				"setups", strconv.FormatInt(stats.setups.Load(), 10),
				"viol", strconv.Itoa(len(stt.Violations)),
			)
		},
		OnAddrs: func(table map[int]string) {
			for s, a := range table {
				router.SetAddr(s, a)
			}
		},
		OnStop: func() {
			stopOnce.Do(func() { close(stopCh) })
		},
		Report: func() string {
			// The report request IS the drain signal: park the clients,
			// final-poll the tracker, settle the WAL, then answer.
			drain()
			snap := reg.Snapshot()
			rep := shardReport{
				Shard:     o.shard,
				Boxes:     boxes,
				Setups:    stats.setups.Load(),
				Completed: stats.completed.Load(),
				Giveups:   stats.giveups.Load(),
				Refused:   stats.refused.Load(),
				Clients:   clientCount,
				Idle:      stats.idle.Load(),
				Pathmon:   tk.FinalReport(),

				CDRIssued:  binder.Issued(),
				CDRDurable: st.DurableCDRs(),
				CDRCount:   st.CDRCount(),
				LookupMiss: int64(snap.Counters[store.MetricLookupMiss]),
			}
			if h, ok := snap.Histograms[metricSetupLocal]; ok {
				rep.LocalSetups = h.Count
				rep.LocalSetupP95MS = float64(h.P95) / float64(time.Millisecond)
			}
			if h, ok := snap.Histograms[metricSetupCross]; ok {
				rep.CrossSetups = h.Count
				rep.CrossSetupP50MS = float64(h.P50) / float64(time.Millisecond)
				rep.CrossSetupP95MS = float64(h.P95) / float64(time.Millisecond)
			}
			blob, _ := json.Marshal(rep)
			return string(blob)
		},
	}
	ctl, err := box.RunControl(transport.TCPNetwork{}, o.ctlAddr, o.shard, carrierAddr,
		httpLn.Addr().String(), o.hb, hooks)
	if err != nil {
		logf("control dial: %v", err)
		os.Exit(1)
	}
	health.SetReady(true)

	<-stopCh
	drain()
	for _, r := range runners {
		r.Stop()
	}
	router.Close()
	mux.Close()
	ctl.Close()
	st.Close()
	logf("clean exit: %d completed, %d CDRs durable", stats.completed.Load(), st.DurableCDRs())
	os.Exit(0)
}

// cyclesPerChannel matches the chaos storm: several goal cycles per
// dialed channel keep path identities stable for the tracker, periodic
// redials keep the dial path hot.
const cyclesPerChannel = 8

// clientProgram is one path's lifecycle (see chaosstorm): dial, cycle
// open/hold/close goals, redial every few cycles, park on stop. Every
// transition to flowing observes the time since the open goal was set
// into hist — the cross-shard variant of that histogram is the number
// the capstone gates against the bound.
func clientProgram(stats *stormStats, addr string, hist *telemetry.Histogram, hold, stagger, giveup time.Duration, seed int64) *box.Program {
	const ch = "c"
	s0 := box.TunnelSlot(ch, 0)
	rng := rand.New(rand.NewSource(seed))
	jitter := func() time.Duration {
		return hold/2 + time.Duration(rng.Int63n(int64(hold)))
	}
	delay := time.Duration(rng.Int63n(int64(stagger) + 1))
	cycles := 0
	var openedAt time.Time
	closed := func(ctx *box.Ctx) bool {
		s := ctx.Box().Slot(s0)
		return s == nil || s.State() == slot.Closed
	}
	lost := func(ctx *box.Ctx) bool {
		return ctx.OnMeta(ch, sig.MetaUnavailable) || !ctx.Box().HasChannel(ch)
	}
	states := []*box.State{
		{
			Name:    "stagger",
			OnEnter: func(ctx *box.Ctx) { ctx.SetTimer("start", delay) },
			Trans: []box.Trans{
				{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("start") }, To: "dial"},
			},
		},
		{
			Name:    "dial",
			OnEnter: func(ctx *box.Ctx) { cycles = 0; ctx.Dial(ch, addr) },
			Trans: []box.Trans{
				{When: func(ctx *box.Ctx) bool { return ctx.OnMeta(ch, sig.MetaUnavailable) }, To: "backoff",
					Do: func(ctx *box.Ctx) { stats.refused.Add(1) }},
				{When: func(ctx *box.Ctx) bool { return ctx.Box().HasChannel(ch) }, To: "open"},
			},
		},
		{
			Name: "backoff",
			OnEnter: func(ctx *box.Ctx) {
				ctx.Teardown(ch)
				ctx.SetTimer("retry", 50*time.Millisecond+time.Duration(rng.Int63n(int64(100*time.Millisecond))))
			},
			Trans: []box.Trans{
				{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("retry") && stats.stop.Load() }, To: "idle",
					Do: func(*box.Ctx) { stats.idle.Add(1) }},
				{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("retry") }, To: "dial"},
			},
		},
		{
			Name:   "open",
			Annots: []box.Annot{box.OpenSlotAnn(s0, sig.Audio)},
			OnEnter: func(ctx *box.Ctx) {
				openedAt = time.Now()
				ctx.SetTimer("giveup", giveup)
			},
			Trans: []box.Trans{
				{When: func(ctx *box.Ctx) bool { return ctx.IsFlowing(s0) }, To: "hold",
					Do: func(ctx *box.Ctx) {
						ctx.CancelTimer("giveup")
						hist.Observe(time.Since(openedAt))
						stats.setups.Add(1)
					}},
				{When: lost, To: "backoff",
					Do: func(ctx *box.Ctx) { ctx.CancelTimer("giveup") }},
				{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("giveup") }, To: "redial",
					Do: func(ctx *box.Ctx) { stats.giveups.Add(1) }},
			},
		},
		{
			Name:    "hold",
			Annots:  []box.Annot{box.OpenSlotAnn(s0, sig.Audio)},
			OnEnter: func(ctx *box.Ctx) { ctx.SetTimer("hold", jitter()) },
			Trans: []box.Trans{
				{When: lost, To: "backoff"},
				{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("hold") }, To: "close",
					Do: func(ctx *box.Ctx) { stats.completed.Add(1) }},
			},
		},
		{
			Name:    "close",
			Annots:  []box.Annot{box.CloseSlotAnn(s0)},
			OnEnter: func(ctx *box.Ctx) { cycles++; ctx.SetTimer("giveup", giveup) },
			Trans: []box.Trans{
				{When: func(ctx *box.Ctx) bool { return closed(ctx) && stats.stop.Load() }, To: "redial",
					Do: func(ctx *box.Ctx) { ctx.CancelTimer("giveup") }},
				{When: func(ctx *box.Ctx) bool { return closed(ctx) && cycles >= cyclesPerChannel }, To: "redial",
					Do: func(ctx *box.Ctx) { ctx.CancelTimer("giveup") }},
				{When: closed, To: "open",
					Do: func(ctx *box.Ctx) { ctx.CancelTimer("giveup") }},
				{When: lost, To: "backoff",
					Do: func(ctx *box.Ctx) { ctx.CancelTimer("giveup") }},
				{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("giveup") }, To: "redial",
					Do: func(ctx *box.Ctx) { stats.giveups.Add(1) }},
			},
		},
		{
			Name:    "redial",
			OnEnter: func(ctx *box.Ctx) { ctx.Teardown(ch) },
			Trans: []box.Trans{
				{When: func(*box.Ctx) bool { return stats.stop.Load() }, To: "idle",
					Do: func(*box.Ctx) { stats.idle.Add(1) }},
				{When: func(*box.Ctx) bool { return true }, To: "dial"},
			},
		},
		{Name: "idle"},
	}
	return &box.Program{Initial: "stagger", States: states}
}

// ---------------------------------------------------------------------
// Parent: supervision, chaos, and the fleet audit.

type result struct {
	Date string `json:"date"`

	Shards     int   `json:"shards"`
	Paths      int   `json:"paths"`
	Servers    int   `json:"servers"`
	DurationMS int64 `json:"duration_ms"`
	Seed       int64 `json:"seed"`
	BoundMS    int64 `json:"bound_ms"`
	HBMS       int64 `json:"heartbeat_ms"`

	Kills           int     `json:"kills"`
	KillShard       int     `json:"kill_shard"`
	RecoverMS       float64 `json:"recover_ms"`
	Restarts        int     `json:"restarts"`
	GiveUpShards    int     `json:"gaveup_shards"`
	HeartbeatMisses int64   `json:"heartbeat_misses"`

	Setups          int64   `json:"setups"`
	Completed       int64   `json:"completed_calls"`
	CompletedAtKill int64   `json:"completed_at_kill"`
	CallGiveups     int64   `json:"call_giveups"`
	DialRefused     int64   `json:"dials_refused"`
	GiveupRate      float64 `json:"giveup_rate"`
	Drained         int64   `json:"clients_drained"`
	Clients         int64   `json:"clients"`
	CallsPerSec     float64 `json:"calls_per_sec"`
	BaselineCPS     float64 `json:"baseline_calls_per_sec"`

	LocalSetups     uint64  `json:"local_setups"`
	LocalSetupP95MS float64 `json:"local_setup_p95_ms"`
	CrossSetups     uint64  `json:"cross_setups"`
	CrossSetupP50MS float64 `json:"cross_setup_p50_ms"`
	CrossSetupP95MS float64 `json:"cross_setup_p95_ms"`

	LTLPolls      int      `json:"ltl_polls"`
	LTLViolations []string `json:"ltl_violations"`
	Wedged        []string `json:"wedged_paths"`
	VictimViols   int      `json:"victim_last_hb_violations"`

	Reconciliation store.FleetReport `json:"cdr_reconciliation"`

	ChildrenReaped     bool `json:"children_reaped"`
	GoroutinesBaseline int  `json:"goroutines_baseline"`
	GoroutinesFinal    int  `json:"goroutines_final"`
	Leaked             bool `json:"goroutines_leaked"`
}

func parentMain(o *options) {
	fatal := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "clusterstorm: "+format+"\n", args...)
		os.Exit(1)
	}
	if o.shards < 2 {
		fatal("need at least 2 shard processes (-shards)")
	}
	reg := telemetry.Enable()
	baselineG := runtime.NumGoroutine()

	dir := o.storeDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "clusterstorm-*")
		if err != nil {
			fatal("%v", err)
		}
		defer os.RemoveAll(dir)
	}
	dirs := make(map[int]string, o.shards)
	for i := 0; i < o.shards; i++ {
		dirs[i] = filepath.Join(dir, fmt.Sprintf("s%d", i))
	}

	self, err := os.Executable()
	if err != nil {
		fatal("%v", err)
	}
	sup, err := box.NewSupervisor(box.SupervisorConfig{
		Shards:    o.shards,
		Heartbeat: o.hb,
		Seed:      o.seed,
		Command: func(shard int, ctlAddr string) *exec.Cmd {
			cmd := exec.Command(self,
				"-shard", strconv.Itoa(shard),
				"-ctl", ctlAddr,
				"-shards", strconv.Itoa(o.shards),
				"-paths", strconv.Itoa(o.paths),
				"-servers", strconv.Itoa(o.servers),
				"-duration", o.duration.String(),
				"-hold", o.hold.String(),
				"-giveup", o.giveup.String(),
				"-bound", o.bound.String(),
				"-poll", o.poll.String(),
				"-hb", o.hb.String(),
				"-seed", strconv.FormatInt(o.seed, 10),
				"-store-backend", o.storeBackend,
				"-store-dir", dirs[shard],
			)
			cmd.Stderr = os.Stderr
			return cmd
		},
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "clusterstorm: "+format+"\n", args...)
		},
	})
	if err != nil {
		fatal("%v", err)
	}
	if err := sup.AwaitReady(15 * time.Second); err != nil {
		sup.Stop(2 * time.Second)
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "clusterstorm: fleet of %d shard processes ready; %d paths vs %d devices for %v\n",
		o.shards, o.paths, o.servers, o.duration)

	// Warm up, then the chaos: SIGKILL — not a polite stop — of a live
	// shard, mid-storm. Bank the victim's last heartbeat first: those
	// numbers are all that survives of its pre-kill epoch.
	warm := o.duration * 2 / 5
	time.Sleep(warm)
	victim := pickVictim(o)
	banked := map[string]uint64{}
	var completedAtKill int64
	var recoverMS float64
	if o.kills > 0 {
		for i := 0; i < o.shards; i++ {
			completedAtKill += int64(vital(sup.Vitals(i), "completed"))
		}
		v := sup.Vitals(victim)
		for k := range v {
			banked[k] = vital(v, k)
		}
		fmt.Fprintf(os.Stderr, "clusterstorm: SIGKILL shard %d (pid %d) — last hb: %d completed, %d CDRs durable\n",
			victim, sup.Pid(victim), banked["completed"], banked["durable"])
		restartsBefore := sup.Restarts(victim)
		killAt := time.Now()
		sup.Kill(victim)
		// The SIGKILL races the supervisor's exit watcher: readiness only
		// drops once Wait returns. Recovery starts at the kill and ends
		// when the replacement process reports ready, so wait for the
		// restart to be counted before asking about readiness.
		for deadline := killAt.Add(20 * time.Second); sup.Restarts(victim) == restartsBefore && time.Now().Before(deadline); {
			time.Sleep(5 * time.Millisecond)
		}
		if err := sup.AwaitReady(20 * time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "clusterstorm: fleet did not recover: %v\n", err)
		}
		recoverMS = float64(time.Since(killAt)) / float64(time.Millisecond)
		fmt.Fprintf(os.Stderr, "clusterstorm: shard %d back (pid %d) in %.0f ms\n",
			victim, sup.Pid(victim), recoverMS)
	}
	time.Sleep(o.duration - warm)

	// Drain and collect: the report request parks each shard's clients
	// and answers with its final numbers; shards drain concurrently.
	reports := make([]shardReport, o.shards)
	repErrs := make([]error, o.shards)
	var wg sync.WaitGroup
	for i := 0; i < o.shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, err := sup.Report(i, o.giveup+o.bound+15*time.Second)
			if err == nil {
				err = json.Unmarshal([]byte(body), &reports[i])
			}
			repErrs[i] = err
		}(i)
	}
	wg.Wait()

	restarts := 0
	gaveUp := 0
	for i := 0; i < o.shards; i++ {
		restarts += sup.Restarts(i)
		if sup.GaveUp(i) {
			gaveUp++
		}
	}
	sup.Stop(5 * time.Second)
	reaped := true
	for i := 0; i < o.shards; i++ {
		if sup.Alive(i) {
			reaped = false
		}
	}

	// Fleet-wide CDR reconciliation: reopen every shard's store. What a
	// shard must not have lost is the larger of its last heartbeat's
	// durable count (the victim's death snapshot) and its final report.
	acked := make(map[int]uint64, o.shards)
	for i := 0; i < o.shards; i++ {
		acked[i] = reports[i].CDRDurable
	}
	if o.kills > 0 && banked["durable"] > acked[victim] {
		acked[victim] = banked["durable"]
	}
	recon, reconErr := store.ReconcileFleet(dirs, acked, store.Options{Backend: o.storeBackend})
	if reconErr != nil {
		fmt.Fprintf(os.Stderr, "clusterstorm: reconciliation: %v\n", reconErr)
	}

	// Merge the fleet view. The victim's final report covers only its
	// post-restart epoch; its banked heartbeat covers the first.
	fleetPM := pathmon.Report{Violations: []string{}, Wedged: []string{}}
	res := result{
		Date:       time.Now().Format("2006-01-02"),
		Shards:     o.shards,
		Paths:      o.paths,
		Servers:    o.servers,
		DurationMS: o.duration.Milliseconds(),
		Seed:       o.seed,
		BoundMS:    o.bound.Milliseconds(),
		HBMS:       o.hb.Milliseconds(),

		Kills:           o.kills,
		KillShard:       victim,
		RecoverMS:       recoverMS,
		Restarts:        restarts,
		GiveUpShards:    gaveUp,
		CompletedAtKill: completedAtKill,

		ChildrenReaped:     reaped,
		GoroutinesBaseline: baselineG,
	}
	for i := 0; i < o.shards; i++ {
		r := reports[i]
		res.Setups += r.Setups
		res.Completed += r.Completed
		res.CallGiveups += r.Giveups
		res.DialRefused += r.Refused
		res.Drained += r.Idle
		res.Clients += r.Clients
		res.LocalSetups += r.LocalSetups
		res.CrossSetups += r.CrossSetups
		if r.LocalSetupP95MS > res.LocalSetupP95MS {
			res.LocalSetupP95MS = r.LocalSetupP95MS
		}
		if r.CrossSetupP95MS > res.CrossSetupP95MS {
			res.CrossSetupP95MS = r.CrossSetupP95MS
		}
		if r.CrossSetupP50MS > res.CrossSetupP50MS {
			res.CrossSetupP50MS = r.CrossSetupP50MS
		}
		fleetPM = fleetPM.Merge(r.Pathmon)
	}
	if o.kills > 0 {
		res.Setups += int64(banked["setups"])
		res.Completed += int64(banked["completed"])
		res.CallGiveups += int64(banked["giveups"])
		res.VictimViols = int(banked["viol"])
	}
	attempts := res.Setups + res.CallGiveups
	if attempts > 0 {
		res.GiveupRate = float64(res.CallGiveups) / float64(attempts)
	}
	res.CallsPerSec = float64(res.Completed) / o.duration.Seconds()
	res.BaselineCPS = baselineCPS("BENCH_runtime.json")
	res.LTLPolls = fleetPM.Polls
	res.LTLViolations = fleetPM.Violations
	res.Wedged = fleetPM.Wedged
	res.Reconciliation = recon

	snap := reg.Snapshot()
	for i := 0; i < o.shards; i++ {
		res.HeartbeatMisses += int64(snap.Counters[box.MetricHeartbeatMiss+".s"+strconv.Itoa(i)])
	}

	var finalG int
	res.Leaked = true
	for end := time.Now().Add(3 * time.Second); time.Now().Before(end); {
		finalG = runtime.NumGoroutine()
		if finalG <= baselineG+2 {
			res.Leaked = false
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	res.GoroutinesFinal = finalG

	blob, _ := json.MarshalIndent(res, "", "  ")
	fmt.Println(string(blob))
	if o.out != "" {
		if err := os.WriteFile(o.out, append(blob, '\n'), 0o644); err != nil {
			fatal("%v", err)
		}
	}

	if !o.check {
		return
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "clusterstorm: GATE FAILED: "+format+"\n", args...)
		os.Exit(1)
	}
	for i, err := range repErrs {
		if err != nil {
			fail("shard %d report: %v", i, err)
		}
	}
	if o.kills > 0 && restarts < o.kills {
		fail("killed %d shard(s) but supervisor restarted %d", o.kills, restarts)
	}
	if gaveUp > 0 {
		fail("%d shard(s) exhausted restart intensity", gaveUp)
	}
	if n := len(res.LTLViolations); n > 0 {
		fail("%d bounded-time formula violations, first: %s", n, res.LTLViolations[0])
	}
	if res.VictimViols > 0 {
		fail("victim reported %d violations in its last heartbeat", res.VictimViols)
	}
	if n := len(res.Wedged); n > 0 {
		fail("%d wedged paths after drain, first: %s", n, res.Wedged[0])
	}
	if res.Drained < res.Clients {
		fail("only %d/%d clients drained", res.Drained, res.Clients)
	}
	if res.GiveupRate >= o.giveupBudget {
		fail("give-up rate %.2f%% >= budget %.2f%%", res.GiveupRate*100, o.giveupBudget*100)
	}
	if o.kills > 0 && res.Completed <= res.CompletedAtKill {
		fail("no calls completed after the kill: %d at kill, %d final", res.CompletedAtKill, res.Completed)
	}
	if o.kills > 0 && reports[victim].Clients > 0 && reports[victim].Completed == 0 {
		fail("restarted shard %d completed no calls in its new epoch", victim)
	}
	if res.CrossSetups == 0 {
		fail("no cross-shard setups observed — the fleet never exercised the carriers")
	}
	if res.CrossSetupP95MS > float64(o.bound.Milliseconds()) {
		fail("cross-shard setup p95 %.1f ms exceeds the %v bound", res.CrossSetupP95MS, o.bound)
	}
	if res.CallsPerSec < o.minCPS {
		fail("aggregate %.2f calls/s below floor %.2f", res.CallsPerSec, o.minCPS)
	}
	if reconErr != nil {
		fail("reconciliation: %v", reconErr)
	}
	if !recon.OK {
		fail("CDR reconciliation failed: %d lost, %d duplicates", recon.Lost, recon.Duplicates)
	}
	if !reaped {
		fail("child process leak: a shard survived Stop")
	}
	if res.Leaked {
		fail("goroutines leaked in parent: baseline %d, final %d", baselineG, finalG)
	}
	fmt.Fprintf(os.Stderr, "clusterstorm: all gates passed: %d lifecycles across %d processes (%.1f calls/s), %d restart(s), recovery %.0f ms, %d CDRs reconciled, 0 violations\n",
		res.Completed, o.shards, res.CallsPerSec, restarts, recoverMS, recon.TotalCDRs)
}

// pickVictim chooses the shard to kill: the one hosting the most
// clients, so the kill actually hurts.
func pickVictim(o *options) int {
	counts := make([]int, o.shards)
	for i := 0; i < o.paths; i++ {
		counts[box.ShardOfName(cliName(i), o.shards)]++
	}
	victim, best := 0, -1
	for s, c := range counts {
		if c > best {
			victim, best = s, c
		}
	}
	return victim
}

func vital(v map[string]string, key string) uint64 {
	n, _ := strconv.ParseUint(v[key], 10, 64)
	return n
}

// baselineCPS pulls the single-process GOMAXPROCS=1 calls/s out of
// BENCH_runtime.json for side-by-side comparison (0 if absent).
func baselineCPS(path string) float64 {
	blob, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	var doc struct {
		Curve []struct {
			Procs int     `json:"gomaxprocs"`
			CPS   float64 `json:"calls_per_sec"`
		} `json:"gomaxprocs_curve"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		return 0
	}
	for _, leg := range doc.Curve {
		if leg.Procs == 1 {
			return leg.CPS
		}
	}
	return 0
}
