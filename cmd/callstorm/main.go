// callstorm is the load harness for the live runtime: it stands up K
// server boxes and drives N concurrent open/hold/flowLink/close call
// lifecycles over the in-memory network (or TCP loopback), then
// reports throughput, setup-latency percentiles from the telemetry
// histograms, and runtime footprint, optionally as a JSON artifact.
//
// Each path is a device box cycling a three-state program: dial and
// open toward a server, hold while flowing, tear down and redial. In
// link mode the servers are relays that splice every incoming call to
// a device box with a flowLink, so each path exercises the full
// open/hold/flowLink/close goal set end to end; in hold mode clients
// land directly on holdSlot devices.
//
// Usage:
//
//	callstorm [-paths N] [-servers K] [-mode link|hold] [-net mem|tcp]
//	          [-ramp 30s] [-duration 10s] [-hold 500ms] [-out BENCH_runtime.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
	"ipmedia/internal/telemetry"
	"ipmedia/internal/timerwheel"
	"ipmedia/internal/transport"
)

type stormStats struct {
	setups    atomic.Int64 // calls that reached flowing
	completed atomic.Int64 // full lifecycles (flowing + held + torn down)
	giveups   atomic.Int64 // calls that hit the give-up timer
	holding   atomic.Int64 // paths currently flowing-and-held
}

type result struct {
	Date       string `json:"date"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`

	Mode     string `json:"mode"`
	Net      string `json:"net"`
	Paths    int    `json:"paths"`
	Servers  int    `json:"servers"`
	HoldMS   int64  `json:"hold_ms"`
	WindowMS int64  `json:"window_ms"`

	PathsHeldPeak int64   `json:"paths_held_peak"`
	Setups        int64   `json:"setups"`
	Completed     int64   `json:"completed_calls"`
	Giveups       int64   `json:"giveups"`
	CallsPerSec   float64 `json:"calls_per_sec"`

	Events         int64   `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`

	GoroutinesPeak int   `json:"goroutines_peak"`
	InboxDepthHWM  int64 `json:"inbox_depth_hwm"`
	TimersHWM      int64 `json:"timerwheel_pending_hwm"`
	QueueDepthHWM  int64 `json:"queue_depth_hwm"`

	SetupCount int64   `json:"setup_latency_count"`
	SetupP50MS float64 `json:"setup_latency_p50_ms"`
	SetupP95MS float64 `json:"setup_latency_p95_ms"`
	SetupP99MS float64 `json:"setup_latency_p99_ms"`
}

func main() {
	paths := flag.Int("paths", 1000, "concurrent call lifecycles (paths)")
	servers := flag.Int("servers", 4, "server boxes")
	mode := flag.String("mode", "link", "server behavior: link (relay+flowLink) or hold (direct holdSlot)")
	netKind := flag.String("net", "mem", "transport: mem or tcp (loopback)")
	ramp := flag.Duration("ramp", 60*time.Second, "max time to wait for all paths to reach flowing once")
	duration := flag.Duration("duration", 10*time.Second, "steady-state measurement window")
	hold := flag.Duration("hold", 500*time.Millisecond, "mean hold time per call")
	stagger := flag.Duration("stagger", 0, "spread each path's first dial uniformly over this window (0: dial immediately)")
	giveup := flag.Duration("giveup", 10*time.Second, "abandon and redial a call that has not flowed after this long")
	out := flag.String("out", "", "write the result JSON here (empty: stdout only)")
	flag.Parse()

	// Telemetry must be live before the first runner (and the shared
	// wheel) resolve their instruments.
	reg := telemetry.Enable()

	var network transport.Network
	switch *netKind {
	case "mem":
		network = transport.NewMemNetwork()
	case "tcp":
		network = transport.TCPNetwork{}
	default:
		fmt.Fprintf(os.Stderr, "callstorm: unknown -net %q\n", *netKind)
		os.Exit(2)
	}

	stats := &stormStats{}

	// Servers first, so every client dial lands on a listener.
	devAddrs := listenAll(network, *netKind, "dev", *servers, func(i int) *box.Box {
		return box.New(fmt.Sprintf("dev%d", i), devProfile(fmt.Sprintf("dev%d", i), 20000+i))
	})
	targets := devAddrs
	if *mode == "link" {
		relayAddrs := listenAll(network, *netKind, "relay", *servers, func(i int) *box.Box {
			b := box.New(fmt.Sprintf("relay%d", i), core.ServerProfile{Name: fmt.Sprintf("relay%d", i)})
			b.Hook = relayHook(devAddrs, i)
			return b
		})
		targets = relayAddrs
	}

	// Clients: one runner per path, each cycling its lifecycle program.
	fmt.Fprintf(os.Stderr, "callstorm: starting %d paths against %d %s servers over %s...\n",
		*paths, *servers, *mode, *netKind)
	rng := rand.New(rand.NewSource(1))
	clients := make([]*box.Runner, *paths)
	for i := range clients {
		name := fmt.Sprintf("cli%d", i)
		b := box.New(name, devProfile(name, 30000+i))
		r := box.NewRunner(b, network)
		r.OnError = func(err error) { fmt.Fprintf(os.Stderr, "callstorm: %s: %v\n", name, err) }
		r.SetProgram(clientProgram(stats, targets[i%len(targets)], *hold, *stagger, *giveup, rng.Int63()))
		clients[i] = r
	}

	// Ramp: every path flowing at least once.
	rampDeadline := time.Now().Add(*ramp)
	for stats.setups.Load() < int64(*paths) && time.Now().Before(rampDeadline) {
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "callstorm: ramp done, %d/%d paths set up; measuring %v...\n",
		stats.setups.Load(), *paths, *duration)

	// Steady window.
	mEvents := telemetry.C(box.MetricLoopIterations)
	var ms0, ms1 runtime.MemStats
	goroPeak := runtime.NumGoroutine()
	var heldPeak int64
	runtime.ReadMemStats(&ms0)
	events0 := int64(mEvents.Value())
	completed0 := stats.completed.Load()
	t0 := time.Now()
	for end := t0.Add(*duration); time.Now().Before(end); {
		time.Sleep(100 * time.Millisecond)
		if g := runtime.NumGoroutine(); g > goroPeak {
			goroPeak = g
		}
		if h := stats.holding.Load(); h > heldPeak {
			heldPeak = h
		}
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	events := int64(mEvents.Value()) - events0
	completed := stats.completed.Load() - completed0

	snap := reg.Snapshot()
	ttf := snap.Histograms[slot.MetricTimeToFlowing]
	res := result{
		Date:       time.Now().Format("2006-01-02"),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Mode:       *mode,
		Net:        *netKind,
		Paths:      *paths,
		Servers:    *servers,
		HoldMS:     hold.Milliseconds(),
		WindowMS:   elapsed.Milliseconds(),

		PathsHeldPeak: heldPeak,
		Setups:        stats.setups.Load(),
		Completed:     stats.completed.Load(),
		Giveups:       stats.giveups.Load(),
		CallsPerSec:   float64(completed) / elapsed.Seconds(),

		Events:         events,
		EventsPerSec:   float64(events) / elapsed.Seconds(),
		GoroutinesPeak: goroPeak,
		InboxDepthHWM:  snap.Gauges[box.MetricInboxDepth].HighWater,
		TimersHWM:      snap.Gauges[timerwheel.MetricPending].HighWater,
		QueueDepthHWM:  snap.Gauges[transport.MetricQueueDepth].HighWater,

		SetupCount: int64(ttf.Count),
		SetupP50MS: float64(ttf.P50) / float64(time.Millisecond),
		SetupP95MS: float64(ttf.P95) / float64(time.Millisecond),
		SetupP99MS: float64(ttf.P99) / float64(time.Millisecond),
	}
	if events > 0 {
		res.NsPerEvent = float64(elapsed.Nanoseconds()) / float64(events)
		res.AllocsPerEvent = float64(ms1.Mallocs-ms0.Mallocs) / float64(events)
	}

	blob, _ := json.MarshalIndent(res, "", "  ")
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "callstorm:", err)
			os.Exit(1)
		}
	}

	// Clean shutdown under load is part of what the harness exercises.
	stopAll(clients)
	if res.PathsHeldPeak < int64(*paths)/2 {
		fmt.Fprintf(os.Stderr, "callstorm: WARNING: held only %d of %d paths concurrently\n",
			res.PathsHeldPeak, *paths)
	}
}

// listenAll starts n server boxes and returns their dial addresses.
func listenAll(network transport.Network, netKind, prefix string, n int, build func(i int) *box.Box) []string {
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("%s%d", prefix, i)
		if netKind == "tcp" {
			// Grab a free loopback port for the runner to re-listen on.
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fmt.Fprintln(os.Stderr, "callstorm:", err)
				os.Exit(1)
			}
			addr = l.Addr().String()
			l.Close()
		}
		r := box.NewRunner(build(i), network)
		if err := r.Listen(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "callstorm:", err)
			os.Exit(1)
		}
		addrs[i] = addr
	}
	return addrs
}

func devProfile(name string, port int) *core.EndpointProfile {
	return core.NewEndpointProfile(name, "10.1.0.1", port,
		[]sig.Codec{sig.G711, sig.G726}, []sig.Codec{sig.G711, sig.G726})
}

// relayHook splices every incoming call onward to a device box with a
// flowLink, and propagates teardowns to the spliced leg. It runs on
// the relay's loop goroutine.
func relayHook(devAddrs []string, seed int) func(*box.Ctx, *box.Event) {
	next := seed
	return func(ctx *box.Ctx, ev *box.Event) {
		if ev.Kind != box.EvEnvelope || !ev.Env.IsMeta() {
			return
		}
		in := ev.Channel
		if strings.HasPrefix(in, "out-") {
			return // events on spliced legs are the flowLink's business
		}
		switch ev.Env.Meta.Kind {
		case sig.MetaSetup:
			out := "out-" + in
			ctx.Dial(out, devAddrs[next%len(devAddrs)])
			next++
			ctx.SetGoal(core.NewFlowLink(box.TunnelSlot(in, 0), box.TunnelSlot(out, 0)))
		case sig.MetaTeardown:
			ctx.Teardown("out-" + in)
		}
	}
}

// clientProgram is one path's lifecycle: dial and open toward addr,
// hold while flowing, tear down, redial. Hold times are jittered ±25%
// so the storm does not beat in lockstep, and a nonzero stagger delays
// the first dial by a uniform-random slice of the window so a large
// storm does not open every path in the same instant.
func clientProgram(stats *stormStats, addr string, hold, stagger, giveup time.Duration, seed int64) *box.Program {
	const ch = "c"
	s0 := box.TunnelSlot(ch, 0)
	rng := rand.New(rand.NewSource(seed))
	jitter := func() time.Duration {
		return hold/2 + hold/2 + time.Duration(rng.Int63n(int64(hold)/2)) - hold/4
	}
	initial := "call"
	var states []*box.State
	if stagger > 0 {
		initial = "stagger"
		delay := time.Duration(rng.Int63n(int64(stagger)))
		states = append(states, &box.State{
			Name:    "stagger",
			OnEnter: func(ctx *box.Ctx) { ctx.SetTimer("start", delay) },
			Trans: []box.Trans{
				{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("start") }, To: "call"},
			},
		})
	}
	states = append(states, []*box.State{
		{
			Name:   "call",
			Annots: []box.Annot{box.OpenSlotAnn(s0, sig.Audio)},
			OnEnter: func(ctx *box.Ctx) {
				ctx.Dial(ch, addr)
				ctx.SetTimer("giveup", giveup)
			},
			Trans: []box.Trans{
				{When: func(ctx *box.Ctx) bool { return ctx.IsFlowing(s0) }, To: "hold",
					Do: func(ctx *box.Ctx) {
						ctx.CancelTimer("giveup")
						stats.setups.Add(1)
						stats.holding.Add(1)
					}},
				{When: func(ctx *box.Ctx) bool { return ctx.OnMeta(ch, sig.MetaUnavailable) }, To: "redial",
					Do: func(ctx *box.Ctx) { ctx.CancelTimer("giveup"); stats.giveups.Add(1) }},
				{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("giveup") }, To: "redial",
					Do: func(ctx *box.Ctx) { stats.giveups.Add(1) }},
			},
		},
		{
			Name:    "hold",
			Annots:  []box.Annot{box.OpenSlotAnn(s0, sig.Audio)},
			OnEnter: func(ctx *box.Ctx) { ctx.SetTimer("hold", jitter()) },
			Trans: []box.Trans{
				{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("hold") }, To: "redial",
					Do: func(ctx *box.Ctx) {
						stats.holding.Add(-1)
						stats.completed.Add(1)
					}},
			},
		},
		{
			Name:    "redial",
			OnEnter: func(ctx *box.Ctx) { ctx.Teardown(ch) },
			Trans: []box.Trans{
				{When: func(*box.Ctx) bool { return true }, To: "call"},
			},
		},
	}...)
	return &box.Program{Initial: initial, States: states}
}

// stopAll stops runners through a small worker pool; serial Stop of
// 100k runners would dominate shutdown.
func stopAll(rs []*box.Runner) {
	var wg sync.WaitGroup
	work := make(chan *box.Runner)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range work {
				r.Stop()
			}
		}()
	}
	for _, r := range rs {
		work <- r
	}
	close(work)
	wg.Wait()
}
