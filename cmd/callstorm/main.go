// callstorm is the load harness for the live runtime: it stands up K
// server boxes and drives N concurrent open/hold/flowLink/close call
// lifecycles over the in-memory network (or TCP loopback), then
// reports throughput, setup-latency percentiles from the telemetry
// histograms, and runtime footprint, optionally as a JSON artifact.
//
// Each path is a device box cycling a three-state program: dial and
// open toward a server, hold while flowing, tear down and redial. In
// link mode the servers are relays that splice every incoming call to
// a device box with a flowLink, so each path exercises the full
// open/hold/flowLink/close goal set end to end; in hold mode clients
// land directly on holdSlot devices.
//
// With -shards N the whole population runs on a box.Cluster of N
// runtime shards (per-shard inboxes, timer wheels, and inline ring
// draining) instead of one goroutine per box; -sweep "1,2,4,8" runs
// one measurement leg per GOMAXPROCS/shard-count value and emits the
// scaling curve as a single JSON document.
//
// Usage:
//
//	callstorm [-paths N] [-servers K] [-mode link|hold] [-net mem|ring|tcp]
//	          [-shards N] [-sweep 1,2,4,8] [-gate]
//	          [-ramp 30s] [-duration 10s] [-hold 500ms] [-out BENCH_runtime.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/prof"
	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
	"ipmedia/internal/telemetry"
	"ipmedia/internal/timerwheel"
	"ipmedia/internal/transport"
)

type stormStats struct {
	setups    atomic.Int64 // calls that reached flowing
	completed atomic.Int64 // full lifecycles (flowing + held + torn down)
	giveups   atomic.Int64 // calls that hit the give-up timer
	holding   atomic.Int64 // paths currently flowing-and-held
}

type stormConfig struct {
	paths    int
	servers  int
	shards   int // 0: one standalone runner per box
	mode     string
	netKind  string
	ramp     time.Duration
	duration time.Duration
	hold     time.Duration
	stagger  time.Duration
	giveup   time.Duration
}

type result struct {
	Date       string `json:"date"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`

	Mode     string `json:"mode"`
	Net      string `json:"net"`
	Paths    int    `json:"paths"`
	Servers  int    `json:"servers"`
	Shards   int    `json:"shards"`
	HoldMS   int64  `json:"hold_ms"`
	WindowMS int64  `json:"window_ms"`

	PathsHeldPeak int64   `json:"paths_held_peak"`
	Setups        int64   `json:"setups"`
	Completed     int64   `json:"completed_calls"`
	Giveups       int64   `json:"giveups"`
	CallsPerSec   float64 `json:"calls_per_sec"`

	Events         int64   `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`

	GoroutinesPeak int   `json:"goroutines_peak"`
	InboxDepthHWM  int64 `json:"inbox_depth_hwm"`
	TimersHWM      int64 `json:"timerwheel_pending_hwm"`
	QueueDepthHWM  int64 `json:"queue_depth_hwm"`

	SetupCount int64   `json:"setup_latency_count"`
	SetupP50MS float64 `json:"setup_latency_p50_ms"`
	SetupP95MS float64 `json:"setup_latency_p95_ms"`
	SetupP99MS float64 `json:"setup_latency_p99_ms"`
}

// sweepResult is the scaling-curve artifact: one leg per
// GOMAXPROCS/shard count, plus the calls/s speedups relative to the
// 1-shard leg of the same run.
type sweepResult struct {
	Date    string             `json:"date"`
	NumCPU  int                `json:"num_cpu"`
	Mode    string             `json:"mode"`
	Net     string             `json:"net"`
	Paths   int                `json:"paths"`
	Servers int                `json:"servers"`
	Legs    []result           `json:"gomaxprocs_curve"`
	Speedup map[string]float64 `json:"calls_per_sec_speedup_vs_1"`
}

func main() {
	cfg := stormConfig{}
	flag.IntVar(&cfg.paths, "paths", 1000, "concurrent call lifecycles (paths)")
	flag.IntVar(&cfg.servers, "servers", 4, "server boxes")
	flag.IntVar(&cfg.shards, "shards", 0, "run on a cluster of this many runtime shards (0: one goroutine per box)")
	flag.StringVar(&cfg.mode, "mode", "link", "server behavior: link (relay+flowLink) or hold (direct holdSlot)")
	flag.StringVar(&cfg.netKind, "net", "mem", "transport: mem, ring (in-process SPSC rings), or tcp (loopback)")
	flag.DurationVar(&cfg.ramp, "ramp", 60*time.Second, "max time to wait for all paths to reach flowing once")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "steady-state measurement window")
	flag.DurationVar(&cfg.hold, "hold", 500*time.Millisecond, "mean hold time per call")
	flag.DurationVar(&cfg.stagger, "stagger", 0, "spread each path's first dial uniformly over this window (0: dial immediately)")
	flag.DurationVar(&cfg.giveup, "giveup", 10*time.Second, "abandon and redial a call that has not flowed after this long")
	sweep := flag.String("sweep", "", "comma-separated GOMAXPROCS/shard counts; run one leg per value (e.g. 1,2,4,8)")
	gate := flag.Bool("gate", false, "exit nonzero if any leg recorded giveups")
	allocGate := flag.Float64("alloc-gate", 0, "exit nonzero if any leg exceeds this allocs/event budget (0: off)")
	out := flag.String("out", "", "write the result JSON here (empty: stdout only)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measurement window here")
	memprofile := flag.String("memprofile", "", "write an allocation profile captured at the end of the measurement window here")
	flag.Parse()

	sess, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "callstorm:", err)
		os.Exit(1)
	}

	var blob []byte
	giveups := int64(0)
	allocsWorst := 0.0
	if *sweep == "" {
		res := runStorm(cfg)
		giveups = res.Giveups
		allocsWorst = res.AllocsPerEvent
		blob, _ = json.MarshalIndent(res, "", "  ")
	} else {
		sr := sweepResult{
			Date:    time.Now().Format("2006-01-02"),
			NumCPU:  runtime.NumCPU(),
			Mode:    cfg.mode,
			Net:     cfg.netKind,
			Paths:   cfg.paths,
			Servers: cfg.servers,
			Speedup: map[string]float64{},
		}
		prev := runtime.GOMAXPROCS(0)
		for _, f := range strings.Split(*sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "callstorm: bad -sweep entry %q\n", f)
				os.Exit(2)
			}
			legCfg := cfg
			legCfg.shards = n
			runtime.GOMAXPROCS(n)
			fmt.Fprintf(os.Stderr, "callstorm: === sweep leg: GOMAXPROCS=%d shards=%d ===\n", n, n)
			res := runStorm(legCfg)
			giveups += res.Giveups
			if res.AllocsPerEvent > allocsWorst {
				allocsWorst = res.AllocsPerEvent
			}
			sr.Legs = append(sr.Legs, res)
			runtime.GC() // drop the leg's population before the next one
		}
		runtime.GOMAXPROCS(prev)
		if len(sr.Legs) > 0 && sr.Legs[0].CallsPerSec > 0 {
			base := sr.Legs[0].CallsPerSec
			for _, leg := range sr.Legs {
				sr.Speedup[strconv.Itoa(leg.GoMaxProcs)] = leg.CallsPerSec / base
			}
		}
		blob, _ = json.MarshalIndent(sr, "", "  ")
	}

	if err := sess.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "callstorm:", err)
		os.Exit(1)
	}

	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "callstorm:", err)
			os.Exit(1)
		}
	}
	if *gate && giveups > 0 {
		fmt.Fprintf(os.Stderr, "callstorm: GATE FAILED: %d giveups (want 0)\n", giveups)
		os.Exit(1)
	}
	if *allocGate > 0 && allocsWorst > *allocGate {
		fmt.Fprintf(os.Stderr, "callstorm: GATE FAILED: %.2f allocs/event (budget %.2f)\n", allocsWorst, *allocGate)
		os.Exit(1)
	}
}

// runStorm runs one full measurement: fresh telemetry registry, fresh
// network, fresh box population, ramp, steady window, clean shutdown.
func runStorm(cfg stormConfig) result {
	// A fresh registry per leg so sweep legs do not bleed counters or
	// histogram mass into each other. It must be live before the first
	// runner resolves its instruments.
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)

	var network transport.Network
	switch cfg.netKind {
	case "mem":
		network = transport.NewMemNetwork()
	case "ring":
		network = transport.NewRingMemNetwork()
	case "tcp":
		network = transport.TCPNetwork{}
	default:
		fmt.Fprintf(os.Stderr, "callstorm: unknown -net %q\n", cfg.netKind)
		os.Exit(2)
	}

	var cluster *box.Cluster
	newRunner := box.NewRunner
	if cfg.shards > 0 {
		cluster = box.NewCluster(network, cfg.shards)
		newRunner = func(b *box.Box, _ transport.Network) *box.Runner {
			return cluster.Runner(b)
		}
	}

	stats := &stormStats{}

	// Servers first, so every client dial lands on a listener.
	devAddrs := listenAll(network, newRunner, cfg.netKind, "dev", cfg.servers, func(i int) *box.Box {
		return box.New(fmt.Sprintf("dev%d", i), devProfile(fmt.Sprintf("dev%d", i), 20000+i))
	})
	targets := devAddrs
	if cfg.mode == "link" {
		relayAddrs := listenAll(network, newRunner, cfg.netKind, "relay", cfg.servers, func(i int) *box.Box {
			b := box.New(fmt.Sprintf("relay%d", i), core.ServerProfile{Name: fmt.Sprintf("relay%d", i)})
			b.Hook = relayHook(devAddrs, i)
			return b
		})
		targets = relayAddrs
	}

	// Clients: one box per path, each cycling its lifecycle program.
	fmt.Fprintf(os.Stderr, "callstorm: starting %d paths against %d %s servers over %s (shards=%d)...\n",
		cfg.paths, cfg.servers, cfg.mode, cfg.netKind, cfg.shards)
	rng := rand.New(rand.NewSource(1))
	clients := make([]*box.Runner, cfg.paths)
	for i := range clients {
		name := fmt.Sprintf("cli%d", i)
		b := box.New(name, devProfile(name, 30000+i))
		r := newRunner(b, network)
		r.OnError = func(err error) { fmt.Fprintf(os.Stderr, "callstorm: %s: %v\n", name, err) }
		r.SetProgram(clientProgram(stats, targets[i%len(targets)], cfg.hold, cfg.stagger, cfg.giveup, rng.Int63()))
		clients[i] = r
	}

	// Ramp: every path flowing at least once.
	rampDeadline := time.Now().Add(cfg.ramp)
	for stats.setups.Load() < int64(cfg.paths) && time.Now().Before(rampDeadline) {
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "callstorm: ramp done, %d/%d paths set up; measuring %v...\n",
		stats.setups.Load(), cfg.paths, cfg.duration)

	// Steady window.
	mEvents := telemetry.C(box.MetricLoopIterations)
	var ms0, ms1 runtime.MemStats
	goroPeak := runtime.NumGoroutine()
	var heldPeak int64
	runtime.ReadMemStats(&ms0)
	events0 := int64(mEvents.Value())
	completed0 := stats.completed.Load()
	t0 := time.Now()
	for end := t0.Add(cfg.duration); time.Now().Before(end); {
		time.Sleep(100 * time.Millisecond)
		if g := runtime.NumGoroutine(); g > goroPeak {
			goroPeak = g
		}
		if h := stats.holding.Load(); h > heldPeak {
			heldPeak = h
		}
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	events := int64(mEvents.Value()) - events0
	completed := stats.completed.Load() - completed0

	snap := reg.Snapshot()
	ttf := snap.Histograms[slot.MetricTimeToFlowing]
	res := result{
		Date:       time.Now().Format("2006-01-02"),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Mode:       cfg.mode,
		Net:        cfg.netKind,
		Paths:      cfg.paths,
		Servers:    cfg.servers,
		Shards:     cfg.shards,
		HoldMS:     cfg.hold.Milliseconds(),
		WindowMS:   elapsed.Milliseconds(),

		PathsHeldPeak: heldPeak,
		Setups:        stats.setups.Load(),
		Completed:     stats.completed.Load(),
		Giveups:       stats.giveups.Load(),
		CallsPerSec:   float64(completed) / elapsed.Seconds(),

		Events:         events,
		EventsPerSec:   float64(events) / elapsed.Seconds(),
		GoroutinesPeak: goroPeak,
		InboxDepthHWM:  snap.Gauges[box.MetricInboxDepth].HighWater,
		TimersHWM:      snap.Gauges[timerwheel.MetricPending].HighWater,
		QueueDepthHWM:  snap.Gauges[transport.MetricQueueDepth].HighWater,

		SetupCount: int64(ttf.Count),
		SetupP50MS: float64(ttf.P50) / float64(time.Millisecond),
		SetupP95MS: float64(ttf.P95) / float64(time.Millisecond),
		SetupP99MS: float64(ttf.P99) / float64(time.Millisecond),
	}
	if events > 0 {
		res.NsPerEvent = float64(elapsed.Nanoseconds()) / float64(events)
		res.AllocsPerEvent = float64(ms1.Mallocs-ms0.Mallocs) / float64(events)
	}

	// Clean shutdown under load is part of what the harness exercises.
	if cluster != nil {
		cluster.Stop()
	} else {
		stopAll(clients)
	}
	if res.PathsHeldPeak < int64(cfg.paths)/2 {
		fmt.Fprintf(os.Stderr, "callstorm: WARNING: held only %d of %d paths concurrently\n",
			res.PathsHeldPeak, cfg.paths)
	}
	return res
}

// listenAll starts n server boxes and returns their dial addresses.
func listenAll(network transport.Network, newRunner func(*box.Box, transport.Network) *box.Runner,
	netKind, prefix string, n int, build func(i int) *box.Box) []string {
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("%s%d", prefix, i)
		if netKind == "tcp" {
			// Grab a free loopback port for the runner to re-listen on.
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fmt.Fprintln(os.Stderr, "callstorm:", err)
				os.Exit(1)
			}
			addr = l.Addr().String()
			l.Close()
		}
		r := newRunner(build(i), network)
		if err := r.Listen(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "callstorm:", err)
			os.Exit(1)
		}
		addrs[i] = addr
	}
	return addrs
}

func devProfile(name string, port int) *core.EndpointProfile {
	return core.NewEndpointProfile(name, "10.1.0.1", port,
		[]sig.Codec{sig.G711, sig.G726}, []sig.Codec{sig.G711, sig.G726})
}

// relayHook splices every incoming call onward to a device box with a
// flowLink, and propagates teardowns to the spliced leg. It runs on
// the relay's loop goroutine.
//
// Spliced-leg names are pooled: accepted channel names are minted
// fresh per call (in0, in1, ...), so deriving the out-leg name from
// the in name ("out-"+in) allocated a new string per call, forever.
// Instead the hook keeps a free list of out names ("o-K"); a storm's
// steady state cycles a bounded set of strings and allocates none.
func relayHook(devAddrs []string, seed int) func(*box.Ctx, *box.Event) {
	next := seed
	outOf := map[string]string{} // live in-channel -> its spliced out name
	var free []string            // out names returned by torn-down calls
	minted := 0
	return func(ctx *box.Ctx, ev *box.Event) {
		if ev.Kind != box.EvEnvelope || !ev.Env.IsMeta() {
			return
		}
		in := ev.Channel
		if strings.HasPrefix(in, "o-") {
			return // events on spliced legs are the flowLink's business
		}
		switch ev.Env.Meta.Kind {
		case sig.MetaSetup:
			var out string
			if n := len(free); n > 0 {
				out, free = free[n-1], free[:n-1]
			} else {
				out = "o-" + strconv.Itoa(minted)
				minted++
			}
			outOf[in] = out
			ctx.Dial(out, devAddrs[next%len(devAddrs)])
			next++
			ctx.SetGoal(core.NewFlowLink(box.TunnelSlot(in, 0), box.TunnelSlot(out, 0)))
		case sig.MetaTeardown:
			if out, ok := outOf[in]; ok {
				delete(outOf, in)
				free = append(free, out)
				ctx.Teardown(out)
			}
		}
	}
}

// clientProgram is one path's lifecycle: dial and open toward addr,
// hold while flowing, tear down, redial. Hold times are jittered ±25%
// so the storm does not beat in lockstep, and a nonzero stagger delays
// the first dial by a uniform-random slice of the window so a large
// storm does not open every path in the same instant.
func clientProgram(stats *stormStats, addr string, hold, stagger, giveup time.Duration, seed int64) *box.Program {
	const ch = "c"
	s0 := box.TunnelSlot(ch, 0)
	rng := rand.New(rand.NewSource(seed))
	jitter := func() time.Duration {
		return hold/2 + hold/2 + time.Duration(rng.Int63n(int64(hold)/2)) - hold/4
	}
	initial := "call"
	var states []*box.State
	if stagger > 0 {
		initial = "stagger"
		delay := time.Duration(rng.Int63n(int64(stagger)))
		states = append(states, &box.State{
			Name:    "stagger",
			OnEnter: func(ctx *box.Ctx) { ctx.SetTimer("start", delay) },
			Trans: []box.Trans{
				{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("start") }, To: "call"},
			},
		})
	}
	states = append(states, []*box.State{
		{
			Name:   "call",
			Annots: []box.Annot{box.OpenSlotAnn(s0, sig.Audio)},
			OnEnter: func(ctx *box.Ctx) {
				ctx.Dial(ch, addr)
				ctx.SetTimer("giveup", giveup)
			},
			Trans: []box.Trans{
				{When: func(ctx *box.Ctx) bool { return ctx.IsFlowing(s0) }, To: "hold",
					Do: func(ctx *box.Ctx) {
						ctx.CancelTimer("giveup")
						stats.setups.Add(1)
						stats.holding.Add(1)
					}},
				{When: func(ctx *box.Ctx) bool { return ctx.OnMeta(ch, sig.MetaUnavailable) }, To: "redial",
					Do: func(ctx *box.Ctx) { ctx.CancelTimer("giveup"); stats.giveups.Add(1) }},
				{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("giveup") }, To: "redial",
					Do: func(ctx *box.Ctx) { stats.giveups.Add(1) }},
			},
		},
		{
			Name:    "hold",
			Annots:  []box.Annot{box.OpenSlotAnn(s0, sig.Audio)},
			OnEnter: func(ctx *box.Ctx) { ctx.SetTimer("hold", jitter()) },
			Trans: []box.Trans{
				{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("hold") }, To: "redial",
					Do: func(ctx *box.Ctx) {
						stats.holding.Add(-1)
						stats.completed.Add(1)
					}},
			},
		},
		{
			Name:    "redial",
			OnEnter: func(ctx *box.Ctx) { ctx.Teardown(ch) },
			Trans: []box.Trans{
				{When: func(*box.Ctx) bool { return true }, To: "call"},
			},
		},
	}...)
	return &box.Program{Initial: initial, States: states}
}

// stopAll stops runners through a small worker pool; serial Stop of
// 100k runners would dominate shutdown.
func stopAll(rs []*box.Runner) {
	var wg sync.WaitGroup
	work := make(chan *box.Runner)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range work {
				r.Stop()
			}
		}()
	}
	for _, r := range rs {
		work <- r
	}
	close(work)
	wg.Wait()
}
