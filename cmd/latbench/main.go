// latbench regenerates the paper's latency results (Sections VIII-C
// and IX-B) by executing the real protocol engines — and the SIP
// baseline — on a virtual clock with the paper's cost model: c = 20 ms
// server compute, n = 34 ms network delivery.
//
// Usage:
//
//	latbench [-exp fig13|sweep|sip|ablation|bundling|msgcount|glarewindow|all] [-c dur] [-n dur] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"ipmedia/internal/lab"
	"ipmedia/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig13, sweep, sip, ablation, bundling, msgcount, glarewindow, or all")
	c := flag.Duration("c", lab.PaperC, "server compute cost per stimulus")
	n := flag.Duration("n", lab.PaperN, "network delivery latency per signal")
	seed := flag.Int64("seed", 1, "seed for the SIP glare backoff")
	maxP := flag.Int("maxp", 8, "maximum path length for the sweep")
	noTel := flag.Bool("notelemetry", false, "skip the telemetry histogram report")
	flag.Parse()

	var reg *telemetry.Registry
	if !*noTel {
		reg = telemetry.Enable()
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()
	fmt.Fprintf(w, "cost model: c=%v n=%v (paper Section VIII-C)\n\n", *c, *n)
	fmt.Fprintln(w, "EXPERIMENT\tMEASURED\tFORMULA\tEXPECTED\tMATCH")

	emit := func(r lab.Row) {
		fmt.Fprintf(w, "%s\t%v\t%s\t%v\t%v\n", r.Name, r.Measured, r.Formula, r.Expected, r.Match())
	}
	die := func(err error) {
		if err != nil {
			w.Flush()
			fmt.Fprintln(os.Stderr, "latbench:", err)
			os.Exit(1)
		}
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }

	if run("fig13") {
		r, err := lab.Fig13(*c, *n)
		die(err)
		emit(r)
		fmt.Fprintf(w, "\t\t\t(paper: 128 ms at c=20ms n=34ms)\n")
	}
	if run("sweep") {
		rows, err := lab.PathSweep(*c, *n, *maxP)
		die(err)
		for _, r := range rows {
			emit(r)
		}
	}
	if run("sip") {
		r, err := lab.SIPCommon(*c, *n)
		die(err)
		emit(r)
		fmt.Fprintf(w, "\t\t\t(paper: \"the comparison is 378 ms versus 128 ms\")\n")
		g, d, err := lab.SIPGlare(*c, *n, *seed)
		die(err)
		emit(g)
		fmt.Fprintf(w, "\t\t\t(paper: 3560 ms at E[d]=3s; this run d=%v)\n", d)
	}
	if run("ablation") {
		rows, err := lab.Ablations(*c, *n, *seed)
		die(err)
		for _, r := range rows {
			emit(r)
		}
	}
	if run("bundling") {
		r1, err := lab.BundlingOurs(*c, *n)
		die(err)
		emit(r1)
		r2, err := lab.BundlingSIP(*c, *n)
		die(err)
		emit(r2)
		fmt.Fprintf(w, "\t\t\t(independent tunnels vs serialized SIP transactions)\n")
	}
	if run("jitter") {
		res, err := lab.Fig13Jitter(*c, *n, 20*time.Millisecond, 500)
		die(err)
		fmt.Fprintf(w, "\n%s\n", res)
		fmt.Fprintf(w, "(the paper's n is an average; under jitter the formula holds in expectation)\n")
	}
	if run("glarewindow") {
		res, err := lab.GlareWindow(*c, *n, 400*time.Millisecond, 20*time.Millisecond)
		die(err)
		fmt.Fprintf(w, "\n%s\n", res)
		fmt.Fprintf(w, "(two servers' operations offset in time: SIP's transactions collide\n")
		fmt.Fprintf(w, " inside the window; the idempotent protocol never conflicts)\n")
	}
	if run("msgcount") {
		m, err := lab.MessageCounts(*c, *n, *seed)
		die(err)
		fmt.Fprintf(w, "\n%s\n", m)
		fmt.Fprintf(w, "(ours covers BOTH servers relinking concurrently — two operations;\n")
		fmt.Fprintf(w, " the SIP counts cover one server's operation)\n")
	}

	if reg != nil {
		w.Flush()
		printHistograms(reg)
	}
}

// printHistograms reports the wall-clock latency histograms the run
// populated: protocol-engine compute per goal kind and slot
// time-to-flowing. The experiments above measure *virtual* latency;
// these histograms measure the real CPU cost of the same engines.
func printHistograms(reg *telemetry.Registry) {
	s := reg.Snapshot()
	names := make([]string, 0, len(s.Histograms))
	for k, h := range s.Histograms {
		if h.Count > 0 {
			names = append(names, k)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Println("\ntelemetry histograms (wall clock):")
	hw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer hw.Flush()
	fmt.Fprintln(hw, "HISTOGRAM\tCOUNT\tAVG\tP50\tP95\tP99")
	for _, k := range names {
		h := s.Histograms[k]
		fmt.Fprintf(hw, "%s\t%d\t%v\t%v\t%v\t%v\n", k, h.Count, h.Avg, h.P50, h.P95, h.P99)
	}
}
