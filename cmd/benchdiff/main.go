// benchdiff compares two BENCH_runtime.json records — typically the
// last committed one against a freshly measured one — and fails when
// the hot-path numbers regress beyond a tolerance. It is the guard
// that keeps the runtime benchmarks honest: a PR that re-measures the
// curve cannot silently trade away the per-event costs the previous
// PRs bought.
//
// Per GOMAXPROCS leg (matched across the two files) it compares:
//
//   - ns_per_event: CPU cost of one dispatched event
//   - allocs_per_event: allocator pressure per event
//
// Improvements and changes within the tolerance pass; any leg
// regressing more than -max-regress percent fails the run. Throughput
// (calls_per_sec) is reported but not gated — on shared CI hosts it is
// too load-sensitive to gate on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type leg struct {
	GOMAXPROCS  int     `json:"gomaxprocs"`
	CallsPerSec float64 `json:"calls_per_sec"`
	NsPerEvent  float64 `json:"ns_per_event"`
	AllocsPerEv float64 `json:"allocs_per_event"`
}

type record struct {
	Date  string `json:"date"`
	Curve []leg  `json:"gomaxprocs_curve"`
	// Flat single-leg records (callstorm without -sweep) carry the
	// fields at top level instead.
	leg
}

func load(path string) (record, error) {
	var r record
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Curve) == 0 && r.NsPerEvent > 0 {
		r.Curve = []leg{r.leg}
	}
	return r, nil
}

func main() {
	oldPath := flag.String("old", "", "baseline BENCH_runtime.json (e.g. the committed one)")
	newPath := flag.String("new", "BENCH_runtime.json", "fresh BENCH_runtime.json to check")
	maxRegress := flag.Float64("max-regress", 10, "max tolerated regression, percent")
	flag.Parse()
	if *oldPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old is required")
		os.Exit(2)
	}

	oldRec, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRec, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	byGMP := map[int]leg{}
	for _, l := range oldRec.Curve {
		byGMP[l.GOMAXPROCS] = l
	}

	fmt.Printf("benchdiff: %s (%s) -> %s (%s), tolerance %.0f%%\n",
		*oldPath, oldRec.Date, *newPath, newRec.Date, *maxRegress)
	fmt.Printf("%-5s %14s %14s %8s   %14s %14s %8s\n",
		"gmp", "ns/ev old", "ns/ev new", "delta", "allocs/ev old", "allocs/ev new", "delta")

	pct := func(oldV, newV float64) float64 {
		if oldV == 0 {
			return 0
		}
		return (newV - oldV) / oldV * 100
	}

	failed := false
	compared := 0
	for _, n := range newRec.Curve {
		o, ok := byGMP[n.GOMAXPROCS]
		if !ok {
			fmt.Printf("%-5d (no baseline leg; skipped)\n", n.GOMAXPROCS)
			continue
		}
		compared++
		dNs := pct(o.NsPerEvent, n.NsPerEvent)
		dAl := pct(o.AllocsPerEv, n.AllocsPerEv)
		mark := ""
		if dNs > *maxRegress || dAl > *maxRegress {
			mark = "  << REGRESSION"
			failed = true
		}
		fmt.Printf("%-5d %14.0f %14.0f %+7.1f%%   %14.2f %14.2f %+7.1f%%%s\n",
			n.GOMAXPROCS, o.NsPerEvent, n.NsPerEvent, dNs, o.AllocsPerEv, n.AllocsPerEv, dAl, mark)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no comparable legs between the two records")
		os.Exit(2)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: regression beyond %.0f%% tolerance\n", *maxRegress)
		os.Exit(1)
	}
	fmt.Println("benchdiff: within tolerance")
}
