// mediastorm is the load harness for the media plane: it brings up N
// flowing media paths (transmitter/receiver agent pairs wired the way
// the signaling stack wires them after a successful open/select
// exchange), streams paced media through them, and reports throughput,
// allocation cost, clipping, and delivery jitter, optionally as a JSON
// artifact (BENCH_media.json via make bench-media).
//
// Three carriers are measured so the fast-path speedup stays on
// record: the in-memory Plane (mem), the seed's dial-per-packet UDP
// transmit loop (udp_legacy, via UDPPlane.LegacyTick), and the
// persistent-socket batched pipeline (udp, driven by per-agent
// pacers). The udp/udp_legacy ratio is the tentpole number.
//
// Usage:
//
//	mediastorm [-agents N] [-plane all|mem|udp|legacy] [-rate PPS]
//	           [-duration 3s] [-batch auto|on|off] [-out BENCH_media.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"ipmedia/internal/media"
	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
)

type runResult struct {
	Plane   string `json:"plane"` // mem | udp_legacy | udp
	BatchIO bool   `json:"batch_io"`
	Agents  int    `json:"agents"` // flowing pairs

	WindowMS     int64  `json:"window_ms"`
	Sent         uint64 `json:"packets_sent"`
	Accepted     uint64 `json:"packets_accepted"`
	Clipped      uint64 `json:"packets_clipped"`
	Unexpected   uint64 `json:"packets_unexpected"`
	DecodeErrors uint64 `json:"decode_errors"`

	PPSOut          float64 `json:"pps_out"`
	PPSIn           float64 `json:"pps_in"`
	ClipRate        float64 `json:"clip_rate"`
	AllocsPerPacket float64 `json:"allocs_per_packet"`

	JitterP50US float64 `json:"jitter_p50_us"`
	JitterP95US float64 `json:"jitter_p95_us"`
	JitterP99US float64 `json:"jitter_p99_us"`
}

type report struct {
	Date           string `json:"date"`
	GoMaxProcs     int    `json:"gomaxprocs"`
	NumCPU         int    `json:"num_cpu"`
	BatchSupported bool   `json:"batch_io_supported"`
	Agents         int    `json:"agents"`
	RatePerFlow    int    `json:"rate_per_flow_pps"`

	Runs []runResult `json:"runs"`

	UDPSpeedupVsLegacy float64 `json:"udp_speedup_vs_legacy"`
	MemSpeedupVsLegacy float64 `json:"mem_speedup_vs_legacy"`
}

func main() {
	agents := flag.Int("agents", 32, "flowing media paths (transmitter/receiver pairs)")
	plane := flag.String("plane", "all", "carriers to measure: all, mem, udp, legacy")
	rate := flag.Int("rate", 0, "per-flow target pps on the paced UDP run (0: saturate)")
	duration := flag.Duration("duration", 3*time.Second, "measurement window per carrier")
	batch := flag.String("batch", "auto", "UDP batched syscall path: auto, on, off")
	out := flag.String("out", "", "write the result JSON here (empty: stdout only)")
	flag.Parse()

	rep := report{
		Date:           time.Now().Format("2006-01-02"),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		BatchSupported: media.NewUDPPlane().BatchIO(),
		Agents:         *agents,
		RatePerFlow:    *rate,
	}

	want := func(name string) bool { return *plane == "all" || *plane == name }
	if want("mem") {
		rep.Runs = append(rep.Runs, runMem(*agents, *duration))
	}
	if want("legacy") || (*plane == "all") {
		rep.Runs = append(rep.Runs, runUDP(*agents, *duration, *rate, *batch, true))
	}
	if want("udp") {
		rep.Runs = append(rep.Runs, runUDP(*agents, *duration, *rate, *batch, false))
	}

	var legacy, udp, mem float64
	for _, r := range rep.Runs {
		switch r.Plane {
		case "udp_legacy":
			legacy = r.PPSOut
		case "udp":
			udp = r.PPSOut
		case "mem":
			mem = r.PPSOut
		}
	}
	if legacy > 0 {
		rep.UDPSpeedupVsLegacy = udp / legacy
		rep.MemSpeedupVsLegacy = mem / legacy
	}

	blob, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
	}
	for _, r := range rep.Runs {
		if r.Sent == 0 {
			fatalf("carrier %s moved no packets", r.Plane)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mediastorm: "+format+"\n", args...)
	os.Exit(1)
}

// freshTelemetry installs a new registry so each run's counters and
// jitter histogram start from zero, and returns it.
func freshTelemetry() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)
	return reg
}

// runMem blasts Tick-driven media through n in-memory pairs.
func runMem(n int, dur time.Duration) runResult {
	freshTelemetry()
	p := media.NewPlane()
	txs := make([]*media.Agent, n)
	for i := 0; i < n; i++ {
		tx := p.Agent(fmt.Sprintf("tx%04d", i), media.AddrPort{Addr: fmt.Sprintf("h%d", i), Port: 1})
		rx := p.Agent(fmt.Sprintf("rx%04d", i), media.AddrPort{Addr: fmt.Sprintf("h%d", i), Port: 2})
		tx.SetSending(rx.Origin(), sig.G711)
		rx.SetExpecting(tx.Origin(), sig.G711, true)
		txs[i] = tx
	}
	fmt.Fprintf(os.Stderr, "mediastorm: mem: %d pairs, %v window...\n", n, dur)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for time.Since(t0) < dur {
		p.Tick(16)
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	res := collect("mem", false, n, elapsed, txs, nil)
	if res.Sent > 0 {
		res.AllocsPerPacket = float64(ms1.Mallocs-ms0.Mallocs) / float64(res.Sent)
	}
	return res
}

// runUDP streams media through n loopback pairs: the seed
// dial-per-packet loop when legacy, otherwise per-agent pacers over
// the persistent-socket batched pipeline.
func runUDP(n int, dur time.Duration, rate int, batch string, legacy bool) runResult {
	reg := freshTelemetry()
	p := media.NewUDPPlane()
	defer p.Close()
	switch batch {
	case "on":
		p.SetBatchIO(true)
	case "off":
		p.SetBatchIO(false)
	}
	name := "udp"
	if legacy {
		name = "udp_legacy"
	}

	ports := freePorts(2 * n)
	txs := make([]*media.Agent, n)
	for i := 0; i < n; i++ {
		tx := p.Agent(fmt.Sprintf("tx%04d", i), media.AddrPort{Addr: "127.0.0.1", Port: ports[2*i]})
		rx := p.Agent(fmt.Sprintf("rx%04d", i), media.AddrPort{Addr: "127.0.0.1", Port: ports[2*i+1]})
		tx.SetSending(rx.Origin(), sig.G711)
		rx.SetExpecting(tx.Origin(), sig.G711, true)
		txs[i] = tx
	}
	if errs := p.Errs(); len(errs) > 0 {
		fatalf("udp setup: %v", errs[0])
	}

	fmt.Fprintf(os.Stderr, "mediastorm: %s: %d pairs, batch_io=%v, %v window...\n",
		name, n, p.BatchIO() && !legacy, dur)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	if legacy {
		for time.Since(t0) < dur {
			p.LegacyTick(1)
		}
	} else {
		// One pacer per transmitting agent. rate 0 saturates: a short
		// interval with a full staging batch per tick.
		interval, perTick := 100*time.Microsecond, 128
		if rate > 0 {
			interval = 5 * time.Millisecond
			perTick = rate / 200 // packets per 5ms tick
			if perTick < 1 {
				perTick = 1
				interval = time.Second / time.Duration(rate)
			}
		}
		for _, tx := range txs {
			p.StartPacer(tx, interval, perTick)
		}
		time.Sleep(dur)
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	// Let in-flight datagrams drain before the final receive counts.
	time.Sleep(200 * time.Millisecond)
	res := collect(name, p.BatchIO() && !legacy, n, elapsed, txs, reg)
	if res.Sent > 0 {
		res.AllocsPerPacket = float64(ms1.Mallocs-ms0.Mallocs) / float64(res.Sent)
	}
	if errs := p.Errs(); len(errs) > 0 {
		fatalf("%s run: %v", name, errs[0])
	}
	return res
}

// collect sums the pair stats into one carrier result. reg supplies
// decode-error and jitter numbers for the UDP runs (nil for mem).
func collect(name string, batchIO bool, n int, elapsed time.Duration, txs []*media.Agent, reg *telemetry.Registry) runResult {
	res := runResult{Plane: name, BatchIO: batchIO, Agents: n, WindowMS: elapsed.Milliseconds()}
	for _, tx := range txs {
		res.Sent += tx.Stats().Sent
	}
	snap := telemetry.Default().Snapshot()
	in := snap.Counters[media.MetricPacketsIn]
	res.Clipped = snap.Counters[media.MetricClipped]
	res.DecodeErrors = snap.Counters[media.MetricDecodeErrors]
	// The harness wires no strangers, so everything received is either
	// accepted or clipped.
	res.Accepted = in - res.Clipped
	secs := elapsed.Seconds()
	res.PPSOut = float64(res.Sent) / secs
	res.PPSIn = float64(in) / secs
	if in > 0 {
		res.ClipRate = float64(res.Clipped) / float64(in)
	}
	if reg != nil {
		j := snap.Histograms[media.MetricJitter]
		res.JitterP50US = float64(j.P50) / float64(time.Microsecond)
		res.JitterP95US = float64(j.P95) / float64(time.Microsecond)
		res.JitterP99US = float64(j.P99) / float64(time.Microsecond)
	}
	return res
}

// freePorts grabs n currently-free loopback UDP ports by binding them
// all at once, then releasing them for the plane's agents to re-bind.
func freePorts(n int) []int {
	conns := make([]*net.UDPConn, 0, n)
	ports := make([]int, 0, n)
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP("127.0.0.1")})
		if err != nil {
			fatalf("probing free ports: %v", err)
		}
		conns = append(conns, c)
		ports = append(ports, c.LocalAddr().(*net.UDPAddr).Port)
	}
	for _, c := range conns {
		c.Close()
	}
	return ports
}
