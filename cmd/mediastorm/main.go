// mediastorm is the load harness for the media plane: it brings up N
// flowing media paths (transmitter/receiver agent pairs wired the way
// the signaling stack wires them after a successful open/select
// exchange), streams paced media through them, and reports throughput,
// allocation cost, clipping, and delivery jitter, optionally as a JSON
// artifact (BENCH_media.json via make bench-media).
//
// Three carriers are measured so the fast-path speedup stays on
// record: the in-memory Plane (mem), the seed's dial-per-packet UDP
// transmit loop (udp_legacy, via UDPPlane.LegacyTick), and the
// persistent-socket batched pipeline (udp, driven by per-agent
// pacers). The udp/udp_legacy ratio is the tentpole number.
//
// The framed legs measure what the MPEG-TS container costs on the
// same pipeline: udp_ts muxes and demux-validates a 7×188-byte TS
// burst per packet, udp_opaque moves the same 1316 bytes with no
// container — the fair baseline, since the header-only legs above
// send ~30-byte datagrams. ts_pps_ratio_vs_opaque is the acceptance
// number (≥0.85 = at most a 15% pps penalty).
//
// Usage:
//
//	mediastorm [-agents N] [-plane all|mem|udp|legacy] [-rate PPS]
//	           [-framing none|ts|opaque] [-duration 3s]
//	           [-batch auto|on|off] [-out BENCH_media.json]
//
// -framing selects the payload for the explicit -plane udp run;
// -plane all always appends the udp_opaque and udp_ts legs.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"ipmedia/internal/media"
	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
)

type runResult struct {
	Plane   string `json:"plane"` // mem | udp_legacy | udp | udp_opaque | udp_ts
	BatchIO bool   `json:"batch_io"`
	Agents  int    `json:"agents"`  // flowing pairs
	Framing string `json:"framing"` // none | opaque | ts
	Payload int    `json:"payload_bytes"`

	WindowMS     int64  `json:"window_ms"`
	Sent         uint64 `json:"packets_sent"`
	Accepted     uint64 `json:"packets_accepted"`
	Clipped      uint64 `json:"packets_clipped"`
	Unexpected   uint64 `json:"packets_unexpected"`
	DecodeErrors uint64 `json:"decode_errors"`

	// The actual offered rate, from packets really sent — not the -rate
	// target, which a saturated sender may never reach.
	RatePerFlowPPS float64 `json:"rate_per_flow_pps"`

	PPSOut          float64 `json:"pps_out"`
	PPSIn           float64 `json:"pps_in"`
	ClipRate        float64 `json:"clip_rate"`
	AllocsPerPacket float64 `json:"allocs_per_packet"`

	JitterP50US float64 `json:"jitter_p50_us"`
	JitterP95US float64 `json:"jitter_p95_us"`
	JitterP99US float64 `json:"jitter_p99_us"`

	// Framed-leg integrity counters (zero on a clean paced wire;
	// saturation loss surfaces here as discontinuities).
	FramingErrors       uint64 `json:"framing_errors,omitempty"`
	TSCRCErrors         uint64 `json:"ts_crc_errors,omitempty"`
	TSCCDiscontinuities uint64 `json:"ts_cc_discontinuities,omitempty"`
}

type report struct {
	Date           string `json:"date"`
	GoMaxProcs     int    `json:"gomaxprocs"`
	NumCPU         int    `json:"num_cpu"`
	BatchSupported bool   `json:"batch_io_supported"`
	Agents         int    `json:"agents"`
	RateTarget     int    `json:"rate_per_flow_target_pps"` // the -rate flag; per-run rate_per_flow_pps is the actual

	Runs []runResult `json:"runs"`

	UDPSpeedupVsLegacy float64 `json:"udp_speedup_vs_legacy"`
	MemSpeedupVsLegacy float64 `json:"mem_speedup_vs_legacy"`
	// udp_ts pps over udp_opaque pps at the same payload size: the
	// container's cost. Acceptance is ≥0.85 (≤15% penalty).
	TSPPSRatioVsOpaque float64 `json:"ts_pps_ratio_vs_opaque,omitempty"`
}

func main() {
	agents := flag.Int("agents", 32, "flowing media paths (transmitter/receiver pairs)")
	plane := flag.String("plane", "all", "carriers to measure: all, mem, udp, legacy")
	rate := flag.Int("rate", 0, "per-flow target pps on the paced UDP run (0: saturate)")
	framing := flag.String("framing", "none", "payload framing for the -plane udp run: none, ts, opaque")
	duration := flag.Duration("duration", 3*time.Second, "measurement window per carrier")
	batch := flag.String("batch", "auto", "UDP batched syscall path: auto, on, off")
	out := flag.String("out", "", "write the result JSON here (empty: stdout only)")
	flag.Parse()

	if _, ok := media.NewFramingFactory(*framing); !ok {
		fatalf("unknown framing %q", *framing)
	}

	rep := report{
		Date:           time.Now().Format("2006-01-02"),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		BatchSupported: media.NewUDPPlane().BatchIO(),
		Agents:         *agents,
		RateTarget:     *rate,
	}

	want := func(name string) bool { return *plane == "all" || *plane == name }
	if want("mem") {
		rep.Runs = append(rep.Runs, runMem(*agents, *duration))
	}
	if want("legacy") || (*plane == "all") {
		rep.Runs = append(rep.Runs, runUDP(*agents, *duration, *rate, *batch, true, "none"))
	}
	if want("udp") {
		rep.Runs = append(rep.Runs, runUDP(*agents, *duration, *rate, *batch, false, *framing))
	}
	if *plane == "all" {
		// The framed-vs-opaque pair: equal payload sizes, so the ratio
		// isolates the container's mux+demux cost.
		rep.Runs = append(rep.Runs, runUDP(*agents, *duration, *rate, *batch, false, "opaque"))
		rep.Runs = append(rep.Runs, runUDP(*agents, *duration, *rate, *batch, false, "ts"))
	}

	var legacy, udp, mem, udpTS, udpOpaque float64
	for _, r := range rep.Runs {
		switch r.Plane {
		case "udp_legacy":
			legacy = r.PPSOut
		case "udp":
			udp = r.PPSOut
		case "mem":
			mem = r.PPSOut
		case "udp_ts":
			udpTS = r.PPSOut
		case "udp_opaque":
			udpOpaque = r.PPSOut
		}
	}
	if legacy > 0 {
		rep.UDPSpeedupVsLegacy = udp / legacy
		rep.MemSpeedupVsLegacy = mem / legacy
	}
	if udpOpaque > 0 {
		rep.TSPPSRatioVsOpaque = udpTS / udpOpaque
	}

	blob, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
	}
	for _, r := range rep.Runs {
		if r.Sent == 0 {
			fatalf("carrier %s moved no packets", r.Plane)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mediastorm: "+format+"\n", args...)
	os.Exit(1)
}

// freshTelemetry installs a new registry so each run's counters and
// jitter histogram start from zero, and returns it.
func freshTelemetry() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)
	return reg
}

// runMem blasts Tick-driven media through n in-memory pairs.
func runMem(n int, dur time.Duration) runResult {
	freshTelemetry()
	p := media.NewPlane()
	txs := make([]*media.Agent, n)
	for i := 0; i < n; i++ {
		tx := p.Agent(fmt.Sprintf("tx%04d", i), media.AddrPort{Addr: fmt.Sprintf("h%d", i), Port: 1})
		rx := p.Agent(fmt.Sprintf("rx%04d", i), media.AddrPort{Addr: fmt.Sprintf("h%d", i), Port: 2})
		tx.SetSending(rx.Origin(), sig.G711)
		rx.SetExpecting(tx.Origin(), sig.G711, true)
		txs[i] = tx
	}
	fmt.Fprintf(os.Stderr, "mediastorm: mem: %d pairs, %v window...\n", n, dur)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for time.Since(t0) < dur {
		p.Tick(16)
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	res := collect("mem", false, n, elapsed, txs, nil, nil)
	res.Framing = "none"
	if res.Sent > 0 {
		res.AllocsPerPacket = float64(ms1.Mallocs-ms0.Mallocs) / float64(res.Sent)
	}
	return res
}

// runUDP streams media through n loopback pairs: the seed
// dial-per-packet loop when legacy, otherwise per-agent pacers over
// the persistent-socket batched pipeline. framing selects the payload
// each packet carries ("none" for the header-only legs).
func runUDP(n int, dur time.Duration, rate int, batch string, legacy bool, framing string) runResult {
	reg := freshTelemetry()
	p := media.NewUDPPlane()
	defer p.Close()
	switch batch {
	case "on":
		p.SetBatchIO(true)
	case "off":
		p.SetBatchIO(false)
	}
	name := "udp"
	if legacy {
		name = "udp_legacy"
	}
	factory, _ := media.NewFramingFactory(framing)
	if factory != nil {
		name += "_" + framing
		p.SetFraming(factory)
	}

	ports := freePorts(2 * n)
	txs := make([]*media.Agent, n)
	rxs := make([]*media.Agent, n)
	for i := 0; i < n; i++ {
		tx := p.Agent(fmt.Sprintf("tx%04d", i), media.AddrPort{Addr: "127.0.0.1", Port: ports[2*i]})
		rx := p.Agent(fmt.Sprintf("rx%04d", i), media.AddrPort{Addr: "127.0.0.1", Port: ports[2*i+1]})
		tx.SetSending(rx.Origin(), sig.G711)
		rx.SetExpecting(tx.Origin(), sig.G711, true)
		txs[i] = tx
		rxs[i] = rx
	}
	if errs := p.Errs(); len(errs) > 0 {
		fatalf("udp setup: %v", errs[0])
	}

	fmt.Fprintf(os.Stderr, "mediastorm: %s: %d pairs, batch_io=%v, %v window...\n",
		name, n, p.BatchIO() && !legacy, dur)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	if legacy {
		for time.Since(t0) < dur {
			p.LegacyTick(1)
		}
	} else {
		// One pacer per transmitting agent. rate 0 saturates: a short
		// interval with a full staging batch per tick.
		interval, perTick := 100*time.Microsecond, 128
		if rate > 0 {
			interval = 5 * time.Millisecond
			perTick = rate / 200 // packets per 5ms tick
			if perTick < 1 {
				perTick = 1
				interval = time.Second / time.Duration(rate)
			}
		}
		for _, tx := range txs {
			p.StartPacer(tx, interval, perTick)
		}
		time.Sleep(dur)
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	// Let in-flight datagrams drain before the final receive counts.
	time.Sleep(200 * time.Millisecond)
	res := collect(name, p.BatchIO() && !legacy, n, elapsed, txs, rxs, reg)
	res.Framing = framing
	if factory != nil {
		res.Payload = factory().PayloadSize()
	}
	if res.Sent > 0 {
		res.AllocsPerPacket = float64(ms1.Mallocs-ms0.Mallocs) / float64(res.Sent)
	}
	for _, err := range p.Errs() {
		// A framed saturated run legitimately loses datagrams (counted as
		// discontinuities); only non-framing errors are fatal.
		if errors.Is(err, media.ErrFraming) {
			continue
		}
		fatalf("%s run: %v", name, err)
	}
	return res
}

// collect sums the pair stats into one carrier result. reg supplies
// decode-error and jitter numbers for the UDP runs (nil for mem);
// rxs (when given) supplies per-receiver framing-error counts.
func collect(name string, batchIO bool, n int, elapsed time.Duration, txs, rxs []*media.Agent, reg *telemetry.Registry) runResult {
	res := runResult{Plane: name, BatchIO: batchIO, Agents: n, WindowMS: elapsed.Milliseconds()}
	for _, tx := range txs {
		res.Sent += tx.Stats().Sent
	}
	for _, rx := range rxs {
		res.FramingErrors += rx.Stats().FramingErrors
	}
	snap := telemetry.Default().Snapshot()
	in := snap.Counters[media.MetricPacketsIn]
	res.Clipped = snap.Counters[media.MetricClipped]
	res.DecodeErrors = snap.Counters[media.MetricDecodeErrors]
	res.TSCRCErrors = snap.Counters[media.MetricTSCRCErrors]
	res.TSCCDiscontinuities = snap.Counters[media.MetricTSCCDiscontinuities]
	// The harness wires no strangers, so everything received is either
	// accepted or clipped.
	res.Accepted = in - res.Clipped
	secs := elapsed.Seconds()
	res.PPSOut = float64(res.Sent) / secs
	res.PPSIn = float64(in) / secs
	res.RatePerFlowPPS = res.PPSOut / float64(n)
	if in > 0 {
		res.ClipRate = float64(res.Clipped) / float64(in)
	}
	if reg != nil {
		j := snap.Histograms[media.MetricJitter]
		res.JitterP50US = float64(j.P50) / float64(time.Microsecond)
		res.JitterP95US = float64(j.P95) / float64(time.Microsecond)
		res.JitterP99US = float64(j.P99) / float64(time.Microsecond)
	}
	return res
}

// freePorts grabs n currently-free loopback UDP ports by binding them
// all at once, then releasing them for the plane's agents to re-bind.
func freePorts(n int) []int {
	conns := make([]*net.UDPConn, 0, n)
	ports := make([]int, 0, n)
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP("127.0.0.1")})
		if err != nil {
			fatalf("probing free ports: %v", err)
		}
		conns = append(conns, c)
		ports = append(ports, c.LocalAddr().(*net.UDPAddr).Port)
	}
	for _, c := range conns {
		c.Close()
	}
	return ports
}
