// tsstorm is the MPEG-TS integrity harness: it streams paced TS-framed
// media through N loopback flows and verifies the container survives
// the trip — every burst demuxes with intact sync bytes, per-PID
// continuity, PSI CRC32s, and PES headers. On a clean wire (a paced
// rate well under capacity) the gate is strict: zero CRC errors, zero
// continuity discontinuities, zero framing drops; make ts-smoke runs
// it that way in CI. It also reports PCR jitter percentiles — how far
// the receive clock spacing drifts from the 27 MHz program clock.
//
// Usage:
//
//	tsstorm [-agents 8] [-rate 50] [-duration 2s] [-gate] [-out FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"ipmedia/internal/media"
	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
)

type result struct {
	Date       string `json:"date"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Agents     int    `json:"agents"`
	RatePPS    int    `json:"rate_per_flow_pps"`
	WindowMS   int64  `json:"window_ms"`

	Sent          uint64 `json:"packets_sent"`
	Accepted      uint64 `json:"packets_accepted"`
	FramingErrors uint64 `json:"framing_errors"`

	TSPackets          uint64  `json:"ts_packets"`
	PSISections        uint64  `json:"ts_psi_sections"`
	CRCErrors          uint64  `json:"ts_crc_errors"`
	CCDiscontinuities  uint64  `json:"ts_cc_discontinuities"`
	PCRJitterP50US     float64 `json:"pcr_jitter_p50_us"`
	PCRJitterP95US     float64 `json:"pcr_jitter_p95_us"`
	PCRJitterP99US     float64 `json:"pcr_jitter_p99_us"`
	AllocsPerPacket    float64 `json:"allocs_per_packet"`
	PayloadBytesPerPkt int     `json:"payload_bytes"`
}

func main() {
	agents := flag.Int("agents", 8, "flowing TS media paths (transmitter/receiver pairs)")
	rate := flag.Int("rate", 50, "paced per-flow pps (20ms bursts at 50)")
	duration := flag.Duration("duration", 2*time.Second, "streaming window")
	gate := flag.Bool("gate", false, "exit non-zero on any integrity error (CI smoke mode)")
	out := flag.String("out", "", "write the result JSON here (empty: stdout only)")
	flag.Parse()

	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)

	p := media.NewUDPPlane()
	p.SetFraming(func() media.Framing { return media.NewTSFraming() })
	defer p.Close()

	ports := freePorts(2 * *agents)
	txs := make([]*media.Agent, *agents)
	rxs := make([]*media.Agent, *agents)
	for i := 0; i < *agents; i++ {
		tx := p.Agent(fmt.Sprintf("tx%04d", i), media.AddrPort{Addr: "127.0.0.1", Port: ports[2*i]})
		rx := p.Agent(fmt.Sprintf("rx%04d", i), media.AddrPort{Addr: "127.0.0.1", Port: ports[2*i+1]})
		tx.SetSending(rx.Origin(), sig.G711)
		rx.SetExpecting(tx.Origin(), sig.G711, true)
		txs[i], rxs[i] = tx, rx
	}
	if errs := p.Errs(); len(errs) > 0 {
		fatalf("setup: %v", errs[0])
	}

	fmt.Fprintf(os.Stderr, "tsstorm: %d TS flows at %d pps each, %v window...\n", *agents, *rate, *duration)
	interval := time.Second / time.Duration(*rate)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for _, tx := range txs {
		p.StartPacer(tx, interval, 1)
	}
	time.Sleep(*duration)
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	time.Sleep(100 * time.Millisecond) // drain in-flight datagrams

	res := result{
		Date:               time.Now().Format("2006-01-02"),
		GoMaxProcs:         runtime.GOMAXPROCS(0),
		Agents:             *agents,
		RatePPS:            *rate,
		WindowMS:           elapsed.Milliseconds(),
		PayloadBytesPerPkt: media.TSPayloadSize,
	}
	for _, tx := range txs {
		res.Sent += tx.Stats().Sent
	}
	for _, rx := range rxs {
		s := rx.Stats()
		res.Accepted += s.Accepted
		res.FramingErrors += s.FramingErrors
	}
	snap := reg.Snapshot()
	res.TSPackets = snap.Counters[media.MetricTSPackets]
	res.PSISections = snap.Counters[media.MetricTSPSISections]
	res.CRCErrors = snap.Counters[media.MetricTSCRCErrors]
	res.CCDiscontinuities = snap.Counters[media.MetricTSCCDiscontinuities]
	j := snap.Histograms[media.MetricTSPCRJitter]
	res.PCRJitterP50US = float64(j.P50) / float64(time.Microsecond)
	res.PCRJitterP95US = float64(j.P95) / float64(time.Microsecond)
	res.PCRJitterP99US = float64(j.P99) / float64(time.Microsecond)
	if res.Sent > 0 {
		res.AllocsPerPacket = float64(ms1.Mallocs-ms0.Mallocs) / float64(res.Sent)
	}

	blob, _ := json.MarshalIndent(res, "", "  ")
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
	}

	if res.Sent == 0 || res.Accepted == 0 {
		fatalf("no TS media moved (sent %d, accepted %d)", res.Sent, res.Accepted)
	}
	if *gate {
		if res.CRCErrors != 0 || res.CCDiscontinuities != 0 || res.FramingErrors != 0 {
			fatalf("integrity gate failed: %d crc errors, %d cc discontinuities, %d framing drops on a clean wire",
				res.CRCErrors, res.CCDiscontinuities, res.FramingErrors)
		}
		fmt.Fprintf(os.Stderr, "tsstorm: gate passed: %d bursts (%d TS packets) clean\n", res.Accepted, res.TSPackets)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tsstorm: "+format+"\n", args...)
	os.Exit(1)
}

// freePorts grabs n currently-free loopback UDP ports by binding them
// all at once, then releasing them for the plane's agents to re-bind.
func freePorts(n int) []int {
	conns := make([]*net.UDPConn, 0, n)
	ports := make([]int, 0, n)
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP("127.0.0.1")})
		if err != nil {
			fatalf("probing free ports: %v", err)
		}
		conns = append(conns, c)
		ports = append(ports, c.LocalAddr().(*net.UDPAddr).Port)
	}
	for _, c := range conns {
		c.Close()
	}
	return ports
}
