// Collaborative television (paper Figure 8): a large television in the
// family room (video + English audio), a French-speaking friend's
// headphones (French audio), and a daughter's laptop (video + English
// audio) all share one movie at one time point. The collaborative
// control box for the television holds the single signaling channel to
// the movie server, with five tunnels controlling the five media
// channels; pause and play are mediated by it and affect all five.
//
// The daughter then leaves the collaboration and seeks to the end of
// the movie: her collaboration box gets its own signaling channel to
// the server, associated with the same movie but a different time
// pointer.
//
// Run with: go run ./examples/collabtv
package main

import (
	"fmt"
	"log"
	"time"

	"ipmedia"
)

func waitFor(what string, pred func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	log.Fatalf("timeout waiting for %s", what)
}

func device(net *ipmedia.MemNetwork, plane *ipmedia.MediaPlane, name string, port int, video bool) *ipmedia.Device {
	codecs := []ipmedia.Codec{ipmedia.G711, ipmedia.G726}
	if video {
		codecs = []ipmedia.Codec{"H264", "H263"}
	}
	d, err := ipmedia.NewDevice(ipmedia.DeviceConfig{
		Name: name, Net: net, Plane: plane, MediaPort: port,
		RecvCodecs: codecs, SendCodecs: codecs,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Viewers receive; they do not send media to the server.
	d.SetMute(false, true)
	return d
}

func main() {
	net := ipmedia.NewMemNetwork()
	plane := ipmedia.NewMediaPlane()
	// The movie server streams real MPEG-TS: every media packet from
	// its per-tunnel agents is a 7×188-byte burst — PES-encapsulated
	// frames with PTS and a 27 MHz PCR, PAT/PMT refreshed periodically —
	// demux-validated (continuity, CRC32, PES headers) at each viewer.
	plane.SetFraming(func() ipmedia.MediaFraming { return ipmedia.NewTSFraming() })

	movies, err := ipmedia.NewMovieServer("movies", net, plane)
	if err != nil {
		log.Fatal(err)
	}
	defer movies.Stop()

	// The five media endpoints of Figure 8.
	tvVideo := device(net, plane, "tv-video", 5004, true)
	tvAudio := device(net, plane, "tv-audio", 5006, false)
	frAudio := device(net, plane, "headphones-fr", 5008, false)
	lapVideo := device(net, plane, "laptop-video", 5010, true)
	lapAudio := device(net, plane, "laptop-audio", 5012, false)
	for _, d := range []*ipmedia.Device{tvVideo, tvAudio, frAudio, lapVideo, lapAudio} {
		defer d.Stop()
	}

	// The television's collaborative control box: channels to its
	// devices, to the friend's headphones, to the daughter's collab
	// box (accepted as cc1/cc2), and ONE channel to the movie server
	// whose five tunnels control the five media channels.
	collabA := ipmedia.NewRunner(ipmedia.NewBox("collabA", ipmedia.ServerProfile{Name: "collabA"}), net)
	defer collabA.Stop()
	ccNames := []string{"cc1", "cc2"}
	if err := collabA.Listen("collabA", func(n int) string { return ccNames[n%len(ccNames)] }); err != nil {
		log.Fatal(err)
	}
	for _, dial := range [][2]string{{"a-v", "tv-video"}, {"a-a", "tv-audio"}, {"b", "headphones-fr"}, {"ms", "movies"}} {
		if err := collabA.Connect(dial[0], dial[1]); err != nil {
			log.Fatal(err)
		}
	}
	collabA.Do(func(ctx *ipmedia.Ctx) {
		ctx.SendMeta("ms", ipmedia.Meta{Kind: ipmedia.MetaApp, App: "watch", Attrs: ipmedia.NewAttrs("movie", "casablanca", "pos", "600")})
	})

	// The daughter's collaboration box, chained through collabA.
	collabC := ipmedia.NewRunner(ipmedia.NewBox("collabC", ipmedia.ServerProfile{Name: "collabC"}), net)
	defer collabC.Stop()
	for _, dial := range [][2]string{{"c-v", "laptop-video"}, {"c-a", "laptop-audio"}, {"up1", "collabA"}, {"up2", "collabA"}} {
		if err := collabC.Connect(dial[0], dial[1]); err != nil {
			log.Fatal(err)
		}
	}
	collabC.Do(func(ctx *ipmedia.Ctx) {
		ctx.SetGoal(ipmedia.NewFlowLink(ipmedia.TunnelSlot("c-v", 0), ipmedia.TunnelSlot("up1", 0)))
		ctx.SetGoal(ipmedia.NewFlowLink(ipmedia.TunnelSlot("c-a", 0), ipmedia.TunnelSlot("up2", 0)))
	})
	if !collabA.AwaitChannel("cc2", 5*time.Second) {
		log.Fatal("collabA did not accept the daughter's channels")
	}
	collabA.Do(func(ctx *ipmedia.Ctx) {
		ctx.SetGoal(ipmedia.NewFlowLink(ipmedia.TunnelSlot("a-v", 0), ipmedia.TunnelSlot("ms", 0)))
		ctx.SetGoal(ipmedia.NewFlowLink(ipmedia.TunnelSlot("a-a", 0), ipmedia.TunnelSlot("ms", 1)))
		ctx.SetGoal(ipmedia.NewFlowLink(ipmedia.TunnelSlot("b", 0), ipmedia.TunnelSlot("ms", 2)))
		ctx.SetGoal(ipmedia.NewFlowLink(ipmedia.TunnelSlot("cc1", 0), ipmedia.TunnelSlot("ms", 3)))
		ctx.SetGoal(ipmedia.NewFlowLink(ipmedia.TunnelSlot("cc2", 0), ipmedia.TunnelSlot("ms", 4)))
	})

	// Devices request their media channels.
	tvVideo.OpenOn("in0", ipmedia.Video)
	tvAudio.OpenOn("in0", ipmedia.Audio)
	frAudio.OpenOn("in0", "audio-fr")
	lapVideo.OpenOn("in0", ipmedia.Video)
	lapAudio.OpenOn("in0", ipmedia.Audio)

	fmt.Println("family presses play on the television remote")
	collabA.Do(func(ctx *ipmedia.Ctx) {
		ctx.SendMeta("ms", ipmedia.Meta{Kind: ipmedia.MetaApp, App: "play"})
	})
	waitFor("all five media streams", func() bool {
		for _, name := range []string{"tv-video", "tv-audio", "headphones-fr", "laptop-video", "laptop-audio"} {
			found := false
			for _, f := range plane.Flows() {
				if f.To == name {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	})
	fmt.Println("five streams from one session:", plane.Flows())
	if s, ok := movies.Session("in0"); ok {
		fmt.Printf("server session: movie=%s pos=%d playing=%v (shared by all five tunnels)\n", s.Movie, s.Pos, s.Playing)
	}

	// Stream two seconds' worth of 20 ms periods: each viewer receives
	// its channel as genuine transport-stream bursts.
	plane.Tick(100)
	fmt.Println("\nMPEG-TS integrity after 100 periods:")
	printTS := func(d *ipmedia.Device) {
		ts := d.Agent().Framing().(*ipmedia.TSFraming).DemuxStats()
		fmt.Printf("  %-14s %5d TS packets, %d PSI sections, %d PES starts, %d errors\n",
			d.Name(), ts.Packets, ts.PSISections, ts.PESStarts, ts.Errors())
		if ts.Errors() != 0 {
			log.Fatalf("%s received corrupted TS: %+v", d.Name(), ts)
		}
	}
	for _, d := range []*ipmedia.Device{tvVideo, tvAudio, frAudio, lapVideo, lapAudio} {
		printTS(d)
	}

	fmt.Println("\npause affects all five channels at once")
	collabA.Do(func(ctx *ipmedia.Ctx) {
		ctx.SendMeta("ms", ipmedia.Meta{Kind: ipmedia.MetaApp, App: "pause"})
	})
	waitFor("all streams paused", func() bool { return len(plane.Flows()) == 0 })
	collabA.Do(func(ctx *ipmedia.Ctx) {
		ctx.SendMeta("ms", ipmedia.Meta{Kind: ipmedia.MetaApp, App: "play"})
	})
	waitFor("streams resumed", func() bool { return len(plane.Flows()) == 5 })

	fmt.Println("\nthe daughter leaves the collaboration and fast-forwards to the end")
	collabC.Do(func(ctx *ipmedia.Ctx) {
		ctx.Teardown("up1")
		ctx.Teardown("up2")
	})
	if err := collabC.Connect("ms", "movies"); err != nil {
		log.Fatal(err)
	}
	collabC.Do(func(ctx *ipmedia.Ctx) {
		ctx.SendMeta("ms", ipmedia.Meta{Kind: ipmedia.MetaApp, App: "watch", Attrs: ipmedia.NewAttrs("movie", "casablanca", "pos", "5400")})
		ctx.SendMeta("ms", ipmedia.Meta{Kind: ipmedia.MetaApp, App: "play"})
		ctx.SetGoal(ipmedia.NewFlowLink(ipmedia.TunnelSlot("c-v", 0), ipmedia.TunnelSlot("ms", 0)))
		ctx.SetGoal(ipmedia.NewFlowLink(ipmedia.TunnelSlot("c-a", 0), ipmedia.TunnelSlot("ms", 1)))
	})
	waitFor("two sessions on the server", func() bool { return movies.SessionCount() == 2 })
	waitFor("laptop streams from its own session", func() bool {
		v, a := false, false
		for _, f := range plane.Flows() {
			if f.To == "laptop-video" {
				v = true
			}
			if f.To == "laptop-audio" {
				a = true
			}
		}
		return v && a && len(plane.Flows()) == 5
	})
	fmt.Println("flows:", plane.Flows())
	fmt.Println("sessions:", movies.SessionCount(), "— same movie, different time pointers")

	// Stream from both sessions; every viewer still decodes cleanly.
	plane.Tick(100)
	total := uint64(0)
	for _, d := range []*ipmedia.Device{tvVideo, tvAudio, frAudio, lapVideo, lapAudio} {
		ts := d.Agent().Framing().(*ipmedia.TSFraming).DemuxStats()
		if ts.Errors() != 0 {
			log.Fatalf("%s received corrupted TS: %+v", d.Name(), ts)
		}
		total += ts.Packets
	}
	fmt.Printf("both sessions stream clean MPEG-TS: %d packets demuxed, 0 errors\n", total)
	for _, e := range append(collabA.Errs(), collabC.Errs()...) {
		fmt.Println("box error:", e)
	}
}
