// Quickstart: two telephones, one audio channel, compositionally
// controlled. Device A calls device B; B rings and answers; the media
// plane shows packets flowing both ways; A mutes its microphone; A
// hangs up.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"ipmedia"
)

func main() {
	net := ipmedia.NewMemNetwork()
	plane := ipmedia.NewMediaPlane()

	a, err := ipmedia.NewDevice(ipmedia.DeviceConfig{Name: "alice", Net: net, Plane: plane, MediaPort: 5004})
	if err != nil {
		log.Fatal(err)
	}
	defer a.Stop()
	b, err := ipmedia.NewDevice(ipmedia.DeviceConfig{Name: "bob", Net: net, Plane: plane, MediaPort: 5006})
	if err != nil {
		log.Fatal(err)
	}
	defer b.Stop()

	fmt.Println("alice calls bob...")
	if err := a.Call("call", "bob", ipmedia.Audio); err != nil {
		log.Fatal(err)
	}
	waitFor("bob ringing", func() bool { return len(b.Ringing()) == 1 })
	fmt.Println("bob rings on", b.Ringing())

	b.Answer(b.Ringing()[0])
	waitFor("media both ways", func() bool {
		return plane.HasFlow("alice", "bob") && plane.HasFlow("bob", "alice")
	})
	plane.Tick(50) // 50 packet periods
	fmt.Println("flows:", plane.Flows())
	fmt.Printf("alice stats: %+v\n", a.Agent().Stats())
	fmt.Printf("bob   stats: %+v\n", b.Agent().Stats())

	fmt.Println("alice mutes her microphone...")
	a.SetMute(false, true)
	waitFor("alice->bob muted", func() bool { return !plane.HasFlow("alice", "bob") })
	fmt.Println("flows:", plane.Flows())

	fmt.Println("alice hangs up...")
	a.HangUp("call")
	waitFor("silence", func() bool { return len(plane.Flows()) == 0 })
	fmt.Println("done.")
}

func waitFor(what string, pred func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	log.Fatalf("timeout waiting for %s", what)
}
