// An audio conference (paper Figure 7): three devices flowlinked to a
// conference bridge that mixes their audio, followed by the paper's
// partial-muting scenarios — business muting, emergency-services
// muting, and whisper coaching — achieved through the bridge's mix
// matrix, configured by standardized meta-signals.
//
// Run with: go run ./examples/conference
package main

import (
	"fmt"
	"log"
	"time"

	"ipmedia"
)

func main() {
	net := ipmedia.NewMemNetwork()
	plane := ipmedia.NewMediaPlane()
	// Every agent carries real MPEG-TS: each packet is a 7×188-byte
	// burst (PES + PTS/PCR, periodic PAT/PMT), demux-validated at every
	// receiver — including the bridge's legs, which mix the streams.
	plane.SetFraming(func() ipmedia.MediaFraming { return ipmedia.NewTSFraming() })

	bridge, err := ipmedia.NewBridge("bridge", net, plane)
	if err != nil {
		log.Fatal(err)
	}
	defer bridge.Stop()

	names := []string{"calltaker", "caller", "responder"}
	var devs []*ipmedia.Device
	for i, n := range names {
		d, err := ipmedia.NewDevice(ipmedia.DeviceConfig{
			Name: n, Net: net, Plane: plane, MediaPort: 5004 + 2*i,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer d.Stop()
		devs = append(devs, d)
	}

	fmt.Println("all three parties join the conference")
	for _, d := range devs {
		if err := d.Call("conf", "bridge", ipmedia.Audio); err != nil {
			log.Fatal(err)
		}
	}
	waitFor("full-mesh media through the bridge", func() bool {
		for i, d := range devs {
			leg := fmt.Sprintf("bridge/in%d", i)
			if !plane.HasFlow(d.Name(), leg) || !plane.HasFlow(leg, d.Name()) {
				return false
			}
		}
		return true
	})
	fmt.Println("flows:", plane.Flows())
	for i := range devs {
		leg := fmt.Sprintf("in%d", i)
		fmt.Printf("  %s hears %v\n", names[i], bridge.Hears(leg))
	}

	// Emergency-services muting (paper Section IV-B): the caller (leg
	// in1) must not hear what the emergency personnel say, but their
	// audio into the conference is retained.
	fmt.Println("\nemergency muting: the caller's output mix is silenced")
	devs[0].SendApp("conf", "mix", ipmedia.NewAttrs("out", "in1", "in", ""))
	waitFor("caller's mix silenced", func() bool {
		return !plane.HasFlow("bridge/in1", "caller") && plane.HasFlow("caller", "bridge/in1")
	})
	fmt.Printf("  caller hears %v; caller still audible to others\n", bridge.Hears("in1"))

	// Whisper coaching: the caller hears only the calltaker again; a
	// supervisor scenario would add a fourth leg.
	fmt.Println("\nwhisper mix: caller hears only the calltaker")
	devs[0].SendApp("conf", "mix", ipmedia.NewAttrs("out", "in1", "in", "in0"))
	waitFor("whisper mix applied", func() bool {
		h := bridge.Hears("in1")
		return len(h) == 1 && h[0] == "in0"
	})
	fmt.Printf("  caller hears %v\n", bridge.Hears("in1"))

	plane.Tick(130)
	fmt.Println("\npacket stats after 130 periods of MPEG-TS audio:")
	for _, d := range devs {
		s := d.Agent().Stats()
		ts := d.Agent().Framing().(*ipmedia.TSFraming).DemuxStats()
		fmt.Printf("  %-10s %+v\n", d.Name(), s)
		fmt.Printf("             ts: %d packets, %d PSI sections, %d errors\n",
			ts.Packets, ts.PSISections, ts.Errors())
		if ts.Errors() != 0 {
			log.Fatalf("%s received corrupted TS: %+v", d.Name(), ts)
		}
	}
}

func waitFor(what string, pred func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	log.Fatalf("timeout waiting for %s", what)
}
