// The prepaid-card story of the paper's Figures 2 and 3: telephones A,
// B, C, an IP PBX serving A, a prepaid-card server PC serving C, and
// an audio-signaling resource V.
//
// By default the servers are programmed with the compositional
// primitives (Figure 3) and every snapshot has exactly the right media
// flows. With -naive, the servers forward media signals blindly
// (Figure 2) and the run demonstrates the three pathologies: C's audio
// into V is lost, A is switched without permission, and B transmits to
// an endpoint that throws its packets away.
//
// With -store DIR, C's card balance lives in the durable subscriber
// store: the funds cycle debits it through the write-ahead log, and
// re-running with the same directory resumes the recovered balance.
//
// Run with: go run ./examples/prepaidcard [-naive] [-store DIR]
package main

import (
	"flag"
	"fmt"
	"log"

	"ipmedia"
	"ipmedia/internal/store"
)

func main() {
	naive := flag.Bool("naive", false, "run the uncoordinated Figure 2 baseline")
	storeDir := flag.String("store", "", "durable store directory for the card balance (empty: in-memory only)")
	flag.Parse()

	p, err := ipmedia.NewPrepaidScenario()
	if err != nil {
		log.Fatal(err)
	}
	defer p.Stop()

	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{})
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		billing := p.BindStore(st, 25)
		if _, ok := st.Balance("C"); !ok {
			if err := st.SetBalance("C", 100); err != nil {
				log.Fatal(err)
			}
			fmt.Println("store: new card for C, balance 100")
		} else {
			fmt.Printf("store: recovered card for C, balance %d (%d CDRs on file)\n",
				billing.Balance(), st.CDRCount())
		}
		defer func() { fmt.Printf("store: final balance for C: %d\n", billing.Balance()) }()
	}

	fmt.Println("establishing: A talks to B; C calls A via the prepaid server; A switches to C")
	if err := p.Establish(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("snapshot 1 flows:", p.Plane.Flows())

	var transcript []string
	if *naive {
		fmt.Println("\n--- uncoordinated regime (paper Figure 2) ---")
		p.GoNaive()
		transcript, err = p.RunNaive()
	} else {
		fmt.Println("\n--- compositional regime (paper Figure 3) ---")
		transcript, err = p.RunCorrect()
	}
	for _, line := range transcript {
		fmt.Println(" ", line)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal flows:", p.Plane.Flows())
	p.Plane.Tick(20)
	fmt.Printf("A's packet stats: %+v\n", p.A.Agent().Stats())
	if *naive {
		fmt.Println("note the Unexpected count: B is transmitting to a deaf endpoint.")
	}
	for _, e := range p.Errs() {
		fmt.Println("server error:", e)
	}
}
