// Voicemail: a DFC-style feature box in the subscriber's signaling
// path. The paper motivates application servers with exactly this
// service — "a persistent network presence, such as voicemail, for
// handheld devices" (Section I). If the subscriber does not answer in
// time, the feature flowlinks the caller to a recorder resource.
//
// Run with: go run ./examples/voicemail [-answer]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ipmedia"
)

func main() {
	answer := flag.Bool("answer", false, "have the subscriber answer in time")
	flag.Parse()

	net := ipmedia.NewMemNetwork()
	plane := ipmedia.NewMediaPlane()

	caller, err := ipmedia.NewDevice(ipmedia.DeviceConfig{Name: "caller", Net: net, Plane: plane, MediaPort: 5004})
	if err != nil {
		log.Fatal(err)
	}
	defer caller.Stop()
	callee, err := ipmedia.NewDevice(ipmedia.DeviceConfig{Name: "callee", Net: net, Plane: plane, MediaPort: 5006})
	if err != nil {
		log.Fatal(err)
	}
	defer callee.Stop()
	recorder, err := ipmedia.NewDevice(ipmedia.DeviceConfig{Name: "vmrec", Net: net, Plane: plane, MediaPort: 5008, AutoAccept: true})
	if err != nil {
		log.Fatal(err)
	}
	recorder.SetMute(false, true)
	defer recorder.Stop()

	vm, done, err := ipmedia.NewVoicemail(net, ipmedia.VoicemailConfig{
		Addr: "vmbox", SubscriberAddr: "callee", RecorderAddr: "vmrec",
		NoAnswer: 300 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer vm.Stop()

	fmt.Println("caller dials the subscriber (through the voicemail box)")
	if err := caller.Call("c", "vmbox", ipmedia.Audio); err != nil {
		log.Fatal(err)
	}
	waitFor("callee ringing", func() bool { return len(callee.Ringing()) == 1 })
	fmt.Println("callee's phone rings...")

	if *answer {
		callee.Answer(callee.Ringing()[0])
		waitFor("direct media", func() bool {
			return plane.HasFlow("caller", "callee") && plane.HasFlow("callee", "caller")
		})
		fmt.Println("answered; flows:", plane.Flows())
	} else {
		fmt.Println("...nobody answers")
		waitFor("diverted to recorder", func() bool { return plane.HasFlow("caller", "vmrec") })
		fmt.Println("diverted; flows:", plane.Flows())
		plane.Tick(25)
		fmt.Printf("recorded packets: %+v\n", recorder.Agent().Stats())
	}
	caller.HangUp("c")
	select {
	case how := <-done:
		fmt.Println("feature ended:", how)
	case <-time.After(5 * time.Second):
		log.Fatal("feature did not terminate")
	}
}

func waitFor(what string, pred func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	log.Fatalf("timeout waiting for %s", what)
}
