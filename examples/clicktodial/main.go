// Click-to-Dial (paper Figure 6): user 1 clicks a web link; the box
// rings user 1's telephone, then the clicked telephone, playing
// ringback (or busy tone) to user 1 from a tone resource, and finally
// flowlinks the two parties.
//
// Run with: go run ./examples/clicktodial [-busy]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ipmedia"
)

func main() {
	busy := flag.Bool("busy", false, "make the clicked telephone unavailable")
	flag.Parse()

	net := ipmedia.NewMemNetwork()
	plane := ipmedia.NewMediaPlane()

	p1, err := ipmedia.NewDevice(ipmedia.DeviceConfig{Name: "user1", Net: net, Plane: plane, MediaPort: 5004})
	if err != nil {
		log.Fatal(err)
	}
	defer p1.Stop()
	p2, err := ipmedia.NewDevice(ipmedia.DeviceConfig{Name: "user2", Net: net, Plane: plane, MediaPort: 5006, Unavailable: *busy})
	if err != nil {
		log.Fatal(err)
	}
	defer p2.Stop()
	tone, err := ipmedia.NewToneGenerator("tone", net, plane)
	if err != nil {
		log.Fatal(err)
	}
	defer tone.Stop()

	fmt.Println("user1 clicks the web link; the Click-to-Dial box starts")
	ctd, done, err := ipmedia.NewClickToDial(net, ipmedia.ClickToDialConfig{
		User1Addr: "user1", User2Addr: "user2", ToneAddr: "tone",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ctd.Stop()

	waitFor("user1 ringing", func() bool { return len(p1.Ringing()) == 1 })
	fmt.Println("user1's phone rings; user1 answers")
	p1.Answer(p1.Ringing()[0])

	waitFor("tone to user1", func() bool { return plane.HasFlow("tone", "user1") })
	if *busy {
		fmt.Println("user2 is unavailable: user1 hears busy tone; user1 gives up")
		p1.HangUp("in0")
	} else {
		fmt.Println("user1 hears ringback while user2's phone rings")
		waitFor("user2 ringing", func() bool { return len(p2.Ringing()) == 1 })
		fmt.Println("user2 answers")
		p2.Answer(p2.Ringing()[0])
		waitFor("direct media", func() bool {
			return plane.HasFlow("user1", "user2") && plane.HasFlow("user2", "user1")
		})
		fmt.Println("connected; flows:", plane.Flows())
		fmt.Println("user2 hangs up")
		p2.HangUp("in0")
	}
	select {
	case <-done:
		fmt.Println("Click-to-Dial program terminated cleanly")
	case <-time.After(5 * time.Second):
		log.Fatal("program did not terminate")
	}
	for _, e := range ctd.Errs() {
		fmt.Println("box error:", e)
	}
}

func waitFor(what string, pred func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	log.Fatalf("timeout waiting for %s", what)
}
