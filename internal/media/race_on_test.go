//go:build race

package media

// raceEnabled reports whether the race detector is active; zero-alloc
// assertions are skipped under it because it perturbs allocation
// accounting.
const raceEnabled = true
