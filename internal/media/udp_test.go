package media

import (
	"net"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
)

// freeUDPPort grabs a currently-free loopback UDP port for a test
// agent to re-bind.
func freeUDPPort(t *testing.T) int {
	t.Helper()
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP("127.0.0.1")})
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	port := c.LocalAddr().(*net.UDPAddr).Port
	c.Close()
	return port
}

// await polls pred for up to five seconds (UDP delivery is
// asynchronous).
func await(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestUDPPacketRoundTrip(t *testing.T) {
	f := func(addr string, port uint16, codec string, seq uint64) bool {
		in := Packet{From: AddrPort{Addr: addr, Port: int(port)}, Codec: sig.Codec(codec), Seq: seq}
		out, err := unmarshalPacket(marshalPacket(in))
		if err != nil {
			return false
		}
		out.To = AddrPort{}
		return out.From == in.From && out.Codec == in.Codec && out.Seq == in.Seq && out.Payload == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUDPPacketRejectsCorrupt(t *testing.T) {
	for _, b := range [][]byte{nil, {0}, {0, 9, 'x'}, {0, 1, 'a', 0, 0, 0, 9}} {
		if _, err := unmarshalPacket(b); err == nil {
			t.Errorf("corrupt datagram %v decoded", b)
		}
	}
}

func TestUDPPlaneDelivery(t *testing.T) {
	p := NewUDPPlane()
	defer p.Close()
	a := p.Agent("A", AddrPort{Addr: "127.0.0.1", Port: 39711})
	b := p.Agent("B", AddrPort{Addr: "127.0.0.1", Port: 39713})
	if errs := p.Errs(); len(errs) > 0 {
		t.Skipf("cannot bind UDP sockets: %v", errs[0])
	}
	a.SetSending(b.Origin(), sig.G711)
	b.SetExpecting(a.Origin(), sig.G711, true)
	if !p.HasFlow("A", "B") {
		t.Fatalf("flows: %v", p.Flows())
	}
	p.Tick(10)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if b.Stats().Accepted == 10 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if s := b.Stats(); s.Accepted != 10 {
		t.Fatalf("B accepted %d of 10 datagrams: %+v", s.Accepted, s)
	}
	if s := a.Stats(); s.Sent != 10 {
		t.Fatalf("A sent %d: %+v", s.Sent, s)
	}
	if errs := p.Errs(); len(errs) > 0 {
		t.Fatalf("plane errors: %v", errs)
	}
}

func TestUDPPlaneStrangerDiscarded(t *testing.T) {
	p := NewUDPPlane()
	defer p.Close()
	a := p.Agent("A", AddrPort{Addr: "127.0.0.1", Port: 39721})
	b := p.Agent("B", AddrPort{Addr: "127.0.0.1", Port: 39723})
	if errs := p.Errs(); len(errs) > 0 {
		t.Skipf("cannot bind UDP sockets: %v", errs[0])
	}
	a.SetSending(b.Origin(), sig.G711)
	// B is not open to anyone.
	p.Tick(5)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if b.Stats().Unexpected == 5 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("B stats: %+v, want 5 unexpected", b.Stats())
}

// TestUDPClippingWindow pins the paper's Section VI-A clipping
// semantics on the real UDP carrier, not just the in-memory Plane: a
// packet arriving after the receiver's descriptor is out (listening)
// but before the matching selector counts as Clipped, and packets
// after the selector are Accepted.
func TestUDPClippingWindow(t *testing.T) {
	p := NewUDPPlane()
	defer p.Close()
	a := p.Agent("A", AddrPort{Addr: "127.0.0.1", Port: freeUDPPort(t)})
	b := p.Agent("B", AddrPort{Addr: "127.0.0.1", Port: freeUDPPort(t)})
	if errs := p.Errs(); len(errs) > 0 {
		t.Skipf("cannot bind UDP sockets: %v", errs[0])
	}
	a.SetSending(b.Origin(), sig.G711)
	// B is open (descriptor out, listening) but has not received the
	// selector yet.
	b.SetExpecting(AddrPort{}, "", true)
	p.Tick(3)
	await(t, "3 clipped", func() bool { return b.Stats().Clipped == 3 })
	if s := b.Stats(); s.Accepted != 0 {
		t.Fatalf("accepted during the clipping window: %+v", s)
	}
	// Selector arrives; subsequent packets are accepted.
	b.SetExpecting(a.Origin(), sig.G711, true)
	p.Tick(5)
	await(t, "5 accepted after selector", func() bool { return b.Stats().Accepted == 5 })
	if s := b.Stats(); s.Clipped != 3 {
		t.Fatalf("clipped count moved after the selector: %+v", s)
	}
	if errs := p.Errs(); len(errs) > 0 {
		t.Fatalf("plane errors: %v", errs)
	}
}

// runBatchTraffic drives one A->B stream of n packets with the batched
// syscall path forced on or off and returns both agents' final stats.
func runBatchTraffic(t *testing.T, batch bool, n uint64) (Stats, Stats) {
	t.Helper()
	p := NewUDPPlane()
	defer p.Close()
	p.SetBatchIO(batch)
	a := p.Agent("A", AddrPort{Addr: "127.0.0.1", Port: freeUDPPort(t)})
	b := p.Agent("B", AddrPort{Addr: "127.0.0.1", Port: freeUDPPort(t)})
	if errs := p.Errs(); len(errs) > 0 {
		t.Skipf("cannot bind UDP sockets: %v", errs[0])
	}
	a.SetSending(b.Origin(), sig.G711)
	b.SetExpecting(a.Origin(), sig.G711, true)
	p.Tick(int(n))
	await(t, "all packets accepted", func() bool { return b.Stats().Accepted == n })
	if errs := p.Errs(); len(errs) > 0 {
		t.Fatalf("plane errors (batch=%v): %v", batch, errs)
	}
	return a.Stats(), b.Stats()
}

// TestBatchPathAgreement is the paired test for the Linux fast path:
// the sendmmsg/recvmmsg pipeline and the portable per-datagram loop
// must be observationally identical — same sent, accepted, clipped,
// and unexpected counts for the same traffic.
func TestBatchPathAgreement(t *testing.T) {
	if !batchIOSupported {
		t.Skip("no batched syscall path on this platform")
	}
	const n = 200
	aOn, bOn := runBatchTraffic(t, true, n)
	aOff, bOff := runBatchTraffic(t, false, n)
	if aOn != aOff {
		t.Errorf("sender stats differ: batch %+v, portable %+v", aOn, aOff)
	}
	if bOn != bOff {
		t.Errorf("receiver stats differ: batch %+v, portable %+v", bOn, bOff)
	}
}

// TestUDPPacerStreams: a pacer keeps media flowing with no external
// Tick driving, and stops cleanly.
func TestUDPPacerStreams(t *testing.T) {
	p := NewUDPPlane()
	defer p.Close()
	a := p.Agent("A", AddrPort{Addr: "127.0.0.1", Port: freeUDPPort(t)})
	b := p.Agent("B", AddrPort{Addr: "127.0.0.1", Port: freeUDPPort(t)})
	if errs := p.Errs(); len(errs) > 0 {
		t.Skipf("cannot bind UDP sockets: %v", errs[0])
	}
	a.SetSending(b.Origin(), sig.G711)
	b.SetExpecting(a.Origin(), sig.G711, true)
	pc := p.StartPacer(a, time.Millisecond, 4)
	await(t, "paced media accepted", func() bool { return b.Stats().Accepted >= 40 })
	pc.Stop()
	pc.Stop() // idempotent
	sent := a.Stats().Sent
	time.Sleep(20 * time.Millisecond)
	if now := a.Stats().Sent; now != sent {
		t.Fatalf("pacer still transmitting after Stop: %d -> %d", sent, now)
	}
	if errs := p.Errs(); len(errs) > 0 {
		t.Fatalf("plane errors: %v", errs)
	}
}

// TestUDPRetarget: the persistent send socket follows a SetSending
// retarget (re-dial on change, not per packet).
func TestUDPRetarget(t *testing.T) {
	p := NewUDPPlane()
	defer p.Close()
	a := p.Agent("A", AddrPort{Addr: "127.0.0.1", Port: freeUDPPort(t)})
	b := p.Agent("B", AddrPort{Addr: "127.0.0.1", Port: freeUDPPort(t)})
	c := p.Agent("C", AddrPort{Addr: "127.0.0.1", Port: freeUDPPort(t)})
	if errs := p.Errs(); len(errs) > 0 {
		t.Skipf("cannot bind UDP sockets: %v", errs[0])
	}
	a.SetSending(b.Origin(), sig.G711)
	b.SetExpecting(a.Origin(), sig.G711, true)
	p.Tick(5)
	await(t, "B accepted 5", func() bool { return b.Stats().Accepted == 5 })
	a.SetSending(c.Origin(), sig.G711)
	c.SetExpecting(a.Origin(), sig.G711, true)
	p.Tick(7)
	await(t, "C accepted 7", func() bool { return c.Stats().Accepted == 7 })
	if s := b.Stats(); s.Accepted != 5 {
		t.Fatalf("B kept receiving after retarget: %+v", s)
	}
	if errs := p.Errs(); len(errs) > 0 {
		t.Fatalf("plane errors: %v", errs)
	}
}

// TestUDPDecodeErrorsCounted: undecodable datagrams are not dropped
// silently — they bump media.decode_errors and the first one is
// recorded in the plane's error list.
func TestUDPDecodeErrorsCounted(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)
	defer telemetry.SetDefault(nil)
	p := NewUDPPlane()
	defer p.Close()
	b := p.Agent("B", AddrPort{Addr: "127.0.0.1", Port: freeUDPPort(t)})
	if errs := p.Errs(); len(errs) > 0 {
		t.Skipf("cannot bind UDP sockets: %v", errs[0])
	}
	conn, err := net.DialUDP("udp", nil, &net.UDPAddr{IP: net.ParseIP("127.0.0.1"), Port: b.Origin().Port})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 3; i++ {
		if _, err := conn.Write([]byte{0xFF, 0xFF, 0x01}); err != nil {
			t.Fatal(err)
		}
	}
	await(t, "decode errors counted", func() bool {
		return reg.Counter(MetricDecodeErrors).Value() == 3
	})
	errs := p.Errs()
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "undecodable") {
		t.Fatalf("want exactly the first decode error recorded, got %v", errs)
	}
	if s := b.Stats(); s.Accepted+s.Clipped+s.Unexpected != 0 {
		t.Fatalf("undecodable datagrams must not be classified: %+v", s)
	}
}
