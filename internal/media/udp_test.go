package media

import (
	"testing"
	"testing/quick"
	"time"

	"ipmedia/internal/sig"
)

func TestUDPPacketRoundTrip(t *testing.T) {
	f := func(addr string, port uint16, codec string, seq uint64) bool {
		in := Packet{From: AddrPort{Addr: addr, Port: int(port)}, Codec: sig.Codec(codec), Seq: seq}
		out, err := unmarshalPacket(marshalPacket(in))
		if err != nil {
			return false
		}
		out.To = AddrPort{}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUDPPacketRejectsCorrupt(t *testing.T) {
	for _, b := range [][]byte{nil, {0}, {0, 9, 'x'}, {0, 1, 'a', 0, 0, 0, 9}} {
		if _, err := unmarshalPacket(b); err == nil {
			t.Errorf("corrupt datagram %v decoded", b)
		}
	}
}

func TestUDPPlaneDelivery(t *testing.T) {
	p := NewUDPPlane()
	defer p.Close()
	a := p.Agent("A", AddrPort{Addr: "127.0.0.1", Port: 39711})
	b := p.Agent("B", AddrPort{Addr: "127.0.0.1", Port: 39713})
	if errs := p.Errs(); len(errs) > 0 {
		t.Skipf("cannot bind UDP sockets: %v", errs[0])
	}
	a.SetSending(b.Origin(), sig.G711)
	b.SetExpecting(a.Origin(), sig.G711, true)
	if !p.HasFlow("A", "B") {
		t.Fatalf("flows: %v", p.Flows())
	}
	p.Tick(10)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if b.Stats().Accepted == 10 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if s := b.Stats(); s.Accepted != 10 {
		t.Fatalf("B accepted %d of 10 datagrams: %+v", s.Accepted, s)
	}
	if s := a.Stats(); s.Sent != 10 {
		t.Fatalf("A sent %d: %+v", s.Sent, s)
	}
	if errs := p.Errs(); len(errs) > 0 {
		t.Fatalf("plane errors: %v", errs)
	}
}

func TestUDPPlaneStrangerDiscarded(t *testing.T) {
	p := NewUDPPlane()
	defer p.Close()
	a := p.Agent("A", AddrPort{Addr: "127.0.0.1", Port: 39721})
	b := p.Agent("B", AddrPort{Addr: "127.0.0.1", Port: 39723})
	if errs := p.Errs(); len(errs) > 0 {
		t.Skipf("cannot bind UDP sockets: %v", errs[0])
	}
	a.SetSending(b.Origin(), sig.G711)
	// B is not open to anyone.
	p.Tick(5)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if b.Stats().Unexpected == 5 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("B stats: %+v, want 5 unexpected", b.Stats())
}
