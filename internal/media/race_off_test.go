//go:build !race

package media

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
