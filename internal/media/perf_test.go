package media

import (
	"testing"

	"ipmedia/internal/sig"
)

// BenchmarkPacketMarshal measures the append-style wire encoder into a
// reused buffer — the per-packet encode cost of the transmit pipeline.
// The media fast-path claim is 0 allocs/op.
func BenchmarkPacketMarshal(b *testing.B) {
	pkt := Packet{From: AddrPort{Addr: "127.0.0.1", Port: 40000}, Codec: sig.G711, Seq: 0}
	buf := make([]byte, 0, maxDatagram)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.Seq++
		buf = AppendPacket(buf[:0], pkt)
	}
	if len(buf) == 0 {
		b.Fatal("empty encoding")
	}
}

// BenchmarkAgentDeliver measures the receive fast path: wire bytes in,
// lock-free classification against the expectation snapshot, atomic
// counter out. 0 allocs/op is the gated claim.
func BenchmarkAgentDeliver(b *testing.B) {
	from := AddrPort{Addr: "127.0.0.1", Port: 40000}
	recv := NewAgent("B", AddrPort{Addr: "127.0.0.1", Port: 40002})
	recv.SetExpecting(from, sig.G711, true)
	wire := marshalPacket(Packet{From: from, Codec: sig.G711, Seq: 7})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := recv.deliverWire(wire); err != nil {
			b.Fatal(err)
		}
	}
	if recv.Stats().Accepted == 0 {
		b.Fatal("nothing accepted")
	}
}

// BenchmarkAgentEmitBatch measures transmit staging: one send-state
// snapshot, batchSize packets encoded into the sender arena. Reported
// per packet.
func BenchmarkAgentEmitBatch(b *testing.B) {
	a := NewAgent("A", AddrPort{Addr: "127.0.0.1", Port: 40000})
	a.SetSending(AddrPort{Addr: "127.0.0.1", Port: 40002}, sig.G711)
	arena := make([]byte, batchSize*maxDatagram)
	msgs := make([][]byte, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n, _ := a.emitBatchInto(arena, msgs, batchSize); n != batchSize {
			b.Fatal("short batch")
		}
	}
}

// BenchmarkTSFramedStageDeliver measures the framed fast path end to
// end: one TS burst muxed into the sender arena behind the wire
// header, then demuxed and integrity-checked at the receiver. Per op:
// one 1343-byte datagram staged + delivered. 0 allocs/op is the gated
// claim — the continuity counters and templates live in the per-agent
// framing state, not per-packet allocations.
func BenchmarkTSFramedStageDeliver(b *testing.B) {
	from := AddrPort{Addr: "127.0.0.1", Port: 40000}
	to := AddrPort{Addr: "127.0.0.1", Port: 40002}
	send := NewAgent("A", from)
	send.SetFraming(NewTSFraming())
	send.SetSending(to, sig.G711)
	recv := NewAgent("B", to)
	recv.SetFraming(NewTSFraming())
	recv.SetExpecting(from, sig.G711, true)
	arena := make([]byte, batchSize*maxDatagram)
	msgs := make([][]byte, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n, _ := send.emitBatchInto(arena, msgs, 1); n != 1 {
			b.Fatal("stage failed")
		}
		if err := recv.deliverWire(msgs[0]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if s := recv.Stats(); s.Accepted == 0 || s.FramingErrors != 0 {
		b.Fatalf("framed delivery broken: %+v", s)
	}
}

// TestMediaZeroAlloc is the CI gate (make alloc-gate) for the media
// fast-path claim: steady-state packet marshal, transmit staging, and
// agent delivery allocate nothing.
func TestMediaZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	if testing.Short() {
		t.Skip("benchmark-backed test")
	}
	for _, bm := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"PacketMarshal", BenchmarkPacketMarshal},
		{"AgentDeliver", BenchmarkAgentDeliver},
		{"AgentEmitBatch", BenchmarkAgentEmitBatch},
	} {
		if a := testing.Benchmark(bm.fn).AllocsPerOp(); a != 0 {
			t.Errorf("%s allocates %d allocs/op, want 0", bm.name, a)
		}
	}
}

// TestTSFramingZeroAlloc extends the alloc gate to the framed path:
// staging a TS-framed datagram and demux-validating it at the receiver
// adds zero allocations per packet over the opaque path.
func TestTSFramingZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	if testing.Short() {
		t.Skip("benchmark-backed test")
	}
	if a := testing.Benchmark(BenchmarkTSFramedStageDeliver).AllocsPerOp(); a != 0 {
		t.Errorf("TS framed stage+deliver allocates %d allocs/op, want 0", a)
	}
}
