package media

import (
	"testing"

	"ipmedia/internal/sig"
)

// BenchmarkPacketMarshal measures the append-style wire encoder into a
// reused buffer — the per-packet encode cost of the transmit pipeline.
// The media fast-path claim is 0 allocs/op.
func BenchmarkPacketMarshal(b *testing.B) {
	pkt := Packet{From: AddrPort{Addr: "127.0.0.1", Port: 40000}, Codec: sig.G711, Seq: 0}
	buf := make([]byte, 0, maxDatagram)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.Seq++
		buf = AppendPacket(buf[:0], pkt)
	}
	if len(buf) == 0 {
		b.Fatal("empty encoding")
	}
}

// BenchmarkAgentDeliver measures the receive fast path: wire bytes in,
// lock-free classification against the expectation snapshot, atomic
// counter out. 0 allocs/op is the gated claim.
func BenchmarkAgentDeliver(b *testing.B) {
	from := AddrPort{Addr: "127.0.0.1", Port: 40000}
	recv := NewAgent("B", AddrPort{Addr: "127.0.0.1", Port: 40002})
	recv.SetExpecting(from, sig.G711, true)
	wire := marshalPacket(Packet{From: from, Codec: sig.G711, Seq: 7})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := recv.deliverWire(wire); err != nil {
			b.Fatal(err)
		}
	}
	if recv.Stats().Accepted == 0 {
		b.Fatal("nothing accepted")
	}
}

// BenchmarkAgentEmitBatch measures transmit staging: one send-state
// snapshot, batchSize packets encoded into the sender arena. Reported
// per packet.
func BenchmarkAgentEmitBatch(b *testing.B) {
	a := NewAgent("A", AddrPort{Addr: "127.0.0.1", Port: 40000})
	a.SetSending(AddrPort{Addr: "127.0.0.1", Port: 40002}, sig.G711)
	arena := make([]byte, batchSize*maxDatagram)
	msgs := make([][]byte, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n, _ := a.emitBatchInto(arena, msgs, batchSize); n != batchSize {
			b.Fatal("short batch")
		}
	}
}

// TestMediaZeroAlloc is the CI gate (make alloc-gate) for the media
// fast-path claim: steady-state packet marshal, transmit staging, and
// agent delivery allocate nothing.
func TestMediaZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	if testing.Short() {
		t.Skip("benchmark-backed test")
	}
	for _, bm := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"PacketMarshal", BenchmarkPacketMarshal},
		{"AgentDeliver", BenchmarkAgentDeliver},
		{"AgentEmitBatch", BenchmarkAgentEmitBatch},
	} {
		if a := testing.Benchmark(bm.fn).AllocsPerOp(); a != 0 {
			t.Errorf("%s allocates %d allocs/op, want 0", bm.name, a)
		}
	}
}
