//go:build !linux || !(amd64 || arm64)

// Portable stand-in for the Linux batched-syscall fast path: this
// platform has no usable sendmmsg/recvmmsg, so newBatchIO reports the
// capability absent and the UDP plane's per-datagram loops (connected
// net.UDPConn writes, single ReadFromUDP reads) carry all traffic.
package media

import "net"

// batchIOSupported reports compile-time availability of the
// sendmmsg/recvmmsg fast path.
const batchIOSupported = false

// batchIO is never instantiated on this platform; the type and its
// methods exist so the UDP plane compiles unchanged.
type batchIO struct{}

func newBatchIO(*net.UDPConn, int, int) *batchIO { return nil }

func (*batchIO) recv(func([]byte)) (int, error) { return 0, nil }

func (*batchIO) send([][]byte) error { return nil }
