package media

import (
	"testing"
	"testing/quick"

	"ipmedia/internal/sig"
)

func ap(addr string, port int) AddrPort { return AddrPort{Addr: addr, Port: port} }

func TestFlowAndDelivery(t *testing.T) {
	p := NewPlane()
	a := p.Agent("A", ap("10.0.0.1", 5004))
	b := p.Agent("B", ap("10.0.0.2", 5004))

	// Nothing flows initially.
	if len(p.Flows()) != 0 {
		t.Fatal("no flows expected initially")
	}
	p.Tick(10)
	if s := b.Stats(); s.Accepted+s.Clipped+s.Unexpected != 0 {
		t.Fatal("no packets expected initially")
	}

	// A transmits to B; B expects A.
	a.SetSending(b.Origin(), sig.G711)
	b.SetExpecting(a.Origin(), sig.G711, true)
	p.Tick(10)
	if s := a.Stats(); s.Sent != 10 {
		t.Fatalf("A sent %d, want 10", s.Sent)
	}
	if s := b.Stats(); s.Accepted != 10 {
		t.Fatalf("B accepted %d, want 10", s.Accepted)
	}
	if !p.HasFlow("A", "B") || p.HasFlow("B", "A") {
		t.Fatalf("flow graph wrong: %v", p.Flows())
	}
}

func TestClippingWindow(t *testing.T) {
	p := NewPlane()
	a := p.Agent("A", ap("h1", 1))
	b := p.Agent("B", ap("h2", 2))
	a.SetSending(b.Origin(), sig.G711)
	// B is open (listening) but has not received the selector yet.
	b.SetExpecting(AddrPort{}, "", true)
	p.Tick(3)
	if s := b.Stats(); s.Clipped != 3 || s.Accepted != 0 {
		t.Fatalf("want 3 clipped, got %+v", s)
	}
	// Selector arrives; subsequent packets are accepted.
	b.SetExpecting(a.Origin(), sig.G711, true)
	p.Tick(5)
	if s := b.Stats(); s.Accepted != 5 {
		t.Fatalf("want 5 accepted after selector, got %+v", s)
	}
}

func TestUnexpectedPackets(t *testing.T) {
	// The Figure 2 pathology: B left transmitting to an endpoint that
	// throws the packets away because it has been told to communicate
	// with someone else.
	p := NewPlane()
	a := p.Agent("A", ap("h1", 1))
	b := p.Agent("B", ap("h2", 2))
	c := p.Agent("C", ap("h3", 3))
	b.SetSending(a.Origin(), sig.G711)
	// A is communicating with C, not listening for B.
	a.SetExpecting(c.Origin(), sig.G711, false)
	p.Tick(4)
	if s := a.Stats(); s.Unexpected != 4 {
		t.Fatalf("want 4 unexpected at A, got %+v", s)
	}
	_ = c
}

func TestWrongCodecClipped(t *testing.T) {
	p := NewPlane()
	a := p.Agent("A", ap("h1", 1))
	b := p.Agent("B", ap("h2", 2))
	a.SetSending(b.Origin(), sig.G726)
	b.SetExpecting(a.Origin(), sig.G711, true) // expects a different codec
	p.Tick(2)
	if s := b.Stats(); s.Accepted != 0 || s.Clipped != 2 {
		t.Fatalf("codec mismatch must not be accepted: %+v", s)
	}
}

func TestLostPackets(t *testing.T) {
	p := NewPlane()
	a := p.Agent("A", ap("h1", 1))
	a.SetSending(ap("nowhere", 9), sig.G711)
	p.Tick(7)
	if p.Lost() != 7 {
		t.Fatalf("lost = %d, want 7", p.Lost())
	}
	if !p.HasFlow("A", "?") {
		t.Fatalf("flow to unknown destination must appear as ?: %v", p.Flows())
	}
}

func TestFlowsSortedAndStable(t *testing.T) {
	p := NewPlane()
	a := p.Agent("A", ap("h1", 1))
	b := p.Agent("B", ap("h2", 2))
	c := p.Agent("C", ap("h3", 3))
	a.SetSending(b.Origin(), sig.G711)
	b.SetSending(c.Origin(), sig.G711)
	c.SetSending(a.Origin(), sig.G711)
	f1 := p.Flows()
	f2 := p.Flows()
	if len(f1) != 3 {
		t.Fatalf("want 3 flows, got %v", f1)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("flow order unstable")
		}
	}
	if f1[0].From != "A" || f1[1].From != "B" || f1[2].From != "C" {
		t.Fatalf("flows not sorted: %v", f1)
	}
}

func TestQuickConservation(t *testing.T) {
	// Property: every emitted packet is accounted for exactly once:
	// accepted + clipped + unexpected at receivers + lost == sent.
	f := func(na, nb, nc uint8, aSends, bSends, cSends bool) bool {
		p := NewPlane()
		agents := []*Agent{
			p.Agent("A", ap("h1", 1)),
			p.Agent("B", ap("h2", 2)),
			p.Agent("C", ap("h3", 3)),
		}
		targets := []AddrPort{agents[1].Origin(), agents[2].Origin(), ap("void", 0)}
		sends := []bool{aSends, bSends, cSends}
		for i, a := range agents {
			if sends[i] {
				a.SetSending(targets[i], sig.G711)
			}
			a.SetExpecting(agents[(i+1)%3].Origin(), sig.G711, i%2 == 0)
		}
		p.Tick(int(na%50) + int(nb%50) + int(nc%50))
		var sent, recv uint64
		for _, a := range agents {
			s := a.Stats()
			sent += s.Sent
			recv += s.Accepted + s.Clipped + s.Unexpected
		}
		return sent == recv+p.Lost()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
