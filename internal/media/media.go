// Package media simulates the media plane: RTP-like packets traveling
// directly between media endpoints, separately from the signaling
// channels (paper Figure 1). The paper's own implementation could not
// be tested with live IP media (Section VIII-C); this simulated plane
// goes further, letting integration tests observe that packets
// actually flow exactly when the path semantics say they should, and
// measure clipping — media packets lost because they arrive before the
// receiver is set up (Section VI-A).
//
// Two carriers implement the plane: the in-memory Plane (synchronous,
// deterministic, for protocol tests) and the UDPPlane (real datagrams
// over a persistent-socket, batched-syscall pipeline, for load and
// throughput work). Both deliver into the same Agent classification
// logic, which is lock-free on the per-packet path: packet counters
// are atomics and the send/expect configuration is published as
// immutable snapshots behind atomic pointers, so reconfiguration (from
// the box goroutine) never blocks delivery or transmission.
package media

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
)

// Telemetry instrument names exported by the media plane.
const (
	// MetricPacketsIn counts media packets delivered to agents
	// (accepted + clipped + unexpected).
	MetricPacketsIn = "media.pps_in"
	// MetricPacketsOut counts media packets transmitted by agents.
	MetricPacketsOut = "media.pps_out"
	// MetricDecodeErrors counts datagrams that failed to decode on the
	// UDP plane.
	MetricDecodeErrors = "media.decode_errors"
	// MetricClipped counts packets clipped at receivers (arrived while
	// open but before the matching selector, Section VI-A).
	MetricClipped = "media.clipped"
	// MetricJitter is the inter-arrival time histogram at receivers; its
	// spread is the delivery jitter.
	MetricJitter = "media.jitter"
)

// AddrPort identifies a media endpoint's receiving socket.
type AddrPort struct {
	Addr string
	Port int
}

// IsZero reports an unset address.
func (a AddrPort) IsZero() bool { return a.Addr == "" && a.Port == 0 }

func (a AddrPort) String() string { return fmt.Sprintf("%s:%d", a.Addr, a.Port) }

// Packet is one simulated media packet. Payload is the framing bytes
// after the wire header (nil for header-only stand-in packets); it may
// alias a reused buffer and is only valid until the next emission.
type Packet struct {
	From    AddrPort
	To      AddrPort
	Codec   sig.Codec
	Seq     uint64
	Payload []byte
}

// Stats counts packet dispositions at one agent.
type Stats struct {
	Sent          uint64 // packets transmitted by this agent
	Accepted      uint64 // packets received and consumed
	Clipped       uint64 // packets received while open but before the matching selector
	Unexpected    uint64 // packets received while not open to the sender (discarded)
	FramingErrors uint64 // packets dropped for payload-integrity failures (not delivered)
}

// sendState is one immutable snapshot of an agent's transmission
// configuration, published behind an atomic pointer.
type sendState struct {
	to    AddrPort // zero when not transmitting
	codec sig.Codec
}

// expState is one immutable snapshot of an agent's reception
// expectation.
type expState struct {
	from      AddrPort // zero when no selector received
	codec     sig.Codec
	listening bool // flowing with a descriptor out: packets may arrive early
}

var (
	zeroSend = &sendState{}
	zeroExp  = &expState{}
)

// Agent is the media half of one endpoint (or one leg of a media
// resource): the current transmission target and reception
// expectation, updated by the endpoint's signaling code, plus packet
// counters. All methods are safe for concurrent use; signaling updates
// come from the box goroutine while packets are emitted and delivered
// from pacer, reader, and test goroutines. The per-packet paths
// (emit/deliver) are lock-free and allocation-free: the mutex only
// serializes reconfiguration writers.
type Agent struct {
	name   string
	origin AddrPort

	mu   sync.Mutex // serializes SetSending/SetExpecting, not readers
	send atomic.Pointer[sendState]
	exp  atomic.Pointer[expState]

	seq         atomic.Uint64
	sent        atomic.Uint64
	accepted    atomic.Uint64
	clipped     atomic.Uint64
	unexpected  atomic.Uint64
	framingErrs atomic.Uint64

	// framing fills and checks payloads; nil means header-only packets.
	// Set before the agent carries traffic (the plane installs it at
	// registration, before readers or pacers start); payloadBuf is the
	// in-memory carrier's reused emission buffer.
	framing    Framing
	payloadBuf []byte

	lastArrival atomic.Int64 // UnixNano of the previous delivery, 0 before the first

	mIn      *telemetry.Counter
	mOut     *telemetry.Counter
	mClipped *telemetry.Counter
	mJitter  *telemetry.Histogram
}

// NewAgent creates an agent receiving at origin.
func NewAgent(name string, origin AddrPort) *Agent {
	a := &Agent{name: name, origin: origin}
	a.send.Store(zeroSend)
	a.exp.Store(zeroExp)
	a.mIn = telemetry.C(MetricPacketsIn)
	a.mOut = telemetry.C(MetricPacketsOut)
	a.mClipped = telemetry.C(MetricClipped)
	a.mJitter = telemetry.H(MetricJitter)
	return a
}

// Name returns the agent's name.
func (a *Agent) Name() string { return a.name }

// SetFraming installs the agent's payload framing (its private mux and
// demux state — the per-sender arena the continuity counters live in).
// Must be called before the agent carries traffic: the per-packet
// paths read the field without synchronization. Planes call it during
// registration when a framing factory is installed.
func (a *Agent) SetFraming(f Framing) { a.framing = f }

// Framing returns the agent's payload framing, nil when header-only.
func (a *Agent) Framing() Framing { return a.framing }

// Origin returns the agent's receiving address.
func (a *Agent) Origin() AddrPort { return a.origin }

// SetSending declares the agent's current transmission target; a zero
// AddrPort stops transmission. The endpoint calls this when it has
// sent a selector with a real codec ("an endpoint can send media as
// soon as it has sent a selector with a real codec", paper VI-B).
func (a *Agent) SetSending(to AddrPort, codec sig.Codec) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if s := a.send.Load(); s.to == to && s.codec == codec {
		return
	}
	a.send.Store(&sendState{to: to, codec: codec})
}

// SetExpecting declares where the agent expects media from, per the
// most recent selector received; listening reports whether the
// endpoint has an open channel at all (clipping window).
func (a *Agent) SetExpecting(from AddrPort, codec sig.Codec, listening bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e := a.exp.Load(); e.from == from && e.codec == codec && e.listening == listening {
		return
	}
	a.exp.Store(&expState{from: from, codec: codec, listening: listening})
}

// Sending returns the current transmission target, if any.
func (a *Agent) Sending() (AddrPort, sig.Codec, bool) {
	s := a.send.Load()
	return s.to, s.codec, !s.to.IsZero()
}

// Stats returns a snapshot of the agent's packet counters.
func (a *Agent) Stats() Stats {
	return Stats{
		Sent:          a.sent.Load(),
		Accepted:      a.accepted.Load(),
		Clipped:       a.clipped.Load(),
		Unexpected:    a.unexpected.Load(),
		FramingErrors: a.framingErrs.Load(),
	}
}

// emit produces the agent's next outgoing packet, if transmitting. A
// framed packet's payload aliases the agent's reused emission buffer,
// valid until the next emit.
func (a *Agent) emit() (Packet, bool) {
	s := a.send.Load()
	if s.to.IsZero() {
		return Packet{}, false
	}
	seq := a.seq.Add(1)
	a.sent.Add(1)
	a.mOut.Inc()
	pkt := Packet{From: a.origin, To: s.to, Codec: s.codec, Seq: seq}
	if f := a.framing; f != nil {
		a.payloadBuf = f.AppendPayload(a.payloadBuf[:0], seq)
		pkt.Payload = a.payloadBuf
	}
	return pkt, true
}

// emitBatchInto stages up to max outgoing packets against one
// transmission-state snapshot: packet i is encoded into a slice of
// arena (stride maxDatagram) and published in msgs[i]. It returns the
// staged count and the shared destination; zero when not transmitting.
// The whole batch shares one snapshot, so a reconfiguration lands on a
// batch boundary — the packets already staged go to the old target,
// exactly like datagrams already in flight. Allocation-free while
// packets fit the arena stride.
func (a *Agent) emitBatchInto(arena []byte, msgs [][]byte, max int) (int, AddrPort) {
	s := a.send.Load()
	if s.to.IsZero() || max <= 0 {
		return 0, AddrPort{}
	}
	if max > len(msgs) {
		max = len(msgs)
	}
	f := a.framing
	n := 0
	for n < max {
		slot := arena[n*maxDatagram : n*maxDatagram : (n+1)*maxDatagram]
		seq := a.seq.Add(1)
		msg := appendPacketFields(slot, a.origin, s.codec, seq)
		if f != nil {
			msg = f.AppendPayload(msg, seq)
		}
		msgs[n] = msg
		n++
	}
	a.sent.Add(uint64(n))
	a.mOut.Add(uint64(n))
	return n, s.to
}

// deliver classifies an incoming packet (in-memory carrier). A framed
// packet whose payload fails integrity checks is counted
// (FramingErrors plus the framing's own telemetry) and not delivered.
func (a *Agent) deliver(p Packet) {
	if f := a.framing; f != nil {
		if err := f.CheckPayload(p.Seq, p.Payload); err != nil {
			a.framingErrs.Add(1)
			return
		}
	}
	e := a.exp.Load()
	a.count(e, p.From == e.from, p.Codec == e.codec)
}

// deliverWire decodes and classifies one datagram straight from its
// wire bytes (UDP carrier). The address and codec are compared as byte
// slices against the expectation snapshot, so the steady-state path is
// allocation-free; a malformed datagram is reported as an error and
// counted nowhere, and a framed datagram failing payload integrity is
// counted as a framing error and not delivered.
func (a *Agent) deliverWire(b []byte) error {
	addr, port, codec, seq, payload, err := splitPacket(b)
	if err != nil {
		return err
	}
	if f := a.framing; f != nil {
		if err := f.CheckPayload(seq, payload); err != nil {
			a.framingErrs.Add(1)
			return err
		}
	}
	e := a.exp.Load()
	fromMatch := port == e.from.Port && string(addr) == e.from.Addr
	codecMatch := string(codec) == string(e.codec)
	a.count(e, fromMatch, codecMatch)
	return nil
}

// count records one arriving packet against the expectation snapshot
// e. fromMatch/codecMatch report whether the packet's source and codec
// equal the snapshot's (their values are irrelevant when e.from is
// zero).
func (a *Agent) count(e *expState, fromMatch, codecMatch bool) {
	a.observeArrival()
	a.mIn.Inc()
	switch {
	case !e.from.IsZero() && fromMatch && codecMatch:
		a.accepted.Add(1)
	case !e.from.IsZero() && fromMatch:
		// Right sender, wrong codec: a codec-reconfiguration window,
		// counted with clipping.
		a.clipped.Add(1)
		a.mClipped.Inc()
	case e.from.IsZero() && e.listening:
		// Open but the matching selector has not arrived: clipped per
		// the paper's relaxed synchronization (Section VI-B, footnote 5).
		a.clipped.Add(1)
		a.mClipped.Inc()
	default:
		// From a sender we are not open to — e.g. telephone B of paper
		// Figure 2, "transmitting to an endpoint that will throw away
		// the packets".
		a.unexpected.Add(1)
	}
}

// observeArrival feeds the inter-arrival jitter histogram. Skipped
// entirely (including the clock read) when telemetry is off.
func (a *Agent) observeArrival() {
	if a.mJitter == nil {
		return
	}
	now := time.Now().UnixNano()
	if last := a.lastArrival.Swap(now); last != 0 {
		a.mJitter.Observe(time.Duration(now - last))
	}
}

// Flow is one observed media flow in the plane.
type Flow struct {
	From, To string // agent names
	Codec    sig.Codec
}

func (f Flow) String() string { return fmt.Sprintf("%s->%s(%s)", f.From, f.To, f.Codec) }

// Plane is the simulated media network: a registry of agents by
// receiving address, with synchronous packet delivery on Tick.
type Plane struct {
	mu      sync.Mutex
	agents  map[AddrPort]*Agent
	lost    uint64
	framing FramingFactory
}

// NewPlane creates an empty media plane.
func NewPlane() *Plane {
	return &Plane{agents: map[AddrPort]*Agent{}}
}

// Register adds an agent to the plane. Registering a second agent at
// the same address replaces the first.
func (p *Plane) Register(a *Agent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.agents[a.Origin()] = a
}

// SetFraming installs a framing factory: every agent created after
// this call gets its own Framing instance (private mux/demux state).
// Call before endpoints register their agents.
func (p *Plane) SetFraming(f FramingFactory) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.framing = f
}

// Agent creates and registers a new agent in one step.
func (p *Plane) Agent(name string, origin AddrPort) *Agent {
	a := NewAgent(name, origin)
	p.mu.Lock()
	f := p.framing
	p.mu.Unlock()
	if f != nil {
		a.SetFraming(f())
	}
	p.Register(a)
	return a
}

// Tick simulates n packet periods: every transmitting agent emits one
// packet per period, delivered synchronously to the agent at the
// destination address (or counted as lost).
func (p *Plane) Tick(n int) {
	p.mu.Lock()
	agents := make([]*Agent, 0, len(p.agents))
	for _, a := range p.agents {
		agents = append(agents, a)
	}
	p.mu.Unlock()
	sort.Slice(agents, func(i, j int) bool { return agents[i].name < agents[j].name })
	for i := 0; i < n; i++ {
		for _, a := range agents {
			pkt, ok := a.emit()
			if !ok {
				continue
			}
			p.mu.Lock()
			dst := p.agents[pkt.To]
			if dst == nil {
				p.lost++
			}
			p.mu.Unlock()
			if dst != nil {
				dst.deliver(pkt)
			}
		}
	}
}

// Lost returns the count of packets sent to unregistered addresses.
func (p *Plane) Lost() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lost
}

// Flows returns the current flow graph: one entry per transmitting
// agent, named by source and destination agent (destination "?" if no
// agent is registered at the target address). Sorted for stable test
// assertions.
func (p *Plane) Flows() []Flow {
	p.mu.Lock()
	agents := make([]*Agent, 0, len(p.agents))
	for _, a := range p.agents {
		agents = append(agents, a)
	}
	byAddr := make(map[AddrPort]string, len(agents))
	for _, a := range agents {
		byAddr[a.Origin()] = a.name
	}
	p.mu.Unlock()
	return flowGraph(agents, byAddr)
}

// flowGraph builds the sorted flow list shared by both carriers.
func flowGraph(agents []*Agent, byAddr map[AddrPort]string) []Flow {
	var flows []Flow
	for _, a := range agents {
		to, codec, ok := a.Sending()
		if !ok {
			continue
		}
		dst, found := byAddr[to]
		if !found {
			dst = "?"
		}
		flows = append(flows, Flow{From: a.name, To: dst, Codec: codec})
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].From != flows[j].From {
			return flows[i].From < flows[j].From
		}
		return flows[i].To < flows[j].To
	})
	return flows
}

// HasFlow reports whether a flow from one named agent to another is
// currently active.
func (p *Plane) HasFlow(from, to string) bool {
	for _, f := range p.Flows() {
		if f.From == from && f.To == to {
			return true
		}
	}
	return false
}
