// Package media simulates the media plane: RTP-like packets traveling
// directly between media endpoints, separately from the signaling
// channels (paper Figure 1). The paper's own implementation could not
// be tested with live IP media (Section VIII-C); this simulated plane
// goes further, letting integration tests observe that packets
// actually flow exactly when the path semantics say they should, and
// measure clipping — media packets lost because they arrive before the
// receiver is set up (Section VI-A).
package media

import (
	"fmt"
	"sort"
	"sync"

	"ipmedia/internal/sig"
)

// AddrPort identifies a media endpoint's receiving socket.
type AddrPort struct {
	Addr string
	Port int
}

// IsZero reports an unset address.
func (a AddrPort) IsZero() bool { return a.Addr == "" && a.Port == 0 }

func (a AddrPort) String() string { return fmt.Sprintf("%s:%d", a.Addr, a.Port) }

// Packet is one simulated media packet.
type Packet struct {
	From  AddrPort
	To    AddrPort
	Codec sig.Codec
	Seq   uint64
}

// Stats counts packet dispositions at one agent.
type Stats struct {
	Sent       uint64 // packets transmitted by this agent
	Accepted   uint64 // packets received and consumed
	Clipped    uint64 // packets received while open but before the matching selector
	Unexpected uint64 // packets received while not open to the sender (discarded)
}

// Agent is the media half of one endpoint (or one leg of a media
// resource): the current transmission target and reception
// expectation, updated by the endpoint's signaling code, plus packet
// counters. All methods are safe for concurrent use; signaling updates
// come from the box goroutine while the Plane delivers packets from
// test goroutines.
type Agent struct {
	name   string
	origin AddrPort

	mu        sync.Mutex
	sendTo    AddrPort  // zero when not transmitting
	sendCodec sig.Codec //
	expFrom   AddrPort  // zero when no selector received
	expCodec  sig.Codec
	listening bool // flowing with a descriptor out: packets may arrive early
	seq       uint64
	stats     Stats
}

// NewAgent creates an agent receiving at origin.
func NewAgent(name string, origin AddrPort) *Agent {
	return &Agent{name: name, origin: origin}
}

// Name returns the agent's name.
func (a *Agent) Name() string { return a.name }

// Origin returns the agent's receiving address.
func (a *Agent) Origin() AddrPort { return a.origin }

// SetSending declares the agent's current transmission target; a zero
// AddrPort stops transmission. The endpoint calls this when it has
// sent a selector with a real codec ("an endpoint can send media as
// soon as it has sent a selector with a real codec", paper VI-B).
func (a *Agent) SetSending(to AddrPort, codec sig.Codec) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sendTo, a.sendCodec = to, codec
}

// SetExpecting declares where the agent expects media from, per the
// most recent selector received; listening reports whether the
// endpoint has an open channel at all (clipping window).
func (a *Agent) SetExpecting(from AddrPort, codec sig.Codec, listening bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.expFrom, a.expCodec, a.listening = from, codec, listening
}

// Sending returns the current transmission target, if any.
func (a *Agent) Sending() (AddrPort, sig.Codec, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sendTo, a.sendCodec, !a.sendTo.IsZero()
}

// Stats returns a snapshot of the agent's packet counters.
func (a *Agent) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// emit produces the agent's next outgoing packet, if transmitting.
func (a *Agent) emit() (Packet, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.sendTo.IsZero() {
		return Packet{}, false
	}
	a.seq++
	a.stats.Sent++
	return Packet{From: a.origin, To: a.sendTo, Codec: a.sendCodec, Seq: a.seq}, true
}

// deliver classifies an incoming packet.
func (a *Agent) deliver(p Packet) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch {
	case !a.expFrom.IsZero() && p.From == a.expFrom && p.Codec == a.expCodec:
		a.stats.Accepted++
	case !a.expFrom.IsZero() && p.From == a.expFrom:
		// Right sender, wrong codec: a codec-reconfiguration window,
		// counted with clipping.
		a.stats.Clipped++
	case a.expFrom.IsZero() && a.listening:
		// Open but the matching selector has not arrived: clipped per
		// the paper's relaxed synchronization (Section VI-B, footnote 5).
		a.stats.Clipped++
	default:
		// From a sender we are not open to — e.g. telephone B of paper
		// Figure 2, "transmitting to an endpoint that will throw away
		// the packets".
		a.stats.Unexpected++
	}
}

// Flow is one observed media flow in the plane.
type Flow struct {
	From, To string // agent names
	Codec    sig.Codec
}

func (f Flow) String() string { return fmt.Sprintf("%s->%s(%s)", f.From, f.To, f.Codec) }

// Plane is the simulated media network: a registry of agents by
// receiving address, with synchronous packet delivery on Tick.
type Plane struct {
	mu     sync.Mutex
	agents map[AddrPort]*Agent
	lost   uint64
}

// NewPlane creates an empty media plane.
func NewPlane() *Plane {
	return &Plane{agents: map[AddrPort]*Agent{}}
}

// Register adds an agent to the plane. Registering a second agent at
// the same address replaces the first.
func (p *Plane) Register(a *Agent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.agents[a.Origin()] = a
}

// Agent creates and registers a new agent in one step.
func (p *Plane) Agent(name string, origin AddrPort) *Agent {
	a := NewAgent(name, origin)
	p.Register(a)
	return a
}

// Tick simulates n packet periods: every transmitting agent emits one
// packet per period, delivered synchronously to the agent at the
// destination address (or counted as lost).
func (p *Plane) Tick(n int) {
	p.mu.Lock()
	agents := make([]*Agent, 0, len(p.agents))
	for _, a := range p.agents {
		agents = append(agents, a)
	}
	p.mu.Unlock()
	sort.Slice(agents, func(i, j int) bool { return agents[i].name < agents[j].name })
	for i := 0; i < n; i++ {
		for _, a := range agents {
			pkt, ok := a.emit()
			if !ok {
				continue
			}
			p.mu.Lock()
			dst := p.agents[pkt.To]
			if dst == nil {
				p.lost++
			}
			p.mu.Unlock()
			if dst != nil {
				dst.deliver(pkt)
			}
		}
	}
}

// Lost returns the count of packets sent to unregistered addresses.
func (p *Plane) Lost() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lost
}

// Flows returns the current flow graph: one entry per transmitting
// agent, named by source and destination agent (destination "?" if no
// agent is registered at the target address). Sorted for stable test
// assertions.
func (p *Plane) Flows() []Flow {
	p.mu.Lock()
	agents := make([]*Agent, 0, len(p.agents))
	for _, a := range p.agents {
		agents = append(agents, a)
	}
	byAddr := make(map[AddrPort]string, len(agents))
	for _, a := range agents {
		byAddr[a.Origin()] = a.name
	}
	p.mu.Unlock()
	var flows []Flow
	for _, a := range agents {
		to, codec, ok := a.Sending()
		if !ok {
			continue
		}
		dst, found := byAddr[to]
		if !found {
			dst = "?"
		}
		flows = append(flows, Flow{From: a.name, To: dst, Codec: codec})
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].From != flows[j].From {
			return flows[i].From < flows[j].From
		}
		return flows[i].To < flows[j].To
	})
	return flows
}

// HasFlow reports whether a flow from one named agent to another is
// currently active.
func (p *Plane) HasFlow(from, to string) bool {
	for _, f := range p.Flows() {
		if f.From == from && f.To == to {
			return true
		}
	}
	return false
}
