// A media plane carried over real UDP datagrams on the local host:
// the production-shaped counterpart of the in-memory Plane. Media is
// high-bandwidth and loss-tolerant, so "it is common to use RTP for
// media streams, because limited packet loss is preferable to delay"
// (paper Section I); this carrier plays the RTP role with a minimal
// binary header (source address, codec, sequence number).
package media

import (
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"

	"ipmedia/internal/sig"
)

// Registry is the media-plane interface endpoints program against:
// both the in-memory Plane and the UDPPlane implement it.
type Registry interface {
	// Agent creates and registers an agent receiving at origin.
	Agent(name string, origin AddrPort) *Agent
}

var (
	_ Registry = (*Plane)(nil)
	_ Registry = (*UDPPlane)(nil)
)

// UDPPlane registers agents on real UDP sockets. Agent origins must
// use IP addresses (e.g. 127.0.0.1); packets are sent as datagrams and
// classified by the receiving agent exactly as on the in-memory plane.
type UDPPlane struct {
	mu     sync.Mutex
	agents map[AddrPort]*Agent
	conns  []*net.UDPConn
	errs   []error
	wg     sync.WaitGroup
	closed bool
}

// NewUDPPlane creates an empty UDP media plane.
func NewUDPPlane() *UDPPlane {
	return &UDPPlane{agents: map[AddrPort]*Agent{}}
}

// Errs returns socket errors recorded during operation.
func (p *UDPPlane) Errs() []error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]error(nil), p.errs...)
}

func (p *UDPPlane) fail(err error) {
	p.mu.Lock()
	p.errs = append(p.errs, err)
	p.mu.Unlock()
}

// Agent implements Registry: it binds origin's UDP socket and starts a
// reader that classifies incoming datagrams.
func (p *UDPPlane) Agent(name string, origin AddrPort) *Agent {
	a := NewAgent(name, origin)
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(origin.Addr), Port: origin.Port})
	if err != nil {
		p.fail(fmt.Errorf("media: bind %s: %w", origin, err))
		return a
	}
	p.mu.Lock()
	p.agents[origin] = a
	p.conns = append(p.conns, conn)
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		buf := make([]byte, 2048)
		for {
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			pkt, err := unmarshalPacket(buf[:n])
			if err != nil {
				continue
			}
			pkt.To = origin
			a.deliver(pkt)
		}
	}()
	return a
}

// Tick simulates n packet periods: every transmitting agent emits one
// datagram per period. Delivery is asynchronous; use AwaitStats-style
// polling in tests.
func (p *UDPPlane) Tick(n int) {
	p.mu.Lock()
	agents := make([]*Agent, 0, len(p.agents))
	for _, a := range p.agents {
		agents = append(agents, a)
	}
	p.mu.Unlock()
	sort.Slice(agents, func(i, j int) bool { return agents[i].name < agents[j].name })
	for i := 0; i < n; i++ {
		for _, a := range agents {
			pkt, ok := a.emit()
			if !ok {
				continue
			}
			dst := &net.UDPAddr{IP: net.ParseIP(pkt.To.Addr), Port: pkt.To.Port}
			conn, err := net.DialUDP("udp", nil, dst)
			if err != nil {
				p.fail(err)
				continue
			}
			if _, err := conn.Write(marshalPacket(pkt)); err != nil {
				p.fail(err)
			}
			conn.Close()
		}
	}
}

// Flows mirrors Plane.Flows over the registered agents.
func (p *UDPPlane) Flows() []Flow {
	p.mu.Lock()
	agents := make([]*Agent, 0, len(p.agents))
	byAddr := make(map[AddrPort]string, len(p.agents))
	for _, a := range p.agents {
		agents = append(agents, a)
		byAddr[a.Origin()] = a.name
	}
	p.mu.Unlock()
	var flows []Flow
	for _, a := range agents {
		to, codec, ok := a.Sending()
		if !ok {
			continue
		}
		dst, found := byAddr[to]
		if !found {
			dst = "?"
		}
		flows = append(flows, Flow{From: a.name, To: dst, Codec: codec})
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].From != flows[j].From {
			return flows[i].From < flows[j].From
		}
		return flows[i].To < flows[j].To
	})
	return flows
}

// HasFlow mirrors Plane.HasFlow.
func (p *UDPPlane) HasFlow(from, to string) bool {
	for _, f := range p.Flows() {
		if f.From == from && f.To == to {
			return true
		}
	}
	return false
}

// Close shuts all sockets down and waits for the readers.
func (p *UDPPlane) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := p.conns
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
}

// Datagram format:
//
//	u16 addrLen | addr | u16 port | u16 codecLen | codec | u64 seq
func marshalPacket(pkt Packet) []byte {
	addr, codec := []byte(pkt.From.Addr), []byte(pkt.Codec)
	out := make([]byte, 0, 2+len(addr)+2+2+len(codec)+8)
	var u16 [2]byte
	var u64 [8]byte
	binary.BigEndian.PutUint16(u16[:], uint16(len(addr)))
	out = append(out, u16[:]...)
	out = append(out, addr...)
	binary.BigEndian.PutUint16(u16[:], uint16(pkt.From.Port))
	out = append(out, u16[:]...)
	binary.BigEndian.PutUint16(u16[:], uint16(len(codec)))
	out = append(out, u16[:]...)
	out = append(out, codec...)
	binary.BigEndian.PutUint64(u64[:], pkt.Seq)
	out = append(out, u64[:]...)
	return out
}

func unmarshalPacket(b []byte) (Packet, error) {
	var pkt Packet
	if len(b) < 2 {
		return pkt, fmt.Errorf("media: short datagram")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n+4 {
		return pkt, fmt.Errorf("media: truncated address")
	}
	pkt.From.Addr = string(b[:n])
	b = b[n:]
	pkt.From.Port = int(binary.BigEndian.Uint16(b))
	b = b[2:]
	n = int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n+8 {
		return pkt, fmt.Errorf("media: truncated codec")
	}
	pkt.Codec = sig.Codec(b[:n])
	b = b[n:]
	pkt.Seq = binary.BigEndian.Uint64(b)
	return pkt, nil
}
