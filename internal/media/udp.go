// A media plane carried over real UDP datagrams on the local host:
// the production-shaped counterpart of the in-memory Plane. Media is
// high-bandwidth and loss-tolerant, so "it is common to use RTP for
// media streams, because limited packet loss is preferable to delay"
// (paper Section I); this carrier plays the RTP role with a minimal
// binary header (source address, codec, sequence number).
//
// The transmit pipeline is persistent and batched: each transmitting
// agent owns one connected UDP socket (re-dialed only when the target
// changes), packets are encoded append-style into a per-sender arena,
// and a whole batch leaves in one sendmmsg on platforms that have it —
// one syscall per burst instead of a dial+write+close per packet. The
// receive side mirrors it: per-socket reader goroutines drain batches
// with recvmmsg into a reused buffer arena and classify datagrams
// straight from the wire bytes. A portable per-datagram loop backs
// both directions and is selected at runtime (SetBatchIO) or wherever
// the batched syscalls are unavailable.
package media

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ipmedia/internal/telemetry"
)

// Registry is the media-plane interface endpoints program against:
// both the in-memory Plane and the UDPPlane implement it.
type Registry interface {
	// Agent creates and registers an agent receiving at origin.
	Agent(name string, origin AddrPort) *Agent
}

// PacedPlane is implemented by planes that can stream an agent's
// outgoing media continuously on a dedicated transmitter (the UDP
// plane). Endpoints use it to keep media flowing without external
// Tick driving.
type PacedPlane interface {
	Registry
	StartPacer(a *Agent, interval time.Duration, batch int) *Pacer
}

var (
	_ Registry   = (*Plane)(nil)
	_ Registry   = (*UDPPlane)(nil)
	_ PacedPlane = (*UDPPlane)(nil)
)

// batchSize is the number of datagrams staged per sendmmsg/recvmmsg
// call — the syscall amortization factor of the fast path.
const batchSize = 32

// UDPPlane registers agents on real UDP sockets. Agent origins must
// use IP addresses (e.g. 127.0.0.1); packets are sent as datagrams and
// classified by the receiving agent exactly as on the in-memory plane.
type UDPPlane struct {
	mu      sync.Mutex
	agents  map[AddrPort]*Agent
	conns   []*net.UDPConn
	senders map[*Agent]*udpSender
	pacers  []*Pacer
	errs    []error
	wg      sync.WaitGroup
	closed  bool

	batch            atomic.Bool // sendmmsg/recvmmsg fast path enabled
	decodeErrLogged  atomic.Bool // first undecodable datagram recorded in errs
	framingErrLogged atomic.Bool // first payload-integrity failure recorded in errs

	framing FramingFactory

	mDecodeErr *telemetry.Counter
}

// NewUDPPlane creates an empty UDP media plane. The batched syscall
// fast path is on wherever the platform supports it.
func NewUDPPlane() *UDPPlane {
	p := &UDPPlane{
		agents:     map[AddrPort]*Agent{},
		senders:    map[*Agent]*udpSender{},
		mDecodeErr: telemetry.C(MetricDecodeErrors),
	}
	p.batch.Store(batchIOSupported)
	return p
}

// SetBatchIO selects between the batched sendmmsg/recvmmsg fast path
// and the portable per-datagram loop at runtime. Forcing it on where
// the platform lacks the syscalls is a no-op. Call it before traffic
// flows: readers already parked in a batched receive finish that batch
// on the old setting.
func (p *UDPPlane) SetBatchIO(on bool) {
	p.batch.Store(on && batchIOSupported)
}

// BatchIO reports whether the batched syscall path is active.
func (p *UDPPlane) BatchIO() bool { return p.batch.Load() }

// SetFraming installs a framing factory: every agent created after
// this call gets its own Framing instance, installed before the
// agent's reader starts. Call before endpoints register their agents.
func (p *UDPPlane) SetFraming(f FramingFactory) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.framing = f
}

// Errs returns socket errors recorded during operation.
func (p *UDPPlane) Errs() []error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]error(nil), p.errs...)
}

func (p *UDPPlane) fail(err error) {
	p.mu.Lock()
	p.errs = append(p.errs, err)
	p.mu.Unlock()
}

func (p *UDPPlane) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Agent implements Registry: it binds origin's UDP socket and starts a
// reader that classifies incoming datagrams.
func (p *UDPPlane) Agent(name string, origin AddrPort) *Agent {
	a := NewAgent(name, origin)
	p.mu.Lock()
	f := p.framing
	p.mu.Unlock()
	if f != nil {
		a.SetFraming(f())
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(origin.Addr), Port: origin.Port})
	if err != nil {
		p.fail(fmt.Errorf("media: bind %s: %w", origin, err))
		return a
	}
	// A deep receive buffer absorbs paced bursts while the reader is
	// descheduled; best-effort, some kernels clamp it.
	_ = conn.SetReadBuffer(1 << 20)
	p.mu.Lock()
	p.agents[origin] = a
	p.conns = append(p.conns, conn)
	p.mu.Unlock()
	p.wg.Add(1)
	go p.readLoop(a, conn, newBatchIO(conn, batchSize, maxDatagram))
	return a
}

// readLoop drains one agent's socket until it closes. The batched leg
// pulls up to batchSize datagrams per recvmmsg into the reader's
// arena; the portable leg reads one datagram at a time into a single
// reused buffer. Either way no allocation happens per datagram.
func (p *UDPPlane) readLoop(a *Agent, conn *net.UDPConn, bio *batchIO) {
	defer p.wg.Done()
	var buf []byte // portable leg's reused buffer, allocated on first use
	for {
		if bio != nil && p.batch.Load() {
			_, err := bio.recv(func(dgram []byte) { p.deliverDatagram(a, dgram) })
			if err != nil {
				if !errors.Is(err, net.ErrClosed) && !p.isClosed() {
					p.fail(fmt.Errorf("media: recv %s: %w", a.Origin(), err))
				}
				return
			}
			continue
		}
		if buf == nil {
			buf = make([]byte, maxDatagram)
		}
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		p.deliverDatagram(a, buf[:n])
	}
}

// deliverDatagram classifies one datagram at an agent. Undecodable
// datagrams are counted (media.decode_errors) and the first one is
// recorded in the plane's error list so tests and operators see why a
// stream is silent instead of a blind drop; payload-integrity failures
// are counted separately by the framing (ts.crc_errors et al.) with
// their own first-occurrence record.
func (p *UDPPlane) deliverDatagram(a *Agent, b []byte) {
	err := a.deliverWire(b)
	if err == nil {
		return
	}
	if errors.Is(err, ErrFraming) {
		if p.framingErrLogged.CompareAndSwap(false, true) {
			p.fail(fmt.Errorf("media: payload integrity failure at %s: %w", a.Name(), err))
		}
		return
	}
	p.mDecodeErr.Inc()
	if p.decodeErrLogged.CompareAndSwap(false, true) {
		p.fail(fmt.Errorf("media: undecodable datagram for %s: %w", a.Name(), err))
	}
}

// senderFor returns the agent's persistent transmitter, creating it on
// first use.
func (p *UDPPlane) senderFor(a *Agent) *udpSender {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.senders[a]
	if s == nil {
		s = &udpSender{
			plane: p,
			agent: a,
			arena: make([]byte, batchSize*maxDatagram),
			msgs:  make([][]byte, batchSize),
		}
		p.senders[a] = s
	}
	return s
}

// udpSender is one agent's transmit half: a connected socket kept open
// across packets (re-dialed only when the target changes) plus the
// staging arena batches are encoded into. All sends for one agent are
// serialized by mu (pacer vs. Tick).
type udpSender struct {
	mu    sync.Mutex
	plane *UDPPlane
	agent *Agent
	dst   AddrPort
	conn  *net.UDPConn
	bio   *batchIO
	arena []byte
	msgs  [][]byte
}

// send transmits up to n packets, in batches of batchSize, stopping
// early if the agent is not (or stops) transmitting.
func (s *udpSender) send(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.plane.isClosed() {
		return
	}
	for sent := 0; sent < n; {
		want := n - sent
		if want > batchSize {
			want = batchSize
		}
		k, to := s.agent.emitBatchInto(s.arena, s.msgs, want)
		if k == 0 {
			return
		}
		if err := s.ensureConn(to); err != nil {
			s.plane.fail(err)
			return
		}
		if !s.flush(s.msgs[:k]) {
			return
		}
		sent += k
	}
}

// ensureConn points the sender's connected socket at to, dialing only
// when the target changed.
func (s *udpSender) ensureConn(to AddrPort) error {
	if s.conn != nil && to == s.dst {
		return nil
	}
	if s.conn != nil {
		s.conn.Close()
		s.conn, s.bio = nil, nil
	}
	conn, err := net.DialUDP("udp", nil, &net.UDPAddr{IP: net.ParseIP(to.Addr), Port: to.Port})
	if err != nil {
		return fmt.Errorf("media: dial %s: %w", to, err)
	}
	_ = conn.SetWriteBuffer(1 << 20)
	s.conn, s.dst = conn, to
	s.bio = newBatchIO(conn, batchSize, 0) // send side: headers only, no receive arena
	s.plane.trackConn(conn)
	return nil
}

// trackConn records a sender socket for Close; a socket dialed while
// the plane is closing is closed immediately instead of leaking.
func (p *UDPPlane) trackConn(c *net.UDPConn) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.conns = append(p.conns, c)
	p.mu.Unlock()
}

// flush sends one staged batch, via sendmmsg when the fast path is on
// and the portable per-datagram loop otherwise. Returns false after
// recording an error.
func (s *udpSender) flush(msgs [][]byte) bool {
	if s.bio != nil && s.plane.batch.Load() {
		if err := s.bio.send(msgs); err != nil {
			if !errors.Is(err, net.ErrClosed) && !s.plane.isClosed() {
				s.plane.fail(fmt.Errorf("media: send %s: %w", s.dst, err))
			}
			return false
		}
		return true
	}
	for _, m := range msgs {
		if _, err := s.conn.Write(m); err != nil {
			if !errors.Is(err, net.ErrClosed) && !s.plane.isClosed() {
				s.plane.fail(err)
			}
			return false
		}
	}
	return true
}

// Pacer streams one agent's outgoing media continuously: a dedicated
// goroutine transmitting a batch of packets every interval through the
// agent's persistent sender. It self-gates on the agent's transmission
// state — while the agent is not sending, ticks are no-ops — so it can
// be started once and left running across reconfigurations.
type Pacer struct {
	s    *udpSender
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartPacer starts a pacer for a: every interval it transmits up to
// batch packets (batch < 1 is treated as 1). The pacer is stopped by
// Pacer.Stop or plane Close.
func (p *UDPPlane) StartPacer(a *Agent, interval time.Duration, batch int) *Pacer {
	if batch < 1 {
		batch = 1
	}
	pc := &Pacer{s: p.senderFor(a), stop: make(chan struct{}), done: make(chan struct{})}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		close(pc.done)
		return pc
	}
	p.pacers = append(p.pacers, pc)
	p.mu.Unlock()
	go pc.run(interval, batch)
	return pc
}

func (pc *Pacer) run(interval time.Duration, batch int) {
	defer close(pc.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-pc.stop:
			return
		case <-t.C:
			pc.s.send(batch)
		}
	}
}

// Stop halts the pacer and waits for its goroutine. Idempotent.
func (pc *Pacer) Stop() {
	pc.once.Do(func() { close(pc.stop) })
	<-pc.done
}

// Tick is a compatibility shim over the persistent-socket pipeline:
// every transmitting agent sends n packets, batched through its
// persistent connected socket (the seed implementation dialed and
// closed a fresh socket per packet; see LegacyTick). Delivery is
// asynchronous; use AwaitStats-style polling in tests.
func (p *UDPPlane) Tick(n int) {
	for _, a := range p.sortedAgents() {
		p.senderFor(a).send(n)
	}
}

// LegacyTick transmits exactly as the seed dial-per-packet plane did —
// a fresh socket dialed and closed around every single datagram. It
// exists as the mediastorm baseline that BENCH_media.json's speedup
// ratios are measured against; production paths use Tick or a Pacer.
func (p *UDPPlane) LegacyTick(n int) {
	agents := p.sortedAgents()
	for i := 0; i < n; i++ {
		for _, a := range agents {
			pkt, ok := a.emit()
			if !ok {
				continue
			}
			dst := &net.UDPAddr{IP: net.ParseIP(pkt.To.Addr), Port: pkt.To.Port}
			conn, err := net.DialUDP("udp", nil, dst)
			if err != nil {
				p.fail(err)
				continue
			}
			if _, err := conn.Write(marshalPacket(pkt)); err != nil {
				p.fail(err)
			}
			conn.Close()
		}
	}
}

func (p *UDPPlane) sortedAgents() []*Agent {
	p.mu.Lock()
	agents := make([]*Agent, 0, len(p.agents))
	for _, a := range p.agents {
		agents = append(agents, a)
	}
	p.mu.Unlock()
	sort.Slice(agents, func(i, j int) bool { return agents[i].name < agents[j].name })
	return agents
}

// Flows mirrors Plane.Flows over the registered agents.
func (p *UDPPlane) Flows() []Flow {
	p.mu.Lock()
	agents := make([]*Agent, 0, len(p.agents))
	byAddr := make(map[AddrPort]string, len(p.agents))
	for _, a := range p.agents {
		agents = append(agents, a)
		byAddr[a.Origin()] = a.name
	}
	p.mu.Unlock()
	return flowGraph(agents, byAddr)
}

// HasFlow mirrors Plane.HasFlow.
func (p *UDPPlane) HasFlow(from, to string) bool {
	for _, f := range p.Flows() {
		if f.From == from && f.To == to {
			return true
		}
	}
	return false
}

// Close stops the pacers, shuts all sockets down, and waits for the
// readers.
func (p *UDPPlane) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	pacers := p.pacers
	conns := p.conns
	p.mu.Unlock()
	for _, pc := range pacers {
		pc.Stop()
	}
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
}
