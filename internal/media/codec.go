// The media packet wire codec: an RTP-stand-in binary header carrying
// the source address, codec, and sequence number. Like the signaling
// codec (sig.Append*), the encoder is append-style so the steady-state
// transmit path reuses one buffer and allocates nothing; the decoder
// has a split form (splitPacket) that yields byte-slice views into the
// datagram so the receive path classifies without materializing
// strings.
package media

import (
	"encoding/binary"
	"errors"

	"ipmedia/internal/sig"
)

// Datagram format:
//
//	u16 addrLen | addr | u16 port | u16 codecLen | codec | u64 seq | payload
//
// Everything after the fixed header is the framing payload — empty for
// header-only stand-in packets, a 7×188-byte MPEG-TS burst under the
// TS framing. maxDatagram is the stride of the staging and receive
// arenas: sized so a whole framed datagram (header + TSPayloadSize)
// fits, it lets the sendmmsg batcher stage complete framed datagrams
// without allocation; an oversized packet merely spills into a fresh
// allocation.
const maxDatagram = 1536

var (
	errShortDatagram  = errors.New("media: short datagram")
	errTruncatedAddr  = errors.New("media: truncated address")
	errTruncatedCodec = errors.New("media: truncated codec")
)

// AppendPacket appends the wire encoding of pkt to dst and returns the
// extended buffer. From, Codec, Seq, and the payload travel on the
// wire: the destination is the datagram's UDP address.
func AppendPacket(dst []byte, pkt Packet) []byte {
	dst = appendPacketFields(dst, pkt.From, pkt.Codec, pkt.Seq)
	return append(dst, pkt.Payload...)
}

func appendPacketFields(dst []byte, from AddrPort, codec sig.Codec, seq uint64) []byte {
	var u16 [2]byte
	var u64 [8]byte
	binary.BigEndian.PutUint16(u16[:], uint16(len(from.Addr)))
	dst = append(dst, u16[:]...)
	dst = append(dst, from.Addr...)
	binary.BigEndian.PutUint16(u16[:], uint16(from.Port))
	dst = append(dst, u16[:]...)
	binary.BigEndian.PutUint16(u16[:], uint16(len(codec)))
	dst = append(dst, u16[:]...)
	dst = append(dst, codec...)
	binary.BigEndian.PutUint64(u64[:], seq)
	return append(dst, u64[:]...)
}

// marshalPacket is the allocating convenience form of AppendPacket.
func marshalPacket(pkt Packet) []byte {
	return AppendPacket(make([]byte, 0, 2+len(pkt.From.Addr)+2+2+len(pkt.Codec)+8+len(pkt.Payload)), pkt)
}

// splitPacket validates the wire header and returns views into b: the
// address, codec, and payload remain byte slices aliasing the
// datagram, so the caller may compare and check them without
// allocating.
func splitPacket(b []byte) (addr []byte, port int, codec []byte, seq uint64, payload []byte, err error) {
	if len(b) < 2 {
		return nil, 0, nil, 0, nil, errShortDatagram
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n+4 {
		return nil, 0, nil, 0, nil, errTruncatedAddr
	}
	addr = b[:n]
	b = b[n:]
	port = int(binary.BigEndian.Uint16(b))
	b = b[2:]
	n = int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n+8 {
		return nil, 0, nil, 0, nil, errTruncatedCodec
	}
	codec = b[:n]
	seq = binary.BigEndian.Uint64(b[n:])
	payload = b[n+8:]
	return addr, port, codec, seq, payload, nil
}

// unmarshalPacket decodes a datagram into a Packet, copying the
// address, codec, and payload out of the buffer.
func unmarshalPacket(b []byte) (Packet, error) {
	addr, port, codec, seq, payload, err := splitPacket(b)
	if err != nil {
		return Packet{}, err
	}
	pkt := Packet{
		From:  AddrPort{Addr: string(addr), Port: port},
		Codec: sig.Codec(codec),
		Seq:   seq,
	}
	if len(payload) > 0 {
		pkt.Payload = append([]byte(nil), payload...)
	}
	return pkt, nil
}
