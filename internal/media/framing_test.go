package media

import (
	"errors"
	"testing"

	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
	"ipmedia/internal/ts"
)

func TestFramingFactoryNames(t *testing.T) {
	for name, want := range map[string]string{"ts": "ts", "opaque": "opaque"} {
		fac, ok := NewFramingFactory(name)
		if !ok || fac == nil {
			t.Fatalf("factory %q not resolved", name)
		}
		f := fac()
		if f.Name() != want {
			t.Errorf("factory %q built framing %q", name, f.Name())
		}
		if f.PayloadSize() != TSPayloadSize {
			t.Errorf("%q payload size %d, want %d", name, f.PayloadSize(), TSPayloadSize)
		}
	}
	for _, name := range []string{"none", ""} {
		if fac, ok := NewFramingFactory(name); !ok || fac != nil {
			t.Errorf("%q: want nil factory, ok", name)
		}
	}
	if _, ok := NewFramingFactory("mpeg99"); ok {
		t.Error("unknown framing name resolved")
	}
}

// TestTSFramingMemPlane streams real TS bursts between two agents on
// the in-memory plane: every payload demuxes cleanly (continuity, PSI
// CRC, PES headers, embedded sequence numbers) across several PAT/PMT
// refresh periods, and the ts.* telemetry shows a clean wire.
func TestTSFramingMemPlane(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)
	defer telemetry.SetDefault(nil)

	p := NewPlane()
	p.SetFraming(func() Framing { return NewTSFraming() })
	aAddr := AddrPort{Addr: "a", Port: 1}
	bAddr := AddrPort{Addr: "b", Port: 2}
	a := p.Agent("A", aAddr)
	b := p.Agent("B", bAddr)
	a.SetSending(bAddr, sig.G711)
	b.SetExpecting(aAddr, sig.G711, true)

	const n = 200 // spans three PSI refreshes (seq 1, 65, 129, 193)
	p.Tick(n)

	bs := b.Stats()
	if bs.Accepted != n || bs.FramingErrors != 0 {
		t.Fatalf("accepted %d framing errors %d, want %d/0", bs.Accepted, bs.FramingErrors, n)
	}
	f := b.Framing().(*TSFraming)
	ds := f.DemuxStats()
	if ds.Errors() != 0 {
		t.Fatalf("clean wire shows demux errors: %+v", ds)
	}
	// 4 PSI datagrams × (PAT+PMT).
	if ds.PSISections != 8 {
		t.Errorf("PSI sections %d, want 8", ds.PSISections)
	}
	if got := reg.Counter(MetricTSPackets).Value(); got != uint64(ds.Packets) {
		t.Errorf("ts.packets counter %d, demux saw %d", got, ds.Packets)
	}
	if got := reg.Counter(MetricTSCRCErrors).Value(); got != 0 {
		t.Errorf("ts.crc_errors %d on a clean wire", got)
	}
	if got := reg.Counter(MetricTSCCDiscontinuities).Value(); got != 0 {
		t.Errorf("ts.cc_discontinuities %d on a clean wire", got)
	}
}

// tsWireDatagram muxes one framed wire datagram from a sender framing.
func tsWireDatagram(f Framing, from AddrPort, seq uint64) []byte {
	return AppendPacket(nil, Packet{
		From: from, Codec: sig.G711, Seq: seq,
		Payload: f.AppendPayload(nil, seq),
	})
}

// TestTSFramingCorruptCC is the per-source undecodable-packet contract:
// a corrupted continuity counter is detected, counted
// (ts.cc_discontinuities + Stats.FramingErrors), and the packet is NOT
// delivered — Accepted does not move.
func TestTSFramingCorruptCC(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)
	defer telemetry.SetDefault(nil)

	from := AddrPort{Addr: "127.0.0.1", Port: 40000}
	recv := NewAgent("B", AddrPort{Addr: "127.0.0.1", Port: 40002})
	recv.SetFraming(NewTSFraming())
	recv.SetExpecting(from, sig.G711, true)

	send := NewTSFraming()
	clean1 := tsWireDatagram(send, from, 1) // PSI datagram, learns the PMT PID
	clean2 := tsWireDatagram(send, from, 2)
	if err := recv.deliverWire(clean1); err != nil {
		t.Fatalf("clean PSI datagram rejected: %v", err)
	}

	// Flip one bit in the low nibble of a mid-datagram TS header byte 3:
	// the continuity counter.
	bad := append([]byte(nil), clean2...)
	hdrLen := len(bad) - TSPayloadSize
	bad[hdrLen+3*ts.PacketSize+3] ^= 0x01
	err := recv.deliverWire(bad)
	if !errors.Is(err, ErrFraming) {
		t.Fatalf("corrupted CC: %v, want ErrFraming", err)
	}
	s := recv.Stats()
	if s.FramingErrors != 1 {
		t.Errorf("framing errors %d, want 1", s.FramingErrors)
	}
	if s.Accepted != 1 {
		t.Errorf("accepted %d, want 1 (corrupted packet must not be delivered)", s.Accepted)
	}
	if got := reg.Counter(MetricTSCCDiscontinuities).Value(); got == 0 {
		t.Error("ts.cc_discontinuities not incremented")
	}

	// A corrupted PSI section lands in ts.crc_errors instead.
	send2 := NewTSFraming()
	recv2 := NewAgent("C", AddrPort{Addr: "127.0.0.1", Port: 40004})
	recv2.SetFraming(NewTSFraming())
	recv2.SetExpecting(from, sig.G711, true)
	badPSI := tsWireDatagram(send2, from, 1)
	hdrLen = len(badPSI) - TSPayloadSize
	badPSI[hdrLen+ts.PacketSize-1] ^= 0x01 // last CRC byte of the PAT
	if err := recv2.deliverWire(badPSI); !errors.Is(err, ErrFraming) {
		t.Fatalf("corrupted PAT: %v, want ErrFraming", err)
	}
	if got := reg.Counter(MetricTSCRCErrors).Value(); got == 0 {
		t.Error("ts.crc_errors not incremented")
	}
	if recv2.Stats().Accepted != 0 {
		t.Error("corrupted PSI datagram was delivered")
	}

	// A truncated payload is counted, not panicked on.
	recv3 := NewAgent("D", AddrPort{Addr: "127.0.0.1", Port: 40006})
	recv3.SetFraming(NewTSFraming())
	short := tsWireDatagram(send2, from, 2)
	if err := recv3.deliverWire(short[:len(short)-100]); !errors.Is(err, ErrFraming) {
		t.Fatalf("truncated payload: %v, want ErrFraming", err)
	}
}

// TestTSFramingSeqMismatch rejects a replayed payload whose embedded
// sequence number disagrees with the wire header.
func TestTSFramingSeqMismatch(t *testing.T) {
	from := AddrPort{Addr: "127.0.0.1", Port: 40000}
	recv := NewAgent("B", AddrPort{Addr: "127.0.0.1", Port: 40002})
	recv.SetFraming(NewTSFraming())
	recv.SetExpecting(from, sig.G711, true)

	send := NewTSFraming()
	payload := send.AppendPayload(nil, 5)
	replay := AppendPacket(nil, Packet{From: from, Codec: sig.G711, Seq: 9, Payload: payload})
	if err := recv.deliverWire(replay); !errors.Is(err, ErrFraming) {
		t.Fatalf("seq-mismatched payload: %v, want ErrFraming", err)
	}
	if recv.Stats().Accepted != 0 {
		t.Error("mismatched payload was delivered")
	}
}

// TestOpaqueFraming checks the control framing: same-size raw
// payloads round-trip, and corruption is caught by the seq stamp.
func TestOpaqueFraming(t *testing.T) {
	from := AddrPort{Addr: "127.0.0.1", Port: 40000}
	recv := NewAgent("B", AddrPort{Addr: "127.0.0.1", Port: 40002})
	recv.SetFraming(NewOpaqueFraming(TSPayloadSize))
	recv.SetExpecting(from, sig.G711, true)

	send := NewOpaqueFraming(TSPayloadSize)
	ok := AppendPacket(nil, Packet{From: from, Codec: sig.G711, Seq: 3, Payload: send.AppendPayload(nil, 3)})
	if err := recv.deliverWire(ok); err != nil {
		t.Fatalf("clean opaque datagram rejected: %v", err)
	}
	bad := append([]byte(nil), ok...)
	bad[len(bad)-1] ^= 0xFF // tail corruption changes nothing the stamp covers
	if err := recv.deliverWire(bad); err != nil {
		t.Fatalf("tail corruption is beyond the opaque check: %v", err)
	}
	bad[len(bad)-TSPayloadSize] ^= 0xFF // corrupt the seq stamp
	if err := recv.deliverWire(bad); !errors.Is(err, ErrFraming) {
		t.Fatalf("corrupted opaque stamp: %v, want ErrFraming", err)
	}
	if s := recv.Stats(); s.Accepted != 2 || s.FramingErrors != 1 {
		t.Fatalf("stats %+v, want 2 accepted / 1 framing error", s)
	}
}

// TestUDPPlaneTSFraming runs framed media over real UDP sockets: the
// plane-installed factory gives each agent private framing state, and
// a paced stream arrives with zero integrity errors.
func TestUDPPlaneTSFraming(t *testing.T) {
	p := NewUDPPlane()
	p.SetFraming(func() Framing { return NewTSFraming() })
	defer p.Close()

	aAddr := AddrPort{Addr: "127.0.0.1", Port: freeUDPPort(t)}
	bAddr := AddrPort{Addr: "127.0.0.1", Port: freeUDPPort(t)}
	a := p.Agent("A", aAddr)
	b := p.Agent("B", bAddr)
	a.SetSending(bAddr, sig.G711)
	b.SetExpecting(aAddr, sig.G711, true)

	p.Tick(100)
	await(t, "framed delivery", func() bool { return b.Stats().Accepted >= 100 })
	bs := b.Stats()
	if bs.FramingErrors != 0 {
		t.Fatalf("framing errors on a clean wire: %d", bs.FramingErrors)
	}
	ds := b.Framing().(*TSFraming).DemuxStats()
	if ds.Errors() != 0 {
		t.Fatalf("demux errors on a clean wire: %+v", ds)
	}
	if ds.Packets < 100*TSPacketsPerDatagram {
		t.Fatalf("demuxed %d TS packets, want at least %d", ds.Packets, 100*TSPacketsPerDatagram)
	}
	for _, err := range p.Errs() {
		t.Errorf("plane error: %v", err)
	}
}
