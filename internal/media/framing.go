// The pluggable payload layer of the media plane. The wire codec's
// header (source, codec, sequence number) classifies packets; a
// Framing fills and checks the bytes that ride after it, so the same
// staging/batching/delivery pipeline can carry anything from empty
// stand-in packets to real MPEG-TS container streams.
//
// Two framings ship here:
//
//   - TSFraming emits genuine single-program MPEG-TS: each packet's
//     payload is a 7×188-byte burst — a PES-encapsulated elementary
//     stream frame with PTS and PCR, with a PAT+PMT refresh replacing
//     the head of every psiEvery-th burst. The receive half demuxes
//     and validates every burst (sync bytes, per-PID continuity, PSI
//     CRC32, PES start codes, the sequence number embedded in the
//     elementary stream) and feeds the ts.* telemetry.
//   - OpaqueFraming carries the same number of raw bytes with no
//     container structure: the control in framed-vs-opaque benchmarks,
//     isolating what the container itself costs.
//
// Both are allocation-free in steady state: all mutable state — the
// muxer's per-PID continuity counters, the demuxer's expectation
// table, the elementary-stream template — lives in the framing value,
// which the plane creates once per agent (the "per-sender arena"), and
// payloads are appended into the sender's staging arena.
package media

import (
	"encoding/binary"
	"errors"
	"time"

	"ipmedia/internal/telemetry"
	"ipmedia/internal/ts"
)

// Telemetry instrument names exported by the framing layer.
const (
	// MetricTSPackets counts TS packets demuxed at receivers.
	MetricTSPackets = "ts.packets"
	// MetricTSPSISections counts valid PAT/PMT sections received.
	MetricTSPSISections = "ts.psi_sections"
	// MetricTSCCDiscontinuities counts continuity-counter jumps seen at
	// receivers (packet loss or corruption on a PID).
	MetricTSCCDiscontinuities = "ts.cc_discontinuities"
	// MetricTSCRCErrors counts undecodable TS payloads: failed PSI
	// CRC32s plus structural failures (lost sync, bad adaptation
	// fields, bad PES headers, payload/sequence mismatches).
	MetricTSCRCErrors = "ts.crc_errors"
	// MetricTSPCRJitter is the histogram of |wall-clock spacing − PCR
	// spacing| between consecutive program-clock references.
	MetricTSPCRJitter = "ts.pcr_jitter"
)

// ErrFraming classifies payload-integrity failures reported by a
// Framing's CheckPayload: the plane routes them to the framing
// counters (ts.crc_errors et al.) rather than media.decode_errors,
// and the packet is not delivered.
var ErrFraming = errors.New("media: framing integrity")

// Static wrapped forms, so the per-packet error path allocates
// nothing.
var (
	errFramingCC    = errorString("ts continuity counter discontinuity")
	errFramingCRC   = errorString("ts PSI section CRC mismatch")
	errFramingSync  = errorString("ts sync loss")
	errFramingPES   = errorString("ts bad PES header")
	errFramingSeq   = errorString("ts payload sequence mismatch")
	errFramingEmpty = errorString("empty payload from framed sender")
	errOpaqueSeq    = errorString("opaque payload mismatch")
)

// errorString is a framing error that wraps ErrFraming without
// per-error allocation.
type errorString string

func (e errorString) Error() string   { return "media: framing integrity: " + string(e) }
func (e errorString) Unwrap() error   { return ErrFraming }
func (e errorString) Is(t error) bool { return t == ErrFraming }

// Framing fills and checks the payload carried after the wire header
// of each media packet. One instance serves one agent: AppendPayload
// is called only from the agent's transmit path (pacer or Tick driver)
// and CheckPayload only from its delivery path (socket reader or mem
// plane), so the two halves may keep separate unsynchronized state but
// must not share any.
type Framing interface {
	// Name labels the framing in benchmarks and reports.
	Name() string
	// PayloadSize returns the payload size AppendPayload emits, for
	// arena-stride checks.
	PayloadSize() int
	// AppendPayload appends packet seq's payload to dst and returns
	// the extended buffer.
	AppendPayload(dst []byte, seq uint64) []byte
	// CheckPayload validates one received payload. A non-nil error
	// (wrapping ErrFraming) means the packet must not be delivered.
	CheckPayload(seq uint64, payload []byte) error
}

// FramingFactory builds one Framing per agent; planes call it at
// registration so every agent gets private framing state.
type FramingFactory func() Framing

// NewFramingFactory resolves a framing name ("ts", "opaque", "none")
// to a factory; harnesses use it to select framing from a flag. The
// opaque factory emits TS-sized raw payloads — the control leg for
// framed-vs-opaque comparisons.
func NewFramingFactory(name string) (FramingFactory, bool) {
	switch name {
	case "ts":
		return func() Framing { return NewTSFraming() }, true
	case "opaque":
		return func() Framing { return NewOpaqueFraming(TSPayloadSize) }, true
	case "none", "":
		return nil, true
	}
	return nil, false
}

// The fixed shape of the TS framing's bursts.
const (
	// TSPacketsPerDatagram is the classic MPEG-TS-over-UDP packing:
	// seven 188-byte packets per datagram.
	TSPacketsPerDatagram = 7
	// TSPayloadSize is the framed payload size: 1316 bytes.
	TSPayloadSize = TSPacketsPerDatagram * ts.PacketSize

	// tsPSIEvery is the PAT/PMT refresh cadence in datagrams.
	tsPSIEvery = 64

	// The single program's layout.
	tsTransportStreamID = 1
	tsProgramNumber     = 1
	tsPMTPID            = 0x100
	tsMediaPID          = 0x101

	// Per-datagram clock steps: one burst nominally carries 20 ms of
	// media, i.e. 1800 ticks of the 90 kHz PTS clock and 540000 ticks
	// of the 27 MHz PCR clock.
	tsPTSPerDatagram = 1800
	tsPCRPerDatagram = 540000
)

// tsStreams is the PMT's elementary-stream loop: one private-data
// stream (the paper's G.711-style audio has no registered MPEG type).
var tsStreams = []ts.Stream{{Type: ts.StreamTypePrivate, PID: tsMediaPID}}

// TSFraming carries single-program MPEG-TS bursts. See the package
// comment for the burst shape; Muxer/Demuxer state lives inline so a
// framed sender costs one instance, not per-packet allocations.
type TSFraming struct {
	// Transmit half (pacer/Tick goroutine only).
	mux ts.Muxer
	// esFull and esPSI are the elementary-stream frame templates for
	// plain and PSI-bearing bursts; the leading 8 bytes carry the
	// packet sequence number, stamped per burst.
	esFull [1266]byte // ts.PESCapacity(7, withPCR)
	esPSI  [898]byte  // ts.PESCapacity(5, withPCR)

	// Receive half (delivery goroutine only).
	demux      ts.Demuxer
	prev       ts.Stats // last published demux stats, for counter deltas
	emitFn     func(ts.Parsed)
	wantSeq    uint64
	seqOK      bool
	lastPCR    uint64
	lastPCRAt  int64 // wall clock of the previous PCR, UnixNano
	pcrCounted uint64

	mPackets *telemetry.Counter
	mPSI     *telemetry.Counter
	mCC      *telemetry.Counter
	mCRC     *telemetry.Counter
	mJitter  *telemetry.Histogram
}

// NewTSFraming creates a TS framing with fresh mux/demux state.
func NewTSFraming() *TSFraming {
	f := &TSFraming{
		mPackets: telemetry.C(MetricTSPackets),
		mPSI:     telemetry.C(MetricTSPSISections),
		mCC:      telemetry.C(MetricTSCCDiscontinuities),
		mCRC:     telemetry.C(MetricTSCRCErrors),
		mJitter:  telemetry.H(MetricTSPCRJitter),
	}
	if len(f.esFull) != ts.PESCapacity(TSPacketsPerDatagram, true) ||
		len(f.esPSI) != ts.PESCapacity(TSPacketsPerDatagram-2, true) {
		panic("media: TS frame templates out of step with ts.PESCapacity")
	}
	for i := range f.esFull {
		f.esFull[i] = byte(i) // deterministic "media" bytes
	}
	for i := range f.esPSI {
		f.esPSI[i] = byte(i)
	}
	f.emitFn = f.onPacket
	return f
}

// Name implements Framing.
func (f *TSFraming) Name() string { return "ts" }

// PayloadSize implements Framing: every burst is 7 packets, whether
// PSI-bearing or not.
func (f *TSFraming) PayloadSize() int { return TSPayloadSize }

// AppendPayload muxes burst seq: PAT+PMT head on the PSI cadence, then
// one PES-encapsulated frame stamped with seq, PTS, and PCR. The
// result is always exactly TSPayloadSize bytes.
func (f *TSFraming) AppendPayload(dst []byte, seq uint64) []byte {
	if seq == 1 {
		// A new stream's first burst carries the discontinuity indicator
		// (§2.4.3.4): a receiver switched here mid-stream — e.g. a viewer
		// seeking onto a fresh server session — accepts the
		// continuity-counter restart like a splice, not corruption.
		f.mux.SetDiscontinuity(true)
	}
	es := f.esFull[:]
	if seq%tsPSIEvery == 1 {
		dst, _ = f.mux.AppendPAT(dst, tsTransportStreamID, tsProgramNumber, tsPMTPID)
		dst, _ = f.mux.AppendPMT(dst, tsPMTPID, tsProgramNumber, tsMediaPID, tsStreams)
		es = f.esPSI[:]
	}
	binary.BigEndian.PutUint64(es, seq)
	dst, _ = f.mux.AppendPES(dst, tsMediaPID, ts.StreamIDAudio,
		seq*tsPTSPerDatagram, true, seq*tsPCRPerDatagram, es)
	if seq == 1 {
		f.mux.SetDiscontinuity(false)
	}
	return dst
}

// CheckPayload demuxes and validates one received burst, updating the
// ts.* telemetry from the demuxer's counters. Any integrity failure
// returns an ErrFraming-wrapping error and the packet is not
// delivered.
func (f *TSFraming) CheckPayload(seq uint64, payload []byte) error {
	if len(payload) == 0 {
		f.mCRC.Inc()
		return errFramingEmpty
	}
	f.wantSeq, f.seqOK = seq, false
	err := f.demux.Feed(payload, f.emitFn)
	f.publishStats()
	f.observePCR()
	if err != nil {
		return wrapTSErr(err)
	}
	if !f.seqOK {
		f.mCRC.Inc()
		return errFramingSeq
	}
	return nil
}

// onPacket checks the sequence number embedded in the burst's leading
// elementary-stream bytes against the wire header's.
func (f *TSFraming) onPacket(p ts.Parsed) {
	if !p.PUSI || p.PID != tsMediaPID || f.seqOK {
		return
	}
	_, _, _, _, es, err := ts.ParsePES(p.Payload)
	if err == nil && len(es) >= 8 && binary.BigEndian.Uint64(es) == f.wantSeq {
		f.seqOK = true
	}
}

// publishStats feeds the telemetry counters with the demuxer's
// since-last-call deltas.
func (f *TSFraming) publishStats() {
	s := f.demux.Stats()
	f.mPackets.Add(s.Packets - f.prev.Packets)
	f.mPSI.Add(s.PSISections - f.prev.PSISections)
	f.mCC.Add(s.CCDiscontinuities - f.prev.CCDiscontinuities)
	f.mCRC.Add(s.CRCErrors + s.SyncErrors + s.PESErrors -
		f.prev.CRCErrors - f.prev.SyncErrors - f.prev.PESErrors)
	f.prev = s
}

// observePCR feeds the PCR-jitter histogram: the deviation between
// wall-clock spacing and PCR spacing of consecutive clock references.
// Skipped entirely when telemetry is off.
func (f *TSFraming) observePCR() {
	if f.mJitter == nil {
		return
	}
	pcr, n := f.demux.PCR()
	if n == f.pcrCounted {
		return
	}
	now := time.Now().UnixNano()
	if f.pcrCounted > 0 && pcr > f.lastPCR {
		pcrNS := int64((pcr - f.lastPCR) * 1000 / 27) // 27 MHz ticks → ns
		jit := now - f.lastPCRAt - pcrNS
		if jit < 0 {
			jit = -jit
		}
		f.mJitter.Observe(time.Duration(jit))
	}
	f.lastPCR, f.lastPCRAt, f.pcrCounted = pcr, now, n
}

// DemuxStats exposes the receive half's counters (tests, examples).
func (f *TSFraming) DemuxStats() ts.Stats { return f.demux.Stats() }

// wrapTSErr maps a ts demux error to its static ErrFraming-wrapping
// form without allocating.
func wrapTSErr(err error) error {
	switch {
	case errors.Is(err, ts.ErrCC):
		return errFramingCC
	case errors.Is(err, ts.ErrCRC):
		return errFramingCRC
	case errors.Is(err, ts.ErrPES):
		return errFramingPES
	default:
		return errFramingSync
	}
}

// OpaqueFraming carries size raw bytes with no container structure:
// the control leg that isolates the container's cost in
// framed-vs-opaque benchmarks. The leading 8 bytes carry the sequence
// number so the receive half still detects payload corruption.
type OpaqueFraming struct {
	buf  []byte
	mCRC *telemetry.Counter
}

// NewOpaqueFraming creates an opaque framing of the given payload
// size (at least 8 bytes for the sequence stamp).
func NewOpaqueFraming(size int) *OpaqueFraming {
	if size < 8 {
		size = 8
	}
	f := &OpaqueFraming{buf: make([]byte, size), mCRC: telemetry.C(MetricTSCRCErrors)}
	for i := range f.buf {
		f.buf[i] = byte(i)
	}
	return f
}

// Name implements Framing.
func (f *OpaqueFraming) Name() string { return "opaque" }

// PayloadSize implements Framing.
func (f *OpaqueFraming) PayloadSize() int { return len(f.buf) }

// AppendPayload stamps seq and appends the raw template.
func (f *OpaqueFraming) AppendPayload(dst []byte, seq uint64) []byte {
	binary.BigEndian.PutUint64(f.buf, seq)
	return append(dst, f.buf...)
}

// CheckPayload verifies the size and the sequence stamp.
func (f *OpaqueFraming) CheckPayload(seq uint64, payload []byte) error {
	if len(payload) != len(f.buf) || binary.BigEndian.Uint64(payload) != seq {
		f.mCRC.Inc()
		return errOpaqueSeq
	}
	return nil
}
