package media

import (
	"bytes"
	"testing"

	"ipmedia/internal/sig"
)

// FuzzPacket checks that arbitrary bytes never panic the media packet
// decoder or the wire classifier, and that anything that decodes
// re-encodes to an equivalent packet (decode∘encode∘decode is the
// identity), matching FuzzUnmarshalEnvelope's pattern for the
// signaling codec.
func FuzzPacket(f *testing.F) {
	seeds := []Packet{
		{From: AddrPort{Addr: "127.0.0.1", Port: 5004}, Codec: sig.G711, Seq: 1},
		{From: AddrPort{Addr: "10.0.0.2", Port: 65535}, Codec: sig.G726, Seq: 1<<63 + 9},
		{From: AddrPort{}, Codec: "", Seq: 0},
		{From: AddrPort{Addr: "host-with-a-much-longer-symbolic-name", Port: 1}, Codec: "mpeg2", Seq: 42},
	}
	for _, pkt := range seeds {
		f.Add(marshalPacket(pkt))
	}
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0, 9, 'x'})
	f.Add([]byte{0, 1, 'a', 0, 0, 0, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		// The wire classifier must never panic, and must agree with the
		// decoder on validity.
		a := NewAgent("fuzz", AddrPort{Addr: "z", Port: 1})
		wireErr := a.deliverWire(data)

		pkt, err := unmarshalPacket(data)
		if (err == nil) != (wireErr == nil) {
			t.Fatalf("decoder and classifier disagree: unmarshal=%v deliverWire=%v", err, wireErr)
		}
		if err != nil {
			return
		}
		re := marshalPacket(pkt)
		if !bytes.Equal(AppendPacket(nil, pkt), re) {
			t.Fatalf("AppendPacket and marshalPacket disagree on %+v", pkt)
		}
		pkt2, err := unmarshalPacket(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		pkt2.To = pkt.To
		if pkt2.From != pkt.From || pkt2.Codec != pkt.Codec || pkt2.Seq != pkt.Seq ||
			!bytes.Equal(pkt2.Payload, pkt.Payload) {
			t.Fatalf("round trip changed packet: %+v != %+v", pkt2, pkt)
		}
		if !bytes.Equal(re, marshalPacket(pkt2)) {
			t.Fatalf("encoding not idempotent:\n%v\n%v", re, marshalPacket(pkt2))
		}
	})
}
