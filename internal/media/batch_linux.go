//go:build linux && (amd64 || arm64)

// The Linux batched-syscall fast path: raw sendmmsg/recvmmsg through
// the stdlib syscall package, so a burst of batchSize datagrams costs
// one kernel crossing instead of batchSize. The header and iovec
// arrays and the receive arena are allocated once per socket and
// reused for every batch; the RawConn callbacks are cached closures so
// the steady state allocates nothing. Restricted to 64-bit targets
// whose struct mmsghdr carries four bytes of padding after msg_len —
// other platforms take the portable loop in batch_portable.go.
package media

import (
	"net"
	"syscall"
	"unsafe"
)

// batchIOSupported reports compile-time availability of the
// sendmmsg/recvmmsg fast path.
const batchIOSupported = true

// mmsghdr mirrors the kernel's struct mmsghdr on 64-bit Linux.
type mmsghdr struct {
	hdr syscall.Msghdr
	nr  uint32 // msg_len: bytes received, filled by recvmmsg
	_   [4]byte
}

// batchIO is per-socket batched-syscall state. It is not safe for
// concurrent use; each socket's reader or sender owns one exclusively.
type batchIO struct {
	raw  syscall.RawConn
	hdrs []mmsghdr
	iovs []syscall.Iovec
	bufs [][]byte // receive arena views; nil on send-side instances

	// Results threaded through the cached RawConn callbacks.
	sendMsgs [][]byte
	sendN    int
	opN      int
	opErr    syscall.Errno
	recvFn   func(fd uintptr) bool
	sendFn   func(fd uintptr) bool
}

// newBatchIO builds batch state for up to n datagrams per syscall.
// bufSize > 0 additionally allocates a receive arena of n buffers
// (send-side callers pass 0). Returns nil if the socket exposes no
// RawConn, in which case the caller falls back to the portable loop.
func newBatchIO(conn *net.UDPConn, n, bufSize int) *batchIO {
	raw, err := conn.SyscallConn()
	if err != nil {
		return nil
	}
	b := &batchIO{raw: raw, hdrs: make([]mmsghdr, n), iovs: make([]syscall.Iovec, n)}
	if bufSize > 0 {
		arena := make([]byte, n*bufSize)
		b.bufs = make([][]byte, n)
		for i := range b.bufs {
			b.bufs[i] = arena[i*bufSize : (i+1)*bufSize]
			b.iovs[i].Base = &b.bufs[i][0]
			b.iovs[i].SetLen(bufSize)
			b.hdrs[i].hdr.Iov = &b.iovs[i]
			b.hdrs[i].hdr.Iovlen = 1
		}
	}
	b.recvFn = b.doRecv
	b.sendFn = b.doSend
	return b
}

// doRecv runs one recvmmsg inside RawConn.Read: returning false parks
// the goroutine in the netpoller until the socket is readable again.
func (b *batchIO) doRecv(fd uintptr) bool {
	n, _, e := syscall.Syscall6(sysRECVMMSG, fd,
		uintptr(unsafe.Pointer(&b.hdrs[0])), uintptr(len(b.hdrs)),
		syscall.MSG_DONTWAIT, 0, 0)
	if e == syscall.EAGAIN {
		return false
	}
	b.opErr = e
	b.opN = int(n)
	return true
}

// recv fills the arena with one batch of datagrams and invokes deliver
// for each, blocking in the poller until the socket is readable.
func (b *batchIO) recv(deliver func([]byte)) (int, error) {
	b.opN, b.opErr = 0, 0
	if err := b.raw.Read(b.recvFn); err != nil {
		return 0, err
	}
	if b.opErr != 0 {
		return 0, b.opErr
	}
	for i := 0; i < b.opN; i++ {
		deliver(b.bufs[i][:b.hdrs[i].nr])
	}
	return b.opN, nil
}

// doSend runs sendmmsg rounds inside RawConn.Write until the staged
// batch is fully transmitted, repointing the iovecs at the unsent tail
// after a partial send. Returning false parks until writable.
func (b *batchIO) doSend(fd uintptr) bool {
	for b.sendN < len(b.sendMsgs) {
		k := 0
		for i := b.sendN; i < len(b.sendMsgs) && k < len(b.iovs); i++ {
			m := b.sendMsgs[i]
			b.iovs[k].Base = &m[0]
			b.iovs[k].SetLen(len(m))
			b.hdrs[k].hdr.Iov = &b.iovs[k]
			b.hdrs[k].hdr.Iovlen = 1
			b.hdrs[k].hdr.Name = nil
			b.hdrs[k].hdr.Namelen = 0
			k++
		}
		n, _, e := syscall.Syscall6(sysSENDMMSG, fd,
			uintptr(unsafe.Pointer(&b.hdrs[0])), uintptr(k),
			syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN {
			return false
		}
		if e != 0 {
			b.opErr = e
			return true
		}
		b.sendN += int(n)
	}
	return true
}

// send transmits msgs on the connected socket in as few sendmmsg
// calls as the kernel accepts.
func (b *batchIO) send(msgs [][]byte) error {
	b.sendMsgs, b.sendN, b.opErr = msgs, 0, 0
	err := b.raw.Write(b.sendFn)
	b.sendMsgs = nil
	if err != nil {
		return err
	}
	if b.opErr != 0 {
		return b.opErr
	}
	return nil
}
