//go:build linux && arm64

package media

// The stdlib syscall tables were frozen before sendmmsg was assigned;
// the numbers below are ABI-stable for this architecture.
const (
	sysRECVMMSG = 243
	sysSENDMMSG = 269
)
