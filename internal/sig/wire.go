// Wire encoding for envelopes. Signaling channels between physical
// components run over TCP (paper Section I); this file defines the
// framed binary format used by the TCP transport. The same
// deterministic encoding doubles as the state fingerprint of in-flight
// signals inside the model checker.
//
// The encode path is append-style: every encoder appends to a
// caller-provided []byte and returns the extended slice, so both the
// TCP hot path (via a sync.Pool of frame buffers in WriteFrame) and
// the model checker's per-state fingerprinting run without allocating.
// The decode path reuses the caller's payload buffer and interns the
// protocol's well-known strings (codec and medium names), so
// steady-state signaling allocates only for genuinely novel strings.
package sig

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Frame format: every envelope is framed as
//
//	uint32 length | payload
//
// and the payload is a tag-structured binary encoding with
// length-prefixed strings. All integers are big-endian.

const (
	// MaxFrame bounds the size of a single envelope on the wire. Media
	// control signals are tiny; anything near this limit indicates a
	// corrupted stream.
	MaxFrame = 64 << 10

	// MaxCodecs bounds the codec list of a descriptor on the wire. The
	// decoder has always rejected longer lists; the encoder now rejects
	// them too, so every encodable envelope is decodable (encode/decode
	// symmetry).
	MaxCodecs = 64

	// MaxAttrs bounds the attribute map of a meta-signal on the wire,
	// symmetric with the decoder's limit.
	MaxAttrs = 1024

	// maxString is the largest string representable by the uint16
	// length prefix.
	maxString = 1<<16 - 1

	tagSignal byte = 1
	tagMeta   byte = 2
	// Sequenced variants: the payload is prefixed with the envelope's
	// uint32 sequence number, stamped by the reliable transport layer.
	// Unsequenced envelopes keep the legacy tags, so the format seen by
	// the model checker's fingerprints and by non-reliable channels is
	// unchanged.
	tagSignalSeq byte = 3
	tagMetaSeq   byte = 4
)

var (
	// ErrFrameTooLarge reports an incoming frame exceeding MaxFrame.
	ErrFrameTooLarge = errors.New("sig: frame exceeds maximum size")
	// ErrCorrupt reports an undecodable payload.
	ErrCorrupt = errors.New("sig: corrupt envelope encoding")
	// ErrUnencodable reports an envelope that cannot be represented in
	// the wire format (too many codecs or attributes, or an oversized
	// string). It wraps ErrCorrupt: emitting such an envelope would
	// corrupt the stream for the peer, so the encoders reject it
	// instead of silently truncating.
	ErrUnencodable = fmt.Errorf("%w: unencodable envelope", ErrCorrupt)
)

// ---------------------------------------------------------------------
// Append-style encoders.

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v>>8), byte(v))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// appendString appends the uint16 length prefix and the bytes of s.
// Strings longer than maxString are rejected by Envelope.Validate on
// the wire paths; the model checker's fingerprint path never produces
// them.
func appendString(dst []byte, s string) []byte {
	dst = appendU16(dst, uint16(len(s)))
	return append(dst, s...)
}

// AppendDescriptor appends the deterministic encoding of d to dst and
// returns the extended slice.
func AppendDescriptor(dst []byte, d Descriptor) []byte {
	dst = appendString(dst, d.ID.Origin)
	dst = appendU32(dst, d.ID.Seq)
	dst = appendString(dst, d.Addr)
	dst = appendU32(dst, uint32(d.Port))
	dst = appendU32(dst, uint32(len(d.Codecs)))
	for _, c := range d.Codecs {
		dst = appendString(dst, string(c))
	}
	return dst
}

// AppendSelector appends the deterministic encoding of s to dst and
// returns the extended slice.
func AppendSelector(dst []byte, s Selector) []byte {
	dst = appendString(dst, s.Answers.Origin)
	dst = appendU32(dst, s.Answers.Seq)
	dst = appendString(dst, s.Addr)
	dst = appendU32(dst, uint32(s.Port))
	dst = appendString(dst, string(s.Codec))
	return dst
}

// AppendSignal appends the deterministic encoding of g to dst and
// returns the extended slice.
func AppendSignal(dst []byte, g Signal) []byte {
	dst = append(dst, byte(g.Kind))
	switch g.Kind {
	case KindOpen:
		dst = appendString(dst, string(g.Medium))
		dst = AppendDescriptor(dst, g.Desc)
	case KindOack, KindDescribe:
		dst = AppendDescriptor(dst, g.Desc)
	case KindSelect:
		dst = AppendSelector(dst, g.Sel)
	}
	return dst
}

// appendEnvelope appends the envelope payload encoding to dst. The
// envelope must already be validated.
func appendEnvelope(dst []byte, e Envelope) []byte {
	if e.IsMeta() {
		if e.Seq != 0 {
			dst = append(dst, tagMetaSeq)
			dst = appendU32(dst, e.Seq)
		} else {
			dst = append(dst, tagMeta)
		}
		dst = append(dst, byte(e.Meta.Kind))
		dst = appendString(dst, e.Meta.App)
		// Attrs are kept in canonical sorted order (Validate enforces
		// it), so the encoder emits them as-is: no per-envelope key
		// slice, no sorting — the encode path is allocation-free for
		// metas too.
		dst = appendU32(dst, uint32(len(e.Meta.Attrs)))
		for _, a := range e.Meta.Attrs {
			dst = appendString(dst, a.Key)
			dst = appendString(dst, a.Val)
		}
		return dst
	}
	if e.Seq != 0 {
		dst = append(dst, tagSignalSeq)
		dst = appendU32(dst, e.Seq)
	} else {
		dst = append(dst, tagSignal)
	}
	dst = appendU32(dst, uint32(e.Tunnel))
	return AppendSignal(dst, e.Sig)
}

// ---------------------------------------------------------------------
// Encode-side validation: symmetric with the decoder's limits, so the
// encoders never emit bytes the decoders reject.

func validString(what, s string) error {
	if len(s) > maxString {
		return fmt.Errorf("%w: %s is %d bytes (max %d)", ErrUnencodable, what, len(s), maxString)
	}
	return nil
}

func (d Descriptor) validate() error {
	if len(d.Codecs) > MaxCodecs {
		return fmt.Errorf("%w: descriptor has %d codecs (max %d)", ErrUnencodable, len(d.Codecs), MaxCodecs)
	}
	if err := validString("descriptor origin", d.ID.Origin); err != nil {
		return err
	}
	if err := validString("descriptor addr", d.Addr); err != nil {
		return err
	}
	for _, c := range d.Codecs {
		if err := validString("codec name", string(c)); err != nil {
			return err
		}
	}
	return nil
}

func (s Selector) validate() error {
	if err := validString("selector origin", s.Answers.Origin); err != nil {
		return err
	}
	if err := validString("selector addr", s.Addr); err != nil {
		return err
	}
	return validString("codec name", string(s.Codec))
}

// Validate reports whether the envelope is representable in the wire
// format: at most MaxCodecs codecs per descriptor, at most MaxAttrs
// meta attributes, and no string longer than 64KiB-1. The encoders
// reject envelopes that fail validation, keeping encode and decode
// symmetric.
func (e Envelope) Validate() error {
	if e.IsMeta() {
		m := e.Meta
		if len(m.Attrs) > MaxAttrs {
			return fmt.Errorf("%w: meta-signal has %d attrs (max %d)", ErrUnencodable, len(m.Attrs), MaxAttrs)
		}
		if !attrsSorted(m.Attrs) {
			return fmt.Errorf("%w: meta attrs not in canonical order (sorted unique keys; build with NewAttrs or Set)", ErrUnencodable)
		}
		if err := validString("meta app", m.App); err != nil {
			return err
		}
		for _, a := range m.Attrs {
			if err := validString("attr key", a.Key); err != nil {
				return err
			}
			if err := validString("attr value", a.Val); err != nil {
				return err
			}
		}
		return nil
	}
	if e.Tunnel < 0 || int64(e.Tunnel) > int64(^uint32(0)) {
		return fmt.Errorf("%w: tunnel index %d out of range", ErrUnencodable, e.Tunnel)
	}
	g := e.Sig
	switch g.Kind {
	case KindOpen:
		if err := validString("medium", string(g.Medium)); err != nil {
			return err
		}
		return g.Desc.validate()
	case KindOack, KindDescribe:
		return g.Desc.validate()
	case KindSelect:
		return g.Sel.validate()
	case KindClose, KindCloseAck:
		return nil
	default:
		return fmt.Errorf("%w: unknown signal kind %d", ErrUnencodable, g.Kind)
	}
}

// AppendBinary validates the envelope and appends its payload encoding
// (without the length frame) to dst, returning the extended slice.
// This is the zero-allocation encode path: with a caller-managed
// buffer it performs no allocation for tunnel signals or meta-signals
// (attrs are stored pre-sorted, so no ordering scratch is needed).
func (e Envelope) AppendBinary(dst []byte) ([]byte, error) {
	if err := e.Validate(); err != nil {
		return dst, err
	}
	return appendEnvelope(dst, e), nil
}

// Marshal encodes the envelope payload (without the length frame) into
// a fresh slice. It panics on an envelope that violates the wire
// limits; use AppendBinary to handle the error instead.
func (e Envelope) Marshal() []byte {
	p, err := e.AppendBinary(nil)
	if err != nil {
		panic(err)
	}
	return p
}

// ---------------------------------------------------------------------
// Decoders.

// wreader is a cursor over a payload slice; unlike bytes.Reader it
// lives on the stack.
type wreader struct {
	p   []byte
	off int
}

func (r *wreader) u8() (byte, error) {
	if r.off >= len(r.p) {
		return 0, ErrCorrupt
	}
	b := r.p[r.off]
	r.off++
	return b, nil
}

func (r *wreader) u32() (uint32, error) {
	if r.off+4 > len(r.p) {
		return 0, ErrCorrupt
	}
	v := binary.BigEndian.Uint32(r.p[r.off:])
	r.off += 4
	return v, nil
}

// strBytes returns the raw bytes of the next length-prefixed string,
// aliasing the payload buffer (valid only until the caller's buffer is
// reused).
func (r *wreader) strBytes() ([]byte, error) {
	if r.off+2 > len(r.p) {
		return nil, ErrCorrupt
	}
	n := int(binary.BigEndian.Uint16(r.p[r.off:]))
	r.off += 2
	if r.off+n > len(r.p) {
		return nil, ErrCorrupt
	}
	b := r.p[r.off : r.off+n]
	r.off += n
	return b, nil
}

// str decodes the next string, resolving it through the intern table:
// every well-known protocol name and every seeded deployment name
// decodes to its shared canonical copy with no allocation; genuinely
// novel strings are copied out of the buffer.
func (r *wreader) str() (string, error) {
	b, err := r.strBytes()
	if err != nil {
		return "", err
	}
	return defaultIntern.intern(b, false), nil
}

// strLearn is str for closed vocabularies (attr keys, app names):
// novel strings are additionally interned, bounded by the table
// capacity, so a vocabulary discovered at runtime converges to
// zero-alloc decoding.
func (r *wreader) strLearn() (string, error) {
	b, err := r.strBytes()
	if err != nil {
		return "", err
	}
	return defaultIntern.intern(b, true), nil
}

func decodeDescriptor(r *wreader) (Descriptor, error) {
	var d Descriptor
	var err error
	if d.ID.Origin, err = r.str(); err != nil {
		return d, err
	}
	if d.ID.Seq, err = r.u32(); err != nil {
		return d, err
	}
	if d.Addr, err = r.str(); err != nil {
		return d, err
	}
	port, err := r.u32()
	if err != nil {
		return d, err
	}
	d.Port = int(port)
	n, err := r.u32()
	if err != nil {
		return d, err
	}
	if n > MaxCodecs {
		return d, ErrCorrupt
	}
	if n > 0 {
		if d.Codecs, err = decodeCodecList(r, int(n)); err != nil {
			return d, err
		}
	}
	return d, nil
}

// decodeCodecList decodes n length-prefixed codec names. Whole lists
// are interned keyed by their wire region: descriptors carry one of a
// handful of priority lists, so the steady state resolves the region
// to a shared immutable slice without allocating. Callers must not
// mutate decoded Codecs.
func decodeCodecList(r *wreader, n int) ([]Codec, error) {
	start := r.off
	for i := 0; i < n; i++ {
		if _, err := r.strBytes(); err != nil {
			return nil, err
		}
	}
	region := r.p[start:r.off]
	if cs, ok := (*codecLists.table.Load())[string(region)]; ok {
		return cs, nil
	}
	// First sight of this list: parse it for real and learn it.
	cs := make([]Codec, n)
	rr := wreader{p: region}
	for i := range cs {
		s, err := rr.str()
		if err != nil {
			return nil, err
		}
		cs[i] = Codec(s)
	}
	return codecLists.add(region, cs), nil
}

func decodeSelector(r *wreader) (Selector, error) {
	var s Selector
	var err error
	if s.Answers.Origin, err = r.str(); err != nil {
		return s, err
	}
	if s.Answers.Seq, err = r.u32(); err != nil {
		return s, err
	}
	if s.Addr, err = r.str(); err != nil {
		return s, err
	}
	port, err := r.u32()
	if err != nil {
		return s, err
	}
	s.Port = int(port)
	codec, err := r.str()
	if err != nil {
		return s, err
	}
	s.Codec = Codec(codec)
	return s, nil
}

func decodeSignal(r *wreader) (Signal, error) {
	var g Signal
	k, err := r.u8()
	if err != nil {
		return g, ErrCorrupt
	}
	g.Kind = Kind(k)
	switch g.Kind {
	case KindOpen:
		m, err := r.str()
		if err != nil {
			return g, err
		}
		g.Medium = Medium(m)
		if g.Desc, err = decodeDescriptor(r); err != nil {
			return g, err
		}
	case KindOack, KindDescribe:
		if g.Desc, err = decodeDescriptor(r); err != nil {
			return g, err
		}
	case KindSelect:
		if g.Sel, err = decodeSelector(r); err != nil {
			return g, err
		}
	case KindClose, KindCloseAck:
	default:
		return g, fmt.Errorf("%w: unknown signal kind %d", ErrCorrupt, k)
	}
	return g, nil
}

// UnmarshalEnvelope decodes an envelope payload produced by Marshal.
// The decoded envelope does not alias p; the caller may reuse the
// buffer for the next frame.
func UnmarshalEnvelope(p []byte) (Envelope, error) {
	r := wreader{p: p}
	tag, err := r.u8()
	if err != nil {
		return Envelope{}, ErrCorrupt
	}
	var seq uint32
	if tag == tagSignalSeq || tag == tagMetaSeq {
		if seq, err = r.u32(); err != nil {
			return Envelope{}, err
		}
		if seq == 0 {
			// A sequenced tag carrying sequence zero would re-encode with
			// the legacy tag; reject it so encoding stays canonical.
			return Envelope{}, ErrCorrupt
		}
	}
	switch tag {
	case tagSignal, tagSignalSeq:
		e := Envelope{Seq: seq}
		t, err := r.u32()
		if err != nil {
			return e, err
		}
		e.Tunnel = int(t)
		if e.Sig, err = decodeSignal(&r); err != nil {
			return e, err
		}
		return e, nil
	case tagMeta, tagMetaSeq:
		m := borrowMeta()
		k, err := r.u8()
		if err != nil {
			releaseMeta(m)
			return Envelope{}, ErrCorrupt
		}
		m.Kind = MetaKind(k)
		if m.App, err = r.strLearn(); err != nil {
			releaseMeta(m)
			return Envelope{}, err
		}
		n, err := r.u32()
		if err != nil || n > MaxAttrs {
			releaseMeta(m)
			if err == nil {
				err = ErrCorrupt
			}
			return Envelope{}, err
		}
		for i := uint32(0); i < n; i++ {
			// Keys are a closed vocabulary: learn them. Values are
			// open-ended: lookup only, so churning values (sequence
			// numbers, tokens) cannot squat the table.
			key, err := r.strLearn()
			if err != nil {
				releaseMeta(m)
				return Envelope{}, err
			}
			val, err := r.str()
			if err != nil {
				releaseMeta(m)
				return Envelope{}, err
			}
			// Enforce the canonical order the encoders emit (strictly
			// ascending keys): accepting any order would make
			// decode→re-encode non-identical.
			if i > 0 && m.Attrs[len(m.Attrs)-1].Key >= key {
				releaseMeta(m)
				return Envelope{}, fmt.Errorf("%w: meta attrs out of canonical order", ErrCorrupt)
			}
			m.Attrs = append(m.Attrs, Attr{Key: key, Val: val})
		}
		return Envelope{Seq: seq, Meta: m}, nil
	default:
		return Envelope{}, fmt.Errorf("%w: unknown envelope tag %d", ErrCorrupt, tag)
	}
}

// ---------------------------------------------------------------------
// Pooled envelope lifetime.

// metaPool recycles the Meta records (and their attr backing arrays)
// built by UnmarshalEnvelope, so steady-state meta decoding allocates
// nothing. A decoded envelope's Meta is owned by the decode layer:
// whoever dispatches it calls Envelope.Release exactly once when the
// envelope is done, after which the Meta and its Attrs slice must not
// be touched. Individual attr *strings* are safe to retain — they are
// interned or freshly copied, never recycled.
var metaPool = sync.Pool{New: func() any { return &Meta{} }}

func borrowMeta() *Meta {
	m := metaPool.Get().(*Meta)
	m.pooled = true
	return m
}

// maxPooledAttrCap bounds the attr backing array retained by a pooled
// Meta, so one pathological MaxAttrs envelope cannot pin a large array
// in the pool forever.
const maxPooledAttrCap = 32

func releaseMeta(m *Meta) {
	m.Kind, m.App = MetaInvalid, ""
	if cap(m.Attrs) > maxPooledAttrCap {
		m.Attrs = nil
	}
	m.Attrs = m.Attrs[:0]
	m.pooled = false
	metaPool.Put(m)
}

// Release recycles the decode-owned state of an envelope produced by
// UnmarshalEnvelope (or ReadFrame); it is a no-op for envelopes built
// by hand, whose Meta the application owns. Call it exactly once, when
// dispatch of the envelope is complete: afterwards the envelope's Meta
// pointer and Attrs slice are dead (attr strings previously read from
// it remain valid). Releasing is an optimization, not an obligation —
// an unreleased Meta is simply collected by the GC.
func (e *Envelope) Release() {
	if m := e.Meta; m != nil && m.pooled {
		e.Meta = nil
		releaseMeta(m)
	}
}

// ---------------------------------------------------------------------
// Framing.

// framePool recycles frame buffers across WriteFrame calls, so
// steady-state signaling encodes without allocating.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// WriteFrame writes a length-framed envelope to w. Header and payload
// are encoded into one pooled buffer and issued as a single Write, so
// a frame costs one syscall on a raw socket and zero allocations in
// steady state.
func WriteFrame(w io.Writer, e Envelope) error {
	bp := framePool.Get().(*[]byte)
	defer framePool.Put(bp)
	b := append((*bp)[:0], 0, 0, 0, 0) // length header, patched below
	b, err := e.AppendBinary(b)
	if err != nil {
		return err
	}
	*bp = b
	n := len(b) - 4
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(b[:4], uint32(n))
	_, err = w.Write(b)
	return err
}

// FrameReader reads length-framed envelopes from a stream, reusing one
// payload buffer across frames. It is not safe for concurrent use; use
// one per connection (the transport's reader goroutine owns it).
type FrameReader struct {
	r   io.Reader
	buf []byte
}

// NewFrameReader wraps r for frame-at-a-time reading.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r, buf: make([]byte, 0, 512)}
}

// ReadFrame reads and decodes the next envelope. The internal buffer
// is reused between calls; the returned envelope does not alias it.
func (fr *FrameReader) ReadFrame() (Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return Envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Envelope{}, ErrFrameTooLarge
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	p := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, p); err != nil {
		return Envelope{}, err
	}
	return UnmarshalEnvelope(p)
}

// ReadFrame reads one length-framed envelope from r. For streams, a
// FrameReader amortizes the payload buffer across frames.
func ReadFrame(r io.Reader) (Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Envelope{}, ErrFrameTooLarge
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return Envelope{}, err
	}
	return UnmarshalEnvelope(p)
}
