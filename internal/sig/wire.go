// Wire encoding for envelopes. Signaling channels between physical
// components run over TCP (paper Section I); this file defines the
// framed binary format used by the TCP transport. The same
// deterministic encoding doubles as the state fingerprint of in-flight
// signals inside the model checker.
package sig

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Frame format: every envelope is framed as
//
//	uint32 length | payload
//
// and the payload is a tag-structured binary encoding with
// length-prefixed strings. All integers are big-endian.

const (
	// MaxFrame bounds the size of a single envelope on the wire. Media
	// control signals are tiny; anything near this limit indicates a
	// corrupted stream.
	MaxFrame = 64 << 10

	tagSignal byte = 1
	tagMeta   byte = 2
)

var (
	// ErrFrameTooLarge reports an incoming frame exceeding MaxFrame.
	ErrFrameTooLarge = errors.New("sig: frame exceeds maximum size")
	// ErrCorrupt reports an undecodable payload.
	ErrCorrupt = errors.New("sig: corrupt envelope encoding")
)

func putString(b *bytes.Buffer, s string) {
	var n [2]byte
	binary.BigEndian.PutUint16(n[:], uint16(len(s)))
	b.Write(n[:])
	b.WriteString(s)
}

func getString(r *bytes.Reader) (string, error) {
	var n [2]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return "", ErrCorrupt
	}
	l := int(binary.BigEndian.Uint16(n[:]))
	buf := make([]byte, l)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", ErrCorrupt
	}
	return string(buf), nil
}

func putU32(b *bytes.Buffer, v uint32) {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], v)
	b.Write(n[:])
}

func getU32(r *bytes.Reader) (uint32, error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return 0, ErrCorrupt
	}
	return binary.BigEndian.Uint32(n[:]), nil
}

// EncodeDescriptor appends a deterministic encoding of d to b.
func EncodeDescriptor(b *bytes.Buffer, d Descriptor) {
	putString(b, d.ID.Origin)
	putU32(b, d.ID.Seq)
	putString(b, d.Addr)
	putU32(b, uint32(d.Port))
	putU32(b, uint32(len(d.Codecs)))
	for _, c := range d.Codecs {
		putString(b, string(c))
	}
}

func decodeDescriptor(r *bytes.Reader) (Descriptor, error) {
	var d Descriptor
	var err error
	if d.ID.Origin, err = getString(r); err != nil {
		return d, err
	}
	if d.ID.Seq, err = getU32(r); err != nil {
		return d, err
	}
	if d.Addr, err = getString(r); err != nil {
		return d, err
	}
	port, err := getU32(r)
	if err != nil {
		return d, err
	}
	d.Port = int(port)
	n, err := getU32(r)
	if err != nil {
		return d, err
	}
	if n > 64 {
		return d, ErrCorrupt
	}
	if n > 0 {
		d.Codecs = make([]Codec, n)
		for i := range d.Codecs {
			s, err := getString(r)
			if err != nil {
				return d, err
			}
			d.Codecs[i] = Codec(s)
		}
	}
	return d, nil
}

// EncodeSelector appends a deterministic encoding of s to b.
func EncodeSelector(b *bytes.Buffer, s Selector) {
	putString(b, s.Answers.Origin)
	putU32(b, s.Answers.Seq)
	putString(b, s.Addr)
	putU32(b, uint32(s.Port))
	putString(b, string(s.Codec))
}

func decodeSelector(r *bytes.Reader) (Selector, error) {
	var s Selector
	var err error
	if s.Answers.Origin, err = getString(r); err != nil {
		return s, err
	}
	if s.Answers.Seq, err = getU32(r); err != nil {
		return s, err
	}
	if s.Addr, err = getString(r); err != nil {
		return s, err
	}
	port, err := getU32(r)
	if err != nil {
		return s, err
	}
	s.Port = int(port)
	codec, err := getString(r)
	if err != nil {
		return s, err
	}
	s.Codec = Codec(codec)
	return s, nil
}

// EncodeSignal appends a deterministic encoding of g to b.
func EncodeSignal(b *bytes.Buffer, g Signal) {
	b.WriteByte(byte(g.Kind))
	switch g.Kind {
	case KindOpen:
		putString(b, string(g.Medium))
		EncodeDescriptor(b, g.Desc)
	case KindOack, KindDescribe:
		EncodeDescriptor(b, g.Desc)
	case KindSelect:
		EncodeSelector(b, g.Sel)
	}
}

func decodeSignal(r *bytes.Reader) (Signal, error) {
	var g Signal
	k, err := r.ReadByte()
	if err != nil {
		return g, ErrCorrupt
	}
	g.Kind = Kind(k)
	switch g.Kind {
	case KindOpen:
		m, err := getString(r)
		if err != nil {
			return g, err
		}
		g.Medium = Medium(m)
		if g.Desc, err = decodeDescriptor(r); err != nil {
			return g, err
		}
	case KindOack, KindDescribe:
		if g.Desc, err = decodeDescriptor(r); err != nil {
			return g, err
		}
	case KindSelect:
		if g.Sel, err = decodeSelector(r); err != nil {
			return g, err
		}
	case KindClose, KindCloseAck:
	default:
		return g, fmt.Errorf("%w: unknown signal kind %d", ErrCorrupt, k)
	}
	return g, nil
}

// Marshal encodes the envelope payload (without the length frame).
func (e Envelope) Marshal() []byte {
	var b bytes.Buffer
	encodeEnvelope(&b, e)
	return b.Bytes()
}

// encodeEnvelope appends the envelope payload encoding to b.
func encodeEnvelope(b *bytes.Buffer, e Envelope) {
	if e.IsMeta() {
		b.WriteByte(tagMeta)
		b.WriteByte(byte(e.Meta.Kind))
		putString(b, e.Meta.App)
		keys := make([]string, 0, len(e.Meta.Attrs))
		for k := range e.Meta.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		putU32(b, uint32(len(keys)))
		for _, k := range keys {
			putString(b, k)
			putString(b, e.Meta.Attrs[k])
		}
		return
	}
	b.WriteByte(tagSignal)
	putU32(b, uint32(e.Tunnel))
	EncodeSignal(b, e.Sig)
}

// UnmarshalEnvelope decodes an envelope payload produced by Marshal.
func UnmarshalEnvelope(p []byte) (Envelope, error) {
	r := bytes.NewReader(p)
	tag, err := r.ReadByte()
	if err != nil {
		return Envelope{}, ErrCorrupt
	}
	switch tag {
	case tagSignal:
		var e Envelope
		t, err := getU32(r)
		if err != nil {
			return e, err
		}
		e.Tunnel = int(t)
		if e.Sig, err = decodeSignal(r); err != nil {
			return e, err
		}
		return e, nil
	case tagMeta:
		m := &Meta{}
		k, err := r.ReadByte()
		if err != nil {
			return Envelope{}, ErrCorrupt
		}
		m.Kind = MetaKind(k)
		if m.App, err = getString(r); err != nil {
			return Envelope{}, err
		}
		n, err := getU32(r)
		if err != nil {
			return Envelope{}, err
		}
		if n > 1024 {
			return Envelope{}, ErrCorrupt
		}
		if n > 0 {
			m.Attrs = make(map[string]string, n)
			for i := uint32(0); i < n; i++ {
				key, err := getString(r)
				if err != nil {
					return Envelope{}, err
				}
				val, err := getString(r)
				if err != nil {
					return Envelope{}, err
				}
				m.Attrs[key] = val
			}
		}
		return Envelope{Meta: m}, nil
	default:
		return Envelope{}, fmt.Errorf("%w: unknown envelope tag %d", ErrCorrupt, tag)
	}
}

// WriteFrame writes a length-framed envelope to w. Header and payload
// are encoded into one buffer and issued as a single Write, so a frame
// costs one syscall on a raw socket instead of two.
func WriteFrame(w io.Writer, e Envelope) error {
	var b bytes.Buffer
	b.Write(make([]byte, 4)) // length header, patched below
	encodeEnvelope(&b, e)
	p := b.Bytes()
	n := len(p) - 4
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(p[:4], uint32(n))
	_, err := w.Write(p)
	return err
}

// ReadFrame reads one length-framed envelope from r.
func ReadFrame(r io.Reader) (Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Envelope{}, ErrFrameTooLarge
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return Envelope{}, err
	}
	return UnmarshalEnvelope(p)
}
