package sig

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, e Envelope) Envelope {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, e); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return got
}

func TestWireRoundTripSignals(t *testing.T) {
	d := Descriptor{ID: DescID{"deviceA", 7}, Addr: "192.168.1.10", Port: 5004, Codecs: []Codec{G711, G726, NoMedia}}
	sel := Selector{Answers: d.ID, Addr: "192.168.1.20", Port: 6000, Codec: G726}
	for _, e := range []Envelope{
		{Tunnel: 0, Sig: Open(Audio, d)},
		{Tunnel: 3, Sig: Oack(d)},
		{Tunnel: 1, Sig: Close()},
		{Tunnel: 1, Sig: CloseAck()},
		{Tunnel: 2, Sig: Describe(NoMediaDescriptor(DescID{"srv", 1}))},
		{Tunnel: 4, Sig: Select(sel)},
	} {
		got := roundTrip(t, e)
		if !reflect.DeepEqual(normalize(got), normalize(e)) {
			t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, e)
		}
	}
}

// normalize maps nil and empty codec slices together: the wire format
// does not distinguish them and neither does any protocol rule.
func normalize(e Envelope) Envelope {
	if len(e.Sig.Desc.Codecs) == 0 {
		e.Sig.Desc.Codecs = nil
	}
	return e
}

func TestWireRoundTripMeta(t *testing.T) {
	for _, e := range []Envelope{
		{Meta: &Meta{Kind: MetaSetup}},
		{Meta: &Meta{Kind: MetaTeardown}},
		{Meta: &Meta{Kind: MetaApp, App: "paid", Attrs: NewAttrs("amount", "10", "card", "x")}},
	} {
		got := roundTrip(t, e)
		if got.Meta == nil {
			t.Fatal("meta lost in round trip")
		}
		if got.Meta.Kind != e.Meta.Kind || got.Meta.App != e.Meta.App {
			t.Errorf("meta mismatch: got %+v want %+v", got.Meta, e.Meta)
		}
		if len(e.Meta.Attrs) > 0 && !reflect.DeepEqual(got.Meta.Attrs, e.Meta.Attrs) {
			t.Errorf("attrs mismatch: got %v want %v", got.Meta.Attrs, e.Meta.Attrs)
		}
	}
}

func TestMetaAttrEncodingDeterministic(t *testing.T) {
	// Map iteration order must not leak into the wire encoding: the
	// model checker fingerprints in-flight signals by their bytes.
	e := Envelope{Meta: &Meta{Kind: MetaApp, App: "x", Attrs: NewAttrs(
		"f", "6", "e", "5", "d", "4", "c", "3", "b", "2", "a", "1",
	)}}
	first := e.Marshal()
	for i := 0; i < 50; i++ {
		if !bytes.Equal(first, e.Marshal()) {
			t.Fatal("meta encoding is nondeterministic")
		}
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err != ErrFrameTooLarge {
		t.Errorf("expected ErrFrameTooLarge, got %v", err)
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	for _, p := range [][]byte{
		{},
		{99},                        // unknown tag
		{tagSignal, 0, 0},           // truncated tunnel id
		{tagSignal, 0, 0, 0, 0, 42}, // unknown signal kind
		{tagMeta},                   // truncated meta
	} {
		if _, err := UnmarshalEnvelope(p); err == nil {
			t.Errorf("payload %v should fail to decode", p)
		}
	}
}

// randomCodec and friends generate structured random values for the
// property-based round-trip test below.
func randomCodec(r *rand.Rand) Codec {
	all := []Codec{G711, G726, G729, H263, H264, NoMedia, Codec("exotic")}
	return all[r.Intn(len(all))]
}

func randomDescriptor(r *rand.Rand) Descriptor {
	d := Descriptor{
		ID:   DescID{Origin: randString(r), Seq: r.Uint32()},
		Addr: randString(r),
		Port: r.Intn(65536),
	}
	for i, n := 0, r.Intn(4); i < n; i++ {
		d.Codecs = append(d.Codecs, randomCodec(r))
	}
	return d
}

func randString(r *rand.Rand) string {
	n := r.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

func randomSignal(r *rand.Rand) Signal {
	switch r.Intn(6) {
	case 0:
		return Open(Medium(randString(r)), randomDescriptor(r))
	case 1:
		return Oack(randomDescriptor(r))
	case 2:
		return Close()
	case 3:
		return CloseAck()
	case 4:
		return Describe(randomDescriptor(r))
	default:
		return Select(Selector{
			Answers: DescID{Origin: randString(r), Seq: r.Uint32()},
			Addr:    randString(r),
			Port:    r.Intn(65536),
			Codec:   randomCodec(r),
		})
	}
}

func TestQuickWireRoundTrip(t *testing.T) {
	f := func(tunnel uint16, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := Envelope{Tunnel: int(tunnel), Sig: randomSignal(r)}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, e); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(normalize(got), normalize(e))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickAnswerDescriptorInvariants(t *testing.T) {
	// Property: AnswerDescriptor always answers the right ID; never
	// selects a codec absent from the descriptor; respects muteOut; and
	// answers noMedia descriptors with noMedia selectors.
	f := func(seed int64, muteOut bool) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDescriptor(r)
		var sendable []Codec
		for i, n := 0, r.Intn(4); i < n; i++ {
			sendable = append(sendable, randomCodec(r))
		}
		sel := AnswerDescriptor(d, "s", 1, sendable, muteOut)
		if sel.Answers != d.ID {
			return false
		}
		if muteOut && !sel.NoMedia() {
			return false
		}
		if d.NoMedia() && !sel.NoMedia() {
			return false
		}
		if !sel.NoMedia() && !d.Offers(sel.Codec) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// writeCounter records how many Write calls it receives, so tests can
// assert on syscall counts for socket-bound writers.
type writeCounter struct {
	buf    bytes.Buffer
	writes int
}

func (w *writeCounter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

// TestWriteFrameSingleWrite pins the coalesced framing: one envelope
// must reach the writer (and hence a raw TCP conn) in exactly one
// Write call, header and payload together, and still round-trip.
func TestWriteFrameSingleWrite(t *testing.T) {
	d := Descriptor{ID: DescID{"deviceA", 7}, Addr: "192.168.1.10", Port: 5004, Codecs: []Codec{G711, G726}}
	envs := []Envelope{
		{Tunnel: 2, Sig: Open(Audio, d)},
		{Tunnel: 0, Sig: Close()},
		{Meta: &Meta{Kind: MetaApp, App: "paid", Attrs: NewAttrs("amount", "10")}},
	}
	var w writeCounter
	for i, e := range envs {
		if err := WriteFrame(&w, e); err != nil {
			t.Fatal(err)
		}
		if w.writes != i+1 {
			t.Fatalf("after %d frames: %d Write calls, want %d", i+1, w.writes, i+1)
		}
	}
	for _, want := range envs {
		got, err := ReadFrame(&w.buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Marshal(), want.Marshal()) {
			t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, want)
		}
	}
}
