//go:build !race

package sig

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
