package sig

import (
	"testing"
)

func TestDescriptorNoMedia(t *testing.T) {
	cases := []struct {
		name string
		d    Descriptor
		want bool
	}{
		{"empty codec list", Descriptor{}, true},
		{"explicit noMedia", NoMediaDescriptor(DescID{"srv", 1}), true},
		{"single real codec", Descriptor{Codecs: []Codec{G711}}, false},
		{"mixed with noMedia", Descriptor{Codecs: []Codec{NoMedia, G711}}, false},
	}
	for _, c := range cases {
		if got := c.d.NoMedia(); got != c.want {
			t.Errorf("%s: NoMedia() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestDescriptorOffers(t *testing.T) {
	d := Descriptor{Codecs: []Codec{G711, G726}}
	if !d.Offers(G711) || !d.Offers(G726) {
		t.Error("descriptor should offer both listed codecs")
	}
	if d.Offers(G729) {
		t.Error("descriptor should not offer an unlisted codec")
	}
}

func TestDescriptorEqualAndSameContent(t *testing.T) {
	a := Descriptor{ID: DescID{"A", 1}, Addr: "10.0.0.1", Port: 5004, Codecs: []Codec{G711, G726}}
	b := a
	if !a.Equal(b) {
		t.Error("identical descriptors must be Equal")
	}
	b.ID.Seq = 2
	if a.Equal(b) {
		t.Error("differing IDs must not be Equal")
	}
	if !a.SameContent(b) {
		t.Error("differing IDs with same content must be SameContent")
	}
	b.Port = 5006
	if a.SameContent(b) {
		t.Error("differing ports must not be SameContent")
	}
	c := a
	c.Codecs = []Codec{G726, G711}
	if a.Equal(c) {
		t.Error("codec priority order is significant")
	}
}

func TestAnswerDescriptorChoosesHighestPriority(t *testing.T) {
	d := Descriptor{ID: DescID{"A", 3}, Addr: "10.0.0.1", Port: 5004, Codecs: []Codec{G711, G726, G729}}
	sel := AnswerDescriptor(d, "10.0.0.2", 6000, []Codec{G729, G726}, false)
	if sel.Codec != G726 {
		t.Errorf("expected highest-priority common codec G726, got %s", sel.Codec)
	}
	if sel.Answers != d.ID {
		t.Errorf("selector must answer the descriptor's ID, got %s", sel.Answers)
	}
	if sel.Addr != "10.0.0.2" || sel.Port != 6000 {
		t.Errorf("selector must carry sender's address, got %s:%d", sel.Addr, sel.Port)
	}
}

func TestAnswerDescriptorMuteOut(t *testing.T) {
	d := Descriptor{ID: DescID{"A", 1}, Addr: "h", Port: 1, Codecs: []Codec{G711}}
	sel := AnswerDescriptor(d, "x", 2, []Codec{G711}, true)
	if !sel.NoMedia() {
		t.Error("muteOut must produce a noMedia selector")
	}
}

func TestAnswerDescriptorNoMediaDescriptor(t *testing.T) {
	// "The only legal response to a descriptor noMedia is a selector
	// noMedia" (paper Section VI-B).
	d := NoMediaDescriptor(DescID{"srv", 1})
	sel := AnswerDescriptor(d, "x", 2, []Codec{G711, G726}, false)
	if !sel.NoMedia() {
		t.Error("answer to a noMedia descriptor must be noMedia")
	}
}

func TestAnswerDescriptorNoCommonCodec(t *testing.T) {
	d := Descriptor{ID: DescID{"A", 1}, Addr: "h", Port: 1, Codecs: []Codec{H263}}
	sel := AnswerDescriptor(d, "x", 2, []Codec{G711}, false)
	if !sel.NoMedia() {
		t.Error("no common codec must degrade to noMedia")
	}
}

func TestSignalConstructors(t *testing.T) {
	d := Descriptor{ID: DescID{"A", 1}, Addr: "h", Port: 9, Codecs: []Codec{G711}}
	s := Selector{Answers: d.ID, Addr: "h2", Port: 10, Codec: G711}
	cases := []struct {
		sig  Signal
		kind Kind
	}{
		{Open(Audio, d), KindOpen},
		{Oack(d), KindOack},
		{Close(), KindClose},
		{CloseAck(), KindCloseAck},
		{Describe(d), KindDescribe},
		{Select(s), KindSelect},
	}
	for _, c := range cases {
		if c.sig.Kind != c.kind {
			t.Errorf("constructor produced kind %s, want %s", c.sig.Kind, c.kind)
		}
	}
	if Open(Audio, d).Medium != Audio {
		t.Error("open must carry its medium")
	}
}

func TestStringForms(t *testing.T) {
	// String forms feed logs and traces; they must be non-empty and
	// distinguish kinds.
	d := Descriptor{ID: DescID{"A", 1}, Addr: "h", Port: 9, Codecs: []Codec{G711}}
	seen := map[string]bool{}
	for _, g := range []Signal{Open(Audio, d), Oack(d), Close(), CloseAck(), Describe(d), Select(Selector{Answers: d.ID})} {
		s := g.String()
		if s == "" || seen[s] {
			t.Errorf("string form %q empty or duplicated", s)
		}
		seen[s] = true
	}
	if (Meta{Kind: MetaApp, App: "paid"}).String() != "meta:app(paid)" {
		t.Errorf("unexpected meta string %q", Meta{Kind: MetaApp, App: "paid"}.String())
	}
	if got := (Envelope{Tunnel: 2, Sig: Close()}).String(); got != "t2:close" {
		t.Errorf("unexpected envelope string %q", got)
	}
}

func TestEnvelopeIsMeta(t *testing.T) {
	if (Envelope{Sig: Close()}).IsMeta() {
		t.Error("signal envelope reported as meta")
	}
	if !(Envelope{Meta: &Meta{Kind: MetaSetup}}).IsMeta() {
		t.Error("meta envelope not reported as meta")
	}
}
