package sig

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// This file pins the wire format across the encoder rewrite: the
// original bytes.Buffer-based encoder is kept here as a reference
// implementation, and the append-style production encoder must agree
// with it byte for byte on every encodable envelope. The format is
// load-bearing twice over — peers on the wire, and state fingerprints
// inside the model checker.

func legacyPutString(b *bytes.Buffer, s string) {
	var n [2]byte
	binary.BigEndian.PutUint16(n[:], uint16(len(s)))
	b.Write(n[:])
	b.WriteString(s)
}

func legacyPutU32(b *bytes.Buffer, v uint32) {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], v)
	b.Write(n[:])
}

func legacyEncodeDescriptor(b *bytes.Buffer, d Descriptor) {
	legacyPutString(b, d.ID.Origin)
	legacyPutU32(b, d.ID.Seq)
	legacyPutString(b, d.Addr)
	legacyPutU32(b, uint32(d.Port))
	legacyPutU32(b, uint32(len(d.Codecs)))
	for _, c := range d.Codecs {
		legacyPutString(b, string(c))
	}
}

func legacyEncodeSelector(b *bytes.Buffer, s Selector) {
	legacyPutString(b, s.Answers.Origin)
	legacyPutU32(b, s.Answers.Seq)
	legacyPutString(b, s.Addr)
	legacyPutU32(b, uint32(s.Port))
	legacyPutString(b, string(s.Codec))
}

func legacyEncodeSignal(b *bytes.Buffer, g Signal) {
	b.WriteByte(byte(g.Kind))
	switch g.Kind {
	case KindOpen:
		legacyPutString(b, string(g.Medium))
		legacyEncodeDescriptor(b, g.Desc)
	case KindOack, KindDescribe:
		legacyEncodeDescriptor(b, g.Desc)
	case KindSelect:
		legacyEncodeSelector(b, g.Sel)
	}
}

func legacyMarshal(e Envelope) []byte {
	var b bytes.Buffer
	if e.IsMeta() {
		b.WriteByte(tagMeta)
		b.WriteByte(byte(e.Meta.Kind))
		legacyPutString(&b, e.Meta.App)
		attrs := append([]Attr(nil), e.Meta.Attrs...)
		sort.Slice(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
		legacyPutU32(&b, uint32(len(attrs)))
		for _, a := range attrs {
			legacyPutString(&b, a.Key)
			legacyPutString(&b, a.Val)
		}
		return b.Bytes()
	}
	b.WriteByte(tagSignal)
	legacyPutU32(&b, uint32(e.Tunnel))
	legacyEncodeSignal(&b, e.Sig)
	return b.Bytes()
}

func randomEnvelope(r *rand.Rand) Envelope {
	if r.Intn(4) == 0 {
		m := &Meta{Kind: MetaKind(1 + r.Intn(5)), App: randString(r)}
		for i, n := 0, r.Intn(4); i < n; i++ {
			m.Set(randString(r), randString(r))
		}
		return Envelope{Meta: m}
	}
	return Envelope{Tunnel: r.Intn(1 << 16), Sig: randomSignal(r)}
}

// TestEncoderMatchesLegacy asserts byte-for-byte equality of the
// append-style encoder with the original buffer-based encoder over a
// large sample of structured random envelopes.
func TestEncoderMatchesLegacy(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		e := randomEnvelope(r)
		got := e.Marshal()
		want := legacyMarshal(e)
		if !bytes.Equal(got, want) {
			t.Fatalf("encoding diverged on %v:\n new %v\n old %v", e, got, want)
		}
	}
}

// FuzzEncoderEquivalence round-trips arbitrary bytes through the
// decoder and asserts the new encoder reproduces the legacy encoding
// of whatever decodes.
func FuzzEncoderEquivalence(f *testing.F) {
	d := Descriptor{ID: DescID{Origin: "dev", Seq: 3}, Addr: "10.0.0.1", Port: 5004, Codecs: []Codec{G711, G726}}
	f.Add(Envelope{Tunnel: 2, Sig: Open(Audio, d)}.Marshal())
	f.Add(Envelope{Tunnel: 0, Sig: Select(Selector{Answers: d.ID, Addr: "h", Port: 9, Codec: G711})}.Marshal())
	f.Add(Envelope{Meta: &Meta{Kind: MetaApp, App: "paid", Attrs: NewAttrs("k", "v")}}.Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := UnmarshalEnvelope(data)
		if err != nil {
			return
		}
		got, err := e.AppendBinary(nil)
		if err != nil {
			t.Fatalf("decoded envelope failed to re-encode: %v", err)
		}
		if e.Seq != 0 {
			// Sequenced envelopes postdate the legacy encoder; check that
			// stripping the sequence recovers the legacy encoding instead.
			stripped := e
			stripped.Seq = 0
			sg, err := stripped.AppendBinary(nil)
			if err != nil {
				t.Fatalf("stripped envelope failed to re-encode: %v", err)
			}
			if want := legacyMarshal(stripped); !bytes.Equal(sg, want) {
				t.Fatalf("encoders diverge on stripped envelope:\n new %v\n old %v", sg, want)
			}
			return
		}
		if want := legacyMarshal(e); !bytes.Equal(got, want) {
			t.Fatalf("encoders diverge:\n new %v\n old %v", got, want)
		}
	})
}

// TestEncodeRejectsUndecodable pins encode/decode symmetry: envelopes
// the decoder would reject (or silently mangle) must fail to encode
// with an ErrCorrupt-class error instead of being silently emitted.
func TestEncodeRejectsUndecodable(t *testing.T) {
	tooManyCodecs := make([]Codec, MaxCodecs+1)
	for i := range tooManyCodecs {
		tooManyCodecs[i] = G711
	}
	var tooManyAttrs []Attr
	for i := 0; i <= MaxAttrs; i++ {
		tooManyAttrs = SetAttr(tooManyAttrs, fmt.Sprintf("k%06d", i), "v")
	}
	long := strings.Repeat("x", maxString+1)
	cases := []struct {
		name string
		e    Envelope
	}{
		{"codec overflow", Envelope{Sig: Oack(Descriptor{Codecs: tooManyCodecs})}},
		{"attr overflow", Envelope{Meta: &Meta{Kind: MetaApp, App: "a", Attrs: tooManyAttrs}}},
		{"oversized origin", Envelope{Sig: Describe(Descriptor{ID: DescID{Origin: long}})}},
		{"oversized medium", Envelope{Sig: Open(Medium(long), Descriptor{})}},
		{"oversized selector codec", Envelope{Sig: Select(Selector{Codec: Codec(long)})}},
		{"oversized app", Envelope{Meta: &Meta{Kind: MetaApp, App: long}}},
		{"unknown kind", Envelope{Sig: Signal{Kind: Kind(42)}}},
		{"negative tunnel", Envelope{Tunnel: -1, Sig: Close()}},
	}
	for _, tc := range cases {
		if _, err := tc.e.AppendBinary(nil); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: AppendBinary err = %v, want ErrCorrupt class", tc.name, err)
		}
		if err := WriteFrame(io.Discard, tc.e); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: WriteFrame err = %v, want ErrCorrupt class", tc.name, err)
		}
	}
	// And a maximal-but-legal envelope still round-trips.
	ok := Envelope{Sig: Oack(Descriptor{ID: DescID{Origin: "o", Seq: 1}, Codecs: make([]Codec, MaxCodecs)})}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, ok); err != nil {
		t.Fatalf("maximal legal envelope rejected: %v", err)
	}
	if _, err := ReadFrame(&buf); err != nil {
		t.Fatalf("maximal legal envelope failed to decode: %v", err)
	}
}

// TestWriteFrameZeroAlloc asserts the pooled encode path allocates
// nothing in steady state. Skipped under the race detector, which
// deliberately defeats sync.Pool reuse.
func TestWriteFrameZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool reuse is randomized under -race")
	}
	e := Envelope{Tunnel: 3, Sig: Open(Audio, Descriptor{
		ID: DescID{Origin: "device", Seq: 7}, Addr: "192.168.1.10", Port: 5004,
		Codecs: []Codec{G711, G726},
	})}
	avg := testing.AllocsPerRun(1000, func() {
		if err := WriteFrame(io.Discard, e); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.01 {
		t.Errorf("WriteFrame allocates %.2f objects per frame, want 0", avg)
	}
}

// TestAppendBinaryZeroAlloc asserts the caller-buffer encode path is
// allocation-free for tunnel signals.
func TestAppendBinaryZeroAlloc(t *testing.T) {
	e := Envelope{Tunnel: 1, Sig: Describe(Descriptor{
		ID: DescID{Origin: "device", Seq: 2}, Addr: "10.0.0.9", Port: 4000,
		Codecs: []Codec{G711},
	})}
	buf := make([]byte, 0, 256)
	avg := testing.AllocsPerRun(1000, func() {
		b, err := e.AppendBinary(buf[:0])
		if err != nil || len(b) == 0 {
			t.Fatal(err)
		}
	})
	if avg > 0.01 {
		t.Errorf("AppendBinary allocates %.2f objects per envelope, want 0", avg)
	}
}

// BenchmarkMarshal measures the allocating convenience path.
// BenchmarkMarshal measures the steady-state encode: appending into a
// caller-reused buffer, the path WriteFrame and the model checker's
// fingerprinting run on. allocs/op must report 0.
func BenchmarkMarshal(b *testing.B) {
	e := Envelope{Tunnel: 3, Sig: Open(Audio, Descriptor{
		ID: DescID{Origin: "device", Seq: 7}, Addr: "192.168.1.10", Port: 5004,
		Codecs: []Codec{G711, G726},
	})}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		if buf, err = e.AppendBinary(buf[:0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarshalLegacy measures the retired bytes.Buffer encoder,
// kept here as the before side of the BENCH_mc.json comparison.
func BenchmarkMarshalLegacy(b *testing.B) {
	e := Envelope{Tunnel: 3, Sig: Open(Audio, Descriptor{
		ID: DescID{Origin: "device", Seq: 7}, Addr: "192.168.1.10", Port: 5004,
		Codecs: []Codec{G711, G726},
	})}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if p := legacyMarshal(e); len(p) == 0 {
			b.Fatal("empty payload")
		}
	}
}

// BenchmarkMarshalAlloc measures the convenience Marshal, which
// allocates its result slice per call.
func BenchmarkMarshalAlloc(b *testing.B) {
	e := Envelope{Tunnel: 3, Sig: Open(Audio, Descriptor{
		ID: DescID{Origin: "device", Seq: 7}, Addr: "192.168.1.10", Port: 5004,
		Codecs: []Codec{G711, G726},
	})}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if p := e.Marshal(); len(p) == 0 {
			b.Fatal("empty payload")
		}
	}
}

// BenchmarkWriteFrame measures the full framed TCP encode path.
func BenchmarkWriteFrame(b *testing.B) {
	e := Envelope{Tunnel: 3, Sig: Open(Audio, Descriptor{
		ID: DescID{Origin: "device", Seq: 7}, Addr: "192.168.1.10", Port: 5004,
		Codecs: []Codec{G711, G726},
	})}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteFrame(io.Discard, e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameRoundTrip measures encode+decode through a reused
// FrameReader, the transport steady state.
func BenchmarkFrameRoundTrip(b *testing.B) {
	e := Envelope{Tunnel: 3, Sig: Open(Audio, Descriptor{
		ID: DescID{Origin: "device", Seq: 7}, Addr: "192.168.1.10", Port: 5004,
		Codecs: []Codec{G711, G726},
	})}
	var buf bytes.Buffer
	fr := NewFrameReader(&buf)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteFrame(&buf, e); err != nil {
			b.Fatal(err)
		}
		if _, err := fr.ReadFrame(); err != nil {
			b.Fatal(err)
		}
	}
}
