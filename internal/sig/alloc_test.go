// Allocation and aliasing guarantees of the decode path. These tests
// pin the PR's contract: steady-state decoding of envelopes whose
// vocabulary is interned performs zero heap allocations, and decoded
// envelopes never alias the source payload buffer.
package sig

import (
	"bytes"
	"testing"
)

// TestDecodeZeroAlloc pins the steady-state allocation count of
// UnmarshalEnvelope at zero for both envelope families:
//
//   - tunnel signals with descriptors: strings resolve through the
//     intern table and whole codec lists resolve to shared slices, so
//     nothing is allocated;
//   - meta-signals: the Meta frame and its attr backing array come
//     from the decode pool (recycled by Release), and app names, attr
//     keys, and seeded attr values all intern.
func TestDecodeZeroAlloc(t *testing.T) {
	InternSeed("storm-box", "ctrl", "zero-alloc-app")

	signal := Envelope{Sig: Signal{
		Kind:   KindOpen,
		Medium: Audio,
		Desc: Descriptor{
			ID:     DescID{Origin: "storm-box", Seq: 7},
			Addr:   "storm-box",
			Port:   4000,
			Codecs: []Codec{G711, G726, NoMedia},
		},
	}}
	meta := Envelope{Meta: &Meta{
		Kind: MetaSetup,
		App:  "zero-alloc-app",
		Attrs: NewAttrs(
			"from", "storm-box",
			"chan", "ctrl",
		),
	}}

	cases := []struct {
		name string
		p    []byte
	}{
		{"signal", signal.Marshal()},
		{"meta", meta.Marshal()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			decode := func() {
				e, err := UnmarshalEnvelope(tc.p)
				if err != nil {
					t.Fatalf("UnmarshalEnvelope: %v", err)
				}
				e.Release()
			}
			// Warm the interner, codec-list table, and meta pool before
			// measuring: the first decode may legitimately learn.
			decode()
			if n := testing.AllocsPerRun(200, decode); n != 0 {
				t.Errorf("UnmarshalEnvelope(%s): %.1f allocs/op, want 0", tc.name, n)
			}
		})
	}
}

// TestEncodeZeroAlloc keeps the symmetric guarantee on the encode
// side: appending either envelope family into a caller-managed buffer
// allocates nothing.
func TestEncodeZeroAlloc(t *testing.T) {
	meta := Envelope{Meta: &Meta{
		Kind:  MetaSetup,
		App:   "zero-alloc-app",
		Attrs: NewAttrs("from", "storm-box", "chan", "ctrl"),
	}}
	buf := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(200, func() {
		var err error
		if _, err = meta.AppendBinary(buf[:0]); err != nil {
			t.Fatalf("AppendBinary: %v", err)
		}
	}); n != 0 {
		t.Errorf("AppendBinary(meta): %.1f allocs/op, want 0", n)
	}
}

// TestReleaseLifetime pins the ownership rules of Release:
//
//   - attr strings read before Release stay valid after it (they are
//     interned or fresh copies, never recycled);
//   - Release is idempotent and a no-op on hand-built envelopes;
//   - a released Meta is recycled into the next decode.
func TestReleaseLifetime(t *testing.T) {
	p := Envelope{Meta: &Meta{
		Kind:  MetaApp,
		App:   "life",
		Attrs: NewAttrs("k", "retained-value"),
	}}.Marshal()

	e, err := UnmarshalEnvelope(p)
	if err != nil {
		t.Fatal(err)
	}
	val := e.Meta.Get("k")
	m := e.Meta
	e.Release()
	if e.Meta != nil {
		t.Error("Release did not clear the Meta pointer")
	}
	e.Release() // idempotent: Meta already nil
	if val != "retained-value" {
		t.Errorf("attr string corrupted after Release: %q", val)
	}
	// The released frame must not look owned anymore.
	if m.pooled {
		t.Error("released Meta still marked pooled")
	}

	hand := Envelope{Meta: &Meta{Kind: MetaTeardown}}
	hand.Release()
	if hand.Meta == nil {
		t.Error("Release recycled a hand-built Meta")
	}
}

// FuzzEnvelopeAliasing drives the borrow-safety contract: decode a
// payload, scribble over the source buffer, and verify the decoded
// envelope is untouched — then release it and verify strings read
// before the release survive subsequent decodes that recycle the
// pooled frame.
func FuzzEnvelopeAliasing(f *testing.F) {
	f.Add(Envelope{Sig: Signal{
		Kind:   KindOpen,
		Medium: Video,
		Desc: Descriptor{
			ID:     DescID{Origin: "fz", Seq: 1},
			Addr:   "fz:1",
			Port:   9,
			Codecs: []Codec{H263, H264},
		},
	}}.Marshal())
	f.Add(Envelope{Meta: &Meta{
		Kind:  MetaApp,
		App:   "fuzz-app",
		Attrs: NewAttrs("a", "1", "b", "2", "novel-key-xyz", "novel-val-xyz"),
	}, Seq: 3}.Marshal())

	f.Fuzz(func(t *testing.T, data []byte) {
		p := append([]byte(nil), data...)
		e, err := UnmarshalEnvelope(p)
		if err != nil {
			return
		}
		// Canonical image of the envelope before the buffer dies.
		before, err := e.AppendBinary(nil)
		if err != nil {
			t.Fatalf("decoded envelope not re-encodable: %v", err)
		}
		var app, key, val string
		if e.IsMeta() {
			app = e.Meta.App
			if e.Meta.Len() > 0 {
				key = e.Meta.Attrs[0].Key
				val = e.Meta.Attrs[0].Val
			}
		}

		// Scribble the source buffer: a decoded envelope must not alias it.
		for i := range p {
			p[i] ^= 0xFF
		}
		after, err := e.AppendBinary(nil)
		if err != nil {
			t.Fatalf("re-encode after scribble: %v", err)
		}
		if !bytes.Equal(before, after) {
			t.Fatalf("envelope aliases source buffer:\n before %x\n after  %x", before, after)
		}

		// Strings read before Release stay valid after the pooled frame
		// is recycled into fresh decodes.
		e.Release()
		for i := 0; i < 4; i++ {
			churn := Envelope{Meta: &Meta{
				Kind:  MetaApp,
				App:   "churn",
				Attrs: NewAttrs("x", "y"),
			}}.Marshal()
			ce, err := UnmarshalEnvelope(churn)
			if err != nil {
				t.Fatal(err)
			}
			ce.Release()
		}
		if e.IsMeta() {
			t.Fatalf("Release left Meta attached")
		}
		if app != "" || key != "" || val != "" {
			// Values were captured from a meta envelope; re-decode the
			// scribbled-back original and compare.
			for i := range p {
				p[i] ^= 0xFF
			}
			e2, err := UnmarshalEnvelope(p)
			if err != nil {
				t.Fatalf("re-decode of valid payload failed: %v", err)
			}
			if e2.IsMeta() {
				if e2.Meta.App != app {
					t.Fatalf("retained app corrupted: %q vs %q", app, e2.Meta.App)
				}
				if key != "" && e2.Meta.Get(key) != val {
					t.Fatalf("retained attr corrupted: %q=%q vs %q", key, val, e2.Meta.Get(key))
				}
			}
			e2.Release()
		}
	})
}
