// Package sig defines the vocabulary of the media-control signaling
// protocol of Zave & Cheung, "Compositional Control of IP Media"
// (CoNEXT 2006), Section VI: tunnel signals (open, oack, close,
// closeack, describe, select), the descriptor and selector records they
// carry, media and codec names, and the channel-scope meta-signals of
// Section III-A.
//
// Everything in this package is a plain value with no behavior beyond
// construction, comparison, and encoding; protocol state lives in
// package slot and policy lives in package core.
package sig

import (
	"fmt"
	"strings"
)

// Medium names a kind of media carried by a channel, such as "audio" or
// "video" (paper Section III-B). Media may be subdivided arbitrarily:
// "audio-fr" or "video-lo" are legal mediums.
type Medium string

// Common mediums used throughout the examples and tests.
const (
	Audio Medium = "audio"
	Video Medium = "video"
)

// Codec names a data format for a medium (paper Section VI-A). G.726 is
// a lower-fidelity, lower-bandwidth audio codec; G.711 is a
// higher-fidelity one, approximately equivalent to circuit-switched
// telephony.
type Codec string

// NoMedia is the distinguished pseudo-codec indicating no media
// transmission (paper Section VI-A). A descriptor whose codec list
// reduces to NoMedia expresses muteIn; a selector carrying NoMedia
// expresses muteOut.
const NoMedia Codec = "noMedia"

// Audio and video codecs used in examples and tests.
const (
	G711 Codec = "G711" // high-fidelity audio
	G726 Codec = "G726" // low-bandwidth audio
	G729 Codec = "G729" // very low-bandwidth audio
	H263 Codec = "H263" // video
	H264 Codec = "H264" // video
)

// DescID identifies a descriptor so that a selector can declare which
// descriptor it answers (the numbered descriptors/selectors of paper
// Figure 10). Origin scopes the sequence to the box or endpoint that
// produced the descriptor, so IDs are globally unambiguous without any
// global allocator — a requirement of the model checker, which must
// allocate IDs deterministically inside explored states.
type DescID struct {
	Origin string // producing endpoint or box, e.g. device name
	Seq    uint32 // per-origin sequence, bumped when content changes
}

// IsZero reports whether the ID is unset.
func (id DescID) IsZero() bool { return id.Origin == "" && id.Seq == 0 }

func (id DescID) String() string {
	if id.IsZero() {
		return "desc?"
	}
	return fmt.Sprintf("%s#%d", id.Origin, id.Seq)
}

// Descriptor is a record in which an endpoint describes itself as a
// receiver of media (paper Section VI-B): an IP address, a port number,
// and a priority-ordered list of codecs it can handle. If the endpoint
// does not wish to receive media (muteIn), the descriptor offers no
// real codec and NoMedia() reports true.
type Descriptor struct {
	ID     DescID
	Addr   string  // receiving IP address (empty for noMedia descriptors)
	Port   int     // receiving port
	Codecs []Codec // priority-ordered; empty or {NoMedia} means muteIn
}

// NoMedia reports whether the descriptor declines all media: it offers
// no codec other than the NoMedia pseudo-codec.
func (d Descriptor) NoMedia() bool {
	for _, c := range d.Codecs {
		if c != NoMedia {
			return false
		}
	}
	return true
}

// Offers reports whether the descriptor offers codec c.
func (d Descriptor) Offers(c Codec) bool {
	for _, dc := range d.Codecs {
		if dc == c {
			return true
		}
	}
	return false
}

// Equal reports whether two descriptors are identical, including ID.
func (d Descriptor) Equal(o Descriptor) bool {
	if d.ID != o.ID || d.Addr != o.Addr || d.Port != o.Port || len(d.Codecs) != len(o.Codecs) {
		return false
	}
	for i := range d.Codecs {
		if d.Codecs[i] != o.Codecs[i] {
			return false
		}
	}
	return true
}

// SameContent reports whether two descriptors describe the same
// receiver, ignoring ID. Endpoints use this to re-issue an unchanged
// descriptor under its existing ID.
func (d Descriptor) SameContent(o Descriptor) bool {
	d.ID, o.ID = DescID{}, DescID{}
	return d.Equal(o)
}

func (d Descriptor) String() string {
	cs := make([]string, len(d.Codecs))
	for i, c := range d.Codecs {
		cs[i] = string(c)
	}
	if d.NoMedia() {
		return fmt.Sprintf("desc(%s noMedia)", d.ID)
	}
	return fmt.Sprintf("desc(%s %s:%d [%s])", d.ID, d.Addr, d.Port, strings.Join(cs, ","))
}

// NoMediaDescriptor builds a descriptor that declines all media, as
// used by application-server goal objects, which mute media flow in
// both directions (paper Section IV-A).
func NoMediaDescriptor(id DescID) Descriptor {
	return Descriptor{ID: id, Codecs: []Codec{NoMedia}}
}

// Selector is a record in which an endpoint declares its intention to
// send to the endpoint described by a descriptor (paper Section VI-B).
// It identifies the descriptor it answers, gives the sender's IP
// address and port, and names the single codec the sender will use —
// NoMedia if the sender does not wish to send (muteOut).
type Selector struct {
	Answers DescID // the descriptor this selector responds to
	Addr    string // sending IP address
	Port    int    // sending port
	Codec   Codec  // single chosen codec, or NoMedia
}

// NoMedia reports whether the selector declines to send media.
func (s Selector) NoMedia() bool { return s.Codec == NoMedia || s.Codec == "" }

func (s Selector) String() string {
	if s.NoMedia() {
		return fmt.Sprintf("sel(->%s noMedia)", s.Answers)
	}
	return fmt.Sprintf("sel(->%s %s from %s:%d)", s.Answers, s.Codec, s.Addr, s.Port)
}

// AnswerDescriptor computes the selector with which a sender at
// addr:port answers descriptor d, given the priority-ordered list of
// codecs the sender is able to transmit and whether it currently wants
// to send (muteOut false). Per paper Section VI-B, the sender chooses
// the highest-priority codec in the descriptor that it is able and
// willing to send, and the only legal response to a noMedia descriptor
// is a noMedia selector.
func AnswerDescriptor(d Descriptor, addr string, port int, sendable []Codec, muteOut bool) Selector {
	sel := Selector{Answers: d.ID, Addr: addr, Port: port, Codec: NoMedia}
	if muteOut || d.NoMedia() {
		return sel
	}
	for _, c := range d.Codecs { // descriptor order is the priority order
		if c == NoMedia {
			continue
		}
		for _, s := range sendable {
			if s == c {
				sel.Codec = c
				return sel
			}
		}
	}
	return sel
}

// Kind enumerates the six tunnel signals of the protocol (paper
// Figure 9).
type Kind uint8

// The tunnel signal kinds.
const (
	KindInvalid  Kind = iota
	KindOpen          // request a media channel; carries medium + descriptor
	KindOack          // affirmative answer to open; carries descriptor
	KindClose         // close or reject the channel
	KindCloseAck      // acknowledge a close
	KindDescribe      // new descriptor for the sender as receiver of media
	KindSelect        // selector answering a descriptor
)

var kindNames = [...]string{"invalid", "open", "oack", "close", "closeack", "describe", "select"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Signal is one protocol message within a tunnel. Only the fields
// relevant to the Kind are meaningful: Medium and Desc for open, Desc
// for oack and describe, Sel for select, nothing for close/closeack.
type Signal struct {
	Kind   Kind
	Medium Medium
	Desc   Descriptor
	Sel    Selector
}

// Constructors for each signal kind.

// Open builds an open signal requesting a channel of the given medium,
// describing the opener as a receiver.
func Open(m Medium, d Descriptor) Signal { return Signal{Kind: KindOpen, Medium: m, Desc: d} }

// Oack builds an affirmative answer to an open, describing the acceptor
// as a receiver.
func Oack(d Descriptor) Signal { return Signal{Kind: KindOack, Desc: d} }

// Close builds a close (or reject) signal.
func Close() Signal { return Signal{Kind: KindClose} }

// CloseAck acknowledges a close.
func CloseAck() Signal { return Signal{Kind: KindCloseAck} }

// Describe carries a fresh descriptor for the sender as a receiver.
func Describe(d Descriptor) Signal { return Signal{Kind: KindDescribe, Desc: d} }

// Select carries a selector answering a previously received descriptor.
func Select(s Selector) Signal { return Signal{Kind: KindSelect, Sel: s} }

func (g Signal) String() string {
	switch g.Kind {
	case KindOpen:
		return fmt.Sprintf("open(%s, %s)", g.Medium, g.Desc)
	case KindOack:
		return fmt.Sprintf("oack(%s)", g.Desc)
	case KindDescribe:
		return fmt.Sprintf("describe(%s)", g.Desc)
	case KindSelect:
		return fmt.Sprintf("select(%s)", g.Sel)
	default:
		return g.Kind.String()
	}
}

// MetaKind enumerates meta-signals, which refer to a signaling channel
// as a whole and can affect all the tunnels within it (paper Section
// III-A).
type MetaKind uint8

// The meta-signal kinds.
const (
	MetaInvalid     MetaKind = iota
	MetaSetup                // first message on a new signaling channel
	MetaTeardown             // destroy the signaling channel and all its tunnels
	MetaAvailable            // the intended far endpoint is available
	MetaUnavailable          // the intended far endpoint is unavailable
	MetaApp                  // application-defined (e.g. "paid", "click")
)

var metaNames = [...]string{"invalid", "setup", "teardown", "available", "unavailable", "app"}

func (k MetaKind) String() string {
	if int(k) < len(metaNames) {
		return metaNames[k]
	}
	return fmt.Sprintf("meta(%d)", uint8(k))
}

// Attr is one key/value attribute of a meta-signal. Attributes live in
// a flat sorted slice rather than a map: metas are tiny (a handful of
// attrs), so a sorted slice is both smaller and faster than a map, it
// encodes deterministically without per-envelope key sorting, and the
// decode path can recycle one backing array across envelopes.
type Attr struct {
	Key, Val string
}

// Meta is a meta-signal. App carries an application-defined event name
// for MetaApp; Attrs carries optional key/value payload, sorted by key
// with unique keys (the canonical wire order). Build it with NewAttrs
// or Set, which maintain the ordering invariant; hand-built literals
// must list attrs in ascending key order or the encoders reject them.
type Meta struct {
	Kind  MetaKind
	App   string
	Attrs []Attr

	// pooled marks a Meta owned by the decode pool; Envelope.Release
	// recycles it. Always false on user-constructed metas.
	pooled bool
}

// NewAttrs builds a sorted attribute slice from alternating key/value
// pairs; it panics on an odd count. Later duplicates win, matching the
// old map semantics.
func NewAttrs(kv ...string) []Attr {
	if len(kv)%2 != 0 {
		panic("sig.NewAttrs: odd key/value count")
	}
	attrs := make([]Attr, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		attrs = SetAttr(attrs, kv[i], kv[i+1])
	}
	return attrs
}

// SetAttr sets key=val in a sorted attribute slice, inserting or
// replacing in place, and returns the updated slice (append idiom).
func SetAttr(attrs []Attr, key, val string) []Attr {
	i := searchAttrs(attrs, key)
	if i < len(attrs) && attrs[i].Key == key {
		attrs[i].Val = val
		return attrs
	}
	attrs = append(attrs, Attr{})
	copy(attrs[i+1:], attrs[i:])
	attrs[i] = Attr{Key: key, Val: val}
	return attrs
}

// searchAttrs returns the insertion index of key (binary search; attr
// lists are tiny, but sortedness makes this deterministic).
func searchAttrs(attrs []Attr, key string) int {
	lo, hi := 0, len(attrs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if attrs[mid].Key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// attrsSorted reports whether attrs is in canonical order: strictly
// ascending keys (sorted, no duplicates).
func attrsSorted(attrs []Attr) bool {
	for i := 1; i < len(attrs); i++ {
		if attrs[i-1].Key >= attrs[i].Key {
			return false
		}
	}
	return true
}

// Get returns the value for key, or "" if absent.
func (m *Meta) Get(key string) string {
	v, _ := m.Lookup(key)
	return v
}

// Lookup returns the value for key and whether it is present.
func (m *Meta) Lookup(key string) (string, bool) {
	if m == nil {
		return "", false
	}
	if i := searchAttrs(m.Attrs, key); i < len(m.Attrs) && m.Attrs[i].Key == key {
		return m.Attrs[i].Val, true
	}
	return "", false
}

// Set sets key=val, inserting or replacing while keeping the canonical
// sorted order.
func (m *Meta) Set(key, val string) {
	m.Attrs = SetAttr(m.Attrs, key, val)
}

// Len reports the number of attributes.
func (m *Meta) Len() int {
	if m == nil {
		return 0
	}
	return len(m.Attrs)
}

// Equal reports whether two metas carry the same kind, app, and
// attributes. It ignores decode-pool ownership.
func (m *Meta) Equal(o *Meta) bool {
	if m == nil || o == nil {
		return m == o
	}
	if m.Kind != o.Kind || m.App != o.App || len(m.Attrs) != len(o.Attrs) {
		return false
	}
	for i := range m.Attrs {
		if m.Attrs[i] != o.Attrs[i] {
			return false
		}
	}
	return true
}

func (m Meta) String() string {
	if m.Kind == MetaApp {
		return fmt.Sprintf("meta:app(%s)", m.App)
	}
	return "meta:" + m.Kind.String()
}

// Envelope is the unit of traffic on a signaling channel: either a
// tunnel signal addressed to one tunnel, or a meta-signal for the
// channel as a whole (Meta non-nil).
//
// Seq is the channel-scope sequence number stamped by the reliable
// transport layer; zero means unsequenced. Sequenced envelopes use a
// distinct wire tag, so the encoding of unsequenced envelopes — the
// only kind the box core and the model checker ever produce — is
// byte-for-byte the legacy format.
type Envelope struct {
	Tunnel int    // tunnel index within the channel; ignored for meta-signals
	Seq    uint32 // retransmission sequence number; 0 = unsequenced
	Sig    Signal
	Meta   *Meta
}

// IsMeta reports whether the envelope carries a meta-signal.
func (e Envelope) IsMeta() bool { return e.Meta != nil }

func (e Envelope) String() string {
	if e.IsMeta() {
		if e.Seq != 0 {
			return fmt.Sprintf("#%d:%s", e.Seq, e.Meta)
		}
		return e.Meta.String()
	}
	if e.Seq != 0 {
		return fmt.Sprintf("#%d:t%d:%s", e.Seq, e.Tunnel, e.Sig)
	}
	return fmt.Sprintf("t%d:%s", e.Tunnel, e.Sig)
}
