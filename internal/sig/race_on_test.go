//go:build race

package sig

// raceEnabled reports whether the race detector is active; zero-alloc
// assertions are skipped under it because it defeats sync.Pool reuse.
const raceEnabled = true
