package sig

import (
	"bytes"
	"testing"
)

// TestSeqEnvelopeRoundTrip: sequenced envelopes survive the wire, and
// the sequence number rides outside the legacy payload — stripping it
// recovers the legacy encoding exactly.
func TestSeqEnvelopeRoundTrip(t *testing.T) {
	d := Descriptor{ID: DescID{Origin: "dev", Seq: 3}, Addr: "10.0.0.1", Port: 5004, Codecs: []Codec{G711, G726}}
	cases := []Envelope{
		{Tunnel: 0, Seq: 1, Sig: Open(Audio, d)},
		{Tunnel: 3, Seq: 7, Sig: Oack(d)},
		{Tunnel: 1, Seq: 1 << 30, Sig: Close()},
		{Seq: 42, Meta: &Meta{Kind: MetaSetup, Attrs: NewAttrs("from", "a")}},
		{Seq: 2, Meta: &Meta{Kind: MetaApp, App: "rel/ack"}},
	}
	for _, e := range cases {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, e); err != nil {
			t.Fatalf("WriteFrame(%v): %v", e, err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame(%v): %v", e, err)
		}
		if got.Seq != e.Seq || got.Tunnel != e.Tunnel || got.IsMeta() != e.IsMeta() {
			t.Fatalf("round trip mangled %v into %v", e, got)
		}
		if got.String() != e.String() {
			t.Fatalf("round trip mangled %v into %v", e, got)
		}
	}
}

// TestSeqZeroKeepsLegacyTag: an unsequenced envelope must encode with
// the legacy tag byte — the format the model checker fingerprints and
// pre-Seq peers speak.
func TestSeqZeroKeepsLegacyTag(t *testing.T) {
	e := Envelope{Tunnel: 1, Sig: Close()}
	p := e.Marshal()
	if p[0] != tagSignal {
		t.Fatalf("unsequenced envelope encoded with tag %d, want %d", p[0], tagSignal)
	}
	e.Seq = 9
	p = e.Marshal()
	if p[0] != tagSignalSeq {
		t.Fatalf("sequenced envelope encoded with tag %d, want %d", p[0], tagSignalSeq)
	}
	// A sequenced tag with seq 0 is non-canonical and must not decode.
	bad := append([]byte{tagSignalSeq, 0, 0, 0, 0}, Envelope{Tunnel: 1, Sig: Close()}.Marshal()[1:]...)
	if _, err := UnmarshalEnvelope(bad); err == nil {
		t.Fatal("non-canonical seq-0 envelope decoded")
	}
}
