package sig

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalEnvelope checks that arbitrary bytes never panic the
// decoder, and that anything that decodes re-encodes to an equivalent
// envelope (decode∘encode∘decode is the identity).
func FuzzUnmarshalEnvelope(f *testing.F) {
	d := Descriptor{ID: DescID{Origin: "dev", Seq: 3}, Addr: "10.0.0.1", Port: 5004, Codecs: []Codec{G711, G726}}
	seeds := []Envelope{
		{Tunnel: 0, Sig: Open(Audio, d)},
		{Tunnel: 1, Sig: Oack(d)},
		{Tunnel: 2, Sig: Close()},
		{Tunnel: 3, Sig: CloseAck()},
		{Tunnel: 4, Sig: Describe(d)},
		{Tunnel: 5, Sig: Select(Selector{Answers: d.ID, Addr: "h", Port: 1, Codec: G711})},
		{Meta: &Meta{Kind: MetaApp, App: "paid", Attrs: NewAttrs("k", "v")}},
	}
	for _, e := range seeds {
		f.Add(e.Marshal())
	}
	f.Add([]byte{})
	f.Add([]byte{tagSignal})
	f.Add([]byte{tagMeta, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := UnmarshalEnvelope(data)
		if err != nil {
			return
		}
		re := e.Marshal()
		e2, err := UnmarshalEnvelope(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(re, e2.Marshal()) {
			t.Fatalf("encoding not idempotent:\n%v\n%v", re, e2.Marshal())
		}
	})
}

// FuzzReadFrame checks the length-framed reader against arbitrary
// streams.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, Envelope{Tunnel: 1, Sig: Close()})
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 10; i++ {
			if _, err := ReadFrame(r); err != nil {
				return
			}
		}
	})
}
