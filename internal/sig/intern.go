// String interning for the decode path. The protocol's vocabularies
// are closed in practice — codec and medium names come from a fixed
// set, attr keys from a handful of protocol constants, and box,
// channel, and address names from the deployment's bounded population
// (cf. the bounded, statically-known label vocabularies of
// flow-network DSLs). Interning resolves decoded bytes to canonical
// shared strings, so steady-state decoding allocates nothing for a
// string it has seen before.
//
// The table is copy-on-write behind an atomic pointer: reads (the hot
// path, every decoded string) are lock-free; writes (one per novel
// string, bounded by the table capacity) copy the map under a mutex.
// Capacity bounds adversarial growth: once full, novel strings simply
// decode as fresh allocations, the pre-interning behavior.
package sig

import (
	"sync"
	"sync/atomic"
)

// Intern is a bounded bytes→canonical-string table with lock-free
// lookups. The zero value is unusable; use NewIntern.
type Intern struct {
	capacity int
	table    atomic.Pointer[map[string]string]
	mu       sync.Mutex // serializes copy-on-write updates
}

// NewIntern creates a table holding at most capacity strings.
func NewIntern(capacity int) *Intern {
	t := &Intern{capacity: capacity}
	m := make(map[string]string)
	t.table.Store(&m)
	return t
}

// Lookup resolves b to its canonical string if interned. It never
// allocates.
func (t *Intern) Lookup(b []byte) (string, bool) {
	s, ok := (*t.table.Load())[string(b)] // compiler elides the conversion
	return s, ok
}

// LookupString is Lookup for an existing string: it returns the
// canonical copy if interned, else s itself.
func (t *Intern) LookupString(s string) string {
	if c, ok := (*t.table.Load())[s]; ok {
		return c
	}
	return s
}

// Add interns s (bounded: past capacity it is a no-op) and returns the
// canonical copy.
func (t *Intern) Add(s string) string {
	if c, ok := (*t.table.Load())[s]; ok {
		return c
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.table.Load()
	if c, ok := old[s]; ok {
		return c
	}
	if len(old) >= t.capacity {
		return s
	}
	next := make(map[string]string, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[s] = s
	t.table.Store(&next)
	return s
}

// intern resolves decoded bytes: the canonical string when interned,
// a fresh copy otherwise. learn additionally interns fresh strings
// (used for closed vocabularies like attr keys and app names, where
// auto-learning converges; open-ended values are lookup-only so a
// churning value space cannot squat the table).
func (t *Intern) intern(b []byte, learn bool) string {
	if s, ok := t.Lookup(b); ok {
		return s
	}
	s := string(b)
	if learn {
		return t.Add(s)
	}
	return s
}

// Len reports the number of interned strings.
func (t *Intern) Len() int { return len(*t.table.Load()) }

// defaultIntern is the process-wide table used by the decoders,
// pre-seeded with every protocol constant. Runtimes extend it with
// their deployment vocabulary (box names, channel names, addresses)
// via InternSeed.
var defaultIntern = func() *Intern {
	t := NewIntern(8192)
	for _, s := range []string{
		"",
		string(Audio), string(Video),
		string(G711), string(G726), string(G729),
		string(H263), string(H264), string(NoMedia),
		// Well-known meta attr keys and app names.
		"from", "chan", "id", "ack",
		"movie", "pos", "mix", "out", "in",
	} {
		t.Add(s)
	}
	return t
}()

// InternSeed interns deployment vocabulary — box names, channel names,
// dial addresses, app names — into the decoder's table, so envelopes
// naming them decode without allocating. The table is bounded
// (capacity 8192); past that, seeds are dropped and the strings simply
// decode as fresh allocations.
func InternSeed(ss ...string) {
	for _, s := range ss {
		defaultIntern.Add(s)
	}
}

// Interned returns the canonical interned copy of s if present, else s.
func Interned(s string) string { return defaultIntern.LookupString(s) }

// codecLists interns whole decoded codec lists, keyed by their wire
// encoding: descriptors carry one of a handful of priority lists, so
// decode resolves the encoded region to one shared immutable slice
// instead of allocating a fresh []Codec (plus strings) per descriptor.
type codecListIntern struct {
	table atomic.Pointer[map[string][]Codec]
	mu    sync.Mutex
}

const codecListCap = 256

var codecLists = func() *codecListIntern {
	t := &codecListIntern{}
	m := make(map[string][]Codec)
	t.table.Store(&m)
	return t
}()

// add learns a freshly parsed codec list under its wire region
// (bounded; past capacity the list stays unshared). It returns the
// canonical slice: callers must treat decoded Codecs as immutable
// (they always have — descriptors are values passed around by copy).
func (t *codecListIntern) add(region []byte, cs []Codec) []Codec {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.table.Load()
	if have, ok := old[string(region)]; ok {
		return have
	}
	if len(old) >= codecListCap {
		return cs
	}
	next := make(map[string][]Codec, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[string(region)] = cs
	t.table.Store(&next)
	return cs
}
