package box

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ipmedia/internal/core"
	"ipmedia/internal/sig"
	"ipmedia/internal/transport"
)

// TestClusterPlacement: hash placement is stable, in range, and
// explicit placement is honored.
func TestClusterPlacement(t *testing.T) {
	c := NewCluster(transport.NewMemNetwork(), 4)
	defer c.Stop()
	if c.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", c.Shards())
	}
	counts := make([]int, 4)
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("box-%d", i)
		s := c.ShardOf(name)
		if s < 0 || s >= 4 {
			t.Fatalf("ShardOf(%q) = %d, out of range", name, s)
		}
		if s2 := c.ShardOf(name); s2 != s {
			t.Fatalf("ShardOf(%q) unstable: %d then %d", name, s, s2)
		}
		counts[s]++
	}
	for s, n := range counts {
		// 1000 keys over 4 shards: expect ~250 each; a shard below 150
		// or above 350 means the hash is badly skewed.
		if n < 150 || n > 350 {
			t.Fatalf("shard %d got %d of 1000 boxes; distribution %v", s, n, counts)
		}
	}
	r := c.RunnerOn(2, New("pinned", core.ServerProfile{Name: "pinned"}))
	if r.Shard() != 2 {
		t.Fatalf("RunnerOn(2).Shard() = %d", r.Shard())
	}
}

// TestClusterCrossShardCall: a full device call where caller and
// callee live on different shards of one cluster, over ring-port
// channels drained inline by each side's shard loop. The call must
// reach flowing on both ends and tear down cleanly — placement must be
// unobservable to the boxes.
func TestClusterCrossShardCall(t *testing.T) {
	net := transport.NewRingMemNetwork()
	c := NewCluster(net, 2)
	defer c.Stop()

	caller := c.RunnerOn(0, New("A", deviceProfile("1", 5004)))
	callee := c.RunnerOn(1, New("B", deviceProfile("2", 5006)))
	if err := callee.Listen("B", nil); err != nil {
		t.Fatal(err)
	}
	if err := caller.Connect("c1", "B"); err != nil {
		t.Fatal(err)
	}
	caller.Do(func(ctx *Ctx) {
		ctx.SetGoal(core.NewOpenSlot(TunnelSlot("c1", 0), sig.Audio, caller.Box().Profile()))
	})
	await(t, caller, "caller flowing", func(ctx *Ctx) bool {
		s := ctx.Box().Slot(TunnelSlot("c1", 0))
		return s != nil && s.IsFlowing() && s.Enabled()
	})
	await(t, callee, "callee flowing", func(ctx *Ctx) bool {
		s := ctx.Box().Slot(TunnelSlot("in0", 0))
		return s != nil && s.IsFlowing() && s.Enabled()
	})

	caller.Do(func(ctx *Ctx) { ctx.Teardown("c1") })
	await(t, caller, "caller torn down", func(ctx *Ctx) bool { return !ctx.Box().HasChannel("c1") })
	await(t, callee, "callee torn down", func(ctx *Ctx) bool { return !ctx.Box().HasChannel("in0") })
	noErrs(t, caller, callee)
}

// TestClusterCrossShardLifecycle is the -race stress for the sharded
// runtime: channel setup, teardown, and retarget (redial under the
// same name) spanning two shards, then Stop racing a cross-shard
// Connect. Envelopes from shard 0's loop land in shard 1's inbox and
// vice versa, so the race detector sees every cross-core handoff.
func TestClusterCrossShardLifecycle(t *testing.T) {
	for i := 0; i < 20; i++ {
		net := transport.NewRingMemNetwork()
		c := NewCluster(net, 2)
		srv := c.RunnerOn(0, New("S", core.ServerProfile{Name: "S"}))
		cli := c.RunnerOn(1, New("C", core.ServerProfile{Name: "C"}))
		if err := srv.Listen("S", nil); err != nil {
			t.Fatal(err)
		}

		// Setup.
		if err := cli.Connect("c1", "S"); err != nil {
			t.Fatal(err)
		}
		if !srv.AwaitChannel("in0", 5*time.Second) {
			t.Fatal("server never saw the cross-shard channel")
		}

		// Teardown, then retarget: redial immediately under a new name
		// while the teardown is still propagating to the other shard.
		cli.Do(func(ctx *Ctx) { ctx.Teardown("c1") })
		if err := cli.Connect("c2", "S"); err != nil {
			t.Fatal(err)
		}
		if !srv.AwaitChannel("in1", 5*time.Second) {
			t.Fatal("server never saw the retargeted channel")
		}
		await(t, srv, "old channel torn down", func(ctx *Ctx) bool { return !ctx.Box().HasChannel("in0") })

		// Stop racing a cross-shard Connect: either order is fine, but
		// nothing may strand, deadlock, or trip the race detector.
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			cli.Connect("c3", "S")
		}()
		go func() {
			defer wg.Done()
			cli.Stop()
		}()
		wg.Wait()
		noErrs(t, srv, cli)
		c.Stop()
	}
}

// TestClusterStopIdempotent: runners stopped directly, then the
// cluster stopped, then stopped again.
func TestClusterStopIdempotent(t *testing.T) {
	c := NewCluster(transport.NewRingMemNetwork(), 3)
	rs := make([]*Runner, 6)
	for i := range rs {
		rs[i] = c.Runner(New(fmt.Sprintf("b%d", i), core.ServerProfile{Name: "b"}))
	}
	rs[0].Stop()
	rs[0].Stop()
	c.Stop()
	c.Stop()
	for _, r := range rs {
		r.Stop()
	}
}

// TestClusterTimersPerShard: timers of boxes on different shards run
// on that shard's wheel and still fire into the right inbox.
func TestClusterTimersPerShard(t *testing.T) {
	c := NewCluster(transport.NewRingMemNetwork(), 2)
	defer c.Stop()
	fired := make(chan int, 2)
	for i := 0; i < 2; i++ {
		i := i
		r := c.RunnerOn(i, New(fmt.Sprintf("t%d", i), core.ServerProfile{Name: "t"}))
		r.SetProgram(&Program{
			Initial: "armed",
			States: []*State{
				{
					Name:    "armed",
					OnEnter: func(ctx *Ctx) { ctx.SetTimer("tick", 10*time.Millisecond) },
					Trans:   []Trans{{When: func(ctx *Ctx) bool { return ctx.OnTimer("tick") }, To: "done"}},
				},
				{Name: "done", OnEnter: func(*Ctx) { fired <- i }},
			},
		})
	}
	got := map[int]bool{}
	for len(got) < 2 {
		select {
		case i := <-fired:
			got[i] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("timers fired on shards %v, want both", got)
		}
	}
}

// BenchmarkClusterEvent is BenchmarkRunnerEvent on a cluster shard:
// steady-state dispatch through a shared shard loop must also be
// zero-alloc.
func BenchmarkClusterEvent(b *testing.B) {
	c := NewCluster(transport.NewRingMemNetwork(), 2)
	defer c.Stop()
	r := c.RunnerOn(0, New("bench", core.ServerProfile{Name: "bench"}))
	r.Do(func(ctx *Ctx) { ctx.Box().AddChannel("c", true) })

	meta := &sig.Meta{Kind: sig.MetaApp, App: "tick"}
	ev := Event{Kind: EvEnvelope, Channel: "c", Env: sig.Envelope{Meta: meta}}
	for i := 0; i < 1024; i++ {
		r.Inject(ev)
	}
	r.Do(func(*Ctx) {})

	barrier := func(*Ctx) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Inject(ev)
		if i&1023 == 1023 {
			r.Do(barrier)
		}
	}
	r.Do(barrier)
}

// TestClusterEventZeroAlloc is the CI gate for sharded dispatch.
func TestClusterEventZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("pool reuse is randomized under -race")
	}
	if testing.Short() {
		t.Skip("benchmark-backed test")
	}
	res := testing.Benchmark(BenchmarkClusterEvent)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("sharded steady-state dispatch allocates %d allocs/op, want 0", a)
	}
}
