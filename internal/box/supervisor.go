// Supervisor: shard processes under OTP-style supervision. The
// supervisor spawns one OS process per shard, watches each through two
// independent signals — process exit (Wait) and heartbeat silence on
// the control channel — and restarts crashed shards with jittered
// exponential backoff. Restarts are not free forever: a shard that
// crashes more than MaxRestarts times inside Window is given up on
// (restart intensity, straight from the OTP playbook), because a
// supervisor that restarts a deterministic crasher in a tight loop is
// worse than one that admits defeat and surfaces the failure.
//
// The control plane is deliberately boring: one plain TCP channel per
// shard carrying small MetaApp envelopes —
//
//	ctl/ready  s=<shard> carrier=<addr> http=<addr>   child's hello
//	ctl/hb     <vital signs as attrs>                  heartbeat
//	ctl/addr   <shard>=<carrier addr> ...              full table push
//	ctl/stop                                           drain and exit
//	ctl/report id=<n> [b=<payload>]                    request / reply
//
// Heartbeats piggyback each shard's vital signs (completed calls,
// durable CDR count, formula violations), so the supervisor's
// last-known view of a shard survives the shard's death — the fleet
// gate can still account for a victim killed mid-storm.
package box

import (
	"fmt"
	"math/rand"
	"net/http"
	"os/exec"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
	"ipmedia/internal/transport"
)

// Control protocol application names.
const (
	CtlReadyApp  = "ctl/ready"
	CtlAddrApp   = "ctl/addr"
	CtlStopApp   = "ctl/stop"
	CtlReportApp = "ctl/report"
)

// Telemetry instrument name prefixes exported by the supervisor; the
// shard index is appended ("cluster.restarts.s2").
const (
	// MetricRestarts counts supervisor restarts of a shard process.
	MetricRestarts = "cluster.restarts"
	// MetricHeartbeatMiss counts heartbeat-silence detections that led
	// to a liveness probe (and, failing that, a kill).
	MetricHeartbeatMiss = "cluster.heartbeat_miss"
	// MetricGiveUps counts shards abandoned by restart intensity.
	MetricGiveUps = "cluster.giveups"
)

// SupervisorConfig shapes one supervision tree.
type SupervisorConfig struct {
	Shards int

	// Heartbeat is the cadence shards beat at; MaxMissed whole silent
	// intervals trigger a liveness probe and then a kill.
	Heartbeat time.Duration
	MaxMissed int

	// BackoffMin doubles per consecutive restart up to BackoffMax,
	// jittered ±50% so a correlated crash doesn't resynchronize the
	// fleet's restarts.
	BackoffMin time.Duration
	BackoffMax time.Duration

	// MaxRestarts within Window gives the shard up (restart intensity).
	MaxRestarts int
	Window      time.Duration

	Seed int64

	// Command builds the shard process. The child must dial ctlAddr and
	// speak the control protocol (RunControl does).
	Command func(shard int, ctlAddr string) *exec.Cmd

	// Log, if set, receives one line per supervision event.
	Log func(format string, args ...any)
}

func (c *SupervisorConfig) defaults() {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 250 * time.Millisecond
	}
	if c.MaxMissed <= 0 {
		c.MaxMissed = 4
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 5
	}
	if c.Window <= 0 {
		c.Window = 30 * time.Second
	}
	if c.Log == nil {
		c.Log = func(string, ...any) {}
	}
}

// Supervisor runs and supervises a fleet of shard processes.
type Supervisor struct {
	cfg     SupervisorConfig
	net     transport.Network
	lst     transport.Listener
	ctlAddr string

	rngMu sync.Mutex
	rng   *rand.Rand

	mu       sync.Mutex
	shards   []*supShard
	stopping bool

	reqID   atomic.Uint64
	giveups *telemetry.Counter
	done    chan struct{}
}

// supShard is the supervisor's view of one shard slot.
type supShard struct {
	idx      int
	restarts *telemetry.Counter
	hbMiss   *telemetry.Counter

	mu       sync.Mutex
	epoch    int
	cmd      *exec.Cmd
	ctl      transport.Port
	mon      *transport.HeartbeatMonitor
	carrier  string
	httpAddr string
	vitals   map[string]string
	times    []time.Time // restart instants inside the intensity window
	gaveUp   bool
	probing  bool
	reports  map[string]chan string
}

// NewSupervisor spawns the fleet: a control listener on an ephemeral
// TCP port, then one shard process per slot.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	cfg.defaults()
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("box: supervisor: need at least 1 shard")
	}
	if cfg.Command == nil {
		return nil, fmt.Errorf("box: supervisor: no Command")
	}
	s := &Supervisor{
		cfg:     cfg,
		net:     transport.TCPNetwork{},
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		giveups: telemetry.C(MetricGiveUps),
		done:    make(chan struct{}),
	}
	lst, err := s.net.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s.lst = lst
	s.ctlAddr = lst.Addr()
	s.shards = make([]*supShard, cfg.Shards)
	for i := range s.shards {
		tag := ".s" + strconv.Itoa(i)
		s.shards[i] = &supShard{
			idx:      i,
			restarts: telemetry.C(MetricRestarts + tag),
			hbMiss:   telemetry.C(MetricHeartbeatMiss + tag),
			mon:      transport.NewHeartbeatMonitor(cfg.Heartbeat),
			vitals:   map[string]string{},
			reports:  map[string]chan string{},
		}
	}
	go s.acceptLoop()
	go s.watchdog()
	for i := range s.shards {
		if err := s.spawn(i); err != nil {
			s.Stop(2 * time.Second)
			return nil, err
		}
	}
	return s, nil
}

// CtlAddr reports the control-plane address shards dial.
func (s *Supervisor) CtlAddr() string { return s.ctlAddr }

// spawn starts shard i's process and a watcher for its exit.
func (s *Supervisor) spawn(i int) error {
	sh := s.shards[i]
	cmd := s.cfg.Command(i, s.ctlAddr)
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("box: supervisor: spawn shard %d: %w", i, err)
	}
	sh.mu.Lock()
	sh.epoch++
	epoch := sh.epoch
	sh.cmd = cmd
	sh.mon.Reset()
	sh.mu.Unlock()
	s.cfg.Log("sup: shard %d started (pid %d, epoch %d)", i, cmd.Process.Pid, epoch)
	go func() {
		err := cmd.Wait()
		s.onExit(i, epoch, err)
	}()
	return nil
}

// onExit runs when shard i's process (of the given epoch) has exited;
// it decides between restart and give-up.
func (s *Supervisor) onExit(i, epoch int, werr error) {
	s.mu.Lock()
	stopping := s.stopping
	s.mu.Unlock()
	sh := s.shards[i]
	sh.mu.Lock()
	if sh.epoch != epoch {
		sh.mu.Unlock()
		return
	}
	if ctl := sh.ctl; ctl != nil {
		sh.ctl = nil
		ctl.Close()
	}
	sh.carrier = ""
	if stopping || sh.gaveUp {
		sh.mu.Unlock()
		return
	}
	now := time.Now()
	live := sh.times[:0]
	for _, t := range sh.times {
		if now.Sub(t) < s.cfg.Window {
			live = append(live, t)
		}
	}
	sh.times = live
	if len(sh.times) >= s.cfg.MaxRestarts {
		sh.gaveUp = true
		sh.mu.Unlock()
		s.giveups.Inc()
		s.cfg.Log("sup: shard %d gave up: %d restarts inside %v (last exit: %v)",
			i, len(live), s.cfg.Window, werr)
		return
	}
	sh.times = append(sh.times, now)
	attempt := len(sh.times)
	sh.mu.Unlock()

	sh.restarts.Inc()
	backoff := s.cfg.BackoffMin << (attempt - 1)
	if backoff > s.cfg.BackoffMax {
		backoff = s.cfg.BackoffMax
	}
	backoff = s.jitter(backoff)
	s.cfg.Log("sup: shard %d exited (%v); restart %d in %v", i, werr, attempt, backoff)
	time.AfterFunc(backoff, func() {
		s.mu.Lock()
		stopping := s.stopping
		s.mu.Unlock()
		if stopping {
			return
		}
		if err := s.spawn(i); err != nil {
			s.cfg.Log("sup: %v", err)
			s.onExit(i, epoch+1, err)
		}
	})
}

// jitter spreads d over [d/2, 3d/2).
func (s *Supervisor) jitter(d time.Duration) time.Duration {
	s.rngMu.Lock()
	f := 0.5 + s.rng.Float64()
	s.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// acceptLoop attaches incoming control channels to their shard slots.
func (s *Supervisor) acceptLoop() {
	for {
		p, err := s.lst.Accept()
		if err != nil {
			return
		}
		go s.serveCtl(p)
	}
}

// serveCtl drives one shard's control channel: a ctl/ready identifies
// the shard, then heartbeats and report replies stream in until the
// channel dies with the shard.
func (s *Supervisor) serveCtl(p transport.Port) {
	var sh *supShard
	for e := range p.Recv() {
		m := e.Meta
		if m == nil || m.Kind != sig.MetaApp {
			e.Release()
			continue
		}
		switch m.App {
		case CtlReadyApp:
			idx, err := strconv.Atoi(m.Get("s"))
			if err != nil || idx < 0 || idx >= len(s.shards) {
				e.Release()
				p.Close()
				return
			}
			sh = s.shards[idx]
			sh.mu.Lock()
			if old := sh.ctl; old != nil && old != p {
				old.Close()
			}
			sh.ctl = p
			sh.carrier = m.Get("carrier")
			sh.httpAddr = m.Get("http")
			sh.mon.Reset()
			sh.mu.Unlock()
			e.Release()
			s.cfg.Log("sup: shard %d ready (carrier %s)", idx, sh.CarrierAddr())
			s.broadcastAddrs()
		case transport.HeartbeatApp:
			if sh != nil {
				sh.mu.Lock()
				sh.mon.Beat()
				for _, a := range m.Attrs {
					sh.vitals[a.Key] = a.Val
				}
				sh.mu.Unlock()
			}
			e.Release()
		case CtlReportApp:
			if sh != nil {
				id, body := m.Get("id"), m.Get("b")
				sh.mu.Lock()
				ch := sh.reports[id]
				delete(sh.reports, id)
				sh.mu.Unlock()
				if ch != nil {
					ch <- body
				}
			}
			e.Release()
		default:
			e.Release()
		}
	}
}

// broadcastAddrs pushes the full carrier-address table to every
// connected shard. Shards apply it through Router.SetAddr, which
// invalidates carriers toward addresses that changed.
func (s *Supervisor) broadcastAddrs() {
	attrs := make([]sig.Attr, 0, len(s.shards))
	ports := make([]transport.Port, 0, len(s.shards))
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.carrier != "" {
			attrs = sig.SetAttr(attrs, strconv.Itoa(sh.idx), sh.carrier)
		}
		if sh.ctl != nil {
			ports = append(ports, sh.ctl)
		}
		sh.mu.Unlock()
	}
	for _, p := range ports {
		p.Send(sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaApp, App: CtlAddrApp, Attrs: attrs}})
	}
}

// watchdog patrols heartbeat silence: a shard past MaxMissed silent
// intervals gets one /healthz probe, and a failed probe gets a kill —
// the exit watcher then drives the ordinary restart path.
func (s *Supervisor) watchdog() {
	tick := time.NewTicker(s.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-tick.C:
		}
		for i, sh := range s.shards {
			sh.mu.Lock()
			live := sh.ctl != nil && !sh.gaveUp && !sh.probing
			missed := sh.mon.Missed()
			httpAddr := sh.httpAddr
			if live && missed > s.cfg.MaxMissed {
				sh.probing = true
			}
			sh.mu.Unlock()
			if !live || missed <= s.cfg.MaxMissed {
				continue
			}
			sh.hbMiss.Inc()
			go func(i int, sh *supShard, httpAddr string) {
				defer func() {
					sh.mu.Lock()
					sh.probing = false
					sh.mu.Unlock()
				}()
				if probeHealthz(httpAddr) {
					// Alive but tardy (a long GC pause, a loaded box): give
					// it a fresh silence budget rather than killing a
					// healthy shard.
					sh.mu.Lock()
					sh.mon.Reset()
					sh.mu.Unlock()
					s.cfg.Log("sup: shard %d missed heartbeats but probes healthy", i)
					return
				}
				s.cfg.Log("sup: shard %d silent and unprobeable; killing", i)
				s.Kill(i)
			}(i, sh, httpAddr)
		}
	}
}

// probeHealthz asks a shard's telemetry endpoint whether it is alive.
func probeHealthz(addr string) bool {
	if addr == "" {
		return false
	}
	client := http.Client{Timeout: 500 * time.Millisecond}
	resp, err := client.Get("http://" + addr + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Kill SIGKILLs shard i's current process — the chaos entry point; the
// exit watcher observes the death and the restart policy takes over.
func (s *Supervisor) Kill(i int) {
	sh := s.shards[i]
	sh.mu.Lock()
	cmd := sh.cmd
	sh.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Kill()
	}
}

// Pid reports shard i's current process id (0 if not running).
func (s *Supervisor) Pid(i int) int {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.cmd == nil || sh.cmd.Process == nil {
		return 0
	}
	return sh.cmd.Process.Pid
}

// CarrierAddr reports sh's current carrier address ("" while down).
func (sh *supShard) CarrierAddr() string {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.carrier
}

// Carrier reports shard i's current carrier address ("" while down).
func (s *Supervisor) Carrier(i int) string { return s.shards[i].CarrierAddr() }

// GaveUp reports whether shard i exhausted its restart intensity.
func (s *Supervisor) GaveUp(i int) bool {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.gaveUp
}

// Restarts reports how many times shard i has been restarted.
func (s *Supervisor) Restarts(i int) int { return int(s.shards[i].restarts.Value()) }

// Vitals reports the last heartbeat payload seen from shard i — valid
// even while the shard is dead, which is exactly when the fleet gate
// needs the victim's last-known numbers.
func (s *Supervisor) Vitals(i int) map[string]string {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make(map[string]string, len(sh.vitals))
	for k, v := range sh.vitals {
		out[k] = v
	}
	return out
}

// AwaitReady blocks until every non-given-up shard has a live control
// channel and a carrier address, or the timeout passes.
func (s *Supervisor) AwaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ready := true
		for _, sh := range s.shards {
			sh.mu.Lock()
			ok := sh.gaveUp || (sh.ctl != nil && sh.carrier != "")
			sh.mu.Unlock()
			if !ok {
				ready = false
				break
			}
		}
		if ready {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("box: supervisor: fleet not ready after %v", timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Report asks shard i for a report and waits for the reply payload.
func (s *Supervisor) Report(i int, timeout time.Duration) (string, error) {
	sh := s.shards[i]
	id := strconv.FormatUint(s.reqID.Add(1), 10)
	ch := make(chan string, 1)
	sh.mu.Lock()
	ctl := sh.ctl
	if ctl != nil {
		sh.reports[id] = ch
	}
	sh.mu.Unlock()
	if ctl == nil {
		return "", fmt.Errorf("box: supervisor: shard %d has no control channel", i)
	}
	err := ctl.Send(sig.Envelope{Meta: &sig.Meta{
		Kind: sig.MetaApp, App: CtlReportApp, Attrs: sig.NewAttrs("id", id),
	}})
	if err != nil {
		return "", err
	}
	select {
	case body := <-ch:
		return body, nil
	case <-time.After(timeout):
		sh.mu.Lock()
		delete(sh.reports, id)
		sh.mu.Unlock()
		return "", fmt.Errorf("box: supervisor: shard %d report timed out", i)
	}
}

// Stop shuts the fleet down: ctl/stop to every live shard, a grace
// period for clean exits, then SIGKILL for stragglers. Idempotent.
func (s *Supervisor) Stop(grace time.Duration) {
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return
	}
	s.stopping = true
	s.mu.Unlock()
	close(s.done)
	for _, sh := range s.shards {
		sh.mu.Lock()
		ctl := sh.ctl
		sh.mu.Unlock()
		if ctl != nil {
			ctl.Send(sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaApp, App: CtlStopApp}})
		}
	}
	deadline := time.Now().Add(grace)
	for _, sh := range s.shards {
		for {
			sh.mu.Lock()
			cmd := sh.cmd
			sh.mu.Unlock()
			if cmd == nil || cmd.ProcessState != nil {
				break
			}
			if time.Now().After(deadline) {
				cmd.Process.Kill()
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// Reap stragglers we had to kill.
	killDeadline := time.Now().Add(2 * time.Second)
	for _, sh := range s.shards {
		for {
			sh.mu.Lock()
			cmd := sh.cmd
			sh.mu.Unlock()
			if cmd == nil || cmd.ProcessState != nil || time.Now().After(killDeadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	s.lst.Close()
}

// Alive reports whether shard i's process is currently running.
func (s *Supervisor) Alive(i int) bool {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.cmd != nil && sh.cmd.ProcessState == nil
}

// ---------------------------------------------------------------------
// Child side.

// ControlHooks are the shard-process callbacks driven by the control
// channel.
type ControlHooks struct {
	// Vitals stamps each heartbeat with the shard's vital signs. Runs
	// on the transport timer wheel; must not block.
	Vitals func(m *sig.Meta)
	// OnAddrs receives the full shard→carrier-address table.
	OnAddrs func(table map[int]string)
	// OnStop is called when the supervisor requests a clean shutdown.
	OnStop func()
	// Report builds the payload for a ctl/report request.
	Report func() string
}

// ControlClient is the shard-process end of the control channel.
type ControlClient struct {
	port transport.Port
	hb   *transport.Heartbeater
}

// RunControl dials the supervisor, announces readiness, starts
// heartbeating, and services control requests until the channel dies.
func RunControl(net transport.Network, ctlAddr string, shard int, carrierAddr, httpAddr string, every time.Duration, hooks ControlHooks) (*ControlClient, error) {
	p, err := net.Dial(ctlAddr)
	if err != nil {
		return nil, err
	}
	err = p.Send(sig.Envelope{Meta: &sig.Meta{
		Kind: sig.MetaApp,
		App:  CtlReadyApp,
		Attrs: sig.NewAttrs(
			"carrier", carrierAddr,
			"http", httpAddr,
			"s", strconv.Itoa(shard),
		),
	}})
	if err != nil {
		p.Close()
		return nil, err
	}
	c := &ControlClient{port: p}
	c.hb = transport.StartHeartbeat(p, every, hooks.Vitals)
	go c.serve(hooks)
	return c, nil
}

func (c *ControlClient) serve(hooks ControlHooks) {
	for e := range c.port.Recv() {
		m := e.Meta
		if m == nil || m.Kind != sig.MetaApp {
			e.Release()
			continue
		}
		switch m.App {
		case CtlAddrApp:
			table := make(map[int]string, len(m.Attrs))
			for _, a := range m.Attrs {
				if idx, err := strconv.Atoi(a.Key); err == nil {
					table[idx] = a.Val
				}
			}
			e.Release()
			if hooks.OnAddrs != nil {
				hooks.OnAddrs(table)
			}
		case CtlStopApp:
			e.Release()
			if hooks.OnStop != nil {
				hooks.OnStop()
			}
		case CtlReportApp:
			id := m.Get("id")
			e.Release()
			body := ""
			if hooks.Report != nil {
				body = hooks.Report()
			}
			c.port.Send(sig.Envelope{Meta: &sig.Meta{
				Kind:  sig.MetaApp,
				App:   CtlReportApp,
				Attrs: sig.NewAttrs("b", body, "id", id),
			}})
		default:
			e.Release()
		}
	}
	// The control channel is gone: the supervisor died or disowned us.
	// An unsupervised shard must not linger — treat it as a stop.
	// OnStop implementations must be idempotent.
	if hooks.OnStop != nil {
		hooks.OnStop()
	}
}

// Close stops heartbeating and hangs up the control channel.
func (c *ControlClient) Close() {
	c.hb.Stop()
	c.port.Close()
}
