package box

import "time"

// Lifecycle observes signaling-channel setup and teardown at this
// box's edge of the network — the attachment point for the durable
// state layer: setup is where a subscriber registry is consulted,
// teardown is where a call-detail record is cut.
//
// Callbacks run on the box goroutine and must not block or call back
// into the Runner. Each channel produces at most one setup and, if a
// setup was observed, exactly one teardown — whether the channel ends
// by explicit teardown, transport loss, or runner Stop.
type Lifecycle interface {
	// ChannelSetup fires when a signaling channel comes up: on dial
	// (peer is the dialed address) and on a received MetaSetup (peer is
	// the announced far box name).
	ChannelSetup(local, peer, channel string)
	// ChannelTeardown fires when the channel goes away, with the setup
	// observation time for call-duration accounting.
	ChannelTeardown(local, peer, channel string, setupAt time.Time)
}

// lcEntry tracks one live channel for lifecycle accounting. Loop
// goroutine only.
type lcEntry struct {
	peer    string
	setupAt time.Time
}

// SetLifecycle installs the lifecycle observer (nil removes it).
// Install before traffic starts: channels already up when the observer
// is installed produce no setup, and therefore no teardown.
func (r *Runner) SetLifecycle(l Lifecycle) {
	r.Do(func(*Ctx) {
		r.lifecycle = l
		if l != nil && r.lcChans == nil {
			r.lcChans = map[string]lcEntry{}
		}
	})
}

// lcSetup records a channel coming up and fires ChannelSetup. The map
// dedups: a channel already tracked (e.g. an envelope replay) is not
// announced twice. Loop goroutine only.
func (r *Runner) lcSetup(channel, peer string) {
	if r.lifecycle == nil {
		return
	}
	if _, ok := r.lcChans[channel]; ok {
		return
	}
	r.lcChans[channel] = lcEntry{peer: peer, setupAt: time.Now()}
	r.lifecycle.ChannelSetup(r.box.Name(), peer, channel)
}

// lcTeardown fires ChannelTeardown for a tracked channel, exactly
// once: the local OutTeardown, the received MetaTeardown, and the
// port-loss synthesized teardown all funnel here, and whichever lands
// first wins. Loop goroutine only.
func (r *Runner) lcTeardown(channel string) {
	if r.lifecycle == nil {
		return
	}
	e, ok := r.lcChans[channel]
	if !ok {
		return
	}
	delete(r.lcChans, channel)
	r.lifecycle.ChannelTeardown(r.box.Name(), e.peer, channel, e.setupAt)
}

// lcFlush tears down every still-tracked channel — the runner is
// stopping, and CDR accounting must not leak the calls it takes down
// with it. Loop goroutine only.
func (r *Runner) lcFlush() {
	if r.lifecycle == nil {
		return
	}
	for channel, e := range r.lcChans {
		delete(r.lcChans, channel)
		r.lifecycle.ChannelTeardown(r.box.Name(), e.peer, channel, e.setupAt)
	}
}
