package box

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ipmedia/internal/core"
	"ipmedia/internal/sig"
	"ipmedia/internal/transport"
)

// BenchmarkRunnerEvent measures the steady-state envelope dispatch
// path: a typed inbox item in, through Box.Handle, outputs recycled.
// The tentpole claim is 0 allocs/op — no closure per event, no frame
// per Handle, no output buffer per event.
func BenchmarkRunnerEvent(b *testing.B) {
	r := NewRunner(New("bench", core.ServerProfile{Name: "bench"}), transport.NewMemNetwork())
	defer r.Stop()
	r.Do(func(ctx *Ctx) { ctx.Box().AddChannel("c", true) })

	meta := &sig.Meta{Kind: sig.MetaApp, App: "tick"}
	ev := Event{Kind: EvEnvelope, Channel: "c", Env: sig.Envelope{Meta: meta}}
	// Warm the inbox ping-pong buffers and the frame pool.
	for i := 0; i < 1024; i++ {
		r.Inject(ev)
	}
	r.Do(func(*Ctx) {})

	barrier := func(*Ctx) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Inject(ev)
		if i&1023 == 1023 {
			// Periodic barrier so the unbounded inbox reflects a flow-
			// controlled steady state instead of growing to b.N items.
			r.Do(barrier)
		}
	}
	r.Do(barrier) // all b.N events dispatched
}

// TestRunnerEventZeroAlloc is the CI gate for the benchmark's claim.
func TestRunnerEventZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("pool reuse is randomized under -race")
	}
	if testing.Short() {
		t.Skip("benchmark-backed test")
	}
	res := testing.Benchmark(BenchmarkRunnerEvent)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("steady-state dispatch allocates %d allocs/op, want 0", a)
	}
}

// TestBatchedMatchesSequential: a backlog of envelopes crossing the
// inbox as batches must be observed by the box in exactly the order
// and shape as the same envelopes delivered one at a time.
func TestBatchedMatchesSequential(t *testing.T) {
	const n = 500
	script := make([]sig.Envelope, 0, n+2)
	script = append(script, sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaSetup}})
	for i := 0; i < n; i++ {
		script = append(script, sig.Envelope{Meta: &sig.Meta{
			Kind: sig.MetaApp, App: "seq", Attrs: sig.NewAttrs("i", fmt.Sprint(i)),
		}})
	}
	script = append(script, sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaApp, App: "fin"}})

	run := func(batched bool) []string {
		var mu sync.Mutex
		var got []string
		done := make(chan struct{})
		bx := New("eq", core.ServerProfile{Name: "eq"})
		bx.Hook = func(ctx *Ctx, ev *Event) {
			if ev.Kind != EvEnvelope || !ev.Env.IsMeta() {
				return
			}
			mu.Lock()
			got = append(got, ev.Env.Meta.App+"/"+ev.Env.Meta.Get("i"))
			mu.Unlock()
			if ev.Env.Meta.App == "fin" {
				close(done)
			}
		}
		r := NewRunner(bx, transport.NewMemNetwork())
		defer r.Stop()
		if batched {
			// Preload the whole script into a pipe before the runner sees
			// the port: the pump drains it in real multi-envelope batches.
			near, far := transport.Pipe("far", "near")
			for _, e := range script {
				if err := far.Send(e); err != nil {
					t.Fatal(err)
				}
			}
			r.Do(func(ctx *Ctx) {
				ctx.Box().AddChannel("c", false)
				r.addPort("c", near)
			})
		} else {
			r.Do(func(ctx *Ctx) { ctx.Box().AddChannel("c", false) })
			for _, e := range script {
				r.Inject(Event{Kind: EvEnvelope, Channel: "c", Env: e})
			}
		}
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("script did not finish")
		}
		r.Do(func(*Ctx) {})
		mu.Lock()
		defer mu.Unlock()
		return got
	}

	seq := run(false)
	bat := run(true)
	if len(seq) != len(bat) {
		t.Fatalf("sequential saw %d events, batched %d", len(seq), len(bat))
	}
	for i := range seq {
		if seq[i] != bat[i] {
			t.Fatalf("event %d differs: sequential %q, batched %q", i, seq[i], bat[i])
		}
	}
}

// TestStopVsConnect races Stop against in-flight Connect and incoming
// accepts: no deadlock, no post-after-drain, no leaked goroutine
// blocking Stop.
func TestStopVsConnect(t *testing.T) {
	for i := 0; i < 50; i++ {
		net := transport.NewMemNetwork()
		srv := NewRunner(New("S", core.ServerProfile{Name: "S"}), net)
		if err := srv.Listen("S", nil); err != nil {
			t.Fatal(err)
		}
		cli := NewRunner(New("C", core.ServerProfile{Name: "C"}), net)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			cli.Connect("c", "S") // may lose the race with Stop: both fine
		}()
		go func() {
			defer wg.Done()
			cli.Stop()
		}()
		wg.Wait()
		srv.Stop()
	}
}

// TestStopVsTimerFire races Stop against wheel timers firing into the
// inbox: fires that lose the race are refused at the closed inbox,
// never dispatched into a drained loop.
func TestStopVsTimerFire(t *testing.T) {
	for i := 0; i < 25; i++ {
		r := NewRunner(New("T", core.ServerProfile{Name: "T"}), transport.NewMemNetwork())
		r.Do(func(ctx *Ctx) {
			for j := 0; j < 16; j++ {
				ctx.SetTimer(fmt.Sprintf("t%d", j), time.Duration(j)*time.Millisecond)
			}
		})
		time.Sleep(time.Duration(i%8) * time.Millisecond)
		r.Stop()
		noErrs(t, r)
	}
}

// TestPumpExitsOnTransportLoss: when the far side of a channel dies
// without a teardown, the pump must exit, the box must observe a
// synthesized teardown, and Stop must not hang on the pump.
func TestPumpExitsOnTransportLoss(t *testing.T) {
	net := transport.NewMemNetwork()
	srv := NewRunner(New("S", core.ServerProfile{Name: "S"}), net)
	cli := NewRunner(New("C", core.ServerProfile{Name: "C"}), net)
	if err := srv.Listen("S", nil); err != nil {
		t.Fatal(err)
	}
	if err := cli.Connect("c", "S"); err != nil {
		t.Fatal(err)
	}
	await(t, srv, "server side up", func(ctx *Ctx) bool { return ctx.Box().HasChannel("in0") })
	// Kill the server runner: its ports close, the client's pump sees
	// the transport vanish and synthesizes the teardown.
	srv.Stop()
	await(t, cli, "client cleaned up", func(ctx *Ctx) bool { return !ctx.Box().HasChannel("c") })
	cli.Stop() // hangs if the pump goroutine leaked
	noErrs(t, cli)
}

// TestAwaitChannelNotification: AwaitChannel must wake on the accept
// event itself, and report false cleanly on timeout and after Stop.
func TestAwaitChannelNotification(t *testing.T) {
	net := transport.NewMemNetwork()
	srv := NewRunner(New("S", core.ServerProfile{Name: "S"}), net)
	cli := NewRunner(New("C", core.ServerProfile{Name: "C"}), net)
	defer cli.Stop()
	if err := srv.Listen("S", nil); err != nil {
		t.Fatal(err)
	}
	got := make(chan bool, 1)
	go func() { got <- srv.AwaitChannel("in0", 5*time.Second) }()
	time.Sleep(10 * time.Millisecond) // let the waiter register
	if err := cli.Connect("c", "S"); err != nil {
		t.Fatal(err)
	}
	select {
	case ok := <-got:
		if !ok {
			t.Fatal("AwaitChannel returned false for an accepted channel")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AwaitChannel did not wake on accept")
	}
	if srv.AwaitChannel("never", 30*time.Millisecond) {
		t.Fatal("AwaitChannel must time out on a channel that never appears")
	}
	srv.Stop()
	start := time.Now()
	srv.AwaitChannel("in0", 5*time.Second)
	if time.Since(start) > time.Second {
		t.Fatal("AwaitChannel must return promptly after Stop, not wait out the timeout")
	}
}

// BenchmarkRunnerEventEndToEnd measures the full signaling receive
// path the storms exercise per event: wire decode (interned strings,
// pooled Meta frames), inbox crossing, box dispatch, and the runner's
// end-of-dispatch Release that recycles the decode frame.
func BenchmarkRunnerEventEndToEnd(b *testing.B) {
	r := NewRunner(New("bench", core.ServerProfile{Name: "bench"}), transport.NewMemNetwork())
	defer r.Stop()
	r.Do(func(ctx *Ctx) { ctx.Box().AddChannel("c", true) })

	sig.InternSeed("bench", "c", "tick")
	payload := sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaApp, App: "tick",
		Attrs: sig.NewAttrs("from", "bench", "chan", "c")}}.Marshal()

	inject := func() {
		e, err := sig.UnmarshalEnvelope(payload)
		if err != nil {
			b.Fatal(err)
		}
		r.Inject(Event{Kind: EvEnvelope, Channel: "c", Env: e})
	}
	// Warm the inbox ping-pong buffers, the frame pool, and the decode
	// meta pool.
	for i := 0; i < 1024; i++ {
		inject()
	}
	r.Do(func(*Ctx) {})

	barrier := func(*Ctx) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inject()
		if i&63 == 63 {
			// Tight periodic barrier: bounds in-flight decode frames so
			// the meta pool cycles instead of growing.
			r.Do(barrier)
		}
	}
	r.Do(barrier)
}

// TestRunnerEventEndToEndAllocs is the CI gate for the end-to-end
// claim: decode → inbox → dispatch → release allocates nothing in
// steady state.
func TestRunnerEventEndToEndAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("pool reuse is randomized under -race")
	}
	if testing.Short() {
		t.Skip("benchmark-backed test")
	}
	res := testing.Benchmark(BenchmarkRunnerEventEndToEnd)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("end-to-end event path allocates %d allocs/op, want 0", a)
	}
}
