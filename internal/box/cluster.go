// Cluster: the multi-core runtime. A cluster partitions a box
// population across N runtime shards — each shard one loop goroutine,
// one MPSC inbox, one hierarchical timer wheel — so hot dispatch stays
// core-local: a box's events, timers, and channel table are touched
// only by its shard's loop, and nothing on the dispatch path takes a
// lock shared between shards.
//
// Placement is a consistent hash (Lamping–Veach jump hash) of the box
// name. The hash is stable across runs and nearly minimal across
// resizes: growing N shards to N+1 moves ~1/(N+1) of the boxes. That
// matters because placement is the seam this runtime will eventually
// split along — the paper's composition model says nothing about
// co-location, and a channel between two boxes is the same channel
// whether its peer is on this shard (inline ring, drained by our own
// loop), another shard (inline ring, drained by the peer's loop), or
// another process (a TCP pump). Boxes cannot observe their placement;
// "shards today, processes tomorrow" is a config change, not a model
// change.
package box

import (
	"strconv"
	"sync"

	"ipmedia/internal/timerwheel"
	"ipmedia/internal/transport"
)

// Cluster runs boxes across a fixed set of runtime shards.
type Cluster struct {
	net    transport.Network
	shards []*shard

	mu      sync.Mutex
	runners []*Runner
	stopped bool
}

// NewCluster creates a cluster of n shards (n < 1 is treated as 1)
// over net. Each shard gets its own timer wheel; shard s exports
// "runner.inbox_depth.s<s>" and "timerwheel.pending.s<s>" gauges
// alongside the process-wide aggregates.
func NewCluster(net transport.Network, n int) *Cluster {
	if n < 1 {
		n = 1
	}
	c := &Cluster{net: net, shards: make([]*shard, n)}
	for i := range c.shards {
		w := timerwheel.NewNamed(timerwheel.DefaultTick, "s"+strconv.Itoa(i))
		c.shards[i] = newShard(i, w)
	}
	return c
}

// Shards reports the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// ShardOf reports the shard index a box name places onto.
func (c *Cluster) ShardOf(name string) int {
	return ShardOfName(name, len(c.shards))
}

// ShardOfName is the one placement function of the runtime: the shard
// index box name places onto in an n-shard fleet. The in-process
// cluster and the multi-process router share it, so a box keeps its
// owner when shards are promoted from goroutines to OS processes.
func ShardOfName(name string, n int) int {
	if n < 1 {
		n = 1
	}
	return jumpHash(fnv64(name), n)
}

// Runner places b on its hash-assigned shard and returns its runner.
func (c *Cluster) Runner(b *Box) *Runner {
	return c.RunnerOn(c.ShardOf(b.Name()), b)
}

// RunnerOn places b on an explicit shard — for tests and benchmarks
// that need to force co-location or cross-shard traffic.
func (c *Cluster) RunnerOn(shard int, b *Box) *Runner {
	r := newRunner(b, c.net, c.shards[shard], false)
	c.mu.Lock()
	c.runners = append(c.runners, r)
	c.mu.Unlock()
	return r
}

// Stop stops every runner created through the cluster (concurrently —
// cleanup items land on all shards at once), then shuts the shard
// loops and timer wheels down. Idempotent.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if c.stopped {
		rs := c.runners
		c.mu.Unlock()
		for _, r := range rs {
			r.Stop() // waits; a concurrent first Stop may still be draining
		}
		return
	}
	c.stopped = true
	rs := c.runners
	c.mu.Unlock()

	var wg sync.WaitGroup
	for _, r := range rs {
		wg.Add(1)
		go func(r *Runner) {
			defer wg.Done()
			r.Stop()
		}(r)
	}
	wg.Wait()
	for _, s := range c.shards {
		s.close()
	}
	for _, s := range c.shards {
		s.wg.Wait()
		s.wheel.Close()
	}
}

// fnv64 is FNV-1a over a string, the placement key for jump hashing.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// jumpHash is the Lamping–Veach jump consistent hash: maps key to a
// bucket in [0, buckets) such that changing the bucket count moves the
// minimum number of keys.
func jumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}
