package box

import (
	"strings"
	"testing"
	"time"

	"ipmedia/internal/core"
	"ipmedia/internal/sig"
	"ipmedia/internal/transport"
)

// TestProgramCompileErrors: malformed programs are rejected up front.
func TestProgramCompileErrors(t *testing.T) {
	b := New("x", core.ServerProfile{Name: "x"})
	cases := []struct {
		name string
		prog *Program
		want string
	}{
		{"missing initial", &Program{Initial: "nope", States: []*State{{Name: "a"}}}, "initial state"},
		{"duplicate state", &Program{Initial: "a", States: []*State{{Name: "a"}, {Name: "a"}}}, "duplicate"},
		{"dangling transition", &Program{Initial: "a", States: []*State{{
			Name:  "a",
			Trans: []Trans{{When: func(*Ctx) bool { return false }, To: "ghost"}},
		}}}, "undefined state"},
	}
	for _, c := range cases {
		if _, err := b.SetProgram(c.prog); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

// TestProgramLivelockDetected: a guard that is always true with a
// self-loop must be caught, not spin forever.
func TestProgramLivelockDetected(t *testing.T) {
	b := New("x", core.ServerProfile{Name: "x"})
	_, err := b.SetProgram(&Program{
		Initial: "a",
		States: []*State{
			{Name: "a", Trans: []Trans{{When: func(*Ctx) bool { return true }, To: "b"}}},
			{Name: "b", Trans: []Trans{{When: func(*Ctx) bool { return true }, To: "a"}}},
		},
	})
	if err == nil || !strings.Contains(err.Error(), "livelock") {
		t.Fatalf("err = %v, want livelock detection", err)
	}
}

// TestAnnotationProfileOverride: an annotation can carry its own
// profile, distinct from the box profile — the transcoder relies on
// this.
func TestAnnotationProfileOverride(t *testing.T) {
	net := transport.NewMemNetwork()
	dev := NewRunner(New("D", deviceProfile("D", 5004)), net)
	defer dev.Stop()
	if err := dev.Listen("D", nil); err != nil {
		t.Fatal(err)
	}
	srv := NewRunner(New("S", core.ServerProfile{Name: "S"}), net)
	defer srv.Stop()
	if err := srv.Connect("1", "D"); err != nil {
		t.Fatal(err)
	}
	special := core.NewEndpointProfile("special", "hS", 9000, []sig.Codec{sig.G726}, []sig.Codec{sig.G726})
	srv.SetProgram(&Program{
		Initial: "s",
		States: []*State{{
			Name:   "s",
			Annots: []Annot{{Kind: AnnOpen, Slot1: TunnelSlot("1", 0), Medium: sig.Audio, Profile: special}},
		}},
	})
	await(t, dev, "device sees the override profile", func(ctx *Ctx) bool {
		s := ctx.Box().Slot(TunnelSlot("in0", 0))
		if s == nil {
			return false
		}
		d, ok := s.Desc()
		return ok && d.ID.Origin == "special" && d.Port == 9000
	})
	noErrs(t, srv, dev)
}

// TestTimerCancelPreventsFire: a canceled timer must not trigger
// transitions.
func TestTimerCancelPreventsFire(t *testing.T) {
	net := transport.NewMemNetwork()
	srv := NewRunner(New("S", core.ServerProfile{Name: "S"}), net)
	defer srv.Stop()
	fired := make(chan struct{}, 1)
	srv.SetProgram(&Program{
		Initial: "armed",
		States: []*State{
			{
				Name: "armed",
				OnEnter: func(ctx *Ctx) {
					ctx.SetTimer("t", 20*time.Millisecond)
					ctx.CancelTimer("t")
				},
				Trans: []Trans{{When: func(ctx *Ctx) bool { return ctx.OnTimer("t") }, To: "boom"}},
			},
			{Name: "boom", OnEnter: func(*Ctx) { fired <- struct{}{} }},
		},
	})
	select {
	case <-fired:
		t.Fatal("canceled timer fired")
	case <-time.After(100 * time.Millisecond):
	}
	noErrs(t, srv)
}

// TestStaleTimerIgnored: an EvTimer injected without a pending timer is
// not guardable.
func TestStaleTimerIgnored(t *testing.T) {
	b := New("x", core.ServerProfile{Name: "x"})
	if _, err := b.SetProgram(&Program{
		Initial: "a",
		States: []*State{
			{Name: "a", Trans: []Trans{{When: func(ctx *Ctx) bool { return ctx.OnTimer("ghost") }, To: "b"}}},
			{Name: "b"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Handle(Event{Kind: EvTimer, Timer: "ghost"}); err != nil {
		t.Fatal(err)
	}
	if b.State() != "a" {
		t.Fatalf("stale timer fired a transition into %q", b.State())
	}
}

// TestWidowedFlowlinkSlotCleanup: destroying one channel of a
// flowlinked pair must shut the partner slot down cleanly.
func TestWidowedFlowlinkSlotCleanup(t *testing.T) {
	net := transport.NewMemNetwork()
	a := NewRunner(New("A", deviceProfile("A", 5004)), net)
	b := NewRunner(New("B", deviceProfile("B", 5006)), net)
	mid := NewRunner(New("M", core.ServerProfile{Name: "M"}), net)
	defer a.Stop()
	defer b.Stop()
	defer mid.Stop()
	if err := a.Listen("A", nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Listen("B", nil); err != nil {
		t.Fatal(err)
	}
	if err := mid.Connect("ca", "A"); err != nil {
		t.Fatal(err)
	}
	if err := mid.Connect("cb", "B"); err != nil {
		t.Fatal(err)
	}
	mid.Do(func(ctx *Ctx) {
		ctx.SetGoal(core.NewFlowLink(TunnelSlot("ca", 0), TunnelSlot("cb", 0)))
	})
	await(t, a, "A's channel", func(ctx *Ctx) bool { return ctx.Box().HasChannel("in0") })
	a.Do(func(ctx *Ctx) {
		ctx.SetGoal(core.NewOpenSlot(TunnelSlot("in0", 0), sig.Audio, a.Box().Profile()))
	})
	await(t, b, "B flowing", func(ctx *Ctx) bool {
		s := ctx.Box().Slot(TunnelSlot("in0", 0))
		return s != nil && s.IsFlowing()
	})
	// Destroy the A-side channel at the middle box: B's half must be
	// closed by the widowed-slot fallback, not left dangling.
	mid.Do(func(ctx *Ctx) { ctx.Teardown("ca") })
	await(t, b, "B closed", func(ctx *Ctx) bool {
		s := ctx.Box().Slot(TunnelSlot("in0", 0))
		return s != nil && s.IsClosed()
	})
	noErrs(t, a, b, mid)
}
