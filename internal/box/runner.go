// Runner: the live runtime for a box. One goroutine owns the box core;
// transports, timers, and external callers feed it through a typed
// actor inbox. The same box core also runs under the discrete-event
// simulator and the model checker without a Runner.
//
// The runtime is built for footprint: events cross the inbox as typed
// records (no per-event closure), bursts of envelopes cross it as one
// batch, protocol timers share the process-wide hierarchical timer
// wheel, and the box's output buffer is recycled between events — so
// steady-state envelope dispatch allocates nothing.
package box

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
	"ipmedia/internal/timerwheel"
	"ipmedia/internal/transport"
)

// Telemetry instrument names exported by this package.
const (
	// MetricLoopIterations counts events processed by runner loops.
	MetricLoopIterations = "box.loop_iterations"
	// MetricGoalInvocationsPrefix prefixes the per-kind goal invocation
	// counters, e.g. "box.goal_invocations.flowLink".
	MetricGoalInvocationsPrefix = "box.goal_invocations."
	// MetricInboxDepth gauges events queued to runner loops but not yet
	// dispatched, summed over all runners in the process.
	MetricInboxDepth = "runner.inbox_depth"
)

// Pump batch sizing: buffers start small — an idle call-holding port
// should cost bytes, not kilobytes, when a host carries 100k of them —
// and double whenever a drain fills the buffer, up to the max.
const (
	pumpBatchMin = 4
	pumpBatchMax = 64
)

// itemKind discriminates inbox items.
type itemKind uint8

const (
	itemEvent itemKind = iota // one box event
	itemBatch                 // a burst of envelopes for one channel
	itemRun                   // runtime-internal work, run outside the box
)

// inboxItem is one unit of work for the runner loop. Events and
// batches go through the box core; run items execute directly on the
// loop goroutine (they may call handle themselves, e.g. port-loss
// cleanup, which must not nest inside an in-progress Handle).
type inboxItem struct {
	kind  itemKind
	ev    Event           // itemEvent payload; ev.Channel also labels itemBatch
	batch []sig.Envelope  // itemBatch payload, owned by the pump
	ack   chan<- struct{} // itemBatch: signaled when the batch is processed
	run   func()          // itemRun payload
	done  chan struct{}   // itemEvent: signaled after dispatch (Do)
}

// inbox is the runner's MPSC queue: producers append under a mutex,
// the loop swaps the whole pending slice out in one drain. The two
// slices ping-pong, so steady state runs with zero queue allocation
// and one lock round-trip per burst rather than per event.
type inbox struct {
	mu     sync.Mutex
	cond   sync.Cond
	items  []inboxItem
	closed bool
	depth  *telemetry.Gauge
}

func newInbox() *inbox {
	q := &inbox{depth: telemetry.G(MetricInboxDepth)}
	q.cond.L = &q.mu
	return q
}

// push enqueues it, reporting false if the inbox is closed. The
// closed check and the append happen under one lock with drain, so a
// successful push is always processed before the loop exits.
func (q *inbox) push(it inboxItem) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.items = append(q.items, it)
	if len(q.items) == 1 {
		q.cond.Signal()
	}
	q.mu.Unlock()
	q.depth.Inc()
	return true
}

// drain blocks until work is queued, then returns the whole pending
// batch, installing recycled (the previous batch, already processed)
// as the new append target. ok is false once the inbox is closed and
// empty.
func (q *inbox) drain(recycled []inboxItem) ([]inboxItem, bool) {
	for i := range recycled {
		recycled[i] = inboxItem{} // drop envelope/closure references
	}
	q.mu.Lock()
	for len(q.items) == 0 {
		if q.closed {
			q.mu.Unlock()
			return nil, false
		}
		q.cond.Wait()
	}
	batch := q.items
	q.items = recycled[:0]
	q.mu.Unlock()
	q.depth.Add(int64(-len(batch)))
	return batch, true
}

func (q *inbox) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// donePool recycles the completion channels Do blocks on.
var donePool = sync.Pool{New: func() any { return make(chan struct{}, 1) }}

// Runner drives one Box over a transport.Network.
type Runner struct {
	box   *Box
	net   transport.Network
	wheel *timerwheel.Wheel

	inbox    *inbox
	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// loop-goroutine-only state
	ports     map[string]transport.Port
	timers    map[string]*timerwheel.Timer
	acceptN   int
	chanVer   uint64 // box.ChanVersion after the last dispatched item
	lifecycle Lifecycle
	lcChans   map[string]lcEntry

	mu    sync.Mutex
	errs  []error
	notes []string
	trace func(WireEvent)

	waitMu  sync.Mutex
	waiters []chan struct{} // closed when the channel table changes

	mLoop   *telemetry.Counter // runner loop iterations
	mTracer *telemetry.Tracer  // envelope send/recv trace

	// OnError, if set, observes box errors as they happen (testing).
	OnError func(error)
}

// WireEvent is one envelope crossing this box's edge of a signaling
// channel, for live message-sequence traces.
type WireEvent struct {
	Box     string
	Dir     string // "send" or "recv"
	Channel string
	Env     sig.Envelope
	At      time.Time
}

func (e WireEvent) String() string {
	return fmt.Sprintf("%s %s %s %s", e.Box, e.Dir, e.Channel, e.Env)
}

// SetTrace installs a wire observer; pass nil to remove it. The
// callback runs on the box goroutine and must not call back into the
// runner.
func (r *Runner) SetTrace(f func(WireEvent)) {
	r.Do(func(*Ctx) { r.trace = f })
}

func (r *Runner) traceEvent(dir, channel string, env sig.Envelope) {
	if r.trace != nil {
		r.trace(WireEvent{Box: r.box.Name(), Dir: dir, Channel: channel, Env: env, At: time.Now()})
	}
	if r.mTracer != nil {
		r.mTracer.Record(dir, r.box.Name(), channel+" "+env.String())
	}
}

// NewRunner wraps b for live execution over net. All runners in the
// process share one timer wheel and one goroutine apiece; ports add a
// pump goroutine each.
func NewRunner(b *Box, net transport.Network) *Runner {
	r := &Runner{
		box:     b,
		net:     net,
		wheel:   timerwheel.Default(),
		inbox:   newInbox(),
		stopc:   make(chan struct{}),
		ports:   map[string]transport.Port{},
		timers:  map[string]*timerwheel.Timer{},
		mLoop:   telemetry.C(MetricLoopIterations),
		mTracer: telemetry.T(),
	}
	r.wg.Add(1)
	go r.loop()
	return r
}

// Box returns the underlying box. Touch it only via Do.
func (r *Runner) Box() *Box { return r.box }

func (r *Runner) loop() {
	defer r.wg.Done()
	var batch []inboxItem
	for {
		var ok bool
		batch, ok = r.inbox.drain(batch)
		if !ok {
			r.closeAll()
			return
		}
		for i := range batch {
			r.execute(&batch[i])
		}
	}
}

// execute dispatches one inbox item. Loop goroutine only.
func (r *Runner) execute(it *inboxItem) {
	switch it.kind {
	case itemEvent:
		r.mLoop.Inc()
		r.handle(it.ev)
		if it.done != nil {
			it.done <- struct{}{}
		}
	case itemBatch:
		for _, e := range it.batch {
			r.mLoop.Inc()
			r.handle(Event{Kind: EvEnvelope, Channel: it.ev.Channel, Env: e})
		}
		it.ack <- struct{}{}
	case itemRun:
		r.mLoop.Inc()
		it.run()
	}
	if v := r.box.ChanVersion(); v != r.chanVer {
		r.chanVer = v
		r.notifyWaiters()
	}
}

func (r *Runner) closeAll() {
	for _, p := range r.ports {
		p.Close()
	}
	for _, t := range r.timers {
		t.Stop()
	}
	r.lcFlush()
	r.notifyWaiters()
}

// Stop shuts the runner down and waits for the loop, pumps, and accept
// goroutines to exit. Work already queued is processed first; pushes
// that lose the race with Stop are refused, so concurrent Connect,
// Listen, and pump deliveries cannot strand work or touch a drained
// loop.
func (r *Runner) Stop() {
	r.stopOnce.Do(func() {
		close(r.stopc)
		r.inbox.close()
	})
	r.wg.Wait()
}

// Errs returns the box errors observed so far.
func (r *Runner) Errs() []error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]error(nil), r.errs...)
}

// Notes returns the diagnostic notes emitted by the box.
func (r *Runner) Notes() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.notes...)
}

func (r *Runner) fail(err error) {
	if err == nil {
		return
	}
	r.mu.Lock()
	r.errs = append(r.errs, err)
	r.mu.Unlock()
	if r.OnError != nil {
		r.OnError(err)
	}
}

// Do runs f inside the box goroutine and waits for it to finish. It is
// the only safe way to inspect or mutate box state from outside. If
// the runner is stopped, f does not run.
func (r *Runner) Do(f func(ctx *Ctx)) {
	donec := donePool.Get().(chan struct{})
	if !r.inbox.push(inboxItem{kind: itemEvent, ev: Event{Kind: EvCall, Call: f}, done: donec}) {
		donePool.Put(donec)
		return
	}
	// A successful push is always processed before the loop exits, so
	// this wait cannot strand.
	<-donec
	donePool.Put(donec)
}

// SetProgram installs and starts a program on the box.
func (r *Runner) SetProgram(p *Program) {
	r.Do(func(ctx *Ctx) {
		outs, err := r.box.SetProgram(p)
		r.process(outs)
		r.fail(err)
	})
}

// Inject delivers an event as if it came from a transport, for tests.
func (r *Runner) Inject(ev Event) {
	r.inbox.push(inboxItem{kind: itemEvent, ev: ev})
}

// handle runs one event through the box and processes its outputs.
// Loop goroutine only.
func (r *Runner) handle(ev Event) {
	if ev.Kind == EvEnvelope {
		r.traceEvent("recv", ev.Channel, ev.Env)
		if r.lifecycle != nil && ev.Env.Meta != nil {
			switch ev.Env.Meta.Kind {
			case sig.MetaSetup:
				r.lcSetup(ev.Channel, ev.Env.Meta.Attrs["from"])
			case sig.MetaTeardown:
				r.lcTeardown(ev.Channel)
			}
		}
	}
	outs, err := r.box.Handle(ev)
	r.process(outs)
	r.box.Recycle(outs)
	r.fail(err)
}

// process executes box outputs. Loop goroutine only.
func (r *Runner) process(outs []Output) {
	for _, o := range outs {
		switch o.Kind {
		case OutSend:
			if p := r.ports[o.Channel]; p != nil {
				r.traceEvent("send", o.Channel, o.Env)
				p.Send(o.Env)
			}
		case OutDial:
			p, err := r.net.Dial(o.Addr)
			if err != nil {
				// The intended far endpoint is unreachable: synthesize
				// the unavailable meta-signal for the program.
				r.handle(Event{Kind: EvEnvelope, Channel: o.Channel,
					Env: sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaUnavailable}}})
				continue
			}
			r.addPort(o.Channel, p)
			r.lcSetup(o.Channel, o.Addr)
			p.Send(sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaSetup,
				Attrs: map[string]string{"from": r.box.Name(), "chan": o.Channel}}})
		case OutTeardown:
			r.lcTeardown(o.Channel)
			if p := r.ports[o.Channel]; p != nil {
				p.Send(sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaTeardown}})
				p.Close()
				delete(r.ports, o.Channel)
			}
		case OutTimerSet:
			if t := r.timers[o.Timer]; t != nil {
				t.Stop()
			}
			name := o.Timer
			r.timers[name] = r.wheel.Schedule(o.Dur, func() {
				// Wheel goroutine: just post; the box's pendingT set makes
				// stale fires (cancel racing this post) harmless.
				r.inbox.push(inboxItem{kind: itemEvent, ev: Event{Kind: EvTimer, Timer: name}})
			})
		case OutTimerCancel:
			if t := r.timers[o.Timer]; t != nil {
				t.Stop()
				delete(r.timers, o.Timer)
			}
		case OutNote:
			r.mu.Lock()
			r.notes = append(r.notes, o.Note)
			r.mu.Unlock()
		}
	}
}

// addPort registers a connected port and starts its pump. Loop
// goroutine only.
func (r *Runner) addPort(channel string, p transport.Port) {
	r.ports[channel] = p
	r.wg.Add(1)
	go r.pump(channel, p)
}

// pump moves envelopes from a port into the inbox until the transport
// goes away, then posts the port-loss cleanup. Batch-capable ports
// deliver bursts as single inbox items from ping-ponged buffers; the
// loop acks each batch so a buffer is refilled only after its
// envelopes were dispatched.
func (r *Runner) pump(channel string, p transport.Port) {
	defer r.wg.Done()
	if bp, ok := p.(transport.BatchPort); ok {
		var bufs [2][]sig.Envelope
		ack := make(chan struct{}, 2)
		outstanding, cur, want := 0, 0, pumpBatchMin
		for {
			if outstanding == 2 {
				<-ack
				outstanding--
			}
			if len(bufs[cur]) < want {
				bufs[cur] = make([]sig.Envelope, want)
			}
			n, ok := bp.RecvBatch(bufs[cur])
			if !ok {
				break
			}
			if n == len(bufs[cur]) && want < pumpBatchMax {
				want *= 2 // saturated drain: the port is bursty, scale up
			}
			if !r.inbox.push(inboxItem{kind: itemBatch,
				ev: Event{Kind: EvEnvelope, Channel: channel}, batch: bufs[cur][:n], ack: ack}) {
				return
			}
			outstanding++
			cur ^= 1
		}
	} else {
		for e := range p.Recv() {
			if !r.inbox.push(inboxItem{kind: itemEvent,
				ev: Event{Kind: EvEnvelope, Channel: channel, Env: e}}) {
				return
			}
		}
	}
	// Transport gone without a teardown: synthesize one so the box
	// cleans up. Run items execute outside the box core because
	// portLost re-enters handle.
	r.inbox.push(inboxItem{kind: itemRun, run: func() { r.portLost(channel, p) }})
}

// portLost is the loop-side cleanup when a transport disappears. Loop
// goroutine only. The loss only counts if p is still the registered
// port: a teardown-then-redial reuses the channel name, and the old
// pump's parting report must not kill the new channel.
func (r *Runner) portLost(channel string, p transport.Port) {
	if r.ports[channel] != p {
		return
	}
	p.Close()
	delete(r.ports, channel)
	if r.box.HasChannel(channel) {
		r.handle(Event{Kind: EvEnvelope, Channel: channel,
			Env: sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaTeardown}}})
	}
}

// Listen accepts signaling channels at addr. Accepted channels are
// named in0, in1, ... unless nameFor is non-nil.
func (r *Runner) Listen(addr string, nameFor func(n int) string) error {
	l, err := r.net.Listen(addr)
	if err != nil {
		return err
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer l.Close()
		for {
			p, err := l.Accept()
			if err != nil {
				return
			}
			port := p
			ok := r.inbox.push(inboxItem{kind: itemRun, run: func() {
				n := r.acceptN
				r.acceptN++
				name := "in" + strconv.Itoa(n)
				if nameFor != nil {
					name = nameFor(n)
				}
				r.box.AddChannel(name, false)
				r.addPort(name, port)
			}})
			if !ok {
				// Lost the race with Stop: the loop will never register
				// this port, so close it here instead of leaking it.
				port.Close()
				return
			}
		}
	}()
	go func() {
		<-r.stopc
		l.Close()
	}()
	return nil
}

// notifyWaiters wakes every AwaitChannel waiter.
func (r *Runner) notifyWaiters() {
	r.waitMu.Lock()
	ws := r.waiters
	r.waiters = nil
	r.waitMu.Unlock()
	for _, w := range ws {
		close(w)
	}
}

// AwaitChannel waits until the box has a channel with the given name
// (e.g. an accepted incoming channel) and reports whether it appeared
// before the timeout. Waiting is notification-based: the loop wakes
// waiters whenever the channel table changes.
func (r *Runner) AwaitChannel(name string, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		// Register before checking, so a change that lands between the
		// check and the wait cannot be missed.
		w := make(chan struct{})
		r.waitMu.Lock()
		r.waiters = append(r.waiters, w)
		r.waitMu.Unlock()

		has := false
		r.Do(func(*Ctx) { has = r.box.HasChannel(name) })
		if has {
			return true
		}
		d := time.Until(deadline)
		if d <= 0 {
			return false
		}
		t := time.NewTimer(d)
		select {
		case <-w:
			t.Stop()
		case <-t.C:
			return false
		case <-r.stopc:
			t.Stop()
			return false
		}
	}
}

// Connect dials addr and registers the channel under the given name,
// synchronously. It is the out-of-program counterpart of Ctx.Dial,
// used by devices placing calls.
func (r *Runner) Connect(channel, addr string) error {
	var err error
	r.Do(func(ctx *Ctx) {
		if r.box.HasChannel(channel) {
			err = fmt.Errorf("box %s: channel %q already exists", r.box.Name(), channel)
			return
		}
		var p transport.Port
		p, err = r.net.Dial(addr)
		if err != nil {
			return
		}
		r.box.AddChannel(channel, true)
		r.addPort(channel, p)
		r.lcSetup(channel, addr)
		p.Send(sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaSetup,
			Attrs: map[string]string{"from": r.box.Name(), "chan": channel}}})
	})
	return err
}
