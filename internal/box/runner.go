// Runner: the live runtime for a box. One goroutine owns the box core;
// transports, timers, and external callers feed it through an actor
// inbox. The same box core also runs under the discrete-event
// simulator and the model checker without a Runner.
package box

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
	"ipmedia/internal/transport"
)

// Telemetry instrument names exported by this package.
const (
	// MetricLoopIterations counts events processed by runner loops.
	MetricLoopIterations = "box.loop_iterations"
	// MetricGoalInvocationsPrefix prefixes the per-kind goal invocation
	// counters, e.g. "box.goal_invocations.flowLink".
	MetricGoalInvocationsPrefix = "box.goal_invocations."
)

// Runner drives one Box over a transport.Network.
type Runner struct {
	box *Box
	net transport.Network

	inbox    chan func()
	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// loop-goroutine-only state
	ports   map[string]transport.Port
	timers  map[string]*time.Timer
	acceptN int

	mu    sync.Mutex
	errs  []error
	notes []string
	trace func(WireEvent)

	mLoop   *telemetry.Counter // runner loop iterations
	mTracer *telemetry.Tracer  // envelope send/recv trace

	// OnError, if set, observes box errors as they happen (testing).
	OnError func(error)
}

// WireEvent is one envelope crossing this box's edge of a signaling
// channel, for live message-sequence traces.
type WireEvent struct {
	Box     string
	Dir     string // "send" or "recv"
	Channel string
	Env     sig.Envelope
	At      time.Time
}

func (e WireEvent) String() string {
	return fmt.Sprintf("%s %s %s %s", e.Box, e.Dir, e.Channel, e.Env)
}

// SetTrace installs a wire observer; pass nil to remove it. The
// callback runs on the box goroutine and must not call back into the
// runner.
func (r *Runner) SetTrace(f func(WireEvent)) {
	r.Do(func(*Ctx) { r.trace = f })
}

func (r *Runner) traceEvent(dir, channel string, env sig.Envelope) {
	if r.trace != nil {
		r.trace(WireEvent{Box: r.box.Name(), Dir: dir, Channel: channel, Env: env, At: time.Now()})
	}
	if r.mTracer != nil {
		r.mTracer.Record(dir, r.box.Name(), channel+" "+env.String())
	}
}

// NewRunner wraps b for live execution over net.
func NewRunner(b *Box, net transport.Network) *Runner {
	r := &Runner{
		box:     b,
		net:     net,
		inbox:   make(chan func(), 256),
		done:    make(chan struct{}),
		ports:   map[string]transport.Port{},
		timers:  map[string]*time.Timer{},
		mLoop:   telemetry.C(MetricLoopIterations),
		mTracer: telemetry.T(),
	}
	r.wg.Add(1)
	go r.loop()
	return r
}

// Box returns the underlying box. Touch it only via Do.
func (r *Runner) Box() *Box { return r.box }

func (r *Runner) loop() {
	defer r.wg.Done()
	for {
		select {
		case f := <-r.inbox:
			r.mLoop.Inc()
			f()
		case <-r.done:
			// Drain anything already queued, then stop.
			for {
				select {
				case f := <-r.inbox:
					r.mLoop.Inc()
					f()
				default:
					r.closeAll()
					return
				}
			}
		}
	}
}

func (r *Runner) closeAll() {
	for _, p := range r.ports {
		p.Close()
	}
	for _, t := range r.timers {
		t.Stop()
	}
}

// post queues f for the loop goroutine; it drops the work if the
// runner has stopped.
func (r *Runner) post(f func()) {
	select {
	case r.inbox <- f:
	case <-r.done:
	}
}

// Stop shuts the runner down and waits for the loop to exit.
func (r *Runner) Stop() {
	r.stopOnce.Do(func() { close(r.done) })
	r.wg.Wait()
}

// Errs returns the box errors observed so far.
func (r *Runner) Errs() []error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]error(nil), r.errs...)
}

// Notes returns the diagnostic notes emitted by the box.
func (r *Runner) Notes() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.notes...)
}

func (r *Runner) fail(err error) {
	if err == nil {
		return
	}
	r.mu.Lock()
	r.errs = append(r.errs, err)
	r.mu.Unlock()
	if r.OnError != nil {
		r.OnError(err)
	}
}

// Do runs f inside the box goroutine and waits for it to finish. It is
// the only safe way to inspect or mutate box state from outside.
func (r *Runner) Do(f func(ctx *Ctx)) {
	donec := make(chan struct{})
	r.post(func() {
		defer close(donec)
		r.handle(Event{Kind: EvCall, Call: f})
	})
	select {
	case <-donec:
	case <-r.done:
	}
}

// SetProgram installs and starts a program on the box.
func (r *Runner) SetProgram(p *Program) {
	r.Do(func(ctx *Ctx) {
		outs, err := r.box.SetProgram(p)
		r.process(outs)
		r.fail(err)
	})
}

// Inject delivers an event as if it came from a transport, for tests.
func (r *Runner) Inject(ev Event) {
	r.post(func() { r.handle(ev) })
}

// handle runs one event through the box and processes its outputs.
// Loop goroutine only.
func (r *Runner) handle(ev Event) {
	if ev.Kind == EvEnvelope {
		r.traceEvent("recv", ev.Channel, ev.Env)
	}
	outs, err := r.box.Handle(ev)
	r.process(outs)
	r.fail(err)
}

// process executes box outputs. Loop goroutine only.
func (r *Runner) process(outs []Output) {
	for _, o := range outs {
		switch o.Kind {
		case OutSend:
			if p := r.ports[o.Channel]; p != nil {
				r.traceEvent("send", o.Channel, o.Env)
				p.Send(o.Env)
			}
		case OutDial:
			p, err := r.net.Dial(o.Addr)
			if err != nil {
				// The intended far endpoint is unreachable: synthesize
				// the unavailable meta-signal for the program.
				r.handle(Event{Kind: EvEnvelope, Channel: o.Channel,
					Env: sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaUnavailable}}})
				continue
			}
			r.addPort(o.Channel, p)
			p.Send(sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaSetup, Attrs: map[string]string{"from": r.box.Name()}}})
		case OutTeardown:
			if p := r.ports[o.Channel]; p != nil {
				p.Send(sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaTeardown}})
				p.Close()
				delete(r.ports, o.Channel)
			}
		case OutTimerSet:
			if t := r.timers[o.Timer]; t != nil {
				t.Stop()
			}
			name := o.Timer
			r.timers[name] = time.AfterFunc(o.Dur, func() {
				r.post(func() { r.handle(Event{Kind: EvTimer, Timer: name}) })
			})
		case OutTimerCancel:
			if t := r.timers[o.Timer]; t != nil {
				t.Stop()
				delete(r.timers, o.Timer)
			}
		case OutNote:
			r.mu.Lock()
			r.notes = append(r.notes, o.Note)
			r.mu.Unlock()
		}
	}
}

// addPort registers a connected port and pumps its envelopes into the
// loop. Loop goroutine only.
func (r *Runner) addPort(channel string, p transport.Port) {
	r.ports[channel] = p
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for e := range p.Recv() {
			ev := Event{Kind: EvEnvelope, Channel: channel, Env: e}
			r.post(func() { r.handle(ev) })
		}
		// Transport gone without a teardown: synthesize one so the box
		// cleans up, unless the channel is already gone.
		r.post(func() {
			if r.box.HasChannel(channel) {
				r.handle(Event{Kind: EvEnvelope, Channel: channel,
					Env: sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaTeardown}}})
			}
			if r.ports[channel] != nil {
				r.ports[channel].Close()
				delete(r.ports, channel)
			}
		})
	}()
}

// Listen accepts signaling channels at addr. Accepted channels are
// named in0, in1, ... unless nameFor is non-nil.
func (r *Runner) Listen(addr string, nameFor func(n int) string) error {
	l, err := r.net.Listen(addr)
	if err != nil {
		return err
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer l.Close()
		for {
			p, err := l.Accept()
			if err != nil {
				return
			}
			r.post(func() {
				n := r.acceptN
				r.acceptN++
				name := "in" + strconv.Itoa(n)
				if nameFor != nil {
					name = nameFor(n)
				}
				r.box.AddChannel(name, false)
				r.addPort(name, p)
			})
		}
	}()
	go func() {
		<-r.done
		l.Close()
	}()
	return nil
}

// AwaitChannel waits until the box has a channel with the given name
// (e.g. an accepted incoming channel) and reports whether it appeared
// before the timeout.
func (r *Runner) AwaitChannel(name string, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		has := false
		r.Do(func(*Ctx) { has = r.box.HasChannel(name) })
		if has {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// Connect dials addr and registers the channel under the given name,
// synchronously. It is the out-of-program counterpart of Ctx.Dial,
// used by devices placing calls.
func (r *Runner) Connect(channel, addr string) error {
	var err error
	r.Do(func(ctx *Ctx) {
		if r.box.HasChannel(channel) {
			err = fmt.Errorf("box %s: channel %q already exists", r.box.Name(), channel)
			return
		}
		var p transport.Port
		p, err = r.net.Dial(addr)
		if err != nil {
			return
		}
		r.box.AddChannel(channel, true)
		r.addPort(channel, p)
		p.Send(sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaSetup, Attrs: map[string]string{"from": r.box.Name()}}})
	})
	return err
}
