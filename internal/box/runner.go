// Runner: the live runtime for a box. A runtime shard owns a set of
// boxes: one loop goroutine drives their cores, one hierarchical timer
// wheel serves their protocol timers, and one MPSC inbox feeds them
// events from transports, timers, and external callers. The same box
// core also runs under the discrete-event simulator and the model
// checker without a Runner.
//
// Standalone runners (NewRunner) get a private shard — one box, one
// loop — and share a package-wide timer wheel. A Cluster partitions
// many boxes across N shards by consistent hash of box name, giving
// each core its own inbox, wheel, and channel state so hot dispatch
// never takes a cross-core lock (see cluster.go).
//
// The runtime is built for footprint: events cross the inbox as typed
// records (no per-event closure), bursts of envelopes cross it as one
// batch, in-process channels are SPSC rings drained inline by the
// consumer's shard (no pump goroutine per port), and the box's output
// buffer is recycled between events — so steady-state envelope
// dispatch allocates nothing.
package box

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
	"ipmedia/internal/timerwheel"
	"ipmedia/internal/transport"
)

// Telemetry instrument names exported by this package.
const (
	// MetricLoopIterations counts events processed by runner loops.
	MetricLoopIterations = "box.loop_iterations"
	// MetricGoalInvocationsPrefix prefixes the per-kind goal invocation
	// counters, e.g. "box.goal_invocations.flowLink".
	MetricGoalInvocationsPrefix = "box.goal_invocations."
	// MetricInboxDepth gauges events queued to runner loops but not yet
	// dispatched, summed over all shards in the process. Cluster shards
	// additionally expose "runner.inbox_depth.s<N>" per shard.
	MetricInboxDepth = "runner.inbox_depth"
)

// Pump batch sizing: buffers start small — an idle call-holding port
// should cost bytes, not kilobytes, when a host carries 100k of them —
// and double whenever a drain fills the buffer, up to the max.
const (
	pumpBatchMin = 4
	pumpBatchMax = 64
)

// Ring draining: envelopes moved per TryRecvBatch call, and the
// fairness cap — after this many envelopes from one ring in one inbox
// item, the shard loop re-posts the drain and serves other boxes.
const (
	ringDrainBatch = 64
	ringDrainMax   = 256
)

// Caches of per-channel setup metas and per-timer fire closures are
// capped so a pathological churn of unique names cannot grow a runner
// without bound. Real boxes hold a handful of channels and timers.
const runnerCacheCap = 512

// itemKind discriminates inbox items.
type itemKind uint8

const (
	itemEvent itemKind = iota // one box event
	itemBatch                 // a burst of envelopes for one channel
	itemRun                   // runtime-internal work, run outside the box
	itemRing                  // drain an inline (SPSC ring) port
	itemStop                  // finish a runner: cleanup, release Stop
)

// inboxItem is one unit of work for a shard loop. Events and batches
// go through the box core; run items execute directly on the loop
// goroutine (they may call handle themselves, e.g. port-loss cleanup,
// which must not nest inside an in-progress Handle). Every item names
// the runner it belongs to: shards multiplex many runners over one
// loop.
type inboxItem struct {
	kind  itemKind
	r     *Runner
	ev    Event                // itemEvent payload; ev.Channel also labels itemBatch/itemRing
	batch []sig.Envelope       // itemBatch payload, owned by the pump
	ack   chan<- struct{}      // itemBatch: signaled when the batch is processed
	run   func()               // itemRun payload
	ring  transport.InlinePort // itemRing payload
	done  chan struct{}        // itemEvent: signaled after dispatch (Do)
}

// inbox is the shard's MPSC queue: producers append under a mutex,
// the loop swaps the whole pending slice out in one drain. The two
// slices ping-pong, so steady state runs with zero queue allocation
// and one lock round-trip per burst rather than per event.
//
// The inbox mutex is also the runner-liveness lock: each runner's
// closed flag is read by push and written by pushStop under it, so a
// successful push is always processed before the runner's stop item,
// and nothing is enqueued after it.
type inbox struct {
	mu         sync.Mutex
	cond       sync.Cond
	items      []inboxItem
	closed     bool
	depth      *telemetry.Gauge // process-wide aggregate
	depthShard *telemetry.Gauge // per-shard (nil for standalone shards)
}

func newInbox(shardGauge *telemetry.Gauge) *inbox {
	q := &inbox{depth: telemetry.G(MetricInboxDepth), depthShard: shardGauge}
	q.cond.L = &q.mu
	return q
}

// push enqueues it, reporting false if the inbox — or the item's
// runner — is closed. The checks and the append happen under one lock
// with drain, so a successful push is always processed before the
// loop (or the runner) exits.
func (q *inbox) push(it inboxItem) bool {
	q.mu.Lock()
	if q.closed || (it.r != nil && it.r.closed) {
		q.mu.Unlock()
		return false
	}
	q.items = append(q.items, it)
	if len(q.items) == 1 {
		q.cond.Signal()
	}
	q.mu.Unlock()
	q.depth.Inc()
	q.depthShard.Inc()
	return true
}

// drain blocks until work is queued, then returns the whole pending
// batch, installing recycled (the previous batch, already processed)
// as the new append target. ok is false once the inbox is closed and
// empty.
func (q *inbox) drain(recycled []inboxItem) ([]inboxItem, bool) {
	for i := range recycled {
		recycled[i] = inboxItem{} // drop envelope/closure references
	}
	q.mu.Lock()
	for len(q.items) == 0 {
		if q.closed {
			q.mu.Unlock()
			return nil, false
		}
		q.cond.Wait()
	}
	batch := q.items
	q.items = recycled[:0]
	q.mu.Unlock()
	q.depth.Add(int64(-len(batch)))
	q.depthShard.Add(int64(-len(batch)))
	return batch, true
}

func (q *inbox) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// shard is one slice of the runtime: a loop goroutine, an inbox, and a
// timer wheel, serving every runner placed on it. Standalone runners
// own a private shard (id -1); Cluster shards are numbered and export
// per-shard depth gauges.
type shard struct {
	id    int
	inbox *inbox
	wheel *timerwheel.Wheel
	wg    sync.WaitGroup

	mLoop *telemetry.Counter

	// ringBuf is the loop-goroutine-only scratch buffer for draining
	// inline ports.
	ringBuf [ringDrainBatch]sig.Envelope
}

func newShard(id int, wheel *timerwheel.Wheel) *shard {
	var g *telemetry.Gauge
	if id >= 0 {
		g = telemetry.G(MetricInboxDepth + ".s" + strconv.Itoa(id))
	}
	s := &shard{
		id:    id,
		inbox: newInbox(g),
		wheel: wheel,
		mLoop: telemetry.C(MetricLoopIterations),
	}
	s.wg.Add(1)
	go s.loop()
	return s
}

func (s *shard) loop() {
	defer s.wg.Done()
	var batch []inboxItem
	for {
		var ok bool
		batch, ok = s.inbox.drain(batch)
		if !ok {
			return
		}
		n := 0
		for i := range batch {
			n += batch[i].r.execute(&batch[i])
		}
		// One counter round-trip per drain, not per event: under load a
		// drain carries a burst, and the shared atomic would otherwise
		// bounce between every core on every dispatch.
		s.mLoop.Add(uint64(n))
	}
}

func (s *shard) close() { s.inbox.close() }

// donePool recycles the completion channels Do blocks on.
var donePool = sync.Pool{New: func() any { return make(chan struct{}, 1) }}

// Runner drives one Box over a transport.Network, multiplexed onto a
// runtime shard.
type Runner struct {
	box *Box
	net transport.Network
	sh  *shard

	closed   bool // guarded by sh.inbox.mu; set by pushStop
	stopc    chan struct{}
	stopDone chan struct{}
	stopOnce sync.Once
	ownShard bool
	wg       sync.WaitGroup // pumps and accept goroutines

	// loop-goroutine-only state
	ports     map[string]transport.Port
	timers    map[string]*timerwheel.Timer
	timerFns  map[string]func()
	setupMeta map[string]*sig.Meta
	acceptN   int
	chanVer   uint64 // box.ChanVersion after the last dispatched item
	lifecycle Lifecycle
	lcChans   map[string]lcEntry

	mu    sync.Mutex
	errs  []error
	notes []string
	trace func(WireEvent)

	waitMu  sync.Mutex
	waiters map[string][]chan struct{} // per-channel-name AwaitChannel waiters

	mTracer *telemetry.Tracer // envelope send/recv trace

	// OnError, if set, observes box errors as they happen (testing).
	OnError func(error)
}

// WireEvent is one envelope crossing this box's edge of a signaling
// channel, for live message-sequence traces.
type WireEvent struct {
	Box     string
	Dir     string // "send" or "recv"
	Channel string
	Env     sig.Envelope
	At      time.Time
}

func (e WireEvent) String() string {
	return fmt.Sprintf("%s %s %s %s", e.Box, e.Dir, e.Channel, e.Env)
}

// SetTrace installs a wire observer; pass nil to remove it. The
// callback runs on the box goroutine and must not call back into the
// runner.
func (r *Runner) SetTrace(f func(WireEvent)) {
	r.Do(func(*Ctx) { r.trace = f })
}

func (r *Runner) traceEvent(dir, channel string, env sig.Envelope) {
	if r.trace != nil {
		r.trace(WireEvent{Box: r.box.Name(), Dir: dir, Channel: channel, Env: env, At: time.Now()})
	}
	// Armed is the advisory gate that keeps the always-on tracer free:
	// rendering env.String() costs several allocations per event, so it
	// only happens while someone is watching the trace.
	if r.mTracer.Armed() {
		r.mTracer.Record(dir, r.box.Name(), channel+" "+env.String())
	}
}

// NewRunner wraps b for live execution over net on a private shard:
// one loop goroutine for this box, timers on the package-wide solo
// wheel. Boxes that should share cores and wheels belong on a Cluster.
func NewRunner(b *Box, net transport.Network) *Runner {
	return newRunner(b, net, newShard(-1, soloWheel()), true)
}

func newRunner(b *Box, net transport.Network, sh *shard, own bool) *Runner {
	b.TrackDirtyChannels()
	return &Runner{
		box:       b,
		net:       net,
		sh:        sh,
		ownShard:  own,
		stopc:     make(chan struct{}),
		stopDone:  make(chan struct{}),
		ports:     map[string]transport.Port{},
		timers:    map[string]*timerwheel.Timer{},
		timerFns:  map[string]func(){},
		setupMeta: map[string]*sig.Meta{},
		mTracer:   telemetry.T(),
	}
}

// Box returns the underlying box. Touch it only via Do.
func (r *Runner) Box() *Box { return r.box }

// Shard reports the shard index this runner is placed on; -1 for a
// standalone runner.
func (r *Runner) Shard() int { return r.sh.id }

// execute dispatches one inbox item and returns the number of loop
// iterations (box events) it amounted to. Shard loop goroutine only.
func (r *Runner) execute(it *inboxItem) int {
	n := 0
	switch it.kind {
	case itemEvent:
		n = 1
		r.handle(it.ev)
		if it.done != nil {
			it.done <- struct{}{}
		}
	case itemBatch:
		n = len(it.batch)
		for _, e := range it.batch {
			r.handle(Event{Kind: EvEnvelope, Channel: it.ev.Channel, Env: e})
		}
		it.ack <- struct{}{}
	case itemRun:
		n = 1
		it.run()
	case itemRing:
		n = r.drainRing(it.ev.Channel, it.ring)
	case itemStop:
		r.closeAll()
		close(r.stopDone)
	}
	if v := r.box.ChanVersion(); v != r.chanVer {
		r.chanVer = v
		r.notifyChanged()
	}
	return n
}

// drainRing moves pending envelopes out of an inline port and through
// the box, up to the fairness cap; past the cap it re-posts itself so
// one busy channel cannot starve the shard's other boxes. Loop
// goroutine only.
func (r *Runner) drainRing(channel string, ip transport.InlinePort) int {
	if r.ports[channel] != transport.Port(ip) {
		// Stale notification: the channel was torn down or redialed
		// after this item was posted.
		return 0
	}
	buf := r.sh.ringBuf[:]
	events := 0
	for events < ringDrainMax {
		n, ok := ip.TryRecvBatch(buf)
		if n == 0 {
			if !ok {
				r.portLost(channel, ip)
			}
			// Empty ring: the readiness edge was re-armed by
			// TryRecvBatch, so the next push re-posts us.
			return events
		}
		for i := 0; i < n; i++ {
			r.handle(Event{Kind: EvEnvelope, Channel: channel, Env: buf[i]})
			buf[i] = sig.Envelope{}
			if r.ports[channel] != transport.Port(ip) {
				// The box tore this channel down mid-burst; the rest of
				// the ring is for a dead channel.
				return events + i + 1
			}
		}
		events += n
	}
	// Fairness cap hit with the ring possibly non-empty and the edge
	// NOT re-armed: hand the loop back and queue another drain.
	r.sh.inbox.push(inboxItem{kind: itemRing, r: r,
		ev: Event{Kind: EvEnvelope, Channel: channel}, ring: ip})
	return events
}

// closeAll is the runner's loop-side cleanup, executed by its stop
// item (or inline by Stop when the shard loop is already gone).
func (r *Runner) closeAll() {
	for _, p := range r.ports {
		p.Close()
	}
	for _, t := range r.timers {
		t.Stop()
	}
	r.lcFlush()
	r.notifyAllWaiters()
}

// pushStop marks the runner closed and enqueues its stop item in one
// critical section: everything pushed before is processed first,
// nothing lands after. pushed reports whether the item was enqueued;
// already reports the runner was closed beforehand (a concurrent Stop
// owns the item).
func (r *Runner) pushStop() (pushed, already bool) {
	q := r.sh.inbox
	q.mu.Lock()
	if r.closed {
		q.mu.Unlock()
		return false, true
	}
	r.closed = true
	if q.closed {
		q.mu.Unlock()
		return false, false
	}
	q.items = append(q.items, inboxItem{kind: itemStop, r: r})
	if len(q.items) == 1 {
		q.cond.Signal()
	}
	q.mu.Unlock()
	q.depth.Inc()
	q.depthShard.Inc()
	return true, false
}

// Stop shuts the runner down and waits for its cleanup, pumps, and
// accept goroutines. Work already queued is processed first; pushes
// that lose the race with Stop are refused, so concurrent Connect,
// Listen, and pump deliveries cannot strand work or touch a drained
// loop. On a shared (Cluster) shard the loop itself keeps running for
// the other boxes; a standalone runner's private shard exits.
func (r *Runner) Stop() {
	r.stopOnce.Do(func() {
		close(r.stopc)
		pushed, already := r.pushStop()
		if !pushed && !already {
			// The shard loop is gone (inbox closed before this runner
			// stopped), so no stop item will ever execute. With the loop
			// dead its state is safe to clean from here.
			r.closeAll()
			close(r.stopDone)
		}
	})
	<-r.stopDone
	if r.ownShard {
		r.sh.close()
		r.sh.wg.Wait()
	}
	r.wg.Wait()
}

// Errs returns the box errors observed so far.
func (r *Runner) Errs() []error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]error(nil), r.errs...)
}

// Notes returns the diagnostic notes emitted by the box.
func (r *Runner) Notes() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.notes...)
}

func (r *Runner) fail(err error) {
	if err == nil {
		return
	}
	r.mu.Lock()
	r.errs = append(r.errs, err)
	r.mu.Unlock()
	if r.OnError != nil {
		r.OnError(err)
	}
}

// Do runs f inside the box's shard loop and waits for it to finish. It
// is the only safe way to inspect or mutate box state from outside. If
// the runner is stopped, f does not run. Do must not be called from
// box or program code: a loop goroutine blocking on a runner of its
// own shard would wait on itself.
func (r *Runner) Do(f func(ctx *Ctx)) {
	donec := donePool.Get().(chan struct{})
	if !r.sh.inbox.push(inboxItem{kind: itemEvent, r: r, ev: Event{Kind: EvCall, Call: f}, done: donec}) {
		donePool.Put(donec)
		return
	}
	// A successful push is always processed before the loop exits, so
	// this wait cannot strand.
	<-donec
	donePool.Put(donec)
}

// SetProgram installs and starts a program on the box.
func (r *Runner) SetProgram(p *Program) {
	r.Do(func(ctx *Ctx) {
		outs, err := r.box.SetProgram(p)
		r.process(outs)
		r.fail(err)
	})
}

// Inject delivers an event as if it came from a transport, for tests.
func (r *Runner) Inject(ev Event) {
	r.sh.inbox.push(inboxItem{kind: itemEvent, r: r, ev: ev})
}

// handle runs one event through the box and processes its outputs.
// Loop goroutine only.
func (r *Runner) handle(ev Event) {
	if ev.Kind == EvEnvelope {
		r.traceEvent("recv", ev.Channel, ev.Env)
		if r.lifecycle != nil && ev.Env.Meta != nil {
			switch ev.Env.Meta.Kind {
			case sig.MetaSetup:
				r.lcSetup(ev.Channel, ev.Env.Meta.Get("from"))
			case sig.MetaTeardown:
				r.lcTeardown(ev.Channel)
			}
		}
	}
	outs, err := r.box.Handle(ev)
	// Dispatch is complete: recycle the decode-owned Meta frame (no-op
	// for hand-built envelopes). Handlers that keep attr data past this
	// point hold the strings, never the frame.
	ev.Env.Release()
	r.process(outs)
	r.box.Recycle(outs)
	r.fail(err)
}

// setupMetaFor returns the (immutable) setup meta announcing this box
// on the named channel. Dial-heavy workloads redial the same channel
// names constantly; caching the meta and its attrs map keeps redial
// from allocating. Loop goroutine only.
func (r *Runner) setupMetaFor(channel string) *sig.Meta {
	if m := r.setupMeta[channel]; m != nil {
		return m
	}
	m := &sig.Meta{Kind: sig.MetaSetup,
		Attrs: sig.NewAttrs("from", r.box.Name(), "chan", channel)}
	// Seed the decoder's intern table with the names this meta will put
	// on the wire, so the peer decodes them without allocating.
	sig.InternSeed(r.box.Name(), channel)
	if len(r.setupMeta) < runnerCacheCap {
		r.setupMeta[channel] = m
	}
	return m
}

// timerFnFor returns the inbox-posting fire closure for the named
// timer, cached so re-arming a recurring timer does not allocate a new
// closure per arm. Loop goroutine only.
func (r *Runner) timerFnFor(name string) func() {
	if fn := r.timerFns[name]; fn != nil {
		return fn
	}
	fn := func() {
		// Wheel goroutine: just post; the box's pendingT set makes
		// stale fires (cancel racing this post) harmless.
		r.sh.inbox.push(inboxItem{kind: itemEvent, r: r, ev: Event{Kind: EvTimer, Timer: name}})
	}
	if len(r.timerFns) < runnerCacheCap {
		r.timerFns[name] = fn
	}
	return fn
}

// process executes box outputs. Loop goroutine only.
func (r *Runner) process(outs []Output) {
	for _, o := range outs {
		switch o.Kind {
		case OutSend:
			if p := r.ports[o.Channel]; p != nil {
				r.traceEvent("send", o.Channel, o.Env)
				p.Send(o.Env)
			}
		case OutDial:
			p, err := r.net.Dial(o.Addr)
			if err != nil {
				// The intended far endpoint is unreachable: synthesize
				// the unavailable meta-signal for the program. Through the
				// inbox, not inline — a program that redials straight from
				// its unavailable transition would otherwise recurse
				// process→handle→process unboundedly while the target is
				// down (e.g. its listener stopping first during cluster
				// shutdown), and the refused-after-stop push is what ends
				// the cycle once this runner is closed.
				r.sh.inbox.push(inboxItem{kind: itemEvent, r: r,
					ev: Event{Kind: EvEnvelope, Channel: o.Channel,
						Env: sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaUnavailable}}}})
				continue
			}
			r.addPort(o.Channel, p)
			r.lcSetup(o.Channel, o.Addr)
			p.Send(sig.Envelope{Meta: r.setupMetaFor(o.Channel)})
		case OutTeardown:
			r.lcTeardown(o.Channel)
			if p := r.ports[o.Channel]; p != nil {
				p.Send(sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaTeardown}})
				p.Close()
				delete(r.ports, o.Channel)
			}
		case OutTimerSet:
			if t := r.timers[o.Timer]; t != nil {
				t.Stop()
			}
			r.timers[o.Timer] = r.sh.wheel.Schedule(o.Dur, r.timerFnFor(o.Timer))
		case OutTimerCancel:
			if t := r.timers[o.Timer]; t != nil {
				t.Stop()
				delete(r.timers, o.Timer)
			}
		case OutNote:
			r.mu.Lock()
			r.notes = append(r.notes, o.Note)
			r.mu.Unlock()
		}
	}
}

// addPort registers a connected port. Inline (SPSC ring) ports are
// drained by the shard loop on readiness notifications — no goroutine;
// everything else gets a pump. Loop goroutine only.
func (r *Runner) addPort(channel string, p transport.Port) {
	r.ports[channel] = p
	if ip, ok := p.(transport.InlinePort); ok {
		ip.SetReady(func() {
			// Producer's goroutine, one edge per empty→non-empty
			// transition. A refused push means the runner stopped; its
			// cleanup closes the port.
			r.sh.inbox.push(inboxItem{kind: itemRing, r: r,
				ev: Event{Kind: EvEnvelope, Channel: channel}, ring: ip})
		})
		return
	}
	r.wg.Add(1)
	go r.pump(channel, p)
}

// pump moves envelopes from a port into the inbox until the transport
// goes away, then posts the port-loss cleanup. Batch-capable ports
// deliver bursts as single inbox items from ping-ponged buffers; the
// loop acks each batch so a buffer is refilled only after its
// envelopes were dispatched.
func (r *Runner) pump(channel string, p transport.Port) {
	defer r.wg.Done()
	if bp, ok := p.(transport.BatchPort); ok {
		var bufs [2][]sig.Envelope
		ack := make(chan struct{}, 2)
		outstanding, cur, want := 0, 0, pumpBatchMin
		for {
			if outstanding == 2 {
				<-ack
				outstanding--
			}
			if len(bufs[cur]) < want {
				bufs[cur] = make([]sig.Envelope, want)
			}
			n, ok := bp.RecvBatch(bufs[cur])
			if !ok {
				break
			}
			if n == len(bufs[cur]) && want < pumpBatchMax {
				want *= 2 // saturated drain: the port is bursty, scale up
			}
			if !r.sh.inbox.push(inboxItem{kind: itemBatch, r: r,
				ev: Event{Kind: EvEnvelope, Channel: channel}, batch: bufs[cur][:n], ack: ack}) {
				return
			}
			outstanding++
			cur ^= 1
		}
	} else {
		for e := range p.Recv() {
			if !r.sh.inbox.push(inboxItem{kind: itemEvent, r: r,
				ev: Event{Kind: EvEnvelope, Channel: channel, Env: e}}) {
				return
			}
		}
	}
	// Transport gone without a teardown: synthesize one so the box
	// cleans up. Run items execute outside the box core because
	// portLost re-enters handle.
	r.sh.inbox.push(inboxItem{kind: itemRun, r: r, run: func() { r.portLost(channel, p) }})
}

// portLost is the loop-side cleanup when a transport disappears. Loop
// goroutine only. The loss only counts if p is still the registered
// port: a teardown-then-redial reuses the channel name, and the old
// pump's parting report must not kill the new channel.
func (r *Runner) portLost(channel string, p transport.Port) {
	if r.ports[channel] != p {
		return
	}
	p.Close()
	delete(r.ports, channel)
	if r.box.HasChannel(channel) {
		r.handle(Event{Kind: EvEnvelope, Channel: channel,
			Env: sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaTeardown}}})
	}
}

// Listen accepts signaling channels at addr. Accepted channels are
// named in0, in1, ... unless nameFor is non-nil.
func (r *Runner) Listen(addr string, nameFor func(n int) string) error {
	l, err := r.net.Listen(addr)
	if err != nil {
		return err
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer l.Close()
		for {
			p, err := l.Accept()
			if err != nil {
				return
			}
			port := p
			ok := r.sh.inbox.push(inboxItem{kind: itemRun, r: r, run: func() {
				n := r.acceptN
				r.acceptN++
				name := "in" + strconv.Itoa(n)
				if nameFor != nil {
					name = nameFor(n)
				}
				r.box.AddChannel(name, false)
				r.addPort(name, port)
			}})
			if !ok {
				// Lost the race with Stop: the loop will never register
				// this port, so close it here instead of leaking it.
				port.Close()
				return
			}
		}
	}()
	go func() {
		<-r.stopc
		l.Close()
	}()
	return nil
}

// notifyChanged wakes the AwaitChannel waiters of exactly the channels
// the last dispatch touched. With 100k boxes redialing on a host,
// waking every waiter in the process on every table change melts into
// a thundering herd; per-key wakeups keep AwaitChannel O(changes).
// Loop goroutine only.
func (r *Runner) notifyChanged() {
	names := r.box.DirtyChannels()
	if len(names) == 0 {
		// Version moved without named dirt (tracking toggled off):
		// fall back to waking everyone rather than missing a waiter.
		r.notifyAllWaiters()
		return
	}
	r.waitMu.Lock()
	for _, name := range names {
		if ws := r.waiters[name]; len(ws) > 0 {
			for _, w := range ws {
				close(w)
			}
			delete(r.waiters, name)
		}
	}
	r.waitMu.Unlock()
	r.box.ResetDirtyChannels()
}

// notifyAllWaiters wakes every AwaitChannel waiter (runner shutdown,
// or a table change without attribution).
func (r *Runner) notifyAllWaiters() {
	r.waitMu.Lock()
	for name, ws := range r.waiters {
		for _, w := range ws {
			close(w)
		}
		delete(r.waiters, name)
	}
	r.waitMu.Unlock()
}

// unwait removes a waiter that stopped waiting (found its channel, or
// timed out) so abandoned registrations do not pile up on hot names.
func (r *Runner) unwait(name string, w chan struct{}) {
	r.waitMu.Lock()
	ws := r.waiters[name]
	for i, c := range ws {
		if c == w {
			ws[i] = ws[len(ws)-1]
			ws[len(ws)-1] = nil
			r.waiters[name] = ws[:len(ws)-1]
			break
		}
	}
	if len(r.waiters[name]) == 0 {
		delete(r.waiters, name)
	}
	r.waitMu.Unlock()
}

// AwaitChannel waits until the box has a channel with the given name
// (e.g. an accepted incoming channel) and reports whether it appeared
// before the timeout. Waiting is notification-based and keyed: the
// loop wakes exactly the waiters of channels whose table entries
// changed.
func (r *Runner) AwaitChannel(name string, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		// Register before checking, so a change that lands between the
		// check and the wait cannot be missed.
		w := make(chan struct{})
		r.waitMu.Lock()
		if r.waiters == nil {
			r.waiters = map[string][]chan struct{}{}
		}
		r.waiters[name] = append(r.waiters[name], w)
		r.waitMu.Unlock()

		has := false
		r.Do(func(*Ctx) { has = r.box.HasChannel(name) })
		if has {
			r.unwait(name, w)
			return true
		}
		d := time.Until(deadline)
		if d <= 0 {
			r.unwait(name, w)
			return false
		}
		t := time.NewTimer(d)
		select {
		case <-w:
			t.Stop()
		case <-t.C:
			r.unwait(name, w)
			return false
		case <-r.stopc:
			t.Stop()
			r.unwait(name, w)
			return false
		}
	}
}

// Connect dials addr and registers the channel under the given name,
// synchronously. It is the out-of-program counterpart of Ctx.Dial,
// used by devices placing calls.
func (r *Runner) Connect(channel, addr string) error {
	var err error
	r.Do(func(ctx *Ctx) {
		if r.box.HasChannel(channel) {
			err = fmt.Errorf("box %s: channel %q already exists", r.box.Name(), channel)
			return
		}
		var p transport.Port
		p, err = r.net.Dial(addr)
		if err != nil {
			return
		}
		r.box.AddChannel(channel, true)
		r.addPort(channel, p)
		r.lcSetup(channel, addr)
		p.Send(sig.Envelope{Meta: r.setupMetaFor(channel)})
	})
	return err
}
