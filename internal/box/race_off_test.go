//go:build !race

package box

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
