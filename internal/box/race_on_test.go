//go:build race

package box

// raceEnabled reports whether the race detector is active; zero-alloc
// assertions are skipped under it because it defeats pool reuse.
const raceEnabled = true
