// Router: placement-agnostic channels for a multi-process fleet. The
// router is a transport.Network whose Dial consults the cluster's one
// placement function (ShardOfName) and picks the wire accordingly: a
// box owned by this shard process is reached over the process-local
// network (inline rings drained by our own loops), a box owned by a
// peer shard is reached over that shard's inter-shard carrier via the
// transport mux. Listen is symmetric — every listener is reachable
// both locally and from every peer — so boxes still cannot observe
// their placement: "shards today, processes tomorrow" stays a config
// change, not a model change.
//
// The address table (shard index → carrier address) is swappable at
// runtime: when the supervisor restarts a crashed shard it comes back
// on a fresh ephemeral carrier address, and SetAddr both installs the
// new address and invalidates the mux carrier toward the old one —
// otherwise redials climbing the backoff ladder toward the dead
// address would pin every cross-shard channel down until the reliable
// layer's give-up budget expired, well past the paper's §V bound.
package box

import (
	"fmt"
	"sync"
	"time"

	"ipmedia/internal/transport"
)

// RouterAddrWait bounds how long a Dial toward a peer shard waits for
// that shard's carrier address to be known. It covers the window
// between a shard crash and the supervisor's address re-broadcast;
// dials inside the window block briefly instead of failing.
const RouterAddrWait = 3 * time.Second

// Router routes box channels by placement. It implements
// transport.Network for the box runtime of one shard process.
type Router struct {
	self  int
	n     int
	local transport.Network
	mux   *transport.Mux

	mu     sync.Mutex
	addrs  []string
	closed bool
}

// NewRouter creates the router for shard self of an n-shard fleet.
// local carries same-process channels; mux carries cross-process ones.
func NewRouter(self, n int, local transport.Network, mux *transport.Mux) *Router {
	if n < 1 {
		n = 1
	}
	return &Router{self: self, n: n, local: local, mux: mux, addrs: make([]string, n)}
}

// Self reports this router's shard index.
func (r *Router) Self() int { return r.self }

// Shards reports the fleet size.
func (r *Router) Shards() int { return r.n }

// Owner reports the shard that owns a box address.
func (r *Router) Owner(addr string) int { return ShardOfName(addr, r.n) }

// SetAddr installs shard's carrier address. If the shard moved (a
// supervisor restart put it on a fresh ephemeral port) the carrier
// toward the old address is invalidated so its channels fail fast and
// redial against the new one.
func (r *Router) SetAddr(shard int, addr string) {
	if shard < 0 || shard >= r.n || shard == r.self {
		return
	}
	r.mu.Lock()
	old := r.addrs[shard]
	r.addrs[shard] = addr
	r.mu.Unlock()
	if old != "" && old != addr {
		r.mux.Invalidate(old)
	}
}

// AddrOf reports the known carrier address of a shard ("" if unknown).
func (r *Router) AddrOf(shard int) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if shard < 0 || shard >= r.n {
		return ""
	}
	return r.addrs[shard]
}

// awaitAddr waits up to RouterAddrWait for shard's carrier address.
// Restarts are rare and the wait is bounded, so a small poll is
// simpler and no less correct than a broadcast variable.
func (r *Router) awaitAddr(shard int) (string, error) {
	deadline := time.Now().Add(RouterAddrWait)
	for {
		r.mu.Lock()
		closed, addr := r.closed, r.addrs[shard]
		r.mu.Unlock()
		if closed {
			return "", transport.ErrClosed
		}
		if addr != "" {
			return addr, nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("box: router: no carrier address for shard %d", shard)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Dial implements transport.Network: local wire for our own boxes,
// mux channel over the owner's carrier for everyone else.
func (r *Router) Dial(addr string) (transport.Port, error) {
	owner := ShardOfName(addr, r.n)
	if owner == r.self {
		return r.local.Dial(addr)
	}
	carrier, err := r.awaitAddr(owner)
	if err != nil {
		return nil, err
	}
	return r.mux.Dial(carrier, addr)
}

// Listen implements transport.Network: the listener accepts channels
// from both the process-local network and every inter-shard carrier.
func (r *Router) Listen(addr string) (transport.Listener, error) {
	ll, err := r.local.Listen(addr)
	if err != nil {
		return nil, err
	}
	ml, err := r.mux.Listen(addr)
	if err != nil {
		ll.Close()
		return nil, err
	}
	l := &routedListener{
		addr: addr,
		subs: []transport.Listener{ll, ml},
		out:  make(chan transport.Port, 64),
		done: make(chan struct{}),
	}
	for _, sub := range l.subs {
		go l.fan(sub)
	}
	return l, nil
}

// Close marks the router closed; pending awaitAddr calls fail. The
// local network and mux have their own lifecycles and are not closed
// here.
func (r *Router) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
}

// routedListener fans two accept streams (local + mux) into one.
type routedListener struct {
	addr string
	subs []transport.Listener
	out  chan transport.Port
	done chan struct{}
	once sync.Once
}

func (l *routedListener) fan(sub transport.Listener) {
	for {
		p, err := sub.Accept()
		if err != nil {
			return
		}
		select {
		case l.out <- p:
		case <-l.done:
			p.Close()
			return
		}
	}
}

func (l *routedListener) Accept() (transport.Port, error) {
	select {
	case p := <-l.out:
		return p, nil
	case <-l.done:
		return nil, transport.ErrClosed
	}
}

func (l *routedListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		for _, sub := range l.subs {
			sub.Close()
		}
	})
	return nil
}

func (l *routedListener) Addr() string { return l.addr }
