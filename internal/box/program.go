// The state-oriented programming model of paper Section IV-A: in each
// state of a box program, annotations give a static description of the
// programmer's goal for each slot; guarded transitions move between
// states. The runtime conceals the individual media signals from the
// programmer — programs respond mostly to meta-signals, timeouts, and
// the four slot predicates.
package box

import (
	"fmt"
	"time"

	"ipmedia/internal/core"
	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
)

// AnnotKind enumerates goal annotations.
type AnnotKind uint8

// The annotation kinds: the four primitives plus the uncoordinated
// forwarder baseline.
const (
	AnnOpen AnnotKind = iota
	AnnClose
	AnnHold
	AnnLink
	AnnForward
)

// Annot is a goal annotation on a program state. Profile overrides the
// box profile for this goal when non-nil.
type Annot struct {
	Kind    AnnotKind
	Slot1   string
	Slot2   string // AnnLink / AnnForward only
	Medium  sig.Medium
	Profile core.Profile
}

// OpenSlotAnn annotates openSlot(slot, medium).
func OpenSlotAnn(slot string, m sig.Medium) Annot {
	return Annot{Kind: AnnOpen, Slot1: slot, Medium: m}
}

// CloseSlotAnn annotates closeSlot(slot).
func CloseSlotAnn(slot string) Annot { return Annot{Kind: AnnClose, Slot1: slot} }

// HoldSlotAnn annotates holdSlot(slot).
func HoldSlotAnn(slot string) Annot { return Annot{Kind: AnnHold, Slot1: slot} }

// FlowLinkAnn annotates flowLink(s1, s2).
func FlowLinkAnn(s1, s2 string) Annot { return Annot{Kind: AnnLink, Slot1: s1, Slot2: s2} }

// ForwardAnn annotates the naive forwarding baseline over two slots.
func ForwardAnn(s1, s2 string) Annot { return Annot{Kind: AnnForward, Slot1: s1, Slot2: s2} }

// equalAnnot reports whether two annotations denote the same goal, so
// the runtime can keep the same goal object across states (paper
// Section IV-B: "Because the annotation controlling slot 2a is the
// same in both states twoCalls and ringback, the openLink object
// controlling 2a is also the same").
func equalAnnot(a, b Annot) bool { return a == b }

// Guard is a transition predicate. Slot-state guards (IsFlowing and
// friends) are level-triggered: they fire as soon as the program
// enters the state if already true, or when they become true while the
// program remains in the state. Event guards (OnMeta, OnTimer, OnApp)
// are edge-triggered on the current event.
type Guard func(ctx *Ctx) bool

// Trans is one guarded transition.
type Trans struct {
	When Guard
	To   string
	Do   func(ctx *Ctx)
}

// State is one program state.
type State struct {
	Name    string
	Annots  []Annot
	OnEnter func(ctx *Ctx)
	Trans   []Trans
}

// Program is a box program: a finite-state machine over States.
// Terminate is the conventional name of a final state; entering it
// runs its OnEnter and stops.
type Program struct {
	Initial string
	States  []*State
	byName  map[string]*State
}

// compile indexes the program and validates state references.
func (p *Program) compile() error {
	p.byName = make(map[string]*State, len(p.States))
	for _, s := range p.States {
		if _, dup := p.byName[s.Name]; dup {
			return fmt.Errorf("box: duplicate program state %q", s.Name)
		}
		p.byName[s.Name] = s
	}
	if p.byName[p.Initial] == nil {
		return fmt.Errorf("box: initial state %q not defined", p.Initial)
	}
	for _, s := range p.States {
		for _, tr := range s.Trans {
			if p.byName[tr.To] == nil {
				return fmt.Errorf("box: state %q transitions to undefined state %q", s.Name, tr.To)
			}
		}
	}
	return nil
}

// ClearProgram detaches the box's program; existing goal objects stay
// in control of their slots until replaced.
func (b *Box) ClearProgram() {
	b.program = nil
	b.state = ""
}

// SetProgram installs and starts a program on the box. The initial
// state is entered immediately; its annotations attach goal objects.
func (b *Box) SetProgram(p *Program) ([]Output, error) {
	if err := p.compile(); err != nil {
		return nil, err
	}
	b.program = p
	b.outs = nil
	ctx := &Ctx{b: b}
	if err := b.enterState(ctx, p.Initial); err != nil {
		return b.outs, err
	}
	if err := b.step(ctx); err != nil {
		return b.outs, err
	}
	outs := b.outs
	b.outs = nil
	return outs, nil
}

// enterState makes the named state current: it runs OnEnter, then
// reconciles goal objects with the state's annotations.
func (b *Box) enterState(ctx *Ctx, name string) error {
	st := b.program.byName[name]
	if st == nil {
		return fmt.Errorf("box %s: no program state %q", b.name, name)
	}
	b.state = name
	if st.OnEnter != nil {
		st.OnEnter(ctx)
		if ctx.err != nil {
			return ctx.err
		}
	}
	return b.reconcileGoals(st)
}

// annotOf returns the annotation that created a goal object, if the
// goal was annotation-created.
type annotated struct {
	core.Goal
	ann Annot
}

func (b *Box) reconcileGoals(st *State) error {
	for _, ann := range st.Annots {
		// Keep the existing goal object if the same annotation already
		// controls the slot(s).
		if cur, ok := b.goals[ann.Slot1].(*annotated); ok && equalAnnot(cur.ann, ann) {
			continue
		}
		g, err := b.buildGoal(ann)
		if err != nil {
			return err
		}
		if err := b.install(&annotated{Goal: g, ann: ann}); err != nil {
			return fmt.Errorf("box %s state %s: %w", b.name, st.Name, err)
		}
	}
	// Safety net: if a new annotation took over one slot of a two-slot
	// goal (e.g. a flowlink redirected to a different partner), the
	// abandoned slot must not stay attached to the old goal object —
	// two controllers would fight over the shared slot. It falls back
	// to the box default.
	for name, g := range b.goals {
		stale := false
		for _, other := range g.SlotNames() {
			if b.goals[other] != g {
				stale = true
				break
			}
		}
		if !stale {
			continue
		}
		delete(b.goals, name)
		if _, err := b.ensureGoal(name); err != nil {
			return fmt.Errorf("box %s state %s: reassigning %s: %w", b.name, st.Name, name, err)
		}
	}
	return nil
}

func (b *Box) buildGoal(ann Annot) (core.Goal, error) {
	prof := ann.Profile
	if prof == nil {
		prof = b.profile
	}
	switch ann.Kind {
	case AnnOpen:
		// Enforce the paper's precondition here: openSlot(s,m) can
		// annotate a state only if s is closed on entry.
		if s := b.slots[ann.Slot1]; s != nil && (s.State() != slot.Closed || s.OwesCloseAck()) {
			return nil, fmt.Errorf("openSlot(%s) precondition: slot is %s", ann.Slot1, s.State())
		}
		return core.NewOpenSlot(ann.Slot1, ann.Medium, prof), nil
	case AnnClose:
		return core.NewCloseSlot(ann.Slot1), nil
	case AnnHold:
		return core.NewHoldSlot(ann.Slot1, prof), nil
	case AnnLink:
		return core.NewFlowLink(ann.Slot1, ann.Slot2), nil
	case AnnForward:
		return core.NewForwarder(ann.Slot1, ann.Slot2), nil
	default:
		return nil, fmt.Errorf("unknown annotation kind %d", ann.Kind)
	}
}

// step fires enabled transitions until none is enabled. A bound guards
// against programs that loop without consuming anything.
func (b *Box) step(ctx *Ctx) error {
	if b.program == nil {
		return nil
	}
	for rounds := 0; ; rounds++ {
		if rounds > 64 {
			return fmt.Errorf("box %s: program livelock in state %s", b.name, b.state)
		}
		st := b.program.byName[b.state]
		if st == nil {
			return nil
		}
		fired := false
		for _, tr := range st.Trans {
			if tr.When(ctx) {
				if tr.Do != nil {
					tr.Do(ctx)
					if ctx.err != nil {
						return ctx.err
					}
				}
				if err := b.enterState(ctx, tr.To); err != nil {
					return err
				}
				fired = true
				break
			}
		}
		if !fired {
			return nil
		}
		// Event guards must not refire in subsequent states.
		ctx.ev = nil
	}
}

// Ctx is the programming interface available to program actions,
// hooks, and EvCall closures. It exposes the slot predicates of paper
// Section IV-A and the meta-actions programs need.
type Ctx struct {
	b   *Box
	ev  *Event
	err error
}

// Box returns the underlying box.
func (c *Ctx) Box() *Box { return c.b }

// Fail records an error that aborts the current event's processing.
func (c *Ctx) Fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// IsClosed reports the closed predicate for a slot; missing slots read
// as closed.
func (c *Ctx) IsClosed(name string) bool {
	s := c.b.slots[name]
	return s == nil || s.IsClosed()
}

// IsOpening reports the opening predicate for a slot.
func (c *Ctx) IsOpening(name string) bool {
	s := c.b.slots[name]
	return s != nil && s.IsOpening()
}

// IsOpened reports the opened predicate for a slot.
func (c *Ctx) IsOpened(name string) bool {
	s := c.b.slots[name]
	return s != nil && s.IsOpened()
}

// IsFlowing reports the flowing predicate for a slot.
func (c *Ctx) IsFlowing(name string) bool {
	s := c.b.slots[name]
	return s != nil && s.IsFlowing()
}

// OnMeta reports whether the current event is the given meta-signal on
// the given channel.
func (c *Ctx) OnMeta(channel string, kind sig.MetaKind) bool {
	return c.ev != nil && c.ev.Kind == EvEnvelope && c.ev.Channel == channel &&
		c.ev.Env.IsMeta() && c.ev.Env.Meta.Kind == kind
}

// OnApp reports whether the current event is the named application
// meta-signal on the given channel.
func (c *Ctx) OnApp(channel, app string) bool {
	return c.OnMeta(channel, sig.MetaApp) && c.ev.Env.Meta.App == app
}

// OnTimer reports whether the current event is the named timer firing.
func (c *Ctx) OnTimer(name string) bool {
	return c.ev != nil && c.ev.Kind == EvTimer && c.ev.Timer == name
}

// Event returns the current event, or nil in later transition rounds.
func (c *Ctx) Event() *Event { return c.ev }

// Dial creates a signaling channel named channel toward addr. The
// channel's slots exist immediately; the runtime completes the
// connection.
func (c *Ctx) Dial(channel, addr string) {
	if c.b.chans[channel] != nil {
		c.Fail(fmt.Errorf("box %s: channel %q already exists", c.b.name, channel))
		return
	}
	c.b.AddChannel(channel, true)
	c.b.outs = append(c.b.outs, Output{Kind: OutDial, Channel: channel, Addr: addr})
}

// Teardown destroys a signaling channel and all its tunnels and slots.
func (c *Ctx) Teardown(channel string) {
	if c.b.chans[channel] == nil {
		return
	}
	c.b.destroyChannel(channel)
	c.b.outs = append(c.b.outs, Output{Kind: OutTeardown, Channel: channel})
}

// SendMeta emits a meta-signal on a channel.
func (c *Ctx) SendMeta(channel string, m sig.Meta) {
	c.b.outs = append(c.b.outs, Output{Kind: OutSend, Channel: channel, Env: sig.Envelope{Meta: &m}})
}

// SetTimer arms (or re-arms) a named timer.
func (c *Ctx) SetTimer(name string, d time.Duration) {
	c.b.pendingT[name] = true
	c.b.outs = append(c.b.outs, Output{Kind: OutTimerSet, Timer: name, Dur: d})
}

// CancelTimer disarms a named timer.
func (c *Ctx) CancelTimer(name string) {
	delete(c.b.pendingT, name)
	c.b.outs = append(c.b.outs, Output{Kind: OutTimerCancel, Timer: name})
}

// SetGoal installs a goal object directly, outside any program
// annotation. Devices and resources use this for autonomous behavior.
func (c *Ctx) SetGoal(g core.Goal) {
	if err := c.b.install(g); err != nil {
		c.Fail(err)
	}
}

// Refresh tells the goal controlling the named slot that the box's
// media profile changed (the modify event of paper Figure 5).
func (c *Ctx) Refresh(slotName string, inChanged, outChanged bool) {
	g := c.b.goals[slotName]
	if g == nil {
		return
	}
	acts, err := g.Refresh(c.b, inChanged, outChanged)
	if err != nil {
		c.Fail(err)
		return
	}
	c.b.emitActions(acts)
}

// SendRaw emits a tunnel signal without slot bookkeeping or
// validation. It exists only for the uncoordinated-server baseline of
// paper Figure 2, whose boxes are not protocol endpoints.
func (c *Ctx) SendRaw(channel string, tunnel int, g sig.Signal) {
	c.b.outs = append(c.b.outs, Output{Kind: OutSend, Channel: channel, Env: sig.Envelope{Tunnel: tunnel, Sig: g}})
}

// Note emits a diagnostic output.
func (c *Ctx) Note(format string, args ...any) {
	c.b.outs = append(c.b.outs, Output{Kind: OutNote, Note: fmt.Sprintf(format, args...)})
}
