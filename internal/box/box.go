// Package box implements the box runtime of paper Section VII: Box
// objects contain the high-level code that calls on Goal and Slot
// objects, with a Maps association between slots and the goal objects
// controlling them, and the state-oriented programming model of
// Section IV (program states carrying goal annotations, with guarded
// transitions).
//
// The Box core is strictly synchronous and clock-free: events go in,
// outputs come out. Runtimes — the goroutine Runner in this package,
// the discrete-event simulator, and the model checker — own delivery,
// timing, and transports. This is what lets the same box code run over
// in-process queues, TCP, virtual time, and exhaustive exploration.
package box

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"ipmedia/internal/core"
	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
	"ipmedia/internal/telemetry"
)

// TunnelSlot names the slot at this box for tunnel i of the named
// channel. All slots follow this convention, so programs can refer to
// slots of channels they create.
func TunnelSlot(channel string, i int) string {
	return channel + ".t" + strconv.Itoa(i)
}

// slotChannel recovers the channel name and tunnel index from a slot
// name.
func slotChannel(name string) (string, int, bool) {
	i := strings.LastIndex(name, ".t")
	if i < 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(name[i+2:])
	if err != nil {
		return "", 0, false
	}
	return name[:i], n, true
}

// EventKind classifies events delivered to a box.
type EventKind uint8

// The event kinds.
const (
	EvEnvelope EventKind = iota // a signal or meta-signal arrived on a channel
	EvTimer                     // a timer set by this box fired
	EvCall                      // run a closure inside the box (runtime-internal)
)

// Event is one stimulus for the box core.
type Event struct {
	Kind    EventKind
	Channel string       // EvEnvelope: channel the envelope arrived on
	Env     sig.Envelope // EvEnvelope payload
	Timer   string       // EvTimer: timer name
	Call    func(*Ctx)   // EvCall: closure to run
}

// OutputKind classifies box outputs for the runtime.
type OutputKind uint8

// The output kinds.
const (
	OutSend        OutputKind = iota // transmit Env on Channel
	OutDial                          // create a signaling channel Channel toward Addr
	OutTeardown                      // destroy channel Channel (MetaTeardown + close)
	OutTimerSet                      // arm timer Timer for Dur
	OutTimerCancel                   // disarm timer Timer
	OutNote                          // diagnostic for logs and tests
)

// Output is one instruction from the box core to its runtime.
type Output struct {
	Kind    OutputKind
	Channel string
	Env     sig.Envelope
	Addr    string
	Timer   string
	Dur     time.Duration
	Note    string
}

func (o Output) String() string {
	switch o.Kind {
	case OutSend:
		return fmt.Sprintf("send %s on %s", o.Env, o.Channel)
	case OutDial:
		return fmt.Sprintf("dial %s as %s", o.Addr, o.Channel)
	case OutTeardown:
		return fmt.Sprintf("teardown %s", o.Channel)
	case OutTimerSet:
		return fmt.Sprintf("timer %s in %s", o.Timer, o.Dur)
	case OutTimerCancel:
		return fmt.Sprintf("cancel timer %s", o.Timer)
	default:
		return "note: " + o.Note
	}
}

type chanInfo struct {
	name      string
	initiator bool
	slotNames []string // cached TunnelSlot names, indexed by tunnel
}

// tunnelSlot returns the slot name for tunnel i, cached so
// steady-state dispatch does no string building. Indexes outside a
// sane tunnel range fall back to direct construction rather than
// growing the cache on hostile input.
func (ci *chanInfo) tunnelSlot(i int) string {
	if i < 0 || i >= 1024 {
		return TunnelSlot(ci.name, i)
	}
	for len(ci.slotNames) <= i {
		ci.slotNames = append(ci.slotNames, TunnelSlot(ci.name, len(ci.slotNames)))
	}
	return ci.slotNames[i]
}

// frame holds the per-Handle working state (the event copy the Ctx
// points at). Frames are pooled per box so steady-state dispatch does
// not allocate; re-entrant Handle calls simply take a second frame.
type frame struct {
	ev  Event
	ctx Ctx
}

// Box is the synchronous core of one box (peer module involved in
// media control). It may be driven by the Runner in this package, by
// the discrete-event simulator, or directly by tests.
type Box struct {
	name    string
	profile core.Profile // profile for annotation-created goals

	slots map[string]*slot.Slot
	goals map[string]core.Goal // the Maps object: slot name -> goal
	chans map[string]*chanInfo

	program  *Program
	state    string
	pendingT map[string]bool // armed timers

	// DefaultGoal builds the goal object for a slot that receives
	// traffic before any annotation or explicit goal covers it. The
	// default default is a holdSlot with the box profile.
	DefaultGoal func(slotName string) core.Goal

	// Hook, if non-nil, observes every event before program transitions
	// run. Devices and resources use it for autonomous behavior.
	Hook func(ctx *Ctx, ev *Event)

	outs     []Output
	spare    []Output // recycled output buffer (see Recycle)
	frames   []*frame
	chanVer  uint64
	dirty    []string // channels mutated since ResetDirtyChannels
	track    bool     // record dirty channel names (runtime-driven boxes only)
	goalCtrs map[string]*telemetry.Counter

	// chanCache recycles chanInfo records by channel name: dial-heavy
	// workloads destroy and re-create the same channels constantly, and
	// a recycled record keeps its built-up tunnelSlot name cache, so a
	// redial does no slot-name string building at all. Bounded so
	// hostile channel-name churn cannot grow it without limit.
	chanCache map[string]*chanInfo

	widowScratch []string // reused by destroyChannel
}

// chanCacheCap bounds chanCache (matches the runner's name caches).
const chanCacheCap = 256

// New creates a box. The profile is used by all annotation-created
// goals; application servers pass core.ServerProfile, media endpoints
// their EndpointProfile.
func New(name string, profile core.Profile) *Box {
	b := &Box{
		name:     name,
		profile:  profile,
		slots:    map[string]*slot.Slot{},
		goals:    map[string]core.Goal{},
		chans:    map[string]*chanInfo{},
		pendingT: map[string]bool{},
	}
	b.DefaultGoal = func(slotName string) core.Goal {
		return core.NewHoldSlot(slotName, b.profile)
	}
	return b
}

// Name returns the box name.
func (b *Box) Name() string { return b.name }

// Profile returns the box's media profile.
func (b *Box) Profile() core.Profile { return b.profile }

// Slot implements core.Slots for this box's goal objects.
func (b *Box) Slot(name string) *slot.Slot { return b.slots[name] }

// GoalFor returns the goal object currently controlling the named
// slot, if any.
func (b *Box) GoalFor(name string) core.Goal { return b.goals[name] }

// State returns the current program state name, if a program is set.
func (b *Box) State() string { return b.state }

// SlotNames returns the box's slot names, sorted for deterministic
// iteration.
func (b *Box) SlotNames() []string {
	out := make([]string, 0, len(b.slots))
	for n := range b.slots {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Links returns the slot pairs currently joined by flowlinks (or raw
// forwarders), for signaling-path analysis.
func (b *Box) Links() [][2]string {
	var out [][2]string
	seen := map[string]bool{}
	for _, name := range b.SlotNames() {
		g := b.goals[name]
		if g == nil || seen[name] {
			continue
		}
		if a, ok := g.(*annotated); ok {
			g = a.Goal
		}
		ns := g.SlotNames()
		if len(ns) == 2 {
			out = append(out, [2]string{ns[0], ns[1]})
			seen[ns[0]], seen[ns[1]] = true, true
		}
	}
	return out
}

// Channels returns the names of the box's signaling channels.
func (b *Box) Channels() []string {
	out := make([]string, 0, len(b.chans))
	for n := range b.chans {
		out = append(out, n)
	}
	return out
}

// HasChannel reports whether the named channel exists.
func (b *Box) HasChannel(name string) bool { return b.chans[name] != nil }

// ChanVersion counts mutations of the channel table (additions and
// destructions). Runtimes use it to notify channel waiters only when
// the table actually changed.
func (b *Box) ChanVersion() uint64 { return b.chanVer }

// AddChannel registers a signaling channel. The runtime calls it when
// a channel is accepted; Dial registers the initiating side.
func (b *Box) AddChannel(name string, initiator bool) {
	ci := b.chanCache[name]
	if ci == nil {
		ci = &chanInfo{name: name}
	}
	ci.initiator = initiator
	b.chans[name] = ci
	b.chanVer++
	b.markDirty(name)
}

// TrackDirtyChannels turns on dirty-channel recording: every channel
// add or destroy also records the channel name until the next
// ResetDirtyChannels. Runtimes use the names for keyed waiter wakeups.
// Tracking is opt-in so drivers that never reset (the simulator, the
// model checker) do not accumulate an unbounded list.
func (b *Box) TrackDirtyChannels() { b.track = true }

// DirtyChannels returns the channels mutated since the last reset. The
// slice is owned by the box: it is only valid until the next Handle,
// and callers must not retain it.
func (b *Box) DirtyChannels() []string { return b.dirty }

// ResetDirtyChannels clears the dirty list, keeping its backing array.
func (b *Box) ResetDirtyChannels() { b.dirty = b.dirty[:0] }

func (b *Box) markDirty(name string) {
	if b.track {
		b.dirty = append(b.dirty, name)
	}
}

// ensureSlot creates the slot (and its default goal) on first use.
func (b *Box) ensureSlot(name string) (*slot.Slot, error) {
	if s := b.slots[name]; s != nil {
		return s, nil
	}
	ch, _, ok := slotChannel(name)
	if !ok {
		return nil, fmt.Errorf("box %s: malformed slot name %q", b.name, name)
	}
	ci := b.chans[ch]
	if ci == nil {
		return nil, fmt.Errorf("box %s: slot %q references unknown channel %q", b.name, name, ch)
	}
	s := slot.New(name, ci.initiator)
	b.slots[name] = s
	return s, nil
}

// ensureGoal returns the goal for a slot, installing the default if
// none is set, and applying its attach actions.
func (b *Box) ensureGoal(name string) (core.Goal, error) {
	if g := b.goals[name]; g != nil {
		return g, nil
	}
	g := b.DefaultGoal(name)
	if err := b.install(g); err != nil {
		return nil, err
	}
	return g, nil
}

// install maps a goal over its slots and applies its attach actions.
func (b *Box) install(g core.Goal) error {
	for _, s := range g.SlotNames() {
		if _, err := b.ensureSlot(s); err != nil {
			return err
		}
		b.goals[s] = g
	}
	acts, err := g.Attach(b)
	if err != nil {
		return err
	}
	b.emitActions(acts)
	return nil
}

// emitActions converts goal actions into transport outputs.
func (b *Box) emitActions(acts []core.Action) {
	for _, a := range acts {
		ch, tunnel, ok := slotChannel(a.Slot)
		if !ok {
			continue
		}
		b.outs = append(b.outs, Output{
			Kind:    OutSend,
			Channel: ch,
			Env:     sig.Envelope{Tunnel: tunnel, Sig: a.Sig},
		})
	}
}

// asRaw reports whether a goal (possibly wrapped by an annotation) is
// a raw-forwarding goal.
func asRaw(g core.Goal) (core.RawGoal, bool) {
	if a, ok := g.(*annotated); ok {
		g = a.Goal
	}
	rg, ok := g.(core.RawGoal)
	return rg, ok
}

// destroyChannel removes a channel and all its tunnels, slots, and
// goal mappings ("destroying channel 1 is a meta-action that of course
// destroys all its tunnels and slots", paper Section IV-B). A slot
// that was flowlinked to a destroyed slot falls back to a closeSlot:
// its path is broken, so its half of the channel is shut down cleanly.
func (b *Box) destroyChannel(name string) {
	if ci := b.chans[name]; ci != nil {
		if b.chanCache == nil {
			b.chanCache = make(map[string]*chanInfo, 8)
		}
		if len(b.chanCache) < chanCacheCap || b.chanCache[name] != nil {
			b.chanCache[name] = ci
		}
	}
	delete(b.chans, name)
	b.chanVer++
	b.markDirty(name)
	widowed := b.widowScratch[:0]
	for sn := range b.slots {
		ch, _, ok := slotChannel(sn)
		if !ok || ch != name {
			continue
		}
		if g := b.goals[sn]; g != nil {
			for _, partner := range g.SlotNames() {
				if pch, _, ok := slotChannel(partner); ok && pch != name {
					widowed = append(widowed, partner)
				}
			}
		}
		delete(b.slots, sn)
		delete(b.goals, sn)
	}
	for _, sn := range widowed {
		if b.slots[sn] == nil {
			continue
		}
		if err := b.install(core.NewCloseSlot(sn)); err != nil {
			b.outs = append(b.outs, Output{Kind: OutNote, Note: "widowed slot cleanup: " + err.Error()})
		}
	}
	b.widowScratch = widowed[:0]
}

// Handle processes one event and returns the outputs it produced. It
// must be called from a single goroutine. The returned slice is owned
// by the caller until passed back via Recycle.
func (b *Box) Handle(ev Event) ([]Output, error) {
	saved := b.outs // non-nil only if Handle re-enters mid-event
	b.outs = b.spare[:0]
	b.spare = nil

	f := b.getFrame()
	f.ev = ev
	f.ctx = Ctx{b: b, ev: &f.ev}
	err := b.handleFrame(f)
	b.putFrame(f)

	outs := b.outs
	b.outs = saved
	return outs, err
}

func (b *Box) handleFrame(f *frame) error {
	ctx := &f.ctx
	if err := b.dispatch(ctx, &f.ev); err != nil {
		return err
	}
	if b.Hook != nil && f.ev.Kind != EvCall {
		b.Hook(ctx, &f.ev)
	}
	return b.step(ctx)
}

// Recycle hands an output slice from Handle back to the box for
// reuse, so steady-state events dispatch without allocating. Only the
// slice most recently returned by Handle (or one with larger
// capacity) is worth returning; the box keeps the biggest buffer.
func (b *Box) Recycle(outs []Output) {
	if cap(outs) <= cap(b.spare) {
		return
	}
	outs = outs[:cap(outs)]
	for i := range outs {
		outs[i] = Output{} // drop envelope/string references
	}
	b.spare = outs[:0]
}

func (b *Box) getFrame() *frame {
	if n := len(b.frames); n > 0 {
		f := b.frames[n-1]
		b.frames = b.frames[:n-1]
		return f
	}
	return &frame{}
}

func (b *Box) putFrame(f *frame) {
	f.ev = Event{}
	f.ctx = Ctx{}
	b.frames = append(b.frames, f)
}

// goalCounter memoizes the per-goal-kind invocation counter, keyed by
// the goal kind, so dispatch does not rebuild the metric name per
// envelope.
func (b *Box) goalCounter(kind string) *telemetry.Counter {
	if c := b.goalCtrs[kind]; c != nil {
		return c
	}
	if b.goalCtrs == nil {
		b.goalCtrs = map[string]*telemetry.Counter{}
	}
	c := telemetry.C(MetricGoalInvocationsPrefix + kind)
	b.goalCtrs[kind] = c
	return c
}

func (b *Box) dispatch(ctx *Ctx, ev *Event) error {
	switch ev.Kind {
	case EvEnvelope:
		if ev.Env.IsMeta() {
			if ev.Env.Meta.Kind == sig.MetaTeardown {
				b.destroyChannel(ev.Channel)
			}
			return nil // metas are observed by hooks and guards
		}
		ci := b.chans[ev.Channel]
		if ci == nil {
			// Signal for a channel already destroyed locally; drop.
			return nil
		}
		name := ci.tunnelSlot(ev.Env.Tunnel)
		s, err := b.ensureSlot(name)
		if err != nil {
			return err
		}
		g, err := b.ensureGoal(name)
		if err != nil {
			return err
		}
		if rg, ok := asRaw(g); ok {
			// Uncoordinated forwarding: the slot is not a protocol
			// endpoint (Figure 2 baseline).
			b.emitActions(rg.OnRaw(name, ev.Env.Sig))
			return nil
		}
		sev, err := s.Receive(ev.Env.Sig)
		if err != nil {
			return fmt.Errorf("box %s: %w", b.name, err)
		}
		// Enabled() gates the counter resolution; the per-kind counter is
		// cached so the enabled path does no string work either.
		if telemetry.Enabled() {
			b.goalCounter(g.Kind()).Inc()
		}
		acts, err := g.OnEvent(b, name, sev, ev.Env.Sig)
		if err != nil {
			return fmt.Errorf("box %s: goal %s: %w", b.name, g.Kind(), err)
		}
		b.emitActions(acts)
		return nil
	case EvTimer:
		if !b.pendingT[ev.Timer] {
			ev.Timer = "" // stale fire: not guardable
			return nil
		}
		delete(b.pendingT, ev.Timer)
		return nil
	case EvCall:
		if ev.Call != nil {
			ev.Call(ctx)
		}
		return ctx.err
	default:
		return fmt.Errorf("box %s: unknown event kind %d", b.name, ev.Kind)
	}
}
