package box

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ipmedia/internal/sig"
	"ipmedia/internal/transport"
)

// nameOnShard finds a box name that places onto the wanted shard.
func nameOnShard(want, n int) string {
	for i := 0; ; i++ {
		name := fmt.Sprintf("box%d", i)
		if ShardOfName(name, n) == want {
			return name
		}
	}
}

// twoRouters builds a two-shard fleet in one process: each shard has
// its own local network and mux, carriers ride a shared mem network.
func twoRouters(t *testing.T) (*Router, *Router) {
	t.Helper()
	carrierNet := transport.NewMemNetwork()
	mux0, mux1 := transport.NewMux(carrierNet), transport.NewMux(carrierNet)
	addr0, err := mux0.ListenCarrier("carrier0")
	if err != nil {
		t.Fatalf("ListenCarrier: %v", err)
	}
	addr1, err := mux1.ListenCarrier("carrier1")
	if err != nil {
		t.Fatalf("ListenCarrier: %v", err)
	}
	r0 := NewRouter(0, 2, transport.NewMemNetwork(), mux0)
	r1 := NewRouter(1, 2, transport.NewMemNetwork(), mux1)
	r0.SetAddr(1, addr1)
	r1.SetAddr(0, addr0)
	t.Cleanup(func() { r0.Close(); r1.Close(); mux0.Close(); mux1.Close() })
	return r0, r1
}

func TestRouterPlacementRouting(t *testing.T) {
	r0, r1 := twoRouters(t)
	local := nameOnShard(0, 2)  // owned by shard 0
	remote := nameOnShard(1, 2) // owned by shard 1

	l0, err := r0.Listen(local)
	if err != nil {
		t.Fatalf("Listen local: %v", err)
	}
	l1, err := r1.Listen(remote)
	if err != nil {
		t.Fatalf("Listen remote: %v", err)
	}

	// Same-owner dial stays on the local network.
	p, err := r0.Dial(local)
	if err != nil {
		t.Fatalf("local dial: %v", err)
	}
	acc, err := l0.Accept()
	if err != nil {
		t.Fatalf("local accept: %v", err)
	}
	if err := p.Send(sig.Envelope{Tunnel: 1, Sig: sig.Close()}); err != nil {
		t.Fatalf("local send: %v", err)
	}
	if e := <-acc.Recv(); e.Tunnel != 1 {
		t.Fatalf("local delivery: %v", e)
	}

	// Cross-owner dial goes over the carrier, invisibly to the boxes.
	p2, err := r0.Dial(remote)
	if err != nil {
		t.Fatalf("cross dial: %v", err)
	}
	acc2, err := l1.Accept()
	if err != nil {
		t.Fatalf("cross accept: %v", err)
	}
	if err := p2.Send(sig.Envelope{Tunnel: 2, Sig: sig.Close()}); err != nil {
		t.Fatalf("cross send: %v", err)
	}
	if e := <-acc2.Recv(); e.Tunnel != 2 {
		t.Fatalf("cross delivery: %v", e)
	}
	// And the reverse direction reaches shard 0's listener remotely.
	p3, err := r1.Dial(local)
	if err != nil {
		t.Fatalf("reverse dial: %v", err)
	}
	acc3, err := l0.Accept()
	if err != nil {
		t.Fatalf("reverse accept: %v", err)
	}
	if err := p3.Send(sig.Envelope{Tunnel: 3, Sig: sig.Close()}); err != nil {
		t.Fatalf("reverse send: %v", err)
	}
	if e := <-acc3.Recv(); e.Tunnel != 3 {
		t.Fatalf("reverse delivery: %v", e)
	}
}

func TestRouterDialWaitsForAddress(t *testing.T) {
	carrierNet := transport.NewMemNetwork()
	mux0, mux1 := transport.NewMux(carrierNet), transport.NewMux(carrierNet)
	addr1, _ := mux1.ListenCarrier("carrier1")
	r0 := NewRouter(0, 2, transport.NewMemNetwork(), mux0)
	r1 := NewRouter(1, 2, transport.NewMemNetwork(), mux1)
	t.Cleanup(func() { r0.Close(); r1.Close(); mux0.Close(); mux1.Close() })

	remote := nameOnShard(1, 2)
	if _, err := r1.Listen(remote); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	// Dial before the address is known: it must block until SetAddr,
	// not fail — this is the crash-restart re-broadcast window.
	done := make(chan error, 1)
	go func() {
		_, err := r0.Dial(remote)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("dial returned before address known: %v", err)
	default:
	}
	r0.SetAddr(1, addr1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("dial after SetAddr: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("dial did not complete after SetAddr")
	}
}

// TestRouterAddrRace pins, under -race, that address resolution is
// safe against a concurrent shard restart: dialers resolve the owner's
// carrier while SetAddr swaps it between incarnations (invalidating
// the old carrier each flip).
func TestRouterAddrRace(t *testing.T) {
	carrierNet := transport.NewMemNetwork()
	muxD := transport.NewMux(carrierNet)
	// Two incarnations of shard 1's carrier, both live so dials toward
	// either address can succeed mid-flip.
	muxA, muxB := transport.NewMux(carrierNet), transport.NewMux(carrierNet)
	addrA, _ := muxA.ListenCarrier("carrierA")
	addrB, _ := muxB.ListenCarrier("carrierB")
	r := NewRouter(0, 2, transport.NewMemNetwork(), muxD)
	r.SetAddr(1, addrA)
	t.Cleanup(func() { r.Close(); muxD.Close(); muxA.Close(); muxB.Close() })

	remote := nameOnShard(1, 2)
	lA, _ := muxA.Listen(remote)
	lB, _ := muxB.Listen(remote)
	go func() {
		for {
			p, err := lA.Accept()
			if err != nil {
				return
			}
			p.Close()
		}
	}()
	go func() {
		for {
			p, err := lB.Accept()
			if err != nil {
				return
			}
			p.Close()
		}
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the "supervisor": restart shard 1 over and over
		defer wg.Done()
		addrs := [2]string{addrA, addrB}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.SetAddr(1, addrs[i%2])
			time.Sleep(time.Millisecond)
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() { // the boxes: dial across shards throughout
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p, err := r.Dial(remote)
				if err == nil {
					p.Close()
				}
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}
