package box

import (
	"sync"

	"ipmedia/internal/timerwheel"
)

// soloWheel is the timer wheel shared by standalone runners — those
// built with NewRunner rather than placed on a Cluster. Cluster shards
// each own a wheel (one timer goroutine per core, no cross-core timer
// contention); standalone runners are the long tail of tests and small
// tools, and one lazily started wheel for all of them keeps NewRunner
// cheap without resurrecting a process-global singleton in the
// timerwheel package itself.
var (
	soloWheelOnce sync.Once
	soloWheelW    *timerwheel.Wheel
)

func soloWheel() *timerwheel.Wheel {
	soloWheelOnce.Do(func() {
		soloWheelW = timerwheel.NewNamed(timerwheel.DefaultTick, "solo")
	})
	return soloWheelW
}
