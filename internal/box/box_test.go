package box

import (
	"net"
	"testing"
	"time"

	"ipmedia/internal/core"
	"ipmedia/internal/sig"
	"ipmedia/internal/transport"
)

func deviceProfile(name string, port int) *core.EndpointProfile {
	return core.NewEndpointProfile(name, "10.0.0."+name, port,
		[]sig.Codec{sig.G711, sig.G726}, []sig.Codec{sig.G711, sig.G726})
}

// await polls a box-state predicate until it holds or the deadline
// passes.
func await(t *testing.T, r *Runner, what string, pred func(ctx *Ctx) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ok := false
		r.Do(func(ctx *Ctx) { ok = pred(ctx) })
		if ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func noErrs(t *testing.T, rs ...*Runner) {
	t.Helper()
	for _, r := range rs {
		for _, err := range r.Errs() {
			t.Errorf("box %s: %v", r.Box().Name(), err)
		}
	}
}

// TestTwoBoxCall: a device box opens an audio channel to another
// device box over the in-memory network; the callee's default holdslot
// accepts; both reach flowing with media enabled.
func TestTwoBoxCall(t *testing.T) {
	net := transport.NewMemNetwork()
	caller := NewRunner(New("A", deviceProfile("A", 5004)), net)
	callee := NewRunner(New("B", deviceProfile("B", 5006)), net)
	defer caller.Stop()
	defer callee.Stop()
	if err := callee.Listen("B", nil); err != nil {
		t.Fatal(err)
	}
	if err := caller.Connect("c1", "B"); err != nil {
		t.Fatal(err)
	}
	caller.Do(func(ctx *Ctx) {
		ctx.SetGoal(core.NewOpenSlot(TunnelSlot("c1", 0), sig.Audio, caller.Box().Profile()))
	})
	await(t, caller, "caller flowing", func(ctx *Ctx) bool {
		s := ctx.Box().Slot(TunnelSlot("c1", 0))
		return s != nil && s.IsFlowing() && s.Enabled()
	})
	await(t, callee, "callee flowing", func(ctx *Ctx) bool {
		s := ctx.Box().Slot(TunnelSlot("in0", 0))
		return s != nil && s.IsFlowing() && s.Enabled()
	})
	noErrs(t, caller, callee)
}

// TestTCPTwoBoxCall: the same call, over real TCP sockets on loopback.
func TestTCPTwoBoxCall(t *testing.T) {
	var net transport.TCPNetwork
	caller := NewRunner(New("A", deviceProfile("A", 5004)), net)
	callee := NewRunner(New("B", deviceProfile("B", 5006)), net)
	defer caller.Stop()
	defer callee.Stop()
	l, err := net.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr()
	l.Close()
	if err := callee.Listen(addr, nil); err != nil {
		t.Fatal(err)
	}
	if err := caller.Connect("c1", addr); err != nil {
		t.Fatal(err)
	}
	caller.Do(func(ctx *Ctx) {
		ctx.SetGoal(core.NewOpenSlot(TunnelSlot("c1", 0), sig.Audio, caller.Box().Profile()))
	})
	await(t, caller, "caller flowing over TCP", func(ctx *Ctx) bool {
		s := ctx.Box().Slot(TunnelSlot("c1", 0))
		return s != nil && s.IsFlowing() && s.Enabled()
	})
	noErrs(t, caller, callee)
}

// TestThreeBoxFlowLink: a middle box with a program flowlinks two
// device boxes; descriptors splice end to end.
func TestThreeBoxFlowLink(t *testing.T) {
	net := transport.NewMemNetwork()
	a := NewRunner(New("A", deviceProfile("A", 5004)), net)
	b := NewRunner(New("B", deviceProfile("B", 5006)), net)
	mid := NewRunner(New("M", core.ServerProfile{Name: "M"}), net)
	defer a.Stop()
	defer b.Stop()
	defer mid.Stop()
	if err := a.Listen("A", nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Listen("B", nil); err != nil {
		t.Fatal(err)
	}
	// Device A calls: channel toward the middle box? No — in this test
	// the middle box originates channels to both devices and links
	// them, like the Click-to-Dial box after both legs answer.
	if err := mid.Connect("ca", "A"); err != nil {
		t.Fatal(err)
	}
	if err := mid.Connect("cb", "B"); err != nil {
		t.Fatal(err)
	}
	mid.SetProgram(&Program{
		Initial: "linking",
		States: []*State{{
			Name: "linking",
			Annots: []Annot{
				FlowLinkAnn(TunnelSlot("ca", 0), TunnelSlot("cb", 0)),
			},
		}},
	})
	// Device A opens toward the middle box; the flowlink forwards the
	// open to B, whose default holdslot accepts. Wait for A to accept
	// the incoming channel first.
	await(t, a, "A's incoming channel", func(ctx *Ctx) bool { return ctx.Box().HasChannel("in0") })
	a.Do(func(ctx *Ctx) {
		ctx.SetGoal(core.NewOpenSlot(TunnelSlot("in0", 0), sig.Audio, a.Box().Profile()))
	})
	await(t, a, "A flowing", func(ctx *Ctx) bool {
		s := ctx.Box().Slot(TunnelSlot("in0", 0))
		if s == nil || !s.IsFlowing() || !s.Enabled() {
			return false
		}
		d, ok := s.Desc()
		return ok && d.ID.Origin == "B" // spliced: A sees B's descriptor
	})
	await(t, b, "B flowing", func(ctx *Ctx) bool {
		s := ctx.Box().Slot(TunnelSlot("in0", 0))
		if s == nil || !s.IsFlowing() || !s.Enabled() {
			return false
		}
		d, ok := s.Desc()
		return ok && d.ID.Origin == "A"
	})
	noErrs(t, a, b, mid)
}

// TestProgramTransitions: guards, timers, and teardown, in the shape
// of the Click-to-Dial program's timeout branch.
func TestProgramTransitions(t *testing.T) {
	net := transport.NewMemNetwork()
	phone := NewRunner(New("P", deviceProfile("P", 5004)), net)
	ctd := NewRunner(New("CTD", core.ServerProfile{Name: "CTD"}), net)
	defer phone.Stop()
	defer ctd.Stop()
	if err := phone.Listen("P", nil); err != nil {
		t.Fatal(err)
	}
	// The phone does not answer: override its default goal to do
	// nothing (ringing forever).
	phone.Do(func(ctx *Ctx) {
		ctx.Box().DefaultGoal = func(slotName string) core.Goal {
			return core.NewCloseSlot(slotName) // actively rejects, even
		}
	})

	terminated := make(chan struct{})
	ctd.SetProgram(&Program{
		Initial: "oneCall",
		States: []*State{
			{
				Name:   "oneCall",
				Annots: []Annot{OpenSlotAnn(TunnelSlot("1", 0), sig.Audio)},
				OnEnter: func(ctx *Ctx) {
					ctx.Dial("1", "P")
					ctx.SetTimer("giveup", 50*time.Millisecond)
				},
				Trans: []Trans{
					{When: func(ctx *Ctx) bool { return ctx.IsFlowing(TunnelSlot("1", 0)) }, To: "talking"},
					{When: func(ctx *Ctx) bool { return ctx.OnTimer("giveup") }, To: "done",
						Do: func(ctx *Ctx) { ctx.Teardown("1") }},
				},
			},
			{Name: "talking"},
			{Name: "done", OnEnter: func(ctx *Ctx) { close(terminated) }},
		},
	})
	select {
	case <-terminated:
	case <-time.After(5 * time.Second):
		t.Fatal("program did not take the timeout branch")
	}
	ctd.Do(func(ctx *Ctx) {
		if ctx.Box().HasChannel("1") {
			t.Error("teardown must remove the channel")
		}
		if ctx.Box().Slot(TunnelSlot("1", 0)) != nil {
			t.Error("teardown must remove the channel's slots")
		}
	})
	// The phone's side must also have been torn down by the meta.
	await(t, phone, "phone cleanup", func(ctx *Ctx) bool {
		return !ctx.Box().HasChannel("in0")
	})
	noErrs(t, ctd, phone)
}

// TestAnnotationReuse: the same annotation across states must keep the
// same goal object (paper Section IV-B).
func TestAnnotationReuse(t *testing.T) {
	net := transport.NewMemNetwork()
	dev := NewRunner(New("D", deviceProfile("D", 5004)), net)
	srv := NewRunner(New("S", core.ServerProfile{Name: "S"}), net)
	defer dev.Stop()
	defer srv.Stop()
	if err := dev.Listen("D", nil); err != nil {
		t.Fatal(err)
	}

	moved := make(chan struct{})
	srv.SetProgram(&Program{
		Initial: "s1",
		States: []*State{
			{
				Name:    "s1",
				Annots:  []Annot{OpenSlotAnn(TunnelSlot("1", 0), sig.Audio)},
				OnEnter: func(ctx *Ctx) { ctx.Dial("1", "D"); ctx.SetTimer("hop", 10*time.Millisecond) },
				Trans: []Trans{
					{When: func(ctx *Ctx) bool { return ctx.OnTimer("hop") }, To: "s2"},
				},
			},
			{
				Name:    "s2",
				Annots:  []Annot{OpenSlotAnn(TunnelSlot("1", 0), sig.Audio)},
				OnEnter: func(ctx *Ctx) { close(moved) },
			},
		},
	})
	var g1 core.Goal
	srv.Do(func(ctx *Ctx) { g1 = ctx.Box().GoalFor(TunnelSlot("1", 0)) })
	select {
	case <-moved:
	case <-time.After(5 * time.Second):
		t.Fatal("program did not reach s2")
	}
	srv.Do(func(ctx *Ctx) {
		if g2 := ctx.Box().GoalFor(TunnelSlot("1", 0)); g2 != g1 {
			t.Error("identical annotation must keep the same goal object")
		}
	})
	noErrs(t, srv, dev)
}

// TestOpenSlotAnnotationPrecondition: annotating openSlot over a
// non-closed slot is a program error (paper Section IV-A).
func TestOpenSlotAnnotationPrecondition(t *testing.T) {
	net := transport.NewMemNetwork()
	dev := NewRunner(New("D", deviceProfile("D", 5004)), net)
	srv := NewRunner(New("S", core.ServerProfile{Name: "S"}), net)
	defer dev.Stop()
	defer srv.Stop()
	if err := dev.Listen("D", nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.Connect("1", "D"); err != nil {
		t.Fatal(err)
	}
	srv.Do(func(ctx *Ctx) {
		ctx.SetGoal(core.NewOpenSlot(TunnelSlot("1", 0), sig.Audio, core.ServerProfile{Name: "S"}))
	})
	await(t, srv, "opening", func(ctx *Ctx) bool { return !ctx.IsClosed(TunnelSlot("1", 0)) })
	srv.Do(func(ctx *Ctx) {
		outs, err := ctx.Box().SetProgram(&Program{
			Initial: "bad",
			States: []*State{{
				Name:   "bad",
				Annots: []Annot{OpenSlotAnn(TunnelSlot("1", 0), sig.Audio)},
			}},
		})
		_ = outs
		if err == nil {
			t.Error("openSlot annotation over a live slot must fail")
		}
	})
}

// TestDialUnknownAddressSynthesizesUnavailable: a failed dial must
// surface as the unavailable meta-signal, the event the Click-to-Dial
// program's busyTone branch waits for.
func TestDialUnknownAddressSynthesizesUnavailable(t *testing.T) {
	net := transport.NewMemNetwork()
	srv := NewRunner(New("S", core.ServerProfile{Name: "S"}), net)
	defer srv.Stop()
	unreached := make(chan struct{})
	srv.SetProgram(&Program{
		Initial: "trying",
		States: []*State{
			{
				Name:    "trying",
				OnEnter: func(ctx *Ctx) { ctx.Dial("2", "no-such-device") },
				Trans: []Trans{
					{When: func(ctx *Ctx) bool { return ctx.OnMeta("2", sig.MetaUnavailable) }, To: "busy"},
				},
			},
			{Name: "busy", OnEnter: func(ctx *Ctx) { close(unreached) }},
		},
	})
	select {
	case <-unreached:
	case <-time.After(5 * time.Second):
		t.Fatal("unavailable meta not synthesized")
	}
	noErrs(t, srv)
}

// TestForwarderIsTransparentToSignals: a raw forwarder box passes
// signals through untouched in both directions, without acting as a
// protocol endpoint.
func TestForwarderIsTransparentToSignals(t *testing.T) {
	net := transport.NewMemNetwork()
	a := NewRunner(New("A", deviceProfile("A", 5004)), net)
	b := NewRunner(New("B", deviceProfile("B", 5006)), net)
	fwd := NewRunner(New("F", core.ServerProfile{Name: "F"}), net)
	defer a.Stop()
	defer b.Stop()
	defer fwd.Stop()
	if err := b.Listen("B", nil); err != nil {
		t.Fatal(err)
	}
	if err := fwd.Listen("F", nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Connect("c", "F"); err != nil {
		t.Fatal(err)
	}
	fwd.Do(func(ctx *Ctx) {
		ctx.Box().DefaultGoal = func(string) core.Goal { return nil } // replaced below
	})
	// The forwarder box dials onward to B and raw-links the two
	// channels.
	await(t, fwd, "incoming channel", func(ctx *Ctx) bool { return ctx.Box().HasChannel("in0") })
	fwd.Do(func(ctx *Ctx) {
		ctx.Box().DefaultGoal = func(slotName string) core.Goal {
			return core.NewHoldSlot(slotName, ctx.Box().Profile())
		}
		ctx.Dial("out", "B")
		ctx.SetGoal(core.NewForwarder(TunnelSlot("in0", 0), TunnelSlot("out", 0)))
	})
	a.Do(func(ctx *Ctx) {
		ctx.SetGoal(core.NewOpenSlot(TunnelSlot("c", 0), sig.Audio, a.Box().Profile()))
	})
	// End-to-end: A and B reach flowing with each other's descriptors,
	// as if directly connected.
	await(t, a, "A flowing via forwarder", func(ctx *Ctx) bool {
		s := ctx.Box().Slot(TunnelSlot("c", 0))
		if s == nil || !s.IsFlowing() {
			return false
		}
		d, ok := s.Desc()
		return ok && d.ID.Origin == "B"
	})
	noErrs(t, a, b, fwd)
}

// TestGarbageOnTheWire: a box whose TCP peer sends arbitrary bytes
// must shed the connection and clean up, never crash.
func TestGarbageOnTheWire(t *testing.T) {
	var tnet transport.TCPNetwork
	srv := NewRunner(New("S", core.ServerProfile{Name: "S"}), tnet)
	defer srv.Stop()
	l, err := tnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr()
	l.Close()
	if err := srv.Listen(addr, nil); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// A plausible-length frame full of garbage, then random noise.
	conn.Write([]byte{0, 0, 0, 5, 0xde, 0xad, 0xbe, 0xef, 0x42})
	conn.Write([]byte("not a frame at all, definitely"))
	conn.Close()
	await(t, srv, "box shed the connection", func(ctx *Ctx) bool {
		return !ctx.Box().HasChannel("in0")
	})
	// The box is still alive and usable.
	srv.Do(func(ctx *Ctx) { ctx.Note("alive") })
	found := false
	for _, n := range srv.Notes() {
		if n == "alive" {
			found = true
		}
	}
	if !found {
		t.Fatal("box did not respond after garbage")
	}
}
