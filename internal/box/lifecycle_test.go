package box

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ipmedia/internal/core"
	"ipmedia/internal/transport"
)

// lcRecorder records lifecycle callbacks for assertions.
type lcRecorder struct {
	mu     sync.Mutex
	setups []string
	tears  []string
}

func (l *lcRecorder) ChannelSetup(local, peer, channel string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.setups = append(l.setups, fmt.Sprintf("%s<-%s/%s", local, peer, channel))
}

func (l *lcRecorder) ChannelTeardown(local, peer, channel string, setupAt time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if setupAt.IsZero() {
		l.tears = append(l.tears, "ZERO-SETUP-TIME")
		return
	}
	l.tears = append(l.tears, fmt.Sprintf("%s<-%s/%s", local, peer, channel))
}

func (l *lcRecorder) snapshot() (setups, tears []string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.setups...), append([]string(nil), l.tears...)
}

func (l *lcRecorder) awaitTears(t *testing.T, n int) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, tears := l.snapshot()
		if len(tears) >= n {
			return tears
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d teardowns, have %v", n, tears)
		}
		time.Sleep(time.Millisecond)
	}
}

func (l *lcRecorder) awaitSetups(t *testing.T, n int) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		setups, _ := l.snapshot()
		if len(setups) >= n {
			return setups
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d setups, have %v", n, setups)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLifecycleSetupTeardown: a dialed channel produces one setup on
// each side (dialer names the dialed address, acceptor names the far
// box from the MetaSetup announcement) and one teardown on each side
// when the dialer tears it down.
func TestLifecycleSetupTeardown(t *testing.T) {
	net := transport.NewMemNetwork()
	srv := NewRunner(New("S", core.ServerProfile{Name: "S"}), net)
	cli := NewRunner(New("C", core.ServerProfile{Name: "C"}), net)
	defer srv.Stop()
	defer cli.Stop()
	srvRec, cliRec := &lcRecorder{}, &lcRecorder{}
	srv.SetLifecycle(srvRec)
	cli.SetLifecycle(cliRec)

	if err := srv.Listen("S", nil); err != nil {
		t.Fatal(err)
	}
	if err := cli.Connect("c", "S"); err != nil {
		t.Fatal(err)
	}
	if setups := cliRec.awaitSetups(t, 1); setups[0] != "C<-S/c" {
		t.Fatalf("client setups = %v", setups)
	}
	// The channel table updates before the MetaSetup envelope is
	// dispatched, so wait on the observation itself.
	if setups := srvRec.awaitSetups(t, 1); setups[0] != "S<-C/in0" {
		t.Fatalf("server setups = %v", setups)
	}

	cli.Do(func(ctx *Ctx) { ctx.Teardown("c") })
	if tears := cliRec.awaitTears(t, 1); tears[0] != "C<-S/c" {
		t.Fatalf("client tears = %v", tears)
	}
	if tears := srvRec.awaitTears(t, 1); tears[0] != "S<-C/in0" {
		t.Fatalf("server tears = %v", tears)
	}

	// No duplicates arrive later (port-loss cleanup races the explicit
	// teardown; the dedup map must absorb it).
	time.Sleep(20 * time.Millisecond)
	cli.Stop()
	srv.Stop()
	if _, tears := cliRec.snapshot(); len(tears) != 1 {
		t.Fatalf("client teardown emitted %d times: %v", len(tears), tears)
	}
	if _, tears := srvRec.snapshot(); len(tears) != 1 {
		t.Fatalf("server teardown emitted %d times: %v", len(tears), tears)
	}
}

// TestLifecycleStopFlushes: channels still up when the runner stops
// are flushed as teardowns, and transport loss on the far side
// produces the far teardown — every setup is balanced by exactly one
// teardown, however the channel dies.
func TestLifecycleStopFlushes(t *testing.T) {
	net := transport.NewMemNetwork()
	srv := NewRunner(New("S", core.ServerProfile{Name: "S"}), net)
	cli := NewRunner(New("C", core.ServerProfile{Name: "C"}), net)
	defer srv.Stop()
	srvRec, cliRec := &lcRecorder{}, &lcRecorder{}
	srv.SetLifecycle(srvRec)
	cli.SetLifecycle(cliRec)

	if err := srv.Listen("S", nil); err != nil {
		t.Fatal(err)
	}
	if err := cli.Connect("c1", "S"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Connect("c2", "S"); err != nil {
		t.Fatal(err)
	}
	await(t, srv, "accepted both", func(ctx *Ctx) bool {
		return ctx.Box().HasChannel("in0") && ctx.Box().HasChannel("in1")
	})

	// Stop the client with both channels up: its flush must emit both
	// teardowns, and the server observes both via transport loss.
	cli.Stop()
	tears := cliRec.awaitTears(t, 2)
	if len(tears) != 2 {
		t.Fatalf("client tears = %v", tears)
	}
	srvRec.awaitTears(t, 2)
	srv.Stop()
	setups, tears2 := srvRec.snapshot()
	if len(setups) != 2 || len(tears2) != 2 {
		t.Fatalf("server unbalanced: setups=%v tears=%v", setups, tears2)
	}
	for _, s := range tears2 {
		if s == "ZERO-SETUP-TIME" {
			t.Fatal("teardown lost its setup timestamp")
		}
	}
}
