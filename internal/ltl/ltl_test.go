package ltl

import (
	"testing"
	"testing/quick"
)

var (
	closed  = Obs{BothClosed: true}
	flowing = Obs{BothFlowing: true}
	limbo   = Obs{} // neither closed nor flowing (transient)
)

func TestSpecForAllSixPathTypes(t *testing.T) {
	cases := []struct {
		l, r string
		want PathProp
	}{
		{"closeSlot", "closeSlot", StabClosed},
		{"closeSlot", "holdSlot", StabClosed},
		{"holdSlot", "closeSlot", StabClosed}, // symmetric
		{"closeSlot", "openSlot", StabNotFlowing},
		{"openSlot", "closeSlot", StabNotFlowing},
		{"openSlot", "openSlot", RecFlowing},
		{"openSlot", "holdSlot", RecFlowing},
		{"holdSlot", "openSlot", RecFlowing},
		{"holdSlot", "holdSlot", ClosedOrFlowing},
	}
	for _, c := range cases {
		got, err := SpecFor(c.l, c.r)
		if err != nil {
			t.Errorf("SpecFor(%s,%s): %v", c.l, c.r, err)
			continue
		}
		if got != c.want {
			t.Errorf("SpecFor(%s,%s) = %s, want %s", c.l, c.r, got, c.want)
		}
	}
	if _, err := SpecFor("openSlot", "flowLink"); err == nil {
		t.Error("flowlinks are path interiors, not ends; SpecFor must reject")
	}
}

func TestStabClosed(t *testing.T) {
	if err := CheckQuiescent(StabClosed, []Obs{flowing, limbo, closed}); err != nil {
		t.Errorf("converging to closed must satisfy ◇□bothClosed: %v", err)
	}
	if err := CheckQuiescent(StabClosed, []Obs{closed, flowing}); err == nil {
		t.Error("ending flowing must violate ◇□bothClosed")
	}
	if err := CheckLasso(StabClosed, nil, []Obs{closed, limbo}); err == nil {
		t.Error("a cycle leaving closed must violate ◇□bothClosed")
	}
}

func TestStabNotFlowing(t *testing.T) {
	// The openslot-vs-closeslot retry loop: open, reject, open, ...
	// never flowing.
	if err := CheckLasso(StabNotFlowing, []Obs{flowing}, []Obs{limbo, closed, limbo}); err != nil {
		t.Errorf("retry loop must satisfy ◇□¬bothFlowing: %v", err)
	}
	if err := CheckLasso(StabNotFlowing, nil, []Obs{limbo, flowing}); err == nil {
		t.Error("flowing in the cycle must violate ◇□¬bothFlowing")
	}
	// Flowing in the prefix is fine: the property is only eventual.
	if err := CheckLasso(StabNotFlowing, []Obs{flowing, flowing}, []Obs{closed}); err != nil {
		t.Errorf("flowing only in the prefix must satisfy ◇□¬bothFlowing: %v", err)
	}
}

func TestRecFlowing(t *testing.T) {
	// Perturbation loop: flowing -> mute change -> flowing again.
	if err := CheckLasso(RecFlowing, []Obs{limbo}, []Obs{flowing, limbo}); err != nil {
		t.Errorf("recurring flowing must satisfy □◇bothFlowing: %v", err)
	}
	if err := CheckQuiescent(RecFlowing, []Obs{limbo, flowing}); err != nil {
		t.Errorf("terminating in flowing must satisfy □◇bothFlowing: %v", err)
	}
	if err := CheckLasso(RecFlowing, []Obs{flowing}, []Obs{limbo, closed}); err == nil {
		t.Error("a cycle without flowing must violate □◇bothFlowing")
	}
}

func TestClosedOrFlowing(t *testing.T) {
	if err := CheckQuiescent(ClosedOrFlowing, []Obs{limbo, closed}); err != nil {
		t.Errorf("staying closed must satisfy the disjunction: %v", err)
	}
	if err := CheckLasso(ClosedOrFlowing, nil, []Obs{flowing, limbo}); err != nil {
		t.Errorf("recurring flowing must satisfy the disjunction: %v", err)
	}
	if err := CheckLasso(ClosedOrFlowing, nil, []Obs{limbo}); err == nil {
		t.Error("a cycle stuck in limbo must violate the disjunction")
	}
}

func TestEmptyInputs(t *testing.T) {
	if err := CheckQuiescent(StabClosed, nil); err == nil {
		t.Error("empty trace must be rejected")
	}
	if err := CheckLasso(StabClosed, []Obs{closed}, nil); err == nil {
		t.Error("empty cycle must be rejected")
	}
}

// TestQuickDualityAndPrefixIrrelevance: properties depend only on the
// cycle, never on the prefix; and a single-state cycle makes ◇□p and
// □◇p coincide.
func TestQuickLassoProperties(t *testing.T) {
	mk := func(bits uint8) Obs {
		switch bits % 3 {
		case 0:
			return closed
		case 1:
			return flowing
		default:
			return limbo
		}
	}
	f := func(prefixBits, cycleBits []uint8, final uint8) bool {
		var prefix, cycle []Obs
		for _, b := range prefixBits {
			prefix = append(prefix, mk(b))
		}
		for _, b := range cycleBits {
			cycle = append(cycle, mk(b))
		}
		if len(cycle) == 0 {
			cycle = []Obs{mk(final)}
		}
		for _, p := range []PathProp{StabClosed, StabNotFlowing, RecFlowing, ClosedOrFlowing} {
			withPrefix := CheckLasso(p, prefix, cycle) == nil
			without := CheckLasso(p, nil, cycle) == nil
			if withPrefix != without {
				return false // prefix must be irrelevant
			}
		}
		single := []Obs{mk(final)}
		stab := CheckLasso(StabClosed, nil, single) == nil
		rec := CheckLasso(RecFlowing, nil, single) == nil
		if stab != (mk(final).BothClosed) || rec != (mk(final).BothFlowing) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
