// Package ltl expresses the paper's compositional path semantics
// (Section V): for each of the six signaling-path types, a stability
// or recurrence property in linear temporal logic over the path states
// bothClosed and bothFlowing, and checkers that evaluate those
// properties over lasso-shaped executions (a finite prefix followed by
// a repeating cycle — the shape every run of a finite-state system
// ultimately has).
package ltl

import (
	"fmt"
)

// Obs is one observation of a signaling path's state.
type Obs struct {
	BothClosed  bool
	BothFlowing bool
}

// PathProp enumerates the paper's four path specifications.
type PathProp uint8

const (
	// StabClosed is ◇□ bothClosed: eventually the path reaches a state
	// in which both end slots are closed, and remains there. It
	// specifies paths with a closeslot at one end and a closeslot or
	// holdslot at the other.
	StabClosed PathProp = iota
	// StabNotFlowing is ◇□ ¬bothFlowing: once the goal objects have
	// done their work there is no media flow, though the path never
	// stabilizes (the openslot keeps retrying). It specifies paths with
	// a closeslot at one end and an openslot at the other.
	StabNotFlowing
	// RecFlowing is □◇ bothFlowing: the path always eventually returns
	// to the bothFlowing state (perturbations such as mute changes are
	// repaired). It specifies paths with an openslot at one end and an
	// openslot or holdslot at the other.
	RecFlowing
	// ClosedOrFlowing is (◇□ bothClosed) ∨ (□◇ bothFlowing): a path
	// with holdslots at both ends either stays closed or keeps flowing,
	// depending on its state when formed.
	ClosedOrFlowing
)

var propNames = [...]string{
	"◇□bothClosed",
	"◇□¬bothFlowing",
	"□◇bothFlowing",
	"(◇□bothClosed)∨(□◇bothFlowing)",
}

func (p PathProp) String() string {
	if int(p) < len(propNames) {
		return propNames[p]
	}
	return fmt.Sprintf("prop(%d)", uint8(p))
}

// SpecFor returns the specification for a path from the goal kinds at
// its two ends ("openSlot", "closeSlot", "holdSlot"). Taking symmetry
// into account there are six path types (paper Section V).
func SpecFor(l, r string) (PathProp, error) {
	// Normalize order: close < hold < open.
	rank := map[string]int{"closeSlot": 0, "holdSlot": 1, "openSlot": 2}
	rl, ok1 := rank[l]
	rr, ok2 := rank[r]
	if !ok1 || !ok2 {
		return 0, fmt.Errorf("ltl: no specification for path type %s/%s", l, r)
	}
	if rl > rr {
		rl, rr = rr, rl
	}
	switch {
	case rl == 0 && rr <= 1: // close/close, close/hold
		return StabClosed, nil
	case rl == 0: // close/open
		return StabNotFlowing, nil
	case rl == 1 && rr == 1: // hold/hold
		return ClosedOrFlowing, nil
	default: // open/open, open/hold
		return RecFlowing, nil
	}
}

// CheckLasso evaluates a property over a lasso execution: the states
// of prefix followed by the states of cycle repeated forever. cycle
// must be non-empty; a quiescent (terminated) run is represented by a
// single-state cycle repeating its final state.
func CheckLasso(p PathProp, prefix, cycle []Obs) error {
	if len(cycle) == 0 {
		return fmt.Errorf("ltl: empty cycle")
	}
	switch p {
	case StabClosed:
		// ◇□p holds iff every state of the cycle satisfies p.
		for i, o := range cycle {
			if !o.BothClosed {
				return fmt.Errorf("ltl: %s violated: cycle state %d not bothClosed", p, i)
			}
		}
		return nil
	case StabNotFlowing:
		for i, o := range cycle {
			if o.BothFlowing {
				return fmt.Errorf("ltl: %s violated: cycle state %d is bothFlowing", p, i)
			}
		}
		return nil
	case RecFlowing:
		// □◇p holds iff some state of the cycle satisfies p.
		for _, o := range cycle {
			if o.BothFlowing {
				return nil
			}
		}
		return fmt.Errorf("ltl: %s violated: no bothFlowing state in the cycle", p)
	case ClosedOrFlowing:
		allClosed := true
		for _, o := range cycle {
			if o.BothFlowing {
				return nil // □◇bothFlowing disjunct holds
			}
			if !o.BothClosed {
				allClosed = false
			}
		}
		if allClosed {
			return nil // ◇□bothClosed disjunct holds
		}
		return fmt.Errorf("ltl: %s violated: cycle neither stays closed nor revisits flowing", p)
	default:
		return fmt.Errorf("ltl: unknown property %d", uint8(p))
	}
}

// CheckQuiescent evaluates a property over a run that terminates: the
// trace's final state repeats forever.
func CheckQuiescent(p PathProp, trace []Obs) error {
	if len(trace) == 0 {
		return fmt.Errorf("ltl: empty trace")
	}
	return CheckLasso(p, trace[:len(trace)-1], trace[len(trace)-1:])
}
