package ts

import "testing"

// Benchmark shapes mirror the media fast path: one 1274-byte ES frame
// becomes a 7-packet PES burst (the 7×188-byte UDP datagram), and the
// periodic PSI refresh adds a PAT+PMT pair.

// BenchmarkAppendPES measures muxing one full 7-packet PES burst into
// a reused buffer. The fast-path claim is 0 allocs/op.
func BenchmarkAppendPES(b *testing.B) {
	es := make([]byte, 7*184-pesHeaderLen)
	buf := make([]byte, 0, 8*PacketSize)
	var m Muxer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = m.AppendPES(buf[:0], 0x101, StreamIDAudio, uint64(i), true, uint64(i)*300, es)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(buf) != 7*PacketSize {
		b.Fatalf("burst is %d bytes, want %d", len(buf), 7*PacketSize)
	}
}

// BenchmarkAppendPSI measures the periodic PAT+PMT refresh.
func BenchmarkAppendPSI(b *testing.B) {
	buf := make([]byte, 0, 2*PacketSize)
	streams := []Stream{{Type: StreamTypePrivate, PID: 0x101}}
	var m Muxer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = m.AppendPAT(buf[:0], 1, 1, 0x100)
		if err != nil {
			b.Fatal(err)
		}
		buf, err = m.AppendPMT(buf, 0x100, 1, 0x101, streams)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(buf) != 2*PacketSize {
		b.Fatalf("psi is %d bytes", len(buf))
	}
}

// BenchmarkDemuxFeed measures validating one 7-packet burst: sync,
// continuity, PES start code.
func BenchmarkDemuxFeed(b *testing.B) {
	es := make([]byte, 7*184-pesHeaderLen)
	var m Muxer
	var d Demuxer
	b.ReportAllocs()
	b.ResetTimer()
	buf := make([]byte, 0, 8*PacketSize)
	for i := 0; i < b.N; i++ {
		var err error
		// Remux each iteration so continuity counters keep matching.
		buf, err = m.AppendPES(buf[:0], 0x101, StreamIDAudio, uint64(i), true, uint64(i)*300, es)
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Feed(buf, nil); err != nil {
			b.Fatal(err)
		}
	}
	if d.Stats().Errors() != 0 {
		b.Fatalf("clean stream shows errors: %+v", d.Stats())
	}
}

// TestTSZeroAlloc is the alloc-gate claim for the container layer:
// steady-state PES muxing, PSI generation, and demux validation all
// allocate nothing. (The media-plane end-to-end version — staging and
// delivering framed datagrams — is TestTSFramingZeroAlloc in
// internal/media.)
func TestTSZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed test")
	}
	for _, bm := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"AppendPES", BenchmarkAppendPES},
		{"AppendPSI", BenchmarkAppendPSI},
		{"DemuxFeed", BenchmarkDemuxFeed},
	} {
		if a := testing.Benchmark(bm.fn).AllocsPerOp(); a != 0 {
			t.Errorf("%s allocates %d allocs/op, want 0", bm.name, a)
		}
	}
}
