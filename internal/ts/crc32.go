// The CRC32 used by MPEG-TS PSI sections (PAT, PMT): the MPEG-2
// variant of ISO/IEC 13818-1 Annex A — polynomial 0x04C11DB7 applied
// most-significant-bit first, initial value 0xFFFFFFFF, no input or
// output reflection and no final XOR. This is NOT the IEEE CRC32 of
// hash/crc32 (which reflects both ways); a PSI section is valid when
// the CRC of the whole section including the trailing 4 CRC bytes is
// zero.
package ts

// crcTable is the byte-at-a-time lookup table for the MPEG-2 CRC32,
// built once at init from the generator polynomial.
var crcTable [256]uint32

func init() {
	const poly = 0x04C11DB7
	for i := range crcTable {
		crc := uint32(i) << 24
		for bit := 0; bit < 8; bit++ {
			if crc&0x80000000 != 0 {
				crc = crc<<1 ^ poly
			} else {
				crc <<= 1
			}
		}
		crcTable[i] = crc
	}
}

// CRC32 computes the MPEG-2 CRC32 of b.
func CRC32(b []byte) uint32 {
	crc := uint32(0xFFFFFFFF)
	for _, c := range b {
		crc = crc<<8 ^ crcTable[byte(crc>>24)^c]
	}
	return crc
}
