package ts

import (
	"bytes"
	"errors"
	"testing"
)

// TestCRC32KnownVector pins the MPEG-2 CRC32 against published
// vectors: "123456789" under CRC-32/MPEG-2 is 0x0376E6E7, and the CRC
// of a section including its own CRC bytes is zero (the property the
// demuxer checks).
func TestCRC32KnownVector(t *testing.T) {
	if got := CRC32([]byte("123456789")); got != 0x0376E6E7 {
		t.Fatalf("CRC32 check vector: got %#08x, want 0x0376E6E7", got)
	}
	msg := []byte("arbitrary section body")
	withCRC := appendSectionCRC(append([]byte(nil), msg...), 0)
	if got := CRC32(withCRC); got != 0 {
		t.Fatalf("CRC over section+CRC = %#08x, want 0", got)
	}
}

// TestPacketRoundTrip muxes single packets through every shape —
// full payload, stuffed payload, PCR — and parses them back.
func TestPacketRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		payload int
		pusi    bool
		hasPCR  bool
		pcr     uint64
	}{
		{"full", 184, false, false, 0},
		{"stuffed", 100, true, false, 0},
		{"one-byte-stuff", 183, false, false, 0},
		{"pcr", 170, true, true, 123456789012},
		{"pcr-max", 176, false, true, (uint64(1)<<33-1)*300 + 299},
		{"tiny", 1, false, false, 0},
	}
	var m Muxer
	for _, tc := range cases {
		payload := make([]byte, tc.payload)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		b, err := m.AppendPacket(nil, 0x101, tc.pusi, tc.hasPCR, tc.pcr, payload)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(b) != PacketSize {
			t.Fatalf("%s: packet is %d bytes, want %d", tc.name, len(b), PacketSize)
		}
		p, err := Parse(b)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		if p.PID != 0x101 || p.PUSI != tc.pusi || p.HasPCR != tc.hasPCR {
			t.Fatalf("%s: header mismatch: %+v", tc.name, p)
		}
		if tc.hasPCR && p.PCR != tc.pcr {
			t.Fatalf("%s: PCR %d, want %d", tc.name, p.PCR, tc.pcr)
		}
		if !bytes.Equal(p.Payload, payload) {
			t.Fatalf("%s: payload mismatch", tc.name)
		}
	}
}

// TestPacketLimits verifies the capacity errors.
func TestPacketLimits(t *testing.T) {
	var m Muxer
	if _, err := m.AppendPacket(nil, 0x101, false, false, 0, make([]byte, 185)); !errors.Is(err, errPayloadTooLarge) {
		t.Fatalf("oversize payload: %v", err)
	}
	if _, err := m.AppendPacket(nil, 0x101, false, true, 0, make([]byte, 177)); !errors.Is(err, errPayloadTooLarge) {
		t.Fatalf("oversize payload with PCR: %v", err)
	}
	if _, err := m.AppendPacket(nil, MaxPID+1, false, false, 0, nil); !errors.Is(err, errBadPID) {
		t.Fatalf("bad pid: %v", err)
	}
}

// TestContinuityCounter verifies per-PID counting and 4-bit wrap.
func TestContinuityCounter(t *testing.T) {
	var m Muxer
	var b []byte
	for i := 0; i < 20; i++ {
		var err error
		b, err = m.AppendPacket(b, 0x101, false, false, 0, []byte{1})
		if err != nil {
			t.Fatal(err)
		}
	}
	b, err := m.AppendPacket(b, 0x102, false, false, 0, []byte{2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p, err := Parse(b[i*PacketSize:])
		if err != nil {
			t.Fatal(err)
		}
		if want := uint8(i % 16); p.CC != want {
			t.Fatalf("packet %d: cc %d, want %d", i, p.CC, want)
		}
	}
	p, err := Parse(b[20*PacketSize:])
	if err != nil {
		t.Fatal(err)
	}
	if p.PID != 0x102 || p.CC != 0 {
		t.Fatalf("second pid starts cc at %d on pid %#x", p.CC, p.PID)
	}
}

// TestPESRoundTrip packetizes elementary streams of several sizes and
// reassembles them through the demuxer.
func TestPESRoundTrip(t *testing.T) {
	for _, esLen := range []int{0, 1, 100, 170, 171, 500, 1274, 5000} {
		es := make([]byte, esLen)
		for i := range es {
			es[i] = byte(i * 13)
		}
		var m Muxer
		const pid, pts, pcr = 0x101, uint64(1234567), uint64(9876543)
		b, err := m.AppendPES(nil, pid, StreamIDAudio, pts, true, pcr, es)
		if err != nil {
			t.Fatalf("es %d: %v", esLen, err)
		}
		if len(b)%PacketSize != 0 {
			t.Fatalf("es %d: %d bytes is not a whole number of packets", esLen, len(b))
		}

		var d Demuxer
		var got []byte
		var sawPTS uint64
		err = d.Feed(b, func(p Parsed) {
			if p.PID != pid {
				t.Fatalf("es %d: stray pid %#x", esLen, p.PID)
			}
			if p.PUSI {
				id, pts, hasPTS, total, esPart, err := ParsePES(p.Payload)
				if err != nil {
					t.Fatalf("es %d: ParsePES: %v", esLen, err)
				}
				if id != StreamIDAudio || !hasPTS || total != esLen {
					t.Fatalf("es %d: PES header: id %#x pts? %v total %d", esLen, id, hasPTS, total)
				}
				sawPTS = pts
				got = append(got, esPart...)
			} else {
				got = append(got, p.Payload...)
			}
		})
		if err != nil {
			t.Fatalf("es %d: feed: %v", esLen, err)
		}
		if sawPTS != pts {
			t.Fatalf("es %d: pts %d, want %d", esLen, sawPTS, pts)
		}
		if !bytes.Equal(got, es) {
			t.Fatalf("es %d: reassembled %d bytes, mismatch", esLen, len(got))
		}
		if lastPCR, n := d.PCR(); n != 1 || lastPCR != pcr {
			t.Fatalf("es %d: pcr %d seen %d, want %d seen once", esLen, lastPCR, n, pcr)
		}
		if s := d.Stats(); s.Errors() != 0 {
			t.Fatalf("es %d: clean stream shows errors: %+v", esLen, s)
		}
	}
}

// TestPSIRoundTrip generates a PAT and PMT, verifies their CRCs
// through the demuxer, and checks that the demuxer learns the PMT PID
// well enough to CRC-check the PMT.
func TestPSIRoundTrip(t *testing.T) {
	var m Muxer
	b, err := m.AppendPAT(nil, 1, 1, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	b, err = m.AppendPMT(b, 0x100, 1, 0x101, []Stream{{Type: StreamTypePrivate, PID: 0x101}, {Type: StreamTypeH264, PID: 0x102}})
	if err != nil {
		t.Fatal(err)
	}
	var d Demuxer
	if err := d.Feed(b, nil); err != nil {
		t.Fatalf("clean PSI rejected: %v", err)
	}
	s := d.Stats()
	if s.PSISections != 2 {
		t.Fatalf("PSI sections %d, want 2 (PAT+PMT)", s.PSISections)
	}
	if d.pmtPID != 0x100 {
		t.Fatalf("learned PMT PID %#x, want 0x100", d.pmtPID)
	}

	// Corrupt the PMT section (its last byte is the final CRC byte —
	// earlier packet bytes are adaptation stuffing): CRC must catch it.
	bad := append([]byte(nil), b...)
	bad[2*PacketSize-1] ^= 0x01
	var d2 Demuxer
	if err := d2.Feed(bad, nil); !errors.Is(err, ErrCRC) {
		t.Fatalf("corrupted PMT: %v, want ErrCRC", err)
	}
	if d2.Stats().CRCErrors != 1 {
		t.Fatalf("CRC errors %d, want 1", d2.Stats().CRCErrors)
	}
}

// TestCCDiscontinuity drops a packet mid-stream and verifies exactly
// one discontinuity is counted (resync, not one per following packet).
func TestCCDiscontinuity(t *testing.T) {
	var m Muxer
	var b []byte
	payload := make([]byte, 184)
	for i := 0; i < 10; i++ {
		var err error
		b, err = m.AppendPacket(b, 0x101, false, false, 0, payload)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Remove the 5th packet.
	gap := append(append([]byte(nil), b[:4*PacketSize]...), b[5*PacketSize:]...)
	var d Demuxer
	if err := d.Feed(gap, nil); !errors.Is(err, ErrCC) {
		t.Fatalf("gap stream: %v, want ErrCC", err)
	}
	if got := d.Stats().CCDiscontinuities; got != 1 {
		t.Fatalf("discontinuities %d, want exactly 1 after resync", got)
	}

	// A corrupted CC (bit flip in byte 3's low nibble) is also caught.
	flip := append([]byte(nil), b...)
	flip[3*PacketSize+3] ^= 0x01
	var d2 Demuxer
	if err := d2.Feed(flip, nil); !errors.Is(err, ErrCC) {
		t.Fatalf("flipped cc: %v, want ErrCC", err)
	}
}

// TestDiscontinuityIndicator verifies the splice case: a new muxer's
// first packets carry the discontinuity indicator, so a demuxer
// mid-stream on another source accepts the continuity-counter restart.
func TestDiscontinuityIndicator(t *testing.T) {
	var old Muxer
	a, err := old.AppendPES(nil, 0x101, StreamIDAudio, 0, true, 0, make([]byte, 500))
	if err != nil {
		t.Fatal(err)
	}
	var fresh Muxer
	fresh.SetDiscontinuity(true)
	b, err := fresh.AppendPES(nil, 0x101, StreamIDAudio, 0, true, 0, make([]byte, 500))
	if err != nil {
		t.Fatal(err)
	}
	fresh.SetDiscontinuity(false)
	p, err := Parse(b)
	if err != nil || !p.Discontinuity {
		t.Fatalf("first packet of the new stream: disc=%v err=%v", p.Discontinuity, err)
	}

	var d Demuxer
	if err := d.Feed(a, nil); err != nil {
		t.Fatalf("old stream: %v", err)
	}
	if err := d.Feed(b, nil); err != nil {
		t.Fatalf("flagged splice rejected: %v", err)
	}
	if got := d.Stats().CCDiscontinuities; got != 0 {
		t.Fatalf("flagged splice counted %d discontinuities, want 0", got)
	}

	// Without the flag the same splice IS a discontinuity.
	var fresh2 Muxer
	c, _ := fresh2.AppendPES(nil, 0x101, StreamIDAudio, 0, true, 0, make([]byte, 500))
	var d2 Demuxer
	_ = d2.Feed(a, nil)
	if err := d2.Feed(c, nil); !errors.Is(err, ErrCC) {
		t.Fatalf("unflagged splice: %v, want ErrCC", err)
	}
}

// TestSyncLoss verifies a trashed sync byte and a truncated tail are
// both counted and reported.
func TestSyncLoss(t *testing.T) {
	var m Muxer
	b, err := m.AppendPES(nil, 0x101, StreamIDAudio, 0, false, 0, make([]byte, 400))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), b...)
	bad[0] = 0x00
	var d Demuxer
	if err := d.Feed(bad, nil); !errors.Is(err, ErrSync) {
		t.Fatalf("bad sync: %v, want ErrSync", err)
	}
	var d2 Demuxer
	if err := d2.Feed(b[:PacketSize+10], nil); !errors.Is(err, ErrShort) {
		t.Fatalf("short tail: %v, want ErrShort", err)
	}
}
