// Depacketization: single-packet parsing, PES header parsing, and a
// stateful Demuxer that validates a stream of 188-byte packets —
// sync bytes, per-PID continuity, PSI CRC32, PES start codes — and
// counts every integrity failure. Decoding yields views into the
// input buffer; the demuxer allocates nothing per packet.
package ts

import "errors"

// The demuxer's integrity errors. Feed returns the first one observed
// in a buffer while the Stats counters record every occurrence.
var (
	ErrShort      = errors.New("ts: short packet")
	ErrSync       = errors.New("ts: bad sync byte")
	ErrAdaptation = errors.New("ts: bad adaptation field")
	ErrCC         = errors.New("ts: continuity counter discontinuity")
	ErrCRC        = errors.New("ts: PSI section CRC mismatch")
	ErrPES        = errors.New("ts: bad PES header")
)

// Parsed is one decoded TS packet header; Payload aliases the input.
type Parsed struct {
	PID           uint16
	CC            uint8
	PUSI          bool
	TEI           bool
	Discontinuity bool // adaptation discontinuity_indicator
	HasPCR        bool
	PCR           uint64 // 27 MHz ticks
	Payload       []byte // nil when the packet carries none
}

// Parse decodes the first 188 bytes of b as one TS packet.
func Parse(b []byte) (Parsed, error) {
	var p Parsed
	if len(b) < PacketSize {
		return p, ErrShort
	}
	if b[0] != SyncByte {
		return p, ErrSync
	}
	p.TEI = b[1]&0x80 != 0
	p.PUSI = b[1]&0x40 != 0
	p.PID = uint16(b[1]&0x1F)<<8 | uint16(b[2])
	ctrl := b[3] >> 4 & 0x3
	p.CC = b[3] & 0x0F
	if ctrl == 0 { // reserved
		return p, ErrAdaptation
	}
	off := 4
	if ctrl&0x2 != 0 { // adaptation field present
		afLen := int(b[4])
		off = 5 + afLen
		if off > PacketSize || (ctrl&0x1 != 0 && afLen > maxPayload-1-1) {
			return p, ErrAdaptation
		}
		if afLen >= 1 {
			flags := b[5]
			p.Discontinuity = flags&0x80 != 0
			if flags&0x10 != 0 { // PCR
				if afLen < pcrAFLen {
					return p, ErrAdaptation
				}
				base := uint64(b[6])<<25 | uint64(b[7])<<17 | uint64(b[8])<<9 |
					uint64(b[9])<<1 | uint64(b[10])>>7
				ext := uint64(b[10]&0x01)<<8 | uint64(b[11])
				p.HasPCR = true
				p.PCR = base*300 + ext
			}
		}
	}
	if ctrl&0x1 != 0 {
		p.Payload = b[off:PacketSize]
	}
	return p, nil
}

// ParsePES decodes the PES header this package's muxer writes at the
// start of payload (the PUSI packet's payload): stream id, PES packet
// length, optional PTS, and the view of the elementary-stream bytes
// present in this payload. esTotal is the declared elementary-stream
// length (0 when the PES is unbounded), for reassembly across packets.
func ParsePES(payload []byte) (streamID uint8, pts uint64, hasPTS bool, esTotal int, es []byte, err error) {
	if len(payload) < 9 {
		return 0, 0, false, 0, nil, ErrPES
	}
	if payload[0] != 0x00 || payload[1] != 0x00 || payload[2] != 0x01 {
		return 0, 0, false, 0, nil, ErrPES
	}
	streamID = payload[3]
	pesLen := int(payload[4])<<8 | int(payload[5])
	if payload[6]&0xC0 != 0x80 { // '10' marker of the extension header
		return 0, 0, false, 0, nil, ErrPES
	}
	hdrLen := int(payload[8])
	if len(payload) < 9+hdrLen {
		return 0, 0, false, 0, nil, ErrPES
	}
	if payload[7]&0x80 != 0 { // PTS present
		if hdrLen < 5 {
			return 0, 0, false, 0, nil, ErrPES
		}
		p := payload[9:]
		pts = uint64(p[0]>>1&0x07)<<30 | uint64(p[1])<<22 |
			uint64(p[2]>>1)<<15 | uint64(p[3])<<7 | uint64(p[4])>>1
		hasPTS = true
	}
	if pesLen > 0 {
		esTotal = pesLen - 3 - hdrLen
		if esTotal < 0 {
			return 0, 0, false, 0, nil, ErrPES
		}
	}
	return streamID, pts, hasPTS, esTotal, payload[9+hdrLen:], nil
}

// Stats counts what one Demuxer has seen. CCDiscontinuities counts
// continuity-counter jumps (packet loss or corruption); CRCErrors
// counts failed PSI section checksums; SyncErrors counts packets that
// did not parse at all (lost sync, short tail, bad adaptation field);
// PESErrors counts PUSI payloads without a valid PES header.
type Stats struct {
	Packets           uint64
	PSISections       uint64
	PESStarts         uint64
	CCDiscontinuities uint64
	CRCErrors         uint64
	SyncErrors        uint64
	PESErrors         uint64
}

// Errors sums the integrity-failure counters.
func (s Stats) Errors() uint64 {
	return s.CCDiscontinuities + s.CRCErrors + s.SyncErrors + s.PESErrors
}

// Demuxer validates a TS packet stream: continuity per PID, PSI CRC
// on the PAT and the PMT PID learned from it, PES start codes on
// media PIDs. The zero value is ready to use.
type Demuxer struct {
	cc     [MaxPID + 1]uint8 // last seen CC | ccSeen marker
	seen   [(MaxPID + 1) / 8]uint8
	pmtPID uint16 // learned from the PAT; 0 = not learned yet
	stats  Stats

	lastPCR uint64
	pcrSeen uint64 // count of PCRs observed
}

// Reset forgets all per-PID state and counters.
func (d *Demuxer) Reset() { *d = Demuxer{} }

// Stats returns a snapshot of the demuxer's counters.
func (d *Demuxer) Stats() Stats { return d.stats }

// PCR returns the most recent program clock reference (27 MHz ticks)
// and how many PCRs have been seen.
func (d *Demuxer) PCR() (uint64, uint64) { return d.lastPCR, d.pcrSeen }

// Feed consumes len(b)/188 packets, validating each and invoking emit
// (when non-nil) with every payload-bearing packet. It returns the
// first integrity error found in b (every failure is also counted in
// Stats); a trailing fragment shorter than 188 bytes is an ErrShort.
func (d *Demuxer) Feed(b []byte, emit func(p Parsed)) error {
	var first error
	record := func(err error) {
		if first == nil {
			first = err
		}
	}
	for len(b) > 0 {
		if len(b) < PacketSize {
			d.stats.SyncErrors++
			record(ErrShort)
			break
		}
		pkt := b[:PacketSize]
		b = b[PacketSize:]
		p, err := Parse(pkt)
		if err != nil {
			d.stats.SyncErrors++
			record(err)
			continue
		}
		d.stats.Packets++
		if p.HasPCR {
			d.lastPCR = p.PCR
			d.pcrSeen++
		}
		if p.Payload != nil {
			if err := d.checkCC(p); err != nil {
				record(err)
			}
			if err := d.checkPayload(p); err != nil {
				record(err)
			}
			if emit != nil {
				emit(p)
			}
		}
	}
	return first
}

// checkCC verifies pid continuity, resyncing the expectation on a
// mismatch so one gap costs one discontinuity, not one per packet.
func (d *Demuxer) checkCC(p Parsed) error {
	byteIx, bit := p.PID>>3, uint8(1)<<(p.PID&7)
	if d.seen[byteIx]&bit == 0 {
		d.seen[byteIx] |= bit
		d.cc[p.PID] = p.CC
		return nil
	}
	want := (d.cc[p.PID] + 1) & 0x0F
	d.cc[p.PID] = p.CC
	if p.CC != want && !p.Discontinuity {
		d.stats.CCDiscontinuities++
		return ErrCC
	}
	return nil
}

// checkPayload validates what a PUSI payload opens with: a CRC'd PSI
// section on the PAT/PMT PIDs, a PES start code elsewhere.
func (d *Demuxer) checkPayload(p Parsed) error {
	if !p.PUSI {
		return nil
	}
	if p.PID == PIDPAT || (d.pmtPID != 0 && p.PID == d.pmtPID) {
		return d.checkSection(p)
	}
	d.stats.PESStarts++
	if len(p.Payload) < 3 || p.Payload[0] != 0x00 || p.Payload[1] != 0x00 || p.Payload[2] != 0x01 {
		d.stats.PESErrors++
		return ErrPES
	}
	return nil
}

// checkSection verifies one PSI section's framing and CRC32 (the
// MPEG-2 CRC of a whole section including its trailing CRC bytes is
// zero) and learns the PMT PID from a valid PAT.
func (d *Demuxer) checkSection(p Parsed) error {
	b := p.Payload
	if len(b) < 1 {
		d.stats.CRCErrors++
		return ErrCRC
	}
	ptr := int(b[0])
	if len(b) < 1+ptr+3 {
		d.stats.CRCErrors++
		return ErrCRC
	}
	sec := b[1+ptr:]
	secLen := int(sec[1]&0x0F)<<8 | int(sec[2])
	if len(sec) < 3+secLen || secLen < 4 {
		d.stats.CRCErrors++
		return ErrCRC
	}
	sec = sec[:3+secLen]
	if CRC32(sec) != 0 {
		d.stats.CRCErrors++
		return ErrCRC
	}
	d.stats.PSISections++
	// A single-program PAT section is 5 header bytes, one 4-byte
	// program entry, and the 4-byte CRC.
	if sec[0] == TableIDPAT && secLen >= 5+4+4 {
		// First program entry: program_number (2) then the PMT PID.
		d.pmtPID = uint16(sec[10]&0x1F)<<8 | uint16(sec[11])
	}
	return nil
}
