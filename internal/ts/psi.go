// Program-specific information: single-program PAT and PMT section
// builders (ISO 13818-1 §2.4.4). Sections are assembled in a
// stack-resident scratch buffer, CRC'd with the MPEG-2 table CRC32,
// and emitted as one TS packet each (every section here fits 184
// bytes), so PSI generation is allocation-free like the rest of the
// muxer.
package ts

// Stream is one elementary stream entry in a PMT.
type Stream struct {
	Type uint8  // stream_type, e.g. StreamTypePrivate or StreamTypeH264
	PID  uint16 // elementary PID
}

// psiScratch holds one section under construction: pointer_field +
// longest section this package emits (a PMT with a handful of
// streams) stays far under one packet's payload.
type psiScratch [maxPayload]byte

// AppendPAT appends one TS packet carrying a single-program program
// association table: program programNumber's PMT lives on pmtPID.
func (m *Muxer) AppendPAT(dst []byte, tsID, programNumber, pmtPID uint16) ([]byte, error) {
	var s psiScratch
	b := s[:0]
	b = append(b, 0x00)       // pointer_field: section starts immediately
	b = append(b, TableIDPAT) // table_id
	// section_syntax_indicator '1', '0', reserved '11', then the
	// 12-bit section_length: 5 header bytes + one program entry + CRC.
	secLen := 5 + 4 + 4
	b = append(b, 0xB0|byte(secLen>>8), byte(secLen))
	b = append(b, byte(tsID>>8), byte(tsID))
	b = append(b, 0xC1)       // reserved '11', version 0, current_next '1'
	b = append(b, 0x00, 0x00) // section_number, last_section_number
	b = append(b, byte(programNumber>>8), byte(programNumber))
	b = append(b, 0xE0|byte(pmtPID>>8), byte(pmtPID))
	b = appendSectionCRC(b, 1)
	return m.AppendPacket(dst, PIDPAT, true, false, 0, b)
}

// AppendPMT appends one TS packet carrying the program map table of
// programNumber on pmtPID: the program's PCR travels on pcrPID and its
// elementary streams are listed with empty descriptor loops.
func (m *Muxer) AppendPMT(dst []byte, pmtPID, programNumber, pcrPID uint16, streams []Stream) ([]byte, error) {
	var s psiScratch
	b := s[:0]
	b = append(b, 0x00)       // pointer_field
	b = append(b, TableIDPMT) // table_id
	secLen := 9 + 5*len(streams) + 4
	if 3+secLen > len(s)-1 { // table header + section vs. scratch minus pointer
		return dst, errPayloadTooLarge
	}
	b = append(b, 0xB0|byte(secLen>>8), byte(secLen))
	b = append(b, byte(programNumber>>8), byte(programNumber))
	b = append(b, 0xC1)       // reserved '11', version 0, current_next '1'
	b = append(b, 0x00, 0x00) // section_number, last_section_number
	b = append(b, 0xE0|byte(pcrPID>>8), byte(pcrPID))
	b = append(b, 0xF0, 0x00) // program_info_length 0
	for _, st := range streams {
		b = append(b, st.Type)
		b = append(b, 0xE0|byte(st.PID>>8), byte(st.PID))
		b = append(b, 0xF0, 0x00) // ES_info_length 0
	}
	b = appendSectionCRC(b, 1)
	return m.AppendPacket(dst, pmtPID, true, false, 0, b)
}

// appendSectionCRC appends the MPEG-2 CRC32 of b[skip:] (skip steps
// over the pointer_field, which is outside the section).
func appendSectionCRC(b []byte, skip int) []byte {
	crc := CRC32(b[skip:])
	return append(b, byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc))
}
