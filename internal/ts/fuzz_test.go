package ts

import (
	"bytes"
	"testing"
)

// FuzzTSPacket fuzzes the single-packet layer both ways: arbitrary
// bytes must never panic the parser, and any payload the muxer
// accepts must round-trip through Parse byte-exactly.
func FuzzTSPacket(f *testing.F) {
	var seedMux Muxer
	seed, _ := seedMux.AppendPacket(nil, 0x101, true, true, 1234567, []byte("seed payload"))
	f.Add(seed, uint16(0x101), true, uint64(1234567))
	f.Add(make([]byte, PacketSize), uint16(0), false, uint64(0))
	f.Add([]byte{SyncByte, 0xFF, 0xFF, 0xFF}, uint16(MaxPID), true, uint64(1)<<40)
	f.Fuzz(func(t *testing.T, raw []byte, pid uint16, pusi bool, pcr uint64) {
		// Never-panic: parse arbitrary bytes, feed them to a demuxer.
		_, _ = Parse(raw)
		var d Demuxer
		_ = d.Feed(raw, func(p Parsed) {
			if len(p.Payload) > maxPayload {
				t.Fatalf("payload view %d bytes exceeds packet capacity", len(p.Payload))
			}
		})

		// Round-trip: reuse the fuzz bytes as a payload where they fit.
		payload := raw
		if len(payload) > 176 {
			payload = payload[:176]
		}
		var m Muxer
		b, err := m.AppendPacket(nil, pid&MaxPID, pusi, true, pcr, payload)
		if err != nil {
			t.Fatalf("mux rejected valid payload: %v", err)
		}
		if len(b) != PacketSize {
			t.Fatalf("muxed packet is %d bytes", len(b))
		}
		p, err := Parse(b)
		if err != nil {
			t.Fatalf("parse of muxed packet: %v", err)
		}
		if p.PID != pid&MaxPID || p.PUSI != pusi || !p.HasPCR {
			t.Fatalf("header mismatch: got %+v", p)
		}
		// PCR wraps at 33 bits of 90 kHz base; compare modulo that.
		if want := (pcr/300)&MaxPTS*300 + pcr%300; p.PCR != want {
			t.Fatalf("pcr %d, want %d", p.PCR, want)
		}
		if !bytes.Equal(p.Payload, payload) {
			t.Fatalf("payload mismatch")
		}
	})
}

// FuzzPES fuzzes PES encapsulation: any elementary stream must
// round-trip through AppendPES → Demuxer.Feed → ParsePES with the
// demuxer seeing a clean stream, and ParsePES must never panic on
// arbitrary payload bytes.
func FuzzPES(f *testing.F) {
	f.Add([]byte("elementary stream"), uint64(90000), uint16(0x42))
	f.Add([]byte{}, uint64(0), uint16(1))
	f.Add(bytes.Repeat([]byte{0xAB}, 4000), uint64(1)<<40, uint16(0x1FFF))
	f.Fuzz(func(t *testing.T, es []byte, pts uint64, pid uint16) {
		// Never-panic on arbitrary "payload" bytes.
		_, _, _, _, _, _ = ParsePES(es)

		if len(es) > 1<<16 {
			es = es[:1<<16]
		}
		pid &= MaxPID
		if pid == PIDPAT {
			pid = 0x101 // PAT PID would route the payload to the PSI checker
		}
		var m Muxer
		b, err := m.AppendPES(nil, pid, StreamIDVideo, pts, false, 0, es)
		if err != nil {
			t.Fatalf("AppendPES: %v", err)
		}
		var d Demuxer
		var got []byte
		var gotPTS uint64
		err = d.Feed(b, func(p Parsed) {
			if p.PUSI {
				_, seenPTS, hasPTS, _, part, err := ParsePES(p.Payload)
				if err != nil {
					t.Fatalf("ParsePES on muxed payload: %v", err)
				}
				if !hasPTS {
					t.Fatal("muxed PES lost its PTS")
				}
				gotPTS = seenPTS
				got = append(got, part...)
			} else {
				got = append(got, p.Payload...)
			}
		})
		if err != nil {
			t.Fatalf("demux of muxed PES: %v", err)
		}
		if s := d.Stats(); s.Errors() != 0 {
			t.Fatalf("clean PES shows errors: %+v", s)
		}
		if gotPTS != pts&MaxPTS {
			t.Fatalf("pts %d, want %d", gotPTS, pts&MaxPTS)
		}
		if !bytes.Equal(got, es) {
			t.Fatalf("es mismatch: %d bytes in, %d out", len(es), len(got))
		}
	})
}
