// Package ts is a zero-allocation MPEG-TS (ISO/IEC 13818-1)
// packetizer and depacketizer for the media fast path: 188-byte
// transport packets with sync byte, 13-bit PIDs, per-PID continuity
// counters, adaptation fields carrying PCR and stuffing, PES
// encapsulation with PTS, single-program PAT/PMT generation, and the
// MPEG-2 table CRC32.
//
// Like the signaling codec (sig.Append*) and the media wire codec
// (media.AppendPacket), every encoder is append-style — it extends a
// caller-owned buffer and returns it — and every decoder yields views
// into the input, so steady-state mux and demux allocate nothing. All
// mutable state (continuity counters, the demuxer's expected-CC table
// and learned PMT PID) lives inside the Muxer/Demuxer value, which the
// media plane embeds in the per-sender framing state rather than
// allocating per packet.
//
// Packet layout (ISO 13818-1 §2.4.3.2):
//
//	byte 0      sync byte 0x47
//	byte 1      TEI | PUSI | priority | PID[12:8]
//	byte 2      PID[7:0]
//	byte 3      scrambling(2) | adaptation_field_control(2) | CC(4)
//	bytes 4..   optional adaptation field, then payload
//
// The adaptation field opens with its own length byte, then a flags
// byte (PCR_flag = 0x10), a 6-byte PCR (33-bit base at 90 kHz, 6
// reserved bits, 9-bit extension at 27 MHz) when flagged, and 0xFF
// stuffing; a packet whose payload is shorter than 184 bytes is padded
// to exactly 188 by stuffing the adaptation field (§2.4.3.5).
package ts

import "errors"

const (
	// PacketSize is the fixed MPEG-TS packet size.
	PacketSize = 188
	// SyncByte opens every TS packet.
	SyncByte = 0x47
	// MaxPID is the largest PID (13 bits).
	MaxPID = 0x1FFF
	// PIDPAT is the well-known PID of the program association table.
	PIDPAT = 0x0000
	// PIDNull is the null-packet PID.
	PIDNull = 0x1FFF

	// maxPayload is the payload capacity of one packet with no
	// adaptation field.
	maxPayload = PacketSize - 4
	// pcrAFLen is the adaptation-field length (the bytes after the
	// length byte) when it carries only the flags byte and a PCR.
	pcrAFLen = 1 + 6

	// TableIDPAT and TableIDPMT are the PSI table ids (§2.4.4.4).
	TableIDPAT = 0x00
	TableIDPMT = 0x02

	// StreamIDAudio and StreamIDVideo are the PES stream ids of the
	// first audio and video streams (§2.4.3.6, Table 2-18).
	StreamIDAudio = 0xC0
	StreamIDVideo = 0xE0

	// StreamTypePrivate is the PMT stream type for PES private data —
	// payloads (like G.711 frames) with no registered MPEG stream type
	// (§2.4.4.9, Table 2-29). StreamTypeH264 is AVC video.
	StreamTypePrivate = 0x06
	StreamTypeH264    = 0x1B

	// pesHeaderLen is the size of the fixed PES header this muxer
	// writes: start code (3), stream id (1), length (2), '10'+flags
	// (2), header-data length (1), PTS (5).
	pesHeaderLen = 14
	// MaxPTS is the largest encodable PTS (33 bits of 90 kHz ticks).
	MaxPTS = 1<<33 - 1
)

var (
	errPayloadTooLarge = errors.New("ts: payload exceeds packet capacity")
	errBadPID          = errors.New("ts: PID out of range")
)

// Muxer packetizes streams into TS packets, one continuity counter per
// PID. The zero value is ready to use; the state is one byte per PID,
// sized for embedding in per-sender framing state.
type Muxer struct {
	cc   [MaxPID + 1]uint8 // next continuity counter, 4 bits used
	disc bool              // set the discontinuity indicator on AF-bearing packets
}

// SetDiscontinuity controls the adaptation-field discontinuity
// indicator (§2.4.3.4) on subsequently muxed packets that carry an
// adaptation field. A muxer opening a new stream sets it for its first
// burst so receivers that were mid-stream on another source accept the
// continuity-counter restart instead of counting a discontinuity —
// the TS equivalent of a splice.
func (m *Muxer) SetDiscontinuity(on bool) { m.disc = on }

// appendHeader writes the 4-byte TS header plus an adaptation field
// sized so that payloadLen payload bytes complete the 188-byte packet.
// The caller must append exactly payloadLen bytes afterwards.
// payloadLen must fit: at most 184, or 176 alongside a PCR.
func (m *Muxer) appendHeader(dst []byte, pid uint16, pusi, hasPCR bool, pcr uint64, payloadLen int) ([]byte, error) {
	if pid > MaxPID {
		return dst, errBadPID
	}
	room := maxPayload
	if hasPCR {
		room -= 1 + pcrAFLen
	}
	if payloadLen > room {
		return dst, errPayloadTooLarge
	}
	b1 := byte(pid >> 8)
	if pusi {
		b1 |= 0x40
	}
	// adaptation_field_control: a zero-length payload makes this an
	// adaptation-only packet ('10'), since '11' requires payload bytes
	// and '10' requires the field to fill the packet (§2.4.3.4).
	var ctrl byte
	needAF := hasPCR || payloadLen < maxPayload
	if payloadLen > 0 {
		ctrl = 0x10
	} else {
		needAF = true
	}
	if needAF {
		ctrl |= 0x20
	}
	cc := m.cc[pid] & 0x0F
	if payloadLen > 0 {
		m.cc[pid] = (cc + 1) & 0x0F // payload-bearing packets consume a count (§2.4.3.3)
	}
	dst = append(dst, SyncByte, b1, byte(pid), ctrl|cc)
	if !needAF {
		return dst, nil
	}
	// afLen counts the bytes after the length byte; adaptation field
	// plus payload fill the packet exactly. afLen 0 is the legal
	// one-byte stuffing form (length byte only).
	afLen := maxPayload - 1 - payloadLen
	dst = append(dst, byte(afLen))
	if afLen == 0 {
		return dst, nil
	}
	flags := byte(0)
	if m.disc {
		flags |= 0x80
	}
	stuff := afLen - 1
	if hasPCR {
		flags |= 0x10
		stuff -= 6
	}
	dst = append(dst, flags)
	if hasPCR {
		dst = appendPCR(dst, pcr)
	}
	for i := 0; i < stuff; i++ {
		dst = append(dst, 0xFF)
	}
	return dst, nil
}

// AppendPacket appends one 188-byte TS packet on pid carrying payload
// (at most 184 bytes, or 176 with a PCR). A short payload is padded
// with adaptation-field stuffing so the packet is always exactly 188
// bytes. hasPCR puts a program clock reference (27 MHz ticks) in the
// adaptation field.
func (m *Muxer) AppendPacket(dst []byte, pid uint16, pusi bool, hasPCR bool, pcr uint64, payload []byte) ([]byte, error) {
	dst, err := m.appendHeader(dst, pid, pusi, hasPCR, pcr, len(payload))
	if err != nil {
		return dst, err
	}
	return append(dst, payload...), nil
}

// appendPCR writes the 6-byte PCR field: 33-bit base (90 kHz), 6
// reserved bits (all ones), 9-bit extension (27 MHz remainder).
func appendPCR(dst []byte, pcr uint64) []byte {
	base := (pcr / 300) & MaxPTS
	ext := pcr % 300
	return append(dst,
		byte(base>>25), byte(base>>17), byte(base>>9), byte(base>>1),
		byte(base<<7)|0x7E|byte(ext>>8), byte(ext))
}

// PESCapacity returns the elementary-stream size whose AppendPES
// encapsulation (PTS header, and a leading PCR when withPCR) fills
// exactly n TS packets with no stuffing — the size framing layers use
// to emit fixed-shape bursts.
func PESCapacity(n int, withPCR bool) int {
	c := n*maxPayload - pesHeaderLen
	if withPCR {
		c -= 1 + pcrAFLen
	}
	return c
}

// AppendPES appends the PES encapsulation of es on pid: a PES header
// with stream id, packet length, and PTS (90 kHz ticks, 33 bits),
// split across as many TS packets as the payload needs. The first
// packet carries PUSI (and the PCR when hasPCR); the last is stuffed
// to the 188-byte boundary. Allocation-free when dst has capacity.
func (m *Muxer) AppendPES(dst []byte, pid uint16, streamID uint8, pts uint64, hasPCR bool, pcr uint64, es []byte) ([]byte, error) {
	room := maxPayload - pesHeaderLen
	if hasPCR {
		room -= 1 + pcrAFLen
	}
	first := len(es)
	if first > room {
		first = room
	}
	var hdr [pesHeaderLen]byte
	pesLen := 3 + 5 + len(es) // bytes after the length field
	if pesLen > 0xFFFF {
		pesLen = 0 // unbounded, permitted for video elementary streams
	}
	pts &= MaxPTS
	hdr[0], hdr[1], hdr[2] = 0x00, 0x00, 0x01
	hdr[3] = streamID
	hdr[4], hdr[5] = byte(pesLen>>8), byte(pesLen)
	hdr[6] = 0x80 // '10' marker, no scrambling, no priority
	hdr[7] = 0x80 // PTS present, no DTS
	hdr[8] = 5    // header data length
	hdr[9] = 0x21 | byte(pts>>29)&0x0E
	hdr[10] = byte(pts >> 22)
	hdr[11] = 0x01 | byte(pts>>14)&0xFE
	hdr[12] = byte(pts >> 7)
	hdr[13] = 0x01 | byte(pts<<1)&0xFE

	start := len(dst)
	dst, err := m.appendHeader(dst, pid, true, hasPCR, pcr, pesHeaderLen+first)
	if err != nil {
		return dst[:start], err
	}
	dst = append(dst, hdr[:]...)
	dst = append(dst, es[:first]...)
	es = es[first:]
	for len(es) > 0 {
		n := len(es)
		if n > maxPayload {
			n = maxPayload
		}
		dst, err = m.AppendPacket(dst, pid, false, false, 0, es[:n])
		if err != nil {
			return dst[:start], err
		}
		es = es[n:]
	}
	return dst, nil
}
