// Parallel state-space exploration: a worker pool expands frontier
// states concurrently against a lock-striped visited set keyed by
// 64-bit fingerprints, while a single owner goroutine merges each
// worker's batches into the Graph. Only the owner ever writes the
// Graph arrays, so counterexample reconstruction and the liveness
// SCC pass see exactly the same consistent structure the sequential
// explorer produces.
//
// Order-independence: the set of reachable states and the successor
// list of each state are properties of the model, not of exploration
// order, so States (distinct interned fingerprints) and Transitions
// (sum of successor counts over expanded states, plus one stutter loop
// per terminal) are identical for any worker count. The agreement
// tests in parallel_test.go and mcmodel assert this for every suite
// model.
package mc

import (
	"sync"
	"sync/atomic"
	"time"

	"ipmedia/internal/ltl"
	"ipmedia/internal/telemetry"
)

// numShards stripes the visited set; must be a power of two. 64
// stripes keep contention negligible for any plausible worker count.
const numShards = 64

// chunkSize is how many frontier states the owner hands a worker at a
// time. Batching amortizes channel operations against state expansion.
const chunkSize = 64

// shard is one stripe of the visited set. Exactly one of keys/sums is
// non-nil, mirroring Options.HashCompaction.
type shard struct {
	mu       sync.Mutex
	keys     map[string]int32
	sums     map[uint64]int32
	keyBytes int64
}

// task is a frontier state awaiting expansion.
type task struct {
	id int32
	s  State
}

// freshRec carries a newly interned state from a worker to the owner,
// with the per-state attributes precomputed so the owner only stores.
type freshRec struct {
	id     int32
	parent int32
	label  string
	obs    ltl.Obs
	mask   uint64
	quies  bool
	s      State
}

// adjRec is the completed successor list of one expanded state.
type adjRec struct {
	from  int32
	edges []edge
}

// batch is everything a worker learned from expanding one chunk.
type batch struct {
	fresh       []freshRec
	adjs        []adjRec
	viols       []violation
	transitions int
}

// pvisited is the sharded visited set plus the global dense ID
// allocator shared by all workers.
type pvisited struct {
	shards  [numShards]shard
	next    atomic.Int32
	compact bool
}

func newPvisited(compact bool) *pvisited {
	v := &pvisited{compact: compact}
	for i := range v.shards {
		if compact {
			v.shards[i].sums = make(map[uint64]int32, 64)
		} else {
			v.shards[i].keys = make(map[string]int32, 64)
		}
	}
	return v
}

// intern resolves key to a state ID, allocating a fresh dense ID on
// first sight. The boolean reports whether the key was fresh.
func (v *pvisited) intern(key []byte) (int32, bool) {
	h := fnv64(key)
	sh := &v.shards[h&(numShards-1)]
	sh.mu.Lock()
	if v.compact {
		if id, ok := sh.sums[h]; ok {
			sh.mu.Unlock()
			return id, false
		}
		id := v.next.Add(1) - 1
		sh.sums[h] = id
		sh.keyBytes += 8
		sh.mu.Unlock()
		return id, true
	}
	if id, ok := sh.keys[string(key)]; ok {
		sh.mu.Unlock()
		return id, false
	}
	id := v.next.Add(1) - 1
	sh.keys[string(key)] = id
	sh.keyBytes += int64(len(key))
	sh.mu.Unlock()
	return id, true
}

func (v *pvisited) totalKeyBytes() int64 {
	var n int64
	for i := range v.shards {
		n += v.shards[i].keyBytes
	}
	return n
}

// exploreParallel is the multi-core counterpart of exploreSeq.
//
// Topology: owner -> work (chan []task) -> workers -> results
// (chan batch) -> owner. The owner loop is a select between
// dispatching the next frontier chunk and merging a finished batch, so
// it can never deadlock against a worker: results is buffered to the
// worker count and each worker has at most one unmerged batch.
func exploreParallel(init State, opts Options, maxStates int) (*Graph, *Result, []violation) {
	workers := opts.Workers
	g := newGraph()
	res := &Result{Workers: workers}
	visited := newPvisited(opts.HashCompaction)
	statesC := telemetry.C(MetricStates)
	transC := telemetry.C(MetricTransitions)

	work := make(chan []task, workers)
	results := make(chan batch, workers)
	var busyNanos atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			keyBuf := make([]byte, 0, 256)
			for chunk := range work {
				t0 := time.Now()
				var b batch
				for _, it := range chunk {
					keyBuf = expand(it, visited, &b, keyBuf)
				}
				busyNanos.Add(int64(time.Since(t0)))
				results <- b
			}
		}()
	}

	// growTo extends the per-state arrays to hold id. Batches can merge
	// out of order, so arrays may briefly contain holes above the
	// contiguous prefix; every allocated ID is carried by exactly one
	// freshRec, so all holes are filled by the time the frontier drains.
	growTo := func(id int32) {
		for int(id) >= len(g.obs) {
			g.obs = append(g.obs, ltl.Obs{})
			g.masks = append(g.masks, 0)
			g.quies = append(g.quies, false)
			g.adj = append(g.adj, nil)
			g.parent = append(g.parent, -1)
			g.plabel = append(g.plabel, "")
		}
	}

	var viols []violation
	invariantViols := 0
	var queue []task
	head := 0

	// Intern the initial state owner-side so the frontier starts
	// non-empty before any worker runs.
	keyBuf := init.AppendKey(make([]byte, 0, 256))
	id0, _ := visited.intern(keyBuf)
	growTo(id0)
	g.obs[id0] = init.Obs()
	g.masks[id0] = init.QueueMask()
	g.quies[id0] = init.Quiescent()
	g.plabel[id0] = "init"
	statesC.Inc()
	queue = append(queue, task{id0, init})

	start := time.Now()
	inflight := 0
	stopDispatch := false
	for inflight > 0 || (!stopDispatch && head < len(queue)) {
		if !stopDispatch && int(visited.next.Load()) > maxStates {
			res.Truncated = true
			stopDispatch = true
		}
		var workCh chan []task
		var chunk []task
		if !stopDispatch && head < len(queue) {
			end := head + chunkSize
			if end > len(queue) {
				end = len(queue)
			}
			chunk = queue[head:end]
			workCh = work
		}
		if workCh == nil && inflight == 0 {
			// stopDispatch flipped this iteration with nothing in
			// flight: both select cases are disabled, so exit here.
			break
		}
		select {
		case workCh <- chunk:
			head += len(chunk)
			inflight++
			// Dispatched chunks alias the queue's backing array, so
			// compaction must copy into a fresh slice rather than
			// shifting in place as the sequential explorer does.
			if head >= 4096 && head*2 >= len(queue) {
				nq := make([]task, len(queue)-head, cap(queue))
				copy(nq, queue[head:])
				queue = nq
				head = 0
			}
		case b := <-results:
			inflight--
			for _, f := range b.fresh {
				growTo(f.id)
				g.obs[f.id] = f.obs
				g.masks[f.id] = f.mask
				g.quies[f.id] = f.quies
				g.parent[f.id] = f.parent
				g.plabel[f.id] = f.label
				statesC.Inc()
				if !stopDispatch {
					queue = append(queue, task{f.id, f.s})
				}
			}
			for _, a := range b.adjs {
				g.adj[a.from] = a.edges
			}
			for _, v := range b.viols {
				if v.kind == violInvariant {
					if invariantViols >= maxInvariantReports {
						continue
					}
					invariantViols++
				}
				viols = append(viols, v)
			}
			res.Transitions += b.transitions
			transC.Add(uint64(b.transitions))
		}
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)
	if n := workers * int(wall); n > 0 {
		pct := busyNanos.Load() * 100 / int64(n)
		telemetry.G(MetricWorkerUtil).Set(pct)
	}

	g.KeyBytes = visited.totalKeyBytes()
	return g, res, viols
}

// expand performs the same per-state work as the body of exploreSeq's
// BFS loop, recording results into the worker's batch instead of the
// shared graph. keyBuf is the worker's reused fingerprint scratch.
func expand(it task, visited *pvisited, b *batch, keyBuf []byte) []byte {
	if inv, ok := it.s.(InvariantState); ok {
		if err := inv.Invariant(); err != nil {
			b.viols = append(b.viols, violation{it.id, violInvariant, err.Error()})
		}
	}
	succs := it.s.Succs()
	if len(succs) == 0 {
		if !it.s.Quiescent() {
			b.viols = append(b.viols, violation{it.id, violDeadlock, ""})
		} else if err := it.s.Check(); err != nil {
			b.viols = append(b.viols, violation{it.id, violFinal, err.Error()})
		}
		b.adjs = append(b.adjs, adjRec{it.id, []edge{{to: it.id, queue: -1}}})
		b.transitions++
		return keyBuf
	}
	if it.s.Quiescent() {
		if err := it.s.Check(); err != nil {
			b.viols = append(b.viols, violation{it.id, violFinal, err.Error()})
		}
	}
	es := make([]edge, 0, len(succs))
	for _, sc := range succs {
		keyBuf = sc.State.AppendKey(keyBuf[:0])
		id, fresh := visited.intern(keyBuf)
		es = append(es, edge{to: id, queue: int32(sc.Queue)})
		if fresh {
			b.fresh = append(b.fresh, freshRec{
				id:     id,
				parent: it.id,
				label:  sc.Label,
				obs:    sc.State.Obs(),
				mask:   sc.State.QueueMask(),
				quies:  sc.State.Quiescent(),
				s:      sc.State,
			})
		}
	}
	b.adjs = append(b.adjs, adjRec{it.id, es})
	b.transitions += len(succs)
	return keyBuf
}
