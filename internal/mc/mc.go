// Package mc is an explicit-state model checker, the stdlib-only
// substitute for the Spin verification of paper Section VIII-A. Where
// the paper modeled its Java implementation in Promela, this checker
// explores the actual Go goal and slot engines directly: a Model
// supplies an initial state; each state enumerates its successors
// (signal deliveries and nondeterministic internal moves); the checker
// builds the full reachable graph, then checks safety (deadlocks,
// final-state invariants, channel emptiness) and the paper's temporal
// properties under exact weak fairness of queue service.
//
// Exploration runs single-threaded by default (Options.Workers <= 1,
// the reference implementation) or on a worker pool (parallel.go) that
// expands frontier states concurrently against a lock-striped visited
// set. Both modes produce the same state graph up to state numbering:
// identical state and transition counts and identical verdicts.
package mc

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"ipmedia/internal/ltl"
	"ipmedia/internal/telemetry"
)

// Telemetry instrument names exported by this package. The counters
// advance live during exploration; the gauges summarize the last
// completed run.
const (
	// MetricStates counts distinct states interned across all runs.
	MetricStates = "mc.states"
	// MetricTransitions counts transitions explored across all runs.
	MetricTransitions = "mc.transitions"
	// MetricStatesPerSec is the exploration rate of the last run.
	MetricStatesPerSec = "mc.states_per_sec"
	// MetricWorkerUtil is the percentage of worker wall-clock spent
	// expanding states (vs. waiting on the frontier) in the last run.
	MetricWorkerUtil = "mc.worker_utilization_pct"
)

// State is one global state of the model.
type State interface {
	// AppendKey appends a canonical fingerprint to dst and returns the
	// extended slice; two states are identical iff their appended
	// bytes are equal. Append-style so the checker can fingerprint
	// millions of states through one reused scratch buffer.
	AppendKey(dst []byte) []byte
	// Succs enumerates the successor states with their transition
	// labels. An empty slice marks a terminal state.
	Succs() []Succ
	// Obs evaluates the path-state observation in this state.
	Obs() ltl.Obs
	// QueueMask returns a bitmask of the model's nonempty queues
	// (bit i set iff queue i is nonempty). Used for weak fairness.
	QueueMask() uint64
	// Quiescent reports whether the state is a legitimate resting
	// state: all queues empty and no internal moves pending.
	Quiescent() bool
	// Check validates state invariants in a quiescent state (e.g. the
	// paper's "each slot is closed or flowing"); non-nil means a safety
	// violation.
	Check() error
}

// InvariantState is an optional State capability: Invariant is checked
// in EVERY reachable state (not only quiescent ones). It carries the
// inductive-lemma checks of paper Section VIII-B — properties such as
// the flowlink's up-to-date soundness that must hold continuously.
type InvariantState interface {
	State
	Invariant() error
}

// Succ is one labeled transition.
type Succ struct {
	State State
	// Queue is the index of the queue whose head was delivered, or -1
	// for internal (chaos/switch) moves, which are not fairness-bound.
	Queue int
	// Label describes the transition for counterexamples.
	Label string
}

// Options tunes exploration.
type Options struct {
	// MaxStates aborts exploration beyond this many states (0: 30M).
	MaxStates int
	// HashCompaction stores 64-bit FNV-1a fingerprints instead of full
	// state keys — the counterpart of the compression the paper's Spin
	// runs relied on ("Even with partial order reduction, compression,
	// and a few simplifying assumptions...", Section VIII-A). Memory
	// per state drops to a few dozen bytes at the cost of a collision
	// probability of about states²/2⁶⁵; the Result reports the bound.
	HashCompaction bool
	// Workers sets the number of exploration goroutines. Values <= 1
	// select the single-threaded reference implementation; higher
	// values enable the worker pool of parallel.go. Both modes agree
	// on state/transition counts and verdicts.
	Workers int
}

// Graph is the explored state graph.
type Graph struct {
	obs   []ltl.Obs
	masks []uint64
	quies []bool
	adj   [][]edge
	// parent edge for counterexample reconstruction
	parent []int32
	plabel []string

	// KeyBytes is the total size of all state fingerprints, the bulk of
	// the checker's memory use.
	KeyBytes int64
}

type edge struct {
	to    int32
	queue int32
}

// Result summarizes one model-checking run, the data behind the
// paper's Section VIII-A statistics.
type Result struct {
	States      int
	Transitions int
	Elapsed     time.Duration
	MemBytes    uint64 // heap growth during exploration
	Workers     int    // exploration goroutines actually used
	Deadlocks   []string
	SafetyErrs  []string
	Truncated   bool
	// CollisionBound is the approximate probability that hash
	// compaction merged two distinct states (0 without compaction).
	CollisionBound float64
}

// violation records a safety problem found during exploration by state
// id. Trace reconstruction is deferred until the graph is complete, so
// the parallel explorer's workers never touch the shared parent
// arrays.
type violation struct {
	id   int32
	kind violKind
	msg  string
}

type violKind uint8

const (
	violInvariant violKind = iota
	violDeadlock
	violFinal
)

// maxInvariantReports bounds how many continuous-invariant violations
// are collected; one is enough for a verdict and each carries a trace.
const maxInvariantReports = 16

// Explore builds the reachable state graph by breadth-first search and
// performs the paper's safety checks along the way: no deadlocks or
// other abnormal terminations, and every final state passes
// State.Check (each slot closed or flowing, channels empty).
//
// With opts.Workers > 1 the frontier is expanded by a worker pool; see
// parallel.go. The sequential path below is the reference both for
// semantics and for the parallel-agreement tests.
func Explore(init State, opts Options) (*Graph, *Result) {
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = 30_000_000
	}
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()

	var g *Graph
	var res *Result
	var viols []violation
	if opts.Workers > 1 {
		g, res, viols = exploreParallel(init, opts, maxStates)
	} else {
		g, res, viols = exploreSeq(init, opts, maxStates)
	}

	res.States = len(g.obs)
	if opts.HashCompaction {
		n := float64(res.States)
		res.CollisionBound = n * n / (2 * 18446744073709551616.0)
	}
	g.report(viols, res)
	res.Elapsed = time.Since(start)
	if secs := res.Elapsed.Seconds(); secs > 0 {
		telemetry.G(MetricStatesPerSec).Set(int64(float64(res.States) / secs))
	}
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	if msAfter.HeapAlloc > msBefore.HeapAlloc {
		res.MemBytes = msAfter.HeapAlloc - msBefore.HeapAlloc
	}
	return g, res
}

// exploreSeq is the single-threaded reference explorer.
func exploreSeq(init State, opts Options, maxStates int) (*Graph, *Result, []violation) {
	g := newGraph()
	res := &Result{Workers: 1}
	var keys map[string]int32
	var sums map[uint64]int32
	if opts.HashCompaction {
		sums = make(map[uint64]int32, 1<<12)
	} else {
		keys = make(map[string]int32, 1<<12)
	}
	statesC := telemetry.C(MetricStates)
	transC := telemetry.C(MetricTransitions)
	telemetry.G(MetricWorkerUtil).Set(100)

	var viols []violation
	invariantViols := 0
	keyBuf := make([]byte, 0, 256)

	add := func(s State, parent int32, label string) int32 {
		id := int32(len(g.obs))
		g.obs = append(g.obs, s.Obs())
		g.masks = append(g.masks, s.QueueMask())
		g.quies = append(g.quies, s.Quiescent())
		g.adj = append(g.adj, nil)
		g.parent = append(g.parent, parent)
		g.plabel = append(g.plabel, label)
		statesC.Inc()
		return id
	}
	intern := func(s State, parent int32, label string) (int32, bool) {
		keyBuf = s.AppendKey(keyBuf[:0])
		if opts.HashCompaction {
			h := fnv64(keyBuf)
			if id, ok := sums[h]; ok {
				return id, false
			}
			id := add(s, parent, label)
			sums[h] = id
			g.KeyBytes += 8
			return id, true
		}
		if id, ok := keys[string(keyBuf)]; ok {
			return id, false
		}
		id := add(s, parent, label)
		keys[string(keyBuf)] = id
		g.KeyBytes += int64(len(keyBuf))
		return id, true
	}

	type item struct {
		id int32
		s  State
	}
	id0, _ := intern(init, -1, "init")
	queue := make([]item, 0, 1024)
	queue = append(queue, item{id0, init})
	head := 0
	for head < len(queue) {
		if len(g.obs) > maxStates {
			res.Truncated = true
			break
		}
		it := queue[head]
		queue[head] = item{} // release the State for GC
		head++
		// The naive queue = queue[1:] pins the whole backing array for
		// the run; a head index with periodic in-place compaction keeps
		// the frontier's working set proportional to its live size.
		if head >= 4096 && head*2 >= len(queue) {
			n := copy(queue, queue[head:])
			for i := n; i < len(queue); i++ {
				queue[i] = item{}
			}
			queue = queue[:n]
			head = 0
		}
		if inv, ok := it.s.(InvariantState); ok {
			if err := inv.Invariant(); err != nil && invariantViols < maxInvariantReports {
				invariantViols++
				viols = append(viols, violation{it.id, violInvariant, err.Error()})
			}
		}
		succs := it.s.Succs()
		if len(succs) == 0 {
			// Terminal: legitimate only if quiescent and invariant-clean.
			if !it.s.Quiescent() {
				viols = append(viols, violation{it.id, violDeadlock, ""})
			} else if err := it.s.Check(); err != nil {
				viols = append(viols, violation{it.id, violFinal, err.Error()})
			}
			// Model a legitimate final state as stuttering.
			g.adj[it.id] = append(g.adj[it.id], edge{to: it.id, queue: -1})
			res.Transitions++
			transC.Inc()
			continue
		}
		if it.s.Quiescent() {
			// Quiescent but with internal moves still possible: the
			// invariants must hold here too.
			if err := it.s.Check(); err != nil {
				viols = append(viols, violation{it.id, violFinal, err.Error()})
			}
		}
		es := make([]edge, 0, len(succs))
		for _, sc := range succs {
			id, fresh := intern(sc.State, it.id, sc.Label)
			es = append(es, edge{to: id, queue: int32(sc.Queue)})
			if fresh {
				queue = append(queue, item{id, sc.State})
			}
		}
		g.adj[it.id] = es
		res.Transitions += len(succs)
		transC.Add(uint64(len(succs)))
	}
	return g, res, viols
}

// newGraph pre-sizes the per-state arrays so early growth does not
// churn through a cascade of small reallocations.
func newGraph() *Graph {
	const c = 1024
	return &Graph{
		obs:    make([]ltl.Obs, 0, c),
		masks:  make([]uint64, 0, c),
		quies:  make([]bool, 0, c),
		adj:    make([][]edge, 0, c),
		parent: make([]int32, 0, c),
		plabel: make([]string, 0, c),
	}
}

// report renders collected violations into the Result, reconstructing
// counterexample traces now that the graph is complete.
func (g *Graph) report(viols []violation, res *Result) {
	for _, v := range viols {
		switch v.kind {
		case violDeadlock:
			res.Deadlocks = append(res.Deadlocks, g.trace(int(v.id)))
		case violInvariant:
			res.SafetyErrs = append(res.SafetyErrs, fmt.Sprintf("invariant: %s\n%s", v.msg, g.trace(int(v.id))))
		case violFinal:
			res.SafetyErrs = append(res.SafetyErrs, fmt.Sprintf("%s\n%s", v.msg, g.trace(int(v.id))))
		}
	}
}

// trace reconstructs the labels along the search-tree path to a state.
func (g *Graph) trace(id int) string {
	var labels []string
	for id >= 0 && int(g.parent[id]) != id {
		labels = append(labels, g.plabel[id])
		id = int(g.parent[id])
		if len(labels) > 200 {
			break
		}
	}
	var b strings.Builder
	n := 0
	for _, l := range labels {
		n += len(l) + 3
	}
	b.Grow(n)
	for i := len(labels) - 1; i >= 0; i-- {
		b.WriteString("  ")
		b.WriteString(labels[i])
		b.WriteByte('\n')
	}
	return b.String()
}

// States returns the number of states in the graph.
func (g *Graph) States() int { return len(g.obs) }

// fnv64 is FNV-1a over the state key.
func fnv64(p []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	return h
}
