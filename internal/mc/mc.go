// Package mc is an explicit-state model checker, the stdlib-only
// substitute for the Spin verification of paper Section VIII-A. Where
// the paper modeled its Java implementation in Promela, this checker
// explores the actual Go goal and slot engines directly: a Model
// supplies an initial state; each state enumerates its successors
// (signal deliveries and nondeterministic internal moves); the checker
// builds the full reachable graph, then checks safety (deadlocks,
// final-state invariants, channel emptiness) and the paper's temporal
// properties under exact weak fairness of queue service.
package mc

import (
	"fmt"
	"runtime"
	"time"

	"ipmedia/internal/ltl"
)

// State is one global state of the model.
type State interface {
	// Key returns a canonical fingerprint; two states are identical iff
	// their keys are equal.
	Key() string
	// Succs enumerates the successor states with their transition
	// labels. An empty slice marks a terminal state.
	Succs() []Succ
	// Obs evaluates the path-state observation in this state.
	Obs() ltl.Obs
	// QueueMask returns a bitmask of the model's nonempty queues
	// (bit i set iff queue i is nonempty). Used for weak fairness.
	QueueMask() uint64
	// Quiescent reports whether the state is a legitimate resting
	// state: all queues empty and no internal moves pending.
	Quiescent() bool
	// Check validates state invariants in a quiescent state (e.g. the
	// paper's "each slot is closed or flowing"); non-nil means a safety
	// violation.
	Check() error
}

// InvariantState is an optional State capability: Invariant is checked
// in EVERY reachable state (not only quiescent ones). It carries the
// inductive-lemma checks of paper Section VIII-B — properties such as
// the flowlink's up-to-date soundness that must hold continuously.
type InvariantState interface {
	State
	Invariant() error
}

// Succ is one labeled transition.
type Succ struct {
	State State
	// Queue is the index of the queue whose head was delivered, or -1
	// for internal (chaos/switch) moves, which are not fairness-bound.
	Queue int
	// Label describes the transition for counterexamples.
	Label string
}

// Options tunes exploration.
type Options struct {
	// MaxStates aborts exploration beyond this many states (0: 30M).
	MaxStates int
	// HashCompaction stores 64-bit FNV-1a fingerprints instead of full
	// state keys — the counterpart of the compression the paper's Spin
	// runs relied on ("Even with partial order reduction, compression,
	// and a few simplifying assumptions...", Section VIII-A). Memory
	// per state drops to a few dozen bytes at the cost of a collision
	// probability of about states²/2⁶⁵; the Result reports the bound.
	HashCompaction bool
}

// Graph is the explored state graph.
type Graph struct {
	keys  map[string]int
	sums  map[uint64]int // hash-compaction mode
	obs   []ltl.Obs
	masks []uint64
	quies []bool
	adj   [][]edge
	// parent edge for counterexample reconstruction
	parent []int
	plabel []string

	// KeyBytes is the total size of all state fingerprints, the bulk of
	// the checker's memory use.
	KeyBytes int64
}

type edge struct {
	to    int32
	queue int32
}

// Result summarizes one model-checking run, the data behind the
// paper's Section VIII-A statistics.
type Result struct {
	States      int
	Transitions int
	Elapsed     time.Duration
	MemBytes    uint64 // heap growth during exploration
	Deadlocks   []string
	SafetyErrs  []string
	Truncated   bool
	// CollisionBound is the approximate probability that hash
	// compaction merged two distinct states (0 without compaction).
	CollisionBound float64
}

// Explore builds the reachable state graph by breadth-first search and
// performs the paper's safety checks along the way: no deadlocks or
// other abnormal terminations, and every final state passes
// State.Check (each slot closed or flowing, channels empty).
func Explore(init State, opts Options) (*Graph, *Result) {
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = 30_000_000
	}
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()

	g := &Graph{}
	if opts.HashCompaction {
		g.sums = map[uint64]int{}
	} else {
		g.keys = map[string]int{}
	}
	res := &Result{}
	add := func(s State, parent int, label string) int {
		id := len(g.obs)
		g.obs = append(g.obs, s.Obs())
		g.masks = append(g.masks, s.QueueMask())
		g.quies = append(g.quies, s.Quiescent())
		g.adj = append(g.adj, nil)
		g.parent = append(g.parent, parent)
		g.plabel = append(g.plabel, label)
		return id
	}
	intern := func(s State, parent int, label string) (int, bool) {
		k := s.Key()
		if opts.HashCompaction {
			h := fnv64(k)
			if id, ok := g.sums[h]; ok {
				return id, false
			}
			id := add(s, parent, label)
			g.sums[h] = id
			g.KeyBytes += 8
			return id, true
		}
		if id, ok := g.keys[k]; ok {
			return id, false
		}
		id := add(s, parent, label)
		g.keys[k] = id
		g.KeyBytes += int64(len(k))
		return id, true
	}

	type item struct {
		id int
		s  State
	}
	id0, _ := intern(init, -1, "init")
	queue := []item{{id0, init}}
	for len(queue) > 0 {
		if len(g.obs) > maxStates {
			res.Truncated = true
			break
		}
		it := queue[0]
		queue = queue[1:]
		if inv, ok := it.s.(InvariantState); ok {
			if err := inv.Invariant(); err != nil && len(res.SafetyErrs) < 16 {
				res.SafetyErrs = append(res.SafetyErrs, fmt.Sprintf("invariant: %v\n%s", err, g.trace(it.id)))
			}
		}
		succs := it.s.Succs()
		if len(succs) == 0 {
			// Terminal: legitimate only if quiescent and invariant-clean.
			if !it.s.Quiescent() {
				res.Deadlocks = append(res.Deadlocks, g.trace(it.id))
			} else if err := it.s.Check(); err != nil {
				res.SafetyErrs = append(res.SafetyErrs, fmt.Sprintf("%v\n%s", err, g.trace(it.id)))
			}
			// Model a legitimate final state as stuttering.
			g.adj[it.id] = append(g.adj[it.id], edge{to: int32(it.id), queue: -1})
			res.Transitions++
			continue
		}
		if it.s.Quiescent() {
			// Quiescent but with internal moves still possible: the
			// invariants must hold here too.
			if err := it.s.Check(); err != nil {
				res.SafetyErrs = append(res.SafetyErrs, fmt.Sprintf("%v\n%s", err, g.trace(it.id)))
			}
		}
		for _, sc := range succs {
			id, fresh := intern(sc.State, it.id, sc.Label)
			g.adj[it.id] = append(g.adj[it.id], edge{to: int32(id), queue: int32(sc.Queue)})
			res.Transitions++
			if fresh {
				queue = append(queue, item{id, sc.State})
			}
		}
	}
	res.States = len(g.obs)
	if opts.HashCompaction {
		n := float64(res.States)
		res.CollisionBound = n * n / (2 * 18446744073709551616.0)
	}
	res.Elapsed = time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	if msAfter.HeapAlloc > msBefore.HeapAlloc {
		res.MemBytes = msAfter.HeapAlloc - msBefore.HeapAlloc
	}
	return g, res
}

// trace reconstructs the labels along the BFS tree path to a state.
func (g *Graph) trace(id int) string {
	var labels []string
	for id >= 0 && g.parent[id] != id {
		labels = append(labels, g.plabel[id])
		id = g.parent[id]
		if len(labels) > 200 {
			break
		}
	}
	// reverse
	s := ""
	for i := len(labels) - 1; i >= 0; i-- {
		s += "  " + labels[i] + "\n"
	}
	return s
}

// States returns the number of states in the graph.
func (g *Graph) States() int { return len(g.obs) }

// fnv64 is FNV-1a over the state key.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
