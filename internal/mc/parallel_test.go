package mc

import (
	"fmt"
	"testing"

	"ipmedia/internal/ltl"
)

// bigToy builds a toy model with a wide diamond-shaped state space so
// the parallel frontier actually fans out across workers.
func bigToy() *toyModel {
	m := newToy()
	// Layered DAG: 40 layers of 25 states plus cross edges, converging
	// on a single closed terminal state.
	id := func(layer, i int) int { return 1 + layer*25 + i }
	for i := 0; i < 25; i++ {
		m.edge(0, id(0, i), i%7)
	}
	for layer := 0; layer < 39; layer++ {
		for i := 0; i < 25; i++ {
			m.edge(id(layer, i), id(layer+1, i), i%7)
			m.edge(id(layer, i), id(layer+1, (i+3)%25), (i+1)%7)
		}
	}
	last := 1 + 40*25
	for i := 0; i < 25; i++ {
		m.edge(id(39, i), last, 0)
	}
	m.quies[last] = true
	m.obs[last] = ltl.Obs{BothClosed: true}
	return m
}

// TestParallelAgreesWithSequential checks the tentpole invariant on
// toy models: any worker count produces the same state count,
// transition count, and verdicts as the sequential reference.
func TestParallelAgreesWithSequential(t *testing.T) {
	m := bigToy()
	_, seq := Explore(toyState{m, 0}, Options{Workers: 1})
	for _, w := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			gp, par := Explore(toyState{m, 0}, Options{Workers: w})
			if par.Workers != w {
				t.Fatalf("Workers = %d, want %d", par.Workers, w)
			}
			if par.States != seq.States || par.Transitions != seq.Transitions {
				t.Fatalf("parallel (%d states, %d transitions) != sequential (%d, %d)",
					par.States, par.Transitions, seq.States, seq.Transitions)
			}
			if len(par.Deadlocks) != len(seq.Deadlocks) || len(par.SafetyErrs) != len(seq.SafetyErrs) {
				t.Fatalf("violation counts differ: %+v vs %+v", par, seq)
			}
			if err := gp.CheckProp(ltl.StabClosed); err != nil {
				t.Fatalf("◇□closed should hold on the parallel graph: %v", err)
			}
		})
	}
}

// TestParallelHashCompactionAgrees repeats the agreement check in
// fingerprint-only mode, the configuration the blowup runs use.
func TestParallelHashCompactionAgrees(t *testing.T) {
	m := bigToy()
	_, seq := Explore(toyState{m, 0}, Options{Workers: 1, HashCompaction: true})
	_, par := Explore(toyState{m, 0}, Options{Workers: 4, HashCompaction: true})
	if par.States != seq.States || par.Transitions != seq.Transitions {
		t.Fatalf("compaction: parallel (%d, %d) != sequential (%d, %d)",
			par.States, par.Transitions, seq.States, seq.Transitions)
	}
	if par.CollisionBound != seq.CollisionBound {
		t.Fatalf("collision bounds differ: %g vs %g", par.CollisionBound, seq.CollisionBound)
	}
}

// TestParallelFindsDeadlock checks that safety violations detected by
// workers still produce a counterexample trace ending in the right
// transition label.
func TestParallelFindsDeadlock(t *testing.T) {
	m := bigToy()
	// Graft a deadlock (terminal, non-quiescent) off a mid-layer state.
	m.edge(1+20*25+7, 99999, 3)
	m.masks[99999] = 1
	_, res := Explore(toyState{m, 0}, Options{Workers: 4})
	if len(res.Deadlocks) != 1 {
		t.Fatalf("expected 1 deadlock, got %d", len(res.Deadlocks))
	}
	if res.Deadlocks[0] == "" {
		t.Fatal("deadlock trace is empty")
	}
}

// TestParallelSafetyCheckOnFinalStates mirrors the sequential test:
// quiescent terminal states failing Check are reported with a trace.
func TestParallelSafetyCheckOnFinalStates(t *testing.T) {
	m := newToy()
	m.edge(0, 1, 0)
	m.quies[1] = true
	init := failState{toyState{m, 0}, 1}
	_, res := Explore(init, Options{Workers: 4})
	if len(res.SafetyErrs) != 1 {
		t.Fatalf("expected 1 safety violation, got %v", res.SafetyErrs)
	}
}

// TestParallelTruncation checks that MaxStates stops dispatch and that
// the graph stays internally consistent (dense arrays, no holes).
func TestParallelTruncation(t *testing.T) {
	m := newToy()
	for i := 0; i < 5000; i++ {
		m.edge(i, i+1, 0)
		m.edge(i, 5001+i, 1)
		m.quies[5001+i] = true
		m.obs[5001+i] = ltl.Obs{BothClosed: true}
	}
	m.quies[5000] = true
	g, res := Explore(toyState{m, 0}, Options{Workers: 4, MaxStates: 500})
	if !res.Truncated {
		t.Fatal("exploration should report truncation")
	}
	if res.States < 500 {
		t.Fatalf("truncated run explored only %d states", res.States)
	}
	if g.States() != res.States {
		t.Fatalf("graph has %d states, result says %d", g.States(), res.States)
	}
}

// TestParallelLivenessVerdictsAgree runs the temporal checks on graphs
// produced by both modes and compares verdicts.
func TestParallelLivenessVerdictsAgree(t *testing.T) {
	// Fair cycle violating ◇□closed (from TestFairCycleWithServiceCounts).
	m := newToy()
	m.masks[1] = 1 << 5
	m.masks[2] = 1 << 5
	m.edge(0, 1, 0)
	m.edge(1, 2, 5)
	m.edge(2, 1, 1)
	gs, _ := Explore(toyState{m, 0}, Options{Workers: 1})
	gp, _ := Explore(toyState{m, 0}, Options{Workers: 4})
	errS := gs.CheckProp(ltl.StabClosed)
	errP := gp.CheckProp(ltl.StabClosed)
	if (errS == nil) != (errP == nil) {
		t.Fatalf("liveness verdicts differ: seq=%v par=%v", errS, errP)
	}
	if errP == nil {
		t.Fatal("fair cycle leaving closed must violate ◇□closed in parallel mode too")
	}
}
