package mc

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"ipmedia/internal/ltl"
)

// toyState is a hand-built model: a directed graph over small integer
// states with explicit observations, queue masks, and edge labels.
type toyModel struct {
	succs map[int][]Succ
	obs   map[int]ltl.Obs
	masks map[int]uint64
	quies map[int]bool
}

type toyState struct {
	m  *toyModel
	id int
}

func (s toyState) AppendKey(dst []byte) []byte { return strconv.AppendInt(dst, int64(s.id), 10) }
func (s toyState) Succs() []Succ {
	out := make([]Succ, len(s.m.succs[s.id]))
	copy(out, s.m.succs[s.id])
	return out
}
func (s toyState) Obs() ltl.Obs      { return s.m.obs[s.id] }
func (s toyState) QueueMask() uint64 { return s.m.masks[s.id] }
func (s toyState) Quiescent() bool   { return s.m.quies[s.id] }
func (s toyState) Check() error      { return nil }

func newToy() *toyModel {
	return &toyModel{
		succs: map[int][]Succ{},
		obs:   map[int]ltl.Obs{},
		masks: map[int]uint64{},
		quies: map[int]bool{},
	}
}

func (m *toyModel) edge(from, to, queue int) {
	m.succs[from] = append(m.succs[from], Succ{State: toyState{m, to}, Queue: queue, Label: fmt.Sprintf("%d->%d", from, to)})
}

func explore(t *testing.T, m *toyModel) (*Graph, *Result) {
	t.Helper()
	return Explore(toyState{m, 0}, Options{})
}

func TestExploreCountsStates(t *testing.T) {
	m := newToy()
	m.edge(0, 1, 0)
	m.edge(0, 2, 1)
	m.edge(1, 3, 0)
	m.edge(2, 3, 1)
	m.quies[3] = true
	g, res := explore(t, m)
	if res.States != 4 {
		t.Fatalf("states = %d, want 4", res.States)
	}
	if g.States() != 4 {
		t.Fatal("graph state count mismatch")
	}
	if len(res.Deadlocks) != 0 || len(res.SafetyErrs) != 0 {
		t.Fatalf("unexpected violations: %+v", res)
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := newToy()
	m.edge(0, 1, 0)
	// State 1 is terminal but NOT quiescent (queue pending): deadlock.
	m.masks[1] = 1
	_, res := explore(t, m)
	if len(res.Deadlocks) != 1 {
		t.Fatalf("expected 1 deadlock, got %v", res.Deadlocks)
	}
	if !strings.Contains(res.Deadlocks[0], "0->1") {
		t.Fatalf("deadlock trace missing transition label: %q", res.Deadlocks[0])
	}
}

func TestSafetyCheckOnFinalStates(t *testing.T) {
	m := newToy()
	m.edge(0, 1, 0)
	m.quies[1] = true
	// Wrap with a failing Check on state 1.
	init := failState{toyState{m, 0}, 1}
	_, res := Explore(init, Options{})
	if len(res.SafetyErrs) != 1 {
		t.Fatalf("expected 1 safety violation, got %v", res.SafetyErrs)
	}
}

type failState struct {
	toyState
	bad int
}

func (s failState) Check() error {
	if s.id == s.bad {
		return fmt.Errorf("invariant broken in %d", s.id)
	}
	return nil
}
func (s failState) Succs() []Succ {
	var out []Succ
	for _, sc := range s.toyState.Succs() {
		out = append(out, Succ{State: failState{sc.State.(toyState), s.bad}, Queue: sc.Queue, Label: sc.Label})
	}
	return out
}

func TestStabClosedHoldsOnConvergingModel(t *testing.T) {
	m := newToy()
	// 0 (flowing-ish) -> 1 -> 2 (closed, terminal).
	m.edge(0, 1, 0)
	m.edge(1, 2, 0)
	m.quies[2] = true
	m.obs[2] = ltl.Obs{BothClosed: true}
	g, _ := explore(t, m)
	if err := g.CheckProp(ltl.StabClosed); err != nil {
		t.Fatalf("◇□closed should hold: %v", err)
	}
}

func TestStabClosedFailsOnEscapingCycle(t *testing.T) {
	m := newToy()
	// A fair cycle 1<->2 where 2 is not closed.
	m.edge(0, 1, 0)
	m.edge(1, 2, 0)
	m.edge(2, 1, 1)
	m.obs[1] = ltl.Obs{BothClosed: true}
	m.obs[2] = ltl.Obs{}
	g, _ := explore(t, m)
	if err := g.CheckProp(ltl.StabClosed); err == nil {
		t.Fatal("◇□closed should fail on a cycle leaving closed")
	}
}

func TestUnfairCycleIgnored(t *testing.T) {
	m := newToy()
	// Cycle 1<->2 never serves queue 5, which is nonempty in both
	// states: unfair, so it cannot violate ◇□closed. The run must
	// eventually take the exit 1->3 (closed, terminal).
	m.masks[1] = 1 << 5
	m.masks[2] = 1 << 5
	m.edge(0, 1, 0)
	m.edge(1, 2, 0)
	m.edge(2, 1, 1)
	m.edge(1, 3, 5) // serving queue 5 leaves the cycle
	m.quies[3] = true
	m.obs[3] = ltl.Obs{BothClosed: true}
	g, _ := explore(t, m)
	if err := g.CheckProp(ltl.StabClosed); err != nil {
		t.Fatalf("unfair cycle must not count as a violation: %v", err)
	}
}

func TestFairCycleWithServiceCounts(t *testing.T) {
	m := newToy()
	// Same shape, but the cycle itself serves queue 5: fair, and it
	// violates ◇□closed.
	m.masks[1] = 1 << 5
	m.masks[2] = 1 << 5
	m.edge(0, 1, 0)
	m.edge(1, 2, 5)
	m.edge(2, 1, 1)
	g, _ := explore(t, m)
	if err := g.CheckProp(ltl.StabClosed); err == nil {
		t.Fatal("fair cycle leaving closed must violate ◇□closed")
	}
}

func TestRecFlowing(t *testing.T) {
	m := newToy()
	// Cycle 1(flowing) -> 2 -> 1: flowing recurs.
	m.edge(0, 1, 0)
	m.edge(1, 2, 0)
	m.edge(2, 1, 1)
	m.obs[1] = ltl.Obs{BothFlowing: true}
	g, _ := explore(t, m)
	if err := g.CheckProp(ltl.RecFlowing); err != nil {
		t.Fatalf("□◇flowing should hold: %v", err)
	}
	// Remove the flowing observation: now the cycle avoids flowing.
	m.obs[1] = ltl.Obs{}
	g2, _ := explore(t, m)
	if err := g2.CheckProp(ltl.RecFlowing); err == nil {
		t.Fatal("□◇flowing should fail")
	}
}

func TestClosedOrFlowing(t *testing.T) {
	m := newToy()
	// Terminal closed state: the stability disjunct.
	m.edge(0, 1, 0)
	m.quies[1] = true
	m.obs[1] = ltl.Obs{BothClosed: true}
	g, _ := explore(t, m)
	if err := g.CheckProp(ltl.ClosedOrFlowing); err != nil {
		t.Fatalf("disjunction should hold via ◇□closed: %v", err)
	}

	// A cycle that is neither closed nor ever flowing: violation.
	m2 := newToy()
	m2.edge(0, 1, 0)
	m2.edge(1, 0, 1)
	g2, _ := explore(t, m2)
	if err := g2.CheckProp(ltl.ClosedOrFlowing); err == nil {
		t.Fatal("limbo cycle must violate the disjunction")
	}
}

func TestRecFlowingAcrossQuiescentStutter(t *testing.T) {
	// A run that terminates in a flowing state satisfies □◇flowing via
	// the stutter self-loop the checker adds.
	m := newToy()
	m.edge(0, 1, 0)
	m.quies[1] = true
	m.obs[1] = ltl.Obs{BothFlowing: true}
	g, _ := explore(t, m)
	if err := g.CheckProp(ltl.RecFlowing); err != nil {
		t.Fatalf("terminating in flowing satisfies □◇flowing: %v", err)
	}
}

func TestMaxStatesTruncation(t *testing.T) {
	m := newToy()
	for i := 0; i < 100; i++ {
		m.edge(i, i+1, 0)
	}
	m.quies[100] = true
	_, res := Explore(toyState{m, 0}, Options{MaxStates: 10})
	if !res.Truncated {
		t.Fatal("exploration should report truncation")
	}
}

func TestHashCompactionEquivalence(t *testing.T) {
	// On a model far below the collision bound, hash compaction must
	// produce the same state count and the same verdicts as full keys.
	m := newToy()
	for i := 0; i < 50; i++ {
		m.edge(i, i+1, i%3)
		if i%7 == 0 {
			m.edge(i, (i+20)%51, 1)
		}
	}
	m.quies[50] = true
	m.obs[50] = ltl.Obs{BothClosed: true}
	full, fullRes := Explore(toyState{m, 0}, Options{})
	compact, compactRes := Explore(toyState{m, 0}, Options{HashCompaction: true})
	if fullRes.States != compactRes.States {
		t.Fatalf("state counts differ: %d vs %d", fullRes.States, compactRes.States)
	}
	if compactRes.CollisionBound <= 0 || compactRes.CollisionBound > 1e-10 {
		t.Fatalf("collision bound = %g", compactRes.CollisionBound)
	}
	if compactRes.Truncated != fullRes.Truncated {
		t.Fatal("unexpected exploration difference")
	}
	errFull := full.CheckProp(ltl.StabClosed)
	errCompact := compact.CheckProp(ltl.StabClosed)
	if (errFull == nil) != (errCompact == nil) {
		t.Fatalf("verdicts differ: %v vs %v", errFull, errCompact)
	}
	// Key memory shrinkage only shows on realistic keys (toy keys are
	// shorter than a hash); see TestHashCompactionOnRealModel.
	_ = compact.KeyBytes
}
