// Liveness checking of the paper's Section V path specifications under
// exact weak fairness of queue service.
//
// Every infinite run of a finite-state model eventually cycles, so a
// property of the forms used by the paper is violated iff the graph
// contains a reachable *fair* cycle of a particular shape:
//
//	¬(◇□p)            ⇔  ∃ fair cycle containing a ¬p state
//	¬(□◇p)            ⇔  ∃ fair cycle entirely within ¬p states
//	¬((◇□p) ∨ (□◇q))  ⇔  ∃ fair cycle within ¬q states containing a ¬p state
//
// Weak fairness of queue service: if a queue is nonempty continuously,
// a delivery from it eventually occurs. A cycle is fair iff every
// queue nonempty in all its states has a delivery edge on the cycle.
//
// Within one strongly connected component, a single cycle can be
// routed through any finite set of required states and edges, and
// through a state where a given queue is empty whenever one exists.
// Therefore the existence test is exact at SCC granularity:
//
//	an SCC contains a fair cycle with the required visits iff
//	  (a) it contains a cycle at all (more than one state, or a self-loop),
//	  (b) it contains a state satisfying each visit requirement, and
//	  (c) for every queue nonempty in ALL its states, it contains an
//	      edge delivering from that queue.
package mc

import (
	"fmt"

	"ipmedia/internal/ltl"
)

// CheckProp verifies one of the paper's path properties over the
// explored graph. It returns nil if the property holds on every fair
// run, or a description of a bad fair cycle.
func (g *Graph) CheckProp(p ltl.PathProp) error {
	switch p {
	case ltl.StabClosed:
		return g.badFairCycle(
			func(int) bool { return true },
			func(i int) bool { return !g.obs[i].BothClosed },
			"a fair cycle leaves bothClosed infinitely often")
	case ltl.StabNotFlowing:
		return g.badFairCycle(
			func(int) bool { return true },
			func(i int) bool { return g.obs[i].BothFlowing },
			"a fair cycle reaches bothFlowing infinitely often")
	case ltl.RecFlowing:
		return g.badFairCycle(
			func(i int) bool { return !g.obs[i].BothFlowing },
			nil,
			"a fair cycle avoids bothFlowing forever")
	case ltl.ClosedOrFlowing:
		return g.badFairCycle(
			func(i int) bool { return !g.obs[i].BothFlowing },
			func(i int) bool { return !g.obs[i].BothClosed },
			"a fair cycle avoids bothFlowing forever without staying bothClosed")
	default:
		return fmt.Errorf("mc: unknown property %v", p)
	}
}

// badFairCycle reports an error iff the subgraph induced by restrict
// contains a fair cycle with at least one state satisfying visit
// (visit nil: no requirement).
func (g *Graph) badFairCycle(restrict func(int) bool, visit func(int) bool, what string) error {
	n := len(g.obs)
	in := make([]bool, n)
	for i := 0; i < n; i++ {
		in[i] = restrict(i)
	}
	comp, ncomp := g.sccs(in)
	// Per-SCC aggregates.
	type agg struct {
		size      int
		selfLoop  bool
		constMask uint64 // queues nonempty in every state of the SCC
		servedIn  uint64 // queues served by some intra-SCC edge
		visitOK   bool
	}
	aggs := make([]agg, ncomp)
	for i := range aggs {
		aggs[i].constMask = ^uint64(0)
	}
	for v := 0; v < n; v++ {
		if !in[v] {
			continue
		}
		c := comp[v]
		a := &aggs[c]
		a.size++
		a.constMask &= g.masks[v]
		if visit == nil || visit(v) {
			a.visitOK = true
		}
		for _, e := range g.adj[v] {
			if !in[e.to] || comp[e.to] != c {
				continue
			}
			if int(e.to) == v {
				a.selfLoop = true
			}
			if e.queue >= 0 {
				a.servedIn |= 1 << uint(e.queue)
			}
		}
	}
	for c := range aggs {
		a := aggs[c]
		if a.size == 0 {
			continue
		}
		if a.size == 1 && !a.selfLoop {
			continue // no cycle
		}
		if visit != nil && !a.visitOK {
			continue
		}
		// Fairness: every constantly-nonempty queue must be served
		// within the SCC; otherwise every cycle confined to it starves
		// that queue and is unfair.
		if a.constMask&^a.servedIn != 0 {
			continue
		}
		// Locate a sample state for the report.
		for v := 0; v < n; v++ {
			if in[v] && comp[v] == int32(c) {
				return fmt.Errorf("mc: %s (SCC of %d states, e.g. state %d reached by:\n%s)", what, a.size, v, g.trace(v))
			}
		}
	}
	return nil
}

// sccs computes strongly connected components of the subgraph induced
// by in, using an iterative Tarjan. Returns the component index per
// state (undefined outside the subgraph) and the component count.
func (g *Graph) sccs(in []bool) ([]int32, int) {
	n := len(g.obs)
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	comp := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var stack []int32
	var next int32
	var ncomp int

	type frame struct {
		v  int32
		ei int
	}
	var callStack []frame
	for root := 0; root < n; root++ {
		if !in[root] || index[root] != unvisited {
			continue
		}
		callStack = append(callStack[:0], frame{v: int32(root)})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			v := f.v
			advanced := false
			for f.ei < len(g.adj[v]) {
				e := g.adj[v][f.ei]
				f.ei++
				w := e.to
				if !in[w] {
					continue
				}
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && low[w] < low[v] {
					low[v] = low[w]
				}
			}
			if advanced {
				continue
			}
			// Post-order: pop.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = int32(ncomp)
					if w == v {
						break
					}
				}
				ncomp++
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				u := callStack[len(callStack)-1].v
				if low[v] < low[u] {
					low[u] = low[v]
				}
			}
		}
	}
	return comp, ncomp
}
