// Hosting real box cores on the virtual clock: every stimulus costs
// the box c of compute time (stimuli queue if the box is busy), and
// every signal costs n of network delivery time — the cost model of
// paper Section VIII-C.
package des

import (
	"fmt"
	"time"

	"ipmedia/internal/box"
	"ipmedia/internal/sig"
)

// Net hosts boxes on a simulator with uniform compute cost C and
// network latency N.
type Net struct {
	Sim *Sim
	C   time.Duration // per-stimulus compute cost ("c" in the paper)
	N   time.Duration // per-signal network latency ("n" in the paper)
	// Latency, if non-nil, samples the per-signal network latency
	// instead of the constant N — the paper's n is explicitly an
	// *average*, and this hook lets experiments check that the latency
	// formulas hold in expectation under jitter.
	Latency func() time.Duration

	hosts map[string]*BoxHost
	errs  []error
	// Observer, if set, runs after every handled event with the host
	// and the virtual time at which its outputs were emitted.
	Observer func(h *BoxHost, t time.Duration)
	// Trace, if set, records every signal put on the wire: sender,
	// receiver, envelope, and emission time. Used by the golden-trace
	// fidelity tests against the paper's message-sequence charts.
	Trace func(from, to string, env sig.Envelope, t time.Duration)
}

// NewNet creates a simulated network with the given cost model.
func NewNet(sim *Sim, c, n time.Duration) *Net {
	return &Net{Sim: sim, C: c, N: n, hosts: map[string]*BoxHost{}}
}

// hop returns the latency of one signal delivery.
func (nt *Net) hop() time.Duration {
	if nt.Latency != nil {
		return nt.Latency()
	}
	return nt.N
}

// arriveAt computes the FIFO-preserving arrival time of a signal sent
// at t on the named outgoing channel.
func (h *BoxHost) arriveAt(channel string, t time.Duration) time.Duration {
	at := t + h.net.hop()
	if last := h.lastArrive[channel]; at < last {
		at = last
	}
	h.lastArrive[channel] = at
	return at
}

// Errs returns box errors recorded during the run.
func (nt *Net) Errs() []error { return nt.errs }

// BoxHost is one box on the simulated network.
type BoxHost struct {
	net    *Net
	B      *box.Box
	freeAt time.Duration
	peers  map[string]peerRef // channel name -> far side
	// lastArrive clamps jittered deliveries so each directed channel
	// stays FIFO, as the paper's signaling channels are (Section III-A).
	lastArrive map[string]time.Duration
	nIn        int
}

type peerRef struct {
	host    *BoxHost
	channel string
}

// Add hosts a box. Its name is its address.
func (nt *Net) Add(b *box.Box) *BoxHost {
	h := &BoxHost{net: nt, B: b, peers: map[string]peerRef{}, lastArrive: map[string]time.Duration{}}
	nt.hosts[b.Name()] = h
	return h
}

// Wire creates a signaling channel between two hosted boxes, named
// independently on each side; a is the initiator.
func (nt *Net) Wire(a *BoxHost, aChan string, b *BoxHost, bChan string) {
	a.B.AddChannel(aChan, true)
	b.B.AddChannel(bChan, false)
	a.peers[aChan] = peerRef{host: b, channel: bChan}
	b.peers[bChan] = peerRef{host: a, channel: aChan}
}

// Deliver schedules an event for the box, honoring the compute model:
// processing starts when the box is free, takes C, and outputs depart
// at completion.
func (h *BoxHost) Deliver(at time.Duration, ev box.Event) {
	h.net.Sim.At(at, func() {
		start := h.freeAt
		if h.net.Sim.Now() > start {
			start = h.net.Sim.Now()
		}
		finish := start + h.net.C
		h.freeAt = finish
		h.net.Sim.At(finish, func() { h.handle(ev, finish) })
	})
}

// Call runs a closure inside the box at the current virtual time plus
// compute cost, e.g. installing a goal or program transition triggers.
func (h *BoxHost) Call(f func(ctx *box.Ctx)) {
	h.Deliver(h.net.Sim.Now(), box.Event{Kind: box.EvCall, Call: f})
}

func (h *BoxHost) handle(ev box.Event, t time.Duration) {
	outs, err := h.B.Handle(ev)
	if err != nil {
		h.net.errs = append(h.net.errs, fmt.Errorf("%s: %w", h.B.Name(), err))
	}
	h.process(outs, t)
	// process copies everything it schedules, so the buffer can go
	// straight back to the box.
	h.B.Recycle(outs)
	if h.net.Observer != nil {
		h.net.Observer(h, t)
	}
}

func (h *BoxHost) process(outs []box.Output, t time.Duration) {
	for _, o := range outs {
		switch o.Kind {
		case box.OutSend:
			if p, ok := h.peers[o.Channel]; ok {
				env := o.Env
				if h.net.Trace != nil {
					h.net.Trace(h.B.Name(), p.host.B.Name(), env, t)
				}
				p.host.Deliver(h.arriveAt(o.Channel, t), box.Event{Kind: box.EvEnvelope, Channel: p.channel, Env: env})
			}
		case box.OutDial:
			// Address = box name on the simulated network.
			callee, ok := h.net.hosts[o.Addr]
			if !ok {
				h.Deliver(t+h.net.hop(), box.Event{Kind: box.EvEnvelope, Channel: o.Channel,
					Env: sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaUnavailable}}})
				continue
			}
			callee.nIn++
			far := fmt.Sprintf("in%d", callee.nIn-1)
			callee.B.AddChannel(far, false)
			h.peers[o.Channel] = peerRef{host: callee, channel: far}
			callee.peers[far] = peerRef{host: h, channel: o.Channel}
			callee.Deliver(t+h.net.hop(), box.Event{Kind: box.EvEnvelope, Channel: far,
				Env: sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaSetup}}})
		case box.OutTeardown:
			if p, ok := h.peers[o.Channel]; ok {
				delete(h.peers, o.Channel)
				p.host.Deliver(t+h.net.hop(), box.Event{Kind: box.EvEnvelope, Channel: p.channel,
					Env: sig.Envelope{Meta: &sig.Meta{Kind: sig.MetaTeardown}}})
			}
		case box.OutTimerSet:
			name := o.Timer
			h.Deliver(t+o.Dur, box.Event{Kind: box.EvTimer, Timer: name})
		case box.OutTimerCancel, box.OutNote:
			// Timer cancellation is handled by the box's pending set;
			// a stale virtual fire is ignored there.
		}
	}
}
