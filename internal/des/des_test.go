package des

import (
	"testing"
	"time"

	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.At(30*time.Millisecond, func() { order = append(order, 3) })
	s.At(10*time.Millisecond, func() { order = append(order, 1) })
	s.At(20*time.Millisecond, func() { order = append(order, 2) })
	s.At(10*time.Millisecond, func() { order = append(order, 11) }) // same time: scheduling order
	if !s.Run(0) {
		t.Fatal("run did not drain")
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim()
	var fired time.Duration
	s.At(5*time.Millisecond, func() {
		s.After(7*time.Millisecond, func() { fired = s.Now() })
	})
	s.Run(0)
	if fired != 12*time.Millisecond {
		t.Fatalf("nested event at %v, want 12ms", fired)
	}
}

func TestSimRunUntil(t *testing.T) {
	s := NewSim()
	ran := 0
	s.At(10*time.Millisecond, func() { ran++ })
	s.At(20*time.Millisecond, func() { ran++ })
	s.RunUntil(15 * time.Millisecond)
	if ran != 1 || s.Now() != 15*time.Millisecond {
		t.Fatalf("ran=%d now=%v", ran, s.Now())
	}
	s.Run(0)
	if ran != 2 {
		t.Fatal("remaining event lost")
	}
}

func TestSimPastSchedulingClamped(t *testing.T) {
	s := NewSim()
	s.At(10*time.Millisecond, func() {
		s.At(1*time.Millisecond, func() {
			if s.Now() != 10*time.Millisecond {
				t.Errorf("past event must run now, at %v", s.Now())
			}
		})
	})
	s.Run(0)
}

func TestSimStepBudget(t *testing.T) {
	s := NewSim()
	var loop func()
	loop = func() { s.After(time.Millisecond, loop) }
	s.After(0, loop)
	if s.Run(100) {
		t.Fatal("infinite schedule must hit the step budget")
	}
}

// TestNetCostModel: a single open/oack exchange between two hosted
// boxes must cost exactly the (c, n) model: the opener's stimulus at
// t0 costs c, the signal travels n, the acceptor computes c, replies,
// n back, and the opener's oack processing completes at 2n+4c... but
// the measured observable — acceptor flowing — lands at n+2c.
func TestNetCostModel(t *testing.T) {
	const c, n = 20 * time.Millisecond, 34 * time.Millisecond
	sim := NewSim()
	net := NewNet(sim, c, n)
	prof := func(name string, port int) *core.EndpointProfile {
		return core.NewEndpointProfile(name, "h"+name, port, []sig.Codec{sig.G711}, []sig.Codec{sig.G711})
	}
	l := net.Add(box.New("L", prof("L", 1)))
	r := net.Add(box.New("R", prof("R", 2)))
	net.Wire(l, "c", r, "c")

	var rFlowingAt, lFlowingAt time.Duration
	net.Observer = func(h *BoxHost, at time.Duration) {
		if s := h.B.Slot("c.t0"); s != nil && s.State() == slot.Flowing {
			if h == r && rFlowingAt == 0 {
				rFlowingAt = at
			}
			if h == l && lFlowingAt == 0 {
				lFlowingAt = at
			}
		}
	}
	l.Call(func(ctx *box.Ctx) {
		ctx.SetGoal(core.NewOpenSlot("c.t0", sig.Audio, l.B.Profile()))
	})
	if !sim.Run(10000) {
		t.Fatal("did not quiesce")
	}
	if len(net.Errs()) > 0 {
		t.Fatal(net.Errs()[0])
	}
	// Open emitted at c, arrives at c+n, acceptor flowing at 2c+n.
	if want := 2*c + n; rFlowingAt != want {
		t.Errorf("acceptor flowing at %v, want %v", rFlowingAt, want)
	}
	// Oack emitted at 2c+n, arrives 2c+2n, opener flowing at 3c+2n.
	if want := 3*c + 2*n; lFlowingAt != want {
		t.Errorf("opener flowing at %v, want %v", lFlowingAt, want)
	}
}

// TestNetComputeSerialization: two stimuli arriving together at one box
// are processed back to back, not in parallel.
func TestNetComputeSerialization(t *testing.T) {
	const c, n = 10 * time.Millisecond, 5 * time.Millisecond
	sim := NewSim()
	net := NewNet(sim, c, n)
	b := net.Add(box.New("B", core.ServerProfile{Name: "B"}))
	var times []time.Duration
	net.Observer = func(h *BoxHost, at time.Duration) { times = append(times, at) }
	b.Deliver(0, box.Event{Kind: box.EvCall, Call: func(*box.Ctx) {}})
	b.Deliver(0, box.Event{Kind: box.EvCall, Call: func(*box.Ctx) {}})
	sim.Run(0)
	if len(times) != 2 || times[0] != c || times[1] != 2*c {
		t.Fatalf("processing times %v, want [%v %v]", times, c, 2*c)
	}
}

// TestNetTimer: a box timer set for d fires after d.
func TestNetTimer(t *testing.T) {
	const c = 10 * time.Millisecond
	sim := NewSim()
	net := NewNet(sim, c, time.Millisecond)
	b := net.Add(box.New("B", core.ServerProfile{Name: "B"}))
	var firedAt time.Duration
	b.Call(func(ctx *box.Ctx) { ctx.SetTimer("t", 100*time.Millisecond) })
	net.Observer = func(h *BoxHost, at time.Duration) {
		if firedAt == 0 && at > c {
			firedAt = at
		}
	}
	sim.Run(0)
	// Timer set during the call at time c, fires at c+100, processed +c.
	if want := c + 100*time.Millisecond + c; firedAt != want {
		t.Fatalf("timer handled at %v, want %v", firedAt, want)
	}
}

// TestNetDialUnknown synthesizes the unavailable meta.
func TestNetDialUnknown(t *testing.T) {
	sim := NewSim()
	net := NewNet(sim, time.Millisecond, time.Millisecond)
	b := net.Add(box.New("B", core.ServerProfile{Name: "B"}))
	got := false
	b.B.Hook = func(ctx *box.Ctx, ev *box.Event) {
		if ev.Kind == box.EvEnvelope && ev.Env.IsMeta() && ev.Env.Meta.Kind == sig.MetaUnavailable {
			got = true
		}
	}
	b.Call(func(ctx *box.Ctx) { ctx.Dial("x", "nobody") })
	sim.Run(0)
	if !got {
		t.Fatal("dial to unknown host must surface as unavailable")
	}
}
