// Package des is a deterministic virtual-clock discrete-event
// simulator. The performance analysis of paper Section VIII-C is
// parameterized by c, "the average time it takes for a server to read
// a new stimulus from an input queue and compute the next signal to
// send", and n, "the average time it takes for the network or server
// infrastructure to accept a signal and deliver it to its destination
// box". This simulator executes the real box cores under exactly that
// cost model, so the paper's latency formulas are measured rather than
// assumed.
package des

import (
	"container/heap"
	"time"
)

// event is one scheduled closure.
type event struct {
	at  time.Duration
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is a virtual clock with an event queue. Events at equal times
// run in scheduling order, so runs are deterministic.
type Sim struct {
	now  time.Duration
	heap eventHeap
	seq  int64
}

// NewSim creates a simulator at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.heap, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current time.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now+d, fn) }

// Run executes events until the queue is empty or the step budget is
// exhausted; it reports whether the queue drained.
func (s *Sim) Run(maxSteps int) bool {
	for steps := 0; len(s.heap) > 0; steps++ {
		if maxSteps > 0 && steps >= maxSteps {
			return false
		}
		e := heap.Pop(&s.heap).(event)
		s.now = e.at
		e.fn()
	}
	return true
}

// RunUntil executes events with time at most t; it leaves later events
// queued and advances the clock to t.
func (s *Sim) RunUntil(t time.Duration) {
	for len(s.heap) > 0 && s.heap[0].at <= t {
		e := heap.Pop(&s.heap).(event)
		s.now = e.at
		e.fn()
	}
	if s.now < t {
		s.now = t
	}
}
