package scenario

import (
	"testing"
	"time"

	"ipmedia/internal/store"
)

// TestPrepaidStoreDebits: the scenario's billing events move the
// stored balance, and the balance survives a clean store restart.
func TestPrepaidStoreDebits(t *testing.T) {
	p, err := NewPrepaid()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{FsyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	b := p.BindStore(st, 30)
	if err := st.SetBalance("C", 100); err != nil {
		t.Fatal(err)
	}
	if prof, ok := st.Lookup("C"); !ok || prof.Features[0] != "prepaid" {
		t.Fatalf("C's profile = %+v, %v", prof, ok)
	}

	p.FundsExhausted() // debit 30
	if got := b.Balance(); got != 70 {
		t.Fatalf("balance after cycle = %d, want 70", got)
	}
	p.Paid() // V collected one unit
	if got := b.Balance(); got != 100 {
		t.Fatalf("balance after payment = %d, want 100", got)
	}
	st.Close()

	st2, err := store.Open(dir, store.Options{FsyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	b.Rebind(st2)
	if got := b.Balance(); got != 100 {
		t.Fatalf("balance after restart = %d, want 100", got)
	}
}

// TestPrepaidStoreCrashNoDoubleDebit is the satellite guarantee: a
// crash at any point between issuing a debit and acknowledging it, the
// retry applies the debit exactly once — never zero-and-charged, never
// twice.
func TestPrepaidStoreCrashNoDoubleDebit(t *testing.T) {
	p, err := NewPrepaid()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	dir := t.TempDir()
	seed, err := store.Open(dir, store.Options{FsyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	b := p.BindStore(seed, 30)
	if err := seed.SetBalance("C", 100); err != nil {
		t.Fatal(err)
	}
	if err := seed.Sync(); err != nil {
		t.Fatal(err)
	}
	seed.Crash()

	// Crash case 1: the debit is issued but the WAL record never
	// reaches disk — a one-hour fsync window means nothing becomes
	// durable on its own, so the crash deterministically loses it. The
	// reserved token survives in the billing layer.
	st, err := store.Open(dir, store.Options{FsyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	b.Rebind(st)
	tok := st.NextToken("C")
	b.mu.Lock()
	b.inflight = tok
	b.mu.Unlock()
	if bal, applied := st.Debit("C", 30, tok); !applied || bal != 70 {
		t.Fatalf("issued debit: bal=%d applied=%v", bal, applied)
	}
	st.Crash() // power cut before the fsync window closes: debit lost

	st2, err := store.Open(dir, store.Options{FsyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	b.Rebind(st2)
	if bal, _ := st2.Balance("C"); bal != 100 {
		t.Fatalf("pre-retry balance = %d, want 100 (debit was lost)", bal)
	}
	// The retry re-issues the same reserved token: applies exactly once.
	if bal, applied := b.DebitCycle(); !applied || bal != 70 {
		t.Fatalf("retried debit: bal=%d applied=%v", bal, applied)
	}

	// Crash case 2: the debit IS durable, but the crash lands before
	// the billing layer hears the acknowledgment. The retry with the
	// same token must be a no-op.
	tok2 := st2.NextToken("C")
	if bal, applied := st2.Debit("C", 30, tok2); !applied || bal != 40 {
		t.Fatalf("second debit: bal=%d applied=%v", bal, applied)
	}
	if err := st2.Sync(); err != nil {
		t.Fatal(err)
	}
	st2.Crash() // crash after durability, before the ack reached billing

	st3, err := store.Open(dir, store.Options{FsyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	b.Rebind(st3)
	b.mu.Lock()
	b.inflight = tok2 // the reservation the crash stranded
	b.mu.Unlock()
	if bal, applied := b.DebitCycle(); applied || bal != 40 {
		t.Fatalf("retry of durable debit: bal=%d applied=%v — double debit!", bal, applied)
	}
	if got := b.Balance(); got != 40 {
		t.Fatalf("final balance = %d, want 40", got)
	}

	// And the scenario path still works against the recovered store.
	p.FundsExhausted()
	if got := b.Balance(); got != 10 {
		t.Fatalf("balance after live cycle = %d, want 10", got)
	}
}
