// Call screening: a second DFC-style feature box, composable in a
// pipeline with others. The paper's development model is exactly this
// — "often adding new functions to a system means adding new servers,
// because adding a new server is far easier than adding functions to
// an existing server" (Section I). A screening box admits or rejects
// callers by identity; admitted calls are flowlinked onward and the
// box becomes transparent, so downstream features (voicemail, the
// PBX, ...) compose without knowing it exists.
package scenario

import (
	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/sig"
	"ipmedia/internal/transport"
)

// ScreenConfig parameterizes a screening box.
type ScreenConfig struct {
	// Addr is the box's listen address.
	Addr string
	// Next is the next hop in the subscriber's feature pipeline.
	Next string
	// Blocked lists caller identities to reject (matched against the
	// "from" attribute of the setup meta-signal).
	Blocked []string
}

// NewScreen starts a screening feature box. The done channel reports
// "screened" when a blocked caller was turned away, or "admitted" when
// a caller was passed through.
func NewScreen(net transport.Network, cfg ScreenConfig) (*box.Runner, <-chan string, error) {
	blocked := map[string]bool{}
	for _, b := range cfg.Blocked {
		blocked[b] = true
	}
	b := box.New("SCR", core.ServerProfile{Name: "SCR"})
	r := box.NewRunner(b, net)
	done := make(chan string, 1)
	report := func(how string) {
		select {
		case done <- how:
		default:
		}
	}

	setupFrom := func(ctx *box.Ctx) (string, bool) {
		ev := ctx.Event()
		if ev == nil || !ctx.OnMeta("in0", sig.MetaSetup) {
			return "", false
		}
		return ev.Env.Meta.Get("from"), true
	}

	prog := &box.Program{
		Initial: "idle",
		States: []*box.State{
			{
				Name: "idle",
				Trans: []box.Trans{
					{When: func(ctx *box.Ctx) bool {
						from, ok := setupFrom(ctx)
						return ok && blocked[from]
					}, To: "screened", Do: func(ctx *box.Ctx) {
						// Slam the door: destroy the caller's channel.
						ctx.Teardown("in0")
						report("screened")
					}},
					{When: func(ctx *box.Ctx) bool {
						from, ok := setupFrom(ctx)
						return ok && !blocked[from]
					}, To: "admitted", Do: func(ctx *box.Ctx) {
						ctx.Dial("next", cfg.Next)
						report("admitted")
					}},
				},
			},
			{
				// Transparent from here on: whatever happens between the
				// caller and the rest of the pipeline is none of this
				// box's business.
				Name:   "admitted",
				Annots: []box.Annot{box.FlowLinkAnn(box.TunnelSlot("in0", 0), box.TunnelSlot("next", 0))},
				Trans: []box.Trans{
					{When: func(ctx *box.Ctx) bool { return ctx.OnMeta("in0", sig.MetaTeardown) }, To: "screened",
						Do: func(ctx *box.Ctx) { ctx.Teardown("next") }},
					{When: func(ctx *box.Ctx) bool { return ctx.OnMeta("next", sig.MetaTeardown) }, To: "screened",
						Do: func(ctx *box.Ctx) { ctx.Teardown("in0") }},
				},
			},
			{Name: "screened"},
		},
	}
	r.SetProgram(prog)
	if err := r.Listen(cfg.Addr, nil); err != nil {
		r.Stop()
		return nil, nil, err
	}
	return r, done, nil
}
