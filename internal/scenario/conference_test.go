package scenario

import (
	"fmt"
	"testing"
	"time"

	"ipmedia/internal/endpoint"
	"ipmedia/internal/media"
	"ipmedia/internal/sig"
	"ipmedia/internal/transport"
)

// TestConferenceServerFigure7 builds the exact signaling graph of
// paper Figure 7 — devices connect to the conference SERVER, which
// flowlinks each user tunnel to a tunnel leading to the bridge — and
// exercises full muting by flowlink-to-holdslots replacement.
func TestConferenceServerFigure7(t *testing.T) {
	net := transport.NewMemNetwork()
	plane := media.NewPlane()
	var stops []func()
	defer func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}()

	bridge, err := endpoint.NewBridge("bridge", net, plane)
	if err != nil {
		t.Fatal(err)
	}
	stops = append(stops, bridge.Stop)

	cs, err := NewConferenceServer(net, "conf", "bridge")
	if err != nil {
		t.Fatal(err)
	}
	stops = append(stops, cs.Stop)

	eventually := func(what string, pred func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if pred() {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("timeout waiting for %s (flows %v)", what, plane.Flows())
	}

	var devs []*endpoint.Device
	for i := 0; i < 3; i++ {
		d, err := endpoint.NewDevice(endpoint.Config{
			Name: fmt.Sprintf("U%d", i), Net: net, Plane: plane, MediaPort: 5004 + 2*i,
		})
		if err != nil {
			t.Fatal(err)
		}
		stops = append(stops, d.Stop)
		devs = append(devs, d)
		// The user calls the conference server, not the bridge.
		if err := d.Call("conf", "conf", sig.Audio); err != nil {
			t.Fatal(err)
		}
		if err := cs.AwaitUser(i); err != nil {
			t.Fatal(err)
		}
	}
	// Media: each user to its bridge leg and back, spliced through the
	// server's flowlinks.
	allUp := func() bool {
		for i, d := range devs {
			leg := fmt.Sprintf("bridge/in%d", i)
			if !plane.HasFlow(d.Name(), leg) || !plane.HasFlow(leg, d.Name()) {
				return false
			}
		}
		return true
	}
	eventually("full conference media via the server", allUp)

	// Full muting: replace U1's flowlink with two holdslots. U1's media
	// stops in BOTH directions; the others are untouched.
	cs.MuteUser(1)
	eventually("U1 fully muted", func() bool {
		return !plane.HasFlow("U1", "bridge/in1") && !plane.HasFlow("bridge/in1", "U1") &&
			plane.HasFlow("U0", "bridge/in0") && plane.HasFlow("U2", "bridge/in2")
	})

	// Unmute: the flowlink returns and so does the media — the
	// recurrence property in service form.
	cs.UnmuteUser(1)
	eventually("U1 restored", allUp)

	for _, e := range cs.Runner().Errs() {
		t.Errorf("conference server error: %v", e)
	}
}
