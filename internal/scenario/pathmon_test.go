package scenario

import (
	"testing"

	"ipmedia/internal/box"
	"ipmedia/internal/ltl"
	"ipmedia/internal/pathmon"
)

// prepaidMonitor wires a runtime path monitor over the prepaid-card
// fixture's topology.
func prepaidMonitor(p *Prepaid) *pathmon.Monitor {
	m := pathmon.New()
	m.AddBox(p.PBX)
	m.AddBox(p.PC)
	m.AddBox(p.A.Runner())
	m.AddBox(p.B.Runner())
	m.AddBox(p.C.Runner())
	m.AddBox(p.V.Runner())
	m.Tunnel("PBX", pbxA, "A", box.TunnelSlot("in0", 0))
	m.Tunnel("PBX", pbxB, "B", box.TunnelSlot("in0", 0))
	m.Tunnel("PBX", pbxPC, "PC", pcPBX)
	m.Tunnel("PC", pcC, "C", box.TunnelSlot("in0", 0))
	m.Tunnel("PC", pcV, "V", box.TunnelSlot("in0", 0))
	return m
}

// TestRuntimePathVerification snapshots the live prepaid system at
// each story point and checks that the signaling paths, their Section
// V specifications, and their observations are exactly as the paper's
// Figure 3 describes — runtime verification mirroring the model
// checker's exhaustive verdicts.
func TestRuntimePathVerification(t *testing.T) {
	p, err := NewPrepaid()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if err := p.Establish(); err != nil {
		t.Fatal(err)
	}
	m := prepaidMonitor(p)

	// Snapshot 1: PBX onC, PC linked. The A path runs A ~ PBX = PBX ~
	// PC = PC ~ C: two flowlinks, openslot at both ends, bothFlowing.
	reports, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ac, ok := pathmon.Find(reports, "A", "C")
	if !ok {
		t.Fatalf("no A..C path in %v", reports)
	}
	if ac.Path.Flowlinks() != 2 || ac.Path.Hops() != 3 {
		t.Fatalf("A..C path shape wrong: %v", ac.Path)
	}
	if !ac.Specified || ac.Spec != ltl.RecFlowing {
		t.Fatalf("A..C spec = %v (specified=%v), want □◇bothFlowing", ac.Spec, ac.Specified)
	}
	if !ac.Obs.BothFlowing {
		t.Fatalf("A..C must be bothFlowing in snapshot 1: %v", ac)
	}
	// B's path ends at the PBX's holdslot: hold/hold, currently flowing
	// (muted).
	bp, ok := pathmon.Find(reports, "B", "PBX")
	if !ok {
		t.Fatalf("no B..PBX path in %v", reports)
	}
	if !bp.Specified || bp.Spec != ltl.ClosedOrFlowing {
		t.Fatalf("B path spec = %v, want the hold/hold disjunction", bp.Spec)
	}
	if !bp.Obs.BothFlowing {
		t.Fatalf("B path must be flowing (held): %v", bp)
	}

	// Funds exhausted (snapshot 2): now C's path goes to V and A's path
	// ends at PC's holdslot.
	p.FundsExhausted()
	if err := p.await("C<->V media", func() bool {
		return p.Plane.HasFlow("C", "V") && p.Plane.HasFlow("V", "C")
	}); err != nil {
		t.Fatal(err)
	}
	reports, err = m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cv, ok := pathmon.Find(reports, "C", "V")
	if !ok {
		t.Fatalf("no C..V path in %v", reports)
	}
	if cv.Path.Flowlinks() != 1 || !cv.Obs.BothFlowing {
		t.Fatalf("C..V path wrong: %v", cv)
	}
	if _, found := pathmon.Find(reports, "A", "C"); found {
		t.Fatal("A..C path must no longer exist in snapshot 2")
	}
	apc, ok := pathmon.Find(reports, "A", "PC")
	if !ok {
		t.Fatalf("A's path must now end at PC's holdslot: %v", reports)
	}
	if apc.Spec != ltl.RecFlowing || !apc.Obs.BothFlowing {
		// openSlot at A, holdSlot at PC: flowing but muted.
		t.Fatalf("A..PC path wrong: %v", apc)
	}
}
