package scenario

import (
	"testing"
	"time"

	"ipmedia/internal/box"
	"ipmedia/internal/endpoint"
	"ipmedia/internal/media"
	"ipmedia/internal/transport"
)

// TestFeaturePipeline composes two independently written feature boxes
// in a DFC-style pipeline:
//
//	caller -> screening -> voicemail -> subscriber
//	                              \-> recorder
//
// Neither box knows about the other; composition works because each is
// transparent (a flowlink) once its own decision is made. This is the
// modularity the paper's whole design exists to enable.
func TestFeaturePipeline(t *testing.T) {
	net := transport.NewMemNetwork()
	plane := media.NewPlane()
	var stops []func()
	defer func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}()

	mkDev := func(name string, port int, auto bool) *endpoint.Device {
		d, err := endpoint.NewDevice(endpoint.Config{Name: name, Net: net, Plane: plane, MediaPort: port, AutoAccept: auto})
		if err != nil {
			t.Fatal(err)
		}
		stops = append(stops, d.Stop)
		return d
	}
	friend := mkDev("friend", 5004, false)
	spammer := mkDev("spammer", 5006, false)
	callee := mkDev("callee", 5008, false)
	recorder := mkDev("vmrec", 5010, true)
	recorder.SetMute(false, true)

	vm, vmDone, err := NewVoicemail(net, VoicemailConfig{
		Addr: "vmbox", SubscriberAddr: "callee", RecorderAddr: "vmrec",
		NoAnswer: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	stops = append(stops, vm.Stop)

	eventually := func(what string, pred func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if pred() {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("timeout waiting for %s (flows %v)", what, plane.Flows())
	}

	// Case 1: the spammer is screened out; nothing reaches the callee
	// or the voicemail box.
	scr1, scrDone1, err := NewScreen(net, ScreenConfig{Addr: "screen1", Next: "vmbox", Blocked: []string{"spammer"}})
	if err != nil {
		t.Fatal(err)
	}
	stops = append(stops, scr1.Stop)
	if err := spammer.Call("c", "screen1", "audio"); err != nil {
		t.Fatal(err)
	}
	select {
	case how := <-scrDone1:
		if how != "screened" {
			t.Fatalf("screen decided %q, want screened", how)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("screen made no decision")
	}
	eventually("spammer's channel torn down", func() bool {
		has := true
		spammer.Runner().Do(func(ctx *box.Ctx) { has = ctx.Box().HasChannel("c") })
		return !has
	})
	if len(callee.Ringing()) != 0 {
		t.Fatal("a screened call must never ring the subscriber")
	}

	// Case 2: the friend is admitted, the subscriber does not answer,
	// and the message is recorded — through BOTH feature boxes (a
	// signaling path with two flowlinks once the voicemail box diverts).
	scr2, scrDone2, err := NewScreen(net, ScreenConfig{Addr: "screen2", Next: "vmbox", Blocked: []string{"spammer"}})
	if err != nil {
		t.Fatal(err)
	}
	stops = append(stops, scr2.Stop)
	if err := friend.Call("c", "screen2", "audio"); err != nil {
		t.Fatal(err)
	}
	select {
	case how := <-scrDone2:
		if how != "admitted" {
			t.Fatalf("screen decided %q, want admitted", how)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("screen made no decision")
	}
	eventually("callee rings through the pipeline", func() bool { return len(callee.Ringing()) == 1 })
	// No answer...
	eventually("friend's audio diverted to the recorder", func() bool {
		return plane.HasFlow("friend", "vmrec")
	})
	plane.Tick(10)
	if s := recorder.Agent().Stats(); s.Accepted == 0 {
		t.Fatalf("recorder accepted nothing: %+v", s)
	}
	friend.HangUp("c")
	select {
	case how := <-vmDone:
		if how != "recorded" {
			t.Fatalf("voicemail ended %q, want recorded", how)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("voicemail did not terminate")
	}
	for _, e := range append(scr2.Errs(), vm.Errs()...) {
		t.Errorf("pipeline error: %v", e)
	}
}
