package scenario

import (
	"testing"
	"time"

	"ipmedia/internal/endpoint"
	"ipmedia/internal/media"
	"ipmedia/internal/transport"
)

type ctdFixture struct {
	t     *testing.T
	net   *transport.MemNetwork
	plane *media.Plane
	p1    *endpoint.Device
	p2    *endpoint.Device
	stops []func()
}

func newCTDFixture(t *testing.T, p2Unavailable bool) *ctdFixture {
	f := &ctdFixture{t: t, net: transport.NewMemNetwork(), plane: media.NewPlane()}
	var err error
	f.p1, err = endpoint.NewDevice(endpoint.Config{Name: "P1", Net: f.net, Plane: f.plane, MediaPort: 5004})
	if err != nil {
		t.Fatal(err)
	}
	f.stops = append(f.stops, f.p1.Stop)
	f.p2, err = endpoint.NewDevice(endpoint.Config{Name: "P2", Net: f.net, Plane: f.plane, MediaPort: 5006, Unavailable: p2Unavailable})
	if err != nil {
		t.Fatal(err)
	}
	f.stops = append(f.stops, f.p2.Stop)
	tone, err := endpoint.NewToneGenerator("tone", f.net, f.plane)
	if err != nil {
		t.Fatal(err)
	}
	f.stops = append(f.stops, tone.Stop)
	return f
}

func (f *ctdFixture) cleanup() {
	for _, s := range f.stops {
		s()
	}
}

func (f *ctdFixture) eventually(what string, pred func() bool) {
	f.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	f.t.Fatalf("timeout waiting for %s (flows %v)", what, f.plane.Flows())
}

// TestClickToDialHappyPath follows Figure 6's main path: user 1
// answers, hears ringback while user 2's phone rings, then the two
// parties talk directly.
func TestClickToDialHappyPath(t *testing.T) {
	f := newCTDFixture(t, false)
	defer f.cleanup()
	ctd, done, err := NewClickToDial(f.net, ClickToDialConfig{
		User1Addr: "P1", User2Addr: "P2", ToneAddr: "tone",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctd.Stop()

	f.eventually("P1 ringing", func() bool { return len(f.p1.Ringing()) == 1 })
	f.p1.Answer(f.p1.Ringing()[0])

	// Ringback: the tone resource plays to P1 while P2 rings.
	f.eventually("ringback tone to P1", func() bool { return f.plane.HasFlow("tone", "P1") })
	f.eventually("P2 ringing", func() bool { return len(f.p2.Ringing()) == 1 })
	f.p2.Answer(f.p2.Ringing()[0])

	// Connected: direct media both ways, tone gone.
	f.eventually("P1<->P2 media", func() bool {
		return f.plane.HasFlow("P1", "P2") && f.plane.HasFlow("P2", "P1") && !f.plane.HasFlow("tone", "P1")
	})
	f.plane.Tick(10)
	if s := f.p2.Agent().Stats(); s.Accepted == 0 {
		t.Fatalf("no packets accepted at P2: %+v", s)
	}

	// User 2 hangs up; the box tears everything down and terminates.
	f.p2.HangUp("in0")
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("program did not terminate after hangup")
	}
	for _, e := range ctd.Errs() {
		t.Errorf("ctd error: %v", e)
	}
}

// TestClickToDialBusy follows the unavailable branch: user 1 hears
// busy tone, then abandons.
func TestClickToDialBusy(t *testing.T) {
	f := newCTDFixture(t, true)
	defer f.cleanup()
	ctd, done, err := NewClickToDial(f.net, ClickToDialConfig{
		User1Addr: "P1", User2Addr: "P2", ToneAddr: "tone",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctd.Stop()

	f.eventually("P1 ringing", func() bool { return len(f.p1.Ringing()) == 1 })
	f.p1.Answer(f.p1.Ringing()[0])
	f.eventually("busy tone to P1", func() bool { return f.plane.HasFlow("tone", "P1") })
	if f.plane.HasFlow("P2", "P1") || f.plane.HasFlow("P1", "P2") {
		t.Fatal("no media may involve the unavailable P2")
	}
	f.p1.HangUp("in0")
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("program did not terminate after abandon")
	}
	for _, e := range ctd.Errs() {
		t.Errorf("ctd error: %v", e)
	}
}

// TestClickToDialTimeout follows the timer branch: user 1 never
// answers; the box destroys channel 1 and terminates.
func TestClickToDialTimeout(t *testing.T) {
	f := newCTDFixture(t, false)
	defer f.cleanup()
	ctd, done, err := NewClickToDial(f.net, ClickToDialConfig{
		User1Addr: "P1", User2Addr: "P2", ToneAddr: "tone",
		Timeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctd.Stop()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("program did not time out")
	}
	if len(f.plane.Flows()) != 0 {
		t.Fatalf("no media expected after timeout, got %v", f.plane.Flows())
	}
	for _, e := range ctd.Errs() {
		t.Errorf("ctd error: %v", e)
	}
}
