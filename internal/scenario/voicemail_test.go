package scenario

import (
	"testing"
	"time"

	"ipmedia/internal/endpoint"
	"ipmedia/internal/media"
	"ipmedia/internal/transport"
)

type vmFixture struct {
	t        *testing.T
	net      *transport.MemNetwork
	plane    *media.Plane
	caller   *endpoint.Device
	callee   *endpoint.Device
	recorder *endpoint.Device
	stops    []func()
}

func newVMFixture(t *testing.T, noAnswer time.Duration) (*vmFixture, <-chan string) {
	f := &vmFixture{t: t, net: transport.NewMemNetwork(), plane: media.NewPlane()}
	var err error
	f.caller, err = endpoint.NewDevice(endpoint.Config{Name: "caller", Net: f.net, Plane: f.plane, MediaPort: 5004})
	if err != nil {
		t.Fatal(err)
	}
	f.stops = append(f.stops, f.caller.Stop)
	f.callee, err = endpoint.NewDevice(endpoint.Config{Name: "callee", Net: f.net, Plane: f.plane, MediaPort: 5006})
	if err != nil {
		t.Fatal(err)
	}
	f.stops = append(f.stops, f.callee.Stop)
	f.recorder, err = endpoint.NewDevice(endpoint.Config{Name: "vmrec", Net: f.net, Plane: f.plane, MediaPort: 5008, AutoAccept: true})
	if err != nil {
		t.Fatal(err)
	}
	f.recorder.SetMute(false, true) // recorders listen; they do not talk
	f.stops = append(f.stops, f.recorder.Stop)
	vm, done, err := NewVoicemail(f.net, VoicemailConfig{
		Addr: "vmbox", SubscriberAddr: "callee", RecorderAddr: "vmrec", NoAnswer: noAnswer,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.stops = append(f.stops, vm.Stop)
	f.stops = append(f.stops, func() {
		for _, e := range vm.Errs() {
			t.Errorf("vm error: %v", e)
		}
	})
	return f, done
}

func (f *vmFixture) cleanup() {
	for i := len(f.stops) - 1; i >= 0; i-- {
		f.stops[i]()
	}
}

func (f *vmFixture) eventually(what string, pred func() bool) {
	f.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	f.t.Fatalf("timeout waiting for %s (flows %v)", what, f.plane.Flows())
}

// TestVoicemailAnswered: the subscriber answers in time; the feature
// box is transparent and the recorder never hears anything.
func TestVoicemailAnswered(t *testing.T) {
	f, done := newVMFixture(t, time.Hour)
	defer f.cleanup()
	if err := f.caller.Call("c", "vmbox", "audio"); err != nil {
		t.Fatal(err)
	}
	f.eventually("callee ringing", func() bool { return len(f.callee.Ringing()) == 1 })
	f.callee.Answer(f.callee.Ringing()[0])
	f.eventually("caller<->callee media", func() bool {
		return f.plane.HasFlow("caller", "callee") && f.plane.HasFlow("callee", "caller")
	})
	if f.plane.HasFlow("caller", "vmrec") {
		t.Fatal("recorder must not receive an answered call")
	}
	f.caller.HangUp("c")
	select {
	case how := <-done:
		if how != "connected" {
			t.Fatalf("feature ended as %q, want connected", how)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("feature did not terminate")
	}
}

// TestVoicemailRecords: the subscriber does not answer; the caller's
// media is diverted to the recorder, which accepts the packets, and
// the subscriber's phone stops ringing.
func TestVoicemailRecords(t *testing.T) {
	f, done := newVMFixture(t, 50*time.Millisecond)
	defer f.cleanup()
	if err := f.caller.Call("c", "vmbox", "audio"); err != nil {
		t.Fatal(err)
	}
	f.eventually("callee ringing", func() bool { return len(f.callee.Ringing()) == 1 })
	// Nobody answers...
	f.eventually("caller diverted to recorder", func() bool {
		return f.plane.HasFlow("caller", "vmrec")
	})
	f.eventually("callee stopped ringing", func() bool { return len(f.callee.Ringing()) == 0 })
	f.plane.Tick(15)
	if s := f.recorder.Agent().Stats(); s.Accepted == 0 {
		t.Fatalf("recorder accepted nothing: %+v", s)
	}
	// Recorders do not talk back.
	if f.plane.HasFlow("vmrec", "caller") {
		t.Fatal("recorder must not send media")
	}
	f.caller.HangUp("c")
	select {
	case how := <-done:
		if how != "recorded" {
			t.Fatalf("feature ended as %q, want recorded", how)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("feature did not terminate")
	}
}

// TestVoicemailCallerAbandons: the caller gives up while ringing; both
// legs are torn down.
func TestVoicemailCallerAbandons(t *testing.T) {
	f, done := newVMFixture(t, time.Hour)
	defer f.cleanup()
	if err := f.caller.Call("c", "vmbox", "audio"); err != nil {
		t.Fatal(err)
	}
	f.eventually("callee ringing", func() bool { return len(f.callee.Ringing()) == 1 })
	f.caller.HangUp("c")
	select {
	case how := <-done:
		if how != "abandoned" {
			t.Fatalf("feature ended as %q, want abandoned", how)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("feature did not terminate")
	}
	f.eventually("callee stopped ringing", func() bool { return len(f.callee.Ringing()) == 0 })
}
