package scenario

import (
	"sync"

	"ipmedia/internal/store"
)

// Billing is the store-backed replacement for the prepaid scenario's
// implicit, in-memory notion of funds: the card balance lives in the
// durable store, FundsExhausted debits it, and Paid credits it — each
// adjustment guarded by a monotone token reserved *before* the debit
// is issued, so a crash between issuing and acknowledging can re-issue
// the same debit and the store applies it exactly once.
type Billing struct {
	sub  string // the prepaid subscriber (telephone C's card)
	unit int64  // cents debited per exhausted-funds cycle

	mu       sync.Mutex
	st       *store.Store
	inflight uint64 // reserved token of a debit not yet acknowledged
}

// BindStore attaches a durable store to the scenario: the cast is
// registered in the subscriber registry, C's card becomes a stored
// balance, and the scenario's billing events flow through token-guarded
// adjustments. unit is the cents charged per funds cycle.
//
// Bind right after NewPrepaid. Signaling channels dialed during
// NewPrepaid predate the binding, so channel lifecycle (CDR) accounting
// is wired separately — Billing covers the money.
func (p *Prepaid) BindStore(st *store.Store, unit int64) *Billing {
	for _, prof := range []store.Profile{
		{Name: "A", Features: []string{"pbx", "switch"}},
		{Name: "B", Features: nil},
		{Name: "C", Features: []string{"prepaid"}},
		{Name: "V", Features: []string{"ivr"}},
	} {
		st.PutProfile(prof)
	}
	b := &Billing{sub: "C", unit: unit, st: st}
	p.Billing = b
	return b
}

// Rebind points the billing at a recovered store after a crash. The
// reserved in-flight token survives the swap: that is what makes the
// retried debit idempotent.
func (b *Billing) Rebind(st *store.Store) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.st = st
}

// DebitCycle charges one unit for the exhausted funds period and
// returns the resulting balance and whether the debit applied (false
// means the card hit zero — or this was the retry of a debit that
// already landed).
//
// The token is reserved and remembered before the debit is issued, and
// forgotten only after the store acknowledges durability. A crash
// anywhere in between leaves the token in place; the retry re-issues
// the same token and the store's monotone-token guard applies it at
// most once, whether or not the first attempt survived the crash.
func (b *Billing) DebitCycle() (int64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.inflight == 0 {
		b.inflight = b.st.NextToken(b.sub)
	}
	bal, applied := b.st.Debit(b.sub, b.unit, b.inflight)
	if err := b.st.Sync(); err != nil {
		// Not durable: keep the reservation for the retry.
		return bal, applied
	}
	b.inflight = 0
	return bal, applied
}

// CreditPayment records the funds V collected from the subscriber.
func (b *Billing) CreditPayment(cents int64) (int64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	bal, applied := b.st.Credit(b.sub, cents, b.st.NextToken(b.sub))
	b.st.Sync()
	return bal, applied
}

// Balance returns the card's current balance.
func (b *Billing) Balance() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	bal, _ := b.st.Balance(b.sub)
	return bal
}
