// Voicemail: a DFC-style feature box built from the four primitives.
// The paper motivates application servers with exactly this service:
// "an application server can provide a persistent network presence,
// such as voicemail, for handheld devices" (Section I). The box sits
// in the caller's signaling path toward the subscriber; if the
// subscriber does not answer in time, the box redirects the caller's
// media channel to a recorder resource — a flowlink retarget, the same
// move the prepaid-card server makes toward its IVR.
package scenario

import (
	"time"

	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/sig"
	"ipmedia/internal/transport"
)

// VoicemailConfig parameterizes the feature box.
type VoicemailConfig struct {
	// Addr is the box's own listen address (callers dial it).
	Addr string
	// SubscriberAddr is the protected device.
	SubscriberAddr string
	// RecorderAddr is the recording resource.
	RecorderAddr string
	// NoAnswer is how long to ring before diverting to the recorder.
	NoAnswer time.Duration
}

// Voicemail slot names: the caller's accepted channel is in0; the
// subscriber leg is "sub"; the recorder leg is "rec".
const (
	vmIn  = "in0.t0"
	vmSub = "sub.t0"
	vmRec = "rec.t0"
)

// NewVoicemail starts a voicemail feature box. The returned channel
// reports the terminal state name ("connected" call completed, or
// "recorded" a message was taken) when the feature instance ends.
func NewVoicemail(net transport.Network, cfg VoicemailConfig) (*box.Runner, <-chan string, error) {
	if cfg.NoAnswer == 0 {
		cfg.NoAnswer = time.Hour
	}
	b := box.New("VM", core.ServerProfile{Name: "VM"})
	r := box.NewRunner(b, net)
	done := make(chan string, 1)

	flowing := func(s string) box.Guard {
		return func(ctx *box.Ctx) bool { return ctx.IsFlowing(s) }
	}
	torn := func(ch string) box.Guard {
		return func(ctx *box.Ctx) bool { return ctx.OnMeta(ch, sig.MetaTeardown) }
	}
	finish := func(how string) func(*box.Ctx) {
		return func(*box.Ctx) {
			select {
			case done <- how:
			default:
			}
		}
	}

	prog := &box.Program{
		Initial: "idle",
		States: []*box.State{
			{
				// Waiting for a caller. The first incoming channel is
				// in0; its first signal (the caller's open) is guarded by
				// the opening predicate.
				Name: "idle",
				Trans: []box.Trans{
					{When: func(ctx *box.Ctx) bool { return ctx.IsOpened(vmIn) || ctx.IsFlowing(vmIn) }, To: "trying",
						Do: func(ctx *box.Ctx) {
							ctx.Dial("sub", cfg.SubscriberAddr)
							ctx.SetTimer("noanswer", cfg.NoAnswer)
						}},
				},
			},
			{
				// Ring the subscriber, splicing the caller through.
				Name:   "trying",
				Annots: []box.Annot{box.FlowLinkAnn(vmIn, vmSub)},
				Trans: []box.Trans{
					{When: flowing(vmSub), To: "connected",
						Do: func(ctx *box.Ctx) { ctx.CancelTimer("noanswer") }},
					{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("noanswer") }, To: "recording",
						Do: func(ctx *box.Ctx) { ctx.Dial("rec", cfg.RecorderAddr) }},
					{When: torn("in0"), To: "terminate",
						Do: func(ctx *box.Ctx) { ctx.Teardown("sub"); finish("abandoned")(ctx) }},
				},
			},
			{
				// The subscriber answered: stay out of the way.
				Name:   "connected",
				Annots: []box.Annot{box.FlowLinkAnn(vmIn, vmSub)},
				Trans: []box.Trans{
					{When: torn("in0"), To: "terminate",
						Do: func(ctx *box.Ctx) { ctx.Teardown("sub"); finish("connected")(ctx) }},
					{When: torn("sub"), To: "terminate",
						Do: func(ctx *box.Ctx) { ctx.Teardown("in0"); finish("connected")(ctx) }},
				},
			},
			{
				// No answer: close the subscriber leg and divert the
				// caller to the recorder. The explicit closeSlot on the
				// abandoned leg is the program saying what happens to it.
				Name: "recording",
				Annots: []box.Annot{
					box.FlowLinkAnn(vmIn, vmRec),
					box.CloseSlotAnn(vmSub),
				},
				Trans: []box.Trans{
					{When: torn("in0"), To: "terminate", Do: func(ctx *box.Ctx) {
						ctx.Teardown("sub")
						ctx.Teardown("rec")
						finish("recorded")(ctx)
					}},
				},
			},
			{Name: "terminate"},
		},
	}
	r.SetProgram(prog)
	if err := r.Listen(cfg.Addr, nil); err != nil {
		r.Stop()
		return nil, nil, err
	}
	return r, done, nil
}
