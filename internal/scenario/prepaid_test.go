package scenario

import (
	"testing"
)

// TestPrepaidCorrect reproduces paper Figure 3: with the compositional
// primitives, every snapshot has exactly the right media flows, and
// the Figure 2 pathologies cannot occur.
func TestPrepaidCorrect(t *testing.T) {
	p, err := NewPrepaid()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if err := p.Establish(); err != nil {
		t.Fatal(err)
	}
	log, err := p.RunCorrect()
	if err != nil {
		t.Fatalf("%v (after %v)", err, log)
	}
	if len(log) != 4 {
		t.Fatalf("expected 4 verified snapshots, got %v", log)
	}
	for _, e := range p.Errs() {
		t.Errorf("server error: %v", e)
	}
}

// TestPrepaidNaive reproduces paper Figure 2: with uncoordinated
// servers, Snapshot 3 leaves V without audio input from C, and
// Snapshot 4 switches A without permission while B transmits to a deaf
// endpoint.
func TestPrepaidNaive(t *testing.T) {
	p, err := NewPrepaid()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if err := p.Establish(); err != nil {
		t.Fatal(err)
	}
	p.GoNaive()
	log, err := p.RunNaive()
	if err != nil {
		t.Fatalf("%v (after %v)", err, log)
	}
	if len(log) != 3 {
		t.Fatalf("expected 3 verified snapshots, got %v", log)
	}
	for _, e := range p.Errs() {
		t.Errorf("server error: %v", e)
	}
}

// TestPrepaidRepeatedCycles: the correct regime keeps working through
// several depletion/payment/switch cycles — the recurrence property in
// the large.
func TestPrepaidRepeatedCycles(t *testing.T) {
	p, err := NewPrepaid()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if err := p.Establish(); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 3; cycle++ {
		if _, err := p.RunCorrect(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	for _, e := range p.Errs() {
		t.Errorf("server error: %v", e)
	}
}
