// Package scenario builds the example services of the paper as
// reusable fixtures shared by the integration tests, the runnable
// examples, and cmd/mediasim: the prepaid-card story of Figures 2 and
// 3 (in both the compositional and the uncoordinated regime) and the
// Click-to-Dial program of Figure 6.
package scenario

import (
	"fmt"
	"time"

	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/endpoint"
	"ipmedia/internal/media"
	"ipmedia/internal/sig"
	"ipmedia/internal/transport"
)

// Prepaid is the running prepaid-card configuration of paper Figures 2
// and 3: telephones A, B, and C, the IP PBX serving A, the prepaid-card
// server PC serving C, and the audio-signaling resource V that PC uses
// to collect additional funds.
//
//	A ── PBX ── B          C ── PC ── V
//	      └────── PC ───────┘
type Prepaid struct {
	Net   *transport.MemNetwork
	Plane *media.Plane
	A     *endpoint.Device
	B     *endpoint.Device
	C     *endpoint.Device
	V     *endpoint.Device
	PBX   *box.Runner
	PC    *box.Runner

	// Billing, when BindStore has been called, routes the scenario's
	// money events through the durable store.
	Billing *Billing

	// descA is the descriptor of A as recorded by PC when it passed
	// through in earlier signals (paper Section VI-C) — the naive
	// regime replays it in Snapshot 4.
	descA sig.Descriptor
	descC sig.Descriptor

	pbxN *NaiveServer
	pcN  *NaiveServer
}

// Slot names at the two servers.
const (
	pbxA  = "a.t0"   // PBX's slot toward telephone A
	pbxB  = "b.t0"   // PBX's slot toward telephone B
	pbxPC = "pc.t0"  // PBX's slot toward the PC server
	pcPBX = "pbx.t0" // PC's slot toward the PBX
	pcC   = "c.t0"   // PC's slot toward telephone C
	pcV   = "v.t0"   // PC's slot toward the resource V
)

// NewPrepaid wires the topology and programs both servers with the
// compositional primitives, exactly as in paper Section IV-B: "In
// Snapshots 1 and 4, the program is in a state annotated
// flowLink(c,a), holdSlot(v) ... A timeout event causes a transition
// to the PC state of Snapshots 2 and 3, which is annotated
// flowLink(c,v), holdSlot(a)."
func NewPrepaid() (*Prepaid, error) {
	p := &Prepaid{Net: transport.NewMemNetwork(), Plane: media.NewPlane()}
	var err error
	mk := func(name string, port int, auto bool) *endpoint.Device {
		if err != nil {
			return nil
		}
		var d *endpoint.Device
		d, err = endpoint.NewDevice(endpoint.Config{
			Name: name, Net: p.Net, Plane: p.Plane, MediaPort: port, AutoAccept: auto,
		})
		return d
	}
	p.A = mk("A", 5004, false)
	p.B = mk("B", 5006, false)
	p.C = mk("C", 5008, false)
	p.V = mk("V", 5010, true) // the IVR accepts whatever PC opens
	if err != nil {
		return nil, err
	}

	p.PBX = box.NewRunner(box.New("PBX", core.ServerProfile{Name: "PBX"}), p.Net)
	p.PC = box.NewRunner(box.New("PC", core.ServerProfile{Name: "PC"}), p.Net)
	if err := p.PBX.Listen("pbx", func(int) string { return "pc" }); err != nil {
		return nil, err
	}

	// Signaling channels (paper Figure 3): the PBX has channels to A
	// and B; PC has channels to C, to V, and to the PBX.
	for _, dial := range []struct {
		r             *box.Runner
		channel, addr string
	}{
		{p.PBX, "a", "A"}, {p.PBX, "b", "B"},
		{p.PC, "c", "C"}, {p.PC, "v", "V"}, {p.PC, "pbx", "pbx"},
	} {
		if err := dial.r.Connect(dial.channel, dial.addr); err != nil {
			return nil, err
		}
	}

	// The PBX's channel from PC is accepted asynchronously; its program
	// annotates slots on that channel, so wait for it.
	if err := p.await("PBX accepts PC's channel", func() bool {
		has := false
		p.PBX.Do(func(ctx *box.Ctx) { has = ctx.Box().HasChannel("pc") })
		return has
	}); err != nil {
		return nil, err
	}

	appOn := func(channel, name string) box.Guard {
		return func(ctx *box.Ctx) bool { return ctx.OnApp(channel, name) }
	}

	// The PBX allows A to switch between its calls: proximity confers
	// priority, and the PBX is closest to A.
	p.PBX.SetProgram(&box.Program{
		Initial: "onB",
		States: []*box.State{
			{
				Name:   "onB",
				Annots: []box.Annot{box.FlowLinkAnn(pbxA, pbxB), box.HoldSlotAnn(pbxPC)},
				Trans:  []box.Trans{{When: appOn("a", "switch"), To: "onC"}},
			},
			{
				Name:   "onC",
				Annots: []box.Annot{box.FlowLinkAnn(pbxA, pbxPC), box.HoldSlotAnn(pbxB)},
				Trans:  []box.Trans{{When: appOn("a", "switch"), To: "onB"}},
			},
		},
	})

	// The prepaid-card server: linked while funds remain, verifying
	// after the timer expires, linked again when V reports payment.
	p.PC.SetProgram(&box.Program{
		Initial: "linked",
		States: []*box.State{
			{
				Name:    "linked",
				Annots:  []box.Annot{box.FlowLinkAnn(pcC, pcPBX), box.HoldSlotAnn(pcV)},
				OnEnter: func(ctx *box.Ctx) { ctx.SetTimer("funds", time.Hour) },
				Trans:   []box.Trans{{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("funds") }, To: "verify"}},
			},
			{
				Name:   "verify",
				Annots: []box.Annot{box.FlowLinkAnn(pcC, pcV), box.HoldSlotAnn(pcPBX)},
				Trans:  []box.Trans{{When: appOn("v", "paid"), To: "linked"}},
			},
		},
	})
	return p, nil
}

// Errs collects box errors from both servers.
func (p *Prepaid) Errs() []error {
	return append(p.PBX.Errs(), p.PC.Errs()...)
}

// Stop shuts everything down.
func (p *Prepaid) Stop() {
	for _, d := range []*endpoint.Device{p.A, p.B, p.C, p.V} {
		d.Stop()
	}
	p.PBX.Stop()
	p.PC.Stop()
}

// await polls pred until it holds or five seconds pass.
func (p *Prepaid) await(what string, pred func() bool) error {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("scenario: timeout waiting for %s (flows: %v)", what, p.Plane.Flows())
}

// flowsExactly reports whether the current flow graph is exactly the
// given set of from->to pairs.
func (p *Prepaid) flowsExactly(pairs ...[2]string) bool {
	flows := p.Plane.Flows()
	if len(flows) != len(pairs) {
		return false
	}
	for _, want := range pairs {
		found := false
		for _, f := range flows {
			if f.From == want[0] && f.To == want[1] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Establish drives the story to Snapshot 1 of Figures 2/3: A was
// talking to B, C called A through PC, and A switched to C. Both
// regimes share this state.
func (p *Prepaid) Establish() error {
	// A talks to B.
	p.A.OpenOn("in0", sig.Audio)
	if err := p.await("B ringing", func() bool { return len(p.B.Ringing()) == 1 }); err != nil {
		return err
	}
	p.B.Answer("in0")
	if err := p.await("A<->B media", func() bool {
		return p.flowsExactly([2]string{"A", "B"}, [2]string{"B", "A"})
	}); err != nil {
		return err
	}
	// C calls A through the prepaid-card server. The PBX holds the
	// incoming leg until A switches.
	p.C.OpenOn("in0", sig.Audio)
	if err := p.await("C connected (held)", func() bool {
		st, _, ok := p.C.SlotState("in0")
		return ok && st.String() == "flowing"
	}); err != nil {
		return err
	}
	// A switches to C: Snapshot 1.
	p.A.SendApp("in0", "switch", nil)
	if err := p.await("Snapshot 1: A<->C media only", func() bool {
		return p.flowsExactly([2]string{"A", "C"}, [2]string{"C", "A"})
	}); err != nil {
		return err
	}
	// Record the descriptors the PC server has seen pass through, for
	// the naive regime's scripted commands.
	p.PC.Do(func(ctx *box.Ctx) {
		if d, ok := ctx.Box().Slot(pcPBX).Desc(); ok {
			p.descA = d
		}
		if d, ok := ctx.Box().Slot(pcC).Desc(); ok {
			p.descC = d
		}
	})
	return nil
}

// FundsExhausted fires the prepaid timer (Snapshot 2 trigger). With a
// store bound, the exhausted cycle is debited from the card first.
func (p *Prepaid) FundsExhausted() {
	if p.Billing != nil {
		p.Billing.DebitCycle()
	}
	p.PC.Inject(box.Event{Kind: box.EvTimer, Timer: "funds"})
}

// SwitchA toggles the PBX between A's two calls (Snapshots 1<->3).
func (p *Prepaid) SwitchA() { p.A.SendApp("in0", "switch", nil) }

// Paid reports the payment from V to PC (Snapshot 4 trigger). With a
// store bound, the collected funds are credited to the card first.
func (p *Prepaid) Paid() {
	if p.Billing != nil {
		p.Billing.CreditPayment(p.Billing.unit)
	}
	p.V.SendApp("in0", "paid", nil)
}

// RunCorrect drives Snapshots 2, 3, and 4 in the compositional regime
// and verifies the media flows of paper Figure 3 at each snapshot.
// Returns a transcript of the verified snapshots.
func (p *Prepaid) RunCorrect() ([]string, error) {
	var log []string
	// Snapshot 2: funds run out; C talks to V; A silent but not stolen.
	p.FundsExhausted()
	if err := p.await("Snapshot 2: C<->V media only", func() bool {
		return p.flowsExactly([2]string{"C", "V"}, [2]string{"V", "C"})
	}); err != nil {
		return log, err
	}
	log = append(log, "snapshot2: C<->V only; A silent; B held")

	// Snapshot 3: A switches back to B. C and V must be undisturbed —
	// the error of Figure 2 was the one-way C->V loss here.
	p.SwitchA()
	if err := p.await("Snapshot 3: A<->B and C<->V", func() bool {
		return p.flowsExactly([2]string{"A", "B"}, [2]string{"B", "A"}, [2]string{"C", "V"}, [2]string{"V", "C"})
	}); err != nil {
		return log, err
	}
	log = append(log, "snapshot3: A<->B restored; C<->V fully intact")

	// Snapshot 4: V verifies payment; PC relinks C toward A. Because
	// the PBX holds that path (proximity confers priority), A stays
	// with B: no hijack, no deaf transmission.
	p.Paid()
	if err := p.await("Snapshot 4: A<->B only", func() bool {
		return p.flowsExactly([2]string{"A", "B"}, [2]string{"B", "A"})
	}); err != nil {
		return log, err
	}
	log = append(log, "snapshot4: A<->B preserved; A not switched without permission")

	// A now chooses to switch back to C: the path through PBX and PC
	// opens end to end (the concurrent relink of paper Figure 13).
	p.SwitchA()
	if err := p.await("final: A<->C media", func() bool {
		return p.flowsExactly([2]string{"A", "C"}, [2]string{"C", "A"})
	}); err != nil {
		return log, err
	}
	log = append(log, "final: A<->C reconnected by A's own action")
	return log, nil
}

// GoNaive switches both servers from the compositional primitives to
// the uncoordinated Figure 2 regime: blind forwarding plus scripted
// media commands.
func (p *Prepaid) GoNaive() {
	p.pbxN = NewNaiveServer("PBX")
	p.pcN = NewNaiveServer("PC")
	p.PBX.Do(func(ctx *box.Ctx) {
		ctx.Box().ClearProgram()
		for _, s := range []string{pbxA, pbxB, pbxPC} {
			ctx.SetGoal(p.pbxN.Leg(s))
		}
	})
	// Snapshot 1 routing: A is on the C call.
	p.pbxN.SetRoute(pbxB, pbxA)
	p.pbxN.SetRoute(pbxPC, pbxA)
	p.pbxN.SetRoute(pbxA, pbxPC)
	p.PC.Do(func(ctx *box.Ctx) {
		ctx.Box().ClearProgram()
		for _, s := range []string{pcC, pcV, pcPBX} {
			ctx.SetGoal(p.pcN.Leg(s))
		}
	})
	p.pcN.SetRoute(pcPBX, pcC)
	p.pcN.SetRoute(pcV, pcC)
	p.pcN.SetRoute(pcC, pcPBX)
}

// RunNaive drives Snapshots 2, 3, and 4 in the uncoordinated regime
// and verifies that the three pathologies of paper Figure 2 occur.
func (p *Prepaid) RunNaive() ([]string, error) {
	var log []string
	// Snapshot 2: PC's timer goes off. It opens the V leg with C's
	// descriptor, and tells A to stop sending. This still works.
	p.PC.Do(func(ctx *box.Ctx) {
		p.pcN.SetRoute(pcC, pcV)
		p.pcN.OpenLeg(ctx, pcV, sig.Audio, p.descC)
		p.pcN.Describe(ctx, pcPBX, p.pcN.HoldDesc())
	})
	if err := p.await("naive Snapshot 2: C<->V media only", func() bool {
		return p.flowsExactly([2]string{"C", "V"}, [2]string{"V", "C"})
	}); err != nil {
		return log, err
	}
	log = append(log, "snapshot2: C<->V only (still correct)")

	// Snapshot 3: the PBX switches A back to B and tells "C" to stop
	// sending; the signal passes through PC, which forwards it
	// untouched to C. Pathology: V is left without audio input from C.
	p.PBX.Do(func(ctx *box.Ctx) {
		p.pbxN.SetRoute(pbxA, pbxB)
		var descA, descB sig.Descriptor
		if d, ok := ctx.Box().Slot(pbxA).Desc(); ok {
			descA = d
		}
		if d, ok := ctx.Box().Slot(pbxB).Desc(); ok {
			descB = d
		}
		p.pbxN.Describe(ctx, pbxA, descB)
		p.pbxN.Describe(ctx, pbxB, descA)
		p.pbxN.Describe(ctx, pbxPC, p.pbxN.HoldDesc())
	})
	if err := p.await("naive Snapshot 3: C->V lost, V->C orphaned", func() bool {
		return p.flowsExactly([2]string{"A", "B"}, [2]string{"B", "A"}, [2]string{"V", "C"})
	}); err != nil {
		return log, err
	}
	log = append(log, "snapshot3: PATHOLOGY - C->V audio lost; V->C one-way")

	// Snapshot 4: V has verified the funds; PC reconnects C with A.
	// The PBX forwards PC's command blindly: A is switched away from B
	// without A's permission, and B keeps transmitting to an endpoint
	// that throws its packets away.
	p.PC.Do(func(ctx *box.Ctx) {
		p.pcN.SetRoute(pcC, pcPBX)
		p.pcN.Describe(ctx, pcPBX, p.descC)        // toward A: send to C
		p.pcN.Describe(ctx, pcC, p.descA)          // to C: send to A
		p.pcN.Describe(ctx, pcV, p.pcN.HoldDesc()) // V: stop
	})
	if err := p.await("naive Snapshot 4: A hijacked, B deaf-transmitting", func() bool {
		return p.flowsExactly([2]string{"A", "C"}, [2]string{"C", "A"}, [2]string{"B", "A"})
	}); err != nil {
		return log, err
	}
	before := p.A.Agent().Stats().Unexpected
	p.Plane.Tick(10)
	after := p.A.Agent().Stats().Unexpected
	if after <= before {
		return log, fmt.Errorf("scenario: expected B's packets to be discarded at A (unexpected %d -> %d)", before, after)
	}
	log = append(log, "snapshot4: PATHOLOGY - A switched without permission; B's packets discarded at A")
	return log, nil
}
