// The uncoordinated-server baseline of paper Figure 2: servers whose
// legs are ordinary protocol endpoints for channel management
// (open/oack/close) but which forward media signals — descriptors and
// selectors — blindly along a per-leg routing table, with no state
// matching, no up-to-date tracking, and no selector filtering. "It is
// standard behavior for a server receiving a signal that does not
// concern itself to forward the signal untouched" (Section II-A).
package scenario

import (
	"sync"

	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
)

// NaiveServer holds the shared routing table of a Figure 2 server. It
// does consume answers to descriptors it originated itself (even an
// uncoordinated server reads replies to its own commands) — everything
// else passes through untouched.
type NaiveServer struct {
	Name string

	mu    sync.Mutex
	route map[string]string // slot -> slot signals are forwarded to
}

// NewNaiveServer creates the routing state for a naive server box.
func NewNaiveServer(name string) *NaiveServer {
	return &NaiveServer{Name: name, route: map[string]string{}}
}

// SetRoute directs media signals arriving on slot from to slot to.
func (n *NaiveServer) SetRoute(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.route[from] = to
}

func (n *NaiveServer) routeOf(from string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.route[from]
}

// ownDesc is the noMedia descriptor the server uses when it issues
// commands of its own (putting an endpoint on hold).
func (n *NaiveServer) ownDesc() sig.Descriptor {
	return sig.NoMediaDescriptor(sig.DescID{Origin: n.Name, Seq: 1})
}

// Leg builds the goal object for one server leg.
func (n *NaiveServer) Leg(slotName string) *NaiveLeg {
	return &NaiveLeg{srv: n, name: slotName}
}

// NaiveLeg is the per-slot goal of a naive server.
type NaiveLeg struct {
	srv  *NaiveServer
	name string
}

// Kind implements core.Goal.
func (g *NaiveLeg) Kind() string { return "naiveLeg" }

// SlotNames implements core.Goal.
func (g *NaiveLeg) SlotNames() []string { return []string{g.name} }

// Attach implements core.Goal: a naive leg takes over silently.
func (g *NaiveLeg) Attach(core.Slots) ([]core.Action, error) { return nil, nil }

// OnEvent implements core.Goal: channel management is handled locally;
// media signals are forwarded blindly along the route.
func (g *NaiveLeg) OnEvent(ss core.Slots, name string, ev slot.Event, in sig.Signal) ([]core.Action, error) {
	em := core.NewEmitter(ss)
	dest := g.srv.routeOf(name)
	switch ev {
	case slot.EvOpen, slot.EvOpenRace:
		// Accept locally, describing the routed peer if known.
		d := g.srv.ownDesc()
		if dest != "" {
			if ds := ss.Slot(dest); ds != nil {
				if dd, ok := ds.Desc(); ok {
					d = dd
				}
			}
		}
		em.Emit(name, sig.Oack(d))
	case slot.EvOack, slot.EvDescribe:
		// A fresh descriptor: forward it blindly to wherever this leg
		// currently routes — or drop it if that is impossible. No
		// coordination with other goals, no utd tracking.
		g.forwardDesc(em, ss, dest, in.Desc)
	case slot.EvSelect:
		if in.Sel.Answers.Origin == g.srv.Name {
			break // answer to one of our own holds: consume
		}
		if dest != "" {
			if ds := ss.Slot(dest); ds != nil && ds.State() == slot.Flowing {
				em.Emit(dest, sig.Select(in.Sel))
			}
		}
	case slot.EvClose:
		em.Emit(name, sig.CloseAck())
	case slot.EvCloseAck, slot.EvStale:
	}
	return em.Done()
}

func (g *NaiveLeg) forwardDesc(em *core.Emitter, ss core.Slots, dest string, d sig.Descriptor) {
	if dest == "" {
		return
	}
	ds := ss.Slot(dest)
	if ds == nil || ds.State() != slot.Flowing {
		return // dropped silently: that is the pathology
	}
	em.Emit(dest, sig.Describe(d))
}

// Refresh implements core.Goal.
func (g *NaiveLeg) Refresh(core.Slots, bool, bool) ([]core.Action, error) { return nil, nil }

// Clone implements core.Goal.
func (g *NaiveLeg) Clone() core.Goal { c := *g; return &c }

// AppendEncode implements core.Goal.
func (g *NaiveLeg) AppendEncode(dst []byte) []byte {
	dst = append(dst, "naive:"...)
	return append(dst, g.name...)
}

// Describe sends a descriptor command on a leg: "a signal to X telling
// it to send media to Y" is describe(descY); "telling it to stop
// sending" is describe(noMedia) (paper Section VI-C).
func (n *NaiveServer) Describe(ctx *box.Ctx, slotName string, d sig.Descriptor) {
	s := ctx.Box().Slot(slotName)
	if s == nil {
		return
	}
	if err := s.Send(sig.Describe(d)); err != nil {
		return // naive servers ignore failures
	}
	ch, tunnel := splitSlotName(slotName)
	ctx.SendRaw(ch, tunnel, sig.Describe(d))
}

// OpenLeg opens a leg's media channel carrying descriptor d.
func (n *NaiveServer) OpenLeg(ctx *box.Ctx, slotName string, m sig.Medium, d sig.Descriptor) {
	s := ctx.Box().Slot(slotName)
	if s == nil {
		return
	}
	if err := s.Send(sig.Open(m, d)); err != nil {
		return
	}
	ch, tunnel := splitSlotName(slotName)
	ctx.SendRaw(ch, tunnel, sig.Open(m, d))
}

// HoldDesc returns the server's own noMedia descriptor for scripted
// hold commands.
func (n *NaiveServer) HoldDesc() sig.Descriptor { return n.ownDesc() }

func splitSlotName(name string) (string, int) {
	for i := len(name) - 1; i > 1; i-- {
		if name[i-1] == '.' && name[i] == 't' {
			t := 0
			for _, c := range name[i+1:] {
				t = t*10 + int(c-'0')
			}
			return name[:i-1], t
		}
	}
	return name, 0
}
