// The conference server of paper Figure 7: an application server that,
// for each user device, flowlinks the user's tunnel to a tunnel leading
// to the conference bridge (the media resource that performs the
// mixing). "Full muting separates one user from the conference
// entirely. The conference server can accomplish this by temporarily
// replacing a flowlink by two holdslots" — implemented verbatim by
// MuteUser/UnmuteUser.
package scenario

import (
	"fmt"
	"sync"

	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/transport"
)

// ConferenceServer joins user devices to a bridge.
type ConferenceServer struct {
	r      *box.Runner
	bridge string

	mu    sync.Mutex
	users int
}

// NewConferenceServer starts a conference server listening at addr,
// using the named bridge resource.
func NewConferenceServer(net transport.Network, addr, bridge string) (*ConferenceServer, error) {
	cs := &ConferenceServer{bridge: bridge}
	b := box.New("CONF", core.ServerProfile{Name: "CONF"})
	cs.r = box.NewRunner(b, net)
	// Each accepted user channel userN gets a dedicated leg brN to the
	// bridge and a flowlink between them.
	if err := cs.r.Listen(addr, func(n int) string { return fmt.Sprintf("user%d", n) }); err != nil {
		cs.r.Stop()
		return nil, err
	}
	return cs, nil
}

// Runner exposes the server's box runner.
func (cs *ConferenceServer) Runner() *box.Runner { return cs.r }

// Stop shuts the server down.
func (cs *ConferenceServer) Stop() { cs.r.Stop() }

// AwaitUser waits for the nth user channel and links it to the bridge.
func (cs *ConferenceServer) AwaitUser(n int) error {
	name := fmt.Sprintf("user%d", n)
	if !cs.r.AwaitChannel(name, 5e9) {
		return fmt.Errorf("scenario: user channel %s never arrived", name)
	}
	leg := fmt.Sprintf("br%d", n)
	cs.r.Do(func(ctx *box.Ctx) {
		if !ctx.Box().HasChannel(leg) {
			ctx.Dial(leg, cs.bridge)
		}
		ctx.SetGoal(core.NewFlowLink(box.TunnelSlot(name, 0), box.TunnelSlot(leg, 0)))
	})
	cs.mu.Lock()
	if n+1 > cs.users {
		cs.users = n + 1
	}
	cs.mu.Unlock()
	return nil
}

// MuteUser fully separates user n from the conference by replacing the
// flowlink with two holdslots (paper Section IV-B).
func (cs *ConferenceServer) MuteUser(n int) {
	cs.r.Do(func(ctx *box.Ctx) {
		prof := ctx.Box().Profile()
		ctx.SetGoal(core.NewHoldSlot(box.TunnelSlot(fmt.Sprintf("user%d", n), 0), prof))
		ctx.SetGoal(core.NewHoldSlot(box.TunnelSlot(fmt.Sprintf("br%d", n), 0), prof))
	})
}

// UnmuteUser restores the flowlink, and with it the user's media.
func (cs *ConferenceServer) UnmuteUser(n int) {
	cs.r.Do(func(ctx *box.Ctx) {
		ctx.SetGoal(core.NewFlowLink(
			box.TunnelSlot(fmt.Sprintf("user%d", n), 0),
			box.TunnelSlot(fmt.Sprintf("br%d", n), 0)))
	})
}
