// The Click-to-Dial box program of paper Figure 6, transcribed
// state-for-state: oneCall, twoCalls, busyTone, ringback, connected,
// and terminate, with the timer, availability, and teardown branches.
package scenario

import (
	"time"

	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/sig"
	"ipmedia/internal/transport"
)

// Click-to-Dial slot names, matching the paper's 1a, 2a, and Ta.
const (
	ctd1a = "1.t0"
	ctd2a = "2.t0"
	ctdTa = "T.t0"
)

// ClickToDialConfig parameterizes the box: the configured address of
// user 1's IP telephone, the clicked address from the web site, the
// tone resource, and how long to ring user 1 before giving up.
type ClickToDialConfig struct {
	User1Addr string
	User2Addr string
	ToneAddr  string
	Timeout   time.Duration
}

// NewClickToDial starts a Click-to-Dial box: the program takes its
// initial transition as soon as the box starts (the user has clicked).
// The returned done channel closes when the program terminates.
func NewClickToDial(net transport.Network, cfg ClickToDialConfig) (*box.Runner, <-chan struct{}, error) {
	if cfg.Timeout == 0 {
		cfg.Timeout = time.Hour
	}
	b := box.New("CTD", core.ServerProfile{Name: "CTD"})
	r := box.NewRunner(b, net)
	done := make(chan struct{})

	flowing := func(s string) box.Guard {
		return func(ctx *box.Ctx) bool { return ctx.IsFlowing(s) }
	}
	meta := func(ch string, k sig.MetaKind) box.Guard {
		return func(ctx *box.Ctx) bool { return ctx.OnMeta(ch, k) }
	}
	torn := func(ch string) box.Guard { return meta(ch, sig.MetaTeardown) }

	prog := &box.Program{
		Initial: "oneCall",
		States: []*box.State{
			{
				// Ring user 1's own telephone first.
				Name:   "oneCall",
				Annots: []box.Annot{box.OpenSlotAnn(ctd1a, sig.Audio)},
				OnEnter: func(ctx *box.Ctx) {
					ctx.Dial("1", cfg.User1Addr)
					ctx.SetTimer("giveup", cfg.Timeout)
				},
				Trans: []box.Trans{
					{When: flowing(ctd1a), To: "twoCalls", Do: func(ctx *box.Ctx) {
						ctx.CancelTimer("giveup")
						ctx.Dial("2", cfg.User2Addr)
					}},
					{When: func(ctx *box.Ctx) bool { return ctx.OnTimer("giveup") }, To: "terminate",
						Do: func(ctx *box.Ctx) { ctx.Teardown("1") }},
					{When: torn("1"), To: "terminate"},
				},
			},
			{
				// User 1 answered; try the clicked address, waiting for
				// the availability meta-signal.
				Name: "twoCalls",
				Annots: []box.Annot{
					box.OpenSlotAnn(ctd1a, sig.Audio), // same annotation: same goal object
					box.OpenSlotAnn(ctd2a, sig.Audio),
				},
				Trans: []box.Trans{
					{When: meta("2", sig.MetaUnavailable), To: "busyTone", Do: func(ctx *box.Ctx) {
						ctx.Teardown("2")
						ctx.Dial("T", cfg.ToneAddr)
					}},
					{When: meta("2", sig.MetaAvailable), To: "ringback", Do: func(ctx *box.Ctx) {
						ctx.Dial("T", cfg.ToneAddr)
					}},
					{When: torn("1"), To: "terminate", Do: func(ctx *box.Ctx) { ctx.Teardown("2") }},
				},
			},
			{
				// The clicked device is unavailable: play busy tone to
				// user 1 until user 1 abandons the call.
				Name:   "busyTone",
				Annots: []box.Annot{box.FlowLinkAnn(ctd1a, ctdTa)},
				Trans: []box.Trans{
					{When: torn("1"), To: "terminate", Do: func(ctx *box.Ctx) { ctx.Teardown("T") }},
				},
			},
			{
				// Ringing the clicked device: user 1 hears ringback from
				// the tone resource while the openslot keeps working on
				// channel 2.
				Name: "ringback",
				Annots: []box.Annot{
					box.FlowLinkAnn(ctd1a, ctdTa),
					box.OpenSlotAnn(ctd2a, sig.Audio), // still the same goal object
				},
				Trans: []box.Trans{
					{When: flowing(ctd2a), To: "connected", Do: func(ctx *box.Ctx) {
						ctx.Teardown("T")
					}},
					{When: torn("1"), To: "terminate", Do: func(ctx *box.Ctx) {
						ctx.Teardown("2")
						ctx.Teardown("T")
					}},
					{When: torn("2"), To: "terminate", Do: func(ctx *box.Ctx) { ctx.Teardown("T") }},
				},
			},
			{
				// Both parties up: flowlink reconfigures addresses, ports,
				// and codecs so user 1 and user 2 talk directly.
				Name:   "connected",
				Annots: []box.Annot{box.FlowLinkAnn(ctd1a, ctd2a)},
				Trans: []box.Trans{
					{When: torn("1"), To: "terminate", Do: func(ctx *box.Ctx) { ctx.Teardown("2") }},
					{When: torn("2"), To: "terminate", Do: func(ctx *box.Ctx) { ctx.Teardown("1") }},
				},
			},
			{
				Name: "terminate",
				OnEnter: func(ctx *box.Ctx) {
					select {
					case <-done:
					default:
						close(done)
					}
				},
			},
		},
	}
	r.SetProgram(prog)
	return r, done, nil
}
