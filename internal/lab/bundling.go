// The media-bundling experiment (paper Section IX-B, third protocol
// difference): each SIP signal refers to all media channels of the
// path at once, and invite transactions cannot overlap, so controlling
// an audio and a video channel on the same path serializes into two
// full transactions. In the compositional protocol every tunnel is
// independent, so both channels come up concurrently — the signals can
// even be bundled into one packet as an optimization.
package lab

import (
	"fmt"
	"time"

	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/des"
	"ipmedia/internal/sig"
	"ipmedia/internal/sip"
)

// BundlingOurs measures both an audio and a video channel (two tunnels
// of the same signaling path) being relinked at the same instant by
// both servers. The tunnels are independent; the only coupling is the
// boxes' compute serialization, so the total is 2n+3c plus a few c.
func BundlingOurs(c, n time.Duration) (Row, error) {
	sim := des.NewSim()
	net := des.NewNet(sim, c, n)
	mkEnd := func(name string, basePort int) *box.Box {
		b := box.New(name, core.NewEndpointProfile(name, "h"+name, basePort,
			[]sig.Codec{sig.G711}, []sig.Codec{sig.G711}))
		return b
	}
	a := net.Add(mkEnd("A", 5004))
	cc := net.Add(mkEnd("C", 5008))
	pbx := net.Add(box.New("PBX", core.ServerProfile{Name: "PBX"}))
	pc := net.Add(box.New("PC", core.ServerProfile{Name: "PC"}))
	net.Wire(pbx, "a", a, "up")
	net.Wire(pbx, "pc", pc, "pbx")
	net.Wire(pc, "c", cc, "up")

	// Per-tunnel endpoint profiles: audio on tunnel 0, video on 1.
	profs := map[*des.BoxHost][2]*core.EndpointProfile{
		a: {
			core.NewEndpointProfile("A0", "hA", 5004, []sig.Codec{sig.G711}, []sig.Codec{sig.G711}),
			core.NewEndpointProfile("A1", "hA", 5006, []sig.Codec{sig.H264}, []sig.Codec{sig.H264}),
		},
		cc: {
			core.NewEndpointProfile("C0", "hC", 5008, []sig.Codec{sig.G711}, []sig.Codec{sig.G711}),
			core.NewEndpointProfile("C1", "hC", 5010, []sig.Codec{sig.H264}, []sig.Codec{sig.H264}),
		},
	}
	mediums := [2]sig.Medium{sig.Audio, sig.Video}

	// Setup: both tunnels established, severed at PC (holding).
	for _, h := range []*des.BoxHost{a, cc} {
		h := h
		h.Call(func(ctx *box.Ctx) {
			for t := 0; t < 2; t++ {
				ctx.SetGoal(core.NewOpenSlot(box.TunnelSlot("up", t), mediums[t], profs[h][t]))
			}
		})
	}
	pbx.Call(func(ctx *box.Ctx) {
		for t := 0; t < 2; t++ {
			ctx.SetGoal(core.NewHoldSlot(box.TunnelSlot("a", t), pbx.B.Profile()))
			ctx.SetGoal(core.NewHoldSlot(box.TunnelSlot("pc", t), pbx.B.Profile()))
		}
	})
	pc.Call(func(ctx *box.Ctx) {
		for t := 0; t < 2; t++ {
			ctx.SetGoal(core.NewFlowLink(box.TunnelSlot("c", t), box.TunnelSlot("pbx", t)))
		}
	})
	if !sim.Run(1_000_000) {
		return Row{}, fmt.Errorf("lab: bundling setup did not quiesce")
	}
	pc.Call(func(ctx *box.Ctx) {
		for t := 0; t < 2; t++ {
			ctx.SetGoal(core.NewHoldSlot(box.TunnelSlot("c", t), pc.B.Profile()))
			ctx.SetGoal(core.NewHoldSlot(box.TunnelSlot("pbx", t), pc.B.Profile()))
		}
	})
	if !sim.Run(1_000_000) {
		return Row{}, fmt.Errorf("lab: bundling setup phase 2 did not quiesce")
	}
	if errs := net.Errs(); len(errs) > 0 {
		return Row{}, errs[0]
	}

	// Measure: both servers relink both tunnels at the same instant.
	start := sim.Now()
	ready := map[string]time.Duration{}
	net.Observer = func(h *des.BoxHost, t time.Duration) {
		if h != a && h != cc {
			return
		}
		for tn := 0; tn < 2; tn++ {
			key := fmt.Sprintf("%s.%d", h.B.Name(), tn)
			if _, done := ready[key]; done {
				continue
			}
			s := h.B.Slot(box.TunnelSlot("up", tn))
			if s != nil && s.Enabled() {
				if d, ok := s.Desc(); ok && d.ID.Origin != "PBX" && d.ID.Origin != "PC" {
					ready[key] = t
				}
			}
		}
	}
	pbx.Call(func(ctx *box.Ctx) {
		for t := 0; t < 2; t++ {
			ctx.SetGoal(core.NewFlowLink(box.TunnelSlot("a", t), box.TunnelSlot("pc", t)))
		}
	})
	pc.Call(func(ctx *box.Ctx) {
		for t := 0; t < 2; t++ {
			ctx.SetGoal(core.NewFlowLink(box.TunnelSlot("c", t), box.TunnelSlot("pbx", t)))
		}
	})
	if !sim.Run(1_000_000) {
		return Row{}, fmt.Errorf("lab: bundling relink did not quiesce")
	}
	if errs := net.Errs(); len(errs) > 0 {
		return Row{}, errs[0]
	}
	if len(ready) != 4 {
		return Row{}, fmt.Errorf("lab: only %d of 4 tunnel ends became ready", len(ready))
	}
	var m time.Duration
	for _, t := range ready {
		if t-start > m {
			m = t - start
		}
	}
	// Expected: the audio tunnel completes at 2n+3c; the video tunnel's
	// signals travel in the same packets (attached in one stimulus) and
	// queue one compute slot behind audio at the forwarding server and
	// at the endpoint: 2n+4c.
	return Row{
		Name: "bundling: ours, audio+video", C: c, N: n,
		Measured: m, Formula: "2n+4c", Expected: 2*n + 4*c,
	}, nil
}

// BundlingSIP measures the same double relink on the SIP baseline: the
// audio and video transactions cannot overlap on the signaling path,
// so the video operation starts only when the audio one completes.
func BundlingSIP(c, n time.Duration) (Row, error) {
	f := newSIPFixture(c, n, sip.ServerOptions{}, sip.ServerOptions{})
	// The queued video transaction starts the instant the server
	// completes the audio one.
	f.pc.OnDone = func() {
		f.pc.OnDone = nil
		f.pc.Relink()
	}
	f.pc.Relink()
	m, err := f.runOp(f.pc.TagOf(2))
	if err != nil {
		return Row{}, err
	}
	return Row{
		Name: "bundling: SIP, audio+video", C: c, N: n,
		Measured: m, Formula: "13n+14c", Expected: 13*n + 14*c,
	}, nil
}
