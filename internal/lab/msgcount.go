// Protocol overhead: signals on the wire per relink operation. The
// paper argues idempotent/unilateral signaling is "faster and
// require[s] less protocol state" (Section X-B); this experiment
// counts the messages each design spends on the same operation.
package lab

import (
	"fmt"
	"time"

	"ipmedia/internal/sip"
)

// MsgCounts is the message tally for one relink operation.
type MsgCounts struct {
	Ours      int // compositional protocol, concurrent relink (Fig 13)
	SIPCommon int // SIP, uncontended (Fig 14's common case)
	SIPGlare  int // SIP, glare + retry (Fig 14)
}

func (m MsgCounts) String() string {
	return fmt.Sprintf("messages per relink: ours=%d, SIP common=%d, SIP glare=%d",
		m.Ours, m.SIPCommon, m.SIPGlare)
}

// MessageCounts measures the wire-message budget of the same relink
// under the three regimes.
func MessageCounts(c, n time.Duration, seed int64) (MsgCounts, error) {
	var out MsgCounts
	_, trace, err := Fig13Traced(c, n)
	if err != nil {
		return out, err
	}
	out.Ours = len(trace)

	f := newSIPFixture(c, n, sip.ServerOptions{}, sip.ServerOptions{})
	f.pc.Relink()
	if _, err := f.run(); err != nil {
		return out, err
	}
	out.SIPCommon = f.net.Sent

	g := newSIPFixture(c, n, sip.ServerOptions{}, sip.ServerOptions{RetryAfterGlare: true})
	g.pbx.Relink()
	g.pc.Relink()
	if _, err := g.run(); err != nil {
		return out, err
	}
	out.SIPGlare = g.net.Sent
	return out, nil
}
