package lab

import (
	"strings"
	"testing"

	"ipmedia/internal/sig"
)

// TestFig13GoldenTrace pins the wire behavior of the concurrent relink
// to the message-sequence chart of paper Figure 13:
//
//   - each new flowlink begins by sending, to each side, its most
//     recent descriptor from the other side — toward the endpoints
//     these are the noMedia hold descriptors;
//   - the endpoints' answering noMedia selectors are absorbed by the
//     servers (superseded descriptors);
//   - the real descriptors propagate end to end and the answering
//     selectors are forwarded along the whole path.
func TestFig13GoldenTrace(t *testing.T) {
	_, trace, err := Fig13Traced(PaperC, PaperN)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, l := range trace {
		lines = append(lines, l.From+">"+l.To+":"+l.Env.Sig.String())
	}
	joined := strings.Join(lines, "\n")

	// The opening salvo: four concurrent describes at the same instant.
	first4 := map[string]bool{}
	for _, l := range trace[:4] {
		if l.At != trace[0].At {
			t.Fatalf("first four signals must be concurrent:\n%s", joined)
		}
		key := l.From + ">" + l.To + ":" + l.Env.Sig.Kind.String()
		if l.Env.Sig.Kind != sig.KindDescribe {
			t.Fatalf("relink must start with describes, got %s", key)
		}
		first4[key+":"+l.Env.Sig.Desc.ID.Origin] = true
	}
	for _, want := range []string{
		"PBX>A:describe:PC", // PBX's cached noMedia from the right (Fig 13's describe(noMedia))
		"PBX>PC:describe:A", // A's descriptor rightward
		"PC>C:describe:PBX", // PC's cached noMedia from the right
		"PC>PBX:describe:C", // C's descriptor leftward
	} {
		if !first4[want] {
			t.Fatalf("missing opening describe %s in %v", want, first4)
		}
	}

	// The superseded noMedia selectors are absorbed: no server ever
	// forwards a noMedia selector onward.
	for _, l := range trace {
		if l.Env.Sig.Kind == sig.KindSelect && l.Env.Sig.Sel.NoMedia() {
			if (l.From == "PBX" && l.To == "PC") || (l.From == "PC" && l.To == "PBX") {
				t.Fatalf("noMedia selector leaked between servers:\n%s", joined)
			}
		}
	}

	// The real selector from A answering C's descriptor travels the
	// whole path A -> PBX -> PC -> C, in order.
	assertChain(t, trace, "C#1", []string{"A>PBX", "PBX>PC", "PC>C"})
	// And symmetrically for C's selector answering A's descriptor.
	assertChain(t, trace, "A#1", []string{"C>PC", "PC>PBX", "PBX>A"})

	// No opens or closes: the relink operates entirely on established
	// channels (describes and selects only).
	for _, l := range trace {
		switch l.Env.Sig.Kind {
		case sig.KindOpen, sig.KindClose, sig.KindCloseAck, sig.KindOack:
			t.Fatalf("unexpected %s during relink:\n%s", l.Env.Sig.Kind, joined)
		}
	}
}

// assertChain checks that a real selector answering the named
// descriptor traverses the given hops in order.
func assertChain(t *testing.T, trace []TraceLine, answers string, hops []string) {
	t.Helper()
	next := 0
	for _, l := range trace {
		if l.Env.Sig.Kind != sig.KindSelect || l.Env.Sig.Sel.NoMedia() {
			continue
		}
		if l.Env.Sig.Sel.Answers.String() != answers {
			continue
		}
		hop := l.From + ">" + l.To
		if next < len(hops) && hop == hops[next] {
			next++
		}
	}
	if next != len(hops) {
		t.Fatalf("selector answering %s completed only %d of %d hops %v", answers, next, len(hops), hops)
	}
}

// TestFig13TraceMessageBudget: the relink costs exactly 14 signals —
// 6 describes (4 opening + 2 forwards), 2 absorbed noMedia selectors,
// and 2 real selectors traversing 3 hops each.
func TestFig13TraceMessageBudget(t *testing.T) {
	_, trace, err := Fig13Traced(PaperC, PaperN)
	if err != nil {
		t.Fatal(err)
	}
	describes, noMediaSels, realSels := 0, 0, 0
	for _, l := range trace {
		switch l.Env.Sig.Kind {
		case sig.KindDescribe:
			describes++
		case sig.KindSelect:
			if l.Env.Sig.Sel.NoMedia() {
				noMediaSels++
			} else {
				realSels++
			}
		}
	}
	if describes != 6 || noMediaSels != 2 || realSels != 6 {
		t.Fatalf("message budget: %d describes, %d noMedia selects, %d real selects (want 6/2/6); total %d",
			describes, noMediaSels, realSels, len(trace))
	}
}
