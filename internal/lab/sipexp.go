// The SIP-side experiments of paper Section IX-B (Figure 14): the
// glare scenario (10n+11c+d), the common uncontended case (7n+7c
// versus our 2n+3c — the paper's "378 ms versus 128 ms"), and the
// ablation that isolates SIP's three delay sources.
package lab

import (
	"fmt"
	"math/rand"
	"time"

	"ipmedia/internal/des"
	"ipmedia/internal/sig"
	"ipmedia/internal/sip"
)

// sipFixture is the A — PBX — PC — C path on the SIP baseline.
type sipFixture struct {
	sim  *des.Sim
	net  *sip.Net
	a, c *sip.Endpoint
	pbx  *sip.Server
	pc   *sip.Server
}

func newSIPFixture(c, n time.Duration, pbxOpts, pcOpts sip.ServerOptions) *sipFixture {
	f := &sipFixture{sim: des.NewSim()}
	f.net = sip.NewNet(f.sim, c, n)
	sdpA := sip.SDP{Owner: "A", Addr: "hA", Port: 5004, Codecs: []sig.Codec{sig.G711, sig.G726}}
	sdpC := sip.SDP{Owner: "C", Addr: "hC", Port: 5008, Codecs: []sig.Codec{sig.G711, sig.G726}}
	f.a = sip.NewEndpoint(f.net, "A", sdpA)
	f.c = sip.NewEndpoint(f.net, "C", sdpC)
	f.pbx = sip.NewServer(f.net, "PBX", "A", "PC", pbxOpts, 1)
	f.pc = sip.NewServer(f.net, "PC", "C", "PBX", pcOpts, 2)
	f.pbx.CacheEnd(sdpA)
	f.pbx.CacheFar(sdpC)
	f.pc.CacheEnd(sdpC)
	f.pc.CacheFar(sdpA)
	return f
}

// run drives the simulation to quiescence and returns when both
// endpoints first became ready (whatever operation achieved it — a
// glare retry is a fresh operation).
func (f *sipFixture) run() (time.Duration, error) {
	if err := f.drain(); err != nil {
		return 0, err
	}
	aAt, aOK := f.a.Ready()
	cAt, cOK := f.c.Ready()
	if !aOK || !cOK {
		return 0, fmt.Errorf("lab: SIP endpoints not ready (A=%v C=%v)", aOK, cOK)
	}
	if cAt > aAt {
		return cAt, nil
	}
	return aAt, nil
}

// runOp measures readiness for a specific tagged operation.
func (f *sipFixture) runOp(op string) (time.Duration, error) {
	if err := f.drain(); err != nil {
		return 0, err
	}
	aAt, aOK := f.a.ReadyFor(op)
	cAt, cOK := f.c.ReadyFor(op)
	if !aOK || !cOK {
		return 0, fmt.Errorf("lab: SIP endpoints not ready for op %s (A=%v C=%v)", op, aOK, cOK)
	}
	if cAt > aAt {
		return cAt, nil
	}
	return aAt, nil
}

func (f *sipFixture) drain() error {
	if !f.sim.Run(1_000_000) {
		return fmt.Errorf("lab: SIP run did not quiesce")
	}
	if errs := f.net.Errs(); len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// SIPCommon measures the uncontended SIP relink (one server acts, the
// other forwards as a transparent B2BUA). Paper: 7n+7c = 378 ms, vs
// 2n+3c = 128 ms for the compositional protocol.
func SIPCommon(c, n time.Duration) (Row, error) {
	f := newSIPFixture(c, n, sip.ServerOptions{}, sip.ServerOptions{})
	f.pc.Relink()
	m, err := f.run()
	if err != nil {
		return Row{}, err
	}
	return Row{
		Name: "SIP common case (no glare)", C: c, N: n,
		Measured: m, Formula: "7n+7c", Expected: 7*n + 7*c,
	}, nil
}

// SIPGlare measures the Figure 14 scenario: both servers relink
// concurrently, their invite transactions collide, both fail, and the
// designated server retries the whole operation after the randomized
// backoff d. Paper: 10n+11c+d, expected 3560 ms at d's expectation.
// The backoff value is reported so the formula can be checked exactly.
func SIPGlare(c, n time.Duration, seed int64) (Row, time.Duration, error) {
	rng := rand.New(rand.NewSource(seed))
	d := sip.DefaultBackoff(rng)
	fixed := func(*rand.Rand) time.Duration { return d }
	f := newSIPFixture(c, n,
		sip.ServerOptions{Backoff: fixed},
		sip.ServerOptions{RetryAfterGlare: true, Backoff: fixed})
	f.pbx.Relink()
	f.pc.Relink()
	m, err := f.run()
	if err != nil {
		return Row{}, 0, err
	}
	if f.pc.GlaresSeen == 0 && f.pbx.GlaresSeen == 0 {
		return Row{}, 0, fmt.Errorf("lab: expected a glare, saw none")
	}
	return Row{
		Name: fmt.Sprintf("SIP glare (d=%s)", d), C: c, N: n,
		Measured: m, Formula: "10n+11c+d", Expected: 10*n + 11*c + d,
	}, d, nil
}

// Ablations isolates SIP's three delay sources (paper Section IX-B):
//
//	(1) soliciting a fresh offer instead of re-using a cached
//	    descriptor: 2n+2c;
//	(2) failing and retrying because of contention: 3n+4c+d;
//	(3) describing the two ends sequentially instead of in parallel:
//	    3n+2c.
//
// Removing all three from SIP recovers the compositional protocol's
// 2n+3c.
func Ablations(c, n time.Duration, seed int64) ([]Row, error) {
	var rows []Row

	full, err := SIPCommon(c, n)
	if err != nil {
		return nil, err
	}
	rows = append(rows, full)

	// Ablation 1: re-use cached SDPs (unilateral-description behavior).
	f1 := newSIPFixture(c, n, sip.ServerOptions{}, sip.ServerOptions{ReuseCachedSDP: true})
	f1.pc.Relink()
	m1, err := f1.run()
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{
		Name: "SIP - solicitation (cached SDP)", C: c, N: n,
		Measured: m1, Formula: "5n+5c", Expected: 5*n + 5*c,
	})
	rows = append(rows, Row{
		Name: "  delay source 1: solicitation", C: c, N: n,
		Measured: full.Measured - m1, Formula: "2n+2c", Expected: 2*n + 2*c,
	})

	// Ablation 3: also describe both sides in parallel (idempotent
	// behavior): this recovers the compositional latency.
	f2 := newSIPFixture(c, n, sip.ServerOptions{},
		sip.ServerOptions{ReuseCachedSDP: true, ParallelDescribe: true})
	f2.pc.Relink()
	m2, err := f2.run()
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{
		Name: "SIP - solicitation - sequencing", C: c, N: n,
		Measured: m2, Formula: "2n+3c", Expected: 2*n + 3*c,
	})
	rows = append(rows, Row{
		Name: "  delay source 3: sequencing", C: c, N: n,
		Measured: m1 - m2, Formula: "3n+2c", Expected: 3*n + 2*c,
	})

	// Delay source 2: the glare cost, measured as glare minus common.
	glare, d, err := SIPGlare(c, n, seed)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{
		Name: "  delay source 2: glare+retry", C: c, N: n,
		Measured: glare.Measured - full.Measured, Formula: "3n+4c+d", Expected: 3*n + 4*c + d,
	})
	return rows, nil
}
