// Package lab contains the experiment harnesses that regenerate the
// paper's quantitative results (experiment index E7–E12 in DESIGN.md):
// the Figure 13 latency of the compositional protocol, the general
// pn+(p+1)c formula, the Figure 14 SIP comparison with and without
// glare, the ablation of SIP's three delay sources, and the Section
// VIII-A verification statistics.
package lab

import (
	"fmt"
	"time"

	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/des"
	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
)

// PaperC and PaperN are the concrete cost parameters of paper Section
// VIII-C: c = 20 ms server compute, n = 34 ms network delivery.
const (
	PaperC = 20 * time.Millisecond
	PaperN = 34 * time.Millisecond
)

// Row is one measured data point compared against the paper's formula.
type Row struct {
	Name     string
	C, N     time.Duration
	Measured time.Duration
	Formula  string
	Expected time.Duration
}

// Match reports whether measurement equals expectation exactly (the
// simulator is deterministic, so the formulas must hold exactly).
func (r Row) Match() bool { return r.Measured == r.Expected }

func (r Row) String() string {
	return fmt.Sprintf("%-28s c=%-6s n=%-6s measured=%-8s %s=%-8s match=%v",
		r.Name, r.C, r.N, r.Measured, r.Formula, r.Expected, r.Match())
}

// endpointBox builds a one-slot endpoint box for the DES experiments.
func endpointBox(name string, port int) *box.Box {
	prof := core.NewEndpointProfile(name, "h"+name, port, []sig.Codec{sig.G711, sig.G726}, []sig.Codec{sig.G711, sig.G726})
	return box.New(name, prof)
}

// fig13 builds the A—PBX—PC—C topology of paper Figure 13 on the
// virtual clock, establishes the Snapshot 3 state, and measures the
// latency of the concurrent relink in both servers.
//
// The paper's analysis: both endpoints can transmit after 2n+3c.
type fig13 struct {
	sim  *des.Sim
	net  *des.Net
	a, c *des.BoxHost
	pbx  *des.BoxHost
	pc   *des.BoxHost
}

func newFig13(c, n time.Duration) *fig13 {
	f := &fig13{sim: des.NewSim()}
	f.net = des.NewNet(f.sim, c, n)
	f.a = f.net.Add(endpointBox("A", 5004))
	f.c = f.net.Add(endpointBox("C", 5008))
	f.pbx = f.net.Add(box.New("PBX", core.ServerProfile{Name: "PBX"}))
	f.pc = f.net.Add(box.New("PC", core.ServerProfile{Name: "PC"}))
	// Channels: A "up"—PBX "a"; PBX "pc"—PC "pbx"; PC "c"—C "up".
	f.net.Wire(f.pbx, "a", f.a, "up")
	f.net.Wire(f.pbx, "pc", f.pc, "pbx")
	f.net.Wire(f.pc, "c", f.c, "up")
	return f
}

const (
	upSlot  = "up.t0"
	aSlot   = "a.t0"
	pcSlot  = "pc.t0"
	pbxSlot = "pbx.t0"
	cSlot   = "c.t0"
)

// establish drives the fixture to the paper's Snapshot 3: every tunnel
// flowing, both servers holding (muted), all descriptors cached along
// the way.
func (f *fig13) establish() error {
	// Phase 1: endpoints open; PC links c through to the PBX, which
	// holds — this opens the middle tunnel and caches C's descriptor at
	// the PBX.
	f.a.Call(func(ctx *box.Ctx) {
		ctx.SetGoal(core.NewOpenSlot(upSlot, sig.Audio, f.a.B.Profile()))
	})
	f.c.Call(func(ctx *box.Ctx) {
		ctx.SetGoal(core.NewOpenSlot(upSlot, sig.Audio, f.c.B.Profile()))
	})
	f.pbx.Call(func(ctx *box.Ctx) {
		ctx.SetGoal(core.NewHoldSlot(aSlot, f.pbx.B.Profile()))
		ctx.SetGoal(core.NewHoldSlot(pcSlot, f.pbx.B.Profile()))
	})
	f.pc.Call(func(ctx *box.Ctx) {
		ctx.SetGoal(core.NewFlowLink(cSlot, pbxSlot))
	})
	if !f.sim.Run(100000) {
		return fmt.Errorf("lab: fig13 establish phase 1 did not quiesce")
	}
	// Phase 2: PC withdraws the link (funds exhausted, Snapshot 2->3):
	// both its slots held.
	f.pc.Call(func(ctx *box.Ctx) {
		ctx.SetGoal(core.NewHoldSlot(cSlot, f.pc.B.Profile()))
		ctx.SetGoal(core.NewHoldSlot(pbxSlot, f.pc.B.Profile()))
	})
	if !f.sim.Run(100000) {
		return fmt.Errorf("lab: fig13 establish phase 2 did not quiesce")
	}
	for _, st := range []struct {
		h    *des.BoxHost
		name string
	}{{f.a, upSlot}, {f.c, upSlot}, {f.pbx, aSlot}, {f.pbx, pcSlot}, {f.pc, cSlot}, {f.pc, pbxSlot}} {
		s := st.h.B.Slot(st.name)
		if s == nil || s.State() != slot.Flowing {
			return fmt.Errorf("lab: fig13 setup: slot %s/%s not flowing", st.h.B.Name(), st.name)
		}
	}
	return nil
}

// boxCtx and newLink are local aliases used by the experiment files.
type boxCtx = box.Ctx

var newLink = core.NewFlowLink

// observeReady builds a DES observer recording when each endpoint can
// first transmit to the other (descriptor received and real selector
// sent).
func observeReady(f *fig13, aAt, cAt *time.Duration) func(h *des.BoxHost, t time.Duration) {
	return func(h *des.BoxHost, t time.Duration) {
		check := func(host *des.BoxHost, peer string, at *time.Duration) {
			if *at != 0 || h != host {
				return
			}
			s := host.B.Slot(upSlot)
			if s == nil || !s.Enabled() {
				return
			}
			if d, ok := s.Desc(); ok && d.ID.Origin == peer {
				*at = t
			}
		}
		check(f.a, "C", aAt)
		check(f.c, "A", cAt)
	}
}

// measureRelink performs the concurrent relink and returns when each
// endpoint could first transmit to the other, relative to the relink
// instant.
func (f *fig13) measureRelink(concurrent bool) (aReady, cReady time.Duration, err error) {
	if len(f.net.Errs()) > 0 {
		return 0, 0, f.net.Errs()[0]
	}
	start := f.sim.Now()
	var aAt, cAt time.Duration
	f.net.Observer = observeReady(f, &aAt, &cAt)
	// The measured operation: the PBX switches back to C and PC
	// restores its link, at the same instant (Figure 13) or PC alone
	// (the common, uncontended case).
	f.pbx.Call(func(ctx *box.Ctx) { ctx.SetGoal(core.NewFlowLink(aSlot, pcSlot)) })
	if concurrent {
		f.pc.Call(func(ctx *box.Ctx) { ctx.SetGoal(core.NewFlowLink(cSlot, pbxSlot)) })
	} else {
		// Uncontended: PC's link is already in place beforehand.
	}
	if !f.sim.Run(100000) {
		return 0, 0, fmt.Errorf("lab: relink did not quiesce")
	}
	if len(f.net.Errs()) > 0 {
		return 0, 0, f.net.Errs()[0]
	}
	if aAt == 0 || cAt == 0 {
		return 0, 0, fmt.Errorf("lab: endpoints never became ready (A=%v C=%v)", aAt, cAt)
	}
	return aAt - start, cAt - start, nil
}

// Fig13 measures E9: the compositional protocol's relink latency in
// the concurrent scenario of paper Figure 13. Expected: 2n+3c (128 ms
// with the paper's parameters).
func Fig13(c, n time.Duration) (Row, error) {
	r, _, err := Fig13Traced(c, n)
	return r, err
}

// TraceLine is one signal on the wire during a traced run.
type TraceLine struct {
	At       time.Duration
	From, To string
	Env      sig.Envelope
}

func (l TraceLine) String() string {
	return fmt.Sprintf("%-8v %s->%s %s", l.At, l.From, l.To, l.Env)
}

// Fig13Traced is Fig13 plus the full wire trace of the measured relink
// phase, for comparison against the paper's message-sequence chart.
func Fig13Traced(c, n time.Duration) (Row, []TraceLine, error) {
	f := newFig13(c, n)
	if err := f.establish(); err != nil {
		return Row{}, nil, err
	}
	var trace []TraceLine
	f.net.Trace = func(from, to string, env sig.Envelope, t time.Duration) {
		trace = append(trace, TraceLine{At: t, From: from, To: to, Env: env})
	}
	aReady, cReady, err := f.measureRelink(true)
	if err != nil {
		return Row{}, trace, err
	}
	m := aReady
	if cReady > m {
		m = cReady
	}
	return Row{
		Name: "fig13 concurrent relink", C: c, N: n,
		Measured: m, Formula: "2n+3c", Expected: 2*n + 3*c,
	}, trace, nil
}

// PathSweep measures E10: the latency pn+(p+1)c of providing media
// flow from a signaling path, measured from the moment the last
// flowlink is initialized, for paths where that flowlink is p hops
// from its farther endpoint.
func PathSweep(c, n time.Duration, maxP int) ([]Row, error) {
	var rows []Row
	for p := 1; p <= maxP; p++ {
		m, err := sweepOne(c, n, p)
		if err != nil {
			return rows, err
		}
		rows = append(rows, Row{
			Name: fmt.Sprintf("path p=%d", p), C: c, N: n,
			Measured: m, Formula: "pn+(p+1)c",
			Expected: time.Duration(p)*n + time.Duration(p+1)*c,
		})
	}
	return rows, nil
}

// sweepOne builds L — F1 — ... — F(p-1) — R (p tunnels), establishes
// everything with F1 holding, then measures R's readiness after F1
// links. p = number of hops between F1 (the last flowlink initialized)
// and its farther endpoint R.
func sweepOne(c, n time.Duration, p int) (time.Duration, error) {
	sim := des.NewSim()
	net := des.NewNet(sim, c, n)
	l := net.Add(endpointBox("L", 5004))
	r := net.Add(endpointBox("R", 5008))
	var mids []*des.BoxHost
	for i := 1; i < p; i++ {
		mids = append(mids, net.Add(box.New(fmt.Sprintf("F%d", i+1), core.ServerProfile{Name: fmt.Sprintf("F%d", i+1)})))
	}
	f1 := net.Add(box.New("F1", core.ServerProfile{Name: "F1"}))

	// Wire: L — F1 — mids... — R.
	net.Wire(f1, "left", l, "up")
	prev, prevChan := f1, "right"
	for i, m := range mids {
		net.Wire(prev, prevChan, m, "left")
		prev, prevChan = m, "right"
		_ = i
	}
	net.Wire(prev, prevChan, r, "up")

	// Setup: endpoints open; interior boxes flowlink; F1 holds both its
	// slots so the path is established but severed at F1.
	l.Call(func(ctx *box.Ctx) { ctx.SetGoal(core.NewOpenSlot(upSlot, sig.Audio, l.B.Profile())) })
	r.Call(func(ctx *box.Ctx) { ctx.SetGoal(core.NewOpenSlot(upSlot, sig.Audio, r.B.Profile())) })
	f1.Call(func(ctx *box.Ctx) {
		ctx.SetGoal(core.NewHoldSlot("left.t0", f1.B.Profile()))
		ctx.SetGoal(core.NewHoldSlot("right.t0", f1.B.Profile()))
	})
	for _, m := range mids {
		m := m
		m.Call(func(ctx *box.Ctx) { ctx.SetGoal(core.NewFlowLink("left.t0", "right.t0")) })
	}
	if !sim.Run(1000000) {
		return 0, fmt.Errorf("lab: sweep setup did not quiesce")
	}
	if len(net.Errs()) > 0 {
		return 0, net.Errs()[0]
	}

	start := sim.Now()
	var rAt time.Duration
	net.Observer = func(h *des.BoxHost, t time.Duration) {
		if rAt != 0 || h != r {
			return
		}
		s := r.B.Slot(upSlot)
		if s == nil || !s.Enabled() {
			return
		}
		if d, ok := s.Desc(); ok && d.ID.Origin == "L" {
			rAt = t
		}
	}
	f1.Call(func(ctx *box.Ctx) { ctx.SetGoal(core.NewFlowLink("left.t0", "right.t0")) })
	if !sim.Run(1000000) {
		return 0, fmt.Errorf("lab: sweep relink did not quiesce")
	}
	if len(net.Errs()) > 0 {
		return 0, net.Errs()[0]
	}
	if rAt == 0 {
		return 0, fmt.Errorf("lab: R never ready (p=%d)", p)
	}
	return rAt - start, nil
}
