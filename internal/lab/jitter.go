// Latency-jitter robustness (E18): the paper's n is "the *average*
// time it takes for the network or server infrastructure to accept a
// signal and deliver it"; its formulas are therefore expectations.
// This experiment re-runs the Figure 13 relink with per-signal latency
// drawn uniformly from [n−spread, n+spread] and checks that the mean
// measured latency converges to 2n+3c.
package lab

import (
	"fmt"
	"math/rand"
	"time"
)

// JitterResult summarizes the jittered runs.
type JitterResult struct {
	C, N, Spread   time.Duration
	Runs           int
	Mean, Min, Max time.Duration
	Expected       time.Duration // 2n+3c
}

func (r JitterResult) String() string {
	return fmt.Sprintf("fig13 with n∈[%v,%v]: mean=%v min=%v max=%v over %d runs (expected 2n+3c=%v)",
		r.N-r.Spread, r.N+r.Spread, r.Mean, r.Min, r.Max, r.Runs, r.Expected)
}

// Fig13Jitter measures the concurrent relink under jittered network
// latency across the given number of seeded runs.
func Fig13Jitter(c, n, spread time.Duration, runs int) (JitterResult, error) {
	res := JitterResult{C: c, N: n, Spread: spread, Runs: runs, Expected: 2*n + 3*c, Min: 1 << 62}
	var total time.Duration
	for i := 0; i < runs; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		f := newFig13(c, n)
		f.net.Latency = func() time.Duration {
			return n - spread + time.Duration(rng.Int63n(int64(2*spread)+1))
		}
		if err := f.establish(); err != nil {
			return res, fmt.Errorf("run %d: %w", i, err)
		}
		aAt, cAt, err := f.measureRelink(true)
		if err != nil {
			return res, fmt.Errorf("run %d: %w", i, err)
		}
		m := aAt
		if cAt > m {
			m = cAt
		}
		total += m
		if m < res.Min {
			res.Min = m
		}
		if m > res.Max {
			res.Max = m
		}
	}
	res.Mean = total / time.Duration(runs)
	return res, nil
}
