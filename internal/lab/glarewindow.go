// The glare window (E17): SIP's transactional design makes two
// servers' operations collide whenever they start close enough
// together — "because of media bundling, a transaction to control a
// video channel contends with a transaction to control an audio
// channel on the same signaling path" (paper Section IX-B). This
// experiment sweeps the offset between the two servers' start times
// and measures the width of the window in which the operations
// collide. The compositional protocol has no transactions, so the
// window is zero at every offset.
package lab

import (
	"fmt"
	"time"

	"ipmedia/internal/sip"
)

// GlareWindowResult reports the contention windows.
type GlareWindowResult struct {
	C, N time.Duration
	// SIPWindow is the largest start offset at which the two SIP
	// operations still glare.
	SIPWindow time.Duration
	// OursConflicts counts offsets at which the compositional protocol
	// failed to converge (must be zero).
	OursConflicts int
	Offsets       int
}

func (r GlareWindowResult) String() string {
	return fmt.Sprintf("glare window: SIP=%v, compositional=0 (0 conflicts over %d offsets)",
		r.SIPWindow, r.Offsets)
}

// GlareWindow sweeps the start offset between the PBX's and PC's
// operations from 0 to maxOffset in the given step.
func GlareWindow(c, n time.Duration, maxOffset, step time.Duration) (GlareWindowResult, error) {
	res := GlareWindowResult{C: c, N: n}
	for off := time.Duration(0); off <= maxOffset; off += step {
		res.Offsets++

		// SIP: does the pair glare at this offset?
		f := newSIPFixture(c, n, sip.ServerOptions{}, sip.ServerOptions{RetryAfterGlare: true})
		f.pbx.Relink()
		off := off
		f.sim.After(off, func() { f.pc.Relink() })
		if _, err := f.run(); err != nil {
			return res, fmt.Errorf("offset %v: %w", off, err)
		}
		if f.pbx.GlaresSeen+f.pc.GlaresSeen > 0 {
			if off > res.SIPWindow {
				res.SIPWindow = off
			}
		}

		// Compositional: the same two relinks offset in time must always
		// converge to bothFlowing, with no protocol errors.
		g := newFig13(c, n)
		if err := g.establish(); err != nil {
			return res, err
		}
		aAt, cAt, err := g.measureRelinkOffset(off)
		if err != nil || aAt == 0 || cAt == 0 {
			res.OursConflicts++
		}
	}
	return res, nil
}

// measureRelinkOffset is measureRelink with the PC's relink delayed by
// off after the PBX's.
func (f *fig13) measureRelinkOffset(off time.Duration) (aReady, cReady time.Duration, err error) {
	start := f.sim.Now()
	var aAt, cAt time.Duration
	f.net.Observer = observeReady(f, &aAt, &cAt)
	f.pbx.Call(func(ctx *boxCtx) { ctx.SetGoal(newLink(aSlot, pcSlot)) })
	f.sim.After(off, func() {
		f.pc.Call(func(ctx *boxCtx) { ctx.SetGoal(newLink(cSlot, pbxSlot)) })
	})
	if !f.sim.Run(1_000_000) {
		return 0, 0, fmt.Errorf("lab: offset relink did not quiesce")
	}
	if len(f.net.Errs()) > 0 {
		return 0, 0, f.net.Errs()[0]
	}
	if aAt == 0 || cAt == 0 {
		return 0, 0, fmt.Errorf("lab: endpoints not ready at offset %v", off)
	}
	return aAt - start, cAt - start, nil
}
