package lab

import (
	"testing"
	"time"
)

// costGrid exercises each experiment across several (c, n) parameter
// settings; the virtual clock is deterministic, so the paper's
// formulas must hold exactly at every point.
var costGrid = []struct{ c, n time.Duration }{
	{PaperC, PaperN},
	{5 * time.Millisecond, 50 * time.Millisecond},
	{1 * time.Millisecond, 100 * time.Millisecond},
	{30 * time.Millisecond, 40 * time.Millisecond},
}

func TestFig13MatchesFormula(t *testing.T) {
	for _, g := range costGrid {
		r, err := Fig13(g.c, g.n)
		if err != nil {
			t.Fatalf("c=%v n=%v: %v", g.c, g.n, err)
		}
		if !r.Match() {
			t.Errorf("%s", r)
		}
	}
}

func TestFig13PaperNumbers(t *testing.T) {
	// "With these numbers the latency of Figure 13 is 128 ms."
	r, err := Fig13(PaperC, PaperN)
	if err != nil {
		t.Fatal(err)
	}
	if r.Measured != 128*time.Millisecond {
		t.Fatalf("fig13 latency = %v, paper says 128 ms", r.Measured)
	}
}

func TestPathSweepMatchesFormula(t *testing.T) {
	for _, g := range costGrid[:2] {
		rows, err := PathSweep(g.c, g.n, 6)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 6 {
			t.Fatalf("want 6 rows, got %d", len(rows))
		}
		for _, r := range rows {
			if !r.Match() {
				t.Errorf("%s", r)
			}
		}
	}
}

func TestSIPCommonMatchesFormula(t *testing.T) {
	for _, g := range costGrid {
		r, err := SIPCommon(g.c, g.n)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Match() {
			t.Errorf("%s", r)
		}
	}
}

func TestSIPCommonPaperNumbers(t *testing.T) {
	// "In the common situation, the comparison is 378 ms versus 128 ms."
	sipRow, err := SIPCommon(PaperC, PaperN)
	if err != nil {
		t.Fatal(err)
	}
	ours, err := Fig13(PaperC, PaperN)
	if err != nil {
		t.Fatal(err)
	}
	if sipRow.Measured != 378*time.Millisecond || ours.Measured != 128*time.Millisecond {
		t.Fatalf("comparison = %v vs %v, paper says 378 ms vs 128 ms", sipRow.Measured, ours.Measured)
	}
}

func TestSIPGlareMatchesFormula(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r, d, err := SIPGlare(PaperC, PaperN, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Match() {
			t.Errorf("seed %d (d=%v): %s", seed, d, r)
		}
		// The paper quotes 3560 ms at d's expectation of 3 s.
		if want := 10*PaperN + 11*PaperC + d; r.Measured != want {
			t.Errorf("seed %d: measured %v, want %v", seed, r.Measured, want)
		}
	}
}

func TestAblationsIsolateDelaySources(t *testing.T) {
	rows, err := Ablations(PaperC, PaperN, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("want 6 ablation rows, got %d", len(rows))
	}
	for _, r := range rows {
		if !r.Match() {
			t.Errorf("%s", r)
		}
	}
	// The fully ablated SIP (cached + parallel) must equal the
	// compositional protocol's 2n+3c.
	if rows[3].Measured != 2*PaperN+3*PaperC {
		t.Errorf("removing all SIP-specific delays must recover 2n+3c, got %v", rows[3].Measured)
	}
}

func TestBundlingComparison(t *testing.T) {
	ours, err := BundlingOurs(PaperC, PaperN)
	if err != nil {
		t.Fatal(err)
	}
	sip, err := BundlingSIP(PaperC, PaperN)
	if err != nil {
		t.Fatal(err)
	}
	if !ours.Match() {
		t.Errorf("%s", ours)
	}
	if !sip.Match() {
		t.Errorf("%s", sip)
	}
	// The shape the paper predicts: bundled SIP serializes the two
	// transactions; independent tunnels cost almost nothing extra.
	if sip.Measured < 4*ours.Measured {
		t.Errorf("bundling penalty too small: SIP %v vs ours %v", sip.Measured, ours.Measured)
	}
}

func TestRowFormatting(t *testing.T) {
	r := Row{Name: "x", C: PaperC, N: PaperN, Measured: 128 * time.Millisecond,
		Formula: "2n+3c", Expected: 128 * time.Millisecond}
	if !r.Match() {
		t.Fatal("row should match")
	}
	if s := r.String(); s == "" {
		t.Fatal("empty row string")
	}
}

func TestMessageCounts(t *testing.T) {
	m, err := MessageCounts(PaperC, PaperN, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Ours: 14 signals for the concurrent relink of BOTH directions
	// through both servers (pinned by TestFig13TraceMessageBudget).
	if m.Ours != 14 {
		t.Errorf("ours = %d messages, want 14", m.Ours)
	}
	// SIP common: solicit flow through a relay B2BUA.
	if m.SIPCommon < 8 || m.SIPCommon > 12 {
		t.Errorf("SIP common = %d messages, want 8..12", m.SIPCommon)
	}
	// Glare costs roughly double: two aborted attempts plus the retry.
	if m.SIPGlare <= m.SIPCommon {
		t.Errorf("glare (%d) must cost more than common (%d)", m.SIPGlare, m.SIPCommon)
	}
	t.Log(m)
}

func TestGlareWindow(t *testing.T) {
	res, err := GlareWindow(PaperC, PaperN, 400*time.Millisecond, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.OursConflicts != 0 {
		t.Fatalf("the compositional protocol must never conflict: %d failures", res.OursConflicts)
	}
	// SIP glares while the second op starts inside the first one's
	// vulnerable phase; the window must be substantial (several n+c)
	// but not unbounded.
	if res.SIPWindow < 100*time.Millisecond || res.SIPWindow > 400*time.Millisecond {
		t.Fatalf("SIP glare window = %v, expected a few hundred ms", res.SIPWindow)
	}
	t.Log(res)
}

func TestFig13Jitter(t *testing.T) {
	// With per-signal latency uniform on [n-20ms, n+20ms], every run
	// must still converge (the protocol tolerates variance) and the
	// mean must sit near 2n+3c. The mean is slightly above the formula
	// because the measurement takes a max over the two directions.
	res, err := Fig13Jitter(PaperC, PaperN, 20*time.Millisecond, 200)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := res.Expected-10*time.Millisecond, res.Expected+25*time.Millisecond
	if res.Mean < lo || res.Mean > hi {
		t.Fatalf("mean %v outside [%v, %v]: %s", res.Mean, lo, hi, res)
	}
	if res.Min < res.Expected-3*20*time.Millisecond || res.Max > res.Expected+3*20*time.Millisecond {
		t.Fatalf("extremes outside the 2-hop jitter envelope: %s", res)
	}
	t.Log(res)
}
