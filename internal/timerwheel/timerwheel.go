// Package timerwheel is a shared hierarchical timer wheel for the live
// runtime. Protocol timers (give-up timeouts, prepaid funds clocks,
// hold durations) are coarse — tens of milliseconds to hours — and a
// busy host arms hundreds of thousands of them. One time.Timer per
// protocol timer means one runtime timer heap entry and one firing
// goroutine wakeup each; the wheel replaces that with O(1) insert and
// cancel into tick-indexed buckets, serviced by a single goroutine per
// wheel that sleeps until the next due tick (it does not busy-tick).
//
// The wheel has four levels of 256 slots. Level 0 resolves single
// ticks; each higher level is 256× coarser and cascades into the level
// below as the cursor wraps, exactly like the classic hashed
// hierarchical wheel. At the default 5 ms tick the horizon is ~248
// days. Timers are rounded UP to the next tick boundary, so a timer
// never fires early; it can fire up to one tick late, which is well
// inside protocol timeout tolerances.
//
// There is deliberately no process-global wheel: a single shared wheel
// serializes every timer arm/cancel in the process behind one mutex,
// which is exactly the cross-core contention the sharded box runtime
// exists to avoid. Each runtime shard owns a wheel (NewNamed, so its
// pending count is observable per shard), and subsystems that need a
// wheel outside any shard (the transport reliability layer, standalone
// runners) keep one package-scoped wheel each.
package timerwheel

import (
	"sync"
	"time"

	"ipmedia/internal/telemetry"
)

// MetricPending is the gauge tracking timers currently armed in every
// wheel of the process (with its high-water mark). A wheel created
// with NewNamed additionally tracks its own armed count under
// MetricPending + "." + label, so per-shard wheels are observable
// individually.
const MetricPending = "timerwheel.pending"

const (
	slotBits  = 8
	numSlots  = 1 << slotBits // 256
	slotMask  = numSlots - 1
	numLevels = 4
)

// DefaultTick is the granularity of the shared process wheel: coarse
// enough that an idle-ish wheel wakes rarely, fine enough for the
// shortest protocol timeouts (tens of milliseconds).
const DefaultTick = 5 * time.Millisecond

// Timer is one scheduled callback. The zero value is not usable;
// Schedule creates timers.
type Timer struct {
	fn         func()
	expire     uint64 // absolute tick at which to fire
	next, prev *Timer
	list       *timerList // nil once fired or stopped
	w          *Wheel
}

// Stop cancels the timer. It reports true if the timer was still
// pending (and will now never fire), false if it already fired, is
// firing concurrently, or was stopped before. Like time.Timer.Stop, a
// false return does not wait for a concurrently running callback.
func (t *Timer) Stop() bool {
	w := t.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if t.list == nil {
		return false
	}
	t.list.remove(t)
	t.list = nil
	w.pending--
	w.gauge.Dec()
	w.labelGauge.Dec()
	return true
}

// timerList is an intrusive doubly-linked list of timers (one wheel
// slot, or the consumer's due list).
type timerList struct {
	head, tail *Timer
}

func (l *timerList) pushBack(t *Timer) {
	t.list = l
	t.prev = l.tail
	t.next = nil
	if l.tail != nil {
		l.tail.next = t
	} else {
		l.head = t
	}
	l.tail = t
}

func (l *timerList) remove(t *Timer) {
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		l.head = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	} else {
		l.tail = t.prev
	}
	t.next, t.prev = nil, nil
}

// take empties the list and returns its former head chain.
func (l *timerList) take() *Timer {
	h := l.head
	l.head, l.tail = nil, nil
	return h
}

// Wheel is one hierarchical timer wheel, serviced by one goroutine.
type Wheel struct {
	tick  time.Duration
	start time.Time

	mu      sync.Mutex
	now     uint64 // ticks fully processed
	slots   [numLevels][numSlots]timerList
	pending int

	gauge      *telemetry.Gauge // process-wide aggregate (nil-safe)
	labelGauge *telemetry.Gauge // per-wheel labeled gauge (nil unless NewNamed)

	wake      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// New starts a wheel with the given tick granularity.
func New(tick time.Duration) *Wheel {
	return NewNamed(tick, "")
}

// NewNamed starts a wheel whose armed-timer count is additionally
// tracked under its own labeled gauge (MetricPending + "." + label).
// Runtime shards use this so a hot shard's timer population is
// distinguishable from its siblings'. An empty label is New.
func NewNamed(tick time.Duration, label string) *Wheel {
	if tick <= 0 {
		tick = DefaultTick
	}
	w := &Wheel{
		tick:  tick,
		start: time.Now(),
		gauge: telemetry.G(MetricPending),
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	if label != "" {
		w.labelGauge = telemetry.G(MetricPending + "." + label)
	}
	go w.run()
	return w
}

// Close stops the wheel goroutine. Pending timers never fire. Close
// exists for tests, embedded wheels, and runtime shards tearing down.
func (w *Wheel) Close() {
	w.closeOnce.Do(func() { close(w.done) })
}

// Tick returns the wheel's tick granularity.
func (w *Wheel) Tick() time.Duration { return w.tick }

// Pending returns the number of currently armed timers.
func (w *Wheel) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pending
}

// ticksSince converts a wall-clock instant to the wheel's tick space.
func (w *Wheel) ticksSince(at time.Time) uint64 {
	d := at.Sub(w.start)
	if d <= 0 {
		return 0
	}
	return uint64(d / w.tick)
}

// Schedule arms fn to run once after d. The callback runs on the wheel
// goroutine; it must not block (runners only post an event). Durations
// round up to the next tick, with a one-tick minimum so fn never runs
// synchronously or in the past.
func (w *Wheel) Schedule(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	t := &Timer{fn: fn, w: w}
	now := time.Now()
	// Round the absolute deadline UP to a tick boundary: the timer can
	// fire up to one tick late but never early.
	deadline := now.Sub(w.start) + d
	expire := uint64((deadline + w.tick - 1) / w.tick)
	w.mu.Lock()
	// The cursor only advances while the goroutine services due work;
	// it is anchored to wall-clock ticks here so a stale cursor cannot
	// distort the deadline.
	if wall := w.ticksSince(now); w.pending == 0 && wall > w.now {
		// Nothing could have been due in the skipped interval:
		// fast-forward instead of replaying empty ticks.
		w.now = wall
	}
	t.expire = expire
	if t.expire <= w.now {
		t.expire = w.now + 1
	}
	w.insert(t)
	w.pending++
	w.gauge.Inc()
	w.labelGauge.Inc()
	w.mu.Unlock()
	w.poke()
	return t
}

// insert buckets t by its distance from the cursor. Lock held.
func (w *Wheel) insert(t *Timer) {
	delta := t.expire - w.now
	var lvl uint
	switch {
	case delta < 1<<slotBits:
		lvl = 0
	case delta < 1<<(2*slotBits):
		lvl = 1
	case delta < 1<<(3*slotBits):
		lvl = 2
	default:
		lvl = 3
		if max := uint64(1)<<(4*slotBits) - 1; delta > max {
			// Beyond the horizon (~248 days at the default tick): clamp.
			t.expire = w.now + max
		}
	}
	slot := (t.expire >> (slotBits * lvl)) & slotMask
	w.slots[lvl][slot].pushBack(t)
}

func (w *Wheel) poke() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// run services the wheel: advance to the current wall tick, fire due
// timers, then sleep until the next tick that can hold work.
func (w *Wheel) run() {
	sleep := time.NewTimer(time.Hour)
	defer sleep.Stop()
	var due []*Timer
	for {
		w.mu.Lock()
		due = w.advance(w.ticksSince(time.Now()), due[:0])
		var wait time.Duration = -1
		if w.pending > 0 {
			wait = w.nextWake()
		}
		w.mu.Unlock()

		for _, t := range due {
			t.fn()
			t.fn = nil
		}

		if wait < 0 {
			select {
			case <-w.wake:
			case <-w.done:
				return
			}
			continue
		}
		if !sleep.Stop() {
			select {
			case <-sleep.C:
			default:
			}
		}
		sleep.Reset(wait)
		select {
		case <-sleep.C:
		case <-w.wake:
		case <-w.done:
			return
		}
	}
}

// advance moves the cursor to target, cascading higher levels at their
// boundaries and collecting due timers into out. Lock held.
func (w *Wheel) advance(target uint64, out []*Timer) []*Timer {
	for w.now < target {
		w.now++
		if w.now&slotMask == 0 {
			w.cascade(1)
		}
		for t := w.slots[0][w.now&slotMask].take(); t != nil; {
			next := t.next
			t.next, t.prev, t.list = nil, nil, nil
			w.pending--
			w.gauge.Dec()
			w.labelGauge.Dec()
			out = append(out, t)
			t = next
		}
	}
	return out
}

// cascade redistributes the level-l slot at the cursor into lower
// levels (or fires what is already due). Lock held.
func (w *Wheel) cascade(l uint) {
	if l >= numLevels {
		return
	}
	slot := (w.now >> (slotBits * l)) & slotMask
	if slot == 0 {
		w.cascade(l + 1)
	}
	for t := w.slots[l][slot].take(); t != nil; {
		next := t.next
		t.next, t.prev, t.list = nil, nil, nil
		w.insert(t)
		t = next
	}
}

// nextWake returns how long to sleep until the next tick that can fire
// or cascade work. Lock held; pending > 0.
func (w *Wheel) nextWake() time.Duration {
	// The earliest level-0 timer fires at its own tick.
	for i := uint64(1); i <= numSlots; i++ {
		if w.slots[0][(w.now+i)&slotMask].head != nil {
			return w.untilTick(w.now + i)
		}
	}
	// Nothing in level 0: the next possible event is the cascade at the
	// level-0 wrap, at most 256 ticks away.
	return w.untilTick((w.now &^ uint64(slotMask)) + numSlots)
}

func (w *Wheel) untilTick(tick uint64) time.Duration {
	d := time.Until(w.start.Add(time.Duration(tick) * w.tick))
	if d < 0 {
		return 0
	}
	return d
}
