package timerwheel

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ipmedia/internal/telemetry"
)

// TestFire: a scheduled timer fires, once, and not early.
func TestFire(t *testing.T) {
	w := New(time.Millisecond)
	defer w.Close()
	start := time.Now()
	fired := make(chan time.Duration, 1)
	w.Schedule(20*time.Millisecond, func() { fired <- time.Since(start) })
	select {
	case d := <-fired:
		if d < 20*time.Millisecond {
			t.Fatalf("fired early: %v < 20ms", d)
		}
		if d > 2*time.Second {
			t.Fatalf("fired way late: %v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
	select {
	case <-fired:
		t.Fatal("timer fired twice")
	case <-time.After(50 * time.Millisecond):
	}
}

// TestStop: a stopped timer never fires and Stop reports the
// cancellation exactly once.
func TestStop(t *testing.T) {
	w := New(time.Millisecond)
	defer w.Close()
	var fired atomic.Int32
	tm := w.Schedule(50*time.Millisecond, func() { fired.Add(1) })
	if !tm.Stop() {
		t.Fatal("Stop on a pending timer must report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop must report false")
	}
	time.Sleep(120 * time.Millisecond)
	if n := fired.Load(); n != 0 {
		t.Fatalf("stopped timer fired %d times", n)
	}
	if p := w.Pending(); p != 0 {
		t.Fatalf("pending = %d after stop", p)
	}
}

// TestOrder: timers fire in deadline order when deadlines are spread
// across distinct ticks.
func TestOrder(t *testing.T) {
	w := New(2 * time.Millisecond)
	defer w.Close()
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	for i := 4; i >= 0; i-- { // schedule in reverse
		i := i
		w.Schedule(time.Duration(20+20*i)*time.Millisecond, func() {
			mu.Lock()
			got = append(got, i)
			if len(got) == 5 {
				close(done)
			}
			mu.Unlock()
		})
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timers did not all fire")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != i {
			t.Fatalf("fire order %v, want ascending", got)
		}
	}
}

// TestCascade: a deadline beyond level 0's horizon (256 ticks) must
// cascade down and still fire at the right time, not at the wrap.
func TestCascade(t *testing.T) {
	w := New(time.Millisecond) // level-0 horizon: 256 ms
	defer w.Close()
	start := time.Now()
	fired := make(chan time.Duration, 1)
	w.Schedule(400*time.Millisecond, func() { fired <- time.Since(start) })
	select {
	case d := <-fired:
		if d < 400*time.Millisecond {
			t.Fatalf("cascaded timer fired early: %v", d)
		}
		if d > 3*time.Second {
			t.Fatalf("cascaded timer fired too late: %v", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cascaded timer never fired")
	}
}

// TestLongIdleThenSchedule: after the wheel has been idle (cursor
// stale), a fresh short timer must still honor its full delay.
func TestLongIdleThenSchedule(t *testing.T) {
	w := New(time.Millisecond)
	defer w.Close()
	fired := make(chan struct{})
	w.Schedule(5*time.Millisecond, func() { close(fired) })
	<-fired
	time.Sleep(300 * time.Millisecond) // wheel idle, cursor lags

	start := time.Now()
	again := make(chan time.Duration, 1)
	w.Schedule(30*time.Millisecond, func() { again <- time.Since(start) })
	select {
	case d := <-again:
		if d < 30*time.Millisecond {
			t.Fatalf("timer after idle fired early: %v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer after idle never fired")
	}
}

// TestPendingGauge: the timerwheel.pending gauge tracks arms, fires,
// and cancels, keeping its high-water mark.
func TestPendingGauge(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)
	defer telemetry.SetDefault(nil)

	w := New(time.Millisecond)
	defer w.Close()
	g := reg.Gauge(MetricPending)

	var timers []*Timer
	for i := 0; i < 10; i++ {
		timers = append(timers, w.Schedule(time.Hour, func() {}))
	}
	if v := g.Value(); v != 10 {
		t.Fatalf("pending gauge = %d, want 10", v)
	}
	for _, tm := range timers {
		tm.Stop()
	}
	if v := g.Value(); v != 0 {
		t.Fatalf("pending gauge after cancel = %d, want 0", v)
	}
	if hwm := g.HighWater(); hwm < 10 {
		t.Fatalf("pending high-water = %d, want >= 10", hwm)
	}
}

// TestCancelVsFire races Stop against the firing path: every timer
// must either fire exactly once or be cancelled (Stop()==true), never
// both and never neither.
func TestCancelVsFire(t *testing.T) {
	w := New(time.Millisecond)
	defer w.Close()
	const n = 400
	var fired atomic.Int64
	var stopped atomic.Int64
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		d := time.Duration(rng.Intn(4)) * time.Millisecond
		tm := w.Schedule(d, func() { fired.Add(1) })
		wg.Add(1)
		go func(tm *Timer, spin time.Duration) {
			defer wg.Done()
			time.Sleep(spin)
			if tm.Stop() {
				stopped.Add(1)
			}
		}(tm, time.Duration(rng.Intn(4))*time.Millisecond)
	}
	wg.Wait()
	// Everything not cancelled must eventually fire.
	deadline := time.Now().Add(5 * time.Second)
	for fired.Load()+stopped.Load() != n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := fired.Load() + stopped.Load(); got != n {
		t.Fatalf("fired %d + stopped %d = %d, want %d", fired.Load(), stopped.Load(), got, n)
	}
	if p := w.Pending(); p != 0 {
		t.Fatalf("pending = %d after all resolved", p)
	}
}

// TestManyTimersSharedWheel: the load-harness shape — tens of
// thousands of concurrent arms and cancels against one wheel.
func TestManyTimersSharedWheel(t *testing.T) {
	w := New(time.Millisecond)
	defer w.Close()
	const n = 20000
	var fired atomic.Int64
	for i := 0; i < n; i++ {
		w.Schedule(time.Duration(1+i%50)*time.Millisecond, func() { fired.Add(1) })
	}
	deadline := time.Now().Add(10 * time.Second)
	for fired.Load() != n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := fired.Load(); got != n {
		t.Fatalf("fired %d of %d", got, n)
	}
}
