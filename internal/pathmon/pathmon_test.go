package pathmon

import (
	"sync"
	"testing"
	"time"

	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/ltl"
	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
	"ipmedia/internal/transport"
)

func await(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestMonitorSnapshot builds a live three-box path, watches it come
// up, and checks the monitor's path shape, classification, and
// observation before and after the channel is established.
func TestMonitorSnapshot(t *testing.T) {
	net := transport.NewMemNetwork()
	prof := func(name string, port int) *core.EndpointProfile {
		return core.NewEndpointProfile(name, "h"+name, port, []sig.Codec{sig.G711}, []sig.Codec{sig.G711})
	}
	l := box.NewRunner(box.New("L", prof("L", 1)), net)
	r := box.NewRunner(box.New("R", prof("R", 2)), net)
	mid := box.NewRunner(box.New("M", core.ServerProfile{Name: "M"}), net)
	defer l.Stop()
	defer r.Stop()
	defer mid.Stop()
	if err := l.Listen("L", nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Listen("R", nil); err != nil {
		t.Fatal(err)
	}
	if err := mid.Connect("cl", "L"); err != nil {
		t.Fatal(err)
	}
	if err := mid.Connect("cr", "R"); err != nil {
		t.Fatal(err)
	}
	mid.Do(func(ctx *box.Ctx) {
		ctx.SetGoal(core.NewFlowLink(box.TunnelSlot("cl", 0), box.TunnelSlot("cr", 0)))
	})

	m := New()
	m.AddBox(l)
	m.AddBox(r)
	m.AddBox(mid)
	m.Tunnel("M", box.TunnelSlot("cl", 0), "L", box.TunnelSlot("in0", 0))
	m.Tunnel("M", box.TunnelSlot("cr", 0), "R", box.TunnelSlot("in0", 0))

	// Before anything opens: one path, bothClosed, unspecified ends
	// (the slots have no goals yet at the devices).
	reports, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("want 1 path, got %v", reports)
	}
	if !reports[0].Obs.BothClosed {
		t.Fatalf("fresh path must observe bothClosed: %v", reports[0])
	}

	// Bring it up: open at L, hold at R.
	await(t, "L's channel", func() bool {
		ok := false
		l.Do(func(ctx *box.Ctx) { ok = ctx.Box().HasChannel("in0") })
		return ok
	})
	l.Do(func(ctx *box.Ctx) {
		ctx.SetGoal(core.NewOpenSlot(box.TunnelSlot("in0", 0), sig.Audio, l.Box().Profile()))
	})
	await(t, "path flowing", func() bool {
		reports, err := m.Snapshot()
		if err != nil {
			return false
		}
		rep, ok := Find(reports, "L", "R")
		return ok && rep.Obs.BothFlowing
	})
	reports, err = m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := Find(reports, "L", "R")
	if !ok {
		t.Fatalf("no L..R path: %v", reports)
	}
	if rep.Path.Flowlinks() != 1 || rep.Path.Hops() != 2 {
		t.Fatalf("path shape: %v", rep.Path)
	}
	if !rep.Specified || rep.Spec != ltl.RecFlowing {
		t.Fatalf("spec = %v (specified=%v), want □◇bothFlowing", rep.Spec, rep.Specified)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
	if _, found := Find(reports, "L", "nobody"); found {
		t.Fatal("Find must miss unknown boxes")
	}
}

// TestSnapshotConcurrentWithRunners pins the monitor's locking
// contract: Snapshot, AddBox, and Tunnel may be called from any
// goroutine while the monitored boxes are live and their goals are
// churning. Run under -race this exercises the per-box freeze (Do),
// the monitor's own mutex, and the telemetry counters Snapshot bumps.
func TestSnapshotConcurrentWithRunners(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)
	defer telemetry.SetDefault(nil)

	net := transport.NewMemNetwork()
	prof := func(name string, port int) *core.EndpointProfile {
		return core.NewEndpointProfile(name, "h"+name, port, []sig.Codec{sig.G711}, []sig.Codec{sig.G711})
	}
	l := box.NewRunner(box.New("L", prof("L", 1)), net)
	r := box.NewRunner(box.New("R", prof("R", 2)), net)
	mid := box.NewRunner(box.New("M", core.ServerProfile{Name: "M"}), net)
	defer l.Stop()
	defer r.Stop()
	defer mid.Stop()
	if err := l.Listen("L", nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Listen("R", nil); err != nil {
		t.Fatal(err)
	}
	if err := mid.Connect("cl", "L"); err != nil {
		t.Fatal(err)
	}
	if err := mid.Connect("cr", "R"); err != nil {
		t.Fatal(err)
	}
	mid.Do(func(ctx *box.Ctx) {
		ctx.SetGoal(core.NewFlowLink(box.TunnelSlot("cl", 0), box.TunnelSlot("cr", 0)))
	})
	await(t, "L's channel", func() bool {
		ok := false
		l.Do(func(ctx *box.Ctx) { ok = ctx.Box().HasChannel("in0") })
		return ok
	})

	m := New()
	m.AddBox(l)
	m.AddBox(r)
	m.AddBox(mid)
	m.Tunnel("M", box.TunnelSlot("cl", 0), "L", box.TunnelSlot("in0", 0))
	m.Tunnel("M", box.TunnelSlot("cr", 0), "R", box.TunnelSlot("in0", 0))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Churn the goal at L between open and close so slot states and
	// goal kinds change under the monitor's feet.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				l.Do(func(ctx *box.Ctx) {
					ctx.SetGoal(core.NewOpenSlot(box.TunnelSlot("in0", 0), sig.Audio, l.Box().Profile()))
				})
			} else {
				l.Do(func(ctx *box.Ctx) {
					ctx.SetGoal(core.NewCloseSlot(box.TunnelSlot("in0", 0)))
				})
			}
		}
	}()
	// Concurrent (idempotent) registration while snapshotting.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.AddBox(l)
			}
		}
	}()
	for i := 0; i < 100; i++ {
		if _, err := m.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if got := reg.Counter(MetricSnapshots).Value(); got != 100 {
		t.Fatalf("snapshots = %d, want 100", got)
	}
	if evals := reg.Counter(MetricEvaluations).Value(); evals < 100 {
		t.Fatalf("prop_evaluations = %d, want >= 100", evals)
	}
}
