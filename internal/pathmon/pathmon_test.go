package pathmon

import (
	"testing"
	"time"

	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/ltl"
	"ipmedia/internal/sig"
	"ipmedia/internal/transport"
)

func await(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestMonitorSnapshot builds a live three-box path, watches it come
// up, and checks the monitor's path shape, classification, and
// observation before and after the channel is established.
func TestMonitorSnapshot(t *testing.T) {
	net := transport.NewMemNetwork()
	prof := func(name string, port int) *core.EndpointProfile {
		return core.NewEndpointProfile(name, "h"+name, port, []sig.Codec{sig.G711}, []sig.Codec{sig.G711})
	}
	l := box.NewRunner(box.New("L", prof("L", 1)), net)
	r := box.NewRunner(box.New("R", prof("R", 2)), net)
	mid := box.NewRunner(box.New("M", core.ServerProfile{Name: "M"}), net)
	defer l.Stop()
	defer r.Stop()
	defer mid.Stop()
	if err := l.Listen("L", nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Listen("R", nil); err != nil {
		t.Fatal(err)
	}
	if err := mid.Connect("cl", "L"); err != nil {
		t.Fatal(err)
	}
	if err := mid.Connect("cr", "R"); err != nil {
		t.Fatal(err)
	}
	mid.Do(func(ctx *box.Ctx) {
		ctx.SetGoal(core.NewFlowLink(box.TunnelSlot("cl", 0), box.TunnelSlot("cr", 0)))
	})

	m := New()
	m.AddBox(l)
	m.AddBox(r)
	m.AddBox(mid)
	m.Tunnel("M", box.TunnelSlot("cl", 0), "L", box.TunnelSlot("in0", 0))
	m.Tunnel("M", box.TunnelSlot("cr", 0), "R", box.TunnelSlot("in0", 0))

	// Before anything opens: one path, bothClosed, unspecified ends
	// (the slots have no goals yet at the devices).
	reports, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("want 1 path, got %v", reports)
	}
	if !reports[0].Obs.BothClosed {
		t.Fatalf("fresh path must observe bothClosed: %v", reports[0])
	}

	// Bring it up: open at L, hold at R.
	await(t, "L's channel", func() bool {
		ok := false
		l.Do(func(ctx *box.Ctx) { ok = ctx.Box().HasChannel("in0") })
		return ok
	})
	l.Do(func(ctx *box.Ctx) {
		ctx.SetGoal(core.NewOpenSlot(box.TunnelSlot("in0", 0), sig.Audio, l.Box().Profile()))
	})
	await(t, "path flowing", func() bool {
		reports, err := m.Snapshot()
		if err != nil {
			return false
		}
		rep, ok := Find(reports, "L", "R")
		return ok && rep.Obs.BothFlowing
	})
	reports, err = m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := Find(reports, "L", "R")
	if !ok {
		t.Fatalf("no L..R path: %v", reports)
	}
	if rep.Path.Flowlinks() != 1 || rep.Path.Hops() != 2 {
		t.Fatalf("path shape: %v", rep.Path)
	}
	if !rep.Specified || rep.Spec != ltl.RecFlowing {
		t.Fatalf("spec = %v (specified=%v), want □◇bothFlowing", rep.Spec, rep.Specified)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
	if _, found := Find(reports, "L", "nobody"); found {
		t.Fatal("Find must miss unknown boxes")
	}
}
