// Serializable tracker reports. A multi-process fleet checks the
// paper's §V formulas per shard — each shard process runs its own
// Monitor and Tracker over its own boxes — so the fleet-wide verdict
// is a merge of per-shard reports shipped over the control channel.
// Report is that wire form: JSON, with every slice non-null, so a
// clean shard serializes to "violations": [] rather than null and a
// gate that fails on null cannot misfire on an innocent report.
package pathmon

import (
	"encoding/json"
	"time"
)

// Report is a serializable summary of one tracker's run.
type Report struct {
	Polls       int      `json:"polls"`
	Violations  []string `json:"violations"`
	Wedged      []string `json:"wedged"`
	Recoveries  int      `json:"recoveries"`
	MaxRecovery int64    `json:"max_recovery_ns"`
}

// Report summarizes the tracker without a final drain — violations
// accumulated so far and recovery observations.
func (t *Tracker) Report() Report {
	st := t.Stats()
	r := Report{
		Polls:      st.Polls,
		Violations: nonNull(st.Violations),
		Wedged:     []string{},
	}
	r.Recoveries = len(st.Recoveries)
	for _, d := range st.Recoveries {
		if int64(d) > r.MaxRecovery {
			r.MaxRecovery = int64(d)
		}
	}
	return r
}

// FinalReport summarizes the tracker after quiesce: Report plus the
// wedged-path classification from a final drain poll. An error from
// the drain is itself a wedge — a monitor that cannot answer is not a
// clean system.
func (t *Tracker) FinalReport() Report {
	r := t.Report()
	wedged, err := t.Drain()
	if err != nil {
		wedged = append(wedged, "drain failed: "+err.Error())
	}
	r.Wedged = nonNull(wedged)
	return r
}

// Merge folds other into r: counts add, lists concatenate, the max
// recovery is the fleet max.
func (r Report) Merge(other Report) Report {
	r.Polls += other.Polls
	r.Violations = append(nonNull(r.Violations), other.Violations...)
	r.Wedged = append(nonNull(r.Wedged), other.Wedged...)
	r.Recoveries += other.Recoveries
	if other.MaxRecovery > r.MaxRecovery {
		r.MaxRecovery = other.MaxRecovery
	}
	return r
}

// MaxRecoveryDuration is MaxRecovery as a duration.
func (r Report) MaxRecoveryDuration() time.Duration { return time.Duration(r.MaxRecovery) }

// Encode renders the report as JSON (never fails: the type is plain).
func (r Report) Encode() string {
	r.Violations = nonNull(r.Violations)
	r.Wedged = nonNull(r.Wedged)
	b, _ := json.Marshal(r)
	return string(b)
}

// DecodeReport parses an encoded report, normalizing null slices away.
func DecodeReport(s string) (Report, error) {
	var r Report
	if err := json.Unmarshal([]byte(s), &r); err != nil {
		return r, err
	}
	r.Violations = nonNull(r.Violations)
	r.Wedged = nonNull(r.Wedged)
	return r, nil
}

// nonNull is the null-slice guard: JSON-encoding a nil slice yields
// null, and null reads as "unknown" where the gates must read "none".
func nonNull(s []string) []string {
	if s == nil {
		return []string{}
	}
	return s
}
