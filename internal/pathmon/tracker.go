// Tracker: continuous runtime verification of the Section V formulas.
// A Snapshot is one instant; the temporal formulas quantify over whole
// executions. The Tracker polls the Monitor repeatedly, keeps a trace
// per signaling path, and checks the bounded-time reading of each
// spec live:
//
//   - ◇□bothClosed and ◇□¬bothFlowing (stability): media flowing on
//     such a path is tolerated only transiently; flowing continuously
//     past the bound is a violation.
//   - □◇bothFlowing (recurrence): the path must revisit bothFlowing;
//     an outage longer than the bound is a violation, and every
//     recovered outage contributes its duration to the recovery
//     latency histogram — the number the chaos harness plots against
//     the fault profile.
//   - The hold/hold disjunction is checked as: once the path has ever
//     flowed it is held to the recurrence reading, otherwise to the
//     stability reading.
//
// The bound turns liveness into something falsifiable at runtime: an
// unbounded ◇ can never be refuted by a finite trace, but a recovery
// layer that cannot repair a path within the bound has failed the
// chaos test even if some later miracle would have saved it.
package pathmon

import (
	"fmt"
	"sync"
	"time"

	"ipmedia/internal/ltl"
	"ipmedia/internal/telemetry"
)

// Telemetry instrument names exported by the tracker.
const (
	// MetricBoundViolations counts bounded-time violations of the
	// Section V formulas observed live.
	MetricBoundViolations = "pathmon.bound_violations"
	// MetricRecoveryLatency is the histogram of recurrence-path outage
	// durations that ended in recovery.
	MetricRecoveryLatency = "pathmon.recovery_latency"
)

// Tracker checks the path formulas continuously over Monitor polls.
type Tracker struct {
	mon   *Monitor
	bound time.Duration

	mu         sync.Mutex
	paths      map[string]*pathTrace
	violations []string
	recovered  []time.Duration
	polls      int

	violCounter *telemetry.Counter
	recoveryH   *telemetry.Histogram
}

// pathTrace is the per-path temporal state between polls.
type pathTrace struct {
	lastSeen time.Time
	// flowing tracks the recurrence reading: when the path is not
	// bothFlowing, downSince dates the outage.
	flowing     bool
	everFlowing bool
	downSince   time.Time
	reported    bool // this outage / flowing episode already flagged
	// flowingSince dates a bothFlowing episode on a stability path.
	flowingSince time.Time
}

// NewTracker wraps a Monitor with live formula checking. bound is the
// patience per formula: how long a stability path may flow, and how
// long a recurrence path may stay down, before the tracker calls it a
// violation.
func NewTracker(m *Monitor, bound time.Duration) *Tracker {
	return &Tracker{
		mon:         m,
		bound:       bound,
		paths:       map[string]*pathTrace{},
		violCounter: telemetry.C(MetricBoundViolations),
		recoveryH:   telemetry.H(MetricRecoveryLatency),
	}
}

// Poll snapshots the monitor and advances every path's temporal state.
// It returns the instantaneous reports for callers that also want the
// snapshot view.
func (t *Tracker) Poll() ([]PathReport, error) {
	reports, err := t.mon.Snapshot()
	if err != nil {
		return nil, err
	}
	now := time.Now()
	t.mu.Lock()
	t.polls++
	for _, rep := range reports {
		if !rep.Specified {
			continue
		}
		key := rep.Path.String()
		tr := t.paths[key]
		if tr == nil {
			tr = &pathTrace{downSince: now}
			t.paths[key] = tr
		}
		tr.lastSeen = now
		t.advance(key, rep, tr, now)
	}
	// Paths no longer present resolved themselves: their slots were
	// destroyed, which observes as closed forever after — every formula
	// is satisfied from here, so the trace is dropped.
	for key, tr := range t.paths {
		if tr.lastSeen != now {
			delete(t.paths, key)
		}
	}
	t.mu.Unlock()
	return reports, nil
}

// advance applies one observation to one path's state. Lock held.
func (t *Tracker) advance(key string, rep PathReport, tr *pathTrace, now time.Time) {
	spec := rep.Spec
	if spec == ltl.ClosedOrFlowing {
		// The disjunction commits once the path has flowed: from then on
		// it is held to the recurrence reading.
		if tr.everFlowing {
			spec = ltl.RecFlowing
		} else if rep.Obs.BothFlowing {
			tr.everFlowing = true
			spec = ltl.RecFlowing
		} else {
			spec = ltl.StabClosed
		}
	}
	switch spec {
	case ltl.StabClosed, ltl.StabNotFlowing:
		if !rep.Obs.BothFlowing {
			tr.flowingSince = time.Time{}
			tr.reported = false
			return
		}
		if tr.flowingSince.IsZero() {
			tr.flowingSince = now
			return
		}
		if !tr.reported && now.Sub(tr.flowingSince) > t.bound {
			tr.reported = true
			t.violate("%s: %s: bothFlowing for %v (bound %v)",
				key, rep.Spec, now.Sub(tr.flowingSince).Round(time.Millisecond), t.bound)
		}
	case ltl.RecFlowing:
		if rep.Obs.BothFlowing {
			if !tr.flowing {
				if tr.everFlowing && !tr.downSince.IsZero() {
					d := now.Sub(tr.downSince)
					t.recoveryH.Observe(d)
					if len(t.recovered) < 65536 {
						t.recovered = append(t.recovered, d)
					}
				}
				tr.flowing = true
				tr.reported = false
			}
			tr.everFlowing = true
			return
		}
		if tr.flowing {
			tr.flowing = false
			tr.downSince = now
			return
		}
		if !tr.reported && now.Sub(tr.downSince) > t.bound {
			tr.reported = true
			t.violate("%s: %s: not bothFlowing for %v (bound %v)",
				key, rep.Spec, now.Sub(tr.downSince).Round(time.Millisecond), t.bound)
		}
	}
}

// violate records one bounded-time formula violation. Lock held.
func (t *Tracker) violate(format string, args ...any) {
	t.violCounter.Inc()
	if len(t.violations) < 256 {
		t.violations = append(t.violations, fmt.Sprintf(format, args...))
	}
}

// Drain performs a final poll after the system has been asked to
// quiesce and returns the wedged paths: specified paths whose state
// contradicts the quiescent reading of their current spec (a stability
// path still flowing, a recurrence path not flowing — a slot stuck
// half-open shows up here as a path that is neither closed nor
// flowing).
func (t *Tracker) Drain() ([]string, error) {
	reports, err := t.mon.Snapshot()
	if err != nil {
		return nil, err
	}
	return wedgedIn(reports), nil
}

// wedgedIn classifies quiescent-state reports; see Drain.
func wedgedIn(reports []PathReport) []string {
	var wedged []string
	for _, rep := range reports {
		if !rep.Specified {
			continue
		}
		bad := false
		switch rep.Spec {
		case ltl.StabClosed:
			bad = !rep.Obs.BothClosed
		case ltl.StabNotFlowing:
			bad = rep.Obs.BothFlowing
		case ltl.RecFlowing:
			bad = !rep.Obs.BothFlowing
		case ltl.ClosedOrFlowing:
			bad = !rep.Obs.BothClosed && !rep.Obs.BothFlowing
		}
		if bad {
			wedged = append(wedged, fmt.Sprintf("%s: quiescent state contradicts %s (closed=%v flowing=%v)",
				rep.Path, rep.Spec, rep.Obs.BothClosed, rep.Obs.BothFlowing))
		}
	}
	return wedged
}

// TrackerStats summarizes a tracking run.
type TrackerStats struct {
	Polls      int
	Violations []string
	// Recoveries are the outage durations of recurrence paths that came
	// back, the raw data behind the recovery latency histogram.
	Recoveries []time.Duration
}

// Stats returns a copy of the accumulated tracking state.
func (t *Tracker) Stats() TrackerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TrackerStats{
		Polls:      t.polls,
		Violations: append([]string(nil), t.violations...),
		Recoveries: append([]time.Duration(nil), t.recovered...),
	}
}
