package pathmon

import (
	"strings"
	"testing"
)

// A clean report must serialize with empty arrays, never null: the
// fleet gates treat null as "unknown" and fail.
func TestReportEncodeNeverNull(t *testing.T) {
	enc := Report{}.Encode()
	if strings.Contains(enc, "null") {
		t.Fatalf("clean report encodes null: %s", enc)
	}
	dec, err := DecodeReport(`{"polls":3,"violations":null,"wedged":null}`)
	if err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
	if dec.Violations == nil || dec.Wedged == nil {
		t.Fatalf("decode left null slices: %+v", dec)
	}
	if strings.Contains(dec.Encode(), "null") {
		t.Fatalf("re-encode reintroduced null: %s", dec.Encode())
	}
}

func TestReportMerge(t *testing.T) {
	a := Report{Polls: 2, Violations: []string{"v1"}, Recoveries: 1, MaxRecovery: 100}
	b := Report{Polls: 3, Wedged: []string{"w1"}, Recoveries: 2, MaxRecovery: 250}
	m := a.Merge(b)
	if m.Polls != 5 || len(m.Violations) != 1 || len(m.Wedged) != 1 ||
		m.Recoveries != 3 || m.MaxRecovery != 250 {
		t.Fatalf("merge: %+v", m)
	}
	// Merging zero-value reports must not introduce nils.
	z := Report{}.Merge(Report{})
	if z.Violations == nil || z.Wedged == nil {
		t.Fatalf("zero merge left nils: %+v", z)
	}
}

// Round-trip through the wire form used on the control channel.
func TestReportRoundTrip(t *testing.T) {
	r := Report{Polls: 7, Violations: []string{"a", "b"}, Wedged: []string{"c"},
		Recoveries: 2, MaxRecovery: 1234}
	got, err := DecodeReport(r.Encode())
	if err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
	if got.Polls != 7 || len(got.Violations) != 2 || len(got.Wedged) != 1 ||
		got.Recoveries != 2 || got.MaxRecovery != 1234 {
		t.Fatalf("round trip: %+v", got)
	}
}
