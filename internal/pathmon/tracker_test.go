package pathmon

import (
	"testing"
	"time"

	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/ltl"
	"ipmedia/internal/sig"
	"ipmedia/internal/telemetry"
	"ipmedia/internal/transport"
)

// threeBoxPath builds the L -- M -- R topology of the monitor tests:
// a flowlink at M joining one tunnel to each device, and a monitor
// wired with both tunnels. lCodecs/rCodecs control media agreement.
func threeBoxPath(t *testing.T, lCodecs, rCodecs []sig.Codec) (*Monitor, *box.Runner) {
	t.Helper()
	net := transport.NewMemNetwork()
	l := box.NewRunner(box.New("L", core.NewEndpointProfile("L", "hL", 1, lCodecs, lCodecs)), net)
	r := box.NewRunner(box.New("R", core.NewEndpointProfile("R", "hR", 2, rCodecs, rCodecs)), net)
	mid := box.NewRunner(box.New("M", core.ServerProfile{Name: "M"}), net)
	t.Cleanup(func() { l.Stop(); r.Stop(); mid.Stop() })
	for _, step := range []func() error{
		func() error { return l.Listen("L", nil) },
		func() error { return r.Listen("R", nil) },
		func() error { return mid.Connect("cl", "L") },
		func() error { return mid.Connect("cr", "R") },
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	mid.Do(func(ctx *box.Ctx) {
		ctx.SetGoal(core.NewFlowLink(box.TunnelSlot("cl", 0), box.TunnelSlot("cr", 0)))
	})
	await(t, "L's channel", func() bool {
		ok := false
		l.Do(func(ctx *box.Ctx) { ok = ctx.Box().HasChannel("in0") })
		return ok
	})
	m := New()
	m.AddBox(l)
	m.AddBox(r)
	m.AddBox(mid)
	m.Tunnel("M", box.TunnelSlot("cl", 0), "L", box.TunnelSlot("in0", 0))
	m.Tunnel("M", box.TunnelSlot("cr", 0), "R", box.TunnelSlot("in0", 0))
	return m, l
}

// TestTrackerRecoveryAndQuiescence: a recurrence path that is knocked
// down and repaired contributes a recovery latency observation and no
// violation; after a clean close, Drain reports nothing wedged.
func TestTrackerRecoveryAndQuiescence(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)
	defer telemetry.SetDefault(nil)
	g711 := []sig.Codec{sig.G711}
	m, l := threeBoxPath(t, g711, g711)
	tk := NewTracker(m, 5*time.Second)

	open := func() {
		l.Do(func(ctx *box.Ctx) {
			ctx.SetGoal(core.NewOpenSlot(box.TunnelSlot("in0", 0), sig.Audio, l.Box().Profile()))
		})
	}
	closeGoal := func() {
		l.Do(func(ctx *box.Ctx) {
			ctx.SetGoal(core.NewCloseSlot(box.TunnelSlot("in0", 0)))
		})
	}
	pollUntil := func(what string, pred func([]PathReport) bool) {
		t.Helper()
		await(t, what, func() bool {
			reports, err := tk.Poll()
			if err != nil {
				t.Fatal(err)
			}
			return pred(reports)
		})
	}
	flowing := func(reports []PathReport) bool {
		rep, ok := Find(reports, "L", "R")
		return ok && rep.Obs.BothFlowing
	}

	open()
	pollUntil("path flowing", flowing)
	// Perturb and repair: close, watch it go down, reopen.
	closeGoal()
	pollUntil("path down", func(r []PathReport) bool { return !flowing(r) })
	open()
	pollUntil("path flowing again", flowing)

	st := tk.Stats()
	if len(st.Violations) != 0 {
		t.Fatalf("repaired path produced violations: %v", st.Violations)
	}
	if len(st.Recoveries) == 0 {
		t.Fatal("repaired outage produced no recovery observation")
	}
	if reg.Histogram(MetricRecoveryLatency).Snapshot().Count == 0 {
		t.Fatal("recovery latency histogram empty")
	}

	// Quiesce and drain: nothing may be wedged.
	closeGoal()
	pollUntil("path closed", func(reports []PathReport) bool {
		rep, ok := Find(reports, "L", "R")
		return ok && rep.Obs.BothClosed
	})
	wedged, err := tk.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(wedged) != 0 {
		t.Fatalf("clean shutdown left wedged paths: %v", wedged)
	}
}

// rep builds a synthetic specified report for white-box advance tests.
func rep(spec ltl.PathProp, closed, flowing bool) PathReport {
	return PathReport{Spec: spec, Specified: true,
		Obs: ltl.Obs{BothClosed: closed, BothFlowing: flowing}}
}

// TestTrackerBoundViolation drives the per-path temporal state machine
// directly: an outage on a recurrence path is flagged exactly once per
// outage when the bound expires, and a new outage after recovery is
// flagged again.
func TestTrackerBoundViolation(t *testing.T) {
	tk := NewTracker(New(), 50*time.Millisecond)
	tr := &pathTrace{}
	t0 := time.Now()
	at := func(d time.Duration) time.Time { return t0.Add(d) }

	// Flow, then go down: no violation until the bound expires.
	tk.advance("p", rep(ltl.RecFlowing, false, true), tr, at(0))
	tk.advance("p", rep(ltl.RecFlowing, false, false), tr, at(10*time.Millisecond))
	tk.advance("p", rep(ltl.RecFlowing, false, false), tr, at(40*time.Millisecond))
	if n := len(tk.Stats().Violations); n != 0 {
		t.Fatalf("violation before bound expired: %v", tk.Stats().Violations)
	}
	tk.advance("p", rep(ltl.RecFlowing, false, false), tr, at(70*time.Millisecond))
	tk.advance("p", rep(ltl.RecFlowing, false, false), tr, at(90*time.Millisecond))
	if n := len(tk.Stats().Violations); n != 1 {
		t.Fatalf("outage past bound flagged %d times, want 1", n)
	}
	// Recovery: latency recorded from the start of the outage.
	tk.advance("p", rep(ltl.RecFlowing, false, true), tr, at(100*time.Millisecond))
	st := tk.Stats()
	if len(st.Recoveries) != 1 || st.Recoveries[0] != 90*time.Millisecond {
		t.Fatalf("recoveries = %v, want [90ms]", st.Recoveries)
	}
	// A second outage is a fresh violation.
	tk.advance("p", rep(ltl.RecFlowing, false, false), tr, at(110*time.Millisecond))
	tk.advance("p", rep(ltl.RecFlowing, false, false), tr, at(200*time.Millisecond))
	if n := len(tk.Stats().Violations); n != 2 {
		t.Fatalf("second outage flagged %d times total, want 2", n)
	}

	// Stability spec: transient flowing tolerated, sustained flagged once.
	trS := &pathTrace{}
	tk2 := NewTracker(New(), 50*time.Millisecond)
	tk2.advance("s", rep(ltl.StabClosed, false, true), trS, at(0))
	tk2.advance("s", rep(ltl.StabClosed, true, false), trS, at(10*time.Millisecond))
	if n := len(tk2.Stats().Violations); n != 0 {
		t.Fatalf("transient flowing flagged: %v", tk2.Stats().Violations)
	}
	tk2.advance("s", rep(ltl.StabClosed, false, true), trS, at(20*time.Millisecond))
	tk2.advance("s", rep(ltl.StabClosed, false, true), trS, at(100*time.Millisecond))
	tk2.advance("s", rep(ltl.StabClosed, false, true), trS, at(150*time.Millisecond))
	if n := len(tk2.Stats().Violations); n != 1 {
		t.Fatalf("sustained flowing on stability path flagged %d times, want 1", n)
	}

	// hold/hold: before ever flowing it is held to stability; once it
	// flows, to recurrence.
	trH := &pathTrace{}
	tk3 := NewTracker(New(), 50*time.Millisecond)
	tk3.advance("h", rep(ltl.ClosedOrFlowing, true, false), trH, at(0))
	tk3.advance("h", rep(ltl.ClosedOrFlowing, true, false), trH, at(100*time.Millisecond))
	if n := len(tk3.Stats().Violations); n != 0 {
		t.Fatalf("closed hold/hold path flagged: %v", tk3.Stats().Violations)
	}
	tk3.advance("h", rep(ltl.ClosedOrFlowing, false, true), trH, at(110*time.Millisecond))
	tk3.advance("h", rep(ltl.ClosedOrFlowing, false, false), trH, at(120*time.Millisecond))
	tk3.advance("h", rep(ltl.ClosedOrFlowing, false, false), trH, at(200*time.Millisecond))
	if n := len(tk3.Stats().Violations); n != 1 {
		t.Fatalf("committed hold/hold outage flagged %d times, want 1", n)
	}
}

// TestWedgedClassification: the quiescent reading per spec, including
// the half-open state no spec accepts.
func TestWedgedClassification(t *testing.T) {
	cases := []struct {
		rep    PathReport
		wedged bool
	}{
		{rep(ltl.StabClosed, true, false), false},
		{rep(ltl.StabClosed, false, false), true}, // half-open
		{rep(ltl.StabClosed, false, true), true},
		{rep(ltl.StabNotFlowing, false, false), false},
		{rep(ltl.StabNotFlowing, false, true), true},
		{rep(ltl.RecFlowing, false, true), false},
		{rep(ltl.RecFlowing, false, false), true},
		{rep(ltl.ClosedOrFlowing, true, false), false},
		{rep(ltl.ClosedOrFlowing, false, true), false},
		{rep(ltl.ClosedOrFlowing, false, false), true}, // half-open
		{PathReport{Specified: false}, false},
	}
	for i, c := range cases {
		got := wedgedIn([]PathReport{c.rep})
		if (len(got) > 0) != c.wedged {
			t.Fatalf("case %d (%v): wedged=%v, want %v", i, c.rep, got, c.wedged)
		}
	}
}
