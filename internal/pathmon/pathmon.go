// Package pathmon is a runtime monitor for the compositional path
// semantics: given the live boxes and the tunnel wiring, it snapshots
// the signaling paths of Section III-A, classifies each by the goal
// kinds at its ends, attaches the Section V specification, and
// evaluates the bothClosed/bothFlowing observation — runtime
// verification of the same properties the model checker proves
// exhaustively.
package pathmon

import (
	"fmt"
	"sync"

	"ipmedia/internal/box"
	"ipmedia/internal/ltl"
	"ipmedia/internal/path"
	"ipmedia/internal/slot"
	"ipmedia/internal/telemetry"
)

// Telemetry instrument names exported by this package.
const (
	// MetricSnapshots counts Snapshot calls.
	MetricSnapshots = "pathmon.snapshots"
	// MetricEvaluations counts per-path property evaluations.
	MetricEvaluations = "pathmon.prop_evaluations"
	// MetricViolations counts paths whose instantaneous observation
	// contradicts a safety-flavored spec (a should-be-closed path seen
	// bothFlowing). Transient nonzero values occur during convergence; a
	// steadily growing count indicates a stuck path.
	MetricViolations = "pathmon.violations"
)

// Monitor observes a set of boxes joined by known tunnels.
type Monitor struct {
	mu      sync.Mutex
	runners map[string]*box.Runner
	tunnels [][2]path.SlotRef
}

// New creates an empty monitor.
func New() *Monitor {
	return &Monitor{runners: map[string]*box.Runner{}}
}

// AddBox registers a box under its name.
func (m *Monitor) AddBox(r *box.Runner) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.runners[r.Box().Name()] = r
}

// Tunnel declares that slot a of one box and slot b of another are the
// two ends of a tunnel.
func (m *Monitor) Tunnel(boxA, slotA, boxB, slotB string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tunnels = append(m.tunnels, [2]path.SlotRef{
		{Box: boxA, Slot: slotA},
		{Box: boxB, Slot: slotB},
	})
}

// RetargetTunnel repoints the tunnel whose (boxA, slotA) end is
// already declared at a new far end, or declares it when unknown. Long
// chaos runs redial the same client slot at rotating servers; keying
// on the stable end keeps the tunnel list bounded instead of growing
// one stale entry per redial.
func (m *Monitor) RetargetTunnel(boxA, slotA, boxB, slotB string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	a := path.SlotRef{Box: boxA, Slot: slotA}
	b := path.SlotRef{Box: boxB, Slot: slotB}
	for i, t := range m.tunnels {
		if t[0] == a {
			m.tunnels[i][1] = b
			return
		}
	}
	m.tunnels = append(m.tunnels, [2]path.SlotRef{a, b})
}

// PathReport describes one signaling path at snapshot time.
type PathReport struct {
	Path path.Path
	// Spec is the Section V property for the path's end-goal kinds;
	// Specified is false when an end is controlled by something other
	// than the three endpoint primitives (e.g. a ringing device).
	Spec      ltl.PathProp
	Specified bool
	Obs       ltl.Obs
	// Ends are the goal kinds observed at the two path ends.
	Ends [2]string
}

func (r PathReport) String() string {
	spec := "unspecified"
	if r.Specified {
		spec = r.Spec.String()
	}
	return fmt.Sprintf("%s [%s/%s] spec=%s closed=%v flowing=%v",
		r.Path, r.Ends[0], r.Ends[1], spec, r.Obs.BothClosed, r.Obs.BothFlowing)
}

// Snapshot freezes every box (via its runner) and computes the current
// signaling paths with their observations.
func (m *Monitor) Snapshot() ([]PathReport, error) {
	m.mu.Lock()
	runners := make(map[string]*box.Runner, len(m.runners))
	for k, v := range m.runners {
		runners[k] = v
	}
	tunnels := append([][2]path.SlotRef(nil), m.tunnels...)
	m.mu.Unlock()

	// Collect per-box state under each box's own goroutine.
	type boxState struct {
		links [][2]string
		goals map[string]string
		slots map[string]*slot.Slot
	}
	states := map[string]boxState{}
	for name, r := range runners {
		st := boxState{goals: map[string]string{}, slots: map[string]*slot.Slot{}}
		r.Do(func(ctx *box.Ctx) {
			b := ctx.Box()
			st.links = b.Links()
			for _, sn := range b.SlotNames() {
				if g := b.GoalFor(sn); g != nil {
					st.goals[sn] = g.Kind()
				}
				if s := b.Slot(sn); s != nil {
					st.slots[sn] = s.Clone()
				}
			}
		})
		states[name] = st
	}

	top := path.NewTopology()
	for _, t := range tunnels {
		top.Tunnel(t[0], t[1])
	}
	for name, st := range states {
		for _, l := range st.links {
			top.Link(path.SlotRef{Box: name, Slot: l[0]}, path.SlotRef{Box: name, Slot: l[1]})
		}
		for sn, kind := range st.goals {
			top.SetGoal(path.SlotRef{Box: name, Slot: sn}, kind)
		}
	}
	paths, err := top.Paths()
	if err != nil {
		return nil, err
	}
	telemetry.C(MetricSnapshots).Inc()
	evals := telemetry.C(MetricEvaluations)
	violations := telemetry.C(MetricViolations)
	var out []PathReport
	for _, p := range paths {
		l, r := p.Ends()
		rep := PathReport{Path: p, Ends: [2]string{top.Goal(l), top.Goal(r)}}
		if spec, err := top.Spec(p); err == nil {
			rep.Spec, rep.Specified = spec, true
		}
		ls := states[l.Box].slots[l.Slot]
		rs := states[r.Box].slots[r.Slot]
		// A slot that does not exist yet is closed: "Initially the
		// channel is closed, or does not exist" (paper Figure 5).
		if ls == nil {
			ls = slot.New(l.Slot, false)
		}
		if rs == nil {
			rs = slot.New(r.Slot, false)
		}
		rep.Obs = path.Observe(ls, rs)
		evals.Inc()
		// Liveness specs (□◇bothFlowing and the hold/hold disjunction)
		// have no instantaneous violation; the two stability specs do:
		// media flowing on a path that should quiesce.
		if rep.Specified && rep.Obs.BothFlowing &&
			(rep.Spec == ltl.StabClosed || rep.Spec == ltl.StabNotFlowing) {
			violations.Inc()
		}
		out = append(out, rep)
	}
	return out, nil
}

// Find returns the report of the path whose two ends are at the named
// boxes (in either order), if any.
func Find(reports []PathReport, boxA, boxB string) (PathReport, bool) {
	for _, r := range reports {
		l, rr := r.Path.Ends()
		if (l.Box == boxA && rr.Box == boxB) || (l.Box == boxB && rr.Box == boxA) {
			return r, true
		}
	}
	return PathReport{}, false
}
