package core_test

import (
	"testing"
	"time"

	"ipmedia/internal/box"
	"ipmedia/internal/core"
	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
	"ipmedia/internal/telemetry"
	"ipmedia/internal/transport"
)

// TestOpenOpenRaceUnderFaults runs the open-open race of single.go on
// live runners with the losing open delayed and duplicated by a fault
// port under the reliable layer. The glare backoff (the losing end
// reverts to acceptor) must still converge to bothFlowing every round,
// with no channel abandoned — the model-checked race resolution
// surviving a hostile wire. Run under -race by the ordinary test
// envelope, this also pins the concurrency of the retransmit, ack,
// and delay timers against the runner loops.
func TestOpenOpenRaceUnderFaults(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)
	defer telemetry.SetDefault(nil)

	fn := transport.NewFaultNetwork(transport.NewMemNetwork(), transport.FaultProfile{
		Seed:      1,
		DelayRate: 0.4, DelayMin: time.Millisecond, DelayMax: 8 * time.Millisecond,
		DupRate: 0.3,
	})
	defer fn.Stop()
	net := transport.NewRelNetwork(fn, transport.RelConfig{
		RexmitInterval: 30 * time.Millisecond,
		AckDelay:       10 * time.Millisecond,
	})

	prof := func(name string, port int) *core.EndpointProfile {
		return core.NewEndpointProfile(name, "h"+name, port, []sig.Codec{sig.G711}, []sig.Codec{sig.G711})
	}
	l := box.NewRunner(box.New("L", prof("L", 1)), net)
	r := box.NewRunner(box.New("R", prof("R", 2)), net)
	defer l.Stop()
	defer r.Stop()
	if err := l.Listen("L", nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Connect("c", "L"); err != nil {
		t.Fatal(err)
	}
	lSlot, rSlot := box.TunnelSlot("in0", 0), box.TunnelSlot("c", 0)
	await := func(what string, pred func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if pred() {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("timeout waiting for %s", what)
	}
	await("L's channel", func() bool {
		ok := false
		l.Do(func(ctx *box.Ctx) { ok = ctx.Box().HasChannel("in0") })
		return ok
	})

	flowing := func(rn *box.Runner, s string) bool {
		ok := false
		rn.Do(func(ctx *box.Ctx) { ok = ctx.IsFlowing(s) })
		return ok
	}
	closed := func(rn *box.Runner, s string) bool {
		ok := false
		rn.Do(func(ctx *box.Ctx) {
			sl := ctx.Box().Slot(s)
			ok = sl == nil || sl.State() == slot.Closed
		})
		return ok
	}

	const rounds = 5
	for i := 0; i < rounds; i++ {
		// Glare: both ends originate an open for the same tunnel at once.
		l.Do(func(ctx *box.Ctx) {
			ctx.SetGoal(core.NewOpenSlot(lSlot, sig.Audio, l.Box().Profile()))
		})
		r.Do(func(ctx *box.Ctx) {
			ctx.SetGoal(core.NewOpenSlot(rSlot, sig.Audio, r.Box().Profile()))
		})
		await("both flowing", func() bool {
			return flowing(l, lSlot) && flowing(r, rSlot)
		})
		// Tear down for the next round.
		l.Do(func(ctx *box.Ctx) { ctx.SetGoal(core.NewCloseSlot(lSlot)) })
		r.Do(func(ctx *box.Ctx) { ctx.SetGoal(core.NewCloseSlot(rSlot)) })
		await("both closed", func() bool {
			return closed(l, lSlot) && closed(r, rSlot)
		})
	}
	if g := reg.Counter(transport.MetricGiveups).Value(); g != 0 {
		t.Fatalf("delay+dup faults caused %d giveups; the reliable layer must absorb them", g)
	}
	if reg.Counter(slot.MetricGlare).Value() == 0 {
		t.Fatalf("%d simultaneous-open rounds resolved zero glare races", rounds)
	}
}
