package core

import (
	"testing"

	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
)

// TestOpenVsHoldConverges: a one-tunnel path with an openslot at the
// left and a holdslot at the right must reach the bothFlowing state
// (paper Section V: □◇bothFlowing).
func TestOpenVsHoldConverges(t *testing.T) {
	w := newWorld(t)
	w.tunnel("L", "R")
	pl, pr := endpointProfile("L", 5004), endpointProfile("R", 5006)
	w.attach(NewOpenSlot("L", sig.Audio, pl))
	w.attach(NewHoldSlot("R", pr))
	if !w.run(100) {
		t.Fatal("did not quiesce")
	}
	l, r := w.Slot("L"), w.Slot("R")
	if !bothFlowing(l, r) {
		t.Fatalf("not bothFlowing: %s", fmtEnds(l, r))
	}
	// Both ends wanted media, so both directions must be enabled
	// (paper Section V: Lenabled = ¬LmuteIn ∧ ¬RmuteOut).
	if !l.Enabled() || !r.Enabled() {
		t.Fatalf("both ends unmuted, both must be enabled: Lenabled=%v Renabled=%v", l.Enabled(), r.Enabled())
	}
	if l.Medium() != sig.Audio || r.Medium() != sig.Audio {
		t.Fatal("medium must match on both ends")
	}
}

// TestOpenVsHoldMuted: mute flags must translate into enabled history
// variables per Section V.
func TestOpenVsHoldMuted(t *testing.T) {
	cases := []struct {
		name                 string
		lIn, lOut, rIn, rOut bool
		wantLEnab, wantREnab bool // Lenabled: right-to-left ready; we track per-slot "sent real selector"
	}{
		{"all unmuted", false, false, false, false, true, true},
		{"left muteOut", false, true, false, false, false, true},
		{"right muteIn", false, false, true, false, false, true},
		{"left muteIn", true, false, false, false, true, false},
		{"both muted out", false, true, false, true, false, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := newWorld(t)
			w.tunnel("L", "R")
			pl, pr := endpointProfile("L", 5004), endpointProfile("R", 5006)
			pl.MuteIn, pl.MuteOut = c.lIn, c.lOut
			pr.MuteIn, pr.MuteOut = c.rIn, c.rOut
			w.attach(NewOpenSlot("L", sig.Audio, pl))
			w.attach(NewHoldSlot("R", pr))
			if !w.run(100) {
				t.Fatal("did not quiesce")
			}
			l, r := w.Slot("L"), w.Slot("R")
			if l.State() != slot.Flowing || r.State() != slot.Flowing {
				t.Fatalf("must reach flowing: %s", fmtEnds(l, r))
			}
			// l.Enabled(): left has sent a real selector, i.e. media
			// can flow left-to-right: ¬LmuteOut ∧ ¬RmuteIn.
			if want := !c.lOut && !c.rIn; l.Enabled() != want {
				t.Errorf("left enabled = %v, want %v", l.Enabled(), want)
			}
			if want := !c.rOut && !c.lIn; r.Enabled() != want {
				t.Errorf("right enabled = %v, want %v", r.Enabled(), want)
			}
		})
	}
}

// TestOpenVsCloseNeverFlows: an openslot against a closeslot can never
// reach bothFlowing (◇□¬bothFlowing); the openslot retries forever.
func TestOpenVsCloseNeverFlows(t *testing.T) {
	w := newWorld(t)
	w.tunnel("L", "R")
	w.attach(NewOpenSlot("L", sig.Audio, endpointProfile("L", 5004)))
	w.attach(NewCloseSlot("R"))
	for i := 0; i < 200; i++ {
		for _, dst := range w.order {
			w.deliver(dst)
		}
		l, r := w.Slot("L"), w.Slot("R")
		if l.State() == slot.Flowing && r.State() == slot.Flowing {
			t.Fatalf("step %d: reached bothFlowing against a closeslot", i)
		}
	}
	if w.quiescent() {
		t.Fatal("openslot must keep retrying against a closeslot")
	}
}

// TestCloseVsCloseStabilizes: both ends closing from an established
// channel must reach bothClosed and stay there (◇□bothClosed).
func TestCloseVsCloseStabilizes(t *testing.T) {
	w := newWorld(t)
	w.tunnel("L", "R")
	// First bring the channel up with open/hold...
	w.attach(NewOpenSlot("L", sig.Audio, endpointProfile("L", 5004)))
	w.attach(NewHoldSlot("R", endpointProfile("R", 5006)))
	if !w.run(100) {
		t.Fatal("setup did not quiesce")
	}
	// ...then switch both ends to closeslots (simultaneously, the
	// hardest case: closes cross in flight).
	w.attach(NewCloseSlot("L"))
	w.attach(NewCloseSlot("R"))
	if !w.run(100) {
		t.Fatal("teardown did not quiesce")
	}
	l, r := w.Slot("L"), w.Slot("R")
	if l.State() != slot.Closed || r.State() != slot.Closed {
		t.Fatalf("not bothClosed: %s", fmtEnds(l, r))
	}
}

// TestCloseVsHoldStabilizes: closeslot against holdslot reaches
// bothClosed (◇□bothClosed) from any starting point.
func TestCloseVsHoldStabilizes(t *testing.T) {
	w := newWorld(t)
	w.tunnel("L", "R")
	w.attach(NewOpenSlot("L", sig.Audio, endpointProfile("L", 5004)))
	w.attach(NewHoldSlot("R", endpointProfile("R", 5006)))
	if !w.run(100) {
		t.Fatal("setup did not quiesce")
	}
	w.attach(NewCloseSlot("L"))
	if !w.run(100) {
		t.Fatal("teardown did not quiesce")
	}
	if l, r := w.Slot("L"), w.Slot("R"); l.State() != slot.Closed || r.State() != slot.Closed {
		t.Fatalf("not bothClosed: %s", fmtEnds(l, r))
	}
}

// TestHoldVsHoldStaysClosed: two holdslots never originate anything;
// from closed the path stays closed (the ◇□bothClosed disjunct).
func TestHoldVsHoldStaysClosed(t *testing.T) {
	w := newWorld(t)
	w.tunnel("L", "R")
	w.attach(NewHoldSlot("L", endpointProfile("L", 5004)))
	w.attach(NewHoldSlot("R", endpointProfile("R", 5006)))
	if !w.run(10) {
		t.Fatal("did not quiesce")
	}
	if l, r := w.Slot("L"), w.Slot("R"); l.State() != slot.Closed || r.State() != slot.Closed {
		t.Fatal("hold/hold from closed must stay closed")
	}
}

// TestHoldVsHoldKeepsFlowing: two holdslots attached to an established
// channel keep it flowing (the □◇bothFlowing disjunct).
func TestHoldVsHoldKeepsFlowing(t *testing.T) {
	w := newWorld(t)
	w.tunnel("L", "R")
	w.attach(NewOpenSlot("L", sig.Audio, endpointProfile("L", 5004)))
	w.attach(NewHoldSlot("R", endpointProfile("R", 5006)))
	if !w.run(100) {
		t.Fatal("setup did not quiesce")
	}
	w.attach(NewHoldSlot("L", endpointProfile("L", 5004)))
	if !w.run(100) {
		t.Fatal("did not quiesce")
	}
	l, r := w.Slot("L"), w.Slot("R")
	if !bothFlowing(l, r) {
		t.Fatalf("hold/hold from flowing must stay bothFlowing: %s", fmtEnds(l, r))
	}
}

// TestOpenOpenRace: both ends open simultaneously; the channel
// initiator wins and the path still converges to bothFlowing.
func TestOpenOpenRace(t *testing.T) {
	w := newWorld(t)
	w.tunnel("L", "R")
	w.attach(NewOpenSlot("L", sig.Audio, endpointProfile("L", 5004)))
	w.attach(NewOpenSlot("R", sig.Audio, endpointProfile("R", 5006)))
	if !w.run(100) {
		t.Fatal("did not quiesce")
	}
	l, r := w.Slot("L"), w.Slot("R")
	if !bothFlowing(l, r) {
		t.Fatalf("open-open race must converge to bothFlowing: %s", fmtEnds(l, r))
	}
}

// TestOpenSlotPrecondition: the engine-level attach tolerates any
// state, but still pushes toward flowing from each.
func TestOpenSlotAttachMidLife(t *testing.T) {
	w := newWorld(t)
	w.tunnel("L", "R")
	w.attach(NewHoldSlot("L", endpointProfile("L", 5004)))
	w.attach(NewOpenSlot("R", sig.Audio, endpointProfile("R", 5006)))
	if !w.run(100) {
		t.Fatal("did not quiesce")
	}
	// Re-attach a fresh openslot to the already-flowing slot R: it must
	// not disturb the channel.
	w.attach(NewOpenSlot("R", sig.Audio, endpointProfile("R", 5006)))
	if !w.run(100) {
		t.Fatal("did not quiesce after re-attach")
	}
	l, r := w.Slot("L"), w.Slot("R")
	if !bothFlowing(l, r) {
		t.Fatalf("re-attach must preserve bothFlowing: %s", fmtEnds(l, r))
	}
}

// TestMuteRefreshWhileFlowing exercises the modify event of paper
// Figure 5: toggling mute flags mid-call re-describes and re-selects,
// and the enabled variables track the new values.
func TestMuteRefreshWhileFlowing(t *testing.T) {
	w := newWorld(t)
	w.tunnel("L", "R")
	pl, pr := endpointProfile("L", 5004), endpointProfile("R", 5006)
	gl := NewOpenSlot("L", sig.Audio, pl)
	w.attach(gl)
	w.attach(NewHoldSlot("R", pr))
	if !w.run(100) {
		t.Fatal("setup did not quiesce")
	}
	l, r := w.Slot("L"), w.Slot("R")
	if !l.Enabled() || !r.Enabled() {
		t.Fatal("setup: both directions must be enabled")
	}

	// Left mutes its output: left's enabled must drop; right's stays.
	pl.SetMuteOut(true)
	acts, err := gl.Refresh(w, false, true)
	if err != nil {
		t.Fatal(err)
	}
	w.send(acts)
	if !w.run(100) {
		t.Fatal("refresh did not quiesce")
	}
	if l.Enabled() {
		t.Fatal("muteOut must disable left's sending")
	}
	if !r.Enabled() {
		t.Fatal("right must stay enabled")
	}

	// Left mutes its input: a fresh noMedia descriptor goes out; right
	// must answer with a noMedia selector, disabling right's sending.
	pl.SetMuteIn(true)
	acts, err = gl.Refresh(w, true, false)
	if err != nil {
		t.Fatal(err)
	}
	w.send(acts)
	if !w.run(100) {
		t.Fatal("refresh did not quiesce")
	}
	if r.Enabled() {
		t.Fatal("left muteIn must lead right to answer noMedia")
	}

	// Unmute everything: the channel must recover fully (□◇bothFlowing).
	pl.SetMuteOut(false)
	pl.SetMuteIn(false)
	acts, err = gl.Refresh(w, true, true)
	if err != nil {
		t.Fatal(err)
	}
	w.send(acts)
	if !w.run(100) {
		t.Fatal("refresh did not quiesce")
	}
	if !bothFlowing(l, r) || !l.Enabled() || !r.Enabled() {
		t.Fatalf("unmute must restore bothFlowing with both enabled: %s", fmtEnds(l, r))
	}
}

// TestCloseSlotRejectsReopen: a closeslot must keep its slot closed
// against a retrying openslot without ever deadlocking, and respond to
// each open with an immediate reject.
func TestCloseSlotRejectsReopen(t *testing.T) {
	w := newWorld(t)
	w.tunnel("L", "R")
	w.attach(NewOpenSlot("L", sig.Audio, endpointProfile("L", 5004)))
	w.attach(NewCloseSlot("R"))
	sawRReject := false
	for i := 0; i < 100; i++ {
		for _, dst := range w.order {
			w.deliver(dst)
		}
		if w.Slot("R").State() == slot.Closing {
			sawRReject = true
		}
		if w.Slot("R").State() == slot.Flowing {
			t.Fatal("closeslot slot must never flow")
		}
	}
	if !sawRReject {
		t.Fatal("closeslot must actively reject opens")
	}
}

// TestServerProfileMutesBothDirections: goal objects in application
// servers mute media flow in both directions (paper Section IV-A).
func TestServerProfileMutesBothDirections(t *testing.T) {
	w := newWorld(t)
	w.tunnel("L", "R")
	w.attach(NewOpenSlot("L", sig.Audio, endpointProfile("L", 5004)))
	w.attach(NewHoldSlot("R", ServerProfile{Name: "srv"}))
	if !w.run(100) {
		t.Fatal("did not quiesce")
	}
	l, r := w.Slot("L"), w.Slot("R")
	if l.State() != slot.Flowing || r.State() != slot.Flowing {
		t.Fatal("channel must still reach flowing")
	}
	if l.Enabled() || r.Enabled() {
		t.Fatal("a server end must leave both directions disabled")
	}
	d, _ := l.Desc()
	if !d.NoMedia() {
		t.Fatal("server descriptor must be noMedia")
	}
}
