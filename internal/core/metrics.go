// Telemetry for the goal primitives: one latency histogram per goal
// kind, covering the OnEvent handler (and Attach for the flowlink,
// whose reconcile loop is its expensive path). Instruments are cached
// per default registry; with telemetry disabled each hook costs a
// pointer compare and a shared no-op timer.
package core

import (
	"sync/atomic"

	"ipmedia/internal/telemetry"
)

// MetricGoalLatencyPrefix prefixes the per-kind goal handler latency
// histograms, e.g. "core.goal_latency.openSlot".
const MetricGoalLatencyPrefix = "core.goal_latency."

// coreHists is the histogram set for one registry. The zero value
// (all-nil histograms) is the disabled set.
type coreHists struct {
	reg  *telemetry.Registry
	open *telemetry.Histogram
	clos *telemetry.Histogram
	hold *telemetry.Histogram
	link *telemetry.Histogram
}

var histCache atomic.Pointer[coreHists]

// goalHists returns the histogram set for the current default
// registry, rebuilding the cache if the default changed.
func goalHists() *coreHists {
	reg := telemetry.Default()
	if h := histCache.Load(); h != nil && h.reg == reg {
		return h
	}
	h := &coreHists{reg: reg}
	if reg != nil {
		h.open = reg.Histogram(MetricGoalLatencyPrefix + "openSlot")
		h.clos = reg.Histogram(MetricGoalLatencyPrefix + "closeSlot")
		h.hold = reg.Histogram(MetricGoalLatencyPrefix + "holdSlot")
		h.link = reg.Histogram(MetricGoalLatencyPrefix + "flowLink")
	}
	histCache.Store(h)
	return h
}
