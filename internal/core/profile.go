// Media profiles: how a goal object describes its box as a receiver of
// media and answers descriptors as a sender.
package core

import (
	"ipmedia/internal/sig"
)

// Profile supplies the descriptors and selectors a goal object sends.
// A genuine media endpoint uses an EndpointProfile carrying its real
// address and codecs; a slot in an application server "may be
// masquerading as a media endpoint, but it is not a genuine media
// endpoint, and can neither send nor receive media packets fruitfully"
// (paper Section IV-A), so servers use a ServerProfile that mutes
// media flow in both directions.
type Profile interface {
	// Describe returns the current self-description as a receiver of
	// media. Repeated calls return the same descriptor ID until the
	// content changes, which keeps protocol state spaces finite.
	Describe() sig.Descriptor
	// Answer builds the selector with which this box answers
	// descriptor d.
	Answer(d sig.Descriptor) sig.Selector
	// Clone deep-copies the profile.
	Clone() Profile
	// AppendEncode appends a deterministic state fingerprint to dst and
	// returns the extended slice.
	AppendEncode(dst []byte) []byte
}

// ServerProfile is the profile of an application-server goal object:
// it declines media in both directions.
type ServerProfile struct {
	// Name scopes the descriptor ID, usually the box name.
	Name string
}

// Describe returns the server's constant noMedia descriptor.
func (p ServerProfile) Describe() sig.Descriptor {
	return sig.NoMediaDescriptor(sig.DescID{Origin: p.Name, Seq: 1})
}

// Answer answers any descriptor with a noMedia selector.
func (p ServerProfile) Answer(d sig.Descriptor) sig.Selector {
	return sig.Selector{Answers: d.ID, Codec: sig.NoMedia}
}

// Clone returns the profile itself; it is immutable.
func (p ServerProfile) Clone() Profile { return p }

// AppendEncode appends the profile fingerprint.
func (p ServerProfile) AppendEncode(dst []byte) []byte {
	dst = append(dst, "srv:"...)
	return append(dst, p.Name...)
}

// EndpointProfile is the profile of a genuine media endpoint: a real
// receiving address, priority-ordered receive and send codec lists,
// and the user's current mute choices (paper Figure 5).
type EndpointProfile struct {
	Origin     string // descriptor ID scope, usually the device name
	Addr       string
	Port       int
	RecvCodecs []sig.Codec // priority-ordered codecs this endpoint can receive
	SendCodecs []sig.Codec // codecs this endpoint can transmit
	MuteIn     bool        // user does not wish to receive media
	MuteOut    bool        // user does not wish to send media

	seq    uint32
	issued []sig.Descriptor // every distinct content ever described
}

// NewEndpointProfile builds a profile for a device at addr:port.
func NewEndpointProfile(origin, addr string, port int, recv, send []sig.Codec) *EndpointProfile {
	return &EndpointProfile{Origin: origin, Addr: addr, Port: port, RecvCodecs: recv, SendCodecs: send}
}

// desired builds the descriptor content implied by the current state,
// without an ID.
func (p *EndpointProfile) desired() sig.Descriptor {
	if p.MuteIn {
		return sig.Descriptor{Codecs: []sig.Codec{sig.NoMedia}}
	}
	return sig.Descriptor{Addr: p.Addr, Port: p.Port, Codecs: append([]sig.Codec(nil), p.RecvCodecs...)}
}

// Describe returns the endpoint's current descriptor. Descriptor IDs
// are a function of content: re-describing previously seen content
// reuses its ID. This keeps protocol state spaces finite under
// openslot retry loops and mute toggles — a requirement of the model
// checker — and is harmless live, since a selector answering the ID
// still answers exactly this content.
func (p *EndpointProfile) Describe() sig.Descriptor {
	want := p.desired()
	for _, d := range p.issued {
		if want.SameContent(d) {
			return d
		}
	}
	p.seq++
	want.ID = sig.DescID{Origin: p.Origin, Seq: p.seq}
	p.issued = append(p.issued, want)
	return want
}

// Answer answers descriptor d per the unilateral codec-choice rule of
// paper Section VI-B.
func (p *EndpointProfile) Answer(d sig.Descriptor) sig.Selector {
	return sig.AnswerDescriptor(d, p.Addr, p.Port, p.SendCodecs, p.MuteOut)
}

// SetMuteIn updates muteIn; it reports whether the value changed.
func (p *EndpointProfile) SetMuteIn(v bool) bool {
	if p.MuteIn == v {
		return false
	}
	p.MuteIn = v
	return true
}

// SetMuteOut updates muteOut; it reports whether the value changed.
func (p *EndpointProfile) SetMuteOut(v bool) bool {
	if p.MuteOut == v {
		return false
	}
	p.MuteOut = v
	return true
}

// Clone deep-copies the profile.
func (p *EndpointProfile) Clone() Profile {
	c := *p
	c.RecvCodecs = append([]sig.Codec(nil), p.RecvCodecs...)
	c.SendCodecs = append([]sig.Codec(nil), p.SendCodecs...)
	c.issued = make([]sig.Descriptor, len(p.issued))
	for i, d := range p.issued {
		c.issued[i] = d
		c.issued[i].Codecs = append([]sig.Codec(nil), d.Codecs...)
	}
	return &c
}

// AppendEncode appends the profile fingerprint.
func (p *EndpointProfile) AppendEncode(dst []byte) []byte {
	dst = append(dst, "ep:"...)
	dst = append(dst, p.Origin...)
	dst = append(dst, p.Addr...)
	dst = append(dst, byte(p.Port>>8), byte(p.Port))
	for _, c := range p.RecvCodecs {
		dst = append(dst, c...)
		dst = append(dst, ',')
	}
	dst = append(dst, ';')
	for _, c := range p.SendCodecs {
		dst = append(dst, c...)
		dst = append(dst, ',')
	}
	if p.MuteIn {
		dst = append(dst, 'I')
	}
	if p.MuteOut {
		dst = append(dst, 'O')
	}
	return append(dst, byte(p.seq))
}
