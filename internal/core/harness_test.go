package core

import (
	"fmt"
	"math/rand"
	"testing"

	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
)

// world is a miniature runtime for goal engines: boxes hold slots and
// one goal each; tunnels are FIFO queues between peered slots. It is
// the test-only analogue of the box runtime and the model-checker
// stepper.
type world struct {
	t      *testing.T
	slots  map[string]*slot.Slot
	goals  map[string]Goal   // goal controlling each slot
	peer   map[string]string // slot -> far slot of its tunnel
	queues map[string][]sig.Signal
	order  []string // deterministic queue iteration order
}

func newWorld(t *testing.T) *world {
	return &world{
		t:      t,
		slots:  map[string]*slot.Slot{},
		goals:  map[string]Goal{},
		peer:   map[string]string{},
		queues: map[string][]sig.Signal{},
	}
}

func (w *world) Slot(name string) *slot.Slot { return w.slots[name] }

// tunnel creates a peered pair of slots; the first is the channel
// initiator.
func (w *world) tunnel(a, b string) {
	w.slots[a] = slot.New(a, true)
	w.slots[b] = slot.New(b, false)
	w.peer[a], w.peer[b] = b, a
	w.order = append(w.order, a, b)
}

// attach installs a goal object over its slots and applies its initial
// actions.
func (w *world) attach(g Goal) {
	w.t.Helper()
	for _, s := range g.SlotNames() {
		w.goals[s] = g
	}
	acts, err := g.Attach(w)
	if err != nil {
		w.t.Fatalf("attach %s: %v", g.Kind(), err)
	}
	w.send(acts)
}

func (w *world) send(acts []Action) {
	for _, a := range acts {
		dst := w.peer[a.Slot]
		w.queues[dst] = append(w.queues[dst], a.Sig)
	}
}

// deliver pops one signal destined for the named slot and processes it
// through the slot and its goal.
func (w *world) deliver(dst string) bool {
	w.t.Helper()
	q := w.queues[dst]
	if len(q) == 0 {
		return false
	}
	g := q[0]
	w.queues[dst] = q[1:]
	ev, err := w.slots[dst].Receive(g)
	if err != nil {
		w.t.Fatalf("deliver %s to %s: %v", g, dst, err)
	}
	if w.goals[dst] == nil {
		return true // no controller yet: consumed silently
	}
	acts, err := w.goals[dst].OnEvent(w, dst, ev, g)
	if err != nil {
		w.t.Fatalf("goal %s on %s/%s: %v", w.goals[dst].Kind(), dst, ev, err)
	}
	w.send(acts)
	return true
}

// run delivers signals FIFO round-robin until quiescent or the step
// budget is exhausted; it reports whether the world quiesced.
func (w *world) run(budget int) bool {
	for i := 0; i < budget; i++ {
		progressed := false
		for _, dst := range w.order {
			if w.deliver(dst) {
				progressed = true
			}
		}
		if !progressed {
			return true
		}
	}
	return false
}

// runShuffled is like run but delivers in pseudo-random order, for
// property tests over interleavings.
func (w *world) runShuffled(r *rand.Rand, budget int) bool {
	for i := 0; i < budget; i++ {
		var nonEmpty []string
		for _, dst := range w.order {
			if len(w.queues[dst]) > 0 {
				nonEmpty = append(nonEmpty, dst)
			}
		}
		if len(nonEmpty) == 0 {
			return true
		}
		w.deliver(nonEmpty[r.Intn(len(nonEmpty))])
	}
	return false
}

func (w *world) quiescent() bool {
	for _, q := range w.queues {
		if len(q) > 0 {
			return false
		}
	}
	return true
}

func endpointProfile(name string, port int) *EndpointProfile {
	return NewEndpointProfile(name, "10.0.0."+name, port, []sig.Codec{sig.G711, sig.G726}, []sig.Codec{sig.G711, sig.G726})
}

// bothFlowing checks the model-checking definition of the bothFlowing
// path state (paper Section VIII-A) on the two path-end slots: each
// end has most recently received the descriptor most recently sent by
// the other end, and each end has most recently received a selector
// responding to its own most recent descriptor.
func bothFlowing(l, r *slot.Slot) bool {
	lh, rh := l.Hist(), r.Hist()
	ld, lok := l.Desc()
	rd, rok := r.Desc()
	return l.State() == slot.Flowing && r.State() == slot.Flowing &&
		lok && rok &&
		ld.Equal(rh.DescSent) && rd.Equal(lh.DescSent) &&
		lh.HasSelRcvd && lh.SelRcvd.Answers == lh.DescSent.ID &&
		rh.HasSelRcvd && rh.SelRcvd.Answers == rh.DescSent.ID
}

func fmtEnds(l, r *slot.Slot) string {
	return fmt.Sprintf("L=%v R=%v", l, r)
}
