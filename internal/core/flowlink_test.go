package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
)

// linkWorld builds the canonical one-flowlink path:
//
//	L ──tunnel── s1 [flowLink] s2 ──tunnel── R
//
// where L and R are path-end slots in other boxes and s1, s2 are the
// flowlink's slots in a middle box.
func linkWorld(t *testing.T) *world {
	w := newWorld(t)
	w.tunnel("L", "s1")
	w.tunnel("s2", "R") // middle box initiates the right-hand channel
	return w
}

// TestFlowLinkTransparency: openslot — flowlink — holdslot must reach
// bothFlowing end to end, with the end descriptors spliced through the
// middle box.
func TestFlowLinkTransparency(t *testing.T) {
	w := linkWorld(t)
	pl, pr := endpointProfile("L", 5004), endpointProfile("R", 5006)
	w.attach(NewOpenSlot("L", sig.Audio, pl))
	w.attach(NewHoldSlot("R", pr))
	w.attach(NewFlowLink("s1", "s2"))
	if !w.run(200) {
		t.Fatal("did not quiesce")
	}
	l, r := w.Slot("L"), w.Slot("R")
	if !bothFlowing(l, r) {
		t.Fatalf("path not bothFlowing: %s", fmtEnds(l, r))
	}
	// End-to-end splicing: L's cached descriptor must be R's, not the
	// middle box's, and vice versa.
	ld, _ := l.Desc()
	rd, _ := r.Desc()
	if ld.ID.Origin != "R" || rd.ID.Origin != "L" {
		t.Fatalf("descriptors not spliced end to end: L sees %s, R sees %s", ld.ID, rd.ID)
	}
	if !l.Enabled() || !r.Enabled() {
		t.Fatal("both directions must be enabled end to end")
	}
}

// TestFlowLinkBiasTowardFlow: paper Section IV-A — if a flowlink is
// attached when one slot is flowing and the other closed, it opens the
// closed one rather than closing the flowing one.
func TestFlowLinkBiasTowardFlow(t *testing.T) {
	w := linkWorld(t)
	// Bring up the left-hand tunnel only: the middle box holds s1.
	w.attach(NewOpenSlot("L", sig.Audio, endpointProfile("L", 5004)))
	w.attach(NewHoldSlot("s1", ServerProfile{Name: "mid"}))
	w.attach(NewHoldSlot("R", endpointProfile("R", 5006)))
	if !w.run(100) {
		t.Fatal("setup did not quiesce")
	}
	if w.Slot("s1").State() != slot.Flowing || w.Slot("s2").State() != slot.Closed {
		t.Fatal("setup: want s1 flowing, s2 closed")
	}
	// Now flowlink s1 and s2: it must open s2, exactly like the
	// busyTone state of the Click-to-Dial program (paper Figure 6).
	w.attach(NewFlowLink("s1", "s2"))
	if !w.run(200) {
		t.Fatal("did not quiesce")
	}
	l, r := w.Slot("L"), w.Slot("R")
	if !bothFlowing(l, r) {
		t.Fatalf("flowlink must extend flow to the closed side: %s", fmtEnds(l, r))
	}
}

// TestFlowLinkRelink reproduces the Figure 13 mechanics on one box: a
// flowlink is attached when both slots are flowing toward different
// parties; it must re-describe both sides and converge, with each end
// receiving the other's descriptor and answering it.
func TestFlowLinkRelink(t *testing.T) {
	w := linkWorld(t)
	// Establish both tunnels independently, with the middle box holding
	// both slots (muted, as a server does).
	w.attach(NewOpenSlot("L", sig.Audio, endpointProfile("L", 5004)))
	w.attach(NewOpenSlot("R", sig.Audio, endpointProfile("R", 5006)))
	w.attach(NewHoldSlot("s1", ServerProfile{Name: "mid"}))
	w.attach(NewHoldSlot("s2", ServerProfile{Name: "mid"}))
	if !w.run(200) {
		t.Fatal("setup did not quiesce")
	}
	l, r := w.Slot("L"), w.Slot("R")
	if l.State() != slot.Flowing || r.State() != slot.Flowing {
		t.Fatal("setup: both tunnels must be flowing")
	}
	if l.Enabled() || r.Enabled() {
		t.Fatal("setup: both ends muted by the server")
	}
	// Replace the two holdslots by a flowlink: media must come up end
	// to end.
	w.attach(NewFlowLink("s1", "s2"))
	if !w.run(200) {
		t.Fatal("relink did not quiesce")
	}
	if !bothFlowing(l, r) {
		t.Fatalf("relink must converge to bothFlowing: %s", fmtEnds(l, r))
	}
	if !l.Enabled() || !r.Enabled() {
		t.Fatal("relink must enable media in both directions")
	}
}

// TestFlowLinkUnlink is the inverse of relink: a flowing end-to-end
// path is broken by replacing the flowlink with two holdslots; both
// ends must stay flowing but become disabled (held).
func TestFlowLinkUnlink(t *testing.T) {
	w := linkWorld(t)
	w.attach(NewOpenSlot("L", sig.Audio, endpointProfile("L", 5004)))
	w.attach(NewHoldSlot("R", endpointProfile("R", 5006)))
	w.attach(NewFlowLink("s1", "s2"))
	if !w.run(200) {
		t.Fatal("setup did not quiesce")
	}
	w.attach(NewHoldSlot("s1", ServerProfile{Name: "mid"}))
	w.attach(NewHoldSlot("s2", ServerProfile{Name: "mid"}))
	if !w.run(200) {
		t.Fatal("unlink did not quiesce")
	}
	l, r := w.Slot("L"), w.Slot("R")
	if l.State() != slot.Flowing || r.State() != slot.Flowing {
		t.Fatal("unlink must keep the channels open")
	}
	if l.Enabled() || r.Enabled() {
		t.Fatal("unlink must mute both ends")
	}
}

// TestFlowLinkClosePropagation: a close at one path end must propagate
// through the flowlink to the other end.
func TestFlowLinkClosePropagation(t *testing.T) {
	w := linkWorld(t)
	w.attach(NewOpenSlot("L", sig.Audio, endpointProfile("L", 5004)))
	w.attach(NewHoldSlot("R", endpointProfile("R", 5006)))
	w.attach(NewFlowLink("s1", "s2"))
	if !w.run(200) {
		t.Fatal("setup did not quiesce")
	}
	// The left end switches to a closeslot: the whole path must close.
	w.attach(NewCloseSlot("L"))
	if !w.run(200) {
		t.Fatal("close did not quiesce")
	}
	for _, n := range []string{"L", "s1", "s2", "R"} {
		if st := w.Slot(n).State(); st != slot.Closed {
			t.Fatalf("slot %s is %s, want closed", n, st)
		}
	}
}

// TestFlowLinkRejectPropagation: a closeslot at the right path end
// rejects the open forwarded by the flowlink; the rejection must
// propagate back and the openslot keeps retrying without ever flowing.
func TestFlowLinkRejectPropagation(t *testing.T) {
	w := linkWorld(t)
	w.attach(NewOpenSlot("L", sig.Audio, endpointProfile("L", 5004)))
	w.attach(NewCloseSlot("R"))
	w.attach(NewFlowLink("s1", "s2"))
	for i := 0; i < 100; i++ {
		for _, dst := range w.order {
			w.deliver(dst)
		}
		l, r := w.Slot("L"), w.Slot("R")
		if l.State() == slot.Flowing && r.State() == slot.Flowing {
			t.Fatal("openslot-closeslot path must never be bothFlowing")
		}
	}
}

// TestFlowLinkStaleSelectorDiscarded: a selector answering an outdated
// descriptor must be absorbed by the flowlink, not forwarded (paper
// Section VII).
func TestFlowLinkStaleSelectorDiscarded(t *testing.T) {
	w := linkWorld(t)
	pl := endpointProfile("L", 5004)
	w.attach(NewOpenSlot("L", sig.Audio, pl))
	w.attach(NewHoldSlot("R", endpointProfile("R", 5006)))
	fl := NewFlowLink("s1", "s2")
	w.attach(fl)
	if !w.run(200) {
		t.Fatal("setup did not quiesce")
	}
	// Hand-feed the flowlink a selector answering a bogus descriptor.
	stale := sig.Select(sig.Selector{Answers: sig.DescID{Origin: "ghost", Seq: 9}, Addr: "x", Port: 1, Codec: sig.G711})
	w.queues["s1"] = append(w.queues["s1"], stale)
	before := w.Slot("R").Hist().SelRcvd
	if !w.run(50) {
		t.Fatal("did not quiesce")
	}
	if w.Slot("R").Hist().SelRcvd != before {
		t.Fatal("stale selector leaked through the flowlink")
	}
}

// TestFlowLinkDescriptorChangeMidOpen reproduces the paper's utd Case
// 2 analysis (Section VII): slot 1's descriptor changes between the
// flowlink sending open on slot 2 and receiving oack; the flowlink
// must follow up with a describe carrying the new descriptor.
func TestFlowLinkDescriptorChangeMidOpen(t *testing.T) {
	w := linkWorld(t)
	pl := endpointProfile("L", 5004)
	gl := NewOpenSlot("L", sig.Audio, pl)
	w.attach(gl)
	w.attach(NewFlowLink("s1", "s2"))
	w.attach(NewHoldSlot("R", endpointProfile("R", 5006)))

	// Drive only the left tunnel until the flowlink has opened s2.
	for i := 0; i < 10 && w.Slot("s2").State() != slot.Opening; i++ {
		w.deliver("s1")
		w.deliver("L")
	}
	if w.Slot("s2").State() != slot.Opening {
		t.Fatal("flowlink should have forwarded the open")
	}
	// Left end changes its descriptor (muteIn toggles) while s2 is
	// still opening.
	pl.SetMuteIn(true)
	acts, err := gl.Refresh(w, true, false)
	if err != nil {
		t.Fatal(err)
	}
	w.send(acts)
	if !w.run(200) {
		t.Fatal("did not quiesce")
	}
	// R must have ended up with L's *new* (noMedia) descriptor.
	rd, ok := w.Slot("R").Desc()
	if !ok || !rd.NoMedia() {
		t.Fatalf("R must see L's newest descriptor, got %v", rd)
	}
	if w.Slot("R").Enabled() {
		t.Fatal("R must answer the noMedia descriptor with noMedia")
	}
}

// TestTwoFlowLinkPath: a path with two flowlinks (three boxes) must
// still be transparent end to end.
func TestTwoFlowLinkPath(t *testing.T) {
	w := newWorld(t)
	w.tunnel("L", "m1a")
	w.tunnel("m1b", "m2a")
	w.tunnel("m2b", "R")
	w.attach(NewOpenSlot("L", sig.Audio, endpointProfile("L", 5004)))
	w.attach(NewFlowLink("m1a", "m1b"))
	w.attach(NewFlowLink("m2a", "m2b"))
	w.attach(NewHoldSlot("R", endpointProfile("R", 5006)))
	if !w.run(400) {
		t.Fatal("did not quiesce")
	}
	l, r := w.Slot("L"), w.Slot("R")
	if !bothFlowing(l, r) {
		t.Fatalf("two-flowlink path not bothFlowing: %s", fmtEnds(l, r))
	}
	ld, _ := l.Desc()
	rd, _ := r.Desc()
	if ld.ID.Origin != "R" || rd.ID.Origin != "L" {
		t.Fatal("descriptors must splice across two flowlinks")
	}
	// Tear down from the right; the close must propagate across both
	// flowlinks.
	w.attach(NewCloseSlot("R"))
	w.attach(NewCloseSlot("L")) // left also gives up (otherwise it retries forever)
	if !w.run(400) {
		t.Fatal("teardown did not quiesce")
	}
	for _, n := range []string{"L", "m1a", "m1b", "m2a", "m2b", "R"} {
		if st := w.Slot(n).State(); st != slot.Closed {
			t.Fatalf("slot %s is %s, want closed", n, st)
		}
	}
}

// TestFlowLinkMediumMismatch: the medium precondition of paper Section
// IV-A must be enforced at attach.
func TestFlowLinkMediumMismatch(t *testing.T) {
	w := newWorld(t)
	w.tunnel("L", "s1")
	w.tunnel("s2", "R")
	w.attach(NewOpenSlot("L", sig.Audio, endpointProfile("L", 5004)))
	w.attach(NewHoldSlot("s1", ServerProfile{Name: "mid"}))
	vp := NewEndpointProfile("R", "10.0.0.R", 5008, []sig.Codec{sig.H263}, []sig.Codec{sig.H263})
	w.attach(NewOpenSlot("s2", sig.Video, ServerProfile{Name: "mid"}))
	w.attach(NewHoldSlot("R", vp))
	if !w.run(200) {
		t.Fatal("setup did not quiesce")
	}
	fl := NewFlowLink("s1", "s2")
	if _, err := fl.Attach(w); err == nil {
		t.Fatal("flowlink over audio and video slots must be rejected")
	}
}

// TestQuickFlowLinkPathConverges: property — for any interleaving of
// signal deliveries, an openslot—flowlink—holdslot path converges to
// bothFlowing, and an openslot—flowlink—closeslot path never flows.
func TestQuickFlowLinkPathConverges(t *testing.T) {
	f := func(seed int64, hold bool) bool {
		r := rand.New(rand.NewSource(seed))
		w := linkWorld(t)
		w.attach(NewOpenSlot("L", sig.Audio, endpointProfile("L", 5004)))
		if hold {
			w.attach(NewHoldSlot("R", endpointProfile("R", 5006)))
		} else {
			w.attach(NewCloseSlot("R"))
		}
		w.attach(NewFlowLink("s1", "s2"))
		quiesced := w.runShuffled(r, 2000)
		l, rr := w.Slot("L"), w.Slot("R")
		if hold {
			return quiesced && bothFlowing(l, rr)
		}
		// close case: must never be bothFlowing at quiescence points;
		// with random scheduling we only check the end condition.
		return !(l.State() == slot.Flowing && rr.State() == slot.Flowing)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickRelinkAnyOrder: property — attaching a flowlink over two
// already-flowing slots converges to bothFlowing under any delivery
// interleaving (the distributed-convergence argument of paper Section
// VIII-B).
func TestQuickRelinkAnyOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := linkWorld(t)
		w.attach(NewOpenSlot("L", sig.Audio, endpointProfile("L", 5004)))
		w.attach(NewOpenSlot("R", sig.Audio, endpointProfile("R", 5006)))
		w.attach(NewHoldSlot("s1", ServerProfile{Name: "mid"}))
		w.attach(NewHoldSlot("s2", ServerProfile{Name: "mid"}))
		if !w.runShuffled(r, 2000) {
			return false
		}
		w.attach(NewFlowLink("s1", "s2"))
		if !w.runShuffled(r, 2000) {
			return false
		}
		return bothFlowing(w.Slot("L"), w.Slot("R"))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
