// Package core implements the paper's primary contribution: the four
// state-oriented goal primitives for compositional media control —
// openSlot, closeSlot, holdSlot, and flowLink (paper Section IV) — as
// the goal objects of the implementation design in Section VII, plus
// the uncoordinated Forwarder baseline that reproduces the erroneous
// behavior of paper Figure 2.
//
// Goal objects are pure reactive state machines: they receive slot
// events and emit signals, with no I/O, clocks, or goroutines of their
// own. The same goal code therefore runs unchanged under the in-process
// runtime, the TCP runtime, the discrete-event simulator, and the
// model checker.
package core

import (
	"fmt"

	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
)

// Slots gives a goal object access to the slots it controls. The box
// runtime and the model checker both implement it.
type Slots interface {
	// Slot returns the named slot, or nil if unknown.
	Slot(name string) *slot.Slot
}

// Action is an instruction to the runtime to transmit a signal on the
// tunnel behind a slot. When a goal emits an action through an Emitter
// the slot's Send has already validated and applied it; the runtime
// only forwards the signal to the transport. Raw actions bypass slot
// validation entirely and exist only for the naive Forwarder baseline.
type Action struct {
	Slot string
	Sig  sig.Signal
	Raw  bool
}

func (a Action) String() string { return fmt.Sprintf("%s<-%s", a.Slot, a.Sig) }

// Goal is a goal object (paper Sections IV and VII): it reads all the
// signals received from the slots it controls and writes all the
// signals sent to them.
type Goal interface {
	// Kind names the primitive, e.g. "openSlot".
	Kind() string
	// SlotNames lists the slots this goal controls.
	SlotNames() []string
	// Attach initializes the goal object: it queries its slots' states
	// and descriptors and emits whatever signals push toward its goal
	// (the slotState/slotDesc initialization of paper Section VII).
	Attach(ss Slots) ([]Action, error)
	// OnEvent reacts to a classified incoming signal on one of the
	// goal's slots. The slot has already applied the signal's state
	// effects.
	OnEvent(ss Slots, slotName string, ev slot.Event, g sig.Signal) ([]Action, error)
	// Refresh reacts to a change in the box's media profile (a user
	// toggled muteIn and/or muteOut — the modify event of paper
	// Figure 5).
	Refresh(ss Slots, inChanged, outChanged bool) ([]Action, error)
	// Clone deep-copies the goal object, for the model checker.
	Clone() Goal
	// AppendEncode appends a deterministic state fingerprint to dst and
	// returns the extended slice. Append-style (rather than writing to
	// a bytes.Buffer) so the model checker can fingerprint millions of
	// states into one reused buffer without allocating.
	AppendEncode(dst []byte) []byte
}

// Emitter validates and collects a goal's outgoing signals. Emit
// applies slot.Send immediately, so later logic in the same handler
// sees the post-send slot state.
type Emitter struct {
	ss   Slots
	acts []Action
	err  error
}

// NewEmitter returns an emitter over ss.
func NewEmitter(ss Slots) *Emitter { return &Emitter{ss: ss} }

// Emit validates g against the named slot and queues it for transport.
func (e *Emitter) Emit(name string, g sig.Signal) {
	if e.err != nil {
		return
	}
	s := e.ss.Slot(name)
	if s == nil {
		e.err = fmt.Errorf("core: no slot %q", name)
		return
	}
	if err := s.Send(g); err != nil {
		e.err = err
		return
	}
	e.acts = append(e.acts, Action{Slot: name, Sig: g})
}

// EmitRaw queues g without slot validation. Only the Forwarder uses
// this; it models servers that are not protocol endpoints.
func (e *Emitter) EmitRaw(name string, g sig.Signal) {
	if e.err != nil {
		return
	}
	e.acts = append(e.acts, Action{Slot: name, Sig: g, Raw: true})
}

// ackIfOwed emits the closeack for a previously received close, if one
// is still owed on the named slot.
func (e *Emitter) ackIfOwed(name string) {
	if e.err != nil {
		return
	}
	if s := e.ss.Slot(name); s != nil && s.OwesCloseAck() {
		e.Emit(name, sig.CloseAck())
	}
}

// Done returns the collected actions and the first error encountered.
func (e *Emitter) Done() ([]Action, error) { return e.acts, e.err }
