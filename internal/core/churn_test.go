package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
)

// TestQuickGoalChurnConverges is the strongest property test in the
// package: a one-flowlink path whose end goals are reassigned at
// random moments (open/hold/close in any order, mid-handshake,
// mid-flow), with deliveries in random order. After the churn stops
// and a final pair of goals is installed, the path must converge to
// exactly the state its Section V specification requires.
func TestQuickGoalChurnConverges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := newWorld(t)
		w.tunnel("L", "s1")
		w.tunnel("s2", "R")
		w.attach(NewFlowLink("s1", "s2"))
		w.attach(NewHoldSlot("L", endpointProfile("L", 5004)))
		w.attach(NewHoldSlot("R", endpointProfile("R", 5006)))

		mkGoal := func(end string, kind int) Goal {
			switch kind {
			case 0:
				return NewOpenSlot(end, sig.Audio, endpointProfile(end, 5004))
			case 1:
				return NewHoldSlot(end, endpointProfile(end, 5006))
			default:
				return NewCloseSlot(end)
			}
		}

		// Churn: random reassignments interleaved with random
		// deliveries.
		for i := 0; i < 12; i++ {
			switch r.Intn(3) {
			case 0:
				w.attach(mkGoal("L", r.Intn(3)))
			case 1:
				w.attach(mkGoal("R", r.Intn(3)))
			default:
				w.runShuffled(r, r.Intn(20))
			}
		}

		// Final goals: a pair with a deterministic specification.
		lKind, rKind := r.Intn(3), r.Intn(3)
		w.attach(mkGoal("L", lKind))
		w.attach(mkGoal("R", rKind))

		// An open/close pairing never quiesces (the openslot retries
		// forever); everything else must drain.
		openVsClose := (lKind == 0 && rKind == 2) || (lKind == 2 && rKind == 0)
		quiesced := w.runShuffled(r, 5000)
		l, rr := w.Slot("L"), w.Slot("R")
		switch {
		case openVsClose:
			// ◇□¬bothFlowing: sample the tail of the run.
			for i := 0; i < 50; i++ {
				w.runShuffled(r, 1)
				if l.State() == slot.Flowing && rr.State() == slot.Flowing {
					return false
				}
			}
			return true
		case lKind == 2 || rKind == 2: // any close: ◇□bothClosed
			return quiesced && l.State() == slot.Closed && rr.State() == slot.Closed
		case lKind == 1 && rKind == 1: // hold/hold: closed or flowing
			if !quiesced {
				return false
			}
			closed := l.State() == slot.Closed && rr.State() == slot.Closed
			return closed || bothFlowing(l, rr)
		default: // at least one open, none close: □◇bothFlowing
			return quiesced && bothFlowing(l, rr)
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
