// FlowLink: the fourth and most complex goal primitive (paper Sections
// IV-A and VII). A flowlink controls two slots, attempts to match
// their states as if the slots had always been connected transparently,
// and keeps them matched, with a bias toward media flow (Figure 12).
//
// Its code design follows the paper's two key concepts exactly:
//
//   - a slot is *described* if a current descriptor has been received
//     for it (slots in the opened and flowing states are described);
//   - each slot has a Boolean *up-to-date* (utd) variable that is true
//     iff the other slot is described and this slot has been sent the
//     other slot's most recent descriptor.
//
// In any live state the flowlink works to make the utd variables true.
// Selector handling needs no history at all: a selector received on
// one slot is forwarded iff it answers the other slot's current
// descriptor, and is discarded as obsolete otherwise.
package core

import (
	"fmt"
	"time"

	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
)

// FlowLink coordinates the signals of its two slots so that the
// signaling paths through them behave as one transparent path.
type FlowLink struct {
	A, B string
	// UtdA (UtdB) is true iff slot A (B) has been sent slot B's (A's)
	// most recent descriptor. Both are initialized false at attach, so
	// a new flowlink always re-describes both sides — the behavior
	// visible in paper Figure 13, including the apparently redundant
	// describe(noMedia).
	UtdA, UtdB bool
}

// NewFlowLink builds a flowlink over slots a and b.
func NewFlowLink(a, b string) *FlowLink { return &FlowLink{A: a, B: b} }

// Kind implements Goal.
func (g *FlowLink) Kind() string { return "flowLink" }

// SlotNames implements Goal.
func (g *FlowLink) SlotNames() []string { return []string{g.A, g.B} }

// other returns the name of the other slot of the link.
func (g *FlowLink) other(name string) string {
	if name == g.A {
		return g.B
	}
	return g.A
}

// utd returns a pointer to the utd variable of the named slot.
func (g *FlowLink) utd(name string) *bool {
	if name == g.A {
		return &g.UtdA
	}
	return &g.UtdB
}

// Attach implements Goal. Initially the flowlink's slots can be in any
// states; it is a precondition that if both slots have their medium
// defined, the media are the same (paper Section IV-A).
func (g *FlowLink) Attach(ss Slots) ([]Action, error) {
	sa, sb := ss.Slot(g.A), ss.Slot(g.B)
	if sa == nil || sb == nil {
		return nil, fmt.Errorf("core: flowLink(%s,%s): unknown slot", g.A, g.B)
	}
	if sa.State() != slot.Closed && sb.State() != slot.Closed && sa.Medium() != sb.Medium() {
		return nil, fmt.Errorf("core: flowLink(%s,%s): medium mismatch %q vs %q", g.A, g.B, sa.Medium(), sb.Medium())
	}
	defer goalHists().link.ObserveSince(time.Now())
	g.UtdA, g.UtdB = false, false
	em := NewEmitter(ss)
	em.ackIfOwed(g.A)
	em.ackIfOwed(g.B)
	g.reconcile(em, ss)
	return em.Done()
}

// reconcile performs the state matching of paper Figure 12: from
// whichever superstate the pair of slot states is in, it pushes toward
// the goal substate (both flowing if either side is live, both closed
// otherwise), and in live states it works to make the utd variables
// true. It loops to a fixpoint because one emission can enable
// another (e.g. oacking one slot makes it flowing, enabling a
// describe).
func (g *FlowLink) reconcile(em *Emitter, ss Slots) {
	for progress := true; progress && em.err == nil; {
		progress = false
		for _, pair := range [2][2]string{{g.A, g.B}, {g.B, g.A}} {
			from, to := pair[0], pair[1]
			sf, st := ss.Slot(from), ss.Slot(to)
			d, described := sf.Desc()
			if !described {
				continue
			}
			// from is described (opened or flowing); push its descriptor
			// toward to, in whatever form to's state requires.
			utd := g.utd(to)
			switch st.State() {
			case slot.Closed:
				if !st.OwesCloseAck() {
					em.Emit(to, sig.Open(sf.Medium(), d))
					*utd = true
					progress = true
				}
			case slot.Opened:
				em.Emit(to, sig.Oack(d))
				*utd = true
				progress = true
			case slot.Flowing:
				if !*utd {
					em.Emit(to, sig.Describe(d))
					*utd = true
					progress = true
				}
			case slot.Opening, slot.Closing:
				// Wait for the far end's oack/close or the closeack.
			}
		}
	}
}

// OnEvent implements Goal.
func (g *FlowLink) OnEvent(ss Slots, name string, ev slot.Event, in sig.Signal) ([]Action, error) {
	defer goalHists().link.ObserveSince(time.Now())
	em := NewEmitter(ss)
	other := g.other(name)
	switch ev {
	case slot.EvOpen, slot.EvOpenRace, slot.EvOack, slot.EvDescribe:
		// This slot has a fresh descriptor: the other slot is no longer
		// up to date. Reconciliation forwards it in the right form.
		*g.utd(other) = false
		g.reconcile(em, ss)
	case slot.EvClose:
		// One side of the path is closing the channel. Acknowledge, and
		// propagate the closure to the other side (Figure 12: the
		// environment chose the one-live or both-dead superstate).
		em.ackIfOwed(name)
		*g.utd(name) = false
		*g.utd(other) = false
		if so := ss.Slot(other); so.State().Live() {
			em.Emit(other, sig.Close())
		}
	case slot.EvCloseAck:
		// A closure completed; the far end may have reopened the other
		// side in the meantime.
		g.reconcile(em, ss)
	case slot.EvSelect:
		// Forward iff the selector answers the other slot's current
		// descriptor; otherwise it is obsolete and is discarded (paper
		// Section VII). Only fresh selectors matter, so no history of
		// selectors is kept.
		so := ss.Slot(other)
		if d, ok := so.Desc(); ok && d.ID == in.Sel.Answers && so.State() == slot.Flowing {
			em.Emit(other, sig.Select(in.Sel))
		}
	case slot.EvStale:
		// Already discarded by the slot.
	}
	return em.Done()
}

// Refresh implements Goal: a flowlink has no media profile of its own.
func (g *FlowLink) Refresh(Slots, bool, bool) ([]Action, error) { return nil, nil }

// Clone implements Goal.
func (g *FlowLink) Clone() Goal {
	c := *g
	return &c
}

// AppendEncode implements Goal.
func (g *FlowLink) AppendEncode(dst []byte) []byte {
	dst = append(dst, "link:"...)
	dst = append(dst, g.A...)
	dst = append(dst, ',')
	dst = append(dst, g.B...)
	return append(dst, boolByte(g.UtdA), boolByte(g.UtdB))
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// Forwarder is NOT one of the paper's primitives: it is the baseline
// that reproduces the erroneous behavior of paper Figure 2. A
// forwarder models a server that is not coordinated with other
// servers: "it is standard behavior for a server receiving a signal
// that does not concern itself to forward the signal untouched"
// (Section II-A). It performs no state matching, no descriptor
// caching, and no selector filtering; its box does not act as a
// protocol endpoint at all.
type Forwarder struct {
	A, B string
}

// NewForwarder builds an uncoordinated forwarding link over slots a
// and b.
func NewForwarder(a, b string) *Forwarder { return &Forwarder{A: a, B: b} }

// Kind implements Goal.
func (g *Forwarder) Kind() string { return "forwarder" }

// SlotNames implements Goal.
func (g *Forwarder) SlotNames() []string { return []string{g.A, g.B} }

// Attach implements Goal: a forwarder does nothing on attach.
func (g *Forwarder) Attach(Slots) ([]Action, error) { return nil, nil }

// OnEvent is never called for a Forwarder; the box runtime detects raw
// goals and calls OnRaw instead.
func (g *Forwarder) OnEvent(Slots, string, slot.Event, sig.Signal) ([]Action, error) {
	return nil, fmt.Errorf("core: Forwarder.OnEvent must not be called; use OnRaw")
}

// OnRaw forwards the incoming signal untouched to the other slot.
func (g *Forwarder) OnRaw(name string, in sig.Signal) []Action {
	to := g.A
	if name == g.A {
		to = g.B
	}
	return []Action{{Slot: to, Sig: in, Raw: true}}
}

// Refresh implements Goal.
func (g *Forwarder) Refresh(Slots, bool, bool) ([]Action, error) { return nil, nil }

// Clone implements Goal.
func (g *Forwarder) Clone() Goal {
	c := *g
	return &c
}

// AppendEncode implements Goal.
func (g *Forwarder) AppendEncode(dst []byte) []byte {
	dst = append(dst, "fwd:"...)
	dst = append(dst, g.A...)
	dst = append(dst, ',')
	return append(dst, g.B...)
}

// RawGoal marks goals whose slots are not protocol endpoints: the box
// runtime delivers raw signals to OnRaw without slot state tracking.
type RawGoal interface {
	Goal
	OnRaw(slotName string, in sig.Signal) []Action
}

var _ RawGoal = (*Forwarder)(nil)
