// The three single-slot goal primitives: openSlot, closeSlot, and
// holdSlot (paper Section IV-A). Each is "a refinement of Figure 5 in
// which the object always chooses certain actions", structured as a
// finite-state machine following Figure 9 (paper Section VII).
package core

import (
	"fmt"
	"time"

	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
)

// OpenSlot is the openSlot goal: open a media channel and get it to
// the flowing state, taking every possible opportunity to push toward
// flowing. If it sends open and receives reject, it sends open again.
type OpenSlot struct {
	Name   string     // slot controlled
	Medium sig.Medium // medium of the channel to open
	P      Profile
}

// NewOpenSlot builds an openSlot goal for the named slot.
func NewOpenSlot(name string, m sig.Medium, p Profile) *OpenSlot {
	return &OpenSlot{Name: name, Medium: m, P: p}
}

// Kind implements Goal.
func (g *OpenSlot) Kind() string { return "openSlot" }

// SlotNames implements Goal.
func (g *OpenSlot) SlotNames() []string { return []string{g.Name} }

// Attach implements Goal. Per the paper, openSlot(s,m) may annotate a
// *program state* only if s is closed when the state is entered; that
// precondition is enforced by the box runtime. The engine itself
// tolerates any initial state, which the model checker's
// nondeterministic initial phases require: it pushes toward flowing
// from wherever the slot is.
func (g *OpenSlot) Attach(ss Slots) ([]Action, error) {
	em := NewEmitter(ss)
	s := ss.Slot(g.Name)
	if s == nil {
		return nil, fmt.Errorf("core: no slot %q", g.Name)
	}
	em.ackIfOwed(g.Name)
	switch s.State() {
	case slot.Closed:
		em.Emit(g.Name, sig.Open(g.Medium, g.P.Describe()))
	case slot.Opened:
		em.Emit(g.Name, sig.Oack(g.P.Describe()))
		if d, ok := s.Desc(); ok {
			em.Emit(g.Name, sig.Select(g.P.Answer(d)))
		}
	case slot.Flowing:
		g.redescribeIfStale(em, s, g.Name)
		// Re-send the selector unconditionally: a selector the previous
		// controller sent may have been discarded as obsolete by a
		// flowlink along the path, and every goal object must answer
		// the current descriptor to re-establish the path state.
		if d, ok := s.Desc(); ok {
			em.Emit(g.Name, sig.Select(g.P.Answer(d)))
		}
	case slot.Opening, slot.Closing:
		// Wait for the far end or the in-flight closeack.
	}
	return em.Done()
}

// OnEvent implements Goal.
func (g *OpenSlot) OnEvent(ss Slots, name string, ev slot.Event, in sig.Signal) ([]Action, error) {
	defer goalHists().open.ObserveSince(time.Now())
	em := NewEmitter(ss)
	s := ss.Slot(name)
	switch ev {
	case slot.EvOack:
		// Channel accepted: answer the acceptor's descriptor, and
		// refresh our own description if it changed while opening.
		em.Emit(name, sig.Select(g.P.Answer(in.Desc)))
		g.redescribeIfStale(em, s, name)
	case slot.EvDescribe:
		em.Emit(name, sig.Select(g.P.Answer(in.Desc)))
	case slot.EvOpen, slot.EvOpenRace:
		// Either the far end opened first (after a rejection cycle), or
		// we lost an open-open race and back off to be the acceptor
		// (paper Section VII footnote). Both push toward flowing.
		em.Emit(name, sig.Oack(g.P.Describe()))
		em.Emit(name, sig.Select(g.P.Answer(in.Desc)))
	case slot.EvClose:
		// Rejected (or closed from flowing): acknowledge and try again.
		// In a simultaneous close (a previous controller of the slot
		// sent a close that is still unacknowledged) the slot is still
		// closing; the retry then waits for the closeack.
		em.ackIfOwed(name)
		if s != nil && s.State() == slot.Closed {
			em.Emit(name, sig.Open(g.Medium, g.P.Describe()))
		}
	case slot.EvCloseAck:
		// A close sent by a previous goal completed under our control:
		// the slot is closed, so pursue the goal and reopen.
		em.Emit(name, sig.Open(g.Medium, g.P.Describe()))
	case slot.EvSelect, slot.EvStale:
		// Nothing to do: selects are recorded by the slot, stale
		// signals are already discarded.
	}
	return em.Done()
}

// redescribeIfStale sends a fresh describe if the profile's current
// descriptor differs from the one most recently sent on the slot.
func (g *OpenSlot) redescribeIfStale(em *Emitter, s *slot.Slot, name string) {
	if s == nil || s.State() != slot.Flowing {
		return
	}
	cur := g.P.Describe()
	if h := s.Hist(); !h.HasDescSent || h.DescSent.ID != cur.ID {
		em.Emit(name, sig.Describe(cur))
	}
}

// Refresh implements Goal.
func (g *OpenSlot) Refresh(ss Slots, inChanged, outChanged bool) ([]Action, error) {
	return refreshSingle(ss, g.Name, g.P, inChanged, outChanged)
}

// Clone implements Goal.
func (g *OpenSlot) Clone() Goal {
	return &OpenSlot{Name: g.Name, Medium: g.Medium, P: g.P.Clone()}
}

// AppendEncode implements Goal.
func (g *OpenSlot) AppendEncode(dst []byte) []byte {
	dst = append(dst, "open:"...)
	dst = append(dst, g.Name...)
	dst = append(dst, string(g.Medium)...)
	return g.P.AppendEncode(dst)
}

// refreshSingle implements the modify event for single-slot goals: a
// changed muteIn needs a fresh describe, a changed muteOut a fresh
// select, both only meaningful in the flowing state (earlier states
// pick up the new values when they reach flowing).
func refreshSingle(ss Slots, name string, p Profile, inChanged, outChanged bool) ([]Action, error) {
	em := NewEmitter(ss)
	s := ss.Slot(name)
	if s == nil || s.State() != slot.Flowing {
		return nil, nil
	}
	if inChanged {
		em.Emit(name, sig.Describe(p.Describe()))
	}
	if outChanged {
		if d, ok := s.Desc(); ok {
			em.Emit(name, sig.Select(p.Answer(d)))
		}
	}
	return em.Done()
}

// CloseSlot is the closeSlot goal: get the slot to the closed state
// and keep it there, rejecting any open immediately.
type CloseSlot struct {
	Name string
}

// NewCloseSlot builds a closeSlot goal for the named slot.
func NewCloseSlot(name string) *CloseSlot { return &CloseSlot{Name: name} }

// Kind implements Goal.
func (g *CloseSlot) Kind() string { return "closeSlot" }

// SlotNames implements Goal.
func (g *CloseSlot) SlotNames() []string { return []string{g.Name} }

// Attach implements Goal. A closeSlot can gain control with the slot
// in any state and proceeds from that point (paper Section IV-A).
func (g *CloseSlot) Attach(ss Slots) ([]Action, error) {
	em := NewEmitter(ss)
	s := ss.Slot(g.Name)
	if s == nil {
		return nil, fmt.Errorf("core: no slot %q", g.Name)
	}
	em.ackIfOwed(g.Name)
	switch s.State() {
	case slot.Opening, slot.Opened, slot.Flowing:
		em.Emit(g.Name, sig.Close())
	case slot.Closed, slot.Closing:
		// Already there, or waiting for a closeack.
	}
	return em.Done()
}

// OnEvent implements Goal.
func (g *CloseSlot) OnEvent(ss Slots, name string, ev slot.Event, in sig.Signal) ([]Action, error) {
	defer goalHists().clos.ObserveSince(time.Now())
	em := NewEmitter(ss)
	switch ev {
	case slot.EvOpen, slot.EvOpenRace:
		// Reject immediately.
		em.Emit(name, sig.Close())
	case slot.EvClose:
		em.ackIfOwed(name)
	case slot.EvCloseAck, slot.EvSelect, slot.EvDescribe, slot.EvOack, slot.EvStale:
		// CloseAck completes our close. The others cannot occur while a
		// closeSlot is attached (the attach close races ahead of them
		// and the slot discards them as stale), so nothing to do.
	}
	return em.Done()
}

// Refresh implements Goal: a closeSlot has no media description.
func (g *CloseSlot) Refresh(Slots, bool, bool) ([]Action, error) { return nil, nil }

// Clone implements Goal.
func (g *CloseSlot) Clone() Goal { return &CloseSlot{Name: g.Name} }

// AppendEncode implements Goal.
func (g *CloseSlot) AppendEncode(dst []byte) []byte {
	dst = append(dst, "close:"...)
	return append(dst, g.Name...)
}

// HoldSlot is the holdSlot goal: accept a media channel and get it to
// the flowing state, but only if the channel is requested by the other
// end of the signaling path; never originate an open or a close.
type HoldSlot struct {
	Name string
	P    Profile
}

// NewHoldSlot builds a holdSlot goal for the named slot.
func NewHoldSlot(name string, p Profile) *HoldSlot { return &HoldSlot{Name: name, P: p} }

// Kind implements Goal.
func (g *HoldSlot) Kind() string { return "holdSlot" }

// SlotNames implements Goal.
func (g *HoldSlot) SlotNames() []string { return []string{g.Name} }

// Attach implements Goal. A holdSlot can gain control with the slot in
// any state. On gaining control of an already-flowing slot it asserts
// its own description and answer — for a server profile this mutes the
// channel in both directions, which is exactly how the prepaid-card
// server puts telephone A on hold in paper Figure 3, Snapshot 2.
func (g *HoldSlot) Attach(ss Slots) ([]Action, error) {
	em := NewEmitter(ss)
	s := ss.Slot(g.Name)
	if s == nil {
		return nil, fmt.Errorf("core: no slot %q", g.Name)
	}
	em.ackIfOwed(g.Name)
	switch s.State() {
	case slot.Opened:
		em.Emit(g.Name, sig.Oack(g.P.Describe()))
		if d, ok := s.Desc(); ok {
			em.Emit(g.Name, sig.Select(g.P.Answer(d)))
		}
	case slot.Flowing:
		cur := g.P.Describe()
		if h := s.Hist(); !h.HasDescSent || h.DescSent.ID != cur.ID {
			em.Emit(g.Name, sig.Describe(cur))
		}
		// Re-send the selector unconditionally (see OpenSlot.Attach): a
		// previous selector may have been discarded along the path.
		if d, ok := s.Desc(); ok {
			em.Emit(g.Name, sig.Select(g.P.Answer(d)))
		}
	case slot.Closed, slot.Opening, slot.Closing:
		// Wait: holdSlot never originates anything.
	}
	return em.Done()
}

// OnEvent implements Goal.
func (g *HoldSlot) OnEvent(ss Slots, name string, ev slot.Event, in sig.Signal) ([]Action, error) {
	defer goalHists().hold.ObserveSince(time.Now())
	em := NewEmitter(ss)
	s := ss.Slot(name)
	switch ev {
	case slot.EvOpen, slot.EvOpenRace:
		em.Emit(name, sig.Oack(g.P.Describe()))
		em.Emit(name, sig.Select(g.P.Answer(in.Desc)))
	case slot.EvOack:
		// A previous goal's open completed under our control.
		em.Emit(name, sig.Select(g.P.Answer(in.Desc)))
		cur := g.P.Describe()
		if s != nil {
			if h := s.Hist(); !h.HasDescSent || h.DescSent.ID != cur.ID {
				em.Emit(name, sig.Describe(cur))
			}
		}
	case slot.EvDescribe:
		em.Emit(name, sig.Select(g.P.Answer(in.Desc)))
	case slot.EvClose:
		// The far end closed: acknowledge and remain closed until the
		// far end asks to open again.
		em.ackIfOwed(name)
	case slot.EvCloseAck, slot.EvSelect, slot.EvStale:
		// CloseAck can complete a close sent by a previous goal.
	}
	return em.Done()
}

// Refresh implements Goal.
func (g *HoldSlot) Refresh(ss Slots, inChanged, outChanged bool) ([]Action, error) {
	return refreshSingle(ss, g.Name, g.P, inChanged, outChanged)
}

// Clone implements Goal.
func (g *HoldSlot) Clone() Goal { return &HoldSlot{Name: g.Name, P: g.P.Clone()} }

// AppendEncode implements Goal.
func (g *HoldSlot) AppendEncode(dst []byte) []byte {
	dst = append(dst, "hold:"...)
	dst = append(dst, g.Name...)
	return g.P.AppendEncode(dst)
}
