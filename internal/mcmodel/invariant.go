// Continuous invariants checked in every reachable state, and the
// segment-lemma models of paper Section VIII-B ("toward complete
// verification"): the paper proposes proving whole-path correctness
// inductively from lemmas over path segments "no larger than two
// tunnels and three boxes (in other words, a segment with no more than
// one internal flowlink)", each lemma verifiable by model checking.
//
// Our segment lemma checks a flowlink against *purely chaotic*
// environments at both ends — the ends never switch to a cooperative
// goal — and asserts that the flowlink alone never breaks the
// protocol: no violations, no unpaid obligations of its own, and the
// up-to-date bookkeeping stays sound. Because the environments
// over-approximate anything a neighboring segment can do, the lemma
// composes across segments.
package mcmodel

import (
	"fmt"

	"ipmedia/internal/core"
	"ipmedia/internal/slot"
)

// Invariant implements mc.InvariantState: properties that must hold in
// every reachable state.
func (s *pstate) Invariant() error {
	if err := s.utdInvariant(); err != nil {
		return err
	}
	return s.tunnelInvariant()
}

// utdInvariant is the soundness of the flowlink's up-to-date variables
// (paper Section VII): utd(x) is true only if the other slot is
// described and x has been sent the other slot's most recent
// descriptor.
func (s *pstate) utdInvariant() error {
	for _, n := range s.nodes {
		fl, ok := n.goal.(*core.FlowLink)
		if !ok || n.phase != 1 {
			continue
		}
		check := func(name string, utd bool, other string) error {
			if !utd {
				return nil
			}
			so := n.slots[other]
			d, described := so.Desc()
			if !described {
				return fmt.Errorf("utd(%s) true but %s is not described", name, other)
			}
			h := n.slots[name].Hist()
			if !h.HasDescSent || !h.DescSent.Equal(d) {
				return fmt.Errorf("utd(%s) true but last descriptor sent (%v) differs from %s's current (%v)",
					name, h.DescSent, other, d)
			}
			return nil
		}
		if err := check(fl.A, fl.UtdA, fl.B); err != nil {
			return err
		}
		if err := check(fl.B, fl.UtdB, fl.A); err != nil {
			return err
		}
	}
	return nil
}

// tunnelInvariant is a protocol-level pairing property: whenever both
// queues of a tunnel are empty and both adjacent goal objects are past
// their chaos phase, the two tunnel-end slots must be in one of the
// compatible state pairs — (closed, closed), (flowing, flowing), or an
// opening/opened pair — and neither may still owe a closeack (goals
// acknowledge atomically, so an unpaid debt would mean a lost
// obligation).
func (s *pstate) tunnelInvariant() error {
	for t := 0; t < len(s.nodes)-1; t++ {
		if len(s.queues[2*t]) > 0 || len(s.queues[2*t+1]) > 0 {
			continue
		}
		left, right := s.nodes[t], s.nodes[t+1]
		if !left.settled() || !right.settled() {
			continue
		}
		ls := left.slots[left.names[len(left.names)-1]]
		rs := right.slots[right.names[0]]
		if ls.OwesCloseAck() || rs.OwesCloseAck() {
			return fmt.Errorf("tunnel %d drained but a closeack is still owed (%s/%s)", t, ls.State(), rs.State())
		}
		a, b := ls.State(), rs.State()
		ok := (a == slot.Closed && b == slot.Closed) ||
			(a == slot.Flowing && b == slot.Flowing) ||
			(a == slot.Opening && b == slot.Opened) ||
			(a == slot.Opened && b == slot.Opening)
		if !ok {
			return fmt.Errorf("tunnel %d drained into incompatible states %s/%s", t, a, b)
		}
	}
	return nil
}

// settled reports whether a node's goal object is done with
// nondeterministic behavior: it has switched to its real goal, or it
// is a never-switching chaotic environment with its budget exhausted
// and all protocol obligations (closeacks) discharged.
func (n *node) settled() bool {
	if n.phase == 1 {
		return true
	}
	if !n.chaosEnd || n.budget != 0 {
		return false
	}
	for _, name := range n.names {
		if n.slots[name].OwesCloseAck() {
			return false
		}
	}
	return true
}
