// The verification suite of paper Section VIII-A: twelve signaling
// paths — six without flowlinks covering every end-goal combination,
// and six with one flowlink each — checked for safety and for their
// Section V temporal specification.
package mcmodel

import (
	"fmt"

	"ipmedia/internal/ltl"
	"ipmedia/internal/mc"
)

// Combos are the six end-goal combinations, up to symmetry.
var Combos = [][2]GoalKind{
	{Close, Close},
	{Close, Hold},
	{Close, Open},
	{Hold, Hold},
	{Open, Hold},
	{Open, Open},
}

// Configs returns the six path models with the given number of
// flowlinks.
func Configs(flowlinks int) []Config {
	out := make([]Config, 0, len(Combos))
	for _, c := range Combos {
		out = append(out, Config{Left: c[0], Right: c[1], Flowlinks: flowlinks})
	}
	return out
}

// Verdict is the outcome of checking one path model.
type Verdict struct {
	Config   Config
	Prop     ltl.PathProp
	Result   *mc.Result
	Safety   error
	Liveness error
}

// OK reports whether both checks passed.
func (v Verdict) OK() bool { return v.Safety == nil && v.Liveness == nil }

// Check explores one path model and verifies it: first the safety
// check (no deadlocks or abnormal terminations; final states have
// every slot closed or flowing and all channels empty), then the
// temporal specification of Section V.
func Check(cfg Config, opts mc.Options) Verdict {
	cfg = cfg.withDefaults()
	v := Verdict{Config: cfg, Prop: cfg.Spec()}
	g, res := mc.Explore(New(cfg), opts)
	v.Result = res
	switch {
	case res.Truncated:
		v.Safety = fmt.Errorf("state space truncated at %d states", res.States)
	case len(res.Deadlocks) > 0:
		v.Safety = fmt.Errorf("%d deadlocks, first:\n%s", len(res.Deadlocks), res.Deadlocks[0])
	case len(res.SafetyErrs) > 0:
		v.Safety = fmt.Errorf("%d final-state violations, first:\n%s", len(res.SafetyErrs), res.SafetyErrs[0])
	}
	if v.Safety == nil {
		v.Liveness = g.CheckProp(v.Prop)
	}
	return v
}

// Suite runs all twelve models of the paper (flowlinks = 0 and 1).
func Suite(opts mc.Options) []Verdict {
	var out []Verdict
	for _, fl := range []int{0, 1} {
		for _, cfg := range Configs(fl) {
			out = append(out, Check(cfg, opts))
		}
	}
	return out
}
