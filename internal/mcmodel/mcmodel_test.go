package mcmodel

import (
	"strings"
	"testing"

	"ipmedia/internal/ltl"
	"ipmedia/internal/mc"
)

// TestSuiteDefaults verifies all twelve path models of paper Section
// VIII-A at the default chaos budgets: safety (no deadlocks, final
// states closed-or-flowing with empty channels) and the Section V
// temporal specification of each path type.
func TestSuiteDefaults(t *testing.T) {
	for _, v := range Suite(mc.Options{MaxStates: 5_000_000}) {
		v := v
		t.Run(v.Config.Name(), func(t *testing.T) {
			if v.Safety != nil {
				t.Errorf("safety: %v", v.Safety)
			}
			if v.Liveness != nil {
				t.Errorf("liveness (%s): %v", v.Prop, v.Liveness)
			}
			if v.Result.States < 100 {
				t.Errorf("suspiciously small state space: %d", v.Result.States)
			}
		})
	}
}

// TestFlowlinkBudget2 runs the deepest nondeterminism we use for the
// paper's flowlink-cost comparison on one representative model. The
// full budget-2 sweep lives in cmd/pathcheck and the benchmarks.
func TestFlowlinkBudget2(t *testing.T) {
	if testing.Short() {
		t.Skip("budget-2 flowlink model is slow")
	}
	cfg := Config{Left: Open, Right: Hold, Flowlinks: 1, ChaosBudget: 2}
	v := Check(cfg, mc.Options{MaxStates: 20_000_000})
	if !v.OK() {
		t.Fatalf("safety=%v liveness=%v", v.Safety, v.Liveness)
	}
	if v.Result.States < 10_000 {
		t.Errorf("budget-2 flowlink space too small: %d states", v.Result.States)
	}
}

// TestSpecsMatchPaper pins the property assigned to each path type to
// Section V's table.
func TestSpecsMatchPaper(t *testing.T) {
	want := map[[2]GoalKind]ltl.PathProp{
		{Close, Close}: ltl.StabClosed,
		{Close, Hold}:  ltl.StabClosed,
		{Close, Open}:  ltl.StabNotFlowing,
		{Hold, Hold}:   ltl.ClosedOrFlowing,
		{Open, Hold}:   ltl.RecFlowing,
		{Open, Open}:   ltl.RecFlowing,
	}
	for combo, prop := range want {
		cfg := Config{Left: combo[0], Right: combo[1]}
		if got := cfg.Spec(); got != prop {
			t.Errorf("%v: spec = %s, want %s", combo, got, prop)
		}
	}
}

// TestFlowlinkBlowup reproduces the shape of the paper's Section
// VIII-A observation: adding a flowlink to a path model multiplies the
// verification cost by orders of magnitude (paper: x300 memory, x1000
// time on their Spin models).
func TestFlowlinkBlowup(t *testing.T) {
	if testing.Short() {
		t.Skip("state-space comparison is slow")
	}
	base := Check(Config{Left: Open, Right: Hold, Flowlinks: 0, ChaosBudget: 2}, mc.Options{})
	link := Check(Config{Left: Open, Right: Hold, Flowlinks: 1, ChaosBudget: 2}, mc.Options{})
	if !base.OK() || !link.OK() {
		t.Fatalf("models must verify: base=%v/%v link=%v/%v", base.Safety, base.Liveness, link.Safety, link.Liveness)
	}
	ratio := float64(link.Result.States) / float64(base.Result.States)
	if ratio < 10 {
		t.Errorf("flowlink state blow-up only x%.1f; expected orders of magnitude", ratio)
	}
	t.Logf("states: %d -> %d (x%.0f), transitions %d -> %d, time %v -> %v",
		base.Result.States, link.Result.States, ratio,
		base.Result.Transitions, link.Result.Transitions,
		base.Result.Elapsed, link.Result.Elapsed)
}

// TestPoisonedStatesSurfaceAsDeadlocks: a model variant that violates
// the protocol must be reported, not silently explored. We simulate by
// overflowing a tiny queue cap.
func TestQueueOverflowReported(t *testing.T) {
	cfg := Config{Left: Open, Right: Open, Flowlinks: 0, ChaosBudget: 2, QueueCap: 1}
	v := Check(cfg, mc.Options{MaxStates: 2_000_000})
	if v.Safety == nil {
		t.Fatal("queue cap 1 must overflow and be reported as a safety violation")
	}
	if !strings.Contains(v.Safety.Error(), "deadlock") {
		t.Logf("reported as: %v", v.Safety)
	}
}

// TestModelNames pins the report naming.
func TestModelNames(t *testing.T) {
	cfg := Config{Left: Open, Right: Hold, Flowlinks: 1}
	if cfg.Name() != "open--1fl--hold" {
		t.Errorf("name = %q", cfg.Name())
	}
}
