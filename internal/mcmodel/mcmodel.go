// Package mcmodel builds the signaling-path models verified in paper
// Section VIII-A: "six paths with no flowlinks and every possible
// combination of closeslots, openslots, and holdslots at their ends,
// and six paths similar to the first six paths but with one flowlink
// each."
//
// As in the paper, every slot is controlled by a goal object with two
// phases: in its initial phase the behavior of the slot is
// nondeterministic (bounded by a chaos budget), and at some
// nondeterministically chosen point the object switches permanently to
// its real goal. Model checking therefore covers traces in which the
// goal objects begin their real work in all possible initial states of
// the slots and tunnels.
//
// Unlike the paper, which modeled the Java implementation in Promela,
// these models execute the actual Go goal engines of internal/core:
// there is no model/code gap.
package mcmodel

import (
	"fmt"

	"ipmedia/internal/core"
	"ipmedia/internal/ltl"
	"ipmedia/internal/mc"
	"ipmedia/internal/path"
	"ipmedia/internal/sig"
	"ipmedia/internal/slot"
)

// GoalKind names a path-end goal.
type GoalKind string

// The three path-end goal kinds.
const (
	Open  GoalKind = "openSlot"
	Close GoalKind = "closeSlot"
	Hold  GoalKind = "holdSlot"
)

// Config describes one signaling-path model.
type Config struct {
	Left, Right GoalKind
	Flowlinks   int
	// ChaosBudget bounds the nondeterministic actions of each goal
	// object's initial phase (default 2 for flowlink-free paths, 1 per
	// goal when flowlinks are present, mirroring the paper's
	// "few simplifying assumptions").
	ChaosBudget int
	// QueueCap bounds tunnel queues, like a Promela channel capacity.
	QueueCap int
	// ChaosEnds makes the two path-end goal objects purely chaotic
	// environments that never switch to a cooperative goal — the
	// segment-lemma configuration of Section VIII-B. Only safety and
	// the continuous invariants are meaningful then.
	ChaosEnds bool
}

// Name renders the model name used in reports.
func (c Config) Name() string {
	return fmt.Sprintf("%s--%dfl--%s", short(c.Left), c.Flowlinks, short(c.Right))
}

func short(k GoalKind) string {
	switch k {
	case Open:
		return "open"
	case Close:
		return "close"
	default:
		return "hold"
	}
}

// Spec returns the temporal property this path type must satisfy.
func (c Config) Spec() ltl.PathProp {
	p, err := ltl.SpecFor(string(c.Left), string(c.Right))
	if err != nil {
		panic(err)
	}
	return p
}

func (c Config) withDefaults() Config {
	if c.ChaosBudget == 0 {
		if c.Flowlinks > 0 {
			c.ChaosBudget = 1
		} else {
			c.ChaosBudget = 2
		}
	}
	if c.QueueCap == 0 {
		c.QueueCap = 8
	}
	return c
}

// node is one box on the path: an end node with a single slot and a
// single-slot goal, or a middle node with two flowlinked slots.
type node struct {
	idx      int
	names    []string // slot names, left to right
	slots    map[string]*slot.Slot
	prof     core.Profile
	kind     GoalKind // end nodes only
	goal     core.Goal
	phase    int // 0: chaos; 1: goal attached
	budget   int
	chaosEnd bool // never switches: a pure environment (segment lemma)
}

func (n *node) Slot(name string) *slot.Slot { return n.slots[name] }

func (n *node) clone() *node {
	c := &node{
		idx: n.idx, names: n.names, kind: n.kind,
		phase: n.phase, budget: n.budget, chaosEnd: n.chaosEnd,
		slots: make(map[string]*slot.Slot, len(n.slots)),
	}
	for k, s := range n.slots {
		c.slots[k] = s.Clone()
	}
	c.prof = n.prof.Clone()
	if n.goal != nil {
		c.goal = n.goal.Clone()
		// Single-slot goals must share the node's (possibly mutated)
		// profile object; re-bind it.
		switch g := c.goal.(type) {
		case *core.OpenSlot:
			g.P = c.prof
		case *core.HoldSlot:
			g.P = c.prof
		}
	}
	return c
}

// pstate is one global state of the path model.
type pstate struct {
	cfg    Config
	nodes  []*node
	queues [][]sig.Signal
	// poisoned records a protocol violation encountered while
	// constructing this state; it becomes a terminal non-quiescent
	// state, reported with its trace.
	poisoned string
}

// New builds the initial state of a path model: all slots closed, all
// queues empty, all goal objects in their chaos phase.
func New(cfg Config) mc.State {
	cfg = cfg.withDefaults()
	st := &pstate{cfg: cfg}
	nNodes := cfg.Flowlinks + 2
	for i := 0; i < nNodes; i++ {
		n := &node{idx: i, slots: map[string]*slot.Slot{}, budget: cfg.ChaosBudget}
		switch {
		case i == 0:
			n.kind = cfg.Left
			n.names = []string{"L"}
			n.prof = core.NewEndpointProfile("L", "hL", 1, []sig.Codec{sig.G711}, []sig.Codec{sig.G711})
			n.chaosEnd = cfg.ChaosEnds
		case i == nNodes-1:
			n.kind = cfg.Right
			n.names = []string{"R"}
			n.prof = core.NewEndpointProfile("R", "hR", 2, []sig.Codec{sig.G711}, []sig.Codec{sig.G711})
			n.chaosEnd = cfg.ChaosEnds
		default:
			a, b := fmt.Sprintf("m%da", i), fmt.Sprintf("m%db", i)
			n.names = []string{a, b}
			n.prof = core.ServerProfile{Name: fmt.Sprintf("m%d", i)}
		}
		// Tunnel t connects node t's right slot (initiator) to node
		// t+1's left slot.
		for j, name := range n.names {
			initiator := j == len(n.names)-1 && i < nNodes-1
			n.slots[name] = slot.New(name, initiator)
		}
		st.nodes = append(st.nodes, n)
	}
	st.queues = make([][]sig.Signal, 2*(nNodes-1))
	return st
}

func (s *pstate) clone() *pstate {
	c := &pstate{cfg: s.cfg, poisoned: s.poisoned}
	c.nodes = make([]*node, len(s.nodes))
	for i, n := range s.nodes {
		c.nodes[i] = n.clone()
	}
	c.queues = make([][]sig.Signal, len(s.queues))
	for i, q := range s.queues {
		c.queues[i] = append([]sig.Signal(nil), q...)
	}
	return c
}

// Queue topology: tunnel t has queue 2t carrying signals rightward
// (from node t to node t+1) and queue 2t+1 carrying leftward.

// queueFor returns the queue index for a signal sent by node idx on
// slot name.
func (s *pstate) queueFor(idx int, name string) int {
	n := s.nodes[idx]
	if idx < len(s.nodes)-1 && name == n.names[len(n.names)-1] {
		return 2 * idx // rightward on tunnel idx
	}
	return 2*(idx-1) + 1 // leftward on tunnel idx-1
}

// dest returns the node index and slot name receiving from queue q.
func (s *pstate) dest(q int) (int, string) {
	t := q / 2
	if q%2 == 0 {
		n := s.nodes[t+1]
		return t + 1, n.names[0]
	}
	n := s.nodes[t]
	return t, n.names[len(n.names)-1]
}

// enqueue pushes goal actions onto the right queues; it reports a cap
// overflow.
func (s *pstate) enqueue(idx int, acts []core.Action) error {
	for _, a := range acts {
		q := s.queueFor(idx, a.Slot)
		if len(s.queues[q]) >= s.cfg.QueueCap {
			return fmt.Errorf("queue %d overflow", q)
		}
		s.queues[q] = append(s.queues[q], a.Sig)
	}
	return nil
}

// AppendKey implements mc.State. It appends the canonical state
// fingerprint to dst — append-style all the way down (profiles, goals,
// slots, queued signals), so the checker fingerprints every explored
// state into one reused buffer with zero allocation per state.
func (s *pstate) AppendKey(dst []byte) []byte {
	if s.poisoned != "" {
		dst = append(dst, "!POISON:"...)
		dst = append(dst, s.poisoned...)
	}
	for _, n := range s.nodes {
		dst = append(dst, byte('0'+n.phase), byte('0'+n.budget))
		dst = n.prof.AppendEncode(dst)
		if n.goal != nil {
			dst = n.goal.AppendEncode(dst)
		}
		for _, name := range n.names {
			dst = n.slots[name].AppendEncode(dst)
		}
		dst = append(dst, '|')
	}
	for _, q := range s.queues {
		for _, g := range q {
			dst = sig.AppendSignal(dst, g)
		}
		dst = append(dst, '|')
	}
	return dst
}

// Obs implements mc.State: the path-state observation over the two end
// slots.
func (s *pstate) Obs() ltl.Obs {
	l := s.nodes[0].slots["L"]
	r := s.nodes[len(s.nodes)-1].slots["R"]
	return path.Observe(l, r)
}

// QueueMask implements mc.State.
func (s *pstate) QueueMask() uint64 {
	var m uint64
	for i, q := range s.queues {
		if len(q) > 0 {
			m |= 1 << uint(i)
		}
	}
	return m
}

// Quiescent implements mc.State: every queue empty and every goal
// object in its second phase.
func (s *pstate) Quiescent() bool {
	if s.poisoned != "" {
		return false
	}
	if s.QueueMask() != 0 {
		return false
	}
	for _, n := range s.nodes {
		if !n.settled() {
			return false
		}
	}
	return true
}

// Check implements mc.State: the paper's final-state invariant — each
// slot is closed or flowing — plus closeack debts paid and mute
// consistency in bothFlowing states. With chaotic environments
// (segment lemma) the ends may legitimately stop mid-handshake, so
// only the flowlink's own obligations are checked.
func (s *pstate) Check() error {
	if s.cfg.ChaosEnds {
		for _, n := range s.nodes {
			if n.chaosEnd {
				continue
			}
			for _, name := range n.names {
				if n.slots[name].OwesCloseAck() {
					return fmt.Errorf("final state: flowlink slot %s owes a closeack", name)
				}
			}
		}
		return nil
	}
	for _, n := range s.nodes {
		for _, name := range n.names {
			sl := n.slots[name]
			if st := sl.State(); st != slot.Closed && st != slot.Flowing {
				return fmt.Errorf("final state: slot %s is %s", name, st)
			}
			if sl.OwesCloseAck() {
				return fmt.Errorf("final state: slot %s owes a closeack", name)
			}
		}
	}
	l := s.nodes[0].slots["L"]
	r := s.nodes[len(s.nodes)-1].slots["R"]
	if s.Obs().BothFlowing && !path.EnabledConsistent(l, r) {
		return fmt.Errorf("final state: bothFlowing but mute-inconsistent")
	}
	return nil
}

// Succs implements mc.State.
func (s *pstate) Succs() []mc.Succ {
	if s.poisoned != "" {
		return nil
	}
	var out []mc.Succ
	// Deliveries: one per nonempty queue.
	for q := range s.queues {
		if len(s.queues[q]) == 0 {
			continue
		}
		c := s.clone()
		g := c.queues[q][0]
		c.queues[q] = c.queues[q][1:]
		idx, slotName := c.dest(q)
		label := fmt.Sprintf("deliver q%d %s to %s", q, g, slotName)
		c.deliver(idx, slotName, g, label)
		out = append(out, mc.Succ{State: c, Queue: q, Label: label})
	}
	// Internal moves of chaos-phase goal objects.
	for i, n := range s.nodes {
		if n.phase != 0 {
			continue
		}
		acts := s.chaosActions(i)
		// Protocol obligations (closeacks) are mandatory, budget-free,
		// and taken immediately: nothing else can legally be sent on a
		// slot that owes one, so the ack commutes with every other move
		// and taking it first is a sound partial-order reduction.
		obliged := false
		for _, ca := range acts {
			if ca.free {
				obliged = true
				c := s.clone()
				c.applyChaos(i, ca)
				out = append(out, mc.Succ{State: c, Queue: -1, Label: "chaos " + ca.String()})
			}
		}
		if obliged {
			continue
		}
		// The permanent switch to the real goal (chaotic environments
		// never switch).
		if !n.chaosEnd {
			c := s.clone()
			label := fmt.Sprintf("switch node %d to %s", i, c.nodes[i].kindName())
			c.switchNode(i, label)
			out = append(out, mc.Succ{State: c, Queue: -1, Label: label})
		}
		// Chaos actions, budget permitting.
		if n.budget > 0 {
			for _, ca := range acts {
				c := s.clone()
				c.nodes[i].budget--
				c.applyChaos(i, ca)
				out = append(out, mc.Succ{State: c, Queue: -1, Label: "chaos " + ca.String()})
			}
		}
	}
	return out
}

func (n *node) kindName() string {
	if n.kind != "" {
		return string(n.kind)
	}
	return "flowLink"
}

// deliver applies one signal to a node's slot and its goal object.
func (s *pstate) deliver(idx int, slotName string, g sig.Signal, label string) {
	n := s.nodes[idx]
	ev, err := n.slots[slotName].Receive(g)
	if err != nil {
		s.poisoned = fmt.Sprintf("%s: %v", label, err)
		return
	}
	if n.phase == 0 || n.goal == nil {
		return // chaos consumes silently; the switch's Attach catches up
	}
	acts, err := n.goal.OnEvent(n, slotName, ev, g)
	if err != nil {
		s.poisoned = fmt.Sprintf("%s: %v", label, err)
		return
	}
	if err := s.enqueue(idx, acts); err != nil {
		s.poisoned = fmt.Sprintf("%s: %v", label, err)
	}
}

// switchNode moves a node permanently to its second phase and attaches
// its real goal object.
func (s *pstate) switchNode(idx int, label string) {
	n := s.nodes[idx]
	n.phase = 1
	n.budget = 0
	if len(n.names) == 2 {
		n.goal = core.NewFlowLink(n.names[0], n.names[1])
	} else {
		switch n.kind {
		case Open:
			n.goal = core.NewOpenSlot(n.names[0], sig.Audio, n.prof)
		case Close:
			n.goal = core.NewCloseSlot(n.names[0])
		case Hold:
			n.goal = core.NewHoldSlot(n.names[0], n.prof)
		}
	}
	acts, err := n.goal.Attach(n)
	if err != nil {
		s.poisoned = fmt.Sprintf("%s: %v", label, err)
		return
	}
	if err := s.enqueue(idx, acts); err != nil {
		s.poisoned = fmt.Sprintf("%s: %v", label, err)
	}
}

// chaosAction is one nondeterministic phase-1 behavior. Free actions
// are protocol obligations (acknowledging a close): they cost no
// budget and remain available after the budget is exhausted, because
// even a nondeterministic environment must be protocol-conformant.
type chaosAction struct {
	slot string
	sig  sig.Signal
	mute string // "", "in", "out": toggle this profile flag first
	free bool
}

func (a chaosAction) String() string {
	if a.mute != "" {
		return fmt.Sprintf("%s on %s (toggle mute%s)", a.sig, a.slot, a.mute)
	}
	return fmt.Sprintf("%s on %s", a.sig, a.slot)
}

// chaosActions enumerates the protocol-legal signals node i could emit
// in its initial phase, covering all initial slot and tunnel states.
func (s *pstate) chaosActions(idx int) []chaosAction {
	n := s.nodes[idx]
	var out []chaosAction
	for _, name := range n.names {
		sl := n.slots[name]
		d, hasDesc := sl.Desc()
		switch sl.State() {
		case slot.Closed:
			if !sl.OwesCloseAck() {
				out = append(out, chaosAction{slot: name, sig: sig.Open(sig.Audio, n.prof.Describe())})
			}
		case slot.Opened:
			out = append(out, chaosAction{slot: name, sig: sig.Oack(n.prof.Describe())})
			out = append(out, chaosAction{slot: name, sig: sig.Close()})
		case slot.Opening:
			out = append(out, chaosAction{slot: name, sig: sig.Close()})
		case slot.Flowing:
			out = append(out, chaosAction{slot: name, sig: sig.Close()})
			out = append(out, chaosAction{slot: name, sig: sig.Describe(n.prof.Describe())})
			if ep, ok := n.prof.(*core.EndpointProfile); ok {
				// Toggle muteIn to cover descriptor changes.
				ep2 := ep.Clone().(*core.EndpointProfile)
				ep2.SetMuteIn(!ep2.MuteIn)
				out = append(out, chaosAction{slot: name, sig: sig.Describe(ep2.Describe()), mute: "in"})
			}
			if hasDesc {
				out = append(out, chaosAction{slot: name, sig: sig.Select(n.prof.Answer(d))})
			}
		}
		if sl.OwesCloseAck() {
			out = append(out, chaosAction{slot: name, sig: sig.CloseAck(), free: true})
		}
	}
	return out
}

// applyChaos performs one chaos action on a cloned state.
func (s *pstate) applyChaos(idx int, a chaosAction) {
	n := s.nodes[idx]
	if a.mute != "" {
		if ep, ok := n.prof.(*core.EndpointProfile); ok {
			switch a.mute {
			case "in":
				ep.SetMuteIn(!ep.MuteIn)
			case "out":
				ep.SetMuteOut(!ep.MuteOut)
			}
			// Regenerate the signal from the mutated profile so the
			// descriptor ID comes from this state's own pool.
			if a.sig.Kind == sig.KindDescribe {
				a.sig = sig.Describe(ep.Describe())
			}
		}
	}
	if err := n.slots[a.slot].Send(a.sig); err != nil {
		s.poisoned = fmt.Sprintf("chaos %s: %v", a, err)
		return
	}
	if err := s.enqueue(idx, []core.Action{{Slot: a.slot, Sig: a.sig}}); err != nil {
		s.poisoned = fmt.Sprintf("chaos %s: %v", a, err)
	}
}
