package mcmodel

import (
	"testing"

	"ipmedia/internal/mc"
)

// TestContinuousInvariants re-verifies the default suite with the
// per-state invariants active: utd soundness and drained-tunnel state
// pairing must hold in every reachable state, not just final ones.
// (Explore calls Invariant automatically because pstate implements
// mc.InvariantState, so this is implicitly covered by every other
// mcmodel test too; this test exists to document the property.)
func TestContinuousInvariants(t *testing.T) {
	for _, cfg := range Configs(1) {
		v := Check(cfg, mc.Options{MaxStates: 5_000_000})
		if v.Safety != nil {
			t.Errorf("%s: %v", cfg.Name(), v.Safety)
		}
	}
}

// TestSegmentLemma verifies the inductive lemma of paper Section
// VIII-B: a single flowlink segment checked against purely chaotic
// environments at both ends. The environments never cooperate, so no
// liveness can hold; the lemma is that the flowlink alone never breaks
// the protocol — no violations, no deadlocks with unpaid flowlink
// obligations, sound utd bookkeeping, and consistent drained tunnels —
// against an over-approximation of anything a neighboring segment can
// do. Because every interior box of a longer path sits in such a
// segment, the lemma composes inductively over paths of any length.
func TestSegmentLemma(t *testing.T) {
	for _, budget := range []int{1, 2} {
		cfg := Config{
			Left: Open, Right: Open, // kinds irrelevant: ends never switch
			Flowlinks: 1, ChaosBudget: budget, ChaosEnds: true,
		}
		g, res := mc.Explore(New(cfg), mc.Options{MaxStates: 10_000_000})
		_ = g
		if res.Truncated {
			t.Fatalf("budget %d: truncated at %d states", budget, res.States)
		}
		if len(res.Deadlocks) > 0 {
			t.Errorf("budget %d: %d deadlocks, first:\n%s", budget, len(res.Deadlocks), res.Deadlocks[0])
		}
		if len(res.SafetyErrs) > 0 {
			t.Errorf("budget %d: %d violations, first:\n%s", budget, len(res.SafetyErrs), res.SafetyErrs[0])
		}
		if res.States < 100 {
			t.Errorf("budget %d: suspiciously small segment space (%d states)", budget, res.States)
		}
		t.Logf("budget %d: %d states, %d transitions, %v", budget, res.States, res.Transitions, res.Elapsed)
	}
}

// TestTwoFlowlinkPathVerifies goes beyond the paper's suite: "It may
// not be feasible to model-check signaling paths with more than one
// flowlink... checking a path with two flowlinks might take something
// like 900 Gb of memory and 300 hours" (Section VIII-A). Our
// protocol-level state encoding makes it routine: two-flowlink paths
// verify in seconds, and three-flowlink paths in minutes (see
// EXPERIMENTS.md).
func TestTwoFlowlinkPathVerifies(t *testing.T) {
	for _, combo := range [][2]GoalKind{{Open, Hold}, {Close, Close}, {Open, Open}} {
		cfg := Config{Left: combo[0], Right: combo[1], Flowlinks: 2, ChaosBudget: 1}
		v := Check(cfg, mc.Options{MaxStates: 10_000_000})
		if !v.OK() {
			t.Errorf("%s: safety=%v liveness=%v", cfg.Name(), v.Safety, v.Liveness)
		}
		if v.Result.States < 5000 {
			t.Errorf("%s: suspiciously small space (%d states)", cfg.Name(), v.Result.States)
		}
	}
}

// TestThreeFlowlinkPathVerifies checks the longest path we verify
// exhaustively: four tunnels, three flowlinks.
func TestThreeFlowlinkPathVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("three-flowlink verification takes ~30s")
	}
	cfg := Config{Left: Open, Right: Hold, Flowlinks: 3, ChaosBudget: 1}
	v := Check(cfg, mc.Options{MaxStates: 20_000_000})
	if !v.OK() {
		t.Fatalf("safety=%v liveness=%v", v.Safety, v.Liveness)
	}
	t.Logf("3-flowlink path: %d states, %d transitions, %v", v.Result.States, v.Result.Transitions, v.Result.Elapsed)
}

// TestSegmentLemmaTwoTunnelThreeBox matches the paper's exact proposed
// lemma scope: "an arbitrary contiguous segment of a signaling path,
// no larger than two tunnels and three boxes (in other words, a
// segment with no more than one internal flowlink)".
func TestSegmentLemmaScope(t *testing.T) {
	cfg := Config{Left: Hold, Right: Hold, Flowlinks: 1, ChaosBudget: 2, ChaosEnds: true}
	v := Check(cfg, mc.Options{MaxStates: 10_000_000})
	// With chaotic ends only safety is meaningful; Check's liveness
	// runs against the spec but chaotic ends make the property
	// unsatisfiable in general — so call only the safety side here.
	if v.Safety != nil {
		t.Fatalf("segment lemma safety: %v", v.Safety)
	}
}

// TestHashCompactionOnRealModel: hash compaction on an actual path
// model keeps the verdicts and state counts identical while using a
// fraction of the key memory.
func TestHashCompactionOnRealModel(t *testing.T) {
	cfg := Config{Left: Open, Right: Hold, Flowlinks: 1, ChaosBudget: 1}
	full := Check(cfg, mc.Options{})
	compact := Check(cfg, mc.Options{HashCompaction: true})
	if !full.OK() || !compact.OK() {
		t.Fatalf("verdicts: full=%v/%v compact=%v/%v", full.Safety, full.Liveness, compact.Safety, compact.Liveness)
	}
	if full.Result.States != compact.Result.States {
		t.Fatalf("state counts differ: %d vs %d", full.Result.States, compact.Result.States)
	}
	if compact.Result.CollisionBound > 1e-6 {
		t.Fatalf("collision bound too high: %g", compact.Result.CollisionBound)
	}
}
