package mcmodel

import (
	"testing"

	"ipmedia/internal/mc"
)

// TestParallelAgreement is the tentpole acceptance check: every one of
// the twelve suite models explored at -workers 1 and -workers 4 must
// produce identical state counts, transition counts, and verdicts.
// The Makefile runs this under -race, which also exercises the
// owner/worker merge protocol for data races.
func TestParallelAgreement(t *testing.T) {
	for _, fl := range []int{0, 1} {
		for _, cfg := range Configs(fl) {
			cfg := cfg
			t.Run(cfg.Name(), func(t *testing.T) {
				seq := Check(cfg, mc.Options{MaxStates: 5_000_000, Workers: 1})
				par := Check(cfg, mc.Options{MaxStates: 5_000_000, Workers: 4})
				if seq.Result.States != par.Result.States {
					t.Errorf("states: sequential %d != parallel %d", seq.Result.States, par.Result.States)
				}
				if seq.Result.Transitions != par.Result.Transitions {
					t.Errorf("transitions: sequential %d != parallel %d", seq.Result.Transitions, par.Result.Transitions)
				}
				if (seq.Safety == nil) != (par.Safety == nil) {
					t.Errorf("safety verdicts differ: seq=%v par=%v", seq.Safety, par.Safety)
				}
				if (seq.Liveness == nil) != (par.Liveness == nil) {
					t.Errorf("liveness verdicts differ: seq=%v par=%v", seq.Liveness, par.Liveness)
				}
				if par.Result.Workers != 4 {
					t.Errorf("parallel run reports %d workers", par.Result.Workers)
				}
			})
		}
	}
}

// TestParallelAgreementHashCompaction repeats the agreement check in
// fingerprint-only mode on one representative model — the setting the
// blowup sweeps run in.
func TestParallelAgreementHashCompaction(t *testing.T) {
	cfg := Config{Left: Open, Right: Hold, Flowlinks: 1}
	seq := Check(cfg, mc.Options{MaxStates: 5_000_000, Workers: 1, HashCompaction: true})
	par := Check(cfg, mc.Options{MaxStates: 5_000_000, Workers: 4, HashCompaction: true})
	if seq.Result.States != par.Result.States || seq.Result.Transitions != par.Result.Transitions {
		t.Fatalf("compaction: sequential (%d, %d) != parallel (%d, %d)",
			seq.Result.States, seq.Result.Transitions, par.Result.States, par.Result.Transitions)
	}
	if !seq.OK() || !par.OK() {
		t.Fatalf("verdicts: seq safety=%v liveness=%v, par safety=%v liveness=%v",
			seq.Safety, seq.Liveness, par.Safety, par.Liveness)
	}
}

// BenchmarkExplore measures raw state-space exploration (safety only,
// no liveness pass) on the largest default-budget model, the number
// BENCH_mc.json records. It lives in mcmodel rather than mc because mc
// cannot import its own test models without a cycle.
func BenchmarkExplore(b *testing.B) {
	cfg := Config{Left: Open, Right: Hold, Flowlinks: 1}.withDefaults()
	for _, bench := range []struct {
		name string
		opts mc.Options
	}{
		{"workers=1", mc.Options{Workers: 1}},
		{"workers=4", mc.Options{Workers: 4}},
		{"workers=1/compact", mc.Options{Workers: 1, HashCompaction: true}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			var states int
			for i := 0; i < b.N; i++ {
				_, res := mc.Explore(New(cfg), bench.opts)
				states = res.States
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}
