//go:build race

package store

// raceEnabled reports whether the race detector is active; zero-alloc
// assertions are skipped under it because the detector's instrumentation
// allocates.
const raceEnabled = true
