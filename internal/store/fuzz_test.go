package store

import (
	"bytes"
	"testing"
)

type replayed struct {
	typ  byte
	body []byte
}

func replayAll(t *testing.T, data []byte) ([]replayed, int64) {
	t.Helper()
	var recs []replayed
	off, err := replayWAL(bytes.NewReader(data), func(typ byte, body []byte) error {
		recs = append(recs, replayed{typ, append([]byte(nil), body...)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay returned error for corrupt-tolerant scan: %v", err)
	}
	return recs, off
}

// FuzzWALReplay fuzzes the full recovery path: arbitrary bytes must
// replay without panic to a well-formed prefix; that prefix must be
// stable under re-replay (recovery idempotence); records surviving a
// replay must round-trip through the record codecs; and flipping any
// single byte of a valid log must never disturb the records framed
// entirely before the flip.
func FuzzWALReplay(f *testing.F) {
	var seed []byte
	seed = appendWALRecord(seed, recProfile, appendProfile(nil, &Profile{Name: "alice", Features: []string{"cf", "prepaid"}}))
	seed = appendWALRecord(seed, recAdjust, appendAdjust(nil, &adjust{Name: "alice", Delta: -25, Token: 7}))
	seed = appendWALRecord(seed, recCDR, appendCDR(nil, &CDR{Seq: 1, Local: "a", Peer: "b", Channel: "ch", SetupNS: 10, TornNS: 99}))
	f.Add(seed, uint16(0))
	f.Add(seed[:len(seed)-3], uint16(5)) // torn tail
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 1}, uint16(3)) // absurd length field

	f.Fuzz(func(t *testing.T, data []byte, flip uint16) {
		// Arbitrary input: replay stops cleanly at some good prefix.
		recs, off := replayAll(t, data)
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("good prefix %d outside [0,%d]", off, len(data))
		}

		// Idempotence: replaying just the good prefix reproduces it.
		recs2, off2 := replayAll(t, data[:off])
		if off2 != off || len(recs2) != len(recs) {
			t.Fatalf("re-replay diverged: off %d→%d, records %d→%d", off, off2, len(recs), len(recs2))
		}
		for i := range recs {
			if recs[i].typ != recs2[i].typ || !bytes.Equal(recs[i].body, recs2[i].body) {
				t.Fatalf("re-replay record %d differs", i)
			}
		}

		// Codec round-trip for every record the store would accept.
		var rebuilt []byte
		var ends []int // frame end offset per record
		for _, r := range recs {
			switch r.typ {
			case recProfile:
				p, err := decodeProfile(r.body)
				if err != nil {
					break // store would reject it at apply time; fine
				}
				enc := appendProfile(nil, &p)
				p2, err := decodeProfile(enc)
				if err != nil {
					t.Fatalf("re-decode profile: %v", err)
				}
				if p2.Name != p.Name || len(p2.Features) != len(p.Features) {
					t.Fatalf("profile round-trip: %+v vs %+v", p, p2)
				}
			case recAdjust:
				a, err := decodeAdjust(r.body)
				if err != nil {
					break
				}
				a2, err := decodeAdjust(appendAdjust(nil, &a))
				if err != nil || a2 != a {
					t.Fatalf("adjust round-trip: %+v vs %+v (%v)", a, a2, err)
				}
			case recCDR:
				c, err := decodeCDR(r.body)
				if err != nil {
					break
				}
				c2, err := decodeCDR(appendCDR(nil, &c))
				if err != nil || c2 != c {
					t.Fatalf("cdr round-trip: %+v vs %+v (%v)", c, c2, err)
				}
			}
			rebuilt = appendWALRecord(rebuilt, r.typ, r.body)
			ends = append(ends, len(rebuilt))
		}

		// The rebuilt log replays completely and identically.
		recs3, off3 := replayAll(t, rebuilt)
		if off3 != int64(len(rebuilt)) || len(recs3) != len(recs) {
			t.Fatalf("rebuilt log: off=%d/%d records=%d/%d", off3, len(rebuilt), len(recs3), len(recs))
		}

		// Single-byte corruption: records framed entirely before the
		// flipped byte always survive, byte-identical.
		if len(rebuilt) > 0 {
			pos := int(flip) % len(rebuilt)
			mut := append([]byte(nil), rebuilt...)
			mut[pos] ^= 0xA5
			intact := 0
			for _, e := range ends {
				if e <= pos {
					intact++
				}
			}
			got, _ := replayAll(t, mut)
			if len(got) < intact {
				t.Fatalf("flip at %d destroyed %d of %d records before it", pos, intact-len(got), intact)
			}
			for i := 0; i < intact; i++ {
				if got[i].typ != recs[i].typ || !bytes.Equal(got[i].body, recs[i].body) {
					t.Fatalf("flip at %d altered record %d before it", pos, i)
				}
			}
		}
	})
}
