// Fleet-wide CDR reconciliation. Each shard process owns a shard-local
// store (a WAL and indexes in its own directory); a SIGKILL takes the
// process but not the directory, and the restarted shard recovers by
// replay. Reconciliation is the after-the-storm audit that turns that
// per-shard property into a fleet-wide one: reopen every shard's
// directory, compare what recovery found against the last count each
// shard acknowledged as durable, and check that no CDR leaked across
// the placement function into two shards' ledgers. The durability
// claim under crash-kill chaos is exactly "Lost == 0": an acked CDR
// survives its shard's death.
package store

import (
	"fmt"
	"sort"
	"strconv"
)

// ShardLedger is one shard's side of the reconciliation.
type ShardLedger struct {
	Shard     int    `json:"shard"`
	Dir       string `json:"dir"`
	Acked     uint64 `json:"acked"`           // CDRs the shard last reported fsync-acked
	Recovered int    `json:"recovered"`       // CDRs found by replay at reconciliation
	Replayed  int    `json:"replayed"`        // well-formed WAL records replayed
	Truncated int64  `json:"truncated_bytes"` // corrupt tail discarded by recovery
	Lost      uint64 `json:"lost"`            // acked but not recovered — must be 0
}

// FleetReport is the reconciliation verdict.
type FleetReport struct {
	Shards     []ShardLedger `json:"shards"`
	TotalCDRs  int           `json:"total_cdrs"`
	Duplicates int           `json:"duplicates"`
	Lost       uint64        `json:"lost"`
	OK         bool          `json:"ok"`
}

// ReconcileFleet reopens every shard's store directory and audits the
// fleet ledger: per shard, recovery must find at least every CDR the
// shard acknowledged as durable (acked, from its last heartbeat or
// report — the supervisor's last-known view if the shard died); across
// shards, no call record may appear in two ledgers (placement owns
// each box, so each teardown is observed exactly once). The stores are
// opened read-and-closed; the shard processes must be stopped first.
func ReconcileFleet(dirs map[int]string, acked map[int]uint64, opts Options) (FleetReport, error) {
	var rep FleetReport
	shards := make([]int, 0, len(dirs))
	for i := range dirs {
		shards = append(shards, i)
	}
	sort.Ints(shards)
	seen := make(map[string]int) // call key -> owning shard
	for _, i := range shards {
		s, err := Open(dirs[i], opts)
		if err != nil {
			return rep, fmt.Errorf("store: reconcile shard %d: %w", i, err)
		}
		rec := s.Recovery()
		led := ShardLedger{
			Shard:     i,
			Dir:       dirs[i],
			Acked:     acked[i],
			Recovered: s.CDRCount(),
			Replayed:  rec.Records,
			Truncated: rec.Truncated,
		}
		s.EachCDR(func(c CDR) bool {
			key := c.Local + "\x00" + c.Channel + "\x00" + strconv.FormatInt(c.SetupNS, 10)
			if prev, dup := seen[key]; dup && prev != i {
				rep.Duplicates++
			}
			seen[key] = i
			return true
		})
		s.Close()
		if led.Acked > uint64(led.Recovered) {
			led.Lost = led.Acked - uint64(led.Recovered)
		}
		rep.Lost += led.Lost
		rep.TotalCDRs += led.Recovered
		rep.Shards = append(rep.Shards, led)
	}
	rep.OK = rep.Lost == 0 && rep.Duplicates == 0
	return rep, nil
}
