package store

import (
	"fmt"
	"testing"
	"time"
)

func openBench(b *testing.B, opts Options) *Store {
	b.Helper()
	if opts.FsyncInterval == 0 {
		opts.FsyncInterval = time.Millisecond
	}
	st, err := Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	return st
}

// BenchmarkStoreLookupCached is the production hot path: the setup-time
// registry lookup served from the read cache. The claim gated by
// TestStoreZeroAlloc is 0 allocs/op.
func BenchmarkStoreLookupCached(b *testing.B) {
	st := openBench(b, Options{})
	if err := st.PutProfile(Profile{Name: "dev-1", Features: []string{"cf"}}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := st.Lookup("dev-1"); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkStoreLookupBackend measures the index backends themselves
// (cache disabled): the OLTP-ish point-lookup workload.
func BenchmarkStoreLookupBackend(b *testing.B) {
	for _, kind := range Backends() {
		b.Run(kind, func(b *testing.B) {
			st := openBench(b, Options{Backend: kind, NoCache: true})
			const n = 1024
			for i := 0; i < n; i++ {
				if err := st.PutProfile(Profile{Name: fmt.Sprintf("dev-%04d", i)}); err != nil {
					b.Fatal(err)
				}
			}
			names := make([]string, n)
			for i := range names {
				names[i] = fmt.Sprintf("dev-%04d", i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := st.Lookup(names[i%n]); !ok {
					b.Fatal("miss")
				}
			}
		})
	}
}

// BenchmarkStoreAppendCDR measures the write-heavy CDR workload per
// backend (in-memory accept; durability is group-committed off-path).
func BenchmarkStoreAppendCDR(b *testing.B) {
	for _, kind := range Backends() {
		b.Run(kind, func(b *testing.B) {
			st := openBench(b, Options{Backend: kind})
			c := CDR{Local: "dev-1", Peer: "dev-2", Channel: "ch0", SetupNS: 1, TornNS: 2}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := st.AppendCDR(c); !ok {
					b.Fatal("append refused")
				}
			}
		})
	}
}

// TestStoreZeroAlloc is the CI alloc-gate for the two paths the live
// runtime rides on every call: the disabled (nil-store) path and the
// cached registry lookup. Both must be allocation-free so wiring the
// store into setup/teardown cannot regress the runtime's own 0
// allocs/op dispatch gate.
func TestStoreZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed under -race")
	}

	t.Run("disabled path", func(t *testing.T) {
		var st *Store
		b := (*Binder)(nil)
		if a := testing.AllocsPerRun(1000, func() {
			st.Lookup("dev-1")
			st.AppendCDR(CDR{Local: "a", Peer: "b", Channel: "c"})
			b.ChannelSetup("a", "b", "c")
			b.ChannelTeardown("a", "b", "c", time.Time{})
		}); a != 0 {
			t.Fatalf("disabled path allocates %.1f allocs/op, want 0", a)
		}
	})

	t.Run("unbound binder", func(t *testing.T) {
		b := NewBinder(nil)
		if a := testing.AllocsPerRun(1000, func() {
			b.ChannelSetup("a", "b", "c")
			b.ChannelTeardown("a", "b", "c", time.Time{})
		}); a != 0 {
			t.Fatalf("unbound binder allocates %.1f allocs/op, want 0", a)
		}
	})

	t.Run("cached lookup", func(t *testing.T) {
		st, err := Open(t.TempDir(), Options{FsyncInterval: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if err := st.PutProfile(Profile{Name: "dev-1", Features: []string{"cf"}}); err != nil {
			t.Fatal(err)
		}
		if a := testing.AllocsPerRun(1000, func() {
			if _, ok := st.Lookup("dev-1"); !ok {
				t.Fatal("miss")
			}
		}); a != 0 {
			t.Fatalf("cached lookup allocates %.1f allocs/op, want 0", a)
		}
	})
}
