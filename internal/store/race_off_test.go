//go:build !race

package store

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
