package store

import "bytes"

// btreeMinItems is the B-tree minimum degree t: every node except the
// root holds between t-1 and 2t-1 items. 16 keeps nodes around a cache
// line's worth of slice headers while staying shallow (three levels
// carry ~30k keys).
const btreeMinItems = 16

const btreeMaxItems = 2*btreeMinItems - 1

// kv is one key/value entry. A nil value is a tombstone: the key was
// deleted but its slot not yet reclaimed.
type kv struct {
	k, v []byte
}

// BTree is the classic in-memory B-tree backend: data in every node,
// preemptive splits on the way down (CLRS). Deletions are cheap
// tombstones — the store's workloads (registry upserts, CDR appends)
// delete rarely — and the tree rebuilds itself compactly once dead
// entries outnumber live ones.
type BTree struct {
	root *btreeNode
	live int
	dead int
}

type btreeNode struct {
	items    []kv
	children []*btreeNode // nil for leaves; else len(items)+1
}

// NewBTree creates an empty B-tree index.
func NewBTree() *BTree { return &BTree{root: &btreeNode{}} }

// Kind implements Index.
func (t *BTree) Kind() string { return "btree" }

// Len implements Index.
func (t *BTree) Len() int { return t.live }

// find locates key within n.items: the index holding it (found=true)
// or the child index to descend into.
func (n *btreeNode) find(key []byte) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.items[mid].k, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && bytes.Equal(n.items[lo].k, key) {
		return lo, true
	}
	return lo, false
}

// Get implements Index.
func (t *BTree) Get(key []byte) ([]byte, bool) {
	n := t.root
	for n != nil {
		i, found := n.find(key)
		if found {
			v := n.items[i].v
			return v, v != nil
		}
		if n.children == nil {
			return nil, false
		}
		n = n.children[i]
	}
	return nil, false
}

// Put implements Index. Key and value are copied.
func (t *BTree) Put(key, value []byte) {
	if t.root != nil && len(t.root.items) == btreeMaxItems {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.root.splitChild(0)
	}
	t.put(t.root, key, value)
}

func (t *BTree) put(n *btreeNode, key, value []byte) {
	for {
		i, found := n.find(key)
		if found {
			if n.items[i].v == nil {
				t.live++
				t.dead--
			}
			n.items[i].v = cloneValue(value)
			return
		}
		if n.children == nil {
			n.items = append(n.items, kv{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = kv{k: append([]byte(nil), key...), v: cloneValue(value)}
			t.live++
			return
		}
		if len(n.children[i].items) == btreeMaxItems {
			n.splitChild(i)
			continue // the median moved up; re-find at this node
		}
		n = n.children[i]
	}
}

// splitChild splits the full child at index i, hoisting its median
// item into n.
func (n *btreeNode) splitChild(i int) {
	child := n.children[i]
	mid := btreeMaxItems / 2
	median := child.items[mid]
	right := &btreeNode{items: append([]kv(nil), child.items[mid+1:]...)}
	if child.children != nil {
		right.children = append([]*btreeNode(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]

	n.items = append(n.items, kv{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Delete implements Index: the entry becomes a tombstone, and the tree
// rebuilds once tombstones dominate.
func (t *BTree) Delete(key []byte) bool {
	n := t.root
	for n != nil {
		i, found := n.find(key)
		if found {
			if n.items[i].v == nil {
				return false
			}
			n.items[i].v = nil
			t.live--
			t.dead++
			if t.dead > t.live && t.dead > 2*btreeMaxItems {
				t.rebuild()
			}
			return true
		}
		if n.children == nil {
			return false
		}
		n = n.children[i]
	}
	return false
}

// rebuild reinserts the live entries into a fresh tree, reclaiming
// tombstones.
func (t *BTree) rebuild() {
	old := *t
	t.root = &btreeNode{}
	t.live, t.dead = 0, 0
	old.Ascend(func(k, v []byte) bool {
		t.Put(k, v)
		return true
	})
}

// Ascend implements Index.
func (t *BTree) Ascend(fn func(key, value []byte) bool) {
	t.root.ascend(fn)
}

func (n *btreeNode) ascend(fn func(key, value []byte) bool) bool {
	if n == nil {
		return true
	}
	for i, it := range n.items {
		if n.children != nil && !n.children[i].ascend(fn) {
			return false
		}
		if it.v != nil && !fn(it.k, it.v) {
			return false
		}
	}
	if n.children != nil {
		return n.children[len(n.items)].ascend(fn)
	}
	return true
}

// cloneValue copies v, preserving the present-but-empty distinction:
// a non-nil empty value stays non-nil (nil is reserved for tombstones).
func cloneValue(v []byte) []byte {
	if len(v) == 0 {
		return []byte{} // never nil: nil is reserved for tombstones
	}
	return append([]byte(nil), v...)
}
