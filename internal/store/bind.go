package store

import (
	"sync/atomic"
	"time"
)

// Binder adapts a Store to the box runtime's lifecycle hooks: channel
// setup consults the subscriber registry, channel teardown appends a
// CDR. It satisfies box.Lifecycle structurally — this package never
// imports the runtime, the runtime imports this.
//
// The store reference is swappable at runtime, which is how the chaos
// harness survives a simulated crash: Crash() the old store, Open a
// fresh one over the same directory, Swap it in, and traffic continues
// against recovered state. A nil *Binder is inert.
type Binder struct {
	st     atomic.Pointer[Store]
	issued atomic.Uint64 // CDR appends accepted by the store
	missed atomic.Uint64 // teardowns observed while no store was bound

	// OnProfile, if set before traffic starts, observes every setup-time
	// registry lookup. It runs on the box goroutine and must not block.
	OnProfile func(local string, p Profile, ok bool)
}

// NewBinder wraps st (which may be nil — bind later with Swap).
func NewBinder(st *Store) *Binder {
	b := &Binder{}
	if st != nil {
		b.st.Store(st)
	}
	return b
}

// Store returns the currently bound store, or nil.
func (b *Binder) Store() *Store {
	if b == nil {
		return nil
	}
	return b.st.Load()
}

// Swap rebinds the binder to st (nil unbinds) and returns the previous
// store. In-flight lifecycle callbacks see either the old or the new
// store, never a torn mix.
func (b *Binder) Swap(st *Store) *Store {
	if b == nil {
		return nil
	}
	return b.st.Swap(st)
}

// Issued returns the number of CDR appends the bound store accepted.
// The chaos harness reconciles this against DurableCDRs and the
// recovered CDR count after a crash.
func (b *Binder) Issued() uint64 {
	if b == nil {
		return 0
	}
	return b.issued.Load()
}

// Missed returns teardowns observed while no store was bound (e.g. the
// window between Crash and Swap) — CDRs that were never issued, so the
// reconciliation gate can account for them.
func (b *Binder) Missed() uint64 {
	if b == nil {
		return 0
	}
	return b.missed.Load()
}

// ChannelSetup implements box.Lifecycle: the registry point lookup on
// the path-setup hot path.
func (b *Binder) ChannelSetup(local, peer, channel string) {
	if b == nil {
		return
	}
	st := b.st.Load()
	if st == nil {
		return
	}
	p, ok := st.Lookup(local)
	if b.OnProfile != nil {
		b.OnProfile(local, p, ok)
	}
}

// ChannelTeardown implements box.Lifecycle: one CDR per torn-down
// signaling channel.
func (b *Binder) ChannelTeardown(local, peer, channel string, setupAt time.Time) {
	if b == nil {
		return
	}
	st := b.st.Load()
	if st == nil {
		b.missed.Add(1)
		return
	}
	_, ok := st.AppendCDR(CDR{
		Local:   local,
		Peer:    peer,
		Channel: channel,
		SetupNS: setupAt.UnixNano(),
		TornNS:  time.Now().UnixNano(),
	})
	if ok {
		b.issued.Add(1)
	} else {
		b.missed.Add(1)
	}
}
