package store

import "encoding/binary"

// LogIndex is the hash/LSM-style log-structured backend: every Put
// appends an immutable record to an in-memory arena and a hash
// directory points each key at its latest version, exactly the shape
// of a log-structured merge store's memtable + hash index. Writes are
// sequential appends (the CDR workload's best case), point lookups are
// one hash probe plus one arena read, and ordered scans pay the
// LSM-style price of sorting the key set on demand. Superseded
// versions are garbage; the arena compacts itself once garbage
// outweighs live data.
type LogIndex struct {
	arena   []byte
	dir     map[string]int // key -> offset of latest record in arena
	garbage int            // bytes held by superseded versions
}

// logCompactMin is the arena size below which compaction is not worth
// the copy, regardless of the garbage ratio.
const logCompactMin = 1 << 16

// NewLogIndex creates an empty log-structured index.
func NewLogIndex() *LogIndex {
	return &LogIndex{dir: map[string]int{}}
}

// Kind implements Index.
func (l *LogIndex) Kind() string { return "log" }

// Len implements Index.
func (l *LogIndex) Len() int { return len(l.dir) }

// record layout in the arena: klen uvarint | vlen uvarint | key | value.
// Tombstones are never stored — a delete simply drops the directory
// entry and counts the dead record as garbage.

// appendRecord appends a record and returns its offset.
func (l *LogIndex) appendRecord(key, value []byte) int {
	off := len(l.arena)
	l.arena = binary.AppendUvarint(l.arena, uint64(len(key)))
	l.arena = binary.AppendUvarint(l.arena, uint64(len(value)))
	l.arena = append(l.arena, key...)
	l.arena = append(l.arena, value...)
	return off
}

// readRecord decodes the record at off.
func (l *LogIndex) readRecord(off int) (key, value []byte) {
	klen, n := binary.Uvarint(l.arena[off:])
	off += n
	vlen, n := binary.Uvarint(l.arena[off:])
	off += n
	key = l.arena[off : off+int(klen)]
	off += int(klen)
	return key, l.arena[off : off+int(vlen)]
}

// recordSize returns the encoded size of the record at off.
func (l *LogIndex) recordSize(off int) int {
	klen, n := binary.Uvarint(l.arena[off:])
	vlen, m := binary.Uvarint(l.arena[off+n:])
	return n + m + int(klen) + int(vlen)
}

// Get implements Index.
func (l *LogIndex) Get(key []byte) ([]byte, bool) {
	off, ok := l.dir[string(key)] // no allocation: map lookup by converted key
	if !ok {
		return nil, false
	}
	_, v := l.readRecord(off)
	return v, true
}

// Put implements Index.
func (l *LogIndex) Put(key, value []byte) {
	if old, ok := l.dir[string(key)]; ok {
		l.garbage += l.recordSize(old)
	}
	l.dir[string(key)] = l.appendRecord(key, value)
	l.maybeCompact()
}

// Delete implements Index.
func (l *LogIndex) Delete(key []byte) bool {
	off, ok := l.dir[string(key)]
	if !ok {
		return false
	}
	l.garbage += l.recordSize(off)
	delete(l.dir, string(key))
	l.maybeCompact()
	return true
}

// maybeCompact rewrites the arena with only live records once garbage
// outweighs them.
func (l *LogIndex) maybeCompact() {
	if len(l.arena) < logCompactMin || l.garbage*2 < len(l.arena) {
		return
	}
	fresh := &LogIndex{
		arena: make([]byte, 0, len(l.arena)-l.garbage),
		dir:   make(map[string]int, len(l.dir)),
	}
	for k, off := range l.dir {
		_, v := l.readRecord(off)
		fresh.dir[k] = fresh.appendRecord([]byte(k), v)
	}
	*l = *fresh
}

// Ascend implements Index: the directory's keys are sorted on demand —
// the log-structured layout has no inherent order.
func (l *LogIndex) Ascend(fn func(key, value []byte) bool) {
	for _, k := range sortedKeys(l.dir) {
		key, v := l.readRecord(l.dir[k])
		if !fn(key, v) {
			return
		}
	}
}
