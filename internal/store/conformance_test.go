package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// The conformance suite: every backend must behave identically to a
// plain map with sorted iteration. Each test runs against all three
// backends via Backends().

func forEachBackend(t *testing.T, fn func(t *testing.T, idx Index)) {
	t.Helper()
	for _, kind := range Backends() {
		t.Run(kind, func(t *testing.T) {
			idx, err := NewIndex(kind)
			if err != nil {
				t.Fatalf("NewIndex(%q): %v", kind, err)
			}
			if idx.Kind() != kind {
				t.Fatalf("Kind() = %q, want %q", idx.Kind(), kind)
			}
			fn(t, idx)
		})
	}
}

func TestConformanceCRUD(t *testing.T) {
	forEachBackend(t, func(t *testing.T, idx Index) {
		if _, ok := idx.Get([]byte("missing")); ok {
			t.Fatal("Get on empty index reported a hit")
		}
		if idx.Len() != 0 {
			t.Fatalf("empty Len = %d", idx.Len())
		}

		idx.Put([]byte("alice"), []byte("profile-a"))
		idx.Put([]byte("bob"), []byte("profile-b"))
		if got := idx.Len(); got != 2 {
			t.Fatalf("Len = %d, want 2", got)
		}
		v, ok := idx.Get([]byte("alice"))
		if !ok || string(v) != "profile-a" {
			t.Fatalf("Get(alice) = %q, %v", v, ok)
		}

		// Overwrite is last-wins and does not grow the index.
		idx.Put([]byte("alice"), []byte("profile-a2"))
		if got := idx.Len(); got != 2 {
			t.Fatalf("Len after overwrite = %d, want 2", got)
		}
		v, _ = idx.Get([]byte("alice"))
		if string(v) != "profile-a2" {
			t.Fatalf("Get after overwrite = %q", v)
		}

		// Empty (non-nil) values are real values, not deletions.
		idx.Put([]byte("empty"), []byte{})
		v, ok = idx.Get([]byte("empty"))
		if !ok || v == nil || len(v) != 0 {
			t.Fatalf("empty value: got %v, %v", v, ok)
		}

		if !idx.Delete([]byte("bob")) {
			t.Fatal("Delete(bob) reported no-op")
		}
		if _, ok := idx.Get([]byte("bob")); ok {
			t.Fatal("Get(bob) hit after Delete")
		}
		if idx.Delete([]byte("bob")) {
			t.Fatal("second Delete(bob) reported a deletion")
		}
		if idx.Delete([]byte("never-existed")) {
			t.Fatal("Delete of absent key reported a deletion")
		}
		if got := idx.Len(); got != 2 { // alice + empty
			t.Fatalf("final Len = %d, want 2", got)
		}
	})
}

func TestConformanceAscendOrder(t *testing.T) {
	forEachBackend(t, func(t *testing.T, idx Index) {
		keys := []string{"delta", "alpha", "echo", "bravo", "charlie"}
		for _, k := range keys {
			idx.Put([]byte(k), []byte("v-"+k))
		}
		idx.Delete([]byte("bravo"))

		var got []string
		idx.Ascend(func(k, v []byte) bool {
			got = append(got, string(k))
			if want := "v-" + string(k); string(v) != want {
				t.Fatalf("Ascend value for %q = %q, want %q", k, v, want)
			}
			return true
		})
		want := []string{"alpha", "charlie", "delta", "echo"}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("Ascend order = %v, want %v", got, want)
		}

		// Early termination stops iteration.
		n := 0
		idx.Ascend(func(k, v []byte) bool { n++; return n < 2 })
		if n != 2 {
			t.Fatalf("Ascend visited %d after stop, want 2", n)
		}
	})
}

func TestConformanceOwnership(t *testing.T) {
	forEachBackend(t, func(t *testing.T, idx Index) {
		// The index must copy key and value on Put: mutating the
		// caller's buffers afterwards must not corrupt stored state.
		k := []byte("key")
		v := []byte("value")
		idx.Put(k, v)
		k[0], v[0] = 'X', 'X'
		got, ok := idx.Get([]byte("key"))
		if !ok || string(got) != "value" {
			t.Fatalf("stored value corrupted by caller mutation: %q, %v", got, ok)
		}
		if _, ok := idx.Get([]byte("Xey")); ok {
			t.Fatal("mutated key buffer leaked into the index")
		}
	})
}

func TestConformancePrefixHelpers(t *testing.T) {
	forEachBackend(t, func(t *testing.T, idx Index) {
		for _, k := range []string{"p/alice", "p/bob", "b/alice", "c/1", "p/zed"} {
			idx.Put([]byte(k), []byte(k))
		}
		var got []string
		ascendPrefix(idx, []byte("p/"), func(k, v []byte) bool {
			got = append(got, string(k))
			return true
		})
		want := []string{"p/alice", "p/bob", "p/zed"}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("ascendPrefix = %v, want %v", got, want)
		}
	})
}

// TestConformanceRandomOps drives each backend with a deterministic
// random workload and cross-checks every observable against a plain
// map reference model — the strongest equivalence check the suite has.
func TestConformanceRandomOps(t *testing.T) {
	forEachBackend(t, func(t *testing.T, idx Index) {
		rng := rand.New(rand.NewSource(42))
		ref := map[string][]byte{}
		key := func() []byte {
			return []byte(fmt.Sprintf("key-%03d", rng.Intn(200)))
		}
		const ops = 20000
		for i := 0; i < ops; i++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // put
				k, v := key(), []byte(fmt.Sprintf("val-%d", i))
				idx.Put(k, v)
				ref[string(k)] = v
			case 5, 6: // get
				k := key()
				got, ok := idx.Get(k)
				want, wok := ref[string(k)]
				if ok != wok || (ok && !bytes.Equal(got, want)) {
					t.Fatalf("op %d: Get(%s) = %q,%v want %q,%v", i, k, got, ok, want, wok)
				}
			case 7, 8: // delete
				k := key()
				_, wok := ref[string(k)]
				if got := idx.Delete(k); got != wok {
					t.Fatalf("op %d: Delete(%s) = %v, want %v", i, k, got, wok)
				}
				delete(ref, string(k))
			case 9: // len
				if got := idx.Len(); got != len(ref) {
					t.Fatalf("op %d: Len = %d, want %d", i, got, len(ref))
				}
			}
		}

		// Final full comparison, including iteration order.
		var wantKeys []string
		for k := range ref {
			wantKeys = append(wantKeys, k)
		}
		sort.Strings(wantKeys)
		var gotKeys []string
		idx.Ascend(func(k, v []byte) bool {
			gotKeys = append(gotKeys, string(k))
			if !bytes.Equal(v, ref[string(k)]) {
				t.Fatalf("final Ascend: value mismatch at %s", k)
			}
			return true
		})
		if fmt.Sprint(gotKeys) != fmt.Sprint(wantKeys) {
			t.Fatalf("final key sets differ:\n got %v\nwant %v", gotKeys, wantKeys)
		}
	})
}

// TestConformanceLargeSequential loads each backend with enough
// sequential keys to force internal restructuring (B-tree splits, log
// compaction thresholds, scan compaction checkpoints).
func TestConformanceLargeSequential(t *testing.T) {
	forEachBackend(t, func(t *testing.T, idx Index) {
		const n = 10000
		for i := 0; i < n; i++ {
			k := []byte(fmt.Sprintf("cdr/%08d", i))
			idx.Put(k, []byte(fmt.Sprintf("record-%d", i)))
		}
		if got := idx.Len(); got != n {
			t.Fatalf("Len = %d, want %d", got, n)
		}
		// Spot-check lookups across the range.
		for i := 0; i < n; i += 997 {
			k := []byte(fmt.Sprintf("cdr/%08d", i))
			v, ok := idx.Get(k)
			if !ok || string(v) != fmt.Sprintf("record-%d", i) {
				t.Fatalf("Get(%s) = %q, %v", k, v, ok)
			}
		}
		// Iteration is dense and ordered.
		i := 0
		idx.Ascend(func(k, v []byte) bool {
			if want := fmt.Sprintf("cdr/%08d", i); string(k) != want {
				t.Fatalf("Ascend[%d] = %s, want %s", i, k, want)
			}
			i++
			return true
		})
		if i != n {
			t.Fatalf("Ascend visited %d, want %d", i, n)
		}

		// Churn: overwrite and delete half, forcing compaction paths.
		for i := 0; i < n; i += 2 {
			k := []byte(fmt.Sprintf("cdr/%08d", i))
			if i%4 == 0 {
				idx.Delete(k)
			} else {
				idx.Put(k, []byte("updated"))
			}
		}
		wantLen := n - (n+3)/4
		if got := idx.Len(); got != wantLen {
			t.Fatalf("Len after churn = %d, want %d", got, wantLen)
		}
		if _, ok := idx.Get([]byte(fmt.Sprintf("cdr/%08d", 0))); ok {
			t.Fatal("deleted key still present")
		}
		if v, ok := idx.Get([]byte(fmt.Sprintf("cdr/%08d", 2))); !ok || string(v) != "updated" {
			t.Fatalf("updated key = %q, %v", v, ok)
		}
	})
}

func TestNewIndexUnknown(t *testing.T) {
	if _, err := NewIndex("bogus"); err == nil {
		t.Fatal("NewIndex(bogus) succeeded")
	}
}
