package store

import (
	"encoding/binary"
	"fmt"
)

// WAL record types. The type byte is the first byte of every record
// payload; replay dispatches on it.
const (
	recProfile byte = 1 // subscriber feature-profile upsert
	recAdjust  byte = 2 // token-guarded balance adjustment
	recCDR     byte = 3 // call-detail record append
)

// maxStringLen bounds every decoded string/slice so corrupt or hostile
// records cannot demand absurd allocations.
const maxStringLen = 1 << 16

// maxFeatures bounds a profile's feature list.
const maxFeatures = 256

// Profile is one subscriber's feature profile, the record consulted on
// every path setup: who the subscriber is and which feature boxes
// apply to their calls (the per-subscriber service state the paper's
// feature boxes assume exists somewhere).
type Profile struct {
	Name     string
	Features []string
}

// DefaultProfile is the degraded-mode profile used when a registry
// lookup misses: a bare subscriber with no features, so setup proceeds
// featureless instead of failing. Callers can distinguish the case by
// Lookup's ok result and the store.lookup_miss counter.
func DefaultProfile(name string) Profile { return Profile{Name: name} }

// CDR is one call-detail record, appended on every signaling-channel
// teardown.
type CDR struct {
	Seq     uint64 // assigned by the store, unique and dense
	Local   string // the box that observed the teardown
	Peer    string // the far end (dialed address or announced box name)
	Channel string // channel name at the observing box
	SetupNS int64  // channel setup time, unixnano
	TornNS  int64  // teardown time, unixnano
}

// adjust is the balance-adjustment payload: delta cents guarded by a
// per-subscriber monotone token, so a crashed-and-retried debit applies
// exactly once.
type adjust struct {
	Name  string
	Delta int64
	Token uint64
}

// balance is the decoded per-subscriber balance state.
type balance struct {
	Cents     int64
	LastToken uint64
}

// --- append-style encoders ---

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendProfile encodes p (without the record type byte).
func appendProfile(dst []byte, p *Profile) []byte {
	dst = appendString(dst, p.Name)
	dst = binary.AppendUvarint(dst, uint64(len(p.Features)))
	for _, f := range p.Features {
		dst = appendString(dst, f)
	}
	return dst
}

// appendAdjust encodes a balance adjustment.
func appendAdjust(dst []byte, a *adjust) []byte {
	dst = appendString(dst, a.Name)
	dst = binary.AppendVarint(dst, a.Delta)
	return binary.AppendUvarint(dst, a.Token)
}

// appendBalance encodes the balance state stored in the index.
func appendBalance(dst []byte, b balance) []byte {
	dst = binary.AppendVarint(dst, b.Cents)
	return binary.AppendUvarint(dst, b.LastToken)
}

// appendCDR encodes c.
func appendCDR(dst []byte, c *CDR) []byte {
	dst = binary.AppendUvarint(dst, c.Seq)
	dst = appendString(dst, c.Local)
	dst = appendString(dst, c.Peer)
	dst = appendString(dst, c.Channel)
	dst = binary.AppendVarint(dst, c.SetupNS)
	return binary.AppendVarint(dst, c.TornNS)
}

// --- decoders (never panic on corrupt input) ---

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("store: truncated uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("store: truncated varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxStringLen || n > uint64(len(d.buf)) {
		d.err = fmt.Errorf("store: string length %d exceeds buffer", n)
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("store: %d trailing bytes", len(d.buf))
	}
	return nil
}

// decodeProfile decodes an encoded profile.
func decodeProfile(buf []byte) (Profile, error) {
	d := decoder{buf: buf}
	var p Profile
	p.Name = d.string()
	n := d.uvarint()
	if d.err == nil && n > maxFeatures {
		return Profile{}, fmt.Errorf("store: %d features exceeds limit", n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		p.Features = append(p.Features, d.string())
	}
	return p, d.done()
}

// decodeAdjust decodes a balance adjustment.
func decodeAdjust(buf []byte) (adjust, error) {
	d := decoder{buf: buf}
	a := adjust{Name: d.string(), Delta: d.varint(), Token: d.uvarint()}
	return a, d.done()
}

// decodeBalance decodes a stored balance.
func decodeBalance(buf []byte) (balance, error) {
	d := decoder{buf: buf}
	b := balance{Cents: d.varint(), LastToken: d.uvarint()}
	return b, d.done()
}

// decodeCDR decodes a call-detail record.
func decodeCDR(buf []byte) (CDR, error) {
	d := decoder{buf: buf}
	c := CDR{
		Seq:     d.uvarint(),
		Local:   d.string(),
		Peer:    d.string(),
		Channel: d.string(),
		SetupNS: d.varint(),
		TornNS:  d.varint(),
	}
	return c, d.done()
}
