package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"ipmedia/internal/telemetry"
)

// WAL framing: every record is
//
//	u32 length (of type byte + body) | u32 crc32 (over type + body) | type | body
//
// Replay reads sequentially and stops at the first frame that is
// truncated or fails its checksum — the well-formed prefix is the
// recovered state, and the file is truncated back to it so future
// appends never interleave with a corrupt tail.

// walMaxRecord bounds a frame so a corrupt length field cannot demand
// an absurd allocation during replay.
const walMaxRecord = 1 << 20

// walHeaderSize is the frame header: length + crc.
const walHeaderSize = 8

// walFsyncDefault is the default group-commit window: appends buffer
// in memory and one fsync makes the whole window durable.
const walFsyncDefault = 2 * time.Millisecond

// walBatch is one group-commit window's worth of encoded frames. Two
// batches ping-pong between the appenders and the flusher, so steady
// state appends into recycled buffers.
type walBatch struct {
	buf  []byte
	typs []byte // record type per frame, for the durability callback
}

func (b *walBatch) reset() {
	b.buf = b.buf[:0]
	b.typs = b.typs[:0]
}

// wal is the write-ahead log: appends buffer into the pending batch,
// a flusher goroutine writes and fsyncs a batch per window, and Sync
// waits for a watermark. Crash() abandons the pending batch without
// writing it — the test hook that makes "acknowledged" mean what it
// says.
type wal struct {
	f         *os.File
	interval  time.Duration
	onDurable func(typ byte) // called per record, in order, after its batch fsyncs

	mu      sync.Mutex
	cond    *sync.Cond
	pending *walBatch
	spare   *walBatch
	issued  uint64 // records appended
	durable uint64 // records fsynced
	closed  bool
	crashed bool
	err     error // first write/fsync error; the log is dead after one

	stop chan struct{} // closed with the log; cuts the batching window short
	done chan struct{}

	mFsyncs  *telemetry.Counter
	mRecords *telemetry.Counter
	mBytes   *telemetry.Counter
}

func newWAL(f *os.File, interval time.Duration, onDurable func(byte)) *wal {
	if interval <= 0 {
		interval = walFsyncDefault
	}
	w := &wal{
		f:         f,
		interval:  interval,
		onDurable: onDurable,
		pending:   &walBatch{},
		spare:     &walBatch{},
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		mFsyncs:   telemetry.C(MetricWALFsyncs),
		mRecords:  telemetry.C(MetricWALRecords),
		mBytes:    telemetry.C(MetricWALBytes),
	}
	w.cond = sync.NewCond(&w.mu)
	go w.flusher()
	return w
}

// appendWALRecord frames one record onto dst.
func appendWALRecord(dst []byte, typ byte, body []byte) []byte {
	var hdr [walHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(1+len(body)))
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(body)
	binary.LittleEndian.PutUint32(hdr[4:8], crc.Sum32())
	dst = append(dst, hdr[:]...)
	dst = append(dst, typ)
	return append(dst, body...)
}

// append buffers one record for the next group commit and returns its
// sequence number (1-based). ok is false once the log is closed,
// crashed, or broken.
func (w *wal) append(typ byte, body []byte) (uint64, bool) {
	w.mu.Lock()
	if w.closed || w.err != nil {
		w.mu.Unlock()
		return 0, false
	}
	w.pending.buf = appendWALRecord(w.pending.buf, typ, body)
	w.pending.typs = append(w.pending.typs, typ)
	w.issued++
	seq := w.issued
	w.cond.Broadcast() // wake the flusher
	w.mu.Unlock()
	return seq, true
}

// flusher is the group-commit goroutine: whenever records are pending
// it sleeps one window to let the batch fill, then writes and fsyncs
// the whole batch at once.
func (w *wal) flusher() {
	defer close(w.done)
	for {
		w.mu.Lock()
		for len(w.pending.typs) == 0 && !w.closed {
			w.cond.Wait()
		}
		if w.crashed || (w.closed && len(w.pending.typs) == 0) || w.err != nil {
			w.mu.Unlock()
			return
		}
		closing := w.closed
		w.mu.Unlock()

		if !closing {
			// The batching window — cut short if the log closes so a
			// clean close never waits out a long interval.
			t := time.NewTimer(w.interval)
			select {
			case <-t.C:
			case <-w.stop:
				t.Stop()
			}
		}

		w.mu.Lock()
		if w.crashed {
			w.mu.Unlock()
			return
		}
		batch := w.pending
		w.pending = w.spare
		w.spare = nil // the batch is in flight; returned below
		w.mu.Unlock()

		var err error
		if _, err = w.f.Write(batch.buf); err == nil {
			err = w.f.Sync()
		}

		w.mu.Lock()
		if err != nil {
			w.err = fmt.Errorf("store: wal write: %w", err)
			w.cond.Broadcast()
			w.mu.Unlock()
			return
		}
		w.durable += uint64(len(batch.typs))
		w.mFsyncs.Inc()
		w.mRecords.Add(uint64(len(batch.typs)))
		w.mBytes.Add(uint64(len(batch.buf)))
		w.cond.Broadcast() // wake Sync waiters
		w.mu.Unlock()

		if w.onDurable != nil {
			for _, t := range batch.typs {
				w.onDurable(t)
			}
		}

		batch.reset()
		w.mu.Lock()
		w.spare = batch
		w.mu.Unlock()
	}
}

// sync blocks until every record appended before the call is durable
// (or the log dies). It reports whether durability was reached.
func (w *wal) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	target := w.issued
	for w.durable < target {
		if w.crashed {
			return fmt.Errorf("store: wal crashed before sync")
		}
		if w.err != nil {
			return w.err
		}
		// A clean close flushes the tail before the flusher exits, so
		// this wait always terminates unless the log crashed or broke —
		// both guarded above.
		w.cond.Wait()
	}
	return nil
}

// durableCount returns the number of records fsynced so far.
func (w *wal) durableCount() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durable
}

// close flushes everything pending and closes the file.
func (w *wal) close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		<-w.done
		return w.f.Close()
	}
	w.closed = true
	close(w.stop)
	w.cond.Broadcast()
	w.mu.Unlock()
	<-w.done
	return w.f.Close()
}

// crash abandons the pending (unacknowledged) batch and closes the
// file without flushing — the simulated power cut. Records already
// fsynced stay durable; everything buffered is lost, exactly as a real
// crash would lose it.
func (w *wal) crash() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		<-w.done
		return
	}
	w.closed = true
	w.crashed = true
	close(w.stop)
	w.cond.Broadcast()
	w.mu.Unlock()
	<-w.done
	w.f.Close()
}

// replayWAL reads frames from r, calling fn for each well-formed
// record, and returns the byte offset of the end of the good prefix.
// A truncated or corrupt tail ends replay without error — that is the
// expected shape of a crashed log.
func replayWAL(r io.Reader, fn func(typ byte, body []byte) error) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var off int64
	var hdr [walHeaderSize]byte
	var body []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return off, nil // clean end or truncated header: stop
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > walMaxRecord {
			return off, nil // corrupt length: stop at the good prefix
		}
		if cap(body) < int(length) {
			body = make([]byte, length)
		}
		body = body[:length]
		if _, err := io.ReadFull(br, body); err != nil {
			return off, nil // truncated body
		}
		if crc32.ChecksumIEEE(body) != want {
			return off, nil // corrupt record
		}
		if err := fn(body[0], body[1:]); err != nil {
			return off, err // the record decoded but could not apply
		}
		off += int64(walHeaderSize) + int64(length)
	}
}
