// Package store is the durable state layer of the system: a subscriber
// registry consulted on every signaling-channel setup, an append-heavy
// call-detail-record (CDR) log fed by every teardown, and prepaid
// balances debited idempotently — all behind pluggable index backends
// and a write-ahead log with fsync batching and crash recovery.
//
// The package follows the telemetry package's nil-safe discipline:
// every method of a nil *Store is a no-op (the "store disabled" path
// costs nothing and allocates nothing), so instrumented runtimes never
// branch on a "store enabled" flag.
package store

import (
	"bytes"
	"fmt"
	"sort"
)

// Index is a point-lookup index over byte-string keys, the pluggable
// heart of the store. Implementations are single-writer: the Store
// serializes all access under its own mutex, so backends need no
// internal locking.
//
// Ownership: Put copies key and value, so callers may reuse their
// buffers. Get and Ascend expose the backend's internal value bytes,
// valid only until the next mutation — decode or copy before the next
// Put/Delete.
type Index interface {
	// Kind names the backend ("btree", "log", "scan").
	Kind() string
	// Get returns the value stored under key.
	Get(key []byte) (value []byte, ok bool)
	// Put stores value under key, replacing any existing value.
	Put(key, value []byte)
	// Delete removes key, reporting whether it was present.
	Delete(key []byte) bool
	// Len returns the number of live keys.
	Len() int
	// Ascend calls fn for every key in ascending byte order until fn
	// returns false.
	Ascend(fn func(key, value []byte) bool)
}

// Backends lists the registered index backends, in the order the
// benchmarks report them: the balanced tree, the log-structured hash,
// and the no-index scan baseline.
func Backends() []string { return []string{"btree", "log", "scan"} }

// NewIndex constructs an index backend by kind.
func NewIndex(kind string) (Index, error) {
	switch kind {
	case "btree":
		return NewBTree(), nil
	case "log":
		return NewLogIndex(), nil
	case "scan":
		return NewScanIndex(), nil
	default:
		return nil, fmt.Errorf("store: unknown index backend %q (have %v)", kind, Backends())
	}
}

// sortedKeys returns the map's keys in ascending byte order, shared by
// the backends whose natural layout is unordered.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// prefixEnd returns the smallest key greater than every key with the
// given prefix, or nil if the prefix is all 0xff.
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] < 0xff {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// ascendPrefix iterates the index entries whose keys start with prefix,
// in ascending order.
func ascendPrefix(idx Index, prefix []byte, fn func(key, value []byte) bool) {
	end := prefixEnd(prefix)
	idx.Ascend(func(k, v []byte) bool {
		if bytes.Compare(k, prefix) < 0 {
			return true
		}
		if end != nil && bytes.Compare(k, end) >= 0 {
			return false
		}
		return fn(k, v)
	})
}
