package store

// Telemetry instrument names exported by this package.
const (
	// MetricLookups counts registry lookups (hits and misses).
	MetricLookups = "store.lookups"
	// MetricLookupMiss counts registry lookups that found no profile
	// and fell back to the default profile — the defined degraded
	// behavior for unknown subscribers.
	MetricLookupMiss = "store.lookup_miss"
	// MetricCDRAppends counts call-detail records accepted for append.
	MetricCDRAppends = "store.cdr_appends"
	// MetricDebits counts balance adjustments that actually applied
	// (idempotent re-issues of an already-applied token do not count).
	MetricDebits = "store.debits_applied"
	// MetricWALFsyncs counts WAL fsync batches. Under load this stays
	// far below the record count — that gap is the fsync batching.
	MetricWALFsyncs = "store.wal_fsyncs"
	// MetricWALRecords counts records made durable by the WAL.
	MetricWALRecords = "store.wal_records"
	// MetricWALBytes counts bytes written to the WAL.
	MetricWALBytes = "store.wal_bytes"
	// MetricReplayRecords counts records replayed during crash
	// recovery, summed over every Open in the process.
	MetricReplayRecords = "store.replay_records"
	// MetricLookupLatency is the registry point-lookup latency
	// histogram.
	MetricLookupLatency = "store.lookup_latency"
	// MetricAppendLatency is the CDR append latency histogram (the
	// in-memory accept, not the fsync — durability is batched).
	MetricAppendLatency = "store.append_latency"
)
