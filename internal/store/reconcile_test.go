package store

import (
	"path/filepath"
	"testing"
)

func seedShard(t *testing.T, dir string, cdrs []CDR) uint64 {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, c := range cdrs {
		if _, ok := s.AppendCDR(c); !ok {
			t.Fatalf("AppendCDR failed")
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	acked := s.DurableCDRs()
	// Crash, not Close: reconciliation must hold for a shard that was
	// SIGKILLed, and acked CDRs were acked by fsync, not by Close.
	s.Crash()
	return acked
}

func TestReconcileFleetClean(t *testing.T) {
	base := t.TempDir()
	dirs := map[int]string{0: filepath.Join(base, "s0"), 1: filepath.Join(base, "s1")}
	acked := map[int]uint64{
		0: seedShard(t, dirs[0], []CDR{
			{Local: "a", Peer: "b", Channel: "ch1", SetupNS: 100, TornNS: 200},
			{Local: "c", Peer: "d", Channel: "ch2", SetupNS: 150, TornNS: 250},
		}),
		1: seedShard(t, dirs[1], []CDR{
			{Local: "e", Peer: "f", Channel: "ch3", SetupNS: 120, TornNS: 220},
		}),
	}
	rep, err := ReconcileFleet(dirs, acked, Options{})
	if err != nil {
		t.Fatalf("ReconcileFleet: %v", err)
	}
	if !rep.OK || rep.Lost != 0 || rep.Duplicates != 0 || rep.TotalCDRs != 3 {
		t.Fatalf("clean fleet: %+v", rep)
	}
}

func TestReconcileFleetDetectsLoss(t *testing.T) {
	base := t.TempDir()
	dirs := map[int]string{0: filepath.Join(base, "s0")}
	got := seedShard(t, dirs[0], []CDR{{Local: "a", Channel: "ch", SetupNS: 1, TornNS: 2}})
	// The shard claimed more acked CDRs than its WAL can produce — the
	// audit must flag the difference, not paper over it.
	rep, err := ReconcileFleet(dirs, map[int]uint64{0: got + 2}, Options{})
	if err != nil {
		t.Fatalf("ReconcileFleet: %v", err)
	}
	if rep.OK || rep.Lost != 2 {
		t.Fatalf("loss not detected: %+v", rep)
	}
}

func TestReconcileFleetDetectsDuplicates(t *testing.T) {
	base := t.TempDir()
	dup := CDR{Local: "a", Peer: "b", Channel: "ch", SetupNS: 42, TornNS: 43}
	dirs := map[int]string{0: filepath.Join(base, "s0"), 1: filepath.Join(base, "s1")}
	acked := map[int]uint64{
		0: seedShard(t, dirs[0], []CDR{dup}),
		1: seedShard(t, dirs[1], []CDR{dup}),
	}
	rep, err := ReconcileFleet(dirs, acked, Options{})
	if err != nil {
		t.Fatalf("ReconcileFleet: %v", err)
	}
	if rep.OK || rep.Duplicates != 1 {
		t.Fatalf("duplicate not detected: %+v", rep)
	}
}
