package store

import (
	"fmt"
	"os"
	"testing"
	"time"

	"ipmedia/internal/telemetry"
)

func openAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	if opts.FsyncInterval == 0 {
		opts.FsyncInterval = time.Millisecond
	}
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return st
}

func TestStoreProfileRoundTrip(t *testing.T) {
	for _, backend := range Backends() {
		t.Run(backend, func(t *testing.T) {
			dir := t.TempDir()
			st := openTest(t, dir, Options{Backend: backend})
			want := Profile{Name: "alice", Features: []string{"cf", "prepaid"}}
			if err := st.PutProfile(want); err != nil {
				t.Fatal(err)
			}
			got, ok := st.Lookup("alice")
			if !ok || got.Name != "alice" || len(got.Features) != 2 {
				t.Fatalf("Lookup = %+v, %v", got, ok)
			}
			if st.Profiles() != 1 {
				t.Fatalf("Profiles = %d", st.Profiles())
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			// Reopen: the profile must survive via WAL replay.
			st2 := openTest(t, dir, Options{Backend: backend})
			defer st2.Close()
			got, ok = st2.Lookup("alice")
			if !ok || got.Name != "alice" || len(got.Features) != 2 ||
				got.Features[0] != "cf" || got.Features[1] != "prepaid" {
				t.Fatalf("after reopen: Lookup = %+v, %v", got, ok)
			}
			if rs := st2.Recovery(); rs.Records != 1 || rs.Truncated != 0 {
				t.Fatalf("Recovery = %+v", rs)
			}
		})
	}
}

// TestStoreLookupMissDegraded pins the defined degraded behavior for
// unknown subscribers: the default (featureless) profile, ok=false,
// and a store.lookup_miss count — never a failure.
func TestStoreLookupMissDegraded(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.SetDefault(reg)
	defer telemetry.SetDefault(nil)

	for _, cached := range []bool{false, true} {
		t.Run(fmt.Sprintf("cache=%v", cached), func(t *testing.T) {
			st := openTest(t, t.TempDir(), Options{NoCache: !cached})
			defer st.Close()
			st.PutProfile(Profile{Name: "known"})

			missBefore := reg.Counter(MetricLookupMiss).Value()
			lookBefore := reg.Counter(MetricLookups).Value()

			p, ok := st.Lookup("ghost")
			if ok {
				t.Fatal("Lookup(ghost) reported a hit")
			}
			if p.Name != "ghost" || len(p.Features) != 0 {
				t.Fatalf("degraded profile = %+v, want bare default", p)
			}
			if _, ok := st.Lookup("known"); !ok {
				t.Fatal("Lookup(known) missed")
			}

			if got := reg.Counter(MetricLookupMiss).Value() - missBefore; got != 1 {
				t.Fatalf("lookup_miss delta = %d, want 1", got)
			}
			if got := reg.Counter(MetricLookups).Value() - lookBefore; got != 2 {
				t.Fatalf("lookups delta = %d, want 2", got)
			}
		})
	}

	// The nil store degrades the same way.
	var nilStore *Store
	p, ok := nilStore.Lookup("anyone")
	if ok || p.Name != "anyone" {
		t.Fatalf("nil store Lookup = %+v, %v", p, ok)
	}
}

func TestStoreDebitIdempotence(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{})
	if err := st.SetBalance("alice", 500); err != nil {
		t.Fatal(err)
	}

	tok := st.NextToken("alice")
	bal, applied := st.Debit("alice", 120, tok)
	if !applied || bal != 380 {
		t.Fatalf("first debit: bal=%d applied=%v", bal, applied)
	}
	// The same token again — the crashed-client retry — must not apply.
	bal, applied = st.Debit("alice", 120, tok)
	if applied || bal != 380 {
		t.Fatalf("retried debit: bal=%d applied=%v", bal, applied)
	}
	// Overdraw does not apply.
	bal, applied = st.Debit("alice", 1000, st.NextToken("alice"))
	if applied || bal != 380 {
		t.Fatalf("overdraw: bal=%d applied=%v", bal, applied)
	}
	// Credit then spend.
	bal, applied = st.Credit("alice", 20, st.NextToken("alice"))
	if !applied || bal != 400 {
		t.Fatalf("credit: bal=%d applied=%v", bal, applied)
	}
	st.Close()

	// Balance and token watermark survive recovery: re-issuing the old
	// token after reopen still does not double-debit.
	st2 := openTest(t, dir, Options{})
	defer st2.Close()
	if bal, ok := st2.Balance("alice"); !ok || bal != 400 {
		t.Fatalf("after reopen: bal=%d ok=%v", bal, ok)
	}
	if bal, applied := st2.Debit("alice", 120, tok); applied || bal != 400 {
		t.Fatalf("replayed-token debit after reopen: bal=%d applied=%v", bal, applied)
	}
	if st2.NextToken("alice") <= tok {
		t.Fatalf("NextToken did not advance past %d", tok)
	}
}

func TestStoreCDRAcknowledgedSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if _, ok := st.AppendCDR(CDR{Local: "a", Peer: "b", Channel: fmt.Sprint(i)}); !ok {
			t.Fatalf("AppendCDR %d failed", i)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	acked := st.DurableCDRs()
	if acked != 10 {
		t.Fatalf("DurableCDRs = %d, want 10", acked)
	}
	// More appends, never synced, then the power goes out.
	st.AppendCDR(CDR{Local: "a", Peer: "b", Channel: "late-1"})
	st.AppendCDR(CDR{Local: "a", Peer: "b", Channel: "late-2"})
	st.Crash()

	st2 := openTest(t, dir, Options{})
	defer st2.Close()
	if got := st2.CDRCount(); uint64(got) < acked {
		t.Fatalf("recovered %d CDRs, acknowledged %d — lost acked records", got, acked)
	}
	// Sequence numbers continue past the recovered end without collision.
	seq, ok := st2.AppendCDR(CDR{Local: "a", Peer: "b", Channel: "post"})
	if !ok || seq != uint64(st2.CDRCount()) {
		t.Fatalf("post-recovery seq=%d count=%d", seq, st2.CDRCount())
	}
	var seqs []uint64
	st2.EachCDR(func(c CDR) bool { seqs = append(seqs, c.Seq); return true })
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("CDR sequence gap at %d: %v", i, seqs)
		}
	}
}

// TestStoreRecoveryIdempotent opens the same log twice (read-only
// semantics: close without writes) and checks the recovered states
// match — replay is deterministic.
func TestStoreRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{})
	st.PutProfile(Profile{Name: "alice", Features: []string{"cf"}})
	st.PutProfile(Profile{Name: "bob"})
	st.PutProfile(Profile{Name: "alice", Features: []string{"cfb"}}) // overwrite
	st.SetBalance("alice", 300)
	st.Debit("alice", 100, st.NextToken("alice"))
	st.AppendCDR(CDR{Local: "x", Peer: "y", Channel: "ch"})
	st.Close()

	snapshot := func() (int, int, int64, []string) {
		s := openTest(t, dir, Options{})
		defer s.Close()
		bal, _ := s.Balance("alice")
		p, _ := s.Lookup("alice")
		return s.Profiles(), s.CDRCount(), bal, p.Features
	}
	p1, c1, b1, f1 := snapshot()
	p2, c2, b2, f2 := snapshot()
	if p1 != p2 || c1 != c2 || b1 != b2 || fmt.Sprint(f1) != fmt.Sprint(f2) {
		t.Fatalf("recovery not idempotent: (%d,%d,%d,%v) vs (%d,%d,%d,%v)",
			p1, c1, b1, f1, p2, c2, b2, f2)
	}
	if p1 != 2 || c1 != 1 || b1 != 200 || fmt.Sprint(f1) != "[cfb]" {
		t.Fatalf("recovered state wrong: %d profiles, %d cdrs, bal %d, feats %v", p1, c1, b1, f1)
	}
}

func TestStoreNilSafety(t *testing.T) {
	var st *Store
	if err := st.PutProfile(Profile{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.AppendCDR(CDR{}); ok {
		t.Fatal("nil AppendCDR reported ok")
	}
	if bal, applied := st.Debit("x", 1, 1); bal != 0 || applied {
		t.Fatal("nil Debit applied")
	}
	if st.NextToken("x") != 1 {
		t.Fatal("nil NextToken != 1")
	}
	if st.Profiles() != 0 || st.CDRCount() != 0 || st.DurableCDRs() != 0 {
		t.Fatal("nil counts nonzero")
	}
	st.EachCDR(func(CDR) bool { t.Fatal("nil EachCDR visited"); return false })
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st.Crash()

	var b *Binder
	b.ChannelSetup("a", "b", "ch")
	b.ChannelTeardown("a", "b", "ch", time.Now())
	if b.Issued() != 0 || b.Missed() != 0 || b.Store() != nil || b.Swap(nil) != nil {
		t.Fatal("nil Binder not inert")
	}
}

func TestBinderSwapAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{})
	st.PutProfile(Profile{Name: "dev-1", Features: []string{"cf"}})

	var profiles int
	b := NewBinder(st)
	b.OnProfile = func(local string, p Profile, ok bool) {
		if ok {
			profiles++
		}
	}
	b.ChannelSetup("dev-1", "dev-2", "ch0")
	setup := time.Now()
	b.ChannelTeardown("dev-1", "dev-2", "ch0", setup)
	if profiles != 1 || b.Issued() != 1 {
		t.Fatalf("profiles=%d issued=%d", profiles, b.Issued())
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	// Crash. Teardowns during the unbound window count as missed.
	old := b.Swap(nil)
	old.Crash()
	b.ChannelTeardown("dev-1", "dev-2", "ch1", setup)
	if b.Missed() != 1 {
		t.Fatalf("Missed = %d, want 1", b.Missed())
	}

	// Recover, swap in, and traffic continues.
	st2 := openTest(t, dir, Options{})
	defer st2.Close()
	if got := st2.CDRCount(); got != 1 {
		t.Fatalf("recovered CDRs = %d, want 1", got)
	}
	b.Swap(st2)
	b.ChannelTeardown("dev-1", "dev-2", "ch2", setup)
	if b.Issued() != 2 {
		t.Fatalf("Issued after swap = %d, want 2", b.Issued())
	}
	if got := st2.CDRCount(); got != 2 {
		t.Fatalf("CDRs after swap = %d, want 2", got)
	}
}

// TestStoreTruncatedTailRecovery writes a log, corrupts its tail on
// disk, and checks Open recovers the good prefix and truncates the
// rest so the next session appends cleanly.
func TestStoreTruncatedTailRecovery(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{})
	st.PutProfile(Profile{Name: "alice"})
	st.AppendCDR(CDR{Local: "a", Peer: "b", Channel: "ch"})
	st.Close()

	// Append garbage, as a torn write would leave.
	walPath := dir + "/wal.log"
	f, err := openAppend(walPath)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x09, 0x00, 0x00, 0x00, 0xde, 0xad}) // truncated frame
	f.Close()

	st2 := openTest(t, dir, Options{})
	rs := st2.Recovery()
	if rs.Records != 2 || rs.Truncated != 6 {
		t.Fatalf("Recovery = %+v, want 2 records, 6 truncated bytes", rs)
	}
	// The next append lands on the clean prefix and survives reopen.
	st2.AppendCDR(CDR{Local: "a", Peer: "b", Channel: "post"})
	st2.Close()
	st3 := openTest(t, dir, Options{})
	defer st3.Close()
	if got := st3.CDRCount(); got != 2 {
		t.Fatalf("CDRs after torn-write recovery = %d, want 2", got)
	}
	if rs := st3.Recovery(); rs.Truncated != 0 {
		t.Fatalf("second recovery still truncating: %+v", rs)
	}
}
