package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ipmedia/internal/telemetry"
)

// Options configures a Store.
type Options struct {
	// Backend selects the index backend for both the registry and the
	// CDR log: "btree" (default), "log", or "scan".
	Backend string
	// FsyncInterval is the WAL group-commit window (default 2ms): an
	// append is acknowledged as durable only after the fsync that
	// closes its window.
	FsyncInterval time.Duration
	// NoCache disables the registry read cache, so every Lookup
	// consults the index backend. The benchmarks use it to measure the
	// backends themselves; production keeps the cache, which is what
	// makes the setup hot path allocation-free.
	NoCache bool
}

// RecoveryStats reports what Open found in the write-ahead log.
type RecoveryStats struct {
	Records   int   // well-formed records replayed
	GoodBytes int64 // length of the well-formed prefix
	Truncated int64 // corrupt/truncated tail bytes discarded
}

// Store is the durable state layer: a subscriber registry (point
// lookup on every path setup), prepaid balances (idempotent
// token-guarded debits), and an append-heavy CDR log — all recovered
// from the write-ahead log on Open.
//
// All methods are safe for concurrent use and are no-ops on a nil
// receiver, so a runtime wired for durable state runs unchanged (and
// without cost) when the store is disabled.
type Store struct {
	opts Options
	wal  *wal

	// mu serializes writes and index access. The hot read path does
	// not take it: registry lookups go through reg under regMu.
	mu       sync.Mutex
	profIdx  Index // "p/<name>" -> profile, "b/<name>" -> balance
	cdrIdx   Index // 8-byte big-endian seq -> CDR
	bal      map[string]balance
	cdrSeq   uint64
	profiles int
	keyBuf   []byte
	recBuf   []byte

	regMu sync.RWMutex
	reg   map[string]Profile

	cdrDurable   atomic.Uint64
	recovery     RecoveryStats
	mLookups     *telemetry.Counter
	mMiss        *telemetry.Counter
	mAppends     *telemetry.Counter
	mDebits      *telemetry.Counter
	mReplay      *telemetry.Counter
	mLookupLat   *telemetry.Histogram
	mAppendLat   *telemetry.Histogram
	onCDRDurable func() // test/harness hook, set before traffic
}

// Open opens (or creates) a store rooted at dir, replaying the
// write-ahead log to a consistent state: the well-formed prefix is
// applied, a corrupt or truncated tail is cut off, and appends resume
// from the recovered end.
func Open(dir string, opts Options) (*Store, error) {
	if opts.Backend == "" {
		opts.Backend = "btree"
	}
	profIdx, err := NewIndex(opts.Backend)
	if err != nil {
		return nil, err
	}
	cdrIdx, _ := NewIndex(opts.Backend)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}

	s := &Store{
		opts:       opts,
		profIdx:    profIdx,
		cdrIdx:     cdrIdx,
		bal:        map[string]balance{},
		reg:        map[string]Profile{},
		mLookups:   telemetry.C(MetricLookups),
		mMiss:      telemetry.C(MetricLookupMiss),
		mAppends:   telemetry.C(MetricCDRAppends),
		mDebits:    telemetry.C(MetricDebits),
		mReplay:    telemetry.C(MetricReplayRecords),
		mLookupLat: telemetry.H(MetricLookupLatency),
		mAppendLat: telemetry.H(MetricAppendLatency),
	}

	good, err := replayWAL(f, func(typ byte, body []byte) error {
		s.recovery.Records++
		return s.apply(typ, body)
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	s.mReplay.Add(uint64(s.recovery.Records))
	s.recovery.GoodBytes = good
	if end, err := f.Seek(0, 2); err == nil && end > good {
		s.recovery.Truncated = end - good
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncating corrupt tail: %w", err)
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	// Every record replayed from disk is durable by definition.
	s.cdrDurable.Add(uint64(s.cdrIdx.Len()))
	s.wal = newWAL(f, opts.FsyncInterval, s.recordDurable)
	return s, nil
}

// recordDurable runs on the WAL flusher after each fsync, once per
// record in the batch.
func (s *Store) recordDurable(typ byte) {
	if typ == recCDR {
		s.cdrDurable.Add(1)
		if s.onCDRDurable != nil {
			s.onCDRDurable()
		}
	}
}

// Recovery returns what Open found in the log.
func (s *Store) Recovery() RecoveryStats {
	if s == nil {
		return RecoveryStats{}
	}
	return s.recovery
}

// Backend returns the configured index backend kind.
func (s *Store) Backend() string {
	if s == nil {
		return ""
	}
	return s.opts.Backend
}

// --- keys ---

func profileKey(dst []byte, name string) []byte {
	dst = append(dst[:0], 'p', '/')
	return append(dst, name...)
}

func balanceKey(dst []byte, name string) []byte {
	dst = append(dst[:0], 'b', '/')
	return append(dst, name...)
}

func cdrKey(dst []byte, seq uint64) []byte {
	dst = append(dst[:0], 'c', '/')
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seq)
	return append(dst, b[:]...)
}

// --- apply: shared by live writes and WAL replay ---
// Every apply is idempotent: profile puts are last-wins, CDR puts are
// keyed by their unique seq, and balance adjustments are guarded by
// the monotone token. Replaying a prefix twice therefore reaches the
// same state — the property FuzzWALReplay and the crash tests pin.

// apply mutates in-memory state from one record. Caller holds mu (or
// is Open, before concurrency starts).
func (s *Store) apply(typ byte, body []byte) error {
	switch typ {
	case recProfile:
		p, err := decodeProfile(body)
		if err != nil {
			return err
		}
		s.applyProfile(p, body)
	case recAdjust:
		a, err := decodeAdjust(body)
		if err != nil {
			return err
		}
		s.applyAdjust(a)
	case recCDR:
		c, err := decodeCDR(body)
		if err != nil {
			return err
		}
		s.applyCDR(c, body)
	default:
		return fmt.Errorf("store: unknown record type %d", typ)
	}
	return nil
}

func (s *Store) applyProfile(p Profile, body []byte) {
	s.keyBuf = profileKey(s.keyBuf, p.Name)
	if _, existed := s.profIdx.Get(s.keyBuf); !existed {
		s.profiles++
	}
	s.profIdx.Put(s.keyBuf, body)
	if !s.opts.NoCache {
		s.regMu.Lock()
		s.reg[p.Name] = p
		s.regMu.Unlock()
	}
}

// applyAdjust applies a token-guarded balance change: only a token
// strictly greater than the last applied one takes effect, and a debit
// may not take the balance below zero. Both rules are deterministic,
// so replay reproduces exactly the original outcomes.
func (s *Store) applyAdjust(a adjust) bool {
	b := s.loadBalance(a.Name)
	if a.Token <= b.LastToken {
		return false // already applied (replay, or a crashed client's retry)
	}
	if a.Delta < 0 && b.Cents+a.Delta < 0 {
		return false // insufficient funds: the debit does not apply
	}
	b.Cents += a.Delta
	b.LastToken = a.Token
	s.bal[a.Name] = b
	s.keyBuf = balanceKey(s.keyBuf, a.Name)
	s.recBuf = appendBalance(s.recBuf[:0], b)
	s.profIdx.Put(s.keyBuf, s.recBuf)
	return true
}

func (s *Store) applyCDR(c CDR, body []byte) {
	s.keyBuf = cdrKey(s.keyBuf, c.Seq)
	s.cdrIdx.Put(s.keyBuf, body)
	if c.Seq > s.cdrSeq {
		s.cdrSeq = c.Seq
	}
}

// loadBalance returns the decoded balance for name, consulting the
// index on first touch. Caller holds mu.
func (s *Store) loadBalance(name string) balance {
	if b, ok := s.bal[name]; ok {
		return b
	}
	s.keyBuf = balanceKey(s.keyBuf, name)
	if v, ok := s.profIdx.Get(s.keyBuf); ok {
		if b, err := decodeBalance(v); err == nil {
			s.bal[name] = b
			return b
		}
	}
	return balance{}
}

// --- registry ---

// PutProfile upserts a subscriber profile: logged, indexed, and (with
// the cache enabled) visible to lock-free lookups.
func (s *Store) PutProfile(p Profile) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	body := appendProfile(nil, &p)
	if _, ok := s.wal.append(recProfile, body); !ok {
		return fmt.Errorf("store: closed")
	}
	s.applyProfile(p, body)
	return nil
}

// Lookup is the setup hot path: the subscriber's feature profile by
// name. A hit on the read cache takes a shared lock and allocates
// nothing. A miss returns the degraded-mode default profile with
// ok=false and counts store.lookup_miss — setup proceeds featureless
// rather than failing (there is no panic path for an unknown
// subscriber).
func (s *Store) Lookup(name string) (Profile, bool) {
	if s == nil {
		return DefaultProfile(name), false
	}
	start := time.Now()
	s.mLookups.Inc()
	if !s.opts.NoCache {
		s.regMu.RLock()
		p, ok := s.reg[name]
		s.regMu.RUnlock()
		s.mLookupLat.Observe(time.Since(start))
		if !ok {
			s.mMiss.Inc()
			return DefaultProfile(name), false
		}
		return p, true
	}
	// Uncached: consult the index backend (the benchmarked path).
	s.mu.Lock()
	s.keyBuf = profileKey(s.keyBuf, name)
	v, ok := s.profIdx.Get(s.keyBuf)
	var p Profile
	var err error
	if ok {
		p, err = decodeProfile(v)
	}
	s.mu.Unlock()
	s.mLookupLat.Observe(time.Since(start))
	if !ok || err != nil {
		s.mMiss.Inc()
		return DefaultProfile(name), false
	}
	return p, true
}

// Profiles returns the number of registered subscribers.
func (s *Store) Profiles() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.profiles
}

// --- balances ---

// NextToken returns the next unused adjustment token for a subscriber.
// A caller that records its intended token before issuing the debit
// can re-issue the same debit after a crash with no risk of applying
// it twice.
func (s *Store) NextToken(name string) uint64 {
	if s == nil {
		return 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadBalance(name).LastToken + 1
}

// SetBalance initializes or resets a subscriber's balance.
func (s *Store) SetBalance(name string, cents int64) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// An absolute reset is a delta from the current state under the
	// next token, so it logs and replays like any other adjustment.
	b := s.loadBalance(name)
	a := adjust{Name: name, Delta: cents - b.Cents, Token: b.LastToken + 1}
	body := appendAdjust(nil, &a)
	if _, ok := s.wal.append(recAdjust, body); !ok {
		return fmt.Errorf("store: closed")
	}
	s.applyAdjust(a)
	return nil
}

// Debit subtracts cents under a monotone token. It returns the
// resulting balance and whether this call applied: a token at or below
// the last applied one is an idempotent no-op (the crashed-retry
// case), and a debit that would overdraw does not apply.
func (s *Store) Debit(name string, cents int64, token uint64) (int64, bool) {
	return s.adjustBy(name, -cents, token)
}

// Credit adds cents under a monotone token (the "paid" event).
func (s *Store) Credit(name string, cents int64, token uint64) (int64, bool) {
	return s.adjustBy(name, cents, token)
}

func (s *Store) adjustBy(name string, delta int64, token uint64) (int64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a := adjust{Name: name, Delta: delta, Token: token}
	body := appendAdjust(nil, &a)
	if _, ok := s.wal.append(recAdjust, body); !ok {
		return s.loadBalance(name).Cents, false
	}
	applied := s.applyAdjust(a)
	if applied {
		s.mDebits.Inc()
	}
	return s.loadBalance(name).Cents, applied
}

// Balance returns a subscriber's balance in cents.
func (s *Store) Balance(name string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keyBuf = balanceKey(s.keyBuf, name)
	if _, ok := s.profIdx.Get(s.keyBuf); !ok {
		return 0, false
	}
	return s.loadBalance(name).Cents, true
}

// --- CDRs ---

// AppendCDR logs one call-detail record, assigning its sequence
// number. The record is acknowledged (counted durable) only after its
// WAL batch fsyncs; callers needing a durability barrier use Sync.
// On a nil or closed store the record is dropped and ok is false.
func (s *Store) AppendCDR(c CDR) (uint64, bool) {
	if s == nil {
		return 0, false
	}
	start := time.Now()
	s.mu.Lock()
	c.Seq = s.cdrSeq + 1
	s.recBuf = appendCDR(s.recBuf[:0], &c)
	if _, ok := s.wal.append(recCDR, s.recBuf); !ok {
		s.mu.Unlock()
		return 0, false
	}
	s.cdrSeq = c.Seq
	body := append([]byte(nil), s.recBuf...)
	s.applyCDR(c, body)
	s.mu.Unlock()
	s.mAppends.Inc()
	s.mAppendLat.Observe(time.Since(start))
	return c.Seq, true
}

// CDRCount returns the number of CDRs in the index (issued, durable or
// not; after Open it is exactly the recovered count).
func (s *Store) CDRCount() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cdrIdx.Len()
}

// DurableCDRs returns the number of CDR appends acknowledged by an
// fsync — the count a crash is guaranteed not to lose.
func (s *Store) DurableCDRs() uint64 {
	if s == nil {
		return 0
	}
	return s.cdrDurable.Load()
}

// EachCDR iterates the CDR log in sequence order.
func (s *Store) EachCDR(fn func(CDR) bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ascendPrefix(s.cdrIdx, []byte("c/"), func(_, v []byte) bool {
		c, err := decodeCDR(v)
		if err != nil {
			return true
		}
		return fn(c)
	})
}

// --- lifecycle ---

// Sync blocks until everything issued so far is fsynced.
func (s *Store) Sync() error {
	if s == nil {
		return nil
	}
	return s.wal.sync()
}

// Close flushes and closes the store.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	return s.wal.close()
}

// Crash simulates a power cut for the crash-recovery tests and the
// chaos harness: buffered, unacknowledged WAL records are abandoned
// and the file closes without a final flush. Durable state on disk is
// untouched; reopen with Open to recover it.
func (s *Store) Crash() {
	if s == nil {
		return
	}
	s.wal.crash()
}
