package store

import (
	"bytes"
	"sort"
)

// ScanIndex is the no-index baseline: Put appends to a plain record
// log and Get scans it backwards until the newest version of the key
// turns up. Appends are as cheap as they can possibly be — the
// write-heavy CDR workload's degenerate optimum — and every lookup
// pays O(n), which is precisely the comparison the benchmark exists to
// make.
type ScanIndex struct {
	recs    []kv // append order; v == nil is a tombstone
	checkAt int  // next log length at which to consider compaction
}

// NewScanIndex creates an empty append-scan baseline index.
func NewScanIndex() *ScanIndex { return &ScanIndex{checkAt: 1 << 12} }

// Kind implements Index.
func (s *ScanIndex) Kind() string { return "scan" }

// Get implements Index: scan backwards, latest version wins.
func (s *ScanIndex) Get(key []byte) ([]byte, bool) {
	for i := len(s.recs) - 1; i >= 0; i-- {
		if bytes.Equal(s.recs[i].k, key) {
			v := s.recs[i].v
			return v, v != nil
		}
	}
	return nil, false
}

// Put implements Index: a pure append.
func (s *ScanIndex) Put(key, value []byte) {
	s.recs = append(s.recs, kv{k: append([]byte(nil), key...), v: cloneValue(value)})
	s.maybeCompact()
}

// Delete implements Index: a tombstone append, if the key is live.
func (s *ScanIndex) Delete(key []byte) bool {
	if _, ok := s.Get(key); !ok {
		return false
	}
	s.recs = append(s.recs, kv{k: append([]byte(nil), key...)})
	s.maybeCompact()
	return true
}

// Len implements Index: the baseline has no directory, so counting is
// a full dedup scan.
func (s *ScanIndex) Len() int {
	n := 0
	s.latest(func(kv) bool { n++; return true })
	return n
}

// Ascend implements Index: dedup, sort, iterate.
func (s *ScanIndex) Ascend(fn func(key, value []byte) bool) {
	var live []kv
	s.latest(func(e kv) bool { live = append(live, e); return true })
	sort.Slice(live, func(i, j int) bool { return bytes.Compare(live[i].k, live[j].k) < 0 })
	for _, e := range live {
		if !fn(e.k, e.v) {
			return
		}
	}
}

// latest visits the newest live version of every key, in no particular
// order.
func (s *ScanIndex) latest(fn func(kv) bool) {
	seen := make(map[string]bool, len(s.recs))
	for i := len(s.recs) - 1; i >= 0; i-- {
		e := s.recs[i]
		if seen[string(e.k)] {
			continue
		}
		seen[string(e.k)] = true
		if e.v != nil && !fn(e) {
			return
		}
	}
}

// maybeCompact bounds the log under update- or delete-heavy use: once
// the log has doubled past the last checkpoint and superseded versions
// outnumber live ones, the survivors are rewritten in place. Appends
// of distinct keys — the CDR case — only ever pay the (cheap, rare)
// liveness count.
func (s *ScanIndex) maybeCompact() {
	if len(s.recs) < s.checkAt {
		return
	}
	var fresh []kv
	seen := make(map[string]bool, len(s.recs))
	for i := len(s.recs) - 1; i >= 0; i-- {
		e := s.recs[i]
		if seen[string(e.k)] {
			continue
		}
		seen[string(e.k)] = true
		if e.v != nil {
			fresh = append(fresh, e)
		}
	}
	if len(fresh)*2 > len(s.recs) {
		s.checkAt = len(s.recs) * 2
		return
	}
	// fresh is newest-first; reverse so relative recency survives the
	// rewrite.
	for i, j := 0, len(fresh)-1; i < j; i, j = i+1, j-1 {
		fresh[i], fresh[j] = fresh[j], fresh[i]
	}
	s.recs = fresh
	s.checkAt = max(len(s.recs)*2, 1<<12)
}
