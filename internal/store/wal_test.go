package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func walFile(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(t.TempDir(), "wal.log"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestWALAppendSyncReplay(t *testing.T) {
	f := walFile(t)
	path := f.Name()
	w := newWAL(f, time.Millisecond, nil)
	records := [][]byte{[]byte("alpha"), []byte("bravo"), []byte("charlie")}
	for i, r := range records {
		seq, ok := w.append(byte(i+1), r)
		if !ok || seq != uint64(i+1) {
			t.Fatalf("append %d: seq=%d ok=%v", i, seq, ok)
		}
	}
	if err := w.sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if got := w.durableCount(); got != 3 {
		t.Fatalf("durableCount = %d, want 3", got)
	}
	if err := w.close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var gotTypes []byte
	var gotBodies [][]byte
	off, err := replayWAL(bytes.NewReader(data), func(typ byte, body []byte) error {
		gotTypes = append(gotTypes, typ)
		gotBodies = append(gotBodies, append([]byte(nil), body...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if off != int64(len(data)) {
		t.Fatalf("good prefix = %d, file = %d", off, len(data))
	}
	if len(gotBodies) != 3 {
		t.Fatalf("replayed %d records", len(gotBodies))
	}
	for i, r := range records {
		if gotTypes[i] != byte(i+1) || !bytes.Equal(gotBodies[i], r) {
			t.Fatalf("record %d: type=%d body=%q", i, gotTypes[i], gotBodies[i])
		}
	}
}

func TestWALReplayStopsAtCorruptTail(t *testing.T) {
	var log []byte
	log = appendWALRecord(log, 1, []byte("good-one"))
	goodLen := len(log)
	log = appendWALRecord(log, 2, []byte("good-two"))
	goodLen2 := len(log)
	log = appendWALRecord(log, 3, []byte("doomed"))

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantOff int64
		wantN   int
	}{
		{"intact", func(b []byte) []byte { return b }, int64(len(log)), 3},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-3] }, int64(goodLen2), 2},
		{"truncated header", func(b []byte) []byte { return b[:goodLen2+4] }, int64(goodLen2), 2},
		{"flipped body byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0xFF
			return c
		}, int64(goodLen2), 2},
		{"flipped mid-log byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[goodLen+walHeaderSize] ^= 0xFF // corrupts record two's type byte
			return c
		}, int64(goodLen), 1},
		{"zero length field", func(b []byte) []byte {
			c := append([]byte(nil), b[:goodLen]...)
			return append(c, make([]byte, walHeaderSize)...)
		}, int64(goodLen), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := 0
			off, err := replayWAL(bytes.NewReader(tc.mutate(log)), func(byte, []byte) error {
				n++
				return nil
			})
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if off != tc.wantOff || n != tc.wantN {
				t.Fatalf("off=%d n=%d, want off=%d n=%d", off, n, tc.wantOff, tc.wantN)
			}
		})
	}
}

func TestWALCrashDropsUnsynced(t *testing.T) {
	f := walFile(t)
	path := f.Name()
	// Session one makes "acked" durable and closes cleanly.
	w1 := newWAL(f, time.Millisecond, nil)
	w1.append(1, []byte("acked"))
	if err := w1.sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := w1.close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Session two buffers "in-flight" under a window that never elapses,
	// then crashes: deterministically, the record is never written.
	f2, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Seek(0, 2); err != nil {
		t.Fatal(err)
	}
	w := newWAL(f2, time.Hour, nil)
	w.append(2, []byte("in-flight"))
	w.crash()

	if _, ok := w.append(3, []byte("after-crash")); ok {
		t.Fatal("append succeeded after crash")
	}
	if err := w.sync(); err == nil {
		t.Fatal("sync succeeded after crash")
	}

	data, _ := os.ReadFile(path)
	n := 0
	if _, err := replayWAL(bytes.NewReader(data), func(typ byte, body []byte) error {
		n++
		if typ != 1 || string(body) != "acked" {
			t.Fatalf("unexpected survivor: type=%d body=%q", typ, body)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records after crash, want 1 (the acked one)", n)
	}
}

// TestWALFsyncBatching checks group commit actually groups: many
// appends inside one window must reach durability with far fewer
// fsyncs than records.
func TestWALFsyncBatching(t *testing.T) {
	f := walFile(t)
	w := newWAL(f, 5*time.Millisecond, nil)
	const n = 500
	for i := 0; i < n; i++ {
		if _, ok := w.append(1, []byte("cdr")); !ok {
			t.Fatalf("append %d failed", i)
		}
	}
	if err := w.sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if got := w.durableCount(); got != n {
		t.Fatalf("durable = %d, want %d", got, n)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALCloseFlushesTail(t *testing.T) {
	f := walFile(t)
	path := f.Name()
	w := newWAL(f, time.Hour, nil) // window never elapses on its own
	w.append(1, []byte("tail"))
	if err := w.close(); err != nil { // close must flush without waiting the window
		t.Fatalf("close: %v", err)
	}
	data, _ := os.ReadFile(path)
	n := 0
	replayWAL(bytes.NewReader(data), func(byte, []byte) error { n++; return nil })
	if n != 1 {
		t.Fatalf("close lost the tail: replayed %d records, want 1", n)
	}
}

func TestWALOnDurableCallback(t *testing.T) {
	f := walFile(t)
	var types []byte
	done := make(chan struct{}, 8)
	w := newWAL(f, time.Millisecond, func(typ byte) {
		types = append(types, typ) // flusher goroutine only; sync() below orders it
		done <- struct{}{}
	})
	w.append(recCDR, []byte("a"))
	w.append(recProfile, []byte("b"))
	if err := w.sync(); err != nil {
		t.Fatal(err)
	}
	<-done
	<-done
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	if len(types) != 2 || types[0] != recCDR || types[1] != recProfile {
		t.Fatalf("onDurable saw %v", types)
	}
}
