// Package sip is the baseline for the paper's protocol comparison
// (Section IX-B): a miniature implementation of SIP's media-control
// *semantics* — transactional invite/success/ack signaling, relative
// offer/answer codec negotiation, at most one invite transaction per
// signaling path (media bundling), glare failure with randomized
// backoff, and RFC 3725-style third-party call control in which a
// mid-path server solicits a fresh offer with an offerless invite.
//
// It runs on the same virtual-clock cost model (compute c, network n)
// as the compositional protocol, so Figure 14's latency analysis can
// be measured head to head against Figure 13's.
package sip

import (
	"fmt"
	"time"

	"ipmedia/internal/des"
	"ipmedia/internal/sig"
)

// Kind enumerates the SIP-semantic messages.
type Kind uint8

// The message kinds: Invite opens or modifies media (offerless =
// solicit), OK answers it, Ack completes the three-way transaction,
// Glare is the 491-style failure when two invite transactions collide.
const (
	Invite Kind = iota
	OK
	Ack
	Glare
)

var kindNames = [...]string{"invite", "ok", "ack", "glare"}

func (k Kind) String() string { return kindNames[k] }

// SDP is a session description: the owner endpoint and its codec set.
// In SIP an answer is relative to an offer (a subset of its codecs),
// unlike the paper's unilateral descriptors.
type SDP struct {
	Owner  string
	Addr   string
	Port   int
	Codecs []sig.Codec
}

// Msg is one signaling message.
type Msg struct {
	Kind   Kind
	From   string
	Op     string // operation tag (owner-scoped), separating concurrent and serialized operations
	Offer  *SDP   // Invite: nil means offerless (solicitation); OK: solicited offer
	Answer *SDP   // OK: answer; Ack: answer for a solicited offer
	Dummy  bool   // Ack closing an aborted transaction
}

// Entity is one SIP-speaking box.
type Entity interface {
	Name() string
	Recv(m Msg)
}

// Net hosts SIP entities on a virtual clock with the (c, n) cost
// model of paper Section VIII-C.
type Net struct {
	Sim *des.Sim
	C   time.Duration
	N   time.Duration

	hosts map[string]*host
	errs  []error
	// Sent counts every message put on the wire, for the protocol
	// overhead comparison.
	Sent int
	// Trace, if set, observes every message put on the wire.
	Trace func(from, to string, m Msg, at time.Duration)
	// arrival is the network-arrival instant of the message currently
	// being handled, before the receiver's compute cost. An endpoint
	// that learns the answer from an ack can start accepting media at
	// that instant (the information is on the wire; the compute cost
	// models signaling work, matching the paper's 10n+11c+d accounting).
	arrival time.Duration
}

type host struct {
	e      Entity
	freeAt time.Duration
}

// NewNet creates a SIP network on sim.
func NewNet(sim *des.Sim, c, n time.Duration) *Net {
	return &Net{Sim: sim, C: c, N: n, hosts: map[string]*host{}}
}

// Add hosts an entity.
func (nt *Net) Add(e Entity) { nt.hosts[e.Name()] = &host{e: e} }

// Errs returns protocol errors recorded during the run.
func (nt *Net) Errs() []error { return nt.errs }

func (nt *Net) fail(format string, args ...any) {
	nt.errs = append(nt.errs, fmt.Errorf(format, args...))
}

// Send delivers m to the named entity after network latency; the
// receiving entity pays compute cost c before handling it, queuing if
// busy. Call only from inside a handler or scheduled closure.
func (nt *Net) Send(to string, m Msg) {
	h, ok := nt.hosts[to]
	if !ok {
		nt.fail("sip: no entity %q", to)
		return
	}
	nt.Sent++
	if nt.Trace != nil {
		nt.Trace(m.From, to, m, nt.Sim.Now())
	}
	arrive := nt.Sim.Now() + nt.N
	nt.Sim.At(arrive, func() {
		at := nt.Sim.Now()
		start := h.freeAt
		if at > start {
			start = at
		}
		finish := start + nt.C
		h.freeAt = finish
		nt.Sim.At(finish, func() {
			nt.arrival = at
			h.e.Recv(m)
		})
	})
}

// Exec runs f inside the named entity at the current time plus compute
// cost (the analogue of a local stimulus).
func (nt *Net) Exec(name string, f func()) {
	h, ok := nt.hosts[name]
	if !ok {
		nt.fail("sip: no entity %q", name)
		return
	}
	start := h.freeAt
	if nt.Sim.Now() > start {
		start = nt.Sim.Now()
	}
	finish := start + nt.C
	h.freeAt = finish
	nt.Sim.At(finish, f)
}

// Endpoint is a SIP user agent: it answers invites, enforcing SIP's
// rule that invite transactions on a signaling path cannot overlap.
type Endpoint struct {
	name string
	net  *Net
	sdp  SDP

	inTx    bool
	peer    *SDP
	ReadyAt time.Duration // when this endpoint could first transmit to the new peer
	ready   bool
	readyOp map[string]time.Duration // readiness per tagged operation
	Glares  int
}

// NewEndpoint creates an endpoint with its own session description.
func NewEndpoint(net *Net, name string, sdp SDP) *Endpoint {
	e := &Endpoint{name: name, net: net, sdp: sdp, readyOp: map[string]time.Duration{}}
	net.Add(e)
	return e
}

// Name implements Entity.
func (e *Endpoint) Name() string { return e.name }

// ResetMeasurement clears the readiness clock before an experiment.
func (e *Endpoint) ResetMeasurement() { e.ready = false; e.ReadyAt = 0 }

// Ready reports whether and when the endpoint became able to transmit.
func (e *Endpoint) Ready() (time.Duration, bool) { return e.ReadyAt, e.ready }

func (e *Endpoint) markReady(op string, at time.Duration) {
	if !e.ready {
		e.ready = true
		e.ReadyAt = at
	}
	if _, ok := e.readyOp[op]; !ok {
		e.readyOp[op] = at
	}
}

// ReadyFor reports whether and when the endpoint became ready within
// the tagged operation.
func (e *Endpoint) ReadyFor(op string) (time.Duration, bool) {
	t, ok := e.readyOp[op]
	return t, ok
}

// Recv implements Entity.
func (e *Endpoint) Recv(m Msg) {
	switch m.Kind {
	case Invite:
		if e.inTx {
			// "Such an invite transaction cannot overlap with any other
			// invite transaction on the same signaling path."
			e.Glares++
			e.net.Send(m.From, Msg{Kind: Glare, From: e.name})
			return
		}
		e.inTx = true
		if m.Offer == nil {
			// Offerless invite: answer with a fresh offer (RFC 3725).
			offer := e.sdp
			e.net.Send(m.From, Msg{Kind: OK, From: e.name, Op: m.Op, Offer: &offer})
			return
		}
		// Offer/answer: answer with the subset of the offer we support.
		e.peer = m.Offer
		ans := e.answer(*m.Offer)
		e.net.Send(m.From, Msg{Kind: OK, From: e.name, Op: m.Op, Answer: &ans})
		// "An endpoint can send media as soon as" the answer is out.
		e.markReady(m.Op, e.net.Sim.Now())
	case Ack:
		e.inTx = false
		if m.Answer != nil && !m.Dummy {
			// The answer to our solicited offer: we now know the peer
			// from the moment the ack arrived.
			e.peer = m.Answer
			e.markReady(m.Op, e.net.arrival)
		}
	case Glare, OK:
		// Endpoints in these experiments never initiate, so nothing to
		// do; a stray message is a protocol error.
		e.net.fail("sip: endpoint %s got unexpected %s", e.name, m.Kind)
	}
}

// answer computes the relative answer to an offer: the intersection of
// codec sets, in the offer's preference order.
func (e *Endpoint) answer(offer SDP) SDP {
	ans := SDP{Owner: e.name, Addr: e.sdp.Addr, Port: e.sdp.Port}
	for _, c := range offer.Codecs {
		for _, own := range e.sdp.Codecs {
			if c == own {
				ans.Codecs = append(ans.Codecs, c)
				break
			}
		}
	}
	return ans
}

// Peer returns the current remote SDP.
func (e *Endpoint) Peer() *SDP { return e.peer }
