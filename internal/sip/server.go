// The SIP application server of Figure 14: a back-to-back user agent
// sitting between its endpoint side and the rest of the signaling
// path. To create media flow between its two sides it must first
// solicit a fresh offer with an offerless invite (answers are
// relative, so cached descriptions cannot be re-used), then carry the
// offer to the far side in a second transaction, and finally
// distribute the answer — sequentially, because negotiation imposes an
// order. When two servers attempt this concurrently their invites
// collide (glare); both transactions fail and a randomized backoff
// precedes the retry.
package sip

import (
	"fmt"
	"math/rand"
	"time"
)

// ServerOptions toggle the SIP behaviors the paper's comparison
// isolates — each option removes one of the three delay sources of
// Section IX-B.
type ServerOptions struct {
	// ReuseCachedSDP skips offer solicitation and uses a cached session
	// description (ablation of delay source 1: ours re-uses cached
	// unilateral descriptors; SIP must not re-use offers or answers).
	ReuseCachedSDP bool
	// ParallelDescribe sends both directions concurrently instead of
	// sequencing answer after offer (ablation of delay source 3;
	// requires ReuseCachedSDP).
	ParallelDescribe bool
	// RetryAfterGlare makes this server retry its whole operation after
	// the randomized backoff; the non-retrying server abandons (the
	// paper's PC retries, the PBX's concurrent attempt is redundant).
	RetryAfterGlare bool
	// Backoff samples the glare retry delay d; the paper gives it an
	// expected value of 3 seconds.
	Backoff func(r *rand.Rand) time.Duration
}

// DefaultBackoff is uniform on [2.1s, 3.9s], expected value 3 s.
func DefaultBackoff(r *rand.Rand) time.Duration {
	return 2100*time.Millisecond + time.Duration(r.Int63n(int64(1800*time.Millisecond)))
}

// serverState is the active-operation state machine.
type serverState uint8

const (
	idle serverState = iota
	soliciting
	inviting
	awaitAnswerPar // parallel-describe variant: waiting for both answers
)

// Server is a SIP application server with an endpoint side and a far
// side (which may be another server).
type Server struct {
	name string
	net  *Net
	opts ServerOptions
	rng  *rand.Rand

	endSide string // the endpoint this server serves
	farSide string // next hop toward the other end of the path

	state     serverState
	cachedEnd *SDP // cached SDP of our endpoint side (sent toward the far side)
	cachedFar *SDP // cached SDP of the far endpoint (sent toward our endpoint)
	pending   *SDP // offer in flight toward farSide
	parLeft   int  // outstanding answers in the parallel variant

	// Passive forwarding state: a B2BUA relaying someone else's
	// transaction between its two sides.
	relayFrom string

	op int // current operation tag
	// aborted records operations whose solicited offer may still be in
	// flight; the offer is answered with a dummy ack when it lands so
	// the endpoint's transaction is not left open.
	aborted    map[string]bool
	GlaresSeen int
	Retries    int
	DoneAt     time.Duration
	done       bool
	// OnDone, if set, runs when an operation completes (at the server,
	// inside the simulation).
	OnDone func()
}

// NewServer creates a server between endSide and farSide.
func NewServer(net *Net, name, endSide, farSide string, opts ServerOptions, seed int64) *Server {
	if opts.Backoff == nil {
		opts.Backoff = DefaultBackoff
	}
	s := &Server{
		name: name, net: net, opts: opts,
		endSide: endSide, farSide: farSide,
		rng:     rand.New(rand.NewSource(seed)),
		aborted: map[string]bool{},
	}
	net.Add(s)
	return s
}

// Name implements Entity.
func (s *Server) Name() string { return s.name }

// CacheEnd primes the cached SDP of the server's own endpoint side
// (recorded during earlier signaling, before the measured operation).
func (s *Server) CacheEnd(sdp SDP) { s.cachedEnd = &sdp }

// CacheFar primes the cached SDP of the far endpoint, needed by the
// parallel-describe ablation.
func (s *Server) CacheFar(sdp SDP) { s.cachedFar = &sdp }

// Relink starts the measured operation: create media flow between the
// server's two sides, like a newly attached flowlink.
func (s *Server) Relink() {
	s.op++
	s.net.Exec(s.name, s.start)
}

// Op returns the tag of the server's current (or last) operation.
func (s *Server) Op() string { return s.TagOf(s.op) }

// TagOf renders the owner-scoped tag of the server's nth operation.
func (s *Server) TagOf(n int) string { return fmt.Sprintf("%s#%d", s.name, n) }

func (s *Server) start() {
	s.done = false
	if s.opts.ReuseCachedSDP && s.cachedEnd != nil {
		if s.opts.ParallelDescribe && s.cachedFar != nil {
			// Both sides invited concurrently with cached SDPs — the
			// transactional analogue of the paper's idempotent,
			// unilateral design.
			s.state = awaitAnswerPar
			s.parLeft = 2
			toFar, toEnd := *s.cachedEnd, *s.cachedFar
			s.net.Send(s.farSide, Msg{Kind: Invite, From: s.name, Op: s.Op(), Offer: &toFar})
			s.net.Send(s.endSide, Msg{Kind: Invite, From: s.name, Op: s.Op(), Offer: &toEnd})
			return
		}
		// Sequential but without solicitation.
		s.state = inviting
		offer := *s.cachedEnd
		s.pending = &offer
		s.net.Send(s.farSide, Msg{Kind: Invite, From: s.name, Op: s.Op(), Offer: &offer})
		return
	}
	// Full RFC 3725 flow: solicit a fresh offer from the endpoint side.
	s.state = soliciting
	s.net.Send(s.endSide, Msg{Kind: Invite, From: s.name, Op: s.Op()})
}

// Recv implements Entity.
func (s *Server) Recv(m Msg) {
	if s.state != idle && m.Kind == Invite && m.From == s.farSide {
		// Glare: a foreign invite while our own transaction is active.
		// Both transactions fail (paper Section IX-B). If our own
		// invite was already out (inviting), the endpoint's solicited
		// transaction is open and needs a dummy answer; if we were
		// still soliciting, the offer is in flight and is dummied when
		// it lands.
		s.GlaresSeen++
		s.net.Send(m.From, Msg{Kind: Glare, From: s.name})
		s.abortAndMaybeRetry(s.state == inviting)
		return
	}
	switch m.Kind {
	case OK:
		s.onOK(m)
	case Glare:
		switch {
		case s.state != idle && m.From == s.endSide:
			// Our offerless solicit collided with traffic at our own
			// endpoint: no transaction was opened there.
			s.GlaresSeen++
			s.abortAndMaybeRetry(false)
		case s.state != idle:
			// Our far-side invite was rejected remotely; if we already
			// detected the glare locally we have aborted, otherwise the
			// solicited endpoint transaction is open.
			s.abortAndMaybeRetry(s.state == inviting)
		case s.relayFrom != "":
			// A relayed transaction failed downstream.
			to := s.other(m.From)
			m.From = s.name
			s.net.Send(to, m)
			s.relayFrom = ""
		}
	case Invite:
		s.relay(m)
	case Ack:
		if s.relayFrom != "" {
			to := s.other(m.From)
			m.From = s.name
			s.net.Send(to, m)
			s.relayFrom = ""
		}
	}
}

func (s *Server) other(from string) string {
	if from == s.endSide {
		return s.farSide
	}
	return s.endSide
}

// relay forwards someone else's transaction through this (idle) B2BUA.
func (s *Server) relay(m Msg) {
	if s.state != idle {
		// Covered by the glare branch for farSide invites; an invite
		// from our own endpoint cannot occur in these scenarios.
		return
	}
	s.relayFrom = m.From
	to := s.other(m.From)
	m.From = s.name
	s.net.Send(to, m)
}

func (s *Server) onOK(m Msg) {
	// An offer landing for an operation we aborted: close the
	// endpoint's transaction with a dummy answer.
	if m.Offer != nil && s.aborted[m.Op] {
		delete(s.aborted, m.Op)
		dummy := SDP{Owner: s.name}
		s.net.Send(m.From, Msg{Kind: Ack, From: s.name, Op: m.Op, Answer: &dummy, Dummy: true})
		return
	}
	// Traffic for someone else's operation while we are active: relay.
	if s.state != idle && m.Op != s.Op() && s.relayFrom != "" {
		to := s.other(m.From)
		m.From = s.name
		s.net.Send(to, m)
		return
	}
	switch s.state {
	case soliciting:
		if m.Offer == nil {
			s.net.fail("sip: server %s expected a solicited offer", s.name)
			return
		}
		// Carry the fresh offer to the far side.
		s.state = inviting
		s.pending = m.Offer
		offer := *m.Offer
		s.net.Send(s.farSide, Msg{Kind: Invite, From: s.name, Op: s.Op(), Offer: &offer})
	case inviting:
		if m.Answer == nil {
			s.net.fail("sip: server %s expected an answer", s.name)
			return
		}
		// Distribute the answer: complete the endpoint transaction with
		// the answer, and the far transaction with a plain ack.
		s.net.Send(s.endSide, Msg{Kind: Ack, From: s.name, Op: s.Op(), Answer: m.Answer})
		s.net.Send(s.farSide, Msg{Kind: Ack, From: s.name, Op: s.Op()})
		s.finish()
	case awaitAnswerPar:
		s.net.Send(m.From, Msg{Kind: Ack, From: s.name, Op: s.Op()})
		s.parLeft--
		if s.parLeft == 0 {
			s.finish()
		}
	case idle:
		if s.relayFrom != "" {
			to := s.other(m.From)
			m.From = s.name
			s.net.Send(to, m)
		}
	}
}

func (s *Server) finish() {
	s.state = idle
	s.pending = nil
	if !s.done {
		s.done = true
		s.DoneAt = s.net.Sim.Now()
	}
	if s.OnDone != nil {
		s.OnDone()
	}
}

// abortAndMaybeRetry implements the glare recovery of Figure 14: close
// the solicited endpoint transaction with a dummy answer (if it is
// open — endpointTxOpen), then either retry the whole operation after
// the randomized delay or abandon. A solicited offer still in flight
// is recorded so it can be dummied when it lands.
func (s *Server) abortAndMaybeRetry(endpointTxOpen bool) {
	wasSoliciting := s.state == soliciting
	s.state = idle
	s.pending = nil
	if !s.opts.ReuseCachedSDP {
		if endpointTxOpen {
			dummy := SDP{Owner: s.name}
			s.net.Send(s.endSide, Msg{Kind: Ack, From: s.name, Op: s.Op(), Answer: &dummy, Dummy: true})
		} else if wasSoliciting {
			s.aborted[s.Op()] = true
		}
	}
	if s.opts.RetryAfterGlare {
		d := s.opts.Backoff(s.rng)
		s.Retries++
		s.net.Sim.After(d, func() {
			s.net.Exec(s.name, func() {
				s.op++ // the retry is a fresh operation
				s.start()
			})
		})
	}
}
