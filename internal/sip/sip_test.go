package sip

import (
	"math/rand"
	"testing"
	"time"

	"ipmedia/internal/des"
	"ipmedia/internal/sig"
)

const (
	c = 20 * time.Millisecond
	n = 34 * time.Millisecond
)

func fixture(pbxOpts, pcOpts ServerOptions) (*des.Sim, *Net, *Endpoint, *Endpoint, *Server, *Server) {
	sim := des.NewSim()
	net := NewNet(sim, c, n)
	sdpA := SDP{Owner: "A", Addr: "hA", Port: 1, Codecs: []sig.Codec{sig.G711, sig.G726}}
	sdpC := SDP{Owner: "C", Addr: "hC", Port: 2, Codecs: []sig.Codec{sig.G726, sig.G729}}
	a := NewEndpoint(net, "A", sdpA)
	cc := NewEndpoint(net, "C", sdpC)
	pbx := NewServer(net, "PBX", "A", "PC", pbxOpts, 1)
	pc := NewServer(net, "PC", "C", "PBX", pcOpts, 2)
	pbx.CacheEnd(sdpA)
	pbx.CacheFar(sdpC)
	pc.CacheEnd(sdpC)
	pc.CacheFar(sdpA)
	return sim, net, a, cc, pbx, pc
}

func TestCommonCaseCompletesWithNegotiatedCodec(t *testing.T) {
	sim, net, a, cc, _, pc := fixture(ServerOptions{}, ServerOptions{})
	pc.Relink()
	if !sim.Run(100000) {
		t.Fatal("did not quiesce")
	}
	if len(net.Errs()) > 0 {
		t.Fatal(net.Errs()[0])
	}
	// Negotiation: A's answer must be the intersection of C's offer
	// (G726, G729) with A's set (G711, G726) = {G726}.
	if p := cc.Peer(); p == nil || len(p.Codecs) != 1 || p.Codecs[0] != sig.G726 {
		t.Fatalf("C's negotiated peer = %+v", cc.Peer())
	}
	if p := a.Peer(); p == nil || p.Owner != "C" {
		t.Fatalf("A's peer = %+v", a.Peer())
	}
	aAt, ok1 := a.Ready()
	cAt, ok2 := cc.Ready()
	if !ok1 || !ok2 {
		t.Fatal("both endpoints must become ready")
	}
	// Paper Section IX-B: the common case costs 7n+7c end to end.
	if cAt != 7*n+7*c {
		t.Errorf("C ready at %v, want %v", cAt, 7*n+7*c)
	}
	if aAt != 4*n+5*c {
		t.Errorf("A ready at %v, want %v", aAt, 4*n+5*c)
	}
}

func TestGlareBothFailThenRetry(t *testing.T) {
	d := 3 * time.Second
	fixed := func(*rand.Rand) time.Duration { return d }
	sim, net, a, cc, pbx, pc := fixture(
		ServerOptions{Backoff: fixed},
		ServerOptions{RetryAfterGlare: true, Backoff: fixed})
	pbx.Relink()
	pc.Relink()
	if !sim.Run(100000) {
		t.Fatal("did not quiesce")
	}
	if len(net.Errs()) > 0 {
		t.Fatal(net.Errs()[0])
	}
	if pbx.GlaresSeen != 1 || pc.GlaresSeen != 1 {
		t.Fatalf("both servers must detect the glare: pbx=%d pc=%d", pbx.GlaresSeen, pc.GlaresSeen)
	}
	if pc.Retries != 1 {
		t.Fatalf("PC must retry once, did %d", pc.Retries)
	}
	cAt, ok := cc.Ready()
	if !ok {
		t.Fatal("C must become ready after the retry")
	}
	if want := 10*n + 11*c + d; cAt != want {
		t.Errorf("C ready at %v, want 10n+11c+d = %v", cAt, want)
	}
	if _, ok := a.Ready(); !ok {
		t.Fatal("A must become ready after the retry")
	}
}

func TestAbandoningServerStaysSilent(t *testing.T) {
	d := time.Second
	fixed := func(*rand.Rand) time.Duration { return d }
	sim, net, _, _, pbx, pc := fixture(
		ServerOptions{Backoff: fixed},
		ServerOptions{RetryAfterGlare: true, Backoff: fixed})
	pbx.Relink()
	pc.Relink()
	sim.Run(100000)
	if len(net.Errs()) > 0 {
		t.Fatal(net.Errs()[0])
	}
	if pbx.Retries != 0 {
		t.Fatal("the non-retrying server must abandon")
	}
	if !pc.done {
		t.Fatal("the retrying server must complete")
	}
}

func TestEndpointGlareOnOverlappingInvites(t *testing.T) {
	sim := des.NewSim()
	net := NewNet(sim, c, n)
	e := NewEndpoint(net, "E", SDP{Owner: "E", Codecs: []sig.Codec{sig.G711}})
	probe := &probeEntity{name: "P"}
	net.Add(probe)
	sim.At(0, func() {
		net.Send("E", Msg{Kind: Invite, From: "P", Op: "P#1"})
	})
	sim.At(time.Millisecond, func() {
		net.Send("E", Msg{Kind: Invite, From: "P", Op: "P#2"})
	})
	sim.Run(100000)
	if e.Glares != 1 {
		t.Fatalf("overlapping invites must glare once, got %d", e.Glares)
	}
}

type probeEntity struct {
	name string
	got  []Msg
}

func (p *probeEntity) Name() string { return p.name }
func (p *probeEntity) Recv(m Msg)   { p.got = append(p.got, m) }

func TestParallelCachedVariantMatchesCompositionalLatency(t *testing.T) {
	sim, net, a, cc, _, pc := fixture(ServerOptions{},
		ServerOptions{ReuseCachedSDP: true, ParallelDescribe: true})
	pc.Relink()
	sim.Run(100000)
	if len(net.Errs()) > 0 {
		t.Fatal(net.Errs()[0])
	}
	aAt, _ := a.Ready()
	cAt, _ := cc.Ready()
	m := aAt
	if cAt > m {
		m = cAt
	}
	if want := 2*n + 3*c; m != want {
		t.Errorf("parallel cached variant = %v, want the compositional 2n+3c = %v", m, want)
	}
}

func TestAnswerIsRelativeSubset(t *testing.T) {
	e := &Endpoint{name: "E", sdp: SDP{Codecs: []sig.Codec{sig.G711, sig.G729}}}
	ans := e.answer(SDP{Codecs: []sig.Codec{sig.G729, sig.G726, sig.G711}})
	if len(ans.Codecs) != 2 || ans.Codecs[0] != sig.G729 || ans.Codecs[1] != sig.G711 {
		t.Fatalf("answer = %v; must be the offer-ordered intersection", ans.Codecs)
	}
}

func TestDefaultBackoffExpectation(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var sum time.Duration
	const k = 20000
	for i := 0; i < k; i++ {
		d := DefaultBackoff(r)
		if d < 2100*time.Millisecond || d >= 3900*time.Millisecond {
			t.Fatalf("backoff %v out of range", d)
		}
		sum += d
	}
	mean := sum / k
	if mean < 2900*time.Millisecond || mean > 3100*time.Millisecond {
		t.Fatalf("mean backoff %v, want ~3s (paper's expected d)", mean)
	}
}
