package endpoint

import (
	"testing"
	"time"

	"ipmedia/internal/box"
	"ipmedia/internal/media"
	"ipmedia/internal/sig"
	"ipmedia/internal/transport"
)

type fixture struct {
	t     *testing.T
	net   *transport.MemNetwork
	plane *media.Plane
	stops []func()
}

func newFixture(t *testing.T) *fixture {
	return &fixture{t: t, net: transport.NewMemNetwork(), plane: media.NewPlane()}
}

func (f *fixture) device(name string, port int, auto bool) *Device {
	d, err := NewDevice(Config{
		Name: name, Net: f.net, Plane: f.plane,
		MediaPort: port, AutoAccept: auto,
	})
	if err != nil {
		f.t.Fatal(err)
	}
	f.stops = append(f.stops, d.Stop)
	return d
}

func (f *fixture) cleanup() {
	for _, s := range f.stops {
		s()
	}
}

func (f *fixture) eventually(what string, pred func() bool) {
	f.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	f.t.Fatalf("timeout waiting for %s", what)
}

// TestDeviceCallAnswerMediaFlows: the full Figure 5 lifecycle between
// two real devices over the in-memory network, with packets observed
// on the media plane.
func TestDeviceCallAnswerMediaFlows(t *testing.T) {
	f := newFixture(t)
	defer f.cleanup()
	a := f.device("A", 5004, false)
	b := f.device("B", 5006, false)

	if err := a.Call("c", "B", sig.Audio); err != nil {
		t.Fatal(err)
	}
	f.eventually("B ringing", func() bool { return len(b.Ringing()) == 1 })
	ring := b.Ringing()[0]
	b.Answer(ring)

	f.eventually("media both ways", func() bool {
		return f.plane.HasFlow("A", "B") && f.plane.HasFlow("B", "A")
	})
	// The accept window on each side opens asynchronously with the
	// transmit flow, so keep ticking until packets land both ways.
	f.eventually("packets accepted both ways", func() bool {
		f.plane.Tick(1)
		return a.Agent().Stats().Accepted > 0 && b.Agent().Stats().Accepted > 0
	})

	// Hang up: media stops, channels are destroyed on both sides.
	a.HangUp("c")
	f.eventually("media stopped", func() bool {
		return len(f.plane.Flows()) == 0
	})
}

// TestDeviceReject: the callee rejects; the caller's openslot will
// retry (its goal persists), so the callee keeps rejecting — the
// openslot-vs-closeslot path. The caller then gives up by hanging up.
func TestDeviceReject(t *testing.T) {
	f := newFixture(t)
	defer f.cleanup()
	a := f.device("A", 5004, false)
	b := f.device("B", 5006, false)
	if err := a.Call("c", "B", sig.Audio); err != nil {
		t.Fatal(err)
	}
	f.eventually("B ringing", func() bool { return len(b.Ringing()) == 1 })
	b.Reject(b.Ringing()[0])
	// Media must never flow.
	for i := 0; i < 50; i++ {
		if f.plane.HasFlow("A", "B") || f.plane.HasFlow("B", "A") {
			t.Fatal("media must not flow on a rejected call")
		}
		time.Sleep(time.Millisecond)
	}
	a.HangUp("c")
}

// TestDeviceMuteMidCall: modify events while flowing (paper Figure 5).
func TestDeviceMuteMidCall(t *testing.T) {
	f := newFixture(t)
	defer f.cleanup()
	a := f.device("A", 5004, false)
	f.device("B", 5006, true) // auto-accepts

	if err := a.Call("c", "B", sig.Audio); err != nil {
		t.Fatal(err)
	}
	f.eventually("media both ways", func() bool {
		return f.plane.HasFlow("A", "B") && f.plane.HasFlow("B", "A")
	})

	// A mutes its microphone: A->B stops, B->A continues.
	a.SetMute(false, true)
	f.eventually("A->B muted", func() bool {
		return !f.plane.HasFlow("A", "B") && f.plane.HasFlow("B", "A")
	})

	// A also mutes its speaker: B must stop sending (it answers A's
	// noMedia descriptor with a noMedia selector).
	a.SetMute(true, true)
	f.eventually("B->A muted", func() bool {
		return !f.plane.HasFlow("B", "A")
	})

	// Unmute: both directions recover (the recurrence property).
	a.SetMute(false, false)
	f.eventually("both directions restored", func() bool {
		return f.plane.HasFlow("A", "B") && f.plane.HasFlow("B", "A")
	})
}

// TestUnavailableDevice: a device configured unavailable answers setup
// with the unavailable meta-signal.
func TestUnavailableDevice(t *testing.T) {
	f := newFixture(t)
	defer f.cleanup()
	d, err := NewDevice(Config{Name: "gone", Net: f.net, Plane: f.plane, Unavailable: true})
	if err != nil {
		t.Fatal(err)
	}
	f.stops = append(f.stops, d.Stop)

	got := make(chan sig.MetaKind, 1)
	probe := box.New("probe", DefaultCodecsProfile("probe"))
	probe.Hook = func(ctx *box.Ctx, ev *box.Event) {
		if ev.Kind == box.EvEnvelope && ev.Env.IsMeta() {
			k := ev.Env.Meta.Kind
			if k == sig.MetaAvailable || k == sig.MetaUnavailable {
				select {
				case got <- k:
				default:
				}
			}
		}
	}
	r := box.NewRunner(probe, f.net)
	f.stops = append(f.stops, r.Stop)
	if err := r.Connect("c", "gone"); err != nil {
		t.Fatal(err)
	}
	select {
	case k := <-got:
		if k != sig.MetaUnavailable {
			t.Fatalf("got %s, want unavailable", k)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no availability meta received")
	}
}

// TestToneGeneratorPlaysIntoChannel: a tone generator accepts an audio
// channel and transmits into it.
func TestToneGeneratorPlaysIntoChannel(t *testing.T) {
	f := newFixture(t)
	defer f.cleanup()
	tone, err := NewToneGenerator("tone", f.net, f.plane)
	if err != nil {
		t.Fatal(err)
	}
	f.stops = append(f.stops, tone.Stop)
	a := f.device("A", 5004, false)
	if err := a.Call("t", "tone", sig.Audio); err != nil {
		t.Fatal(err)
	}
	f.eventually("tone flowing to A", func() bool { return f.plane.HasFlow("tone", "A") })
}

// TestBridgeConference: three devices connected to a bridge (paper
// Figure 7): each user's media goes to its own bridge leg, and the
// bridge transmits the mix back on each leg.
func TestBridgeConference(t *testing.T) {
	f := newFixture(t)
	defer f.cleanup()
	br, err := NewBridge("bridge", f.net, f.plane)
	if err != nil {
		t.Fatal(err)
	}
	f.stops = append(f.stops, br.Stop)

	devices := []*Device{
		f.device("A", 5004, false),
		f.device("B", 5006, false),
		f.device("C", 5008, false),
	}
	for _, d := range devices {
		if err := d.Call("conf", "bridge", sig.Audio); err != nil {
			t.Fatal(err)
		}
	}
	// Each device sends to its leg, and each leg mixes the other two
	// back out.
	f.eventually("full conference media", func() bool {
		for i, d := range devices {
			leg := "in" + string(rune('0'+i))
			if !f.plane.HasFlow(d.Name(), "bridge/"+leg) {
				return false
			}
			if !f.plane.HasFlow("bridge/"+leg, d.Name()) {
				return false
			}
		}
		return true
	})

	// Emergency-services muting (paper Section IV-B): B (the caller)
	// must not hear what the emergency personnel say: B's output mix is
	// empty, so the bridge stops transmitting toward B; media from B
	// into the bridge continues.
	br.Runner().Do(func(ctx *box.Ctx) {})
	devices[0].SendApp("conf", "mix", sig.NewAttrs("out", "in1", "in", ""))
	// The mix signal travels on A's channel? No: applications signal
	// the bridge on their own channels; here we post it via B's channel
	// owner for simplicity — any channel reaches the same bridge box.
	f.eventually("B's mix silenced", func() bool {
		return !f.plane.HasFlow("bridge/in1", "B") && f.plane.HasFlow("B", "bridge/in1")
	})
	if h := br.Hears("in1"); len(h) != 0 {
		t.Fatalf("B must hear nobody, hears %v", h)
	}
	// Whisper coaching: A hears B and C; B hears only A... configure
	// and verify the mix matrix.
	devices[0].SendApp("conf", "mix", sig.NewAttrs("out", "in1", "in", "in0"))
	f.eventually("whisper mix applied", func() bool {
		h := br.Hears("in1")
		return len(h) == 1 && h[0] == "in0"
	})
}

// TestMovieServerCollaborativeSession: one channel, several tunnels,
// one time pointer (paper Figure 8).
func TestMovieServerCollaborativeSession(t *testing.T) {
	f := newFixture(t)
	defer f.cleanup()
	ms, err := NewMovieServer("movies", f.net, f.plane)
	if err != nil {
		t.Fatal(err)
	}
	f.stops = append(f.stops, ms.Stop)

	// A collaborative-control box dials the server; we drive a plain
	// box directly as the control box for the test.
	ctl := box.New("ctl", DefaultCodecsProfile("ctl"))
	r := box.NewRunner(ctl, f.net)
	f.stops = append(f.stops, r.Stop)
	if err := r.Connect("m", "movies"); err != nil {
		t.Fatal(err)
	}
	r.Do(func(ctx *box.Ctx) {
		ctx.SendMeta("m", sig.Meta{Kind: sig.MetaSetup, Attrs: sig.NewAttrs("movie", "casablanca", "pos", "100")})
	})
	f.eventually("session created", func() bool {
		s, ok := ms.Session("in0")
		return ok && s.Movie == "casablanca" && s.Pos == 100 && !s.Playing
	})
	r.Do(func(ctx *box.Ctx) {
		ctx.SendMeta("m", sig.Meta{Kind: sig.MetaApp, App: "play"})
	})
	f.eventually("playing", func() bool {
		s, _ := ms.Session("in0")
		return s.Playing
	})
	r.Do(func(ctx *box.Ctx) {
		ctx.SendMeta("m", sig.Meta{Kind: sig.MetaApp, App: "seek", Attrs: sig.NewAttrs("pos", "0")})
		ctx.SendMeta("m", sig.Meta{Kind: sig.MetaApp, App: "pause"})
	})
	f.eventually("paused at 0", func() bool {
		s, _ := ms.Session("in0")
		return !s.Playing && s.Pos == 0
	})
	if ms.SessionCount() != 1 {
		t.Fatalf("want 1 session, have %d", ms.SessionCount())
	}
	r.Do(func(ctx *box.Ctx) { ctx.Teardown("m") })
	f.eventually("session gone", func() bool { return ms.SessionCount() == 0 })
}
