package endpoint

import (
	"testing"

	"ipmedia/internal/sig"
)

// TestTranscoderBridgesDisjointCodecs: two endpoints with no codec in
// common cannot talk directly (unilateral codec choice degrades to
// noMedia), but a transcoder in the path terminates each side in its
// own codec world and relays between them.
func TestTranscoderBridgesDisjointCodecs(t *testing.T) {
	f := newFixture(t)
	defer f.cleanup()

	// A speaks only G711; B speaks only G729: disjoint.
	a, err := NewDevice(Config{Name: "A", Net: f.net, Plane: f.plane, MediaPort: 5004,
		RecvCodecs: []sig.Codec{sig.G711}, SendCodecs: []sig.Codec{sig.G711}})
	if err != nil {
		t.Fatal(err)
	}
	f.stops = append(f.stops, a.Stop)
	b, err := NewDevice(Config{Name: "B", Net: f.net, Plane: f.plane, MediaPort: 5006, AutoAccept: true,
		RecvCodecs: []sig.Codec{sig.G729}, SendCodecs: []sig.Codec{sig.G729}})
	if err != nil {
		t.Fatal(err)
	}
	f.stops = append(f.stops, b.Stop)

	// First, the negative control: calling B directly yields a channel
	// that opens but cannot carry media (noMedia selectors both ways).
	if err := a.Call("direct", "B", sig.Audio); err != nil {
		t.Fatal(err)
	}
	f.eventually("direct channel up", func() bool {
		st, _, ok := a.SlotState("direct")
		return ok && st.String() == "flowing"
	})
	if f.plane.HasFlow("A", "B") || f.plane.HasFlow("B", "A") {
		t.Fatal("disjoint codecs must not produce direct media")
	}
	a.HangUp("direct")

	// Now through the transcoder.
	tc, err := NewTranscoder(TranscoderConfig{
		Name: "xc", Net: f.net, Plane: f.plane, Target: "B",
		ACodecs: []sig.Codec{sig.G711}, BCodecs: []sig.Codec{sig.G729},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.stops = append(f.stops, tc.Stop)

	if err := a.Call("c", "xc", sig.Audio); err != nil {
		t.Fatal(err)
	}
	f.eventually("relayed media end to end", func() bool {
		return f.plane.HasFlow("A", "xc/a") && f.plane.HasFlow("xc/b", "B") &&
			f.plane.HasFlow("B", "xc/b") && f.plane.HasFlow("xc/a", "A")
	})
	// The two streams use different encodings — the paper's point.
	var toB, toA sig.Codec
	for _, fl := range f.plane.Flows() {
		if fl.From == "xc/b" && fl.To == "B" {
			toB = fl.Codec
		}
		if fl.From == "xc/a" && fl.To == "A" {
			toA = fl.Codec
		}
	}
	if toB != sig.G729 || toA != sig.G711 {
		t.Fatalf("transcoded codecs wrong: toB=%s toA=%s (flows %v)", toB, toA, f.plane.Flows())
	}
	f.plane.Tick(10)
	if s := b.Agent().Stats(); s.Accepted == 0 {
		t.Fatalf("B received nothing through the transcoder: %+v", s)
	}

	// Teardown propagates across the bridge.
	a.HangUp("c")
	f.eventually("silence", func() bool { return len(f.plane.Flows()) == 0 })
	for _, e := range tc.Runner().Errs() {
		t.Errorf("transcoder error: %v", e)
	}
}
